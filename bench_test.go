// Package repro's root benchmark suite: one testing.B benchmark per
// table and figure of the paper's evaluation (§5), delegating to the
// experiment harness in internal/expbench. Each benchmark reports the
// headline metric of its figure via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// regenerates the whole evaluation at CI scale. cmd/experiments runs
// the same harness at larger scales and prints the full row sets.
package repro

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/expbench"
	"repro/internal/maritime"
	"repro/internal/serve"
)

// Benchmarks share the CI-scale workloads; building them once keeps
// -bench=. runs affordable.
var (
	benchOnceShort, benchOnceLong sync.Once
	benchShort, benchLong         *expbench.Workload
)

func benchShortWL() *expbench.Workload {
	benchOnceShort.Do(func() {
		benchShort = expbench.BuildWorkload(expbench.ScaleCI.Vessels, expbench.ScaleCI.Short, expbench.ScaleCI.Seed)
	})
	return benchShort
}

func benchLongWL() *expbench.Workload {
	benchOnceLong.Do(func() {
		benchLong = expbench.BuildWorkload(expbench.ScaleCI.Vessels, expbench.ScaleCI.Long, expbench.ScaleCI.Seed)
	})
	return benchLong
}

// BenchmarkFig6aTrackingSmallWindows reproduces Figure 6(a): online
// tracking cost per slide for small window ranges. Reported metric:
// worst mean-per-slide across the sweep, in microseconds.
func BenchmarkFig6aTrackingSmallWindows(b *testing.B) {
	wl := benchShortWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := expbench.Fig6a(wl)
		var worst time.Duration
		for _, r := range rows {
			if r.Mean > worst {
				worst = r.Mean
			}
		}
		b.ReportMetric(float64(worst.Microseconds()), "worst-slide-µs")
	}
}

// BenchmarkFig6bTrackingLargeWindows reproduces Figure 6(b): the same
// measurement for ω ∈ {6 h, 24 h}.
func BenchmarkFig6bTrackingLargeWindows(b *testing.B) {
	wl := benchLongWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := expbench.Fig6b(wl)
		var worst time.Duration
		for _, r := range rows {
			if r.Mean > worst {
				worst = r.Mean
			}
		}
		b.ReportMetric(float64(worst.Microseconds()), "worst-slide-µs")
	}
}

// BenchmarkFig7ArrivalRates reproduces Figure 7: tracking latency at
// inflated arrival rates. Reported metric: mean per-slide latency at
// the highest rate, in microseconds.
func BenchmarkFig7ArrivalRates(b *testing.B) {
	wl := benchShortWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := expbench.Fig7(wl, nil, expbench.ScaleCI.Fig7Reps, 3)
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.Mean.Microseconds()), "10k-slide-µs")
	}
}

// BenchmarkFig8RMSE reproduces Figure 8: trajectory approximation
// error across the Δθ sweep. Reported metrics: average RMSE at the
// default Δθ = 15° and the worst max-RMSE of the sweep, in meters.
func BenchmarkFig8RMSE(b *testing.B) {
	wl := benchShortWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := expbench.Fig89(wl)
		b.ReportMetric(rows[2].AvgRMSE, "avg-rmse-m@15°")
		var worst float64
		for _, r := range rows {
			if r.MaxRMSE > worst {
				worst = r.MaxRMSE
			}
		}
		b.ReportMetric(worst, "worst-max-rmse-m")
	}
}

// BenchmarkFig9Compression reproduces Figure 9: compression ratio
// across the Δθ sweep. Reported metric: compression percentage at the
// default Δθ = 15°.
func BenchmarkFig9Compression(b *testing.B) {
	wl := benchShortWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := expbench.Fig89(wl)
		b.ReportMetric(rows[2].Compression*100, "compression-%@15°")
	}
}

// BenchmarkFig10Maintenance reproduces Figure 10: the per-slide
// trajectory maintenance breakdown. Reported metrics: tracking and
// total archival (staging+reconstruction+loading) cost per slide for
// the ω = 24 h configuration, in microseconds.
func BenchmarkFig10Maintenance(b *testing.B) {
	wl := benchLongWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := expbench.Fig10(wl)
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.Tracking.Microseconds()), "tracking-µs")
		archival := last.Staging + last.Reconstruction + last.Loading
		b.ReportMetric(float64(archival.Microseconds()), "archival-µs")
	}
}

// BenchmarkTable4Reconstruction reproduces Table 4: end-of-stream trip
// reconstruction statistics. Reported metrics: trips completed and the
// fraction of critical points left in the staging area.
func BenchmarkTable4Reconstruction(b *testing.B) {
	wl := benchLongWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t4 := expbench.Table4(wl)
		b.ReportMetric(float64(t4.Trips), "trips")
		total := t4.PointsInTrajectories + t4.PointsInStaging
		if total > 0 {
			b.ReportMetric(float64(t4.PointsInStaging)/float64(total)*100, "staged-%")
		}
	}
}

// BenchmarkFig11aRecognition reproduces Figure 11(a): CE recognition
// time with on-demand spatial reasoning. Reported metrics: mean
// per-query recognition time at ω = 9 h for one and two processors, in
// microseconds.
func BenchmarkFig11aRecognition(b *testing.B) {
	wl := benchShortWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := expbench.Fig11a(wl)
		for _, r := range rows {
			if r.Window == 9*time.Hour {
				switch r.Procs {
				case 1:
					b.ReportMetric(float64(r.MeanStep.Microseconds()), "1proc-9h-µs")
				case 2:
					b.ReportMetric(float64(r.MeanStep.Microseconds()), "2proc-9h-µs")
				}
			}
		}
	}
}

// BenchmarkFig11bRecognitionSF reproduces Figure 11(b): recognition
// over precomputed spatial facts. Reported metric: mean per-query time
// at ω = 9 h with two processors, in microseconds.
func BenchmarkFig11bRecognitionSF(b *testing.B) {
	wl := benchShortWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := expbench.Fig11b(wl)
		for _, r := range rows {
			if r.Window == 9*time.Hour && r.Procs == 2 && r.Mode == maritime.SpatialFacts {
				b.ReportMetric(float64(r.MeanStep.Microseconds()), "2proc-9h-sf-µs")
			}
		}
	}
}

// BenchmarkAblationNoOutlierFilter measures the outlier-filter
// ablation. Reported metric: max-RMSE degradation factor without the
// filter.
func BenchmarkAblationNoOutlierFilter(b *testing.B) {
	wl := benchShortWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := expbench.RunAblationOutlier(wl)
		if a.WithFilter.TruthAvgRMSE > 0 {
			b.ReportMetric(a.WithoutFilter.TruthAvgRMSE/a.WithFilter.TruthAvgRMSE, "truth-rmse-×")
		}
		if a.WithFilter.Critical > 0 {
			// Spurious turn/speed-change points admitted by outliers.
			b.ReportMetric(float64(a.WithoutFilter.Critical)/float64(a.WithFilter.Critical), "critical-×")
		}
	}
}

// BenchmarkAblationUnboundedWindow measures recognition with an
// unbounded working memory against the windowed configuration.
// Reported metric: per-query slowdown factor of never forgetting.
func BenchmarkAblationUnboundedWindow(b *testing.B) {
	wl := benchShortWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := expbench.RunAblationWindow(wl)
		if a.Windowed.MeanStep > 0 {
			b.ReportMetric(float64(a.Unbounded.MeanStep)/float64(a.Windowed.MeanStep), "slowdown-×")
		}
	}
}

// BenchmarkAblationNoGridIndex measures close/3 with and without the
// uniform grid index. Reported metric: linear-scan slowdown factor.
func BenchmarkAblationNoGridIndex(b *testing.B) {
	wl := benchShortWL()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := expbench.RunAblationGrid(wl)
		if a.WithGrid > 0 {
			b.ReportMetric(float64(a.LinearScan)/float64(a.WithGrid), "scan-slowdown-×")
		}
	}
}

// BenchmarkHubFanout measures the alert gateway's fan-out hub
// (internal/serve): one Publish of a slide's worth of alerts against
// 1, 100, and 10k live subscribers, each drained by its own goroutine.
// Publish is non-blocking by construction — a subscriber that falls
// behind drops from its own bounded queue — so the per-op cost is the
// pipeline-side price of serving that many clients. Reported metrics:
// envelopes delivered and dropped per publish.
func BenchmarkHubFanout(b *testing.B) {
	alerts := make([]maritime.Alert, 4)
	base := time.Date(2015, 3, 15, 12, 0, 0, 0, time.UTC)
	for i := range alerts {
		alerts[i] = maritime.Alert{
			CE:     maritime.CEIllegalShipping,
			AreaID: "bench-area",
			Time:   base,
			Vessel: uint32(237000101 + i),
		}
	}
	for _, subs := range []int{1, 100, 10000} {
		b.Run(fmt.Sprintf("subs=%d", subs), func(b *testing.B) {
			hub := serve.NewHub(1024)
			var wg sync.WaitGroup
			sl := make([]*serve.Subscriber, subs)
			for i := range sl {
				sl[i] = hub.Subscribe(serve.Filter{}, 256)
				wg.Add(1)
				go func(s *serve.Subscriber) {
					defer wg.Done()
					for {
						if _, ok := s.Next(); !ok {
							return
						}
					}
				}(sl[i])
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				hub.Publish(base.Add(time.Duration(i)*time.Second), alerts)
			}
			b.StopTimer()
			// Let the drainers finish the in-flight tail so the
			// delivered counter reflects every publish.
			for {
				pending := 0
				for _, s := range hub.Stats().Subs {
					pending += s.Pending
				}
				if pending == 0 {
					break
				}
				time.Sleep(100 * time.Microsecond)
			}
			st := hub.Stats()
			for _, s := range sl {
				s.Close()
			}
			wg.Wait()
			b.ReportMetric(float64(st.Delivered)/float64(b.N), "delivered/op")
			b.ReportMetric(float64(st.Dropped)/float64(b.N), "dropped/op")
		})
	}
}
