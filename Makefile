# Convenience targets; everything is plain `go` underneath.

.PHONY: all build fmt-check vet test test-short test-race test-recovery test-chaos test-cluster test-analytics test-alertlog serveload-smoke bench bench-serve bench-pipe bench-decode check-allocs experiments examples

all: fmt-check build vet test

build:
	go build ./...

# CI gate: the tree must be gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "files need gofmt:"; echo "$$out"; exit 1; fi

vet:
	go vet ./...

test:
	go test ./...

test-short:
	go test -short ./...

# What CI runs: the whole suite under the race detector.
test-race:
	go test -race ./...

# Crash-injection equivalence suite: kill-and-restore at arbitrary
# slides and mid-checkpoint-write, byte-identical output and
# exactly-once delivery through the gateway, under the race detector.
test-recovery:
	go test -race -v -run 'TestKillRestore|TestGatewayExactlyOnce|TestReplayGap|TestSigterm' ./internal/checkpoint/

# Panic/stall-injection supervision suite: shard kills, recognizer and
# store panics, watchdog stalls, supervisor restore-then-replay, and the
# overload degradation ladder — golden-run equivalence under the race
# detector.
test-chaos:
	go test -race -v -run 'TestChaos|TestSelfHeal|TestHealErrors|TestDegradation|TestSupervisor|TestDelayedStream' \
		./internal/faults/ ./internal/core/ ./internal/tracker/ ./internal/supervise/

# Distributed-cluster equivalence suite: byte-identical output across
# 1-process / cluster(1) / cluster(3), kill-one-worker exactly-once
# restore, whole-cluster manifest restore, and the stalled-worker
# degradation path — all over real loopback TCP, under the race
# detector.
test-cluster:
	go test -race -v -run 'TestCluster' ./internal/cluster/

# Durable alert-log chaos suite: replica kills mid-stream with
# subscriber failover, writer crash mid-segment (fault-injected), and
# newest-segment corruption — exactly-once delivery (zero gap, zero
# duplicate) and byte-identical history versus a never-killed control,
# under the race detector. Includes the log/reader/tailer unit tests
# and the replay-marker regressions in the serve hub.
test-alertlog:
	go test -race -v ./internal/alertlog/
	go test -race -v -run 'TestSubscribeFrom|TestMarker|TestPublish|TestRing|TestRunLoad' ./internal/serve/

# Multi-replica serving smoke: the in-process load harness drives
# subscribers round-robin across two replica gateways and asserts
# error-free delivery through each.
serveload-smoke:
	go test -race -v -run 'TestRunLoadAcrossReplicas' ./internal/serve/

# Cross-vessel analytics suite: fleetsim ground-truth precision/recall
# for rendezvous and dark-rendezvous, index-vs-brute-force collision
# screening, and cluster-vs-single-process pairwise byte equivalence
# (including a mid-run manifest restore) — under the race detector.
test-analytics:
	go test -race -v -run 'TestPairwiseAnalyticsGroundTruth|TestAnalyticsDisabledByDefault' ./internal/core/
	go test -race -v -run 'TestIndexMatchesBruteForce|TestEncountersInvariantToArrivalOrder' ./internal/collision/
	go test -race -v ./internal/analytics/
	go test -race -v -run 'TestClusterPairwiseAnalyticsEquivalence|TestClusterManifestRestoreWithAnalytics' ./internal/cluster/

# One testing.B benchmark per table/figure of the paper's evaluation.
bench: bench-serve bench-pipe
	go test -bench=. -benchmem -benchtime=1x -run '^$$' .

# Serving-tier benchmarks, written as a JSON artifact with the pre-fix
# fan-out baseline embedded for comparison.
bench-serve:
	go run ./cmd/benchserve -out BENCH_serve.json

# Pipeline benchmarks: sharded tracking-tier throughput/allocations per
# shard count plus full-pipeline per-stage latency percentiles, written
# as a JSON artifact with the pre-sharding serial baseline embedded.
bench-pipe:
	go run ./cmd/benchpipe -out BENCH_pipeline.json

# Decode micro-benchmarks: zero-copy vs legacy scanner over NMEA and
# CSV, one iteration each — a smoke run that proves the benchmarks
# still compile and execute, not a measurement.
bench-decode:
	go test -run '^$$' -bench '^BenchmarkDecode$$' -benchmem -benchtime=1x ./internal/ais/

# Allocation-regression guard: the steady-state slide budget
# (testing.AllocsPerRun gate in the tracker) and the zero-allocation
# zero-copy scanners. Run without -race: the race runtime inflates
# allocation counts and both tests skip themselves under it.
check-allocs:
	go test -v -run 'TestSteadyStateSlideAllocs|TestZeroCopyScanAllocs' ./internal/tracker/ ./internal/ais/

# Full row sets at the default scale (N=1000); see -list for ids.
experiments:
	go run ./cmd/experiments -run all

examples:
	go run ./examples/quickstart
	go run ./examples/illegalfishing
	go run ./examples/protectedarea
	go run ./examples/compression
	go run ./examples/livemonitor
