package fleetsim

import (
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/geo"
)

// leg is one piecewise-linear trajectory segment: the vessel moves from
// From at Start to To at End with constant velocity (stationary when
// From == To).
type leg struct {
	From, To   geo.Point
	Start, End time.Time
}

// timespan is a closed interval used for transmitter silences and
// presence windows.
type timespan struct {
	Start, End time.Time
}

// contains reports whether t falls within the span.
func (s timespan) contains(t time.Time) bool {
	return !t.Before(s.Start) && !t.After(s.End)
}

// itinerary is a vessel's full scripted trajectory: contiguous legs,
// transmitter silences, and the presence window during which the vessel
// is inside the monitored region and reporting at all.
type itinerary struct {
	legs     []leg
	silences []timespan
	present  timespan
}

// pos returns the scripted position at time t (clamped to the itinerary
// extent).
func (it *itinerary) pos(t time.Time) geo.Point {
	legs := it.legs
	if len(legs) == 0 {
		return geo.Point{}
	}
	if !t.After(legs[0].Start) {
		return legs[0].From
	}
	if !t.Before(legs[len(legs)-1].End) {
		return legs[len(legs)-1].To
	}
	// Binary search for the leg containing t.
	i := sort.Search(len(legs), func(i int) bool { return !legs[i].End.Before(t) })
	l := legs[i]
	span := l.End.Sub(l.Start).Seconds()
	if span <= 0 {
		return l.From
	}
	f := t.Sub(l.Start).Seconds() / span
	return geo.Interpolate(l.From, l.To, f)
}

// end returns the time at which the itinerary's last leg ends.
func (it *itinerary) endTime() time.Time {
	if len(it.legs) == 0 {
		return time.Time{}
	}
	return it.legs[len(it.legs)-1].End
}

// itinBuilder assembles an itinerary incrementally.
type itinBuilder struct {
	it  itinerary
	t   time.Time
	pos geo.Point
}

// newItinBuilder starts an itinerary at the given position and time.
func newItinBuilder(start time.Time, pos geo.Point) *itinBuilder {
	b := &itinBuilder{t: start, pos: pos}
	b.it.present = timespan{Start: start, End: start.Add(1000 * time.Hour)}
	return b
}

// dwell holds position for d.
func (b *itinBuilder) dwell(d time.Duration) {
	if d <= 0 {
		return
	}
	b.it.legs = append(b.it.legs, leg{From: b.pos, To: b.pos, Start: b.t, End: b.t.Add(d)})
	b.t = b.t.Add(d)
}

// sailTo adds one straight leg to p at the given speed.
func (b *itinBuilder) sailTo(p geo.Point, kn float64) {
	dist := geo.Haversine(b.pos, p)
	if dist < 1 { // already there
		return
	}
	if kn <= 0 {
		kn = 1
	}
	dur := time.Duration(dist / geo.KnotsToMetersPerSecond(kn) * float64(time.Second))
	b.it.legs = append(b.it.legs, leg{From: b.pos, To: p, Start: b.t, End: b.t.Add(dur)})
	b.t = b.t.Add(dur)
	b.pos = p
}

// cruiseTo sails to p with a slow departure ramp, a cruise along a
// dogleg route, and a slow arrival ramp. Ships "are expected to move
// along almost straight, predictable paths" (paper §1): the legs
// between waypoints are perfectly straight, and the course changes at
// waypoints are crisp — turn angles of roughly 16°–50°, the channel
// and cape roundings of real routes that the tracker's turn events
// capture.
func (b *itinBuilder) cruiseTo(p geo.Point, cruiseKn float64, nWaypoints int, rng *rand.Rand) {
	const rampKn = 4.0
	total := geo.Haversine(b.pos, p)
	if total < 500 {
		b.sailTo(p, rampKn)
		return
	}
	// Departure ramp over the first ~800 m.
	ramp := 800.0
	if ramp > total/4 {
		ramp = total / 4
	}
	brng := geo.Bearing(b.pos, p)
	b.sailTo(geo.Destination(b.pos, brng, ramp), rampKn)

	// Dogleg waypoints alternate left and right of the direct line; the
	// lateral offset is sized so the course change at each waypoint is a
	// sharp, detectable turn rather than a wide shallow arc.
	start := b.pos
	remaining := geo.Haversine(start, p)
	side := 1.0
	if rng.Float64() < 0.5 {
		side = -1
	}
	perp := geo.Bearing(start, p) + 90
	for i := 1; i <= nWaypoints; i++ {
		f := float64(i) / float64(nWaypoints+1)
		on := geo.Interpolate(start, p, f)
		seg := remaining / float64(nWaypoints+1)
		// Offset sized so the course change at the waypoint is at least
		// turnDeg: a zero-lateral neighbor yields exactly turnDeg, an
		// opposite-lateral neighbor a sharper turn.
		turnDeg := 22 + rng.Float64()*20
		lateral := side * seg * math.Tan(turnDeg/2*math.Pi/180)
		b.sailTo(geo.Destination(on, perp, lateral), cruiseKn)
		side = -side
	}
	// Minor course adjustments on the approach: short doglegs of
	// 10°–20°, the harbor-entry manoeuvres whose retention depends on
	// the turn threshold Δθ (sweeping Δθ past them trades compression
	// for bounded extra error, the paper's Figures 8–9 sensitivity).
	if geo.Haversine(b.pos, p) > 15000 {
		toward := geo.Bearing(b.pos, p)
		for _, back := range []float64{6000, 3000} {
			on := geo.Destination(p, toward+180, back)
			minor := 10 + rng.Float64()*10
			lateral := side * 3000 * math.Tan(minor/2*math.Pi/180)
			b.sailTo(geo.Destination(on, toward+90, lateral), cruiseKn)
			side = -side
		}
	}
	// Cruise to the edge of the arrival ramp, then creep in.
	arr := 800.0
	if arr > geo.Haversine(b.pos, p)/2 {
		arr = geo.Haversine(b.pos, p) / 2
	}
	edge := geo.Destination(p, geo.Bearing(p, b.pos), arr)
	b.sailTo(edge, cruiseKn)
	b.sailTo(p, rampKn)
}

// build finalizes the itinerary, optionally clipping presence.
func (b *itinBuilder) build() *itinerary {
	it := b.it
	return &it
}
