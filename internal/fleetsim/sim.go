package fleetsim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

// NoiseConfig controls the stream imperfections the paper emphasizes:
// GPS discrepancies and sea drift, abrupt off-course outliers
// (Figure 2(d)), dropped messages, and spontaneous communication gaps.
type NoiseConfig struct {
	JitterMeters  float64 // σ of per-fix position jitter
	OutlierProb   float64 // probability a fix is displaced far off course
	OutlierMeters float64 // scale of outlier displacement
	DropProb      float64 // probability a report is lost in transit
	GapPerHour    float64 // rate of spontaneous reporting silences
	GapMin        time.Duration
	GapMax        time.Duration
}

// DefaultNoise matches the qualitative noise profile of coastal AIS.
func DefaultNoise() NoiseConfig {
	return NoiseConfig{
		JitterMeters:  8,
		OutlierProb:   0.002,
		OutlierMeters: 900,
		DropProb:      0.01,
		GapPerHour:    0.04,
		GapMin:        12 * time.Minute,
		GapMax:        35 * time.Minute,
	}
}

// Config parameterizes a simulation run.
type Config struct {
	Seed     int64
	Vessels  int // fleet size N (the paper's dataset has N = 6425)
	NumAreas int // areas of interest (the paper uses 35)
	Start    time.Time
	Duration time.Duration
	Noise    NoiseConfig
	// RendezvousPairs and DarkPairs script additional vessel pairs (on
	// top of Vessels) acting out the pairwise analytics ground truth:
	// offshore rendezvous and dark gap-linked meetings. Zero (the
	// default) adds nothing, keeping the simulated stream byte-identical
	// to earlier configurations.
	RendezvousPairs int
	DarkPairs       int
}

// DefaultConfig returns a small but representative configuration:
// 500 vessels for six hours starting 1 June 2009, 35 areas.
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		Vessels:  500,
		NumAreas: 35,
		Start:    time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC),
		Duration: 6 * time.Hour,
		Noise:    DefaultNoise(),
	}
}

// TruthKind tags a scripted ground-truth episode.
type TruthKind int

// Ground-truth kinds, one per scripted scenario.
const (
	TruthLoiter TruthKind = iota // group stop in open water
	TruthGapInProtected
	TruthFishingInForbidden
	TruthShallowPass
	TruthRendezvous     // scripted pair holding station together offshore
	TruthDarkRendezvous // scripted pair meeting under overlapping AIS gaps
)

// String names the truth kind.
func (k TruthKind) String() string {
	return []string{"loiter", "gap-in-protected", "fishing-in-forbidden",
		"shallow-pass", "rendezvous", "dark-rendezvous"}[k]
}

// TruthEvent records one scripted episode so tests and the experiment
// harness can check that recognition finds what was planted.
type TruthEvent struct {
	Kind       TruthKind
	MMSI       uint32
	MMSI2      uint32 // second vessel of a scripted pair episode; else 0
	AreaID     string // empty for open-water loitering
	Near       geo.Point
	Start, End time.Time
}

// Simulator generates the synthetic AIS workload.
type Simulator struct {
	cfg         Config
	world       *World
	fleet       []VesselSpec
	itins       []*itinerary
	truth       []TruthEvent
	loiterSpots []geo.Point
}

// NewSimulator builds the world, the fleet, and every vessel's scripted
// itinerary, deterministically from cfg.Seed.
func NewSimulator(cfg Config) *Simulator {
	if cfg.Vessels <= 0 {
		cfg.Vessels = 1
	}
	if cfg.NumAreas <= 0 {
		cfg.NumAreas = 35
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := &Simulator{
		cfg:   cfg,
		world: NewWorld(cfg.Seed+1, cfg.NumAreas),
	}
	s.fleet = buildFleet(rng, cfg.Vessels)
	s.itins = make([]*itinerary, len(s.fleet))

	// Pre-pick shared scripted targets.
	s.loiterSpots = []geo.Point{
		s.world.randomOffshorePoint(rng),
		s.world.randomOffshorePoint(rng),
	}
	loiterSpots := s.loiterSpots
	protected := s.world.AreasOfKind(AreaProtected)
	forbidden := s.world.AreasOfKind(AreaForbiddenFishing)
	shallow := s.world.AreasOfKind(AreaShallow)

	var loiterIdx int
	for i := range s.fleet {
		vrng := rand.New(rand.NewSource(cfg.Seed + 1000 + int64(i)))
		spec := &s.fleet[i]
		switch spec.Behavior {
		case BehaviorDocked:
			s.itins[i] = s.buildDocked(vrng, spec)
		case BehaviorFerry:
			s.itins[i] = s.buildFerry(vrng, spec)
		case BehaviorVoyager:
			s.itins[i] = s.buildVoyager(vrng, spec)
		case BehaviorPassing:
			s.itins[i] = s.buildPassing(vrng, spec)
		case BehaviorFisher:
			s.itins[i] = s.buildFisher(vrng, spec, forbidden)
		case BehaviorLoiterer:
			spot := loiterSpots[loiterIdx%len(loiterSpots)]
			loiterIdx++
			s.itins[i] = s.buildLoiterer(vrng, spec, spot)
		case BehaviorSmuggler:
			s.itins[i] = s.buildSmuggler(vrng, spec, protected)
		case BehaviorShoalRunner:
			s.itins[i] = s.buildShoalRunner(vrng, spec, shallow)
		}
	}
	s.buildPairs()
	return s
}

// buildPairs appends the scripted pairwise-analytics actors — the
// rendezvous and dark pairs of Config — after the base fleet, driven by
// their own RNG so enabling them never perturbs the base stream.
func (s *Simulator) buildPairs() {
	if s.cfg.RendezvousPairs <= 0 && s.cfg.DarkPairs <= 0 {
		return
	}
	prng := rand.New(rand.NewSource(s.cfg.Seed + 9000))
	addSpec := func(beh Behavior) int {
		i := len(s.fleet)
		s.fleet = append(s.fleet, VesselSpec{
			MMSI:     mmsiBase + uint32(i),
			Name:     fmt.Sprintf("%s-%04d", beh, i),
			Type:     TypeOther,
			Behavior: beh,
			DraftM:   3 + prng.Float64()*3, CruiseKn: 10 + prng.Float64()*3,
			ReportEvery: 80,
		})
		s.itins = append(s.itins, nil)
		return i
	}
	for p := 0; p < s.cfg.RendezvousPairs; p++ {
		spot := s.world.randomOffshorePoint(prng)
		a, b := addSpec(BehaviorRendezvous), addSpec(BehaviorRendezvous)
		s.buildRendezvousPair(prng, a, b, spot)
	}
	for p := 0; p < s.cfg.DarkPairs; p++ {
		spot := s.world.randomOffshorePoint(prng)
		a, b := addSpec(BehaviorDarkPair), addSpec(BehaviorDarkPair)
		s.buildDarkPair(prng, a, b, spot)
	}
}

// buildRendezvousPair scripts two vessels approaching a shared offshore
// spot from opposite sides, holding station within a couple hundred
// meters of each other for about an hour, and parting.
func (s *Simulator) buildRendezvousPair(rng *rand.Rand, ia, ib int, spot geo.Point) {
	bearing := rng.Float64() * 360
	approach := func(i int, brg float64) *itinBuilder {
		spec := &s.fleet[i]
		from := geo.Destination(spot, brg, 15000+rng.Float64()*5000)
		dst := geo.Destination(spot, rng.Float64()*360, 40+rng.Float64()*110)
		b := newItinBuilder(s.cfg.Start.Add(time.Duration(rng.Intn(8))*time.Minute), from)
		b.cruiseTo(dst, spec.CruiseKn, 1, rng)
		return b
	}
	ba := approach(ia, bearing)
	bb := approach(ib, bearing+180)
	meet := ba.t
	if bb.t.After(meet) {
		meet = bb.t
	}
	leave := meet.Add(time.Hour + time.Duration(rng.Intn(20))*time.Minute)
	part := func(i int, b *itinBuilder, brg float64) {
		b.dwell(leave.Sub(b.t))
		b.cruiseTo(geo.Destination(spot, brg, 25000), s.fleet[i].CruiseKn, 1, rng)
		b.dwell(s.cfg.Duration)
		s.itins[i] = b.build()
	}
	part(ia, ba, bearing+30)
	part(ib, bb, bearing+210)
	s.truth = append(s.truth, TruthEvent{
		Kind: TruthRendezvous,
		MMSI: s.fleet[ia].MMSI, MMSI2: s.fleet[ib].MMSI,
		Near: spot, Start: meet, End: leave,
	})
}

// buildDarkPair scripts two vessels that go silent a few km short of a
// shared spot, meet and hold station entirely inside the gap, then
// resume reporting shortly after parting — so their gaps overlap, each
// gap is crossable at plausible speed, and the gap end points sit far
// closer together than the start points.
func (s *Simulator) buildDarkPair(rng *rand.Rand, ia, ib int, spot geo.Point) {
	bearing := rng.Float64() * 360
	type half struct {
		b       *itinBuilder
		gapFrom time.Time
		exitBrg float64
	}
	// Each vessel's own gap must stay well inside the analysis window
	// (1 h in the experiments): beyond it the tracker evicts the silent
	// vessel and its reappearance is a fresh "first" point, not the
	// gapEnd the linking screen needs. Short final approaches and a
	// tight dwell keep the worst-case gap near 50 minutes.
	approach := func(i int, brg, exitBrg float64) *half {
		spec := &s.fleet[i]
		from := geo.Destination(spot, brg, 14000+rng.Float64()*2000)
		cut := geo.Destination(spot, brg, 3000)
		dst := geo.Destination(spot, rng.Float64()*360, 40+rng.Float64()*110)
		b := newItinBuilder(s.cfg.Start.Add(time.Duration(rng.Intn(4))*time.Minute), from)
		b.cruiseTo(cut, spec.CruiseKn, 1, rng)
		gapFrom := b.t.Add(45 * time.Second)
		b.sailTo(dst, spec.CruiseKn)
		return &half{b: b, gapFrom: gapFrom, exitBrg: exitBrg}
	}
	ha := approach(ia, bearing, bearing+90)
	hb := approach(ib, bearing+180, bearing+135)
	meet := ha.b.t
	if hb.b.t.After(meet) {
		meet = hb.b.t
	}
	leave := meet.Add(20*time.Minute + time.Duration(rng.Intn(8))*time.Minute)
	part := func(i int, h *half) time.Time {
		h.b.dwell(leave.Sub(h.b.t))
		resume := geo.Destination(spot, h.exitBrg, 1100+rng.Float64()*200)
		h.b.sailTo(resume, s.fleet[i].CruiseKn)
		gapTo := h.b.t.Add(45 * time.Second)
		h.b.cruiseTo(geo.Destination(spot, h.exitBrg, 28000), s.fleet[i].CruiseKn, 1, rng)
		h.b.dwell(s.cfg.Duration)
		it := h.b.build()
		it.silences = append(it.silences, timespan{Start: h.gapFrom, End: gapTo})
		s.itins[i] = it
		return gapTo
	}
	toA := part(ia, ha)
	toB := part(ib, hb)
	// The truth window is the gap overlap: the interval both vessels were
	// dark simultaneously.
	from := ha.gapFrom
	if hb.gapFrom.After(from) {
		from = hb.gapFrom
	}
	to := toA
	if toB.Before(to) {
		to = toB
	}
	s.truth = append(s.truth, TruthEvent{
		Kind: TruthDarkRendezvous,
		MMSI: s.fleet[ia].MMSI, MMSI2: s.fleet[ib].MMSI,
		Near: spot, Start: from, End: to,
	})
}

// World exposes the static geography.
func (s *Simulator) World() *World { return s.world }

// Fleet exposes the vessel registry.
func (s *Simulator) Fleet() []VesselSpec { return s.fleet }

// Truth returns the scripted ground-truth episodes.
func (s *Simulator) Truth() []TruthEvent { return s.truth }

// LoiterSpots returns the rendezvous points of the scripted loitering
// groups. Marine authorities monitoring for suspicious activity would
// designate watch areas around such spots (paper §4.1, Scenario 1).
func (s *Simulator) LoiterSpots() []geo.Point { return s.loiterSpots }

// ScriptedPos returns the noise-free scripted position of a vessel at
// time t — the ground truth that reported fixes jitter around. ok is
// false for unknown vessels.
func (s *Simulator) ScriptedPos(mmsi uint32, t time.Time) (geo.Point, bool) {
	i := int(mmsi) - int(mmsiBase)
	if i < 0 || i >= len(s.itins) || s.itins[i] == nil {
		return geo.Point{}, false
	}
	return s.itins[i].pos(t), true
}

// randomPort draws a port.
func (s *Simulator) randomPort(rng *rand.Rand) *Port {
	return &s.world.Ports[rng.Intn(len(s.world.Ports))]
}

// nearestPort returns the port closest to p, so scripted actors start
// near their target and complete their episodes within the run.
func (s *Simulator) nearestPort(p geo.Point) *Port {
	best := &s.world.Ports[0]
	bestD := geo.Haversine(p, best.Center)
	for i := range s.world.Ports[1:] {
		port := &s.world.Ports[i+1]
		if d := geo.Haversine(p, port.Center); d < bestD {
			best, bestD = port, d
		}
	}
	return best
}

// accessibleArea picks one of the few areas of the given set closest to
// any port, so the scripted crossing completes within a short run.
func (s *Simulator) accessibleArea(rng *rand.Rand, areas []Area) Area {
	type scored struct {
		a Area
		d float64
	}
	ranked := make([]scored, len(areas))
	for i, a := range areas {
		c := a.Poly.Centroid()
		ranked[i] = scored{a: a, d: geo.Haversine(c, s.nearestPort(c).Center)}
	}
	sort.Slice(ranked, func(i, j int) bool { return ranked[i].d < ranked[j].d })
	k := 4
	if k > len(ranked) {
		k = len(ranked)
	}
	return ranked[rng.Intn(k)].a
}

// anchorage returns a jittered spot inside a port polygon.
func anchorage(rng *rand.Rand, p *Port) geo.Point {
	return geo.Point{
		Lon: p.Center.Lon + (rng.Float64()*2-1)*portRadiusDeg*0.7,
		Lat: p.Center.Lat + (rng.Float64()*2-1)*portRadiusDeg*0.7,
	}
}

func (s *Simulator) horizon() time.Time { return s.cfg.Start.Add(s.cfg.Duration) }

// buildDocked scripts a vessel that never leaves its anchorage.
func (s *Simulator) buildDocked(rng *rand.Rand, spec *VesselSpec) *itinerary {
	b := newItinBuilder(s.cfg.Start, anchorage(rng, s.randomPort(rng)))
	b.dwell(s.cfg.Duration + time.Hour)
	return b.build()
}

// buildFerry scripts periodic crossings between two ports.
func (s *Simulator) buildFerry(rng *rand.Rand, spec *VesselSpec) *itinerary {
	a := s.randomPort(rng)
	c := s.randomPort(rng)
	for c.Name == a.Name {
		c = s.randomPort(rng)
	}
	b := newItinBuilder(s.cfg.Start, anchorage(rng, a))
	b.dwell(time.Duration(rng.Intn(30)+5) * time.Minute)
	for b.t.Before(s.horizon()) {
		b.cruiseTo(anchorage(rng, c), spec.CruiseKn, 1+rng.Intn(2), rng)
		b.dwell(time.Duration(rng.Intn(25)+20) * time.Minute)
		a, c = c, a
	}
	return b.build()
}

// buildVoyager scripts multi-leg voyages with long port calls.
func (s *Simulator) buildVoyager(rng *rand.Rand, spec *VesselSpec) *itinerary {
	cur := s.randomPort(rng)
	b := newItinBuilder(s.cfg.Start, anchorage(rng, cur))
	b.dwell(time.Duration(rng.Intn(90)) * time.Minute)
	for b.t.Before(s.horizon()) {
		next := s.randomPort(rng)
		for next.Name == cur.Name {
			next = s.randomPort(rng)
		}
		b.cruiseTo(anchorage(rng, next), spec.CruiseKn, 2+rng.Intn(3), rng)
		b.dwell(time.Duration(rng.Intn(180)+60) * time.Minute)
		cur = next
	}
	return b.build()
}

// buildPassing scripts one straight crossing of the region; the vessel
// is present (and reporting) only while on the crossing.
func (s *Simulator) buildPassing(rng *rand.Rand, spec *VesselSpec) *itinerary {
	bounds := s.world.Bounds
	entry := geo.Point{Lon: bounds.MinLon, Lat: bounds.MinLat + rng.Float64()*(bounds.MaxLat-bounds.MinLat)}
	exit := geo.Point{Lon: bounds.MaxLon, Lat: bounds.MinLat + rng.Float64()*(bounds.MaxLat-bounds.MinLat)}
	if rng.Float64() < 0.5 {
		entry, exit = exit, entry
	}
	// Stagger entries across the run.
	lead := time.Duration(rng.Int63n(int64(s.cfg.Duration)*2/3 + 1))
	b := newItinBuilder(s.cfg.Start.Add(lead), entry)
	b.cruiseTo(exit, spec.CruiseKn, 1+rng.Intn(2), rng)
	it := b.build()
	it.present = timespan{Start: s.cfg.Start.Add(lead), End: it.endTime()}
	return it
}

// buildFisher scripts a round trip to a fishing ground with slow
// zigzag trawling. About a third of fishers work inside a forbidden
// fishing area, providing ground truth for illegalFishing.
func (s *Simulator) buildFisher(rng *rand.Rand, spec *VesselSpec, forbidden []Area) *itinerary {
	var ground geo.Point
	var inForbidden *Area
	if len(forbidden) > 0 && rng.Float64() < 0.35 {
		a := forbidden[rng.Intn(len(forbidden))]
		ground = a.Poly.Centroid()
		inForbidden = &a
	} else {
		ground = s.world.randomOffshorePoint(rng)
	}
	// Fishing boats work grounds near their home port.
	home := s.nearestPort(ground)
	b := newItinBuilder(s.cfg.Start, anchorage(rng, home))
	b.dwell(time.Duration(rng.Intn(40)) * time.Minute)
	b.cruiseTo(ground, spec.CruiseKn, 1, rng)
	trawlStart := b.t
	// Trawl: slow zigzag around the ground for 1–3 hours.
	trawlFor := time.Duration(60+rng.Intn(120)) * time.Minute
	heading := rng.Float64() * 360
	for b.t.Before(trawlStart.Add(trawlFor)) {
		heading += (rng.Float64()*2 - 1) * 60
		nxt := geo.Destination(b.pos, heading, 300+rng.Float64()*700)
		b.sailTo(nxt, 2.0+rng.Float64()*1.5)
	}
	trawlEnd := b.t
	b.cruiseTo(anchorage(rng, home), spec.CruiseKn, 1, rng)
	b.dwell(s.cfg.Duration) // moored for the rest of the run
	if inForbidden != nil {
		s.truth = append(s.truth, TruthEvent{
			Kind: TruthFishingInForbidden, MMSI: spec.MMSI,
			AreaID: inForbidden.ID, Near: ground,
			Start: trawlStart, End: trawlEnd,
		})
	}
	return b.build()
}

// buildLoiterer scripts a rendezvous: the vessel is first observed
// under way some 15–25 km from the shared spot, sails there, stops
// together with the rest of the group for a synchronized interval, and
// leaves. Starting at sea keeps arrival times tight so at least four
// vessels are reliably stopped simultaneously — the condition of the
// suspicious-area CE.
func (s *Simulator) buildLoiterer(rng *rand.Rand, spec *VesselSpec, spot geo.Point) *itinerary {
	approachFrom := geo.Destination(spot, rng.Float64()*360, 15000+rng.Float64()*10000)
	// Individual offsets keep the group inside a ~300 m circle.
	mydst := geo.Destination(spot, rng.Float64()*360, rng.Float64()*150)
	b := newItinBuilder(s.cfg.Start.Add(time.Duration(rng.Intn(10))*time.Minute), approachFrom)
	b.cruiseTo(mydst, spec.CruiseKn, 1, rng)
	stopStart := b.t
	// Everyone lingers until a common horizon well past the slowest
	// arrival (~1.5 h in), then departs on its own schedule.
	leave := s.cfg.Start.Add(3*time.Hour + time.Duration(rng.Intn(60))*time.Minute)
	if leave.Before(stopStart.Add(45 * time.Minute)) {
		leave = stopStart.Add(45 * time.Minute)
	}
	b.dwell(leave.Sub(stopStart))
	stopEnd := b.t
	b.cruiseTo(geo.Destination(spot, rng.Float64()*360, 30000), spec.CruiseKn, 1, rng)
	b.dwell(s.cfg.Duration)
	s.truth = append(s.truth, TruthEvent{
		Kind: TruthLoiter, MMSI: spec.MMSI, Near: spot,
		Start: stopStart, End: stopEnd,
	})
	return b.build()
}

// buildSmuggler scripts a voyage routed through a protected area with
// the transmitter switched off during the crossing (paper Scenario 3:
// "vessels with illegal activity ... switch off their transmitters").
func (s *Simulator) buildSmuggler(rng *rand.Rand, spec *VesselSpec, protected []Area) *itinerary {
	if len(protected) == 0 {
		home := s.randomPort(rng)
		dest := s.randomPort(rng)
		for dest.Name == home.Name {
			dest = s.randomPort(rng)
		}
		b := newItinBuilder(s.cfg.Start, anchorage(rng, home))
		b.dwell(time.Duration(rng.Intn(20)+5) * time.Minute)
		b.cruiseTo(anchorage(rng, dest), spec.CruiseKn, 2, rng)
		return b.build()
	}
	area := s.accessibleArea(rng, protected)
	mid := area.Poly.Centroid()
	// The shortcut through the park only pays off near the home port.
	home := s.nearestPort(mid)
	dest := s.randomPort(rng)
	for dest.Name == home.Name {
		dest = s.randomPort(rng)
	}
	b := newItinBuilder(s.cfg.Start, anchorage(rng, home))
	b.dwell(time.Duration(rng.Intn(20)+5) * time.Minute)
	b.cruiseTo(mid, spec.CruiseKn, 1, rng)
	crossT := b.t
	b.cruiseTo(anchorage(rng, dest), spec.CruiseKn, 1, rng)
	b.dwell(s.cfg.Duration)
	it := b.build()
	// Silence from a few minutes before reaching the area until well
	// past it, so the tracker sees a reporting gap positioned at the
	// protected area.
	gapStart := crossT.Add(-90 * time.Second)
	gapEnd := crossT.Add(16 * time.Minute)
	it.silences = append(it.silences, timespan{Start: gapStart, End: gapEnd})
	s.truth = append(s.truth, TruthEvent{
		Kind: TruthGapInProtected, MMSI: spec.MMSI, AreaID: area.ID,
		Near: mid, Start: gapStart, End: gapEnd,
	})
	return it
}

// buildShoalRunner scripts a slow cut across a shallow area, the ground
// truth for dangerousShipping (paper Scenario 4).
func (s *Simulator) buildShoalRunner(rng *rand.Rand, spec *VesselSpec, shallow []Area) *itinerary {
	if len(shallow) == 0 {
		home := s.randomPort(rng)
		dest := s.randomPort(rng)
		for dest.Name == home.Name {
			dest = s.randomPort(rng)
		}
		b := newItinBuilder(s.cfg.Start, anchorage(rng, home))
		b.dwell(time.Duration(rng.Intn(20)+5) * time.Minute)
		b.cruiseTo(anchorage(rng, dest), spec.CruiseKn, 2, rng)
		return b.build()
	}
	area := s.accessibleArea(rng, shallow)
	mid := area.Poly.Centroid()
	home := s.nearestPort(mid)
	dest := s.randomPort(rng)
	for dest.Name == home.Name {
		dest = s.randomPort(rng)
	}
	b := newItinBuilder(s.cfg.Start, anchorage(rng, home))
	b.dwell(time.Duration(rng.Intn(20)+5) * time.Minute)
	b.cruiseTo(mid, spec.CruiseKn, 1, rng)
	slowStart := b.t
	// Creep across the shallows at trawling speed.
	across := geo.Destination(mid, geo.Bearing(b.pos, mid), 1500)
	b.sailTo(across, 2.5)
	slowEnd := b.t
	b.cruiseTo(anchorage(rng, dest), spec.CruiseKn, 1, rng)
	b.dwell(s.cfg.Duration)
	s.truth = append(s.truth, TruthEvent{
		Kind: TruthShallowPass, MMSI: spec.MMSI, AreaID: area.ID,
		Near: mid, Start: slowStart, End: slowEnd,
	})
	return b.build()
}

// Run generates the cleaned positional stream of the whole fleet,
// sorted by timestamp. It applies the configured noise: jitter on every
// fix, occasional outliers, dropped reports, and spontaneous gaps on
// top of scripted silences.
func (s *Simulator) Run() []ais.Fix {
	var out []ais.Fix
	horizon := s.horizon()
	for i := range s.fleet {
		spec := &s.fleet[i]
		it := s.itins[i]
		vrng := rand.New(rand.NewSource(s.cfg.Seed + 5000 + int64(i)))

		start := s.cfg.Start
		if it.present.Start.After(start) {
			start = it.present.Start
		}
		end := horizon
		if it.present.End.Before(end) {
			end = it.present.End
		}

		// Spontaneous gaps for this vessel.
		silences := make([]timespan, len(it.silences))
		copy(silences, it.silences)
		if s.cfg.Noise.GapPerHour > 0 {
			hours := end.Sub(start).Hours()
			n := 0
			for h := 0.0; h < hours; h++ {
				if vrng.Float64() < s.cfg.Noise.GapPerHour {
					n++
				}
			}
			for g := 0; g < n; g++ {
				gs := start.Add(time.Duration(vrng.Int63n(int64(end.Sub(start)) + 1)))
				span := s.cfg.Noise.GapMin + time.Duration(vrng.Int63n(int64(s.cfg.Noise.GapMax-s.cfg.Noise.GapMin)+1))
				silences = append(silences, timespan{Start: gs, End: gs.Add(span)})
			}
		}

		t := start.Add(time.Duration(vrng.Int63n(int64(spec.ReportEvery*float64(time.Second)) + 1)))
		var prev geo.Point
		havePrev := false
		for t.Before(end) {
			scripted := it.pos(t)
			// Reporting interval depends on motion: anchored vessels
			// transmit far less often (paper §1).
			moving := havePrev && geo.Haversine(prev, scripted) > 5
			interval := spec.ReportEvery
			if !moving && havePrev {
				// Anchored and slowly moving vessels transmit less
				// frequently (paper §1), but still well within the
				// tracker's gap threshold.
				interval *= 2
			}
			prev, havePrev = scripted, true

			silentNow := false
			for _, sp := range silences {
				if sp.contains(t) {
					silentNow = true
					break
				}
			}
			if !silentNow && vrng.Float64() >= s.cfg.Noise.DropProb {
				p := scripted
				if s.cfg.Noise.JitterMeters > 0 {
					p = geo.Destination(p, vrng.Float64()*360, absGauss(vrng)*s.cfg.Noise.JitterMeters)
				}
				if s.cfg.Noise.OutlierProb > 0 && vrng.Float64() < s.cfg.Noise.OutlierProb {
					p = geo.Destination(p, vrng.Float64()*360, s.cfg.Noise.OutlierMeters*(0.5+vrng.Float64()))
				}
				out = append(out, ais.Fix{MMSI: spec.MMSI, Pos: p, Time: t})
			}
			dt := interval * (0.5 + vrng.Float64())
			t = t.Add(time.Duration(dt * float64(time.Second)))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out
}

// absGauss returns |N(0,1)| draws.
func absGauss(rng *rand.Rand) float64 {
	g := rng.NormFloat64()
	if g < 0 {
		return -g
	}
	return g
}
