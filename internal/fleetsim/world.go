// Package fleetsim synthesizes an Aegean-like AIS workload that stands
// in for the proprietary IMIS Hellas dataset used in the paper's
// evaluation (23 GB of raw AIS from 6425 vessels over summer 2009).
//
// The simulator reproduces the statistical shape of that dataset rather
// than its exact contents: a fleet with a realistic mix of docked ships,
// ferries on periodic itineraries, cargo vessels on port-to-port
// voyages, fishing boats loitering on fishing grounds, and vessels
// merely passing through; per-vessel AIS reporting cadence averaging
// one position per ~2 minutes of activity; GPS jitter, off-course
// outliers, dropped messages, and communication gaps. It also plants
// scripted actors — loitering groups, transmitter-off crossings of
// protected areas, slow passes over shallows — so that complex event
// recognition has ground truth to find. Everything is deterministic
// given a seed.
package fleetsim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geo"
)

// AreaKind classifies the static areas of interest used by the complex
// event definitions (paper §5.2: "35 polygons representing protected
// areas, forbidden fishing areas, and areas with shallow waters").
type AreaKind int

// Area kinds.
const (
	AreaProtected AreaKind = iota
	AreaForbiddenFishing
	AreaShallow
)

// String names the kind.
func (k AreaKind) String() string {
	switch k {
	case AreaProtected:
		return "protected"
	case AreaForbiddenFishing:
		return "forbidden-fishing"
	case AreaShallow:
		return "shallow"
	default:
		return fmt.Sprintf("AreaKind(%d)", int(k))
	}
}

// Area is one static area of interest.
type Area struct {
	ID        string
	Kind      AreaKind
	Poly      *geo.Polygon
	MinDepthM float64 // water depth; meaningful for AreaShallow
}

// Port is a harbor with a name, an anchorage center, and a polygon used
// by trip segmentation ("once a stop is located inside such a polygon,
// the name of the respective port becomes an attribute of that point",
// paper §3.2).
type Port struct {
	Name   string
	Center geo.Point
	Poly   *geo.Polygon
}

// World bundles the static geography: ports, areas of interest, and the
// monitored bounding region.
type World struct {
	Ports  []Port
	Areas  []Area
	Bounds geo.BBox
}

// aegeanPorts lists the ports of the simulated region with approximate
// real coordinates around the Greek seas.
var aegeanPorts = []struct {
	name     string
	lon, lat float64
}{
	{"Piraeus", 23.6300, 37.9400},
	{"Thessaloniki", 22.9200, 40.6200},
	{"Heraklion", 25.1400, 35.3450},
	{"Rhodes", 28.2300, 36.4500},
	{"Mykonos", 25.3200, 37.4500},
	{"Santorini", 25.4300, 36.3900},
	{"Patras", 21.7300, 38.2500},
	{"Volos", 22.9500, 39.3600},
	{"Kavala", 24.4100, 40.9300},
	{"Chios", 26.1400, 38.3700},
	{"Mytilene", 26.5600, 39.1000},
	{"Syros", 24.9400, 37.4400},
	{"Kos", 27.2900, 36.8900},
	{"Corfu", 19.9200, 39.6200},
	{"Chania", 24.0200, 35.5200},
	{"Kalamata", 22.1100, 37.0200},
	{"Lavrio", 24.0560, 37.7100},
	{"Rafina", 24.0090, 38.0220},
	{"Paros", 25.1300, 37.0850},
	{"Naxos", 25.3740, 37.1070},
	{"Milos", 24.4450, 36.7250},
	{"Samos", 26.9770, 37.7570},
	{"Lemnos", 25.2400, 39.8700},
	{"Igoumenitsa", 20.2650, 39.5030},
}

// portRadiusDeg is the half-side of each port polygon (~1.1 km).
const portRadiusDeg = 0.01

// NewWorld builds the simulated geography: the fixed port table plus
// numAreas seeded areas of interest scattered over open water, split
// roughly evenly among the three kinds. The paper's experiments use 35
// areas.
func NewWorld(seed int64, numAreas int) *World {
	rng := rand.New(rand.NewSource(seed))
	w := &World{
		Bounds: geo.BBox{MinLon: 19.5, MinLat: 34.0, MaxLon: 28.8, MaxLat: 41.2},
	}
	for _, p := range aegeanPorts {
		c := geo.Point{Lon: p.lon, Lat: p.lat}
		w.Ports = append(w.Ports, Port{
			Name:   p.name,
			Center: c,
			Poly:   squarePoly(c, portRadiusDeg),
		})
	}
	for i := 0; i < numAreas; i++ {
		kind := AreaKind(i % 3)
		c := w.randomOffshorePoint(rng)
		half := 0.01 + rng.Float64()*0.05 // 1–6 km half-side
		a := Area{
			ID:   fmt.Sprintf("%s-%02d", kind, i),
			Kind: kind,
			Poly: irregularPoly(c, half, rng),
		}
		if kind == AreaShallow {
			a.MinDepthM = 3 + rng.Float64()*7 // 3–10 m of water
		}
		w.Areas = append(w.Areas, a)
	}
	return w
}

// randomOffshorePoint draws a point in the bounds that is not too close
// to any port, so areas of interest sit in open water.
func (w *World) randomOffshorePoint(rng *rand.Rand) geo.Point {
	for {
		p := geo.Point{
			Lon: w.Bounds.MinLon + rng.Float64()*(w.Bounds.MaxLon-w.Bounds.MinLon),
			Lat: w.Bounds.MinLat + rng.Float64()*(w.Bounds.MaxLat-w.Bounds.MinLat),
		}
		tooClose := false
		for _, port := range w.Ports {
			if geo.Haversine(p, port.Center) < 8000 {
				tooClose = true
				break
			}
		}
		if !tooClose {
			return p
		}
	}
}

// squarePoly returns an axis-aligned square of the given half-side in
// degrees centered at c.
func squarePoly(c geo.Point, half float64) *geo.Polygon {
	return geo.MustPolygon([]geo.Point{
		{Lon: c.Lon - half, Lat: c.Lat - half},
		{Lon: c.Lon + half, Lat: c.Lat - half},
		{Lon: c.Lon + half, Lat: c.Lat + half},
		{Lon: c.Lon - half, Lat: c.Lat + half},
	})
}

// irregularPoly returns a convex-ish polygon with 5–8 vertices placed on
// a jittered ellipse around c, giving areas more realistic shapes than
// squares.
func irregularPoly(c geo.Point, half float64, rng *rand.Rand) *geo.Polygon {
	n := 5 + rng.Intn(4)
	pts := make([]geo.Point, n)
	for i := range pts {
		ang := float64(i) / float64(n) * 2 * math.Pi
		r := half * (0.7 + rng.Float64()*0.5)
		pts[i] = geo.Point{
			Lon: c.Lon + r*math.Cos(ang),
			Lat: c.Lat + r*math.Sin(ang)*0.8,
		}
	}
	return geo.MustPolygon(pts)
}

// AreasOfKind returns the areas of the given kind.
func (w *World) AreasOfKind(kind AreaKind) []Area {
	var out []Area
	for _, a := range w.Areas {
		if a.Kind == kind {
			out = append(out, a)
		}
	}
	return out
}

// PortAt returns the port whose polygon contains p, or nil.
func (w *World) PortAt(p geo.Point) *Port {
	for i := range w.Ports {
		if w.Ports[i].Poly.Contains(p) {
			return &w.Ports[i]
		}
	}
	return nil
}

// MedianLon returns the longitude that splits the monitored region into
// the paper's east/west halves for the two-processor experiments (§5.2:
// one processor handles "the areas located in, and the vessels passing
// through the west part of the area under surveillance").
func (w *World) MedianLon() float64 {
	return (w.Bounds.MinLon + w.Bounds.MaxLon) / 2
}
