package fleetsim

import (
	"fmt"
	"math/rand"
)

// VesselType is the broad category of a simulated ship, matching the
// static vessel characteristics the paper correlates with the stream
// (type, tonnage, cargo; §1, §5.2).
type VesselType int

// Vessel types.
const (
	TypeCargo VesselType = iota
	TypeTanker
	TypePassenger
	TypeFishing
	TypeOther
)

// String names the vessel type.
func (t VesselType) String() string {
	switch t {
	case TypeCargo:
		return "cargo"
	case TypeTanker:
		return "tanker"
	case TypePassenger:
		return "passenger"
	case TypeFishing:
		return "fishing"
	case TypeOther:
		return "other"
	default:
		return fmt.Sprintf("VesselType(%d)", int(t))
	}
}

// Behavior is the movement script class of a simulated vessel.
type Behavior int

// Behaviors. The mix mirrors the paper's description of the dataset:
// "Not all vessels were actually on the move at all times, since a
// considerable part (chiefly cargo ships) were just passing by ...
// But most vessels were frequently sailing, e.g., passenger ships or
// ferries to the islands" (§5).
const (
	// BehaviorDocked vessels stay moored, emitting low-rate reports with
	// GPS drift only (the anchored vessels of the paper's Figure 2(a)).
	BehaviorDocked Behavior = iota
	// BehaviorFerry vessels run periodic itineraries between two ports.
	BehaviorFerry
	// BehaviorVoyager vessels sail multi-leg voyages between random ports
	// with docked intervals in between.
	BehaviorVoyager
	// BehaviorPassing vessels cross the monitored region once and leave.
	BehaviorPassing
	// BehaviorFisher vessels transit to a fishing ground, trawl slowly,
	// and return to port.
	BehaviorFisher
	// BehaviorLoiterer vessels join a scripted group stop in open water —
	// ground truth for the suspicious-area CE (≥ 4 vessels stopped).
	BehaviorLoiterer
	// BehaviorSmuggler vessels route through a protected area and switch
	// their transmitter off inside — ground truth for illegalShipping.
	BehaviorSmuggler
	// BehaviorShoalRunner vessels cut across a shallow area at low speed —
	// ground truth for dangerousShipping.
	BehaviorShoalRunner
	// BehaviorRendezvous vessels sail in pairs to a shared offshore spot,
	// hold station together well away from any port, and part — ground
	// truth for the pairwise rendezvous CE.
	BehaviorRendezvous
	// BehaviorDarkPair vessels approach a shared spot in pairs with
	// transmitters off from a few km out until after parting — ground
	// truth for darkRendezvous gap linking.
	BehaviorDarkPair
)

// String names the behavior.
func (b Behavior) String() string {
	names := []string{"docked", "ferry", "voyager", "passing", "fisher",
		"loiterer", "smuggler", "shoal-runner", "rendezvous", "dark-pair"}
	if int(b) < len(names) {
		return names[b]
	}
	return fmt.Sprintf("Behavior(%d)", int(b))
}

// VesselSpec is the static description of one simulated vessel: the
// registry half of the paper's "static data expressing vessel
// characteristics".
type VesselSpec struct {
	MMSI        uint32
	Name        string
	Type        VesselType
	Behavior    Behavior
	DraftM      float64 // draught in meters; compared against shallow areas
	Fishing     bool    // designated fishing vessel (for illegalFishing)
	CruiseKn    float64 // nominal cruise speed in knots
	ReportEvery float64 // mean seconds between AIS reports while active
}

// mmsiBase puts simulated vessels in the Greek MID range (237…).
const mmsiBase uint32 = 237_000_000

// buildFleet creates n vessel specs with a deterministic behavior mix.
// Scripted actors (loiterer groups, smugglers, shoal runners) are
// allocated first so they exist even in small fleets; the remainder is
// drawn from the background mix.
func buildFleet(rng *rand.Rand, n int) []VesselSpec {
	fleet := make([]VesselSpec, 0, n)
	add := func(v VesselSpec) {
		v.MMSI = mmsiBase + uint32(len(fleet))
		v.Name = fmt.Sprintf("%s-%04d", v.Behavior, len(fleet))
		fleet = append(fleet, v)
	}

	// Scripted actors: two loitering groups of five, three smugglers,
	// three shoal runners, capped for tiny fleets.
	scripted := 0
	want := func(k int) int {
		if scripted+k > n/2 { // never let scripted actors dominate
			k = n/2 - scripted
		}
		if k < 0 {
			k = 0
		}
		scripted += k
		return k
	}
	for i, k := 0, want(10); i < k; i++ {
		add(VesselSpec{
			Type: TypeOther, Behavior: BehaviorLoiterer,
			DraftM: 2 + rng.Float64()*3, CruiseKn: 9 + rng.Float64()*4,
			ReportEvery: 90,
		})
	}
	for i, k := 0, want(3); i < k; i++ {
		add(VesselSpec{
			Type: TypeTanker, Behavior: BehaviorSmuggler,
			DraftM: 9 + rng.Float64()*6, CruiseKn: 11 + rng.Float64()*3,
			ReportEvery: 80,
		})
	}
	for i, k := 0, want(3); i < k; i++ {
		add(VesselSpec{
			Type: TypeCargo, Behavior: BehaviorShoalRunner,
			DraftM: 7 + rng.Float64()*4, CruiseKn: 10 + rng.Float64()*4,
			ReportEvery: 80,
		})
	}

	// Background mix for the rest of the fleet.
	for len(fleet) < n {
		r := rng.Float64()
		switch {
		case r < 0.30:
			add(VesselSpec{
				Type: randType(rng), Behavior: BehaviorDocked,
				DraftM: 2 + rng.Float64()*8, CruiseKn: 0,
				// Kept below half the gap threshold even after the
				// at-rest slowdown, like real anchored-vessel cadence.
				ReportEvery: 150 + rng.Float64()*60,
			})
		case r < 0.55:
			add(VesselSpec{
				Type: TypePassenger, Behavior: BehaviorFerry,
				DraftM: 4 + rng.Float64()*3, CruiseKn: 16 + rng.Float64()*8,
				ReportEvery: 60 + rng.Float64()*60,
			})
		case r < 0.75:
			add(VesselSpec{
				Type: heavyType(rng), Behavior: BehaviorVoyager,
				DraftM: 6 + rng.Float64()*8, CruiseKn: 11 + rng.Float64()*5,
				ReportEvery: 90 + rng.Float64()*90,
			})
		case r < 0.87:
			add(VesselSpec{
				Type: heavyType(rng), Behavior: BehaviorPassing,
				DraftM: 8 + rng.Float64()*8, CruiseKn: 13 + rng.Float64()*5,
				ReportEvery: 100 + rng.Float64()*80,
			})
		default:
			add(VesselSpec{
				Type: TypeFishing, Behavior: BehaviorFisher, Fishing: true,
				DraftM: 1.5 + rng.Float64()*2.5, CruiseKn: 8 + rng.Float64()*3,
				ReportEvery: 90 + rng.Float64()*60,
			})
		}
	}
	return fleet
}

func randType(rng *rand.Rand) VesselType {
	return []VesselType{TypeCargo, TypeTanker, TypePassenger, TypeOther}[rng.Intn(4)]
}

func heavyType(rng *rand.Rand) VesselType {
	if rng.Float64() < 0.6 {
		return TypeCargo
	}
	return TypeTanker
}
