package fleetsim

import (
	"testing"
	"time"

	"repro/internal/geo"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Vessels = 80
	cfg.Duration = 3 * time.Hour
	return cfg
}

func TestSimulatorDeterministic(t *testing.T) {
	cfg := smallConfig()
	a := NewSimulator(cfg).Run()
	b := NewSimulator(cfg).Run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fix %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSimulatorStreamSorted(t *testing.T) {
	fixes := NewSimulator(smallConfig()).Run()
	if len(fixes) == 0 {
		t.Fatal("no fixes generated")
	}
	for i := 1; i < len(fixes); i++ {
		if fixes[i].Time.Before(fixes[i-1].Time) {
			t.Fatalf("stream not sorted at %d", i)
		}
	}
}

func TestSimulatorFixesWithinRun(t *testing.T) {
	cfg := smallConfig()
	fixes := NewSimulator(cfg).Run()
	for _, f := range fixes {
		if f.Time.Before(cfg.Start) || f.Time.After(cfg.Start.Add(cfg.Duration)) {
			t.Fatalf("fix outside run window: %v", f.Time)
		}
		if !f.Pos.Valid() {
			t.Fatalf("invalid position: %v", f.Pos)
		}
	}
}

func TestSimulatorReportingRate(t *testing.T) {
	cfg := smallConfig()
	cfg.Vessels = 200
	fixes := NewSimulator(cfg).Run()
	perVessel := make(map[uint32]int)
	for _, f := range fixes {
		perVessel[f.MMSI]++
	}
	if len(perVessel) < cfg.Vessels/2 {
		t.Errorf("only %d of %d vessels ever reported", len(perVessel), cfg.Vessels)
	}
	// The paper's dataset averages one report per ~2 minutes of activity.
	// Check the fleet-wide mean is within a loose band around that.
	total := 0
	for _, n := range perVessel {
		total += n
	}
	meanPerHour := float64(total) / float64(len(perVessel)) / cfg.Duration.Hours()
	if meanPerHour < 8 || meanPerHour > 80 {
		t.Errorf("mean reports/vessel/hour = %.1f, want within [8, 80]", meanPerHour)
	}
}

func TestSimulatorTruthEventsPlanted(t *testing.T) {
	cfg := smallConfig()
	sim := NewSimulator(cfg)
	counts := make(map[TruthKind]int)
	for _, ev := range sim.Truth() {
		counts[ev.Kind]++
		if ev.End.Before(ev.Start) {
			t.Errorf("truth event %v ends before it starts", ev)
		}
	}
	if counts[TruthLoiter] < 4 {
		t.Errorf("loiter truth events = %d, want >= 4 (a recognizable group)", counts[TruthLoiter])
	}
	if counts[TruthGapInProtected] == 0 {
		t.Error("no gap-in-protected truth events")
	}
	if counts[TruthShallowPass] == 0 {
		t.Error("no shallow-pass truth events")
	}
}

func TestSmugglerGoesSilentNearProtectedArea(t *testing.T) {
	cfg := smallConfig()
	sim := NewSimulator(cfg)
	fixes := sim.Run()
	byMMSI := make(map[uint32][]int64)
	for _, f := range fixes {
		byMMSI[f.MMSI] = append(byMMSI[f.MMSI], f.Time.Unix())
	}
	found := false
	for _, ev := range sim.Truth() {
		if ev.Kind != TruthGapInProtected {
			continue
		}
		// The vessel must have no report strictly inside the silence.
		for _, ts := range byMMSI[ev.MMSI] {
			if ts > ev.Start.Unix() && ts < ev.End.Unix() {
				t.Errorf("smuggler %d reported during scripted silence", ev.MMSI)
			}
		}
		found = true
	}
	if !found {
		t.Skip("no smuggler completed a crossing within the short run")
	}
}

func TestWorldGeometry(t *testing.T) {
	w := NewWorld(7, 35)
	if len(w.Areas) != 35 {
		t.Fatalf("areas = %d, want 35", len(w.Areas))
	}
	kinds := make(map[AreaKind]int)
	for _, a := range w.Areas {
		kinds[a.Kind]++
		if !w.Bounds.Intersects(a.Poly.BBox()) {
			t.Errorf("area %s outside region bounds", a.ID)
		}
		if a.Kind == AreaShallow && a.MinDepthM <= 0 {
			t.Errorf("shallow area %s missing depth", a.ID)
		}
	}
	for _, k := range []AreaKind{AreaProtected, AreaForbiddenFishing, AreaShallow} {
		if kinds[k] < 10 {
			t.Errorf("kind %v has %d areas, want >= 10", k, kinds[k])
		}
	}
	if len(w.Ports) < 20 {
		t.Errorf("ports = %d", len(w.Ports))
	}
}

func TestWorldPortAt(t *testing.T) {
	w := NewWorld(7, 35)
	p := w.Ports[0]
	if got := w.PortAt(p.Center); got == nil || got.Name != p.Name {
		t.Errorf("PortAt(center of %s) = %v", p.Name, got)
	}
	if got := w.PortAt(geo.Point{Lon: 26.0, Lat: 36.0}); got != nil {
		t.Errorf("open water resolved to port %s", got.Name)
	}
}

func TestFleetMix(t *testing.T) {
	sim := NewSimulator(Config{Seed: 3, Vessels: 400, NumAreas: 35,
		Start: time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC), Duration: time.Hour})
	byBehavior := make(map[Behavior]int)
	fishing := 0
	seen := make(map[uint32]bool)
	for _, v := range sim.Fleet() {
		if seen[v.MMSI] {
			t.Fatalf("duplicate MMSI %d", v.MMSI)
		}
		seen[v.MMSI] = true
		byBehavior[v.Behavior]++
		if v.Fishing {
			fishing++
		}
	}
	for _, b := range []Behavior{BehaviorDocked, BehaviorFerry, BehaviorVoyager, BehaviorPassing, BehaviorFisher} {
		if byBehavior[b] == 0 {
			t.Errorf("no vessels with behavior %v", b)
		}
	}
	if fishing == 0 {
		t.Error("no designated fishing vessels")
	}
	if byBehavior[BehaviorLoiterer] < 4 {
		t.Errorf("loiterers = %d, want >= 4", byBehavior[BehaviorLoiterer])
	}
}

func TestItineraryPosMonotoneTime(t *testing.T) {
	cfg := smallConfig()
	sim := NewSimulator(cfg)
	// Scripted positions must be continuous: successive samples 10 s
	// apart can be at most ~150 m apart at 30 knots.
	it := sim.itins[0]
	prev := it.pos(cfg.Start)
	for dt := 10 * time.Second; dt < cfg.Duration; dt += 10 * time.Second {
		cur := it.pos(cfg.Start.Add(dt))
		if geo.Haversine(prev, cur) > 200 {
			t.Fatalf("scripted path jumps %0.f m in 10 s", geo.Haversine(prev, cur))
		}
		prev = cur
	}
}

func TestAreaKindAndBehaviorStrings(t *testing.T) {
	if AreaProtected.String() != "protected" || AreaShallow.String() != "shallow" {
		t.Error("AreaKind.String broken")
	}
	if BehaviorDocked.String() != "docked" || BehaviorSmuggler.String() != "smuggler" {
		t.Error("Behavior.String broken")
	}
	if TypeFishing.String() != "fishing" {
		t.Error("VesselType.String broken")
	}
	if TruthLoiter.String() != "loiter" {
		t.Error("TruthKind.String broken")
	}
}

func TestScriptedPos(t *testing.T) {
	cfg := smallConfig()
	sim := NewSimulator(cfg)
	// A known vessel's scripted position must be close to its reported
	// fixes (within noise scale).
	fixes := sim.Run()
	checked := 0
	for _, f := range fixes {
		truth, ok := sim.ScriptedPos(f.MMSI, f.Time)
		if !ok {
			t.Fatalf("no scripted position for %d", f.MMSI)
		}
		if d := geo.Haversine(truth, f.Pos); d > 5000 {
			t.Fatalf("fix %.0f m from scripted truth (outliers are capped below this)", d)
		}
		checked++
		if checked > 500 {
			break
		}
	}
	if _, ok := sim.ScriptedPos(42, cfg.Start); ok {
		t.Error("scripted position for unknown MMSI")
	}
}

func TestLoiterSpotsExposed(t *testing.T) {
	sim := NewSimulator(smallConfig())
	spots := sim.LoiterSpots()
	if len(spots) != 2 {
		t.Fatalf("loiter spots = %d, want 2", len(spots))
	}
	// Loiter truth events must be near one of the spots.
	for _, ev := range sim.Truth() {
		if ev.Kind != TruthLoiter {
			continue
		}
		near := false
		for _, s := range spots {
			if geo.Haversine(ev.Near, s) < 1000 {
				near = true
			}
		}
		if !near {
			t.Errorf("loiter truth %v not near any exposed spot", ev.MMSI)
		}
	}
}
