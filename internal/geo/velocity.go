package geo

import (
	"fmt"
	"math"
	"time"
)

// Velocity is a vessel's instantaneous velocity vector, derived from its
// two most recent position reports (paper §3.1). SpeedKnots is the ground
// speed; HeadingDeg is the course over ground in degrees from true north,
// in [0, 360).
type Velocity struct {
	SpeedKnots float64
	HeadingDeg float64
}

// String renders the velocity as "speed kn @ heading°".
func (v Velocity) String() string {
	return fmt.Sprintf("%.2f kn @ %05.1f°", v.SpeedKnots, v.HeadingDeg)
}

// VelocityBetween computes the velocity vector implied by moving from
// position a at time ta to position b at time tb, assuming linear motion
// between the two fixes. It returns the zero vector and false when the
// timestamps do not advance (tb <= ta), which callers must treat as
// "velocity unknown": AIS streams may contain duplicate or regressed
// timestamps.
func VelocityBetween(a Point, ta time.Time, b Point, tb time.Time) (Velocity, bool) {
	dt := tb.Sub(ta).Seconds()
	if dt <= 0 {
		return Velocity{}, false
	}
	dist := Haversine(a, b)
	v := Velocity{
		SpeedKnots: MetersPerSecondToKnots(dist / dt),
	}
	if dist > 0 {
		v.HeadingDeg = Bearing(a, b)
	}
	return v, true
}

// MeanVelocity averages a sequence of velocity vectors component-wise in
// Cartesian space, yielding the mean velocity v_m the tracker uses to
// abstract a vessel's known course over its previous m positions
// (paper §3.1, off-course detection). It returns false for an empty
// slice.
func MeanVelocity(vs []Velocity) (Velocity, bool) {
	if len(vs) == 0 {
		return Velocity{}, false
	}
	var x, y, speed float64
	for _, v := range vs {
		r := radians(v.HeadingDeg)
		// North component on y, east component on x, weighted by speed so
		// that slow fixes do not dominate the direction estimate.
		x += v.SpeedKnots * math.Sin(r)
		y += v.SpeedKnots * math.Cos(r)
		speed += v.SpeedKnots
	}
	n := float64(len(vs))
	mean := Velocity{SpeedKnots: speed / n}
	if x != 0 || y != 0 {
		mean.HeadingDeg = normalizeHeading(degrees(math.Atan2(x, y)))
	}
	return mean, true
}

// Deviation quantifies how far velocity v strays from a reference course
// ref. It returns the absolute relative speed change (as a fraction of
// ref's speed, +Inf when ref is at rest but v is not) and the absolute
// heading difference in degrees. The tracker combines both to flag
// off-course outliers.
func Deviation(v, ref Velocity) (speedFrac, headingDeg float64) {
	headingDeg = HeadingDelta(v.HeadingDeg, ref.HeadingDeg)
	switch {
	case ref.SpeedKnots > 0:
		speedFrac = math.Abs(v.SpeedKnots-ref.SpeedKnots) / ref.SpeedKnots
	case v.SpeedKnots > 0:
		speedFrac = math.Inf(1)
	}
	return speedFrac, headingDeg
}

// normalizeHeading folds a heading into [0, 360).
func normalizeHeading(h float64) float64 {
	h = math.Mod(h, 360)
	if h < 0 {
		h += 360
	}
	return h
}
