package geo

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

// unitSquare is the polygon (0,0)-(1,0)-(1,1)-(0,1).
func unitSquare(t *testing.T) *Polygon {
	t.Helper()
	pg, err := NewPolygon([]Point{{0, 0}, {1, 0}, {1, 1}, {0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	return pg
}

func TestNewPolygonRejectsDegenerate(t *testing.T) {
	for _, n := range []int{0, 1, 2} {
		vs := make([]Point, n)
		if _, err := NewPolygon(vs); !errors.Is(err, ErrDegeneratePolygon) {
			t.Errorf("NewPolygon with %d vertices: err = %v, want ErrDegeneratePolygon", n, err)
		}
	}
}

func TestNewPolygonCopiesInput(t *testing.T) {
	vs := []Point{{0, 0}, {1, 0}, {0, 1}}
	pg, err := NewPolygon(vs)
	if err != nil {
		t.Fatal(err)
	}
	vs[0] = Point{99, 99}
	if pg.Vertices()[0] != (Point{0, 0}) {
		t.Error("NewPolygon did not copy its input")
	}
}

func TestMustPolygonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPolygon on degenerate ring did not panic")
		}
	}()
	MustPolygon([]Point{{0, 0}})
}

func TestPolygonContains(t *testing.T) {
	sq := unitSquare(t)
	inside := []Point{{0.5, 0.5}, {0.001, 0.001}, {0.999, 0.999}}
	for _, p := range inside {
		if !sq.Contains(p) {
			t.Errorf("%v should be inside", p)
		}
	}
	outside := []Point{{-0.1, 0.5}, {1.1, 0.5}, {0.5, -0.1}, {0.5, 1.1}, {2, 2}}
	for _, p := range outside {
		if sq.Contains(p) {
			t.Errorf("%v should be outside", p)
		}
	}
	// Boundary counts as inside.
	boundary := []Point{{0, 0}, {0.5, 0}, {1, 1}, {0, 0.5}}
	for _, p := range boundary {
		if !sq.Contains(p) {
			t.Errorf("boundary point %v should count as inside", p)
		}
	}
}

func TestPolygonContainsConcave(t *testing.T) {
	// L-shaped polygon.
	l := MustPolygon([]Point{{0, 0}, {2, 0}, {2, 1}, {1, 1}, {1, 2}, {0, 2}})
	if !l.Contains(Point{0.5, 1.5}) {
		t.Error("(0.5,1.5) should be inside the L")
	}
	if l.Contains(Point{1.5, 1.5}) {
		t.Error("(1.5,1.5) is in the notch, should be outside")
	}
	if !l.Contains(Point{1.5, 0.5}) {
		t.Error("(1.5,0.5) should be inside the L")
	}
}

func TestPolygonDistanceMeters(t *testing.T) {
	sq := unitSquare(t)
	if d := sq.DistanceMeters(Point{0.5, 0.5}); d != 0 {
		t.Errorf("distance from interior = %v, want 0", d)
	}
	// One degree of latitude south of the bottom edge midpoint:
	// distance should be ~111.19 km.
	d := sq.DistanceMeters(Point{0.5, -1})
	if !almostEqual(d, 111194.9, 200) {
		t.Errorf("distance = %v, want ~111195", d)
	}
	// Near a corner: distance to the corner vertex.
	corner := Point{0, 0}
	probe := Destination(corner, 225, 500) // 500 m away diagonally
	d = sq.DistanceMeters(probe)
	if !almostEqual(d, 500, 5) {
		t.Errorf("corner distance = %v, want ~500", d)
	}
}

func TestPolygonDistanceNonNegative(t *testing.T) {
	sq := unitSquare(t)
	f := func(lon, lat float64) bool {
		p := Point{Lon: math.Mod(lon, 10), Lat: math.Mod(lat, 10)}
		return sq.DistanceMeters(p) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolygonContainsImpliesZeroDistance(t *testing.T) {
	sq := unitSquare(t)
	f := func(lon, lat float64) bool {
		p := Point{Lon: math.Mod(math.Abs(lon), 1), Lat: math.Mod(math.Abs(lat), 1)}
		return !sq.Contains(p) || sq.DistanceMeters(p) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPolygonBBox(t *testing.T) {
	pg := MustPolygon([]Point{{23.1, 37.2}, {23.9, 37.1}, {23.5, 38.0}})
	b := pg.BBox()
	want := BBox{MinLon: 23.1, MinLat: 37.1, MaxLon: 23.9, MaxLat: 38.0}
	if b != want {
		t.Errorf("BBox = %+v, want %+v", b, want)
	}
}

func TestPolygonCentroid(t *testing.T) {
	sq := unitSquare(t)
	if c := sq.Centroid(); c != (Point{0.5, 0.5}) {
		t.Errorf("Centroid = %v, want (0.5, 0.5)", c)
	}
}

func TestBBoxOps(t *testing.T) {
	b := BBox{MinLon: 0, MinLat: 0, MaxLon: 2, MaxLat: 2}
	if !b.Contains(Point{1, 1}) || b.Contains(Point{3, 1}) {
		t.Error("BBox.Contains misbehaves")
	}
	e := b.Expand(1)
	if !e.Contains(Point{-0.5, -0.5}) || !e.Contains(Point{2.5, 2.5}) {
		t.Error("BBox.Expand misbehaves")
	}
	if !b.Intersects(BBox{MinLon: 1, MinLat: 1, MaxLon: 3, MaxLat: 3}) {
		t.Error("overlapping boxes should intersect")
	}
	if b.Intersects(BBox{MinLon: 5, MinLat: 5, MaxLon: 6, MaxLat: 6}) {
		t.Error("disjoint boxes should not intersect")
	}
	if c := b.Center(); c != (Point{1, 1}) {
		t.Errorf("Center = %v, want (1,1)", c)
	}
}
