package geo

import (
	"errors"
	"fmt"
	"math"
)

// BBox is an axis-aligned bounding box in lon/lat space.
type BBox struct {
	MinLon, MinLat, MaxLon, MaxLat float64
}

// Contains reports whether p lies inside or on the boundary of the box.
func (b BBox) Contains(p Point) bool {
	return p.Lon >= b.MinLon && p.Lon <= b.MaxLon &&
		p.Lat >= b.MinLat && p.Lat <= b.MaxLat
}

// Expand grows the box by the given margin in degrees on every side.
func (b BBox) Expand(deg float64) BBox {
	return BBox{
		MinLon: b.MinLon - deg, MinLat: b.MinLat - deg,
		MaxLon: b.MaxLon + deg, MaxLat: b.MaxLat + deg,
	}
}

// Intersects reports whether the two boxes overlap.
func (b BBox) Intersects(o BBox) bool {
	return b.MinLon <= o.MaxLon && b.MaxLon >= o.MinLon &&
		b.MinLat <= o.MaxLat && b.MaxLat >= o.MinLat
}

// Center returns the center point of the box.
func (b BBox) Center() Point {
	return Point{Lon: (b.MinLon + b.MaxLon) / 2, Lat: (b.MinLat + b.MaxLat) / 2}
}

// Polygon is a simple (non-self-intersecting) polygon on the lon/lat
// plane, given as an open ring: the closing edge from the last vertex
// back to the first is implicit. Areas of interest in the paper —
// ports, protected areas, forbidden-fishing areas, shallow waters — are
// all polygons of modest extent, so planar containment tests on
// geographic coordinates are adequate.
type Polygon struct {
	vertices []Point
	bbox     BBox
}

// ErrDegeneratePolygon is returned by NewPolygon for rings with fewer
// than three vertices.
var ErrDegeneratePolygon = errors.New("geo: polygon needs at least 3 vertices")

// NewPolygon builds a polygon from the given open ring of vertices.
// The slice is copied.
func NewPolygon(vertices []Point) (*Polygon, error) {
	if len(vertices) < 3 {
		return nil, ErrDegeneratePolygon
	}
	vs := make([]Point, len(vertices))
	copy(vs, vertices)
	pg := &Polygon{vertices: vs}
	pg.bbox = BBox{
		MinLon: vs[0].Lon, MaxLon: vs[0].Lon,
		MinLat: vs[0].Lat, MaxLat: vs[0].Lat,
	}
	for _, v := range vs[1:] {
		if v.Lon < pg.bbox.MinLon {
			pg.bbox.MinLon = v.Lon
		}
		if v.Lon > pg.bbox.MaxLon {
			pg.bbox.MaxLon = v.Lon
		}
		if v.Lat < pg.bbox.MinLat {
			pg.bbox.MinLat = v.Lat
		}
		if v.Lat > pg.bbox.MaxLat {
			pg.bbox.MaxLat = v.Lat
		}
	}
	return pg, nil
}

// MustPolygon is like NewPolygon but panics on error. It is intended for
// statically known rings, e.g. in tests and the fleet simulator's world
// definition.
func MustPolygon(vertices []Point) *Polygon {
	pg, err := NewPolygon(vertices)
	if err != nil {
		panic(fmt.Sprintf("geo: MustPolygon: %v", err))
	}
	return pg
}

// Vertices returns the polygon's ring. The returned slice must not be
// modified.
func (pg *Polygon) Vertices() []Point { return pg.vertices }

// BBox returns the polygon's bounding box.
func (pg *Polygon) BBox() BBox { return pg.bbox }

// Centroid returns the arithmetic centroid of the polygon's vertices.
func (pg *Polygon) Centroid() Point { return Centroid(pg.vertices) }

// Contains reports whether p lies strictly inside the polygon or on its
// boundary, using the even-odd ray-casting rule.
func (pg *Polygon) Contains(p Point) bool {
	if !pg.bbox.Contains(p) {
		return false
	}
	inside := false
	n := len(pg.vertices)
	j := n - 1
	for i := 0; i < n; i++ {
		vi, vj := pg.vertices[i], pg.vertices[j]
		// Points exactly on an edge count as inside: area semantics in the
		// CE definitions ("close to, or in an area") make boundary hits
		// positive.
		if onSegment(vi, vj, p) {
			return true
		}
		if (vi.Lat > p.Lat) != (vj.Lat > p.Lat) {
			xCross := vi.Lon + (p.Lat-vi.Lat)/(vj.Lat-vi.Lat)*(vj.Lon-vi.Lon)
			if p.Lon < xCross {
				inside = !inside
			}
		}
		j = i
	}
	return inside
}

// onSegment reports whether p lies on the segment ab within a tight
// tolerance (~1e-12 degrees, far below GPS resolution).
func onSegment(a, b, p Point) bool {
	const eps = 1e-12
	cross := (b.Lon-a.Lon)*(p.Lat-a.Lat) - (b.Lat-a.Lat)*(p.Lon-a.Lon)
	if cross > eps || cross < -eps {
		return false
	}
	dot := (p.Lon-a.Lon)*(b.Lon-a.Lon) + (p.Lat-a.Lat)*(b.Lat-a.Lat)
	if dot < -eps {
		return false
	}
	lenSq := (b.Lon-a.Lon)*(b.Lon-a.Lon) + (b.Lat-a.Lat)*(b.Lat-a.Lat)
	return dot <= lenSq+eps
}

// DistanceMeters returns the Haversine distance in meters from p to the
// polygon: zero when p is inside, otherwise the minimum distance to any
// boundary edge. This implements the paper's close(Lon, Lat, Area)
// predicate, which tests whether the Haversine distance between a point
// and an area is below a threshold.
func (pg *Polygon) DistanceMeters(p Point) float64 {
	if pg.Contains(p) {
		return 0
	}
	min := -1.0
	n := len(pg.vertices)
	j := n - 1
	for i := 0; i < n; i++ {
		d := distanceToSegment(p, pg.vertices[j], pg.vertices[i])
		if min < 0 || d < min {
			min = d
		}
		j = i
	}
	return min
}

// distanceToSegment returns the Haversine distance from p to the nearest
// point of segment ab, projecting in local planar coordinates first. The
// areas involved span at most tens of kilometers, where the planar
// projection error is negligible relative to the proximity thresholds
// (hundreds of meters to kilometers).
func distanceToSegment(p, a, b Point) float64 {
	// Project to a local plane centered at a, scaling longitude by
	// cos(lat) to make degrees comparable.
	cosLat := cosDeg((a.Lat + b.Lat + p.Lat) / 3)
	ax, ay := 0.0, 0.0
	bx, by := (b.Lon-a.Lon)*cosLat, b.Lat-a.Lat
	px, py := (p.Lon-a.Lon)*cosLat, p.Lat-a.Lat

	dx, dy := bx-ax, by-ay
	lenSq := dx*dx + dy*dy
	var t float64
	if lenSq > 0 {
		t = ((px-ax)*dx + (py-ay)*dy) / lenSq
		if t < 0 {
			t = 0
		} else if t > 1 {
			t = 1
		}
	}
	nearest := Point{
		Lon: a.Lon + t*(b.Lon-a.Lon),
		Lat: a.Lat + t*(b.Lat-a.Lat),
	}
	return Haversine(p, nearest)
}

func cosDeg(deg float64) float64 { return math.Cos(radians(deg)) }
