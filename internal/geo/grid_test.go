package geo

import (
	"math"
	"math/rand"
	"testing"
)

// squareAt returns a square polygon of the given half-side (degrees)
// centered at c.
func squareAt(c Point, half float64) *Polygon {
	return MustPolygon([]Point{
		{c.Lon - half, c.Lat - half},
		{c.Lon + half, c.Lat - half},
		{c.Lon + half, c.Lat + half},
		{c.Lon - half, c.Lat + half},
	})
}

func TestAreaIndexMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var polys []*Polygon
	for i := 0; i < 35; i++ {
		c := Point{Lon: 20 + rng.Float64()*8, Lat: 34 + rng.Float64()*6}
		polys = append(polys, squareAt(c, 0.02+rng.Float64()*0.08))
	}
	const threshold = 3000 // meters
	idx := NewAreaIndex(polys, threshold, 0.25)
	if idx.Fallback() {
		t.Fatal("index unexpectedly degenerated to linear scan")
	}

	for trial := 0; trial < 2000; trial++ {
		p := Point{Lon: 19 + rng.Float64()*10, Lat: 33 + rng.Float64()*8}
		got := idx.CloseTo(p, threshold)
		var want []int32
		for i, pg := range polys {
			if pg.DistanceMeters(p) <= threshold {
				want = append(want, int32(i))
			}
		}
		if !equalInt32(got, want) {
			t.Fatalf("CloseTo(%v) = %v, linear scan = %v", p, got, want)
		}
	}
}

func TestAreaIndexContainedIn(t *testing.T) {
	a := squareAt(Point{23, 37}, 0.1)
	b := squareAt(Point{23.05, 37.05}, 0.1) // overlaps a
	c := squareAt(Point{25, 39}, 0.1)       // far away
	idx := NewAreaIndex([]*Polygon{a, b, c}, 1000, 0.1)

	got := idx.ContainedIn(Point{23.04, 37.04}) // inside both a and b
	if !equalInt32(got, []int32{0, 1}) {
		t.Errorf("ContainedIn = %v, want [0 1]", got)
	}
	if got := idx.ContainedIn(Point{10, 10}); got != nil {
		t.Errorf("far point ContainedIn = %v, want nil", got)
	}
}

func TestAreaIndexEmpty(t *testing.T) {
	idx := NewAreaIndex(nil, 1000, 0.1)
	if got := idx.CloseTo(Point{0, 0}, 1000); got != nil {
		t.Errorf("empty index CloseTo = %v, want nil", got)
	}
	if idx.Len() != 0 {
		t.Errorf("Len = %d, want 0", idx.Len())
	}
}

func TestAreaIndexFallbackStillCorrect(t *testing.T) {
	polys := []*Polygon{squareAt(Point{23, 37}, 0.1)}
	// cellDeg=0 forces the fallback path.
	idx := NewAreaIndex(polys, 1000, 0)
	if !idx.Fallback() {
		t.Fatal("expected fallback")
	}
	if got := idx.CloseTo(Point{23, 37}, 1000); !equalInt32(got, []int32{0}) {
		t.Errorf("fallback CloseTo = %v, want [0]", got)
	}
}

func TestAreaIndexNeverMissesWithinThreshold(t *testing.T) {
	// Probe points just inside/outside the threshold ring of one area.
	pg := squareAt(Point{24, 38}, 0.05)
	idx := NewAreaIndex([]*Polygon{pg}, 2000, 0.05)
	edgeMid := Point{24, 38 + 0.05} // midpoint of the top edge
	for _, d := range []float64{10, 500, 1500, 1999} {
		p := Destination(edgeMid, 0, d) // due north of the edge
		if got := idx.CloseTo(p, 2000); len(got) != 1 {
			t.Errorf("point %.0f m away not found (got %v)", d, got)
		}
	}
	far := Destination(edgeMid, 0, 5000)
	if got := idx.CloseTo(far, 2000); got != nil {
		t.Errorf("point 5 km away reported close: %v", got)
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkAreaIndexCloseTo(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var polys []*Polygon
	for i := 0; i < 35; i++ {
		c := Point{Lon: 20 + rng.Float64()*8, Lat: 34 + rng.Float64()*6}
		polys = append(polys, squareAt(c, 0.05))
	}
	idx := NewAreaIndex(polys, 3000, 0.25)
	pts := make([]Point, 1024)
	for i := range pts {
		pts[i] = Point{Lon: 20 + rng.Float64()*8, Lat: 34 + rng.Float64()*6}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.CloseTo(pts[i%len(pts)], 3000)
	}
}

func BenchmarkHaversine(b *testing.B) {
	p1 := Point{23.6467, 37.9421}
	p2 := Point{25.1442, 35.3387}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Haversine(p1, p2)
	}
	if math.IsNaN(sink) {
		b.Fatal("NaN")
	}
}
