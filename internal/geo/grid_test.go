package geo

import (
	"math"
	"math/rand"
	"testing"
)

// squareAt returns a square polygon of the given half-side (degrees)
// centered at c.
func squareAt(c Point, half float64) *Polygon {
	return MustPolygon([]Point{
		{c.Lon - half, c.Lat - half},
		{c.Lon + half, c.Lat - half},
		{c.Lon + half, c.Lat + half},
		{c.Lon - half, c.Lat + half},
	})
}

func TestAreaIndexMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var polys []*Polygon
	for i := 0; i < 35; i++ {
		c := Point{Lon: 20 + rng.Float64()*8, Lat: 34 + rng.Float64()*6}
		polys = append(polys, squareAt(c, 0.02+rng.Float64()*0.08))
	}
	const threshold = 3000 // meters
	idx := NewAreaIndex(polys, threshold, 0.25)
	if idx.Fallback() {
		t.Fatal("index unexpectedly degenerated to linear scan")
	}

	for trial := 0; trial < 2000; trial++ {
		p := Point{Lon: 19 + rng.Float64()*10, Lat: 33 + rng.Float64()*8}
		got := idx.CloseTo(p, threshold)
		var want []int32
		for i, pg := range polys {
			if pg.DistanceMeters(p) <= threshold {
				want = append(want, int32(i))
			}
		}
		if !equalInt32(got, want) {
			t.Fatalf("CloseTo(%v) = %v, linear scan = %v", p, got, want)
		}
	}
}

func TestAreaIndexContainedIn(t *testing.T) {
	a := squareAt(Point{23, 37}, 0.1)
	b := squareAt(Point{23.05, 37.05}, 0.1) // overlaps a
	c := squareAt(Point{25, 39}, 0.1)       // far away
	idx := NewAreaIndex([]*Polygon{a, b, c}, 1000, 0.1)

	got := idx.ContainedIn(Point{23.04, 37.04}) // inside both a and b
	if !equalInt32(got, []int32{0, 1}) {
		t.Errorf("ContainedIn = %v, want [0 1]", got)
	}
	if got := idx.ContainedIn(Point{10, 10}); got != nil {
		t.Errorf("far point ContainedIn = %v, want nil", got)
	}
}

func TestAreaIndexEmpty(t *testing.T) {
	idx := NewAreaIndex(nil, 1000, 0.1)
	if got := idx.CloseTo(Point{0, 0}, 1000); got != nil {
		t.Errorf("empty index CloseTo = %v, want nil", got)
	}
	if idx.Len() != 0 {
		t.Errorf("Len = %d, want 0", idx.Len())
	}
}

func TestAreaIndexFallbackStillCorrect(t *testing.T) {
	polys := []*Polygon{squareAt(Point{23, 37}, 0.1)}
	// cellDeg=0 forces the fallback path.
	idx := NewAreaIndex(polys, 1000, 0)
	if !idx.Fallback() {
		t.Fatal("expected fallback")
	}
	if got := idx.CloseTo(Point{23, 37}, 1000); !equalInt32(got, []int32{0}) {
		t.Errorf("fallback CloseTo = %v, want [0]", got)
	}
}

func TestAreaIndexNeverMissesWithinThreshold(t *testing.T) {
	// Probe points just inside/outside the threshold ring of one area.
	pg := squareAt(Point{24, 38}, 0.05)
	idx := NewAreaIndex([]*Polygon{pg}, 2000, 0.05)
	edgeMid := Point{24, 38 + 0.05} // midpoint of the top edge
	for _, d := range []float64{10, 500, 1500, 1999} {
		p := Destination(edgeMid, 0, d) // due north of the edge
		if got := idx.CloseTo(p, 2000); len(got) != 1 {
			t.Errorf("point %.0f m away not found (got %v)", d, got)
		}
	}
	far := Destination(edgeMid, 0, 5000)
	if got := idx.CloseTo(far, 2000); got != nil {
		t.Errorf("point 5 km away reported close: %v", got)
	}

	// Wide-latitude regression: a region spanning the equator to ~69°N.
	// Longitude degrees at 69°N are 2.8× shorter than at the equator, so
	// padding with the region-center latitude's cosine (the old bug)
	// leaves the poleward polygon's east/west approaches under-padded
	// and the probe below lands outside the grid bounds — a miss.
	wide := []*Polygon{
		squareAt(Point{24, 0.5}, 0.05),
		squareAt(Point{24, 69}, 0.05),
	}
	widx := NewAreaIndex(wide, 2000, 0.5)
	if widx.Fallback() {
		t.Fatal("wide-latitude index unexpectedly degenerated to linear scan")
	}
	westEdge := Point{Lon: 24 - 0.05, Lat: 69} // midpoint of the west edge
	for _, d := range []float64{100, 1000, 1900} {
		p := Destination(westEdge, 270, d) // due west of the polygon
		if got := widx.CloseTo(p, 2000); !equalInt32(got, []int32{1}) {
			t.Errorf("high-latitude point %.0f m west not found (got %v)", d, got)
		}
	}
	if got := widx.CloseTo(Destination(westEdge, 270, 6000), 2000); got != nil {
		t.Errorf("high-latitude point 6 km west reported close: %v", got)
	}
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkAreaIndexCloseTo(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	var polys []*Polygon
	for i := 0; i < 35; i++ {
		c := Point{Lon: 20 + rng.Float64()*8, Lat: 34 + rng.Float64()*6}
		polys = append(polys, squareAt(c, 0.05))
	}
	idx := NewAreaIndex(polys, 3000, 0.25)
	pts := make([]Point, 1024)
	for i := range pts {
		pts[i] = Point{Lon: 20 + rng.Float64()*8, Lat: 34 + rng.Float64()*6}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.CloseTo(pts[i%len(pts)], 3000)
	}
}

func BenchmarkHaversine(b *testing.B) {
	p1 := Point{23.6467, 37.9421}
	p2 := Point{25.1442, 35.3387}
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Haversine(p1, p2)
	}
	if math.IsNaN(sink) {
		b.Fatal("NaN")
	}
}

func TestPointIndexMatchesLinearScan(t *testing.T) {
	// Random points across a band reaching high latitude, where the
	// per-row longitude span matters; Near must agree with a brute-force
	// Haversine sweep at every radius.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 5; trial++ {
		idx := NewPointIndex(0.05)
		var pts []Point
		for i := 0; i < 300; i++ {
			p := Point{Lon: 20 + rng.Float64()*6, Lat: 62 + rng.Float64()*6}
			pts = append(pts, p)
			idx.Add(int32(i), p)
		}
		for q := 0; q < 200; q++ {
			p := Point{Lon: 20 + rng.Float64()*6, Lat: 62 + rng.Float64()*6}
			radius := 500 + rng.Float64()*20000
			got := append([]int32(nil), idx.Near(p, radius)...)
			var want []int32
			for i, pt := range pts {
				if Haversine(p, pt) <= radius {
					want = append(want, int32(i))
				}
			}
			sortInt32(got)
			if !equalInt32(got, want) {
				t.Fatalf("Near(%v, %.0f) = %v, linear scan = %v", p, radius, got, want)
			}
		}
	}
}

func TestPointIndexDeterministicOrder(t *testing.T) {
	// Identical Add sequences must give byte-identical candidate orders
	// — the analytics tier's determinism contract rests on this.
	build := func() *PointIndex {
		idx := NewPointIndex(0.1)
		rng := rand.New(rand.NewSource(3))
		for i := 0; i < 200; i++ {
			idx.Add(int32(i), Point{Lon: 23 + rng.Float64(), Lat: 37 + rng.Float64()})
		}
		return idx
	}
	a, b := build(), build()
	rng := rand.New(rand.NewSource(4))
	for q := 0; q < 100; q++ {
		p := Point{Lon: 23 + rng.Float64(), Lat: 37 + rng.Float64()}
		ga := a.Near(p, 15000)
		gb := b.Near(p, 15000)
		if !equalInt32(ga, gb) {
			t.Fatalf("identical builds disagree at %v: %v vs %v", p, ga, gb)
		}
	}
}

func TestPointIndexCandidatesSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	idx := NewPointIndex(0.05)
	var pts []Point
	for i := 0; i < 200; i++ {
		p := Point{Lon: 24 + rng.Float64()*2, Lat: 37 + rng.Float64()*2}
		pts = append(pts, p)
		idx.Add(int32(i), p)
	}
	for q := 0; q < 100; q++ {
		p := Point{Lon: 24 + rng.Float64()*2, Lat: 37 + rng.Float64()*2}
		const radius = 4000
		cand := make(map[int32]bool)
		for _, id := range idx.CandidatesAppend(nil, p, radius) {
			cand[id] = true
		}
		for i, pt := range pts {
			if Haversine(p, pt) <= radius && !cand[int32(i)] {
				t.Fatalf("candidates missed point %d (%.0f m away)", i, Haversine(p, pt))
			}
		}
	}
}

func TestPointIndexResetReuse(t *testing.T) {
	idx := NewPointIndex(0.1)
	p1 := Point{Lon: 24, Lat: 37}
	idx.Add(1, p1)
	if got := idx.Near(p1, 100); !equalInt32(got, []int32{1}) {
		t.Fatalf("Near before reset = %v, want [1]", got)
	}
	idx.Reset()
	if idx.Len() != 0 {
		t.Errorf("Len after Reset = %d, want 0", idx.Len())
	}
	if got := idx.Near(p1, 100); got != nil {
		t.Errorf("stale member survived Reset: %v", got)
	}
	p2 := Point{Lon: 25, Lat: 38}
	idx.Add(2, p2)
	if got := idx.Near(p2, 100); !equalInt32(got, []int32{2}) {
		t.Errorf("Near after reuse = %v, want [2]", got)
	}
	if got := idx.Near(p1, 100); got != nil {
		t.Errorf("old point leaked into reused index: %v", got)
	}
}

func sortInt32(s []int32) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
