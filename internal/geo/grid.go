package geo

import (
	"math"
)

// AreaIndex accelerates point-to-area proximity lookups with a uniform
// grid over the monitored region. The complex event recognition module
// evaluates close(Lon, Lat, Area) for every critical movement event
// (paper §4.1); with a grid, only the handful of areas whose padded
// bounding boxes intersect the point's cell are tested exactly, instead
// of all 35 areas.
//
// The index is immutable after construction and safe for concurrent use.
type AreaIndex struct {
	polys    []*Polygon
	padDeg   float64 // proximity threshold converted to degrees latitude
	bounds   BBox
	cellDeg  float64
	cols     int
	rows     int
	cells    [][]int32 // polygon indices per cell
	fallback bool      // true when the index degenerated to a scan
}

// NewAreaIndex builds a grid index over the given polygons for proximity
// queries at the given threshold in meters. cellDeg controls grid
// resolution; a value around the typical area diameter works well. If
// the polygon set is empty the index degenerates gracefully.
func NewAreaIndex(polys []*Polygon, thresholdMeters, cellDeg float64) *AreaIndex {
	// Meters per degree of latitude on the sphere, shrunk by 1% so the
	// padded boxes strictly over-approximate the proximity ring.
	const metersPerDegLat = math.Pi * EarthRadiusMeters / 180
	idx := &AreaIndex{
		polys:   polys,
		padDeg:  thresholdMeters / metersPerDegLat * 1.01,
		cellDeg: cellDeg,
	}
	if len(polys) == 0 || cellDeg <= 0 {
		idx.fallback = true
		return idx
	}

	idx.bounds = polys[0].BBox()
	for _, pg := range polys[1:] {
		b := pg.BBox()
		if b.MinLon < idx.bounds.MinLon {
			idx.bounds.MinLon = b.MinLon
		}
		if b.MaxLon > idx.bounds.MaxLon {
			idx.bounds.MaxLon = b.MaxLon
		}
		if b.MinLat < idx.bounds.MinLat {
			idx.bounds.MinLat = b.MinLat
		}
		if b.MaxLat > idx.bounds.MaxLat {
			idx.bounds.MaxLat = b.MaxLat
		}
	}
	// Pad the grid so that points merely close to an area still fall on it.
	// Longitude degrees shrink with latitude, so pad longitudes more.
	latPad := idx.padDeg
	lonPad := idx.padDeg / math.Max(0.2, cosDeg(idx.bounds.Center().Lat))
	idx.bounds = BBox{
		MinLon: idx.bounds.MinLon - lonPad, MaxLon: idx.bounds.MaxLon + lonPad,
		MinLat: idx.bounds.MinLat - latPad, MaxLat: idx.bounds.MaxLat + latPad,
	}

	idx.cols = int(math.Ceil((idx.bounds.MaxLon - idx.bounds.MinLon) / cellDeg))
	idx.rows = int(math.Ceil((idx.bounds.MaxLat - idx.bounds.MinLat) / cellDeg))
	if idx.cols < 1 {
		idx.cols = 1
	}
	if idx.rows < 1 {
		idx.rows = 1
	}
	const maxCells = 1 << 20
	if idx.cols*idx.rows > maxCells {
		idx.fallback = true
		return idx
	}
	idx.cells = make([][]int32, idx.cols*idx.rows)
	for i, pg := range polys {
		b := pg.BBox()
		c0, r0 := idx.cellOf(Point{Lon: b.MinLon - lonPad, Lat: b.MinLat - latPad})
		c1, r1 := idx.cellOf(Point{Lon: b.MaxLon + lonPad, Lat: b.MaxLat + latPad})
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				cell := r*idx.cols + c
				idx.cells[cell] = append(idx.cells[cell], int32(i))
			}
		}
	}
	return idx
}

// cellOf returns the clamped (col, row) of the cell containing p.
func (idx *AreaIndex) cellOf(p Point) (col, row int) {
	col = int((p.Lon - idx.bounds.MinLon) / idx.cellDeg)
	row = int((p.Lat - idx.bounds.MinLat) / idx.cellDeg)
	if col < 0 {
		col = 0
	} else if col >= idx.cols {
		col = idx.cols - 1
	}
	if row < 0 {
		row = 0
	} else if row >= idx.rows {
		row = idx.rows - 1
	}
	return col, row
}

// Candidates returns the indices (into the constructor's slice) of the
// polygons that might be within the proximity threshold of p. Exactness
// is up to the caller; Candidates may over-approximate but never misses
// a polygon within the threshold.
func (idx *AreaIndex) Candidates(p Point) []int32 {
	if idx.fallback {
		all := make([]int32, len(idx.polys))
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	if !idx.bounds.Contains(p) {
		return nil
	}
	col, row := idx.cellOf(p)
	return idx.cells[row*idx.cols+col]
}

// CloseTo returns the indices of all polygons whose Haversine distance to
// p is at most thresholdMeters, in ascending index order. This is the
// exact form of the paper's close/3 predicate over the whole area set.
func (idx *AreaIndex) CloseTo(p Point, thresholdMeters float64) []int32 {
	return idx.CloseToAppend(nil, p, thresholdMeters)
}

// CloseToAppend is CloseTo writing into buf (grown as needed), so hot
// loops can reuse one buffer across calls instead of allocating per
// query. The index itself is read-only after construction, so
// CloseToAppend is safe to call from concurrent goroutines as long as
// each passes its own buf.
func (idx *AreaIndex) CloseToAppend(buf []int32, p Point, thresholdMeters float64) []int32 {
	for _, i := range idx.Candidates(p) {
		if idx.polys[i].DistanceMeters(p) <= thresholdMeters {
			buf = append(buf, i)
		}
	}
	return buf
}

// ContainedIn returns the indices of the polygons containing p.
func (idx *AreaIndex) ContainedIn(p Point) []int32 {
	var out []int32
	for _, i := range idx.Candidates(p) {
		if idx.polys[i].Contains(p) {
			out = append(out, i)
		}
	}
	return out
}

// Len returns the number of indexed polygons.
func (idx *AreaIndex) Len() int { return len(idx.polys) }

// Fallback reports whether the index degenerated to a linear scan; it is
// exposed for the ablation benchmarks comparing grid vs scan.
func (idx *AreaIndex) Fallback() bool { return idx.fallback }
