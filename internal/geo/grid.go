package geo

import (
	"math"
)

// This file holds the two halves of the system's shared proximity
// index. Both are uniform grids over geographic coordinates and share
// the same padding arithmetic (metersPerDegLat, worstCaseLonPad):
//
//   - AreaIndex: the static half — polygons of the monitored region,
//     built once, queried with point-to-area proximity lookups by the
//     complex event recognition module.
//   - PointIndex: the dynamic half — the per-slide spatio-temporal
//     index the pairwise analytics tier rebuilds from the tracker's
//     merged critical-point state each slide, queried with
//     point-to-point radius lookups (collision screening, rendezvous
//     pairing).

// metersPerDegLat is the meridional meter length of one degree of
// latitude on the sphere.
const metersPerDegLat = math.Pi * EarthRadiusMeters / 180

// minLonCos floors the latitude cosine used to convert a meter pad
// into longitude degrees, so grids near the poles degrade to wide
// (over-approximate) cells instead of dividing by zero.
const minLonCos = 0.05

// worstCaseLonPad converts a latitude pad in degrees into the
// longitude pad that over-approximates it anywhere in a latitude band
// reaching at most maxAbsLat degrees from the equator. Longitude
// degrees shrink with the cosine of the latitude, so the band's
// highest |latitude| needs the widest pad; using any smaller cosine
// (for example the band center's) under-pads the high-latitude edge
// and can make an index miss a neighbor within threshold.
func worstCaseLonPad(padDeg, maxAbsLat float64) float64 {
	return padDeg / math.Max(minLonCos, cosDeg(maxAbsLat))
}

// AreaIndex accelerates point-to-area proximity lookups with a uniform
// grid over the monitored region. The complex event recognition module
// evaluates close(Lon, Lat, Area) for every critical movement event
// (paper §4.1); with a grid, only the handful of areas whose padded
// bounding boxes intersect the point's cell are tested exactly, instead
// of all 35 areas.
//
// The index is immutable after construction and safe for concurrent use.
type AreaIndex struct {
	polys    []*Polygon
	padDeg   float64 // proximity threshold converted to degrees latitude
	bounds   BBox
	cellDeg  float64
	cols     int
	rows     int
	cells    [][]int32 // polygon indices per cell
	fallback bool      // true when the index degenerated to a scan
}

// NewAreaIndex builds a grid index over the given polygons for proximity
// queries at the given threshold in meters. cellDeg controls grid
// resolution; a value around the typical area diameter works well. If
// the polygon set is empty the index degenerates gracefully.
func NewAreaIndex(polys []*Polygon, thresholdMeters, cellDeg float64) *AreaIndex {
	// The threshold in degrees of latitude, inflated by 1% so the padded
	// boxes strictly over-approximate the proximity ring.
	idx := &AreaIndex{
		polys:   polys,
		padDeg:  thresholdMeters / metersPerDegLat * 1.01,
		cellDeg: cellDeg,
	}
	if len(polys) == 0 || cellDeg <= 0 {
		idx.fallback = true
		return idx
	}

	idx.bounds = polys[0].BBox()
	for _, pg := range polys[1:] {
		b := pg.BBox()
		if b.MinLon < idx.bounds.MinLon {
			idx.bounds.MinLon = b.MinLon
		}
		if b.MaxLon > idx.bounds.MaxLon {
			idx.bounds.MaxLon = b.MaxLon
		}
		if b.MinLat < idx.bounds.MinLat {
			idx.bounds.MinLat = b.MinLat
		}
		if b.MaxLat > idx.bounds.MaxLat {
			idx.bounds.MaxLat = b.MaxLat
		}
	}
	// Pad the grid so that points merely close to an area still fall on
	// it. Longitude degrees shrink with latitude, so the pad must assume
	// the worst-case (highest-|latitude|) edge of the region — the center
	// latitude's cosine would under-pad the poleward edge of a region
	// spanning a wide latitude range.
	latPad := idx.padDeg
	maxAbsLat := math.Max(math.Abs(idx.bounds.MinLat-latPad), math.Abs(idx.bounds.MaxLat+latPad))
	lonPad := worstCaseLonPad(idx.padDeg, maxAbsLat)
	idx.bounds = BBox{
		MinLon: idx.bounds.MinLon - lonPad, MaxLon: idx.bounds.MaxLon + lonPad,
		MinLat: idx.bounds.MinLat - latPad, MaxLat: idx.bounds.MaxLat + latPad,
	}

	idx.cols = int(math.Ceil((idx.bounds.MaxLon - idx.bounds.MinLon) / cellDeg))
	idx.rows = int(math.Ceil((idx.bounds.MaxLat - idx.bounds.MinLat) / cellDeg))
	if idx.cols < 1 {
		idx.cols = 1
	}
	if idx.rows < 1 {
		idx.rows = 1
	}
	const maxCells = 1 << 20
	if idx.cols*idx.rows > maxCells {
		idx.fallback = true
		return idx
	}
	idx.cells = make([][]int32, idx.cols*idx.rows)
	for i, pg := range polys {
		b := pg.BBox()
		c0, r0 := idx.cellOf(Point{Lon: b.MinLon - lonPad, Lat: b.MinLat - latPad})
		c1, r1 := idx.cellOf(Point{Lon: b.MaxLon + lonPad, Lat: b.MaxLat + latPad})
		for r := r0; r <= r1; r++ {
			for c := c0; c <= c1; c++ {
				cell := r*idx.cols + c
				idx.cells[cell] = append(idx.cells[cell], int32(i))
			}
		}
	}
	return idx
}

// cellOf returns the clamped (col, row) of the cell containing p.
func (idx *AreaIndex) cellOf(p Point) (col, row int) {
	col = int((p.Lon - idx.bounds.MinLon) / idx.cellDeg)
	row = int((p.Lat - idx.bounds.MinLat) / idx.cellDeg)
	if col < 0 {
		col = 0
	} else if col >= idx.cols {
		col = idx.cols - 1
	}
	if row < 0 {
		row = 0
	} else if row >= idx.rows {
		row = idx.rows - 1
	}
	return col, row
}

// Candidates returns the indices (into the constructor's slice) of the
// polygons that might be within the proximity threshold of p. Exactness
// is up to the caller; Candidates may over-approximate but never misses
// a polygon within the threshold.
func (idx *AreaIndex) Candidates(p Point) []int32 {
	if idx.fallback {
		all := make([]int32, len(idx.polys))
		for i := range all {
			all[i] = int32(i)
		}
		return all
	}
	if !idx.bounds.Contains(p) {
		return nil
	}
	col, row := idx.cellOf(p)
	return idx.cells[row*idx.cols+col]
}

// CloseTo returns the indices of all polygons whose Haversine distance to
// p is at most thresholdMeters, in ascending index order. This is the
// exact form of the paper's close/3 predicate over the whole area set.
func (idx *AreaIndex) CloseTo(p Point, thresholdMeters float64) []int32 {
	return idx.CloseToAppend(nil, p, thresholdMeters)
}

// CloseToAppend is CloseTo writing into buf (grown as needed), so hot
// loops can reuse one buffer across calls instead of allocating per
// query. The index itself is read-only after construction, so
// CloseToAppend is safe to call from concurrent goroutines as long as
// each passes its own buf.
func (idx *AreaIndex) CloseToAppend(buf []int32, p Point, thresholdMeters float64) []int32 {
	for _, i := range idx.Candidates(p) {
		if idx.polys[i].DistanceMeters(p) <= thresholdMeters {
			buf = append(buf, i)
		}
	}
	return buf
}

// ContainedIn returns the indices of the polygons containing p.
func (idx *AreaIndex) ContainedIn(p Point) []int32 {
	var out []int32
	for _, i := range idx.Candidates(p) {
		if idx.polys[i].Contains(p) {
			out = append(out, i)
		}
	}
	return out
}

// Len returns the number of indexed polygons.
func (idx *AreaIndex) Len() int { return len(idx.polys) }

// Fallback reports whether the index degenerated to a linear scan; it is
// exposed for the ablation benchmarks comparing grid vs scan.
func (idx *AreaIndex) Fallback() bool { return idx.fallback }

// PointIndex is the dynamic half of the shared proximity index: a
// uniform hash grid over point positions, rebuilt per window slide from
// the tracker's merged per-vessel state and queried by the pairwise
// analytics consumers (collision screening, rendezvous pairing, dark
// correlation). Unlike AreaIndex it has no fixed bounds — cells exist
// only where points do — so one index serves any monitored region.
//
// Determinism contract: Near/NearAppend scan cells in ascending
// (row, col) order and report each cell's members in insertion order,
// so identical Add sequences produce identical candidate orders. The
// index is not safe for concurrent mutation; rebuild-then-query within
// one slide is the intended use.
type PointIndex struct {
	cellDeg float64
	pts     []Point
	ids     []int32
	cells   map[pointCell][]int32 // values index pts/ids
}

type pointCell struct{ col, row int32 }

// NewPointIndex returns an empty index with the given cell size in
// degrees. A cell around the typical query radius works well; cellDeg
// must be positive.
func NewPointIndex(cellDeg float64) *PointIndex {
	if cellDeg <= 0 {
		cellDeg = 0.05
	}
	return &PointIndex{
		cellDeg: cellDeg,
		cells:   make(map[pointCell][]int32),
	}
}

// Reset empties the index for the next slide, retaining the allocated
// cell slices for reuse.
func (x *PointIndex) Reset() {
	x.pts = x.pts[:0]
	x.ids = x.ids[:0]
	for k, members := range x.cells {
		x.cells[k] = members[:0]
	}
}

// Add inserts a point under the caller's handle id.
func (x *PointIndex) Add(id int32, p Point) {
	c := x.cellAt(p)
	slot := int32(len(x.pts))
	x.pts = append(x.pts, p)
	x.ids = append(x.ids, id)
	x.cells[c] = append(x.cells[c], slot)
}

// Len returns the number of indexed points.
func (x *PointIndex) Len() int { return len(x.pts) }

func (x *PointIndex) cellAt(p Point) pointCell {
	return pointCell{
		col: int32(math.Floor(p.Lon / x.cellDeg)),
		row: int32(math.Floor(p.Lat / x.cellDeg)),
	}
}

// Near returns the ids of every point within radiusMeters of p
// (Haversine-exact), in insertion order. The query point itself is
// reported if it was added; callers exclude their own handle.
func (x *PointIndex) Near(p Point, radiusMeters float64) []int32 {
	return x.NearAppend(nil, p, radiusMeters)
}

// NearAppend is Near writing into buf (grown as needed) so per-slide
// loops can reuse one buffer across queries.
func (x *PointIndex) NearAppend(buf []int32, p Point, radiusMeters float64) []int32 {
	return x.scan(buf, p, radiusMeters, true)
}

// CandidatesAppend appends the ids of every point whose cell intersects
// the padded radius box around p, without the exact Haversine filter —
// the over-approximating form for callers that apply their own pair
// predicate (the collision detector's CPA test).
func (x *PointIndex) CandidatesAppend(buf []int32, p Point, radiusMeters float64) []int32 {
	return x.scan(buf, p, radiusMeters, false)
}

func (x *PointIndex) scan(buf []int32, p Point, radiusMeters float64, exact bool) []int32 {
	if len(x.pts) == 0 {
		return buf
	}
	// The radius in degrees of latitude, inflated by 1% so the scanned
	// cell box strictly over-approximates the proximity ring.
	radDeg := radiusMeters / metersPerDegLat * 1.01
	rowLo := int32(math.Floor((p.Lat - radDeg) / x.cellDeg))
	rowHi := int32(math.Floor((p.Lat + radDeg) / x.cellDeg))
	for row := rowLo; row <= rowHi; row++ {
		// The longitude span a radius covers widens with the row's
		// latitude; pad with the row band's worst-case (highest-|lat|)
		// edge, exactly like the area index's region pad.
		loLat := float64(row) * x.cellDeg
		hiLat := loLat + x.cellDeg
		maxAbsLat := math.Max(math.Abs(loLat), math.Abs(hiLat))
		lonSpan := worstCaseLonPad(radDeg, maxAbsLat)
		colLo := int32(math.Floor((p.Lon - lonSpan) / x.cellDeg))
		colHi := int32(math.Floor((p.Lon + lonSpan) / x.cellDeg))
		for col := colLo; col <= colHi; col++ {
			for _, slot := range x.cells[pointCell{col: col, row: row}] {
				if exact && Haversine(p, x.pts[slot]) > radiusMeters {
					continue
				}
				buf = append(buf, x.ids[slot])
			}
		}
	}
	return buf
}
