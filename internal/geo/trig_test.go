package geo

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// randPoints returns deterministic pseudo-random point pairs spanning the
// globe, biased toward small separations (the tracker's consecutive-fix
// regime) but including antipodal-scale jumps.
func randPoints(n int) [][2]Point {
	rng := rand.New(rand.NewSource(42))
	out := make([][2]Point, 0, n)
	for i := 0; i < n; i++ {
		a := Point{Lon: rng.Float64()*360 - 180, Lat: rng.Float64()*170 - 85}
		var b Point
		if i%3 == 0 {
			// Unconstrained second point.
			b = Point{Lon: rng.Float64()*360 - 180, Lat: rng.Float64()*170 - 85}
		} else {
			// A nearby fix, ~0–2 km away.
			b = Point{Lon: a.Lon + (rng.Float64()-0.5)*0.04, Lat: a.Lat + (rng.Float64()-0.5)*0.02}
		}
		out = append(out, [2]Point{a, b})
	}
	return out
}

// TestCachedTrigBitIdentical pins the contract the tracker's golden
// equivalence rests on: the cached-trig variants perform the same
// floating-point operations in the same order as their uncached
// counterparts, so results are bit-identical — not merely close.
func TestCachedTrigBitIdentical(t *testing.T) {
	for _, pp := range randPoints(2000) {
		a, b := pp[0], pp[1]
		ta, tb := LatTrigOf(a), LatTrigOf(b)

		wantD := Haversine(a, b)
		if gotD := HaversineCached(a, b, ta, tb); gotD != wantD {
			t.Fatalf("HaversineCached(%v, %v) = %v, Haversine = %v (diff %g)",
				a, b, gotD, wantD, gotD-wantD)
		}
		wantB := Bearing(a, b)
		if gotB := BearingCached(a, b, ta, tb); gotB != wantB {
			t.Fatalf("BearingCached(%v, %v) = %v, Bearing = %v", a, b, gotB, wantB)
		}
	}
}

// TestSincosBitIdentical pins the platform assumption LatTrigOf and
// SinCosDeg rely on: math.Sincos returns exactly what separate math.Sin
// and math.Cos calls return, so cached trig stays bit-compatible with
// the uncached formulas that call Sin and Cos individually.
func TestSincosBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 100000; i++ {
		x := (rng.Float64() - 0.5) * 4 * math.Pi
		s, c := math.Sincos(x)
		if s != math.Sin(x) || c != math.Cos(x) {
			t.Fatalf("math.Sincos(%v) = (%v, %v), Sin/Cos = (%v, %v)", x, s, c, math.Sin(x), math.Cos(x))
		}
	}
}

// TestVelocityDistBetween checks the fused velocity+distance helper
// against VelocityBetween plus a separate Haversine call: speed and
// distance must be bit-identical; the heading (computed through the
// double-angle fusion) must agree to within a microdegree and stay in
// [0, 360).
func TestVelocityDistBetween(t *testing.T) {
	t0 := time.Unix(1_400_000_000, 0).UTC()
	for i, pp := range randPoints(2000) {
		a, b := pp[0], pp[1]
		dt := time.Duration(1+i%600) * time.Second
		ta, tb := LatTrigOf(a), LatTrigOf(b)

		wantV, ok := VelocityBetween(a, t0, b, t0.Add(dt))
		if !ok {
			t.Fatalf("VelocityBetween rejected positive dt %v", dt)
		}
		wantD := Haversine(a, b)
		gotV, gotD := VelocityDistBetween(a, b, dt, ta, tb)
		if gotV.SpeedKnots != wantV.SpeedKnots {
			t.Fatalf("VelocityDistBetween(%v, %v, %v) speed = %v, want %v", a, b, dt, gotV.SpeedKnots, wantV.SpeedKnots)
		}
		if gotD != wantD {
			t.Fatalf("VelocityDistBetween(%v, %v) dist = %v, want %v", a, b, gotD, wantD)
		}
		if gotV.HeadingDeg < 0 || gotV.HeadingDeg >= 360 {
			t.Fatalf("heading %v outside [0, 360)", gotV.HeadingDeg)
		}
		if d := HeadingDelta(gotV.HeadingDeg, wantV.HeadingDeg); d > 1e-6 {
			t.Fatalf("VelocityDistBetween(%v, %v) heading = %v, Bearing-based = %v (delta %g)",
				a, b, gotV.HeadingDeg, wantV.HeadingDeg, d)
		}
	}
}

// TestSinCosDegMatchesMeanVelocity pins the per-sample cache the tracker
// keeps for its mean-velocity fold: SinCosDeg plus HeadingFromComponents
// must reproduce MeanVelocity bit-for-bit.
func TestSinCosDegMatchesMeanVelocity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		vs := make([]Velocity, 1+trial%12)
		for i := range vs {
			vs[i] = Velocity{SpeedKnots: rng.Float64() * 30, HeadingDeg: rng.Float64() * 360}
		}
		want, _ := MeanVelocity(vs)

		var x, y, speed float64
		for _, v := range vs {
			sin, cos := SinCosDeg(v.HeadingDeg)
			x += v.SpeedKnots * sin
			y += v.SpeedKnots * cos
			speed += v.SpeedKnots
		}
		got := Velocity{SpeedKnots: speed / float64(len(vs))}
		if x != 0 || y != 0 {
			got.HeadingDeg = HeadingFromComponents(x, y)
		}
		if got != want {
			t.Fatalf("cached fold = %+v, MeanVelocity = %+v", got, want)
		}
	}
}

// TestL1BoundDominatesHaversine is the soundness property of the stop-run
// fast path: for any two points, the L1 bound computed from their
// coordinate deltas must be >= the true great-circle distance, so a bound
// that fits inside a radius proves containment.
func TestL1BoundDominatesHaversine(t *testing.T) {
	for _, pp := range randPoints(5000) {
		a, b := pp[0], pp[1]
		dLat := math.Abs(b.Lat - a.Lat)
		dLon := math.Abs(b.Lon - a.Lon)
		if dLon > 180 {
			// The tracker's bounding boxes never wrap the antimeridian;
			// keep the property aligned with how the bound is used.
			continue
		}
		bound := L1DistanceBoundMeters(dLat, dLon)
		if d := Haversine(a, b); d > bound {
			t.Fatalf("L1 bound %v m < true distance %v m for %v -> %v", bound, d, a, b)
		}
	}
}
