package geo

import (
	"math"
	"time"
)

// Cached-trigonometry variants of Haversine, Bearing and VelocityBetween
// for the tracker's hot path. Between two consecutive fixes of the same
// vessel, sin/cos of the previous fix's latitude were already computed
// when that fix arrived; caching them halves the trigonometric work of a
// distance-plus-bearing evaluation. Every function here performs exactly
// the same floating-point operations in exactly the same order as its
// uncached counterpart, so results are bit-identical — the tracker's
// golden equivalence tests depend on this.

// LatTrig caches the sine and cosine of a point's latitude (in radians).
type LatTrig struct {
	Sin float64
	Cos float64
}

// LatTrigOf computes the latitude trig cache for a point. math.Sincos
// shares the argument reduction between the two halves and returns
// values bit-identical to separate math.Sin and math.Cos calls (the Go
// implementation evaluates the same polynomials after the same
// reduction; the trig tests pin this).
func LatTrigOf(p Point) LatTrig {
	s, c := math.Sincos(radians(p.Lat))
	return LatTrig{Sin: s, Cos: c}
}

// HaversineCached returns the great-circle distance between a and b in
// meters, bit-identical to Haversine(a, b), given each point's cached
// latitude trig.
func HaversineCached(a, b Point, ta, tb LatTrig) float64 {
	dLat := radians(b.Lat - a.Lat)
	dLon := radians(b.Lon - a.Lon)

	sdLat := math.Sin(dLat / 2)
	sdLon := math.Sin(dLon / 2)
	// Same association order as Haversine: ((cos·cos)·sin)·sin.
	s := sdLat*sdLat + ta.Cos*tb.Cos*sdLon*sdLon
	if s > 1 {
		s = 1
	}
	return 2 * EarthRadiusMeters * math.Atan2(math.Sqrt(s), math.Sqrt(1-s))
}

// BearingCached returns the initial bearing from a to b in degrees,
// bit-identical to Bearing(a, b), given each point's cached latitude
// trig.
func BearingCached(a, b Point, ta, tb LatTrig) float64 {
	dLon := radians(b.Lon - a.Lon)

	y := math.Sin(dLon) * tb.Cos
	x := ta.Cos*tb.Sin - ta.Sin*tb.Cos*math.Cos(dLon)
	deg := degrees(math.Atan2(y, x))
	return math.Mod(deg+360, 360)
}

// VelocityDistBetween computes the velocity vector implied by moving
// from a to b over the (positive) duration dt, plus the Haversine
// distance itself so callers advancing an odometer reuse it instead of
// recomputing. The distance (and so the speed) is bit-identical to
// Haversine. The heading fuses the bearing formula with the haversine's
// half-angle term: sin Δλ and cos Δλ come from sin(Δλ/2) by the double-
// angle identities instead of two more trig calls, and the final fold
// into [0, 360) is a conditional add instead of math.Mod. The result
// agrees with Bearing to within a few ULPs — every consumer (the
// tracker, both row and columnar) resolves headings through this one
// function, so the tracker's equivalence goldens are unaffected.
// dt must be positive; the caller has already rejected non-advancing
// timestamps.
func VelocityDistBetween(a, b Point, dt time.Duration, ta, tb LatTrig) (Velocity, float64) {
	dLat := radians(b.Lat - a.Lat)
	dLon := radians(b.Lon - a.Lon)

	sdLat := math.Sin(dLat / 2)
	sdLon := math.Sin(dLon / 2)
	// Same association order as Haversine: ((cos·cos)·sin)·sin.
	s := sdLat*sdLat + ta.Cos*tb.Cos*sdLon*sdLon
	if s > 1 {
		s = 1
	}
	// math.Atan2(y, x) with y >= 0 and finite x > 0 reduces to
	// Atan(y/x) — same division, same polynomial — and to Pi/2 when
	// x == 0 (s clamped to 1); calling those directly skips Atan2's
	// special-case ladder while returning the identical bits.
	sy, cx := math.Sqrt(s), math.Sqrt(1-s)
	ang := math.Pi / 2
	if cx > 0 {
		ang = math.Atan(sy / cx)
	}
	dist := 2 * EarthRadiusMeters * ang

	v := Velocity{SpeedKnots: MetersPerSecondToKnots(dist / dt.Seconds())}
	if dist > 0 {
		var sinD, cosD float64
		if dLon >= -math.Pi && dLon <= math.Pi {
			// |Δλ/2| <= 90°, so cos(Δλ/2) = sqrt(1 - sin²) is safe.
			cdLon := math.Sqrt(1 - sdLon*sdLon)
			sinD = 2 * sdLon * cdLon
			cosD = 1 - 2*sdLon*sdLon
		} else {
			sinD, cosD = math.Sincos(dLon)
		}
		y := sinD * tb.Cos
		x := ta.Cos*tb.Sin - ta.Sin*tb.Cos*cosD
		deg := degrees(math.Atan2(y, x))
		if deg < 0 {
			deg += 360
		}
		if deg >= 360 { // deg == -ε rounded up to 360 by the add
			deg -= 360
		}
		v.HeadingDeg = deg
	}
	return v, dist
}

// SinCosDeg returns math.Sin and math.Cos of an angle given in degrees,
// with the same degree-to-radian conversion the package uses everywhere.
// Uses math.Sincos (bit-identical to the separate calls, see LatTrigOf)
// to share the argument reduction.
func SinCosDeg(deg float64) (sin, cos float64) {
	return math.Sincos(radians(deg))
}

// HeadingFromComponents folds east/north velocity components into a
// heading in [0, 360), exactly as MeanVelocity does. Callers that keep
// per-sample sin/cos caches accumulate x and y themselves and use this
// for the final fold.
func HeadingFromComponents(x, y float64) float64 {
	return normalizeHeading(degrees(math.Atan2(x, y)))
}

// L1DistanceBoundMeters returns a conservative upper bound on the
// great-circle distance between two points separated by at most dLatDeg
// degrees of latitude and dLonDeg degrees of longitude (both
// non-negative): the meridian-then-parallel path is at most
// R·(|Δφ|+|Δλ|) radians long, and a parallel arc is never longer than
// the corresponding equatorial arc. Any true Haversine distance is ≤
// this bound, so a bound that fits a radius guarantees containment —
// the stop-run fast path uses it to skip exact per-point scans.
func L1DistanceBoundMeters(dLatDeg, dLonDeg float64) float64 {
	return EarthRadiusMeters * (dLatDeg + dLonDeg) * (math.Pi / 180)
}
