// Package geo provides the geographic substrate of the maritime
// surveillance system: WGS-84 points, Haversine distances and bearings,
// velocity vectors, linear interpolation along legs, polygons with
// containment and proximity tests, and a uniform grid index for fast
// point-to-area lookups.
//
// Following the paper (Patroumpas et al., EDBT 2015, §3 footnote 2),
// vessel motion between two consecutive AIS fixes evolves in a very small
// region, so it is locally approximated with a Euclidean plane while all
// distances are computed with the Haversine formula on the WGS-84 sphere.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the Haversine formula.
const EarthRadiusMeters = 6371000.0

// Unit conversions used throughout the system.
const (
	MetersPerNauticalMile = 1852.0
	SecondsPerHour        = 3600.0
)

// KnotsToMetersPerSecond converts a speed in knots to meters per second.
func KnotsToMetersPerSecond(knots float64) float64 {
	return knots * MetersPerNauticalMile / SecondsPerHour
}

// MetersPerSecondToKnots converts a speed in meters per second to knots.
func MetersPerSecondToKnots(ms float64) float64 {
	return ms * SecondsPerHour / MetersPerNauticalMile
}

// Point is a WGS-84 position. Lon and Lat are in decimal degrees,
// positive east and north respectively.
type Point struct {
	Lon float64
	Lat float64
}

// String renders the point as "(lon, lat)" with 6 decimal digits
// (roughly 0.1 m resolution), the precision of AIS position reports.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f, %.6f)", p.Lon, p.Lat)
}

// Valid reports whether the point lies within the legal WGS-84 ranges.
// AIS uses Lon=181 and Lat=91 as "not available" sentinels, which Valid
// rejects.
func (p Point) Valid() bool {
	return p.Lon >= -180 && p.Lon <= 180 && p.Lat >= -90 && p.Lat <= 90
}

func radians(deg float64) float64 { return deg * math.Pi / 180 }
func degrees(rad float64) float64 { return rad * 180 / math.Pi }

// Haversine returns the great-circle distance between a and b in meters.
func Haversine(a, b Point) float64 {
	lat1 := radians(a.Lat)
	lat2 := radians(b.Lat)
	dLat := radians(b.Lat - a.Lat)
	dLon := radians(b.Lon - a.Lon)

	s := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLon/2)*math.Sin(dLon/2)
	// Clamp against floating-point drift before the square roots.
	if s > 1 {
		s = 1
	}
	return 2 * EarthRadiusMeters * math.Atan2(math.Sqrt(s), math.Sqrt(1-s))
}

// Bearing returns the initial great-circle bearing from a to b in degrees
// in [0, 360), measured clockwise from true north.
func Bearing(a, b Point) float64 {
	lat1 := radians(a.Lat)
	lat2 := radians(b.Lat)
	dLon := radians(b.Lon - a.Lon)

	y := math.Sin(dLon) * math.Cos(lat2)
	x := math.Cos(lat1)*math.Sin(lat2) - math.Sin(lat1)*math.Cos(lat2)*math.Cos(dLon)
	deg := degrees(math.Atan2(y, x))
	return math.Mod(deg+360, 360)
}

// Destination returns the point reached starting from p and traveling
// distanceMeters along the given initial bearing (degrees from north).
func Destination(p Point, bearingDeg, distanceMeters float64) Point {
	lat1 := radians(p.Lat)
	lon1 := radians(p.Lon)
	brng := radians(bearingDeg)
	d := distanceMeters / EarthRadiusMeters

	lat2 := math.Asin(math.Sin(lat1)*math.Cos(d) +
		math.Cos(lat1)*math.Sin(d)*math.Cos(brng))
	lon2 := lon1 + math.Atan2(
		math.Sin(brng)*math.Sin(d)*math.Cos(lat1),
		math.Cos(d)-math.Sin(lat1)*math.Sin(lat2))

	lon := degrees(lon2)
	// Normalize longitude to [-180, 180].
	for lon > 180 {
		lon -= 360
	}
	for lon < -180 {
		lon += 360
	}
	return Point{Lon: lon, Lat: degrees(lat2)}
}

// Interpolate returns the point a fraction f of the way from a to b,
// with f=0 yielding a and f=1 yielding b. For the short legs between
// consecutive AIS fixes, linear interpolation in coordinate space is an
// adequate local-plane approximation (paper §3, footnote 2). Longitude
// wrap-around across the antimeridian is handled.
func Interpolate(a, b Point, f float64) Point {
	dLon := b.Lon - a.Lon
	if dLon > 180 {
		dLon -= 360
	} else if dLon < -180 {
		dLon += 360
	}
	lon := a.Lon + f*dLon
	if lon > 180 {
		lon -= 360
	} else if lon < -180 {
		lon += 360
	}
	return Point{
		Lon: lon,
		Lat: a.Lat + f*(b.Lat-a.Lat),
	}
}

// Midpoint returns the point halfway between a and b.
func Midpoint(a, b Point) Point { return Interpolate(a, b, 0.5) }

// Centroid returns the arithmetic centroid of the given points, used by
// the tracker to collapse a long-term stop into a single critical point.
// It panics if pts is empty.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geo: Centroid of empty point set")
	}
	var sLon, sLat float64
	for _, p := range pts {
		sLon += p.Lon
		sLat += p.Lat
	}
	n := float64(len(pts))
	return Point{Lon: sLon / n, Lat: sLat / n}
}

// HeadingDelta returns the absolute angular difference between two
// headings in degrees, folded into [0, 180].
func HeadingDelta(h1, h2 float64) float64 {
	d := math.Abs(h1 - h2)
	if d >= 360 {
		// Mod(d, 360) == d for d < 360, so the call is only needed —
		// and only paid — outside the range in-contract headings span.
		d = math.Mod(d, 360)
	}
	if d > 180 {
		d = 360 - d
	}
	return d
}

// SignedHeadingDelta returns the smallest signed rotation that takes
// heading from to heading to, in degrees within (-180, 180]. Positive
// values are clockwise. The tracker accumulates these to detect smooth
// turns whose individual steps are each below the turn threshold.
func SignedHeadingDelta(from, to float64) float64 {
	d := to - from
	if d <= -360 || d >= 360 {
		// Mod(d, 360) == d for |d| < 360 (and the in-contract heading
		// range keeps d there); fold only the out-of-range stragglers.
		d = math.Mod(d, 360)
	}
	if d > 180 {
		d -= 360
	} else if d <= -180 {
		d += 360
	}
	return d
}
