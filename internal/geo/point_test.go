package geo

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

// almostEqual reports |a-b| <= tol.
func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestHaversineKnownDistances(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64 // meters
		tol  float64
	}{
		{"zero", Point{23.0, 37.0}, Point{23.0, 37.0}, 0, 1e-9},
		// Piraeus (23.6467E, 37.9421N) to Heraklion (25.1442E, 35.3387N):
		// roughly 320 km across the Aegean.
		{"piraeus-heraklion", Point{23.6467, 37.9421}, Point{25.1442, 35.3387}, 320000, 10000},
		// One degree of latitude is ~111.19 km on the sphere.
		{"one-degree-lat", Point{0, 0}, Point{0, 1}, 111194.9, 10},
		// One degree of longitude at 60N is about half of that at the equator.
		{"one-degree-lon-60N", Point{0, 60}, Point{1, 60}, 55597.5, 50},
		{"antipodal", Point{0, 0}, Point{180, 0}, math.Pi * EarthRadiusMeters, 1},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Haversine(tc.a, tc.b)
			if !almostEqual(got, tc.want, tc.tol) {
				t.Errorf("Haversine(%v, %v) = %.1f, want %.1f ± %.1f", tc.a, tc.b, got, tc.want, tc.tol)
			}
		})
	}
}

func TestHaversineSymmetry(t *testing.T) {
	f := func(lon1, lat1, lon2, lat2 float64) bool {
		a := Point{Lon: math.Mod(lon1, 180), Lat: math.Mod(lat1, 90)}
		b := Point{Lon: math.Mod(lon2, 180), Lat: math.Mod(lat2, 90)}
		d1, d2 := Haversine(a, b), Haversine(b, a)
		return almostEqual(d1, d2, 1e-6) && d1 >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHaversineTriangleInequality(t *testing.T) {
	f := func(lon1, lat1, lon2, lat2, lon3, lat3 float64) bool {
		a := Point{Lon: math.Mod(lon1, 180), Lat: math.Mod(lat1, 90)}
		b := Point{Lon: math.Mod(lon2, 180), Lat: math.Mod(lat2, 90)}
		c := Point{Lon: math.Mod(lon3, 180), Lat: math.Mod(lat3, 90)}
		// Allow a small absolute slack for floating-point noise.
		return Haversine(a, c) <= Haversine(a, b)+Haversine(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBearingCardinal(t *testing.T) {
	origin := Point{Lon: 23.0, Lat: 37.0}
	tests := []struct {
		name string
		to   Point
		want float64
		tol  float64
	}{
		{"north", Point{23.0, 38.0}, 0, 0.01},
		{"south", Point{23.0, 36.0}, 180, 0.01},
		{"east", Point{24.0, 37.0}, 90, 0.5},
		{"west", Point{22.0, 37.0}, 270, 0.5},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := Bearing(origin, tc.to)
			if HeadingDelta(got, tc.want) > tc.tol {
				t.Errorf("Bearing to %v = %.2f, want %.2f", tc.to, got, tc.want)
			}
		})
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	f := func(rawLon, rawLat, rawBrng, rawDist float64) bool {
		p := Point{
			Lon: math.Mod(rawLon, 170),
			Lat: math.Mod(rawLat, 80), // keep away from the poles
		}
		brng := math.Mod(math.Abs(rawBrng), 360)
		dist := math.Mod(math.Abs(rawDist), 100000) // up to 100 km
		q := Destination(p, brng, dist)
		back := Haversine(p, q)
		return almostEqual(back, dist, math.Max(1e-6*dist, 1e-3))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationBearingConsistency(t *testing.T) {
	p := Point{Lon: 24.5, Lat: 38.2}
	for brng := 0.0; brng < 360; brng += 30 {
		q := Destination(p, brng, 5000)
		got := Bearing(p, q)
		if HeadingDelta(got, brng) > 0.1 {
			t.Errorf("bearing %v: Destination then Bearing gives %.3f", brng, got)
		}
	}
}

func TestInterpolateEndpoints(t *testing.T) {
	a := Point{Lon: 23.1, Lat: 37.5}
	b := Point{Lon: 25.9, Lat: 35.2}
	if got := Interpolate(a, b, 0); got != a {
		t.Errorf("Interpolate(f=0) = %v, want %v", got, a)
	}
	if got := Interpolate(a, b, 1); got != b {
		t.Errorf("Interpolate(f=1) = %v, want %v", got, b)
	}
	mid := Interpolate(a, b, 0.5)
	if !almostEqual(mid.Lon, 24.5, 1e-9) || !almostEqual(mid.Lat, 36.35, 1e-9) {
		t.Errorf("midpoint = %v", mid)
	}
}

func TestInterpolateAntimeridian(t *testing.T) {
	a := Point{Lon: 179.5, Lat: 0}
	b := Point{Lon: -179.5, Lat: 0}
	mid := Interpolate(a, b, 0.5)
	if !(almostEqual(mid.Lon, 180, 1e-9) || almostEqual(mid.Lon, -180, 1e-9)) {
		t.Errorf("antimeridian midpoint = %v, want ±180", mid)
	}
	q := Interpolate(a, b, 0.25)
	if !almostEqual(q.Lon, 179.75, 1e-9) {
		t.Errorf("quarter point = %v, want lon 179.75", q)
	}
}

func TestCentroid(t *testing.T) {
	pts := []Point{{0, 0}, {2, 0}, {2, 2}, {0, 2}}
	c := Centroid(pts)
	if c != (Point{1, 1}) {
		t.Errorf("Centroid = %v, want (1,1)", c)
	}
}

func TestCentroidPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Centroid(nil) did not panic")
		}
	}()
	Centroid(nil)
}

func TestHeadingDelta(t *testing.T) {
	tests := []struct {
		h1, h2, want float64
	}{
		{0, 0, 0},
		{10, 350, 20},
		{350, 10, 20},
		{90, 270, 180},
		{0, 180, 180},
		{45, 60, 15},
		{720, 0, 0},
	}
	for _, tc := range tests {
		if got := HeadingDelta(tc.h1, tc.h2); !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("HeadingDelta(%v, %v) = %v, want %v", tc.h1, tc.h2, got, tc.want)
		}
	}
}

func TestSignedHeadingDelta(t *testing.T) {
	tests := []struct {
		from, to, want float64
	}{
		{0, 10, 10},
		{10, 0, -10},
		{350, 10, 20},
		{10, 350, -20},
		{0, 180, 180},
		{180, 0, 180}, // exactly opposite: canonicalized to +180
	}
	for _, tc := range tests {
		if got := SignedHeadingDelta(tc.from, tc.to); !almostEqual(got, tc.want, 1e-9) {
			t.Errorf("SignedHeadingDelta(%v, %v) = %v, want %v", tc.from, tc.to, got, tc.want)
		}
	}
}

func TestSignedHeadingDeltaInRange(t *testing.T) {
	f := func(from, to float64) bool {
		d := SignedHeadingDelta(math.Mod(from, 360), math.Mod(to, 360))
		return d > -180-1e-9 && d <= 180+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {-180, -90}, {180, 90}, {23.5, 37.9}}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []Point{{181, 0}, {0, 91}, {-181, 0}, {0, -91}, {181, 91}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestUnitConversions(t *testing.T) {
	if got := KnotsToMetersPerSecond(1); !almostEqual(got, 0.5144, 0.001) {
		t.Errorf("1 knot = %v m/s", got)
	}
	f := func(raw float64) bool {
		kn := math.Mod(raw, 100) // realistic vessel speeds
		return almostEqual(MetersPerSecondToKnots(KnotsToMetersPerSecond(kn)), kn, math.Abs(kn)*1e-12+1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVelocityBetween(t *testing.T) {
	t0 := time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)
	a := Point{Lon: 23.0, Lat: 37.0}
	b := Destination(a, 90, 1852) // one nautical mile east

	v, ok := VelocityBetween(a, t0, b, t0.Add(time.Hour))
	if !ok {
		t.Fatal("VelocityBetween returned !ok for advancing timestamps")
	}
	if !almostEqual(v.SpeedKnots, 1.0, 0.001) {
		t.Errorf("speed = %v knots, want 1.0", v.SpeedKnots)
	}
	if HeadingDelta(v.HeadingDeg, 90) > 0.5 {
		t.Errorf("heading = %v, want ~90", v.HeadingDeg)
	}
}

func TestVelocityBetweenRejectsNonAdvancingTime(t *testing.T) {
	t0 := time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)
	a := Point{23, 37}
	b := Point{23.01, 37}
	if _, ok := VelocityBetween(a, t0, b, t0); ok {
		t.Error("equal timestamps should return !ok")
	}
	if _, ok := VelocityBetween(a, t0, b, t0.Add(-time.Second)); ok {
		t.Error("regressed timestamp should return !ok")
	}
}

func TestMeanVelocity(t *testing.T) {
	if _, ok := MeanVelocity(nil); ok {
		t.Error("MeanVelocity(nil) should return !ok")
	}
	vs := []Velocity{
		{SpeedKnots: 10, HeadingDeg: 350},
		{SpeedKnots: 10, HeadingDeg: 10},
	}
	m, ok := MeanVelocity(vs)
	if !ok {
		t.Fatal("!ok")
	}
	if HeadingDelta(m.HeadingDeg, 0) > 0.001 {
		t.Errorf("mean heading = %v, want ~0 (circular mean)", m.HeadingDeg)
	}
	if !almostEqual(m.SpeedKnots, 10, 1e-9) {
		t.Errorf("mean speed = %v, want 10", m.SpeedKnots)
	}
}

func TestDeviation(t *testing.T) {
	ref := Velocity{SpeedKnots: 10, HeadingDeg: 90}
	sf, hd := Deviation(Velocity{SpeedKnots: 15, HeadingDeg: 120}, ref)
	if !almostEqual(sf, 0.5, 1e-9) {
		t.Errorf("speed fraction = %v, want 0.5", sf)
	}
	if !almostEqual(hd, 30, 1e-9) {
		t.Errorf("heading delta = %v, want 30", hd)
	}

	// Reference at rest, vessel moving: infinite relative change.
	sf, _ = Deviation(Velocity{SpeedKnots: 5}, Velocity{})
	if !math.IsInf(sf, 1) {
		t.Errorf("speed fraction vs rest = %v, want +Inf", sf)
	}

	// Both at rest: no deviation.
	sf, _ = Deviation(Velocity{}, Velocity{})
	if sf != 0 {
		t.Errorf("rest vs rest = %v, want 0", sf)
	}
}
