package supervise

import (
	"errors"
	"testing"
	"time"
)

// fakeHealer scripts a Healer: each target heals after a configured
// number of failures.
type fakeHealer struct {
	quarantined map[string]bool
	failLeft    map[string]int
	heals       []string
	abandons    []string
}

func newFakeHealer() *fakeHealer {
	return &fakeHealer{quarantined: map[string]bool{}, failLeft: map[string]int{}}
}

func (f *fakeHealer) Quarantined() []Quarantine {
	var out []Quarantine
	for t := range f.quarantined {
		out = append(out, Quarantine{Target: t, Cause: "panic"})
	}
	return out
}

func (f *fakeHealer) Heal(target string) error {
	f.heals = append(f.heals, target)
	if f.failLeft[target] > 0 {
		f.failLeft[target]--
		return errors.New("replay panicked again")
	}
	delete(f.quarantined, target)
	return nil
}

func (f *fakeHealer) Abandon(target string) {
	f.abandons = append(f.abandons, target)
	delete(f.quarantined, target)
}

func TestSupervisorHealsImmediatelyOnFirstObservation(t *testing.T) {
	h := newFakeHealer()
	h.quarantined["tracker/1"] = true
	h.quarantined["recognizer/0"] = true
	sup := New(h, Policy{})

	if healed := sup.Poll(); healed != 2 {
		t.Fatalf("Poll healed %d targets, want 2", healed)
	}
	if len(h.quarantined) != 0 {
		t.Errorf("targets left quarantined: %v", h.quarantined)
	}
	if st := sup.Stats(); st.Repairs != 2 || st.Failures != 0 || st.GiveUps != 0 {
		t.Errorf("stats = %+v, want 2 repairs", st)
	}
	// Deterministic order: sorted by target.
	if len(h.heals) != 2 || h.heals[0] != "recognizer/0" || h.heals[1] != "tracker/1" {
		t.Errorf("heal order = %v", h.heals)
	}
}

func TestSupervisorExponentialBackoff(t *testing.T) {
	h := newFakeHealer()
	h.quarantined["store"] = true
	h.failLeft["store"] = 3

	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sup := New(h, Policy{InitialBackoff: time.Second, Multiplier: 2, MaxBackoff: time.Minute, GiveUpAfter: 10})
	sup.SetClock(func() time.Time { return clock })

	// Attempt 1 fails; next try is 1s out.
	sup.Poll()
	if len(h.heals) != 1 {
		t.Fatalf("heal attempts: %d, want 1", len(h.heals))
	}
	// Polling again before the backoff elapses must not retry.
	clock = clock.Add(500 * time.Millisecond)
	sup.Poll()
	if len(h.heals) != 1 {
		t.Fatalf("retried during backoff: %d attempts", len(h.heals))
	}
	// Attempt 2 at +1s fails; backoff doubles to 2s.
	clock = clock.Add(500 * time.Millisecond)
	sup.Poll()
	if len(h.heals) != 2 {
		t.Fatalf("heal attempts: %d, want 2", len(h.heals))
	}
	clock = clock.Add(1900 * time.Millisecond)
	sup.Poll()
	if len(h.heals) != 2 {
		t.Fatalf("retried before doubled backoff: %d attempts", len(h.heals))
	}
	// Attempt 3 fails (backoff 4s), attempt 4 succeeds.
	clock = clock.Add(100 * time.Millisecond)
	sup.Poll()
	clock = clock.Add(4 * time.Second)
	if healed := sup.Poll(); healed != 1 {
		t.Fatalf("final attempt should heal, got %d", healed)
	}
	if st := sup.Stats(); st.Repairs != 1 || st.Failures != 3 {
		t.Errorf("stats = %+v, want 1 repair / 3 failures", st)
	}
}

func TestSupervisorBackoffCap(t *testing.T) {
	p := Policy{InitialBackoff: time.Second, Multiplier: 3, MaxBackoff: 5 * time.Second}.withDefaults()
	if d := p.backoff(1); d != time.Second {
		t.Errorf("backoff(1) = %v", d)
	}
	if d := p.backoff(2); d != 3*time.Second {
		t.Errorf("backoff(2) = %v", d)
	}
	if d := p.backoff(3); d != 5*time.Second {
		t.Errorf("backoff(3) should cap at 5s, got %v", d)
	}
	if d := p.backoff(50); d != 5*time.Second {
		t.Errorf("backoff(50) should cap at 5s, got %v", d)
	}
}

func TestSupervisorGivesUp(t *testing.T) {
	h := newFakeHealer()
	h.quarantined["recognizer"] = true
	h.failLeft["recognizer"] = 100

	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sup := New(h, Policy{InitialBackoff: time.Millisecond, MaxBackoff: time.Millisecond, GiveUpAfter: 3})
	sup.SetClock(func() time.Time { return clock })

	for i := 0; i < 10; i++ {
		sup.Poll()
		clock = clock.Add(time.Second)
	}
	if len(h.heals) != 3 {
		t.Errorf("heal attempts = %d, want exactly GiveUpAfter=3", len(h.heals))
	}
	if len(h.abandons) != 1 || h.abandons[0] != "recognizer" {
		t.Errorf("abandons = %v, want [recognizer]", h.abandons)
	}
	st := sup.Stats()
	if st.GiveUps != 1 || st.Failures != 3 || st.Repairs != 0 {
		t.Errorf("stats = %+v", st)
	}
	// The abandoned target left Quarantined; further polls are no-ops.
	sup.Poll()
	if len(h.abandons) != 1 {
		t.Errorf("abandoned twice: %v", h.abandons)
	}
}

func TestSupervisorPrunesExternallyHealedTargets(t *testing.T) {
	h := newFakeHealer()
	h.quarantined["tracker/0"] = true
	h.failLeft["tracker/0"] = 100

	clock := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	sup := New(h, Policy{InitialBackoff: time.Hour, GiveUpAfter: 10})
	sup.SetClock(func() time.Time { return clock })
	sup.Poll() // one failure, long backoff pending

	// An operator restores a checkpoint: the target leaves the
	// quarantined set without the supervisor's help.
	delete(h.quarantined, "tracker/0")
	sup.Poll()

	// The same target quarantines again later: its ledger must have been
	// pruned, so the first repair attempt is immediate despite the
	// pending hour-long backoff from the previous incident.
	h.quarantined["tracker/0"] = true
	h.failLeft["tracker/0"] = 0
	if healed := sup.Poll(); healed != 1 {
		t.Fatalf("fresh quarantine not repaired immediately: healed=%d", healed)
	}
}
