package supervise

import (
	"context"
	"sort"
	"sync"
	"time"
)

// Healer is the surface a supervised system exposes: what is currently
// quarantined, a repair action, and a give-up action. core.System
// implements it.
type Healer interface {
	// Quarantined lists the targets currently out of service and
	// repairable. Targets already given up on must not be listed.
	Quarantined() []Quarantine
	// Heal repairs one target by restore-then-replay and re-admits it;
	// an error leaves the target quarantined.
	Heal(target string) error
	// Abandon gives up on a target: it stays out of service and stops
	// appearing in Quarantined.
	Abandon(target string)
}

// Policy shapes the supervisor's retry behavior. Zero fields take the
// documented defaults.
type Policy struct {
	// InitialBackoff is the wait after the first failed repair attempt
	// (the first attempt itself runs as soon as the quarantine is
	// observed). Default 1s.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 1m.
	MaxBackoff time.Duration
	// Multiplier is the backoff growth factor. Default 2.
	Multiplier float64
	// GiveUpAfter is how many failed repair attempts a target gets
	// before the supervisor abandons it. Default 5.
	GiveUpAfter int
}

func (p Policy) withDefaults() Policy {
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = time.Second
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = time.Minute
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.GiveUpAfter <= 0 {
		p.GiveUpAfter = 5
	}
	return p
}

// backoff returns the wait after the n-th consecutive failure (n >= 1).
func (p Policy) backoff(n int) time.Duration {
	d := p.InitialBackoff
	for i := 1; i < n; i++ {
		d = time.Duration(float64(d) * p.Multiplier)
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	return min(d, p.MaxBackoff)
}

// Stats are the supervisor's lifetime counters.
type Stats struct {
	Repairs  int // successful heal cycles
	Failures int // failed heal attempts
	GiveUps  int // targets abandoned past the give-up threshold
}

// Supervisor drives the quarantine→restore→replay→re-admit loop over a
// Healer: each Poll repairs every due quarantined target, backing off
// exponentially per target on failure and abandoning a target that
// keeps failing. It is safe for concurrent use; Heal calls run outside
// the supervisor's own lock so a slow replay never blocks observation.
type Supervisor struct {
	h      Healer
	policy Policy
	now    func() time.Time
	logf   func(format string, args ...any)

	mu    sync.Mutex
	state map[string]*targetState
	stats Stats
}

// targetState is the per-target retry ledger.
type targetState struct {
	failures int       // consecutive failed repair attempts
	nextTry  time.Time // zero: due immediately
}

// New builds a supervisor over h. Call Poll on whatever cadence suits
// the driver (the serve/recognize drivers poll after every slide), or
// Run for a self-ticking loop.
func New(h Healer, p Policy) *Supervisor {
	return &Supervisor{
		h:      h,
		policy: p.withDefaults(),
		now:    time.Now,
		state:  make(map[string]*targetState),
	}
}

// SetLogger installs an optional printf-style logger for repair
// outcomes.
func (s *Supervisor) SetLogger(fn func(format string, args ...any)) { s.logf = fn }

// SetClock overrides the supervisor's time source (tests).
func (s *Supervisor) SetClock(now func() time.Time) { s.now = now }

// Stats returns the lifetime counters.
func (s *Supervisor) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Poll runs one supervision pass: observe the quarantined set, repair
// every target whose backoff has elapsed, abandon targets past the
// give-up threshold. It returns how many targets were re-admitted.
func (s *Supervisor) Poll() int {
	quarantined := s.h.Quarantined()
	now := s.now()

	s.mu.Lock()
	// Prune ledger entries for targets no longer quarantined (healed by
	// a restore, or abandoned): their history must not taint a future
	// quarantine of the same target.
	live := make(map[string]bool, len(quarantined))
	for _, q := range quarantined {
		live[q.Target] = true
	}
	for t := range s.state {
		if !live[t] {
			delete(s.state, t)
		}
	}
	var due []string
	var abandon []string
	for _, q := range quarantined {
		st := s.state[q.Target]
		if st == nil {
			st = &targetState{}
			s.state[q.Target] = st
		}
		if st.failures >= s.policy.GiveUpAfter {
			abandon = append(abandon, q.Target)
			continue
		}
		if st.nextTry.IsZero() || !now.Before(st.nextTry) {
			due = append(due, q.Target)
		}
	}
	s.mu.Unlock()
	// Deterministic repair order, for tests and log readability.
	sort.Strings(due)

	for _, t := range abandon {
		s.h.Abandon(t)
		s.mu.Lock()
		s.stats.GiveUps++
		delete(s.state, t)
		s.mu.Unlock()
		if s.logf != nil {
			s.logf("supervise: gave up on %s after %d failed repairs", t, s.policy.GiveUpAfter)
		}
	}
	healed := 0
	for _, t := range due {
		err := s.h.Heal(t)
		s.mu.Lock()
		st := s.state[t]
		if err != nil {
			s.stats.Failures++
			if st != nil {
				st.failures++
				st.nextTry = s.now().Add(s.policy.backoff(st.failures))
			}
			s.mu.Unlock()
			if s.logf != nil {
				s.logf("supervise: repairing %s failed: %v", t, err)
			}
			continue
		}
		s.stats.Repairs++
		delete(s.state, t)
		s.mu.Unlock()
		healed++
		if s.logf != nil {
			s.logf("supervise: %s restored and re-admitted", t)
		}
	}
	return healed
}

// Run polls on the given interval until ctx is cancelled. Drivers that
// poll per slide (OnSlideEnd) don't need it; it backstops systems whose
// stream can go quiet while a target is quarantined.
func (s *Supervisor) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			s.Poll()
		}
	}
}
