// Package supervise closes the fault-recovery loop around the pipeline:
// partitions that panic or wedge are quarantined by their tier instead
// of killing the process, and a Supervisor repairs them — restore from
// the last known-good state, replay the journaled slides, re-admit —
// with exponential backoff and a give-up threshold.
//
// The package deliberately depends only on the standard library and the
// observability layer, so every tier (tracker shards, recognizer
// partitions, the MOD store) can share its types without import cycles.
package supervise

import (
	"fmt"
	"time"
)

// Quarantine describes one out-of-service pipeline partition: who it
// is, why it was taken out, and what the failure looked like.
type Quarantine struct {
	// Target names the partition in the supervisor's namespace:
	// "tracker/3" for a tracker shard, "recognizer/1" for a recognition
	// partition, "recognizer" for the unpartitioned recognizer, "store"
	// for the MOD archival store.
	Target string
	// Cause is "panic" for a recovered panic, "stall" for a watchdog
	// timeout.
	Cause string
	// Value is the rendered panic value; empty for stalls.
	Value string
	// Stack is the goroutine stack captured at the recovery site; empty
	// for stalls (the wedged goroutine's stack is not reachable).
	Stack string
	// Since is when the partition was quarantined.
	Since time.Time
}

// String renders the quarantine record for logs and health output.
func (q Quarantine) String() string {
	if q.Cause == "panic" {
		return fmt.Sprintf("%s: panic: %s", q.Target, q.Value)
	}
	return fmt.Sprintf("%s: %s", q.Target, q.Cause)
}
