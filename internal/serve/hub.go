// Package serve is the alert gateway: the HTTP/SSE serving tier that
// turns the pipeline's per-slide alerts into a live stream many
// consumers can subscribe to, plus snapshot queries over the tracker,
// the moving-object store and the pipeline's health. The heart is a
// fan-out hub with one bounded drop-oldest queue per subscriber (the
// stream.IngestBuffer policy applied per consumer), so one slow client
// can never stall recognition or other subscribers; every drop is
// counted and surfaced through /healthz.
//
// With an alert log attached (internal/alertlog) the hub is one node of
// a replicated serving tier: the writer hub appends every envelope
// durably before any subscriber sees it, and stateless replica hubs
// re-publish the tailed log through PublishEnvelopes, preserving the
// log-global sequence numbers — so Last-Event-ID reconnect replay gives
// exactly-once delivery across replica kill/restart, not just across
// one process's lifetime.
package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/maritime"
	"repro/internal/obs"
)

// MarkerReplayTruncated tags the synthetic envelope a resuming
// subscriber receives when part of the requested replay range is no
// longer retained anywhere (ring trimmed and, when a log is attached,
// log pruned or beyond the queue bound): the gap is announced with its
// size instead of silently skipped.
const MarkerReplayTruncated = "replay-truncated"

// Envelope is one recognized alert as published to subscribers: the
// alert plus stream metadata for ordering, reconnect replay and
// latency accounting.
type Envelope struct {
	// Seq is the hub-wide monotonically increasing sequence number; SSE
	// clients resume after a reconnect with Last-Event-ID: <seq>. With
	// an alert log attached the sequence is log-global: every replica
	// serves the same envelope under the same number.
	Seq uint64 `json:"seq"`
	// Slide is the query time of the window slide that recognized the
	// alert (simulated time).
	Slide time.Time `json:"slide"`
	// Published is the wall-clock publish instant, for measuring
	// delivery latency in the load harness.
	Published time.Time      `json:"published"`
	Alert     maritime.Alert `json:"alert"`
	// Marker, when non-empty, makes this a synthetic control envelope
	// (no alert): MarkerReplayTruncated announces a replay gap. Markers
	// bypass subscriber filters.
	Marker string `json:"marker,omitempty"`
	// Missing is the number of sequence numbers a MarkerReplayTruncated
	// envelope stands in for.
	Missing uint64 `json:"missing,omitempty"`
}

// EnvelopeLog is the durable alert log the hub publishes through —
// implemented by alertlog.Log. Append must be idempotent by sequence
// (re-publishing after a checkpoint restore must not duplicate
// records); ReadSince serves reconnect replay past the in-memory
// ring's retention.
type EnvelopeLog interface {
	Append([]Envelope) error
	LastSeq() uint64
	ReadSince(afterSeq uint64, max int) ([]Envelope, error)
}

// Hub fans recognized alerts out to subscribers. Publish never blocks:
// each subscriber owns a bounded queue that drops its oldest entries
// when the consumer falls behind, with drops accounted per subscriber.
type Hub struct {
	// pubMu serializes publishers end to end, so envelopes reach the
	// log, the ring — and every subscriber queue — in sequence order.
	// It is never held by Subscribe, Stats or remove, which only need
	// mu. The fan-out scratch below is guarded by it.
	pubMu sync.Mutex

	// mu guards the subscriber registry (the matcher) and the
	// sequence/published counters. It is held only for short
	// bookkeeping sections — never across the log append, the ring push
	// or a subscriber offer — so registering, departing and stats never
	// wait on a fan-out in flight.
	mu     sync.Mutex
	seq    uint64
	nextID int
	match  *matcher
	ring   *Ring

	// log, when set, receives every envelope durably before any
	// subscriber; replay serves reconnect history past the ring (both
	// set by AttachLog; replicas set only replay via AttachReplay).
	log    EnvelopeLog
	replay EnvelopeLog

	published uint64
	// logErrs counts failed log appends: the hub keeps serving (its own
	// subscribers still get the envelopes) but replicas cannot see the
	// lost records until a checkpoint replay refills them.
	logErrs atomic.Uint64
	// Counters of departed subscribers, folded in so Stats stays
	// cumulative across unsubscribes.
	goneDelivered uint64
	goneDropped   uint64

	// Fan-out scratch (under pubMu): per-slot envelope batches built
	// from the matcher's bitmaps, reused across publishes. fanMark[slot]
	// == fanGen marks slots touched by the current publish.
	fanEnvs    [][]Envelope
	fanSubs    []*Subscriber
	fanMark    []int
	fanTouched []int
	fanGen     int
}

// NewHub returns a hub retaining ringCap alerts for replay and history
// queries (≤ 0 defaults to 1024).
func NewHub(ringCap int) *Hub {
	if ringCap <= 0 {
		ringCap = 1024
	}
	return &Hub{
		match: newMatcher(),
		ring:  NewRing(ringCap),
	}
}

// Ring exposes the alert-history ring buffer.
func (h *Hub) Ring() *Ring { return h.ring }

// AttachLog routes every publish through the durable alert log before
// fan-out and uses it for reconnect replay past the ring. Attach before
// the first publish.
func (h *Hub) AttachLog(l EnvelopeLog) {
	h.mu.Lock()
	h.log = l
	h.replay = l
	h.mu.Unlock()
}

// AttachReplay uses the log only as a replay source — the replica mode:
// envelopes arrive via PublishEnvelopes (already durable), so nothing
// is appended.
func (h *Hub) AttachReplay(l EnvelopeLog) {
	h.mu.Lock()
	h.replay = l
	h.mu.Unlock()
}

// LogAppendErrors returns how many log appends have failed.
func (h *Hub) LogAppendErrors() uint64 { return h.logErrs.Load() }

// Publish stamps the slide's alerts with sequence numbers, appends them
// to the durable log (when attached), then to the history ring, and
// offers them to the matched subscribers. It never blocks on a slow
// consumer; per-subscriber selection runs through the compiled filter
// matcher, so a publish touches O(matched) subscribers, not all of
// them.
//
// The no-gap/no-dup contract with SubscribeFrom survives the unlocked
// delivery: envelopes land in the ring before the subscriber snapshot
// is taken, so a consumer registering mid-publish either is in the
// snapshot (offered directly) or registered after the ring push (and
// preloaded from the ring); a subscriber that ends up on both paths
// deduplicates by sequence number in offer.
func (h *Hub) Publish(slide time.Time, alerts []maritime.Alert) {
	if len(alerts) == 0 {
		return
	}
	now := time.Now()
	h.pubMu.Lock()
	defer h.pubMu.Unlock()

	h.mu.Lock()
	log := h.log
	envs := make([]Envelope, len(alerts))
	for i, a := range alerts {
		h.seq++
		envs[i] = Envelope{Seq: h.seq, Slide: slide, Published: now, Alert: a}
	}
	h.published += uint64(len(envs))
	h.mu.Unlock()

	// Durability precedes visibility: the log append (with its fsync)
	// runs outside mu — publishers are serialized by pubMu anyway, and
	// Subscribe/Stats stay unblocked.
	if log != nil {
		if err := log.Append(envs); err != nil {
			h.logErrs.Add(1)
		}
	}
	h.deliver(envs)
}

// PublishEnvelopes re-publishes already-sequenced envelopes — the
// replica path: a tailer feeds the durable log's records through here,
// preserving their log-global sequence numbers, so SSE replay works
// identically on every replica. Nothing is appended to any log.
func (h *Hub) PublishEnvelopes(envs []Envelope) {
	if len(envs) == 0 {
		return
	}
	h.pubMu.Lock()
	defer h.pubMu.Unlock()

	h.mu.Lock()
	if last := envs[len(envs)-1].Seq; last > h.seq {
		h.seq = last
	}
	h.published += uint64(len(envs))
	h.mu.Unlock()
	h.deliver(envs)
}

// deliver pushes envelopes to the ring, matches them against every
// subscriber filter via the bitmap matcher, and offers each subscriber
// only its matched batch, outside any hub lock. Callers hold pubMu.
func (h *Hub) deliver(envs []Envelope) {
	for i := range envs {
		h.ring.Push(envs[i])
	}

	h.mu.Lock()
	m := h.match
	if n := len(m.slots); len(h.fanEnvs) < n {
		h.fanEnvs = append(h.fanEnvs, make([][]Envelope, n-len(h.fanEnvs))...)
		h.fanSubs = append(h.fanSubs, make([]*Subscriber, n-len(h.fanSubs))...)
		h.fanMark = append(h.fanMark, make([]int, n-len(h.fanMark))...)
	}
	h.fanGen++
	gen := h.fanGen
	h.fanTouched = h.fanTouched[:0]
	for i := range envs {
		bsForEach(m.match(envs[i].Alert), func(slot int) {
			if h.fanMark[slot] != gen {
				h.fanMark[slot] = gen
				h.fanEnvs[slot] = h.fanEnvs[slot][:0]
				h.fanSubs[slot] = m.slots[slot]
				h.fanTouched = append(h.fanTouched, slot)
			}
			h.fanEnvs[slot] = append(h.fanEnvs[slot], envs[i])
		})
	}
	h.mu.Unlock()

	for _, slot := range h.fanTouched {
		h.fanSubs[slot].offer(h.fanEnvs[slot])
	}
}

// Subscribe registers a consumer with the given filter and queue
// capacity (≤ 0 defaults to 256).
func (h *Hub) Subscribe(f Filter, queueCap int) *Subscriber {
	return h.subscribe(f, queueCap, nil)
}

// SubscribeFrom registers a consumer and atomically pre-loads its queue
// with the retained history after sequence afterSeq, so an SSE client
// reconnecting with Last-Event-ID resumes without gaps or duplicates.
// The ring serves recent history; with a log attached, history past the
// ring's retention is replayed from the log (bounded by the queue
// capacity — older records would only be dropped-oldest out again).
// Any range retained nowhere is announced with a MarkerReplayTruncated
// envelope carrying the gap size, never silently skipped.
func (h *Hub) SubscribeFrom(f Filter, queueCap int, afterSeq uint64) *Subscriber {
	return h.subscribe(f, queueCap, &afterSeq)
}

func (h *Hub) subscribe(f Filter, queueCap int, afterSeq *uint64) *Subscriber {
	if queueCap <= 0 {
		queueCap = 256
	}
	s := &Subscriber{filter: f, cap: queueCap, hub: h, slot: -1}
	s.cond = sync.NewCond(&s.mu)

	// Resuming: fetch the log replay before taking the registry lock —
	// it reads segment files from disk. Overlap with the ring preload
	// below is deduplicated by sequence in offer.
	var logEnvs []Envelope
	var logFloor uint64 // first seq the log replay could still deliver
	if afterSeq != nil {
		h.mu.Lock()
		replay := h.replay
		h.mu.Unlock()
		if replay != nil {
			after := *afterSeq
			// Replaying more than the queue holds is wasted work: the
			// oldest records would immediately drop out again. Floor the
			// cursor — reserving one slot for the truncation marker the
			// floor itself produces, so the marker is never the entry the
			// overflowing queue evicts — and announce the skipped prefix.
			if room := uint64(queueCap - 1); replay.LastSeq() > room && after < replay.LastSeq()-room {
				after = replay.LastSeq() - room
			}
			logFloor = after + 1
			cursor := after
			for {
				batch, err := replay.ReadSince(cursor, 4096)
				if err != nil || len(batch) == 0 {
					break
				}
				logEnvs = append(logEnvs, batch...)
				cursor = batch[len(batch)-1].Seq
			}
			if len(logEnvs) > 0 {
				logFloor = logEnvs[0].Seq
			}
		}
	}

	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	s.id = h.nextID
	// Seed the duplicate guard with the subscription point: a fresh
	// subscriber starts at the current head sequence (a publish already
	// in flight counts as "before" it), a resuming one at its cursor.
	// Without this, an in-flight publish whose envelopes straddle the
	// registration could deliver alerts from before the resume point.
	s.lastSeq = h.seq
	if afterSeq != nil {
		after := *afterSeq
		s.lastSeq = after
		// The oldest sequence the preloads below can still deliver:
		// from the log replay when it produced anything, else from the
		// ring.
		firstAvail := logFloor
		if len(logEnvs) == 0 {
			firstAvail = h.ring.FirstSeq()
		}
		switch {
		case h.seq <= after:
			// Nothing new since the cursor; nothing to announce.
		case firstAvail == 0:
			// Everything after the cursor is gone (empty ring, no log).
			s.offer([]Envelope{{Seq: h.seq, Marker: MarkerReplayTruncated, Missing: h.seq - after}})
		case firstAvail > after+1:
			// A prefix of the requested range is gone; announce exactly
			// how much before delivering the surviving tail.
			s.offer([]Envelope{{Seq: firstAvail - 1, Marker: MarkerReplayTruncated, Missing: firstAvail - 1 - after}})
		}
		if len(logEnvs) > 0 {
			s.offer(logEnvs)
		}
		s.offer(h.ring.Since(after))
	}
	s.slot = h.match.add(s)
	return s
}

// remove detaches a closed subscriber, folding its counters into the
// hub's cumulative totals.
func (h *Hub) remove(s *Subscriber, delivered, dropped uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if s.slot < 0 || s.slot >= len(h.match.slots) || h.match.slots[s.slot] != s {
		return
	}
	h.match.remove(s.slot, s.filter)
	h.goneDelivered += delivered
	h.goneDropped += dropped
}

// SubStats is the accounting of one live subscriber.
type SubStats struct {
	ID        int    `json:"id"`
	Pending   int    `json:"pending"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
}

// HubStats is the hub's cumulative accounting, surfaced via /healthz.
type HubStats struct {
	Subscribers int    `json:"subscribers"`
	Published   uint64 `json:"published"`
	Delivered   uint64 `json:"delivered"`
	Dropped     uint64 `json:"dropped"`
	// LogAppendErrors counts durable-log appends that failed (serving
	// continued; replicas miss those records until replay refills them).
	LogAppendErrors uint64 `json:"log_append_errors,omitempty"`
	// Subs details the live subscribers (departed ones are folded into
	// the totals above).
	Subs []SubStats `json:"subs,omitempty"`
}

// Stats snapshots the hub's accounting.
func (h *Hub) Stats() HubStats {
	return h.stats(true)
}

// Totals is Stats without the per-subscriber detail — the cheap
// aggregate the metrics scrape and log lines want.
func (h *Hub) Totals() HubStats {
	return h.stats(false)
}

func (h *Hub) stats(detail bool) HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HubStats{
		Published:       h.published,
		Delivered:       h.goneDelivered,
		Dropped:         h.goneDropped,
		LogAppendErrors: h.logErrs.Load(),
	}
	for _, s := range h.match.slots {
		if s == nil {
			continue
		}
		st.Subscribers++
		ss := s.Stats()
		st.Delivered += ss.Delivered
		st.Dropped += ss.Dropped
		if detail {
			st.Subs = append(st.Subs, ss)
		}
	}
	return st
}

// RegisterMetrics exports the hub's fan-out accounting on the registry,
// sampled at scrape time from the same counters /healthz reports.
func (h *Hub) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("maritime_hub_subscribers", "Live alert-stream subscribers.", nil,
		func() float64 { return float64(h.Totals().Subscribers) })
	r.CounterFunc("maritime_hub_published_total", "Alert envelopes published to the hub.", nil,
		func() float64 { return float64(h.Totals().Published) })
	r.CounterFunc("maritime_hub_delivered_total", "Envelopes delivered across all subscribers (departed ones included).", nil,
		func() float64 { return float64(h.Totals().Delivered) })
	r.CounterFunc("maritime_hub_dropped_total", "Envelopes dropped by subscriber queues (drop-oldest overflow).", nil,
		func() float64 { return float64(h.Totals().Dropped) })
	r.CounterFunc("maritime_hub_log_append_errors_total", "Durable alert-log appends that failed.", nil,
		func() float64 { return float64(h.logErrs.Load()) })
}

// Subscriber is one consumer's bounded drop-oldest queue. The producer
// side (Hub.Publish) enqueues without ever blocking; the consumer pulls
// with Next/NextTimeout.
type Subscriber struct {
	id     int
	slot   int
	filter Filter
	hub    *Hub

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []Envelope // queue[head:] are the live entries
	head      int
	cap       int
	delivered uint64
	dropped   uint64
	closed    bool
	// lastSeq is the highest sequence number ever offered (enqueued or
	// filtered); offers at or below it are duplicates from the
	// replay-preload/live-publish overlap and are discarded.
	lastSeq uint64
}

// ID returns the hub-assigned subscriber id (stable for /healthz).
func (s *Subscriber) ID() int { return s.id }

// offer filters and enqueues the published envelopes, dropping this
// subscriber's oldest entries on overflow. It never blocks. Marker
// envelopes bypass the filter — a truncation announcement concerns
// every resuming subscriber.
func (s *Subscriber) offer(envs []Envelope) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	pushed := false
	for _, e := range envs {
		if e.Seq <= s.lastSeq {
			continue // duplicate of an envelope already offered
		}
		s.lastSeq = e.Seq
		if e.Marker == "" && !s.filter.Match(e.Alert) {
			continue
		}
		if len(s.queue)-s.head >= s.cap {
			// Overflow: this subscriber loses its own oldest alert; the
			// producer and every other subscriber are unaffected.
			s.head++
			s.dropped++
			if s.head > s.cap && s.head*2 > len(s.queue) {
				s.queue = append(s.queue[:0], s.queue[s.head:]...)
				s.head = 0
			}
		}
		s.queue = append(s.queue, e)
		pushed = true
	}
	if pushed {
		s.cond.Signal()
	}
}

// Next blocks until an envelope is available or the subscriber is
// closed (ok false).
func (s *Subscriber) Next() (Envelope, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == s.head && !s.closed {
		s.cond.Wait()
	}
	return s.pop()
}

// NextTimeout is Next with a deadline: timedOut reports an empty return
// because d elapsed first (the SSE pump uses this to emit heartbeats).
func (s *Subscriber) NextTimeout(d time.Duration) (env Envelope, ok, timedOut bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	expired := false
	t := time.AfterFunc(d, func() {
		s.mu.Lock()
		expired = true
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer t.Stop()
	for len(s.queue) == s.head && !s.closed && !expired {
		s.cond.Wait()
	}
	if expired && len(s.queue) == s.head && !s.closed {
		return Envelope{}, false, true
	}
	env, ok = s.pop()
	return env, ok, false
}

// pop removes the head entry; callers hold s.mu. A closed subscriber
// delivers nothing more, so its counters (folded into the hub's totals
// at Close) stay exact.
func (s *Subscriber) pop() (Envelope, bool) {
	if s.closed || len(s.queue) == s.head {
		return Envelope{}, false
	}
	e := s.queue[s.head]
	s.head++
	s.delivered++
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	return e, true
}

// Stats snapshots the subscriber's accounting.
func (s *Subscriber) Stats() SubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SubStats{
		ID:        s.id,
		Pending:   len(s.queue) - s.head,
		Delivered: s.delivered,
		Dropped:   s.dropped,
	}
}

// Close detaches the subscriber from the hub and releases a blocked
// Next. It is idempotent and safe to call from any goroutine (the SSE
// handler closes on client disconnect).
func (s *Subscriber) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	delivered, dropped := s.delivered, s.dropped
	s.cond.Broadcast()
	s.mu.Unlock()
	s.hub.remove(s, delivered, dropped)
}
