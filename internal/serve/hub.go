// Package serve is the alert gateway: the HTTP/SSE serving tier that
// turns the pipeline's per-slide alerts into a live stream many
// consumers can subscribe to, plus snapshot queries over the tracker,
// the moving-object store and the pipeline's health. The heart is a
// fan-out hub with one bounded drop-oldest queue per subscriber (the
// stream.IngestBuffer policy applied per consumer), so one slow client
// can never stall recognition or other subscribers; every drop is
// counted and surfaced through /healthz.
package serve

import (
	"sync"
	"time"

	"repro/internal/maritime"
	"repro/internal/obs"
)

// Envelope is one recognized alert as published to subscribers: the
// alert plus stream metadata for ordering, reconnect replay and
// latency accounting.
type Envelope struct {
	// Seq is the hub-wide monotonically increasing sequence number; SSE
	// clients resume after a reconnect with Last-Event-ID: <seq>.
	Seq uint64 `json:"seq"`
	// Slide is the query time of the window slide that recognized the
	// alert (simulated time).
	Slide time.Time `json:"slide"`
	// Published is the wall-clock publish instant, for measuring
	// delivery latency in the load harness.
	Published time.Time      `json:"published"`
	Alert     maritime.Alert `json:"alert"`
}

// Hub fans recognized alerts out to subscribers. Publish never blocks:
// each subscriber owns a bounded queue that drops its oldest entries
// when the consumer falls behind, with drops accounted per subscriber.
type Hub struct {
	// pubMu serializes publishers end to end, so envelopes reach the
	// ring — and every subscriber queue — in sequence order. It is never
	// held by Subscribe, Stats or remove, which only need mu.
	pubMu sync.Mutex

	// mu guards the subscriber registry and the sequence/published
	// counters. It is held only for short bookkeeping sections — never
	// across the ring push or a subscriber offer — so registering,
	// departing and stats never wait on a fan-out in flight.
	mu     sync.Mutex
	seq    uint64
	nextID int
	subs   map[*Subscriber]struct{}
	ring   *Ring

	published uint64
	// Counters of departed subscribers, folded in so Stats stays
	// cumulative across unsubscribes.
	goneDelivered uint64
	goneDropped   uint64
}

// NewHub returns a hub retaining ringCap alerts for replay and history
// queries (≤ 0 defaults to 1024).
func NewHub(ringCap int) *Hub {
	if ringCap <= 0 {
		ringCap = 1024
	}
	return &Hub{
		subs: make(map[*Subscriber]struct{}),
		ring: NewRing(ringCap),
	}
}

// Ring exposes the alert-history ring buffer.
func (h *Hub) Ring() *Ring { return h.ring }

// Publish stamps the slide's alerts with sequence numbers, appends them
// to the history ring and offers them to every subscriber. It never
// blocks on a slow consumer, and it delivers outside the hub lock: one
// publish against 10k subscribers no longer serializes Subscribe,
// Stats or departures behind every per-subscriber queue lock.
//
// The no-gap/no-dup contract with SubscribeFrom survives the unlocked
// delivery: envelopes land in the ring before the subscriber snapshot
// is taken, so a consumer registering mid-publish either is in the
// snapshot (offered directly) or registered after the ring push (and
// preloaded from the ring); a subscriber that ends up on both paths
// deduplicates by sequence number in offer.
func (h *Hub) Publish(slide time.Time, alerts []maritime.Alert) {
	if len(alerts) == 0 {
		return
	}
	now := time.Now()
	h.pubMu.Lock()
	defer h.pubMu.Unlock()

	h.mu.Lock()
	envs := make([]Envelope, len(alerts))
	for i, a := range alerts {
		h.seq++
		envs[i] = Envelope{Seq: h.seq, Slide: slide, Published: now, Alert: a}
	}
	h.published += uint64(len(envs))
	h.mu.Unlock()

	for i := range envs {
		h.ring.Push(envs[i])
	}

	h.mu.Lock()
	subs := make([]*Subscriber, 0, len(h.subs))
	for s := range h.subs {
		subs = append(subs, s)
	}
	h.mu.Unlock()

	for _, s := range subs {
		s.offer(envs)
	}
}

// Subscribe registers a consumer with the given filter and queue
// capacity (≤ 0 defaults to 256).
func (h *Hub) Subscribe(f Filter, queueCap int) *Subscriber {
	return h.subscribe(f, queueCap, nil)
}

// SubscribeFrom registers a consumer and atomically pre-loads its queue
// with the retained history after sequence afterSeq, so an SSE client
// reconnecting with Last-Event-ID resumes without gaps or duplicates
// (within the ring's retention).
func (h *Hub) SubscribeFrom(f Filter, queueCap int, afterSeq uint64) *Subscriber {
	return h.subscribe(f, queueCap, &afterSeq)
}

func (h *Hub) subscribe(f Filter, queueCap int, afterSeq *uint64) *Subscriber {
	if queueCap <= 0 {
		queueCap = 256
	}
	s := &Subscriber{filter: f, cap: queueCap, hub: h}
	s.cond = sync.NewCond(&s.mu)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	s.id = h.nextID
	// Seed the duplicate guard with the subscription point: a fresh
	// subscriber starts at the current head sequence (a publish already
	// in flight counts as "before" it), a resuming one at its cursor.
	// Without this, an in-flight publish whose envelopes straddle the
	// registration could deliver alerts from before the resume point.
	s.lastSeq = h.seq
	if afterSeq != nil {
		s.lastSeq = *afterSeq
		s.offer(h.ring.Since(*afterSeq))
	}
	h.subs[s] = struct{}{}
	return s
}

// remove detaches a closed subscriber, folding its counters into the
// hub's cumulative totals.
func (h *Hub) remove(s *Subscriber, delivered, dropped uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[s]; !ok {
		return
	}
	delete(h.subs, s)
	h.goneDelivered += delivered
	h.goneDropped += dropped
}

// SubStats is the accounting of one live subscriber.
type SubStats struct {
	ID        int    `json:"id"`
	Pending   int    `json:"pending"`
	Delivered uint64 `json:"delivered"`
	Dropped   uint64 `json:"dropped"`
}

// HubStats is the hub's cumulative accounting, surfaced via /healthz.
type HubStats struct {
	Subscribers int    `json:"subscribers"`
	Published   uint64 `json:"published"`
	Delivered   uint64 `json:"delivered"`
	Dropped     uint64 `json:"dropped"`
	// Subs details the live subscribers (departed ones are folded into
	// the totals above).
	Subs []SubStats `json:"subs,omitempty"`
}

// Stats snapshots the hub's accounting.
func (h *Hub) Stats() HubStats {
	return h.stats(true)
}

// Totals is Stats without the per-subscriber detail — the cheap
// aggregate the metrics scrape and log lines want.
func (h *Hub) Totals() HubStats {
	return h.stats(false)
}

func (h *Hub) stats(detail bool) HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := HubStats{
		Subscribers: len(h.subs),
		Published:   h.published,
		Delivered:   h.goneDelivered,
		Dropped:     h.goneDropped,
	}
	for s := range h.subs {
		ss := s.Stats()
		st.Delivered += ss.Delivered
		st.Dropped += ss.Dropped
		if detail {
			st.Subs = append(st.Subs, ss)
		}
	}
	return st
}

// RegisterMetrics exports the hub's fan-out accounting on the registry,
// sampled at scrape time from the same counters /healthz reports.
func (h *Hub) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("maritime_hub_subscribers", "Live alert-stream subscribers.", nil,
		func() float64 { return float64(h.Totals().Subscribers) })
	r.CounterFunc("maritime_hub_published_total", "Alert envelopes published to the hub.", nil,
		func() float64 { return float64(h.Totals().Published) })
	r.CounterFunc("maritime_hub_delivered_total", "Envelopes delivered across all subscribers (departed ones included).", nil,
		func() float64 { return float64(h.Totals().Delivered) })
	r.CounterFunc("maritime_hub_dropped_total", "Envelopes dropped by subscriber queues (drop-oldest overflow).", nil,
		func() float64 { return float64(h.Totals().Dropped) })
}

// Subscriber is one consumer's bounded drop-oldest queue. The producer
// side (Hub.Publish) enqueues without ever blocking; the consumer pulls
// with Next/NextTimeout.
type Subscriber struct {
	id     int
	filter Filter
	hub    *Hub

	mu        sync.Mutex
	cond      *sync.Cond
	queue     []Envelope // queue[head:] are the live entries
	head      int
	cap       int
	delivered uint64
	dropped   uint64
	closed    bool
	// lastSeq is the highest sequence number ever offered (enqueued or
	// filtered); offers at or below it are duplicates from the
	// replay-preload/live-publish overlap and are discarded.
	lastSeq uint64
}

// ID returns the hub-assigned subscriber id (stable for /healthz).
func (s *Subscriber) ID() int { return s.id }

// offer filters and enqueues the published envelopes, dropping this
// subscriber's oldest entries on overflow. It never blocks.
func (s *Subscriber) offer(envs []Envelope) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	pushed := false
	for _, e := range envs {
		if e.Seq <= s.lastSeq {
			continue // duplicate of an envelope already offered
		}
		s.lastSeq = e.Seq
		if !s.filter.Match(e.Alert) {
			continue
		}
		if len(s.queue)-s.head >= s.cap {
			// Overflow: this subscriber loses its own oldest alert; the
			// producer and every other subscriber are unaffected.
			s.head++
			s.dropped++
			if s.head > s.cap && s.head*2 > len(s.queue) {
				s.queue = append(s.queue[:0], s.queue[s.head:]...)
				s.head = 0
			}
		}
		s.queue = append(s.queue, e)
		pushed = true
	}
	if pushed {
		s.cond.Signal()
	}
}

// Next blocks until an envelope is available or the subscriber is
// closed (ok false).
func (s *Subscriber) Next() (Envelope, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) == s.head && !s.closed {
		s.cond.Wait()
	}
	return s.pop()
}

// NextTimeout is Next with a deadline: timedOut reports an empty return
// because d elapsed first (the SSE pump uses this to emit heartbeats).
func (s *Subscriber) NextTimeout(d time.Duration) (env Envelope, ok, timedOut bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	expired := false
	t := time.AfterFunc(d, func() {
		s.mu.Lock()
		expired = true
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer t.Stop()
	for len(s.queue) == s.head && !s.closed && !expired {
		s.cond.Wait()
	}
	if expired && len(s.queue) == s.head && !s.closed {
		return Envelope{}, false, true
	}
	env, ok = s.pop()
	return env, ok, false
}

// pop removes the head entry; callers hold s.mu. A closed subscriber
// delivers nothing more, so its counters (folded into the hub's totals
// at Close) stay exact.
func (s *Subscriber) pop() (Envelope, bool) {
	if s.closed || len(s.queue) == s.head {
		return Envelope{}, false
	}
	e := s.queue[s.head]
	s.head++
	s.delivered++
	if s.head == len(s.queue) {
		s.queue = s.queue[:0]
		s.head = 0
	}
	return e, true
}

// Stats snapshots the subscriber's accounting.
func (s *Subscriber) Stats() SubStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SubStats{
		ID:        s.id,
		Pending:   len(s.queue) - s.head,
		Delivered: s.delivered,
		Dropped:   s.dropped,
	}
}

// Close detaches the subscriber from the hub and releases a blocked
// Next. It is idempotent and safe to call from any goroutine (the SSE
// handler closes on client disconnect).
func (s *Subscriber) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	delivered, dropped := s.delivered, s.dropped
	s.cond.Broadcast()
	s.mu.Unlock()
	s.hub.remove(s, delivered, dropped)
}
