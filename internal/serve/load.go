package serve

import (
	"context"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// LoadOptions configures a fan-out load run against a gateway or a set
// of replica gateways.
type LoadOptions struct {
	// BaseURL is the gateway root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// BaseURLs, when non-empty, overrides BaseURL with several serving
	// endpoints (the writer gateway and/or its replicas); subscribers
	// are spread round-robin across them, measuring the whole serving
	// tier instead of one node.
	BaseURLs []string
	// Subscribers is how many concurrent SSE clients to drive.
	Subscribers int
	// Duration bounds the run; the clients disconnect when it elapses.
	Duration time.Duration
	// Query is an optional raw filter query appended to /events, e.g.
	// "mmsi=237000101" or "ce=illegalShipping".
	Query string
}

// LoadReport is the outcome of a load run: aggregate delivery
// throughput and the tail of the publish→receive latency distribution
// across every subscriber.
type LoadReport struct {
	Subscribers int
	Replicas    int           // serving endpoints the subscribers were spread over
	Errors      int           // subscriber streams that ended in error
	Events      uint64        // envelopes received across all subscribers
	PerReplica  []uint64      // envelopes received via each endpoint, in BaseURLs order
	Elapsed     time.Duration // wall-clock run time
	P50         time.Duration // delivery latency percentiles
	P95         time.Duration
	P99         time.Duration
	Max         time.Duration
}

// Rate returns the aggregate delivery rate in events per second.
func (r LoadReport) Rate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Events) / r.Elapsed.Seconds()
}

// String renders the report for logs.
func (r LoadReport) String() string {
	return fmt.Sprintf(
		"%d subscribers over %d replicas: %d events in %s (%.0f ev/s, %d errors); latency p50=%s p95=%s p99=%s max=%s",
		r.Subscribers, r.Replicas, r.Events, r.Elapsed.Round(time.Millisecond), r.Rate(), r.Errors,
		r.P50.Round(10*time.Microsecond), r.P95.Round(10*time.Microsecond),
		r.P99.Round(10*time.Microsecond), r.Max.Round(10*time.Microsecond))
}

// latencyHist is a lock-free exponential histogram of delivery
// latencies: bucket i counts samples in [2^i, 2^(i+1)) microseconds.
// Percentiles are reported as the upper bound of the bucket holding the
// rank — coarse but cheap enough to sample every event from 10k
// concurrent subscribers without perturbing the measurement.
type latencyHist struct {
	buckets [40]atomic.Uint64
	max     atomic.Int64 // nanoseconds
}

func (h *latencyHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	i := 0
	if us > 0 {
		i = int(math.Log2(float64(us))) + 1
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	h.buckets[i].Add(1)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// percentile returns the upper bound of the bucket containing rank
// q·total.
func (h *latencyHist) percentile(q float64) time.Duration {
	var total uint64
	for i := range h.buckets {
		total += h.buckets[i].Load()
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen > rank {
			return time.Duration(1<<uint(i)) * time.Microsecond
		}
	}
	return time.Duration(h.max.Load())
}

// RunLoad drives opt.Subscribers concurrent SSE clients — spread
// round-robin over the configured endpoints — for opt.Duration and
// reports aggregate throughput and delivery-latency tails. Latency is
// receive time minus the envelope's Published stamp, so it covers
// fan-out queueing (and, via a replica, the log append + tail), SSE
// encoding and the wire.
func RunLoad(ctx context.Context, opt LoadOptions) LoadReport {
	if opt.Subscribers <= 0 {
		opt.Subscribers = 1
	}
	bases := opt.BaseURLs
	if len(bases) == 0 {
		bases = []string{opt.BaseURL}
	}
	urls := make([]string, len(bases))
	for i, b := range bases {
		urls[i] = strings.TrimRight(b, "/") + "/events"
		if opt.Query != "" {
			urls[i] += "?" + opt.Query
		}
	}
	runCtx, cancel := context.WithTimeout(ctx, opt.Duration)
	defer cancel()

	var (
		hist   latencyHist
		events atomic.Uint64
		errs   atomic.Int64
		wg     sync.WaitGroup
	)
	perReplica := make([]atomic.Uint64, len(urls))
	start := time.Now()
	for i := 0; i < opt.Subscribers; i++ {
		wg.Add(1)
		go func(replica int) {
			defer wg.Done()
			err := StreamAlerts(runCtx, urls[replica], 0, func(e Envelope) {
				events.Add(1)
				perReplica[replica].Add(1)
				hist.observe(time.Since(e.Published))
			})
			if err != nil {
				errs.Add(1)
			}
		}(i % len(urls))
	}
	wg.Wait()
	rep := LoadReport{
		Subscribers: opt.Subscribers,
		Replicas:    len(urls),
		Errors:      int(errs.Load()),
		Events:      events.Load(),
		PerReplica:  make([]uint64, len(urls)),
		Elapsed:     time.Since(start),
		P50:         hist.percentile(0.50),
		P95:         hist.percentile(0.95),
		P99:         hist.percentile(0.99),
		Max:         time.Duration(hist.max.Load()),
	}
	for i := range perReplica {
		rep.PerReplica[i] = perReplica[i].Load()
	}
	return rep
}
