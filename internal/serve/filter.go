package serve

import (
	"fmt"
	"net/url"
	"strconv"
	"strings"

	"repro/internal/maritime"
)

// Filter selects which alerts a subscriber receives. A nil set means
// "match any". Note that durative area-level CEs (suspicious,
// illegalFishing) carry no triggering vessel, so an MMSI filter
// excludes them by design — subscribe by area or CE type to follow
// those.
type Filter struct {
	MMSI  map[uint32]struct{}
	CEs   map[string]struct{}
	Areas map[string]struct{}
}

// Match reports whether the alert passes the filter. A pairwise alert
// (rendezvous, darkRendezvous, collisionCourse) matches an MMSI filter
// through either of its two vessels.
func (f Filter) Match(a maritime.Alert) bool {
	if f.MMSI != nil {
		_, ok := f.MMSI[a.Vessel]
		if !ok && a.Vessel2 != 0 {
			_, ok = f.MMSI[a.Vessel2]
		}
		if !ok {
			return false
		}
	}
	if f.CEs != nil {
		if _, ok := f.CEs[a.CE]; !ok {
			return false
		}
	}
	if f.Areas != nil {
		if _, ok := f.Areas[a.AreaID]; !ok {
			return false
		}
	}
	return true
}

// ParseFilter builds a filter from URL query parameters: comma-separated
// "mmsi", "ce" and "area" lists (absent or empty = match any), e.g.
// /events?mmsi=237000101,237000102&ce=illegalShipping.
func ParseFilter(q url.Values) (Filter, error) {
	var f Filter
	if raw := strings.TrimSpace(q.Get("mmsi")); raw != "" {
		f.MMSI = make(map[uint32]struct{})
		for _, tok := range strings.Split(raw, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			v, err := strconv.ParseUint(tok, 10, 32)
			if err != nil {
				return Filter{}, fmt.Errorf("serve: bad mmsi %q: %w", tok, err)
			}
			f.MMSI[uint32(v)] = struct{}{}
		}
	}
	if set := splitSet(q.Get("ce")); set != nil {
		for ce := range set {
			switch ce {
			case maritime.CESuspicious, maritime.CEIllegalFishing,
				maritime.CEIllegalShipping, maritime.CEDangerousShipping,
				maritime.CERendezvous, maritime.CEDarkRendezvous,
				maritime.CECollisionCourse:
			default:
				return Filter{}, fmt.Errorf("serve: unknown ce %q", ce)
			}
		}
		f.CEs = set
	}
	f.Areas = splitSet(q.Get("area"))
	return f, nil
}

// splitSet parses a comma-separated list into a set; nil when empty.
func splitSet(raw string) map[string]struct{} {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return nil
	}
	set := make(map[string]struct{})
	for _, tok := range strings.Split(raw, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			set[tok] = struct{}{}
		}
	}
	if len(set) == 0 {
		return nil
	}
	return set
}
