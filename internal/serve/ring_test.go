package serve

import (
	"testing"
	"time"
)

// pushSeqs fills the ring with envelopes seq first..last.
func pushSeqs(r *Ring, first, last uint64) {
	for seq := first; seq <= last; seq++ {
		r.Push(Envelope{Seq: seq, Slide: time.Unix(int64(seq), 0)})
	}
}

func ringSeqs(envs []Envelope) []uint64 {
	out := make([]uint64, len(envs))
	for i, e := range envs {
		out[i] = e.Seq
	}
	return out
}

func requireSeqs(t *testing.T, got []Envelope, want ...uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("got seqs %v, want %v", ringSeqs(got), want)
	}
	for i, e := range got {
		if e.Seq != want[i] {
			t.Fatalf("got seqs %v, want %v", ringSeqs(got), want)
		}
	}
}

func TestRingEmpty(t *testing.T) {
	r := NewRing(4)
	if r.FirstSeq() != 0 {
		t.Errorf("FirstSeq of empty ring = %d, want 0", r.FirstSeq())
	}
	if got := r.Since(0); got != nil {
		t.Errorf("Since on empty ring = %v, want nil", ringSeqs(got))
	}
	if got := r.Last(5); len(got) != 0 {
		t.Errorf("Last on empty ring = %v, want empty", ringSeqs(got))
	}
}

// TestRingExactCapacity pins behavior at the fill boundary: exactly cap
// entries, nothing evicted yet.
func TestRingExactCapacity(t *testing.T) {
	r := NewRing(4)
	pushSeqs(r, 1, 4)
	if r.FirstSeq() != 1 {
		t.Errorf("FirstSeq = %d, want 1 (no eviction at exact capacity)", r.FirstSeq())
	}
	requireSeqs(t, r.Since(0), 1, 2, 3, 4)
	requireSeqs(t, r.Last(0), 1, 2, 3, 4)
}

// TestRingWrapBoundaries exercises Since/Last/FirstSeq after the buffer
// has wrapped: the oldest retained entry sits mid-array, and the binary
// search must still find every boundary correctly.
func TestRingWrapBoundaries(t *testing.T) {
	r := NewRing(4)
	pushSeqs(r, 1, 10) // retained: 7..10, start index mid-buffer
	if r.FirstSeq() != 7 {
		t.Fatalf("FirstSeq = %d, want 7", r.FirstSeq())
	}
	requireSeqs(t, r.Since(0), 7, 8, 9, 10) // cursor before the trim
	requireSeqs(t, r.Since(6), 7, 8, 9, 10) // cursor exactly at the trim boundary
	requireSeqs(t, r.Since(7), 8, 9, 10)    // cursor on the oldest retained entry
	requireSeqs(t, r.Since(9), 10)          // cursor one before the head
	if got := r.Since(10); got != nil {     // cursor at the head: caught up
		t.Fatalf("Since(head) = %v, want nil", ringSeqs(got))
	}
	if got := r.Since(99); got != nil { // cursor past the head
		t.Fatalf("Since(past head) = %v, want nil", ringSeqs(got))
	}
	requireSeqs(t, r.Last(1), 10)
	requireSeqs(t, r.Last(4), 7, 8, 9, 10)
	requireSeqs(t, r.Last(99), 7, 8, 9, 10) // n beyond retention clamps
	requireSeqs(t, r.Last(0), 7, 8, 9, 10)  // 0 = everything retained
}

// TestRingSingleSlot is the degenerate ring: every push evicts.
func TestRingSingleSlot(t *testing.T) {
	r := NewRing(1)
	pushSeqs(r, 1, 3)
	if r.FirstSeq() != 3 {
		t.Errorf("FirstSeq = %d, want 3", r.FirstSeq())
	}
	requireSeqs(t, r.Since(0), 3)
	requireSeqs(t, r.Last(0), 3)
}
