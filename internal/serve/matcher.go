package serve

import (
	"math/bits"

	"repro/internal/maritime"
)

// The matcher compiles every subscriber's mmsi/ce/area filter into
// shared per-key bitmaps over subscriber slots, so one publish matches
// an alert against ALL subscribers in a handful of word-wide AND/OR
// operations and then touches only the matched ones — O(matched) per
// event instead of O(subscribers). CE names, area ids and MMSIs are
// interned as map keys holding one bitmap each; subscribers with no
// constraint on a dimension sit in that dimension's wildcard bitmap.
//
// The hub mutates the matcher under its registry lock (subscribe and
// remove) and matches under the same lock during fan-out; matching is
// read-only plus two reused scratch bitsets.

// bitset is a growable bit vector over subscriber slots. Operations
// tolerate length mismatches: words beyond a bitset's length are zero.
type bitset []uint64

// bsSet returns b with bit i set, growing as needed.
func bsSet(b bitset, i int) bitset {
	w := i >> 6
	for len(b) <= w {
		b = append(b, 0)
	}
	b[w] |= 1 << (uint(i) & 63)
	return b
}

// bsClear clears bit i in place (no-op when out of range).
func bsClear(b bitset, i int) {
	if w := i >> 6; w < len(b) {
		b[w] &^= 1 << (uint(i) & 63)
	}
}

// bsEmpty reports whether no bit is set.
func bsEmpty(b bitset) bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// bsOrInto widens dst to hold src and ORs src in, returning dst.
func bsOrInto(dst, src bitset) bitset {
	for len(dst) < len(src) {
		dst = append(dst, 0)
	}
	for i, w := range src {
		dst[i] |= w
	}
	return dst
}

// bsAndInto ANDs src into dst in place; dst words beyond src are
// cleared (their src words are implicitly zero).
func bsAndInto(dst, src bitset) {
	n := len(src)
	if n > len(dst) {
		n = len(dst)
	}
	for i := 0; i < n; i++ {
		dst[i] &= src[i]
	}
	for i := n; i < len(dst); i++ {
		dst[i] = 0
	}
}

// bsForEach calls fn with each set bit, ascending.
func bsForEach(b bitset, fn func(i int)) {
	for wi, w := range b {
		for w != 0 {
			fn(wi<<6 + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// matcher is the compiled filter index. All access is under the hub's
// registry lock.
type matcher struct {
	// slots maps slot index → subscriber; nil entries are free and
	// recycled through free.
	slots []*Subscriber
	free  []int

	// Per-dimension bitmaps: a subscriber appears in the wildcard set
	// when its filter leaves the dimension unconstrained, otherwise in
	// the bitmap of every key it subscribed to.
	wildMMSI bitset
	wildCE   bitset
	wildArea bitset
	mmsi     map[uint32]bitset
	ces      map[string]bitset
	areas    map[string]bitset

	// cand/dim are matching scratch, reused per match call.
	cand bitset
	dim  bitset
}

func newMatcher() *matcher {
	return &matcher{
		mmsi:  make(map[uint32]bitset),
		ces:   make(map[string]bitset),
		areas: make(map[string]bitset),
	}
}

// add registers the subscriber's filter and returns its slot.
func (m *matcher) add(s *Subscriber) int {
	var slot int
	if n := len(m.free); n > 0 {
		slot = m.free[n-1]
		m.free = m.free[:n-1]
		m.slots[slot] = s
	} else {
		slot = len(m.slots)
		m.slots = append(m.slots, s)
	}
	f := s.filter
	if f.MMSI == nil {
		m.wildMMSI = bsSet(m.wildMMSI, slot)
	} else {
		for v := range f.MMSI {
			m.mmsi[v] = bsSet(m.mmsi[v], slot)
		}
	}
	if f.CEs == nil {
		m.wildCE = bsSet(m.wildCE, slot)
	} else {
		for ce := range f.CEs {
			m.ces[ce] = bsSet(m.ces[ce], slot)
		}
	}
	if f.Areas == nil {
		m.wildArea = bsSet(m.wildArea, slot)
	} else {
		for a := range f.Areas {
			m.areas[a] = bsSet(m.areas[a], slot)
		}
	}
	return slot
}

// remove clears the subscriber out of every bitmap it appears in and
// recycles the slot; bitmaps left empty release their interned key.
func (m *matcher) remove(slot int, f Filter) {
	if slot < 0 || slot >= len(m.slots) || m.slots[slot] == nil {
		return
	}
	m.slots[slot] = nil
	m.free = append(m.free, slot)
	if f.MMSI == nil {
		bsClear(m.wildMMSI, slot)
	} else {
		for v := range f.MMSI {
			if bs, ok := m.mmsi[v]; ok {
				bsClear(bs, slot)
				if bsEmpty(bs) {
					delete(m.mmsi, v)
				}
			}
		}
	}
	if f.CEs == nil {
		bsClear(m.wildCE, slot)
	} else {
		for ce := range f.CEs {
			if bs, ok := m.ces[ce]; ok {
				bsClear(bs, slot)
				if bsEmpty(bs) {
					delete(m.ces, ce)
				}
			}
		}
	}
	if f.Areas == nil {
		bsClear(m.wildArea, slot)
	} else {
		for a := range f.Areas {
			if bs, ok := m.areas[a]; ok {
				bsClear(bs, slot)
				if bsEmpty(bs) {
					delete(m.areas, a)
				}
			}
		}
	}
}

// match returns the slots whose filters accept the alert. The result is
// scratch owned by the matcher, valid until the next match call. The
// semantics mirror Filter.Match exactly: a pairwise alert passes an
// MMSI constraint through either vessel, and each dimension is a
// conjunction.
func (m *matcher) match(a maritime.Alert) bitset {
	m.cand = bsOrInto(m.cand[:0], m.wildMMSI)
	if bs, ok := m.mmsi[a.Vessel]; ok {
		m.cand = bsOrInto(m.cand, bs)
	}
	if a.Vessel2 != 0 {
		if bs, ok := m.mmsi[a.Vessel2]; ok {
			m.cand = bsOrInto(m.cand, bs)
		}
	}
	m.dim = bsOrInto(m.dim[:0], m.wildCE)
	if bs, ok := m.ces[a.CE]; ok {
		m.dim = bsOrInto(m.dim, bs)
	}
	bsAndInto(m.cand, m.dim)
	m.dim = bsOrInto(m.dim[:0], m.wildArea)
	if bs, ok := m.areas[a.AreaID]; ok {
		m.dim = bsOrInto(m.dim, bs)
	}
	bsAndInto(m.cand, m.dim)
	return m.cand
}
