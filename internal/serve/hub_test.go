package serve

import (
	"fmt"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/maritime"
)

var t0 = time.Date(2015, 3, 23, 12, 0, 0, 0, time.UTC)

// mkAlerts builds n alerts for the given vessel and CE.
func mkAlerts(n int, vessel uint32, ce, area string) []maritime.Alert {
	out := make([]maritime.Alert, n)
	for i := range out {
		out[i] = maritime.Alert{CE: ce, AreaID: area, Time: t0.Add(time.Duration(i) * time.Minute), Vessel: vessel}
	}
	return out
}

// drain consumes every envelope until the subscriber closes.
func drain(s *Subscriber, out *[]Envelope, wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		e, ok := s.Next()
		if !ok {
			return
		}
		*out = append(*out, e)
	}
}

func TestHubFanoutDeliversToAll(t *testing.T) {
	h := NewHub(64)
	var wg sync.WaitGroup
	subs := make([]*Subscriber, 3)
	got := make([][]Envelope, 3)
	for i := range subs {
		subs[i] = h.Subscribe(Filter{}, 16)
		wg.Add(1)
		go drain(subs[i], &got[i], &wg)
	}
	h.Publish(t0, mkAlerts(5, 1, maritime.CEIllegalShipping, "a1"))
	h.Publish(t0.Add(time.Minute), mkAlerts(3, 2, maritime.CEDangerousShipping, "a2"))
	waitFor(t, func() bool {
		for i := range subs {
			if subs[i].Stats().Delivered != 8 {
				return false
			}
		}
		return true
	})
	for i := range subs {
		subs[i].Close()
	}
	wg.Wait()
	for i := range got {
		if len(got[i]) != 8 {
			t.Fatalf("subscriber %d got %d envelopes, want 8", i, len(got[i]))
		}
		for j := 1; j < len(got[i]); j++ {
			if got[i][j].Seq != got[i][j-1].Seq+1 {
				t.Fatalf("subscriber %d: non-contiguous seqs %d → %d", i, got[i][j-1].Seq, got[i][j].Seq)
			}
		}
	}
	st := h.Stats()
	if st.Published != 8 || st.Delivered != 24 || st.Dropped != 0 {
		t.Fatalf("hub stats = %+v, want published 8 delivered 24 dropped 0", st)
	}
}

// waitFor polls cond for up to 2 s.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

func TestSlowSubscriberIsolation(t *testing.T) {
	h := NewHub(4096)
	const queueCap = 8
	slow := h.Subscribe(Filter{}, queueCap) // never consumed
	fast := h.Subscribe(Filter{}, 4096)
	var wg sync.WaitGroup
	var got []Envelope
	wg.Add(1)
	go drain(fast, &got, &wg)

	const total = 1000
	start := time.Now()
	for i := 0; i < total; i++ {
		h.Publish(t0.Add(time.Duration(i)*time.Second), mkAlerts(1, uint32(i), maritime.CESuspicious, "a1"))
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("publishing with a blocked subscriber took %s — the hub must never block", elapsed)
	}
	waitFor(t, func() bool { return fast.Stats().Delivered == total })
	fast.Close()
	wg.Wait()

	if len(got) != total {
		t.Fatalf("fast subscriber got %d/%d envelopes", len(got), total)
	}
	ss := slow.Stats()
	if ss.Dropped != total-queueCap {
		t.Fatalf("slow subscriber dropped %d, want %d", ss.Dropped, total-queueCap)
	}
	if ss.Pending != queueCap {
		t.Fatalf("slow subscriber pending %d, want %d", ss.Pending, queueCap)
	}
	// Drop-oldest: what remains must be the newest queueCap envelopes.
	for i := 0; i < queueCap; i++ {
		e, ok := slow.Next()
		if !ok {
			t.Fatal("queue ended early")
		}
		if want := uint64(total - queueCap + i + 1); e.Seq != want {
			t.Fatalf("retained envelope %d has seq %d, want %d (drop-oldest)", i, e.Seq, want)
		}
	}
	slow.Close()
	if st := h.Stats(); st.Dropped != total-queueCap {
		t.Fatalf("hub total dropped = %d, want %d", st.Dropped, total-queueCap)
	}
}

func TestFilterMatch(t *testing.T) {
	mk := func(vessel uint32, ce, area string) maritime.Alert {
		return maritime.Alert{CE: ce, AreaID: area, Time: t0, Vessel: vessel}
	}
	cases := []struct {
		name  string
		query string
		alert maritime.Alert
		want  bool
	}{
		{"empty matches all", "", mk(1, maritime.CESuspicious, "a1"), true},
		{"mmsi hit", "mmsi=1,2", mk(2, maritime.CEIllegalShipping, "a1"), true},
		{"mmsi miss", "mmsi=1,2", mk(3, maritime.CEIllegalShipping, "a1"), false},
		{"mmsi excludes durative", "mmsi=1", mk(0, maritime.CESuspicious, "a1"), false},
		{"ce hit", "ce=suspicious,illegalFishing", mk(0, maritime.CEIllegalFishing, "a1"), true},
		{"ce miss", "ce=suspicious", mk(5, maritime.CEDangerousShipping, "a1"), false},
		{"area hit", "area=a1", mk(1, maritime.CESuspicious, "a1"), true},
		{"area miss", "area=a2", mk(1, maritime.CESuspicious, "a1"), false},
		{"conjunction", "mmsi=1&ce=illegalShipping&area=a1", mk(1, maritime.CEIllegalShipping, "a1"), true},
		{"conjunction one miss", "mmsi=1&ce=illegalShipping&area=a2", mk(1, maritime.CEIllegalShipping, "a1"), false},
	}
	for _, tc := range cases {
		q, err := url.ParseQuery(tc.query)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		f, err := ParseFilter(q)
		if err != nil {
			t.Fatalf("%s: ParseFilter: %v", tc.name, err)
		}
		if got := f.Match(tc.alert); got != tc.want {
			t.Errorf("%s: Match = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestParseFilterRejectsGarbage(t *testing.T) {
	for _, raw := range []string{"mmsi=abc", "mmsi=-3", "ce=noSuchEvent"} {
		q, _ := url.ParseQuery(raw)
		if _, err := ParseFilter(q); err == nil {
			t.Errorf("ParseFilter(%q) accepted garbage", raw)
		}
	}
}

func TestHubFilteredFanout(t *testing.T) {
	h := NewHub(64)
	byVessel := h.Subscribe(Filter{MMSI: map[uint32]struct{}{7: {}}}, 64)
	byCE := h.Subscribe(Filter{CEs: map[string]struct{}{maritime.CESuspicious: {}}}, 64)

	h.Publish(t0, []maritime.Alert{
		{CE: maritime.CEIllegalShipping, AreaID: "a1", Time: t0, Vessel: 7},
		{CE: maritime.CEIllegalShipping, AreaID: "a1", Time: t0, Vessel: 8},
		{CE: maritime.CESuspicious, AreaID: "a2", Time: t0},
	})

	if e, ok := byVessel.Next(); !ok || e.Alert.Vessel != 7 {
		t.Fatalf("vessel filter delivered %+v", e)
	}
	if st := byVessel.Stats(); st.Pending != 0 {
		t.Fatalf("vessel filter has %d pending, want 0", st.Pending)
	}
	if e, ok := byCE.Next(); !ok || e.Alert.CE != maritime.CESuspicious {
		t.Fatalf("ce filter delivered %+v", e)
	}
	byVessel.Close()
	byCE.Close()
}

// TestSubscribeUnsubscribeRace exercises concurrent subscribe, consume,
// close and publish; run under -race this is the regression test for
// hub locking.
func TestSubscribeUnsubscribeRace(t *testing.T) {
	h := NewHub(256)
	stop := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			h.Publish(t0.Add(time.Duration(i)*time.Second), mkAlerts(3, uint32(i%5), maritime.CESuspicious, "a1"))
			i++
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s := h.Subscribe(Filter{}, 8)
				for k := 0; k < j%4; k++ {
					if _, _, timedOut := s.NextTimeout(time.Millisecond); timedOut {
						break
					}
				}
				if j%2 == 0 {
					go s.Close() // racing close from another goroutine
				}
				s.Close()
				_ = h.Stats()
			}
		}(i)
	}
	wg.Wait()
	close(stop)
	pubWG.Wait()
	if st := h.Stats(); st.Subscribers != 0 {
		t.Fatalf("%d subscribers leaked", st.Subscribers)
	}
}

func TestRingSinceAndLast(t *testing.T) {
	r := NewRing(8)
	for i := 1; i <= 12; i++ {
		r.Push(Envelope{Seq: uint64(i)})
	}
	if r.Len() != 8 {
		t.Fatalf("Len = %d, want 8", r.Len())
	}
	last := r.Last(3)
	if len(last) != 3 || last[0].Seq != 10 || last[2].Seq != 12 {
		t.Fatalf("Last(3) = %+v", last)
	}
	if got := r.Last(0); len(got) != 8 {
		t.Fatalf("Last(0) returned %d, want all 8", len(got))
	}
	since := r.Since(9)
	if len(since) != 3 || since[0].Seq != 10 {
		t.Fatalf("Since(9) = %+v", since)
	}
	if got := r.Since(2); len(got) != 8 {
		t.Fatalf("Since(2) must cap at retention, got %d", len(got))
	}
	if got := r.Since(12); got != nil {
		t.Fatalf("Since(12) = %+v, want nil", got)
	}
}

func TestSubscribeFromReplaysBeforeLive(t *testing.T) {
	h := NewHub(64)
	h.Publish(t0, mkAlerts(5, 1, maritime.CESuspicious, "a1")) // seqs 1..5
	s := h.SubscribeFrom(Filter{}, 64, 2)
	h.Publish(t0.Add(time.Minute), mkAlerts(2, 1, maritime.CESuspicious, "a1")) // seqs 6,7
	var seqs []uint64
	for i := 0; i < 5; i++ {
		e, ok := s.Next()
		if !ok {
			t.Fatal("stream ended early")
		}
		seqs = append(seqs, e.Seq)
	}
	want := []uint64{3, 4, 5, 6, 7}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("replay order = %v, want %v", seqs, want)
		}
	}
	s.Close()
}

func TestNextTimeoutHeartbeat(t *testing.T) {
	h := NewHub(8)
	s := h.Subscribe(Filter{}, 8)
	defer s.Close()
	start := time.Now()
	_, ok, timedOut := s.NextTimeout(20 * time.Millisecond)
	if ok || !timedOut {
		t.Fatalf("NextTimeout on empty queue: ok=%v timedOut=%v", ok, timedOut)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("NextTimeout returned before the deadline")
	}
	h.Publish(t0, mkAlerts(1, 1, maritime.CESuspicious, "a1"))
	if _, ok, timedOut := s.NextTimeout(time.Second); !ok || timedOut {
		t.Fatalf("NextTimeout with queued envelope: ok=%v timedOut=%v", ok, timedOut)
	}
}

func TestPublishNothingIsNoop(t *testing.T) {
	h := NewHub(8)
	h.Publish(t0, nil)
	if st := h.Stats(); st.Published != 0 {
		t.Fatalf("published = %d after empty publish", st.Published)
	}
	if got := fmt.Sprint(h.Ring().Len()); got != "0" {
		t.Fatalf("ring len = %s", got)
	}
}
