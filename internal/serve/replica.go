package serve

import (
	"net/http"
	"strconv"
	"time"
)

// ReplicaInfo is the health payload a replica reports beside its hub
// stats — filled by the owner's Info callback so this package stays
// independent of the log implementation (the tailer lives above serve
// in the import graph).
type ReplicaInfo struct {
	// Name identifies the replica in logs and metrics labels.
	Name string `json:"name"`
	// Applied is the newest log sequence the replica has re-published.
	Applied uint64 `json:"applied"`
	// Lag is how many durable records it has not applied yet.
	Lag uint64 `json:"lag"`
	// Skipped counts sequences lost to pruning/corruption from this
	// replica's point of view.
	Skipped uint64 `json:"skipped"`
}

// ReplicaOptions configures a Replica.
type ReplicaOptions struct {
	// Name identifies the replica in /healthz and log lines.
	Name string
	// SubscriberQueue bounds each SSE subscriber's drop-oldest queue
	// (≤ 0: 256 envelopes).
	SubscriberQueue int
	// Heartbeat is the idle-connection keepalive interval of the SSE
	// stream (≤ 0: 15 s).
	Heartbeat time.Duration
	// Info, when set, supplies the tailing position for /healthz.
	Info func() ReplicaInfo
	// Metrics, when set, mounts GET /metrics on the replica mux. The
	// caller registers whatever series it wants on the registry (the
	// hub's via Hub.RegisterMetrics, the tailer's via
	// Tailer.RegisterMetrics).
	Metrics interface{ Handler() http.Handler }
	// Logf receives lifecycle messages; nil silences them.
	Logf func(format string, args ...any)
}

// Replica is a stateless alert-serving node: it owns a hub fed through
// Hub.PublishEnvelopes by a log tailer and serves the same /events SSE
// protocol as the writer gateway — same sequence numbers, same
// Last-Event-ID replay — without running a pipeline. Kill it and start
// another: subscribers reconnect anywhere with their last id and
// resume exactly-once.
type Replica struct {
	hub *Hub
	opt ReplicaOptions
}

// NewReplica wires a replica around the hub (which should have a
// replay source attached via Hub.AttachReplay so reconnects can reach
// past the ring).
func NewReplica(hub *Hub, opt ReplicaOptions) *Replica {
	if opt.Name == "" {
		opt.Name = "replica"
	}
	if opt.SubscriberQueue <= 0 {
		opt.SubscriberQueue = 256
	}
	if opt.Heartbeat <= 0 {
		opt.Heartbeat = 15 * time.Second
	}
	return &Replica{hub: hub, opt: opt}
}

// Hub exposes the replica's fan-out hub.
func (rp *Replica) Hub() *Hub { return rp.hub }

// replicaHealth is the /healthz response body of a replica.
type replicaHealth struct {
	Status  string      `json:"status"` // always "ok": a live replica serves
	Replica ReplicaInfo `json:"replica"`
	Hub     HubStats    `json:"hub"`
}

// Handler returns the replica's HTTP mux:
//
//	GET /events   live SSE alert stream (?mmsi=&ce=&area=, Last-Event-ID replay)
//	GET /alerts   recent alert history from the ring buffer (?n=)
//	GET /healthz  tail position + hub fan-out accounting
//	GET /metrics  Prometheus text exposition (when Options.Metrics is set)
func (rp *Replica) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /events", func(w http.ResponseWriter, r *http.Request) {
		pumpEvents(w, r, rp.hub, rp.opt.SubscriberQueue, rp.opt.Heartbeat, rp.logf)
	})
	mux.HandleFunc("GET /alerts", func(w http.ResponseWriter, r *http.Request) {
		n := 0
		if raw := r.URL.Query().Get("n"); raw != "" {
			v, err := strconv.Atoi(raw)
			if err != nil || v < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			n = v
		}
		writeJSON(w, rp.hub.Ring().Last(n))
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		p := replicaHealth{Status: "ok", Hub: rp.hub.Stats()}
		p.Replica.Name = rp.opt.Name
		if rp.opt.Info != nil {
			p.Replica = rp.opt.Info()
		}
		writeJSON(w, p)
	})
	if rp.opt.Metrics != nil {
		mux.Handle("GET /metrics", rp.opt.Metrics.Handler())
	}
	return mux
}

func (rp *Replica) logf(format string, args ...any) {
	if rp.opt.Logf != nil {
		rp.opt.Logf("["+rp.opt.Name+"] "+format, args...)
	}
}
