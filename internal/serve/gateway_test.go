package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// newTestGateway builds a gateway over a minimal system; alerts are
// injected directly through Consume (the core.AlertSink entry point),
// so tests control exactly what is published.
func newTestGateway(t *testing.T, opt Options) *Gateway {
	t.Helper()
	sys := core.NewSystem(core.Config{
		Window:             stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute},
		Tracker:            tracker.DefaultParams(),
		DisableRecognition: true,
	}, nil, nil, nil)
	return New(sys, opt)
}

// report wraps alerts in a slide report for Consume.
func report(q time.Time, alerts ...maritime.Alert) core.SlideReport {
	return core.SlideReport{Query: q, Alerts: alerts}
}

func TestSSEFilteredStream(t *testing.T) {
	g := newTestGateway(t, Options{Heartbeat: 50 * time.Millisecond})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	var mu sync.Mutex
	var got []Envelope
	done := make(chan error, 1)
	go func() {
		done <- StreamAlerts(ctx, srv.URL+"/events?mmsi=111", 0, func(e Envelope) {
			mu.Lock()
			got = append(got, e)
			mu.Unlock()
		})
	}()
	// Give the subscriber time to attach before publishing.
	waitFor(t, func() bool { return g.Hub().Stats().Subscribers == 1 })

	g.Consume(report(t0,
		maritime.Alert{CE: maritime.CEIllegalShipping, AreaID: "a1", Time: t0, Vessel: 111},
		maritime.Alert{CE: maritime.CEDangerousShipping, AreaID: "a2", Time: t0, Vessel: 222},
		maritime.Alert{CE: maritime.CESuspicious, AreaID: "a3", Time: t0}, // durative: no vessel
	))
	g.Consume(report(t0.Add(time.Minute),
		maritime.Alert{CE: maritime.CEDangerousShipping, AreaID: "a4", Time: t0.Add(time.Minute), Vessel: 111},
	))

	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 2 })
	cancel()
	if err := <-done; err != nil {
		t.Fatalf("StreamAlerts: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("got %d envelopes, want exactly the 2 matching MMSI 111", len(got))
	}
	if got[0].Alert.AreaID != "a1" || got[1].Alert.AreaID != "a4" {
		t.Fatalf("wrong alerts delivered: %+v", got)
	}
	for _, e := range got {
		if e.Alert.Vessel != 111 {
			t.Fatalf("filter leaked vessel %d", e.Alert.Vessel)
		}
	}
}

func TestSSEReconnectReplayWithLastEventID(t *testing.T) {
	g := newTestGateway(t, Options{Heartbeat: 50 * time.Millisecond, RingSize: 64})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	// First session: read two envelopes, then drop the connection.
	ctx1, cancel1 := context.WithCancel(context.Background())
	var lastSeen uint64
	count := 0
	firstDone := make(chan error, 1)
	sawTwo := make(chan struct{})
	go func() {
		firstDone <- StreamAlerts(ctx1, srv.URL+"/events", 0, func(e Envelope) {
			count++
			lastSeen = e.Seq
			if count == 2 {
				close(sawTwo)
			}
		})
	}()
	waitFor(t, func() bool { return g.Hub().Stats().Subscribers == 1 })
	for i := 0; i < 3; i++ {
		g.Consume(report(t0.Add(time.Duration(i)*time.Minute),
			maritime.Alert{CE: maritime.CEIllegalShipping, AreaID: fmt.Sprintf("a%d", i+1), Time: t0, Vessel: 9}))
	}
	<-sawTwo
	cancel1()
	<-firstDone

	// While the client is away, more alerts arrive.
	for i := 3; i < 6; i++ {
		g.Consume(report(t0.Add(time.Duration(i)*time.Minute),
			maritime.Alert{CE: maritime.CEIllegalShipping, AreaID: fmt.Sprintf("a%d", i+1), Time: t0, Vessel: 9}))
	}

	// Second session resumes after the last id it saw: it must receive
	// every later envelope exactly once, in order.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	var mu sync.Mutex
	var seqs []uint64
	secondDone := make(chan error, 1)
	go func() {
		secondDone <- StreamAlerts(ctx2, srv.URL+"/events", lastSeen, func(e Envelope) {
			mu.Lock()
			seqs = append(seqs, e.Seq)
			mu.Unlock()
		})
	}()
	wantN := 6 - int(lastSeen)
	waitFor(t, func() bool { mu.Lock(); defer mu.Unlock(); return len(seqs) >= wantN })
	cancel2()
	if err := <-secondDone; err != nil {
		t.Fatalf("resume session: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) != wantN {
		t.Fatalf("resume delivered %d envelopes, want %d (no duplicates)", len(seqs), wantN)
	}
	for i, s := range seqs {
		if want := lastSeen + uint64(i) + 1; s != want {
			t.Fatalf("resume seq %d = %d, want %d", i, s, want)
		}
	}
}

// TestStalledSSESubscriberDropsOnlyItsOwn verifies the acceptance
// criterion end to end over real sockets: a subscriber that stops
// reading overflows its own bounded queue (visible in /healthz) while
// a healthy subscriber keeps receiving everything and Publish never
// blocks the pipeline.
func TestStalledSSESubscriberDropsOnlyItsOwn(t *testing.T) {
	g := newTestGateway(t, Options{Heartbeat: time.Hour, SubscriberQueue: 8})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	// The stalled client: a raw connection that sends the request and
	// never reads the response, so the server-side pump blocks on the
	// socket once the kernel buffers fill.
	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /events HTTP/1.1\r\nHost: x\r\nAccept: text/event-stream\r\n\r\n")

	// The healthy client.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var healthyN int64
	var mu sync.Mutex
	done := make(chan error, 1)
	go func() {
		done <- StreamAlerts(ctx, srv.URL+"/events", 0, func(e Envelope) {
			mu.Lock()
			healthyN++
			mu.Unlock()
		})
	}()
	waitFor(t, func() bool { return g.Hub().Stats().Subscribers == 2 })

	// Publish until the stalled subscriber shows drops, pacing to the
	// healthy reader so its bounded queue never overflows. The padded
	// area id fattens each frame so the kernel buffers fill quickly.
	pad := strings.Repeat("x", 16384)
	deadline := time.Now().Add(20 * time.Second)
	published := 0
	for time.Now().Before(deadline) && g.Hub().Stats().Dropped == 0 {
		g.Consume(report(t0.Add(time.Duration(published)*time.Second),
			maritime.Alert{CE: maritime.CESuspicious, AreaID: pad, Time: t0}))
		published++
		for time.Now().Before(deadline) {
			mu.Lock()
			n := healthyN
			mu.Unlock()
			if n >= int64(published) {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	st := g.Hub().Stats()
	if st.Dropped == 0 {
		t.Fatalf("stalled subscriber never dropped after %d published", published)
	}

	// The healthy subscriber received every envelope (the publish loop
	// paced itself to it, so this holds by construction).
	mu.Lock()
	gotAll := healthyN >= int64(published)
	mu.Unlock()
	if !gotAll {
		t.Fatalf("healthy subscriber fell behind: %d of %d", healthyN, published)
	}

	// /healthz reports the asymmetry: one subscriber with drops, one
	// without.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz HealthzPayload
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Hub.Dropped == 0 {
		t.Fatal("/healthz shows no drops for the stalled subscriber")
	}
	var withDrops, without int
	for _, s := range hz.Hub.Subs {
		if s.Dropped > 0 {
			withDrops++
		} else {
			without++
		}
	}
	if withDrops != 1 || without != 1 {
		t.Fatalf("per-subscriber drops = %+v, want exactly one stalled", hz.Hub.Subs)
	}
	cancel()
	<-done
}

// TestGatewaySnapshots runs a real (small) pipeline through the gateway
// and exercises every snapshot endpoint.
func TestGatewaySnapshots(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = 40
	cfg.Duration = 2 * time.Hour
	cfg.Seed = 3
	sim := fleetsim.NewSimulator(cfg)
	vessels, areas, ports := core.AdaptWorld(sim)
	window := stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute}
	sys := core.NewSystem(core.Config{
		Window:      window,
		Tracker:     tracker.DefaultParams(),
		Recognition: maritime.Config{Window: window.Range},
	}, vessels, areas, ports)
	g := New(sys, Options{})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	batcher := stream.NewBatcher(stream.NewSliceSource(sim.Run()), window.Slide)
	var last time.Time
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		last = g.Process(b).Query
	}

	getJSON := func(path string, v any) int {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
				t.Fatalf("%s: %v", path, err)
			}
		}
		return resp.StatusCode
	}

	var infos []tracker.VesselInfo
	if code := getJSON("/vessels", &infos); code != 200 {
		t.Fatalf("/vessels: %d", code)
	}
	if len(infos) == 0 {
		t.Fatal("/vessels returned no tracked vessels")
	}

	var vp vesselPayload
	path := fmt.Sprintf("/vessels/%d", infos[0].MMSI)
	if code := getJSON(path, &vp); code != 200 {
		t.Fatalf("%s: %d", path, code)
	}
	if vp.MMSI != infos[0].MMSI {
		t.Fatalf("%s returned vessel %d", path, vp.MMSI)
	}
	var missing struct{}
	if code := getJSON("/vessels/999999999", &missing); code != http.StatusNotFound {
		t.Fatalf("unknown vessel returned %d, want 404", code)
	}

	// Draining evicts tracker state and archives the staged trips, so
	// the vessel snapshots above had to come first.
	g.Drain(last)
	g.StreamEnded()

	var rep slideReportPayload
	if code := getJSON("/report", &rep); code != 200 {
		t.Fatalf("/report: %d", code)
	}
	if rep.Query.IsZero() {
		t.Fatal("/report has no query time")
	}

	var hz HealthzPayload
	if code := getJSON("/healthz", &hz); code != 200 {
		t.Fatalf("/healthz: %d", code)
	}
	if hz.Status != "ok" || hz.Slides == 0 || !hz.StreamEnd {
		t.Fatalf("/healthz = %+v", hz)
	}

	var trips []tripPayload
	if code := getJSON("/trips", &trips); code != 200 {
		t.Fatalf("/trips: %d", code)
	}
	var od []odPayload
	if code := getJSON("/od", &od); code != 200 {
		t.Fatalf("/od: %d", code)
	}
	var alerts []Envelope
	if code := getJSON("/alerts?n=10", &alerts); code != 200 {
		t.Fatalf("/alerts: %d", code)
	}
	if len(alerts) > 0 && alerts[0].Seq == 0 {
		t.Fatal("/alerts envelopes missing sequence numbers")
	}
}

// TestSSEWireFormat checks the raw frames: id/event/data lines and the
// heartbeat comment.
// TestHealthzThreeStates drives the /healthz status through the full
// supervision ladder: healthy, degraded-but-recovering (quarantined
// target or degradation rung engaged), and wedged (a target abandoned
// past the give-up threshold).
func TestHealthzThreeStates(t *testing.T) {
	g := newTestGateway(t, Options{})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	status := func() string {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var hz HealthzPayload
		if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
			t.Fatal(err)
		}
		return hz.Status
	}

	q := time.Unix(3600, 0).UTC()
	g.Consume(core.SlideReport{Query: q, Health: core.Health{}})
	if s := status(); s != "ok" {
		t.Errorf("healthy pipeline status = %q, want ok", s)
	}
	g.Consume(core.SlideReport{Query: q, Health: core.Health{Quarantined: 1}})
	if s := status(); s != "degraded" {
		t.Errorf("quarantined target status = %q, want degraded", s)
	}
	g.Consume(core.SlideReport{Query: q, Health: core.Health{DegradationLevel: 2}})
	if s := status(); s != "degraded" {
		t.Errorf("degradation rung status = %q, want degraded", s)
	}
	g.Consume(core.SlideReport{Query: q, Health: core.Health{Failed: 1}})
	if s := status(); s != "wedged" {
		t.Errorf("abandoned target status = %q, want wedged", s)
	}
}

func TestSSEWireFormat(t *testing.T) {
	g := newTestGateway(t, Options{Heartbeat: 30 * time.Millisecond})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Listener.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /events HTTP/1.1\r\nHost: x\r\n\r\n")
	waitFor(t, func() bool { return g.Hub().Stats().Subscribers == 1 })
	g.Consume(report(t0, maritime.Alert{CE: maritime.CEIllegalShipping, AreaID: "a1", Time: t0, Vessel: 5}))

	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	sc := bufio.NewScanner(conn)
	var sawID, sawEvent, sawData, sawHeartbeat bool
	for sc.Scan() && !(sawID && sawEvent && sawData && sawHeartbeat) {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: 1"):
			sawID = true
		case line == "event: alert":
			sawEvent = true
		case strings.HasPrefix(line, "data: {"):
			sawData = true
			var e Envelope
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				t.Fatalf("bad data payload: %v", err)
			}
			if e.Seq != 1 || e.Alert.Vessel != 5 {
				t.Fatalf("payload = %+v", e)
			}
		case strings.HasPrefix(line, ": hb"):
			sawHeartbeat = true
		}
	}
	if !sawID || !sawEvent || !sawData || !sawHeartbeat {
		t.Fatalf("frames missing: id=%v event=%v data=%v hb=%v", sawID, sawEvent, sawData, sawHeartbeat)
	}
}
