package serve

import (
	"errors"
	"testing"
	"time"

	"repro/internal/maritime"
)

// drain pulls everything currently queued on the subscriber.
func drainSub(t *testing.T, s *Subscriber) []Envelope {
	t.Helper()
	var out []Envelope
	for {
		env, ok, timedOut := s.NextTimeout(20 * time.Millisecond)
		if timedOut || !ok {
			return out
		}
		out = append(out, env)
	}
}

func publishSeqs(h *Hub, n int) {
	slide := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < n; i++ {
		h.Publish(slide, []maritime.Alert{{CE: "speeding", AreaID: "a1", Vessel: 237000001, Time: slide}})
	}
}

// TestSubscribeFromExactTrimBoundary is the regression for the silent
// replay gap: a cursor exactly at the trim boundary (afterSeq ==
// FirstSeq-1) loses nothing and must NOT see a marker; one sequence
// older and the gap must be announced, never skipped.
func TestSubscribeFromExactTrimBoundary(t *testing.T) {
	h := NewHub(4)
	publishSeqs(h, 10) // ring retains 7..10

	// Exactly at the boundary: everything after the cursor is retained.
	s := h.SubscribeFrom(Filter{}, 16, 6)
	got := drainSub(t, s)
	requireSeqs(t, got, 7, 8, 9, 10)
	for _, e := range got {
		if e.Marker != "" {
			t.Fatalf("marker %q at the exact trim boundary; nothing was lost", e.Marker)
		}
	}
	s.Close()

	// One older: sequence 6 is gone and the subscriber must hear it.
	s = h.SubscribeFrom(Filter{}, 16, 5)
	got = drainSub(t, s)
	if len(got) != 5 {
		t.Fatalf("got %d envelopes, want marker + 7..10: %+v", len(got), got)
	}
	m := got[0]
	if m.Marker != MarkerReplayTruncated || m.Seq != 6 || m.Missing != 1 {
		t.Fatalf("marker = %+v, want {Seq:6 Marker:%q Missing:1}", m, MarkerReplayTruncated)
	}
	requireSeqs(t, got[1:], 7, 8, 9, 10)
	s.Close()

	// Far older: the whole evicted prefix is announced in one marker.
	s = h.SubscribeFrom(Filter{}, 16, 0)
	got = drainSub(t, s)
	m = got[0]
	if m.Marker != MarkerReplayTruncated || m.Seq != 6 || m.Missing != 6 {
		t.Fatalf("marker = %+v, want {Seq:6 Missing:6}", m)
	}
	requireSeqs(t, got[1:], 7, 8, 9, 10)
	s.Close()

	// At or past the head: caught up, nothing to say.
	s = h.SubscribeFrom(Filter{}, 16, 10)
	if got = drainSub(t, s); len(got) != 0 {
		t.Fatalf("caught-up resume received %+v", got)
	}
	s.Close()
}

// TestSubscribeFromEmptyRingAnnouncesLoss covers the restored-hub case:
// a sequence counter ahead of an empty ring (snapshot restore without
// history) — the missing range is announced, not skipped.
func TestSubscribeFromEmptyRingAnnouncesLoss(t *testing.T) {
	h := NewHub(8)
	h.Restore(HubSnapshot{Seq: 10, Published: 10})
	s := h.SubscribeFrom(Filter{}, 16, 4)
	got := drainSub(t, s)
	if len(got) != 1 {
		t.Fatalf("got %+v, want exactly one marker", got)
	}
	if got[0].Marker != MarkerReplayTruncated || got[0].Seq != 10 || got[0].Missing != 6 {
		t.Fatalf("marker = %+v, want {Seq:10 Missing:6}", got[0])
	}
	s.Close()
}

// TestMarkerBypassesFilter: a truncation announcement concerns every
// resuming subscriber, including those whose filter matches none of the
// lost alerts.
func TestMarkerBypassesFilter(t *testing.T) {
	h := NewHub(4)
	publishSeqs(h, 10)
	f := Filter{MMSI: map[uint32]struct{}{999999999: {}}} // matches nothing published
	s := h.SubscribeFrom(f, 16, 0)
	got := drainSub(t, s)
	if len(got) != 1 || got[0].Marker != MarkerReplayTruncated {
		t.Fatalf("got %+v, want only the truncation marker", got)
	}
	s.Close()
}

// memLog is an in-memory EnvelopeLog for replay tests.
type memLog struct {
	envs []Envelope
	errs bool
}

func (m *memLog) Append(envs []Envelope) error {
	if m.errs {
		return errors.New("memLog: append disabled")
	}
	for _, e := range envs {
		if n := len(m.envs); n > 0 && e.Seq <= m.envs[n-1].Seq {
			continue
		}
		m.envs = append(m.envs, e)
	}
	return nil
}

func (m *memLog) LastSeq() uint64 {
	if len(m.envs) == 0 {
		return 0
	}
	return m.envs[len(m.envs)-1].Seq
}

func (m *memLog) ReadSince(afterSeq uint64, max int) ([]Envelope, error) {
	var out []Envelope
	for _, e := range m.envs {
		if e.Seq > afterSeq && len(out) < max {
			out = append(out, e)
		}
	}
	return out, nil
}

// TestSubscribeFromLogFallback: with a log attached, a cursor older
// than the ring replays from the log — full history, no marker.
func TestSubscribeFromLogFallback(t *testing.T) {
	h := NewHub(4)
	h.AttachLog(&memLog{})
	publishSeqs(h, 10) // ring retains 7..10; log has 1..10
	s := h.SubscribeFrom(Filter{}, 64, 0)
	got := drainSub(t, s)
	requireSeqs(t, got, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10)
	for _, e := range got {
		if e.Marker != "" {
			t.Fatalf("marker %q with the full range in the log", e.Marker)
		}
	}
	s.Close()
}

// TestSubscribeFromLogFallbackFloorsAtQueue: replaying more than the
// subscriber queue can hold is wasted work (the oldest records would
// drop right back out); the replay floors at the queue bound and the
// skipped prefix is announced as truncated.
func TestSubscribeFromLogFallbackFloorsAtQueue(t *testing.T) {
	h := NewHub(4)
	h.AttachLog(&memLog{})
	publishSeqs(h, 20)
	s := h.SubscribeFrom(Filter{}, 5, 0) // queue of 5 against 20 logged records
	got := drainSub(t, s)
	if len(got) == 0 || got[0].Marker != MarkerReplayTruncated {
		t.Fatalf("got %+v, want a leading truncation marker", got)
	}
	if got[0].Seq != 16 || got[0].Missing != 16 {
		t.Fatalf("marker = %+v, want {Seq:16 Missing:16}", got[0])
	}
	requireSeqs(t, got[1:], 17, 18, 19, 20)
	s.Close()
}

// TestPublishSurvivesLogAppendFailure: a failing log append is counted
// but never blocks delivery to this hub's own subscribers.
func TestPublishSurvivesLogAppendFailure(t *testing.T) {
	h := NewHub(16)
	h.AttachLog(&memLog{errs: true})
	s := h.Subscribe(Filter{}, 16)
	publishSeqs(h, 3)
	requireSeqs(t, drainSub(t, s), 1, 2, 3)
	if h.LogAppendErrors() != 3 {
		t.Fatalf("LogAppendErrors = %d, want 3", h.LogAppendErrors())
	}
	if st := h.Totals(); st.LogAppendErrors != 3 {
		t.Fatalf("Totals().LogAppendErrors = %d, want 3", st.LogAppendErrors)
	}
	s.Close()
}

// TestPublishEnvelopesPreservesSeqs: the replica path re-publishes
// pre-stamped envelopes verbatim and advances the hub head.
func TestPublishEnvelopesPreservesSeqs(t *testing.T) {
	h := NewHub(16)
	s := h.Subscribe(Filter{}, 16)
	slide := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	envs := []Envelope{
		{Seq: 41, Slide: slide, Alert: maritime.Alert{CE: "speeding", Vessel: 1}},
		{Seq: 42, Slide: slide, Alert: maritime.Alert{CE: "speeding", Vessel: 2}},
	}
	h.PublishEnvelopes(envs)
	requireSeqs(t, drainSub(t, s), 41, 42)
	// A duplicate re-publish (tailer rewind) deduplicates per subscriber.
	h.PublishEnvelopes(envs)
	if got := drainSub(t, s); len(got) != 0 {
		t.Fatalf("duplicate re-publish delivered %+v", got)
	}
	// The head advanced: a fresh publish continues after 42.
	publishSeqs(h, 1)
	requireSeqs(t, drainSub(t, s), 43)
	s.Close()
}
