package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/maritime"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// Options configures a Gateway.
type Options struct {
	// RingSize is the alert-history retention for replay and /alerts
	// (≤ 0: 1024 envelopes).
	RingSize int
	// SubscriberQueue bounds each SSE subscriber's drop-oldest queue
	// (≤ 0: 256 envelopes).
	SubscriberQueue int
	// Heartbeat is the idle-connection keepalive interval of the SSE
	// stream (≤ 0: 15 s).
	Heartbeat time.Duration
	// Metrics, when set, mounts GET /metrics (Prometheus text format)
	// on the gateway mux and registers the hub's fan-out counters on
	// the registry. The pipeline's own metrics are the caller's to
	// register (core.System.RegisterMetrics on the same registry).
	Metrics *obs.Registry
	// Logf receives lifecycle messages; nil silences them.
	Logf func(format string, args ...any)
}

// Gateway is the serving tier over one core.System: it implements
// core.AlertSink to capture each slide's alerts into the fan-out hub
// and the history ring, and serves them (plus snapshot queries) over
// HTTP. Drive the pipeline through Process so snapshot queries never
// race a slide in flight.
type Gateway struct {
	sys *core.System
	hub *Hub
	opt Options

	// pipeMu serializes pipeline slides (write) against snapshot reads
	// of the tracker and the store (read). The SSE path does not take
	// it: alerts reach subscribers through the hub's own queues.
	pipeMu sync.RWMutex

	// repMu guards the latest slide report and stream bookkeeping; it is
	// taken inside Consume, which runs while pipeMu is write-held, so it
	// must never wrap a pipeMu acquisition.
	repMu     sync.RWMutex
	last      core.SlideReport
	slides    int
	streamEnd bool
}

// New wires a gateway over the system and registers it as an alert
// sink. The caller still owns the pipeline loop; route batches through
// Process.
func New(sys *core.System, opt Options) *Gateway {
	if opt.RingSize <= 0 {
		opt.RingSize = 1024
	}
	if opt.SubscriberQueue <= 0 {
		opt.SubscriberQueue = 256
	}
	if opt.Heartbeat <= 0 {
		opt.Heartbeat = 15 * time.Second
	}
	g := &Gateway{sys: sys, hub: NewHub(opt.RingSize), opt: opt}
	if opt.Metrics != nil {
		g.hub.RegisterMetrics(opt.Metrics)
	}
	sys.AddAlertSink(g)
	return g
}

// Hub exposes the fan-out hub (stats, direct subscriptions).
func (g *Gateway) Hub() *Hub { return g.hub }

// Process runs one batch through the pipeline under the gateway's
// write lock, so concurrent snapshot queries observe consistent state.
func (g *Gateway) Process(b stream.Batch) core.SlideReport {
	g.pipeMu.Lock()
	defer g.pipeMu.Unlock()
	return g.sys.ProcessBatch(b)
}

// Drain forwards core.System.Drain under the write lock, for drivers
// finishing a stream.
func (g *Gateway) Drain(last time.Time) {
	g.pipeMu.Lock()
	defer g.pipeMu.Unlock()
	g.sys.Drain(last)
}

// StreamEnded marks the input stream as finished; /healthz reports it
// so operators can tell "no alerts because the feed is over" from "no
// alerts yet".
func (g *Gateway) StreamEnded() {
	g.repMu.Lock()
	g.streamEnd = true
	g.repMu.Unlock()
}

// Consume implements core.AlertSink: it records the slide report and
// fans its alerts out to subscribers. It never blocks on slow clients.
func (g *Gateway) Consume(rep core.SlideReport) {
	g.repMu.Lock()
	g.last = rep
	g.slides++
	g.repMu.Unlock()
	g.hub.Publish(rep.Query, rep.Alerts)
}

// Handler returns the gateway's HTTP mux:
//
//	GET /events           live SSE alert stream (?mmsi=&ce=&area=, Last-Event-ID replay)
//	GET /alerts           recent alert history from the ring buffer (?n=)
//	GET /healthz          pipeline health + hub fan-out accounting
//	GET /report           the latest slide report (metrics, timings)
//	GET /vessels          current per-vessel tracker state
//	GET /vessels/{mmsi}   one vessel's state + retained synopsis
//	GET /trips            archived trips (?mmsi= to restrict)
//	GET /od               the origin–destination matrix
//	GET /metrics          Prometheus text exposition (when Options.Metrics is set)
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /events", g.handleEvents)
	mux.HandleFunc("GET /alerts", g.handleAlerts)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("GET /report", g.handleReport)
	mux.HandleFunc("GET /vessels", g.handleVessels)
	mux.HandleFunc("GET /vessels/{mmsi}", g.handleVessel)
	mux.HandleFunc("GET /trips", g.handleTrips)
	mux.HandleFunc("GET /od", g.handleOD)
	if g.opt.Metrics != nil {
		mux.Handle("GET /metrics", g.opt.Metrics.Handler())
	}
	return mux
}

// handleEvents is the SSE endpoint: one subscriber with a bounded
// drop-oldest queue per connection, pumped by this handler goroutine.
func (g *Gateway) handleEvents(w http.ResponseWriter, r *http.Request) {
	pumpEvents(w, r, g.hub, g.opt.SubscriberQueue, g.opt.Heartbeat, g.logf)
}

// pumpEvents is the SSE pump shared by the writer gateway and the
// stateless replicas: subscribe (resuming from Last-Event-ID when
// present), stream envelopes with heartbeats, release the subscription
// when the client goes away.
func pumpEvents(w http.ResponseWriter, r *http.Request, hub *Hub,
	queueCap int, heartbeat time.Duration, logf func(string, ...any)) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	filter, err := ParseFilter(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var sub *Subscriber
	if last := lastEventID(r); last != nil {
		sub = hub.SubscribeFrom(filter, queueCap, *last)
	} else {
		sub = hub.Subscribe(filter, queueCap)
	}
	defer sub.Close()
	// A client that vanishes leaves the pump blocked in NextTimeout;
	// closing the subscription on context cancellation releases it.
	stop := context.AfterFunc(r.Context(), sub.Close)
	defer stop()

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	logf("subscriber %d connected (%s)", sub.ID(), r.RemoteAddr)
	defer logf("subscriber %d disconnected", sub.ID())
	for {
		env, ok, timedOut := sub.NextTimeout(heartbeat)
		switch {
		case timedOut:
			if writeComment(w, "hb") != nil {
				return
			}
		case !ok:
			return
		default:
			if writeEvent(w, env) != nil {
				return
			}
		}
		fl.Flush()
	}
}

// lastEventID extracts the SSE resume cursor from the Last-Event-ID
// header or an "after" query parameter; nil means a fresh session.
func lastEventID(r *http.Request) *uint64 {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		raw = r.URL.Query().Get("after")
	}
	if raw == "" {
		return nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return nil
	}
	return &v
}

// handleAlerts serves the ring buffer tail as JSON.
func (g *Gateway) handleAlerts(w http.ResponseWriter, r *http.Request) {
	n := 0
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 0 {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	writeJSON(w, g.hub.Ring().Last(n))
}

// HealthzPayload is the /healthz response body. Status is the
// pipeline's three-state summary: "ok", "degraded" (quarantined
// targets under repair or the degradation ladder engaged — recovering,
// no operator action needed yet), or "wedged" (a target was abandoned
// past the give-up threshold; only a snapshot restore or restart
// brings it back).
type HealthzPayload struct {
	Status    string      `json:"status"` // "ok", "degraded", or "wedged"
	Slides    int         `json:"slides"`
	LastQuery time.Time   `json:"last_query"`
	StreamEnd bool        `json:"stream_ended"`
	Health    core.Health `json:"health"`
	Hub       HubStats    `json:"hub"`
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	g.repMu.RLock()
	p := HealthzPayload{
		Slides:    g.slides,
		LastQuery: g.last.Query,
		StreamEnd: g.streamEnd,
		Health:    g.last.Health,
	}
	g.repMu.RUnlock()
	p.Hub = g.hub.Stats()
	p.Status = p.Health.State()
	writeJSON(w, p)
}

// slideReportPayload is the JSON shape of the latest slide report.
type slideReportPayload struct {
	Query          time.Time        `json:"query"`
	FixesIn        int              `json:"fixes_in"`
	CriticalPoints int              `json:"critical_points"`
	TripsCompleted int              `json:"trips_completed"`
	Alerts         []maritime.Alert `json:"alerts"`
	TimingsMicros  map[string]int64 `json:"timings_us"`
	Health         core.Health      `json:"health"`
}

func (g *Gateway) handleReport(w http.ResponseWriter, r *http.Request) {
	g.repMu.RLock()
	rep := g.last
	g.repMu.RUnlock()
	writeJSON(w, slideReportPayload{
		Query:          rep.Query,
		FixesIn:        rep.FixesIn,
		CriticalPoints: rep.CriticalPoints,
		TripsCompleted: rep.TripsCompleted,
		Alerts:         rep.Alerts,
		TimingsMicros: map[string]int64{
			"tracking":       rep.Timings.Tracking.Microseconds(),
			"staging":        rep.Timings.Staging.Microseconds(),
			"reconstruction": rep.Timings.Reconstruction.Microseconds(),
			"loading":        rep.Timings.Loading.Microseconds(),
			"recognition":    rep.Timings.Recognition.Microseconds(),
			"total":          rep.Timings.Total().Microseconds(),
		},
		Health: rep.Health,
	})
}

func (g *Gateway) handleVessels(w http.ResponseWriter, r *http.Request) {
	g.pipeMu.RLock()
	infos := g.sys.Tracker().Infos()
	g.pipeMu.RUnlock()
	writeJSON(w, infos)
}

// vesselPayload is one vessel's state plus its retained synopsis.
type vesselPayload struct {
	tracker.VesselInfo
	Synopsis []synopsisPoint `json:"synopsis"`
}

// synopsisPoint is the JSON shape of one retained critical point.
type synopsisPoint struct {
	Type    string    `json:"type"`
	Time    time.Time `json:"time"`
	Lon     float64   `json:"lon"`
	Lat     float64   `json:"lat"`
	SpeedKn float64   `json:"speed_kn"`
}

func (g *Gateway) handleVessel(w http.ResponseWriter, r *http.Request) {
	mmsi, err := strconv.ParseUint(r.PathValue("mmsi"), 10, 32)
	if err != nil {
		http.Error(w, "bad mmsi", http.StatusBadRequest)
		return
	}
	g.pipeMu.RLock()
	info, ok := g.sys.Tracker().Info(uint32(mmsi))
	var synopsis []tracker.CriticalPoint
	if ok {
		synopsis = g.sys.Tracker().Synopsis(uint32(mmsi))
	}
	g.pipeMu.RUnlock()
	if !ok {
		http.Error(w, "unknown vessel", http.StatusNotFound)
		return
	}
	p := vesselPayload{VesselInfo: info, Synopsis: make([]synopsisPoint, 0, len(synopsis))}
	for _, cp := range synopsis {
		p.Synopsis = append(p.Synopsis, synopsisPoint{
			Type:    cp.Type.String(),
			Time:    cp.Time,
			Lon:     cp.Pos.Lon,
			Lat:     cp.Pos.Lat,
			SpeedKn: cp.SpeedKn,
		})
	}
	writeJSON(w, p)
}

// tripPayload summarizes one archived trip.
type tripPayload struct {
	MMSI      uint32    `json:"mmsi"`
	Origin    string    `json:"origin,omitempty"`
	Dest      string    `json:"dest"`
	Start     time.Time `json:"start"`
	End       time.Time `json:"end"`
	Points    int       `json:"points"`
	DistanceM float64   `json:"distance_m"`
}

func (g *Gateway) handleTrips(w http.ResponseWriter, r *http.Request) {
	var mmsi uint64
	var byVessel bool
	if raw := r.URL.Query().Get("mmsi"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 32)
		if err != nil {
			http.Error(w, "bad mmsi", http.StatusBadRequest)
			return
		}
		mmsi, byVessel = v, true
	}
	g.pipeMu.RLock()
	store := g.sys.Store()
	trips := store.Trips()
	if byVessel {
		trips = store.TripsOf(uint32(mmsi))
	}
	out := make([]tripPayload, 0, len(trips))
	for _, t := range trips {
		out = append(out, tripPayload{
			MMSI:      t.MMSI,
			Origin:    t.Origin,
			Dest:      t.Dest,
			Start:     t.Start,
			End:       t.End,
			Points:    len(t.Points),
			DistanceM: t.DistanceMeters(),
		})
	}
	g.pipeMu.RUnlock()
	writeJSON(w, out)
}

// odPayload is one origin–destination connection with its trip count.
type odPayload struct {
	Origin string `json:"origin,omitempty"`
	Dest   string `json:"dest"`
	Trips  int    `json:"trips"`
}

func (g *Gateway) handleOD(w http.ResponseWriter, r *http.Request) {
	g.pipeMu.RLock()
	matrix := g.sys.Store().ODMatrix()
	g.pipeMu.RUnlock()
	out := make([]odPayload, 0, len(matrix))
	for pair, n := range matrix {
		out = append(out, odPayload{Origin: pair.Origin, Dest: pair.Dest, Trips: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Origin != out[j].Origin {
			return out[i].Origin < out[j].Origin
		}
		return out[i].Dest < out[j].Dest
	})
	writeJSON(w, out)
}

// writeJSON renders v with an application/json content type.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// A failed encode means the client went away mid-body; the status
	// line is already on the wire, so there is nothing left to report.
	_ = enc.Encode(v)
}

func (g *Gateway) logf(format string, args ...any) {
	if g.opt.Logf != nil {
		g.opt.Logf(format, args...)
	}
}
