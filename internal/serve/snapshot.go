package serve

// Checkpoint support. The hub serializes its sequence counter and the
// retained history ring so that a restored gateway resumes the envelope
// sequence exactly where the crashed one stopped: deterministic replay
// after restore re-publishes the in-flight slides' alerts under the
// same sequence numbers, and SSE clients reconnecting with their
// Last-Event-ID deduplicate them — zero duplicate alerts end to end.

// HubSnapshot is the serialized replay state of a Hub.
type HubSnapshot struct {
	// Seq is the last assigned envelope sequence number.
	Seq uint64
	// Published is the cumulative publish counter (stats continuity).
	Published uint64
	// Ring holds the retained history, oldest first.
	Ring []Envelope
	// LogSeq is the durable alert log's last appended sequence at
	// snapshot time (0 when no log is attached; decodes zero from
	// checkpoints written before the log existed). On restore it tells
	// the wiring how far the log already reaches: replayed slides with
	// Seq <= LogSeq deduplicate inside the log's idempotent append.
	LogSeq uint64
}

// Snapshot captures the hub's replay state. Subscribers are not
// serialized — connections do not survive a process, clients re-attach
// with Last-Event-ID.
func (h *Hub) Snapshot() HubSnapshot {
	h.mu.Lock()
	snap := HubSnapshot{Seq: h.seq, Published: h.published}
	if h.log != nil {
		snap.LogSeq = h.log.LastSeq()
	}
	h.mu.Unlock()
	snap.Ring = h.ring.Last(0)
	return snap
}

// Restore replaces the hub's sequence counter and history with a
// snapshot's. It must run before the pipeline publishes and before
// subscribers attach.
func (h *Hub) Restore(snap HubSnapshot) {
	h.mu.Lock()
	h.seq = snap.Seq
	h.published = snap.Published
	h.mu.Unlock()
	for _, e := range snap.Ring {
		h.ring.Push(e)
	}
}

// Close shuts the hub down for graceful termination: every live
// subscriber is closed, so blocked Next/NextTimeout calls return ok
// false and SSE pump loops end their responses cleanly (EOF, not a
// connection reset). New subscriptions after Close are permitted but
// will only ever see alerts published after them; a shutting-down
// gateway stops accepting connections separately.
func (h *Hub) Close() {
	h.mu.Lock()
	subs := make([]*Subscriber, 0, len(h.match.slots))
	for _, s := range h.match.slots {
		if s != nil {
			subs = append(subs, s)
		}
	}
	h.mu.Unlock()
	// Subscriber.Close re-enters the hub via remove, so it must run
	// outside h.mu.
	for _, s := range subs {
		s.Close()
	}
}

// Quiesce runs fn while the pipeline is paused under the gateway's
// write lock: no slide is in flight and no snapshot query is reading,
// so fn observes (or captures) a consistent pipeline state. The
// checkpoint loop uses it to snapshot between slides.
func (g *Gateway) Quiesce(fn func()) {
	g.pipeMu.Lock()
	defer g.pipeMu.Unlock()
	fn()
}

// SlideCount returns how many slides the gateway has consumed.
func (g *Gateway) SlideCount() int {
	g.repMu.RLock()
	defer g.repMu.RUnlock()
	return g.slides
}
