package serve

import (
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/maritime"
	"repro/internal/obs"
)

// scrapeText renders a registry for assertions.
func scrapeText(t *testing.T, r *obs.Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

// TestSubscribeDuringSlowPublishDoesNotBlock is the regression test for
// the Publish lock scope: the hub used to hold its registry lock across
// every subscriber offer, so one stalled subscriber queue serialized
// every Subscribe (and every /healthz) behind the fan-out. Here one
// subscriber's queue lock is held to freeze a publish mid-delivery;
// registering a new subscriber must still return immediately.
func TestSubscribeDuringSlowPublishDoesNotBlock(t *testing.T) {
	h := NewHub(64)
	stuck := h.Subscribe(Filter{}, 8)
	defer stuck.Close()

	stuck.mu.Lock() // freeze this subscriber's offer path
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		h.Publish(t0, mkAlerts(3, 1, maritime.CESuspicious, "a1"))
	}()
	// Wait until the publish is actually wedged inside offer: it must
	// not have completed, and the hub lock must be free.
	time.Sleep(20 * time.Millisecond)
	select {
	case <-pubDone:
		t.Fatal("publish completed despite a frozen subscriber queue — test setup broken")
	default:
	}

	subscribed := make(chan *Subscriber, 1)
	go func() {
		subscribed <- h.Subscribe(Filter{}, 8)
	}()
	select {
	case s := <-subscribed:
		s.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("Subscribe blocked behind a slow publish")
	}
	// Stats (the /healthz path) takes per-subscriber locks, so it is
	// expected to wait on the frozen queue; Totals/Stats liveness is
	// restored once the queue unfreezes.
	stuck.mu.Unlock()
	<-pubDone
	if st := h.Stats(); st.Published != 3 {
		t.Fatalf("published = %d, want 3", st.Published)
	}
}

// TestSubscribeFromMidPublishNoGapNoDup races SubscribeFrom against a
// publisher and checks every subscriber sees a contiguous, duplicate-
// free sequence from its resume point: the no-gap/no-dup contract that
// used to be enforced by holding the hub lock across the whole publish.
func TestSubscribeFromMidPublishNoGapNoDup(t *testing.T) {
	h := NewHub(8192)
	const rounds = 200
	stopPub := make(chan struct{})
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stopPub:
				return
			default:
			}
			h.Publish(t0.Add(time.Duration(i)*time.Second), mkAlerts(4, uint32(i), maritime.CESuspicious, "a1"))
		}
	}()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds/8; j++ {
				// Resume from wherever the stream currently is.
				cur := h.Ring().Last(1)
				var after uint64
				if len(cur) == 1 {
					after = cur[0].Seq
				}
				s := h.SubscribeFrom(Filter{}, 4096, after)
				prev := after
				gaps := 0
				for k := 0; k < 16; k++ {
					e, ok, timedOut := s.NextTimeout(time.Second)
					if timedOut || !ok {
						break
					}
					if e.Seq <= prev {
						// Duplicates and reordering are bugs unconditionally.
						errs <- "dup or reorder: got seq " + itoa(e.Seq) + " after " + itoa(prev)
						break
					}
					// A forward gap is legal only when this subscriber's own
					// bounded queue dropped (checked below) or the resume
					// point already fell out of ring retention (first read).
					if e.Seq != prev+1 && k > 0 {
						gaps++
					}
					prev = e.Seq
				}
				if gaps > 0 && s.Stats().Dropped == 0 {
					errs <- "gap without queue drops after seq " + itoa(prev)
				}
				s.Close()
			}
		}()
	}
	wg.Wait()
	close(stopPub)
	pubWG.Wait()
	select {
	case msg := <-errs:
		t.Fatal(msg)
	default:
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// TestRingSinceEdgeCases pins the binary-search resume against every
// boundary: empty ring, cursor older than retention, cursor at and
// beyond the head, and a post-eviction wraparound where the ring's
// start index has moved.
func TestRingSinceEdgeCases(t *testing.T) {
	empty := NewRing(4)
	if got := empty.Since(0); got != nil {
		t.Fatalf("Since on empty ring = %v, want nil", got)
	}

	r := NewRing(8)
	// Push 20 envelopes: seqs 1..20, retention keeps 13..20 and the
	// start index has wrapped the backing array more than once.
	for i := 1; i <= 20; i++ {
		r.Push(Envelope{Seq: uint64(i)})
	}
	cases := []struct {
		seq       uint64
		wantFirst uint64
		wantLen   int
	}{
		{0, 13, 8},  // far older than retention: whole ring
		{12, 13, 8}, // exactly the evicted edge
		{13, 14, 7}, // oldest retained: everything after it
		{16, 17, 4}, // interior wraparound point
		{19, 20, 1}, // just before head
		{20, 0, 0},  // at head: nothing newer
		{99, 0, 0},  // beyond head
	}
	for _, tc := range cases {
		got := r.Since(tc.seq)
		if len(got) != tc.wantLen {
			t.Errorf("Since(%d) len = %d, want %d", tc.seq, len(got), tc.wantLen)
			continue
		}
		if tc.wantLen > 0 && got[0].Seq != tc.wantFirst {
			t.Errorf("Since(%d) first = %d, want %d", tc.seq, got[0].Seq, tc.wantFirst)
		}
		for i := 1; i < len(got); i++ {
			if got[i].Seq != got[i-1].Seq+1 {
				t.Errorf("Since(%d) not contiguous at %d", tc.seq, i)
			}
		}
	}
}

// TestGatewayMetricsEndpoint mounts /metrics through Options.Metrics
// and checks a scrape over HTTP covers the hub fan-out counters, and
// that the endpoint is absent when no registry is configured.
func TestGatewayMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	g := newTestGateway(t, Options{Metrics: reg})
	srv := httptest.NewServer(g.Handler())
	defer srv.Close()

	g.Consume(report(t0, maritime.Alert{CE: maritime.CESuspicious, AreaID: "a1", Time: t0}))

	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(res.Body)
	res.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if res.StatusCode != 200 {
		t.Fatalf("/metrics returned %d", res.StatusCode)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE maritime_hub_published_total counter",
		"maritime_hub_published_total 1",
		"maritime_hub_subscribers 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q:\n%s", want, out)
		}
	}

	bare := newTestGateway(t, Options{})
	bareSrv := httptest.NewServer(bare.Handler())
	defer bareSrv.Close()
	res2, err := bareSrv.Client().Get(bareSrv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode == 200 {
		t.Fatal("/metrics served without a configured registry")
	}
}

// TestHubMetricsExport publishes through a hub with metrics registered
// and checks the fan-out counters reach the exposition.
func TestHubMetricsExport(t *testing.T) {
	reg := obs.NewRegistry()
	h := NewHub(64)
	h.RegisterMetrics(reg)
	s := h.Subscribe(Filter{}, 64)
	h.Publish(t0, mkAlerts(5, 1, maritime.CESuspicious, "a1"))
	for i := 0; i < 5; i++ {
		if _, ok := s.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	s.Close()
	out := scrapeText(t, reg)
	for _, want := range []string{
		"maritime_hub_published_total 5",
		"maritime_hub_delivered_total 5",
		"maritime_hub_dropped_total 0",
		"maritime_hub_subscribers 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}
