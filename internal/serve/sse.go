package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// writeEvent renders one envelope as a Server-Sent Event frame:
//
//	id: <seq>
//	event: alert
//	data: <json>
//	<blank>
//
// The id line makes browser EventSource (and our client) resume with
// Last-Event-ID after a reconnect.
func writeEvent(w io.Writer, e Envelope) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	// Marker envelopes (e.g. replay-truncated) go out under their own
	// event name so plain EventSource listeners on "alert" never see a
	// synthetic record as a recognized alert.
	name := "alert"
	if e.Marker != "" {
		name = e.Marker
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, name, data)
	return err
}

// writeComment emits an SSE comment line — the heartbeat that keeps
// idle connections verifiably alive without emitting events.
func writeComment(w io.Writer, msg string) error {
	_, err := fmt.Fprintf(w, ": %s\n\n", msg)
	return err
}

// StreamAlerts subscribes to an alert gateway's /events endpoint and
// calls fn for every received envelope until ctx is cancelled or the
// stream ends. eventsURL is the full URL including any filter query,
// e.g. "http://127.0.0.1:8080/events?mmsi=237000101". lastEventID > 0
// resumes after that sequence number (reconnect replay). It returns nil
// on a clean end or cancellation, and the transport error otherwise.
//
// It is the in-process SSE consumer used by examples/livemonitor, the
// load harness and the tests; any standards-compliant SSE client (curl,
// EventSource) speaks the same protocol.
func StreamAlerts(ctx context.Context, eventsURL string, lastEventID uint64, fn func(Envelope)) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, eventsURL, nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastEventID > 0 {
		req.Header.Set("Last-Event-ID", fmt.Sprintf("%d", lastEventID))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("serve: %s: %s", resp.Status, strings.TrimSpace(string(body)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data strings.Builder
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if data.Len() > 0 {
				var e Envelope
				if err := json.Unmarshal([]byte(data.String()), &e); err != nil {
					return fmt.Errorf("serve: bad event payload: %w", err)
				}
				fn(e)
				data.Reset()
			}
		case strings.HasPrefix(line, "data:"):
			data.WriteString(strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " "))
		default:
			// id:, event: and comment lines need no client-side state —
			// the envelope itself carries its sequence number.
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}
