package serve

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/maritime"
)

// TestRunLoadAcrossReplicas is an in-process smoke of the multi-replica
// load path: two replica hubs fed the same pre-stamped envelopes (as a
// log tailer would), subscribers spread round-robin over both, and the
// report must show traffic through each endpoint with no stream errors.
func TestRunLoadAcrossReplicas(t *testing.T) {
	var srvs []*httptest.Server
	var hubs []*Hub
	for i := 0; i < 2; i++ {
		hub := NewHub(128)
		rp := NewReplica(hub, ReplicaOptions{Name: "load-test", SubscriberQueue: 512, Heartbeat: 50 * time.Millisecond})
		srv := httptest.NewServer(rp.Handler())
		defer srv.Close()
		hubs = append(hubs, hub)
		srvs = append(srvs, srv)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		slide := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
		var seq uint64
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				seq++
				env := Envelope{
					Seq:       seq,
					Slide:     slide,
					Published: time.Now(),
					Alert:     maritime.Alert{CE: "speeding", AreaID: "a1", Vessel: 237000001, Time: slide},
				}
				for _, h := range hubs {
					h.PublishEnvelopes([]Envelope{env})
				}
			}
		}
	}()

	rep := RunLoad(context.Background(), LoadOptions{
		BaseURLs:    []string{srvs[0].URL, srvs[1].URL},
		Subscribers: 6,
		Duration:    600 * time.Millisecond,
	})
	cancel()
	<-pubDone

	if rep.Errors != 0 {
		t.Fatalf("load run reported %d stream errors: %+v", rep.Errors, rep)
	}
	if rep.Replicas != 2 || len(rep.PerReplica) != 2 {
		t.Fatalf("report covers %d replicas (per-replica %v), want 2", rep.Replicas, rep.PerReplica)
	}
	if rep.Events == 0 {
		t.Fatalf("no events delivered: %+v", rep)
	}
	for i, n := range rep.PerReplica {
		if n == 0 {
			t.Errorf("replica %d delivered nothing: %+v", i, rep)
		}
	}
	if rep.Max <= 0 {
		t.Errorf("latency histogram empty (max=%s) despite %d events", rep.Max, rep.Events)
	}
}
