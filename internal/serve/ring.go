package serve

import (
	"sort"
	"sync"
)

// Ring is the fixed-capacity alert-history buffer: it retains the most
// recent published envelopes for the JSON history endpoint and for SSE
// reconnect replay (Last-Event-ID). It has its own lock so snapshot
// queries never contend with the hub's publish path for long.
type Ring struct {
	mu    sync.Mutex
	buf   []Envelope
	start int // index of the oldest entry
	n     int // live entries
}

// NewRing returns a ring retaining up to capacity envelopes.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Ring{buf: make([]Envelope, capacity)}
}

// Cap returns the retention capacity.
func (r *Ring) Cap() int { return len(r.buf) }

// Len returns the number of retained envelopes.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Push appends an envelope, evicting the oldest when full.
func (r *Ring) Push(e Envelope) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
}

// Last returns up to n most recent envelopes, oldest first.
func (r *Ring) Last(n int) []Envelope {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n <= 0 || n > r.n {
		n = r.n
	}
	out := make([]Envelope, 0, n)
	for i := r.n - n; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}

// FirstSeq returns the sequence number of the oldest retained envelope
// (0 when the ring is empty) — the replay floor: a Since(seq) with
// seq < FirstSeq()-1 has lost the evicted prefix.
func (r *Ring) FirstSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return 0
	}
	return r.buf[r.start].Seq
}

// Since returns the retained envelopes with sequence strictly greater
// than seq, oldest first. A reconnecting client that was away longer
// than the ring's retention silently loses the evicted prefix — the
// same explicit degradation policy as everywhere else in the pipeline.
//
// Sequence numbers increase monotonically in ring order, so the resume
// point is found by binary search: every SSE reconnect costs O(log n)
// under the ring lock instead of a full scan, which matters when
// thousands of clients re-attach after a gateway blip.
func (r *Ring) Since(seq uint64) []Envelope {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.n == 0 {
		return nil
	}
	i := sort.Search(r.n, func(i int) bool {
		return r.buf[(r.start+i)%len(r.buf)].Seq > seq
	})
	if i == r.n {
		return nil
	}
	out := make([]Envelope, 0, r.n-i)
	for ; i < r.n; i++ {
		out = append(out, r.buf[(r.start+i)%len(r.buf)])
	}
	return out
}
