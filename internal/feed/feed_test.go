package feed

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/stream"
)

var t0 = time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)

func testFixes(n int) []ais.Fix {
	fixes := make([]ais.Fix, n)
	pos := geo.Point{Lon: 24, Lat: 37}
	for i := 0; i < n; i++ {
		pos = geo.Destination(pos, 90, 300)
		fixes[i] = ais.Fix{
			MMSI: 237000000 + uint32(i%3),
			Pos:  pos,
			Time: t0.Add(time.Duration(i) * time.Minute),
		}
	}
	return fixes
}

// startServer runs a server over a loopback listener and returns the
// server, its address, and a shutdown func.
func startServer(t *testing.T, fixes []ais.Fix, speedup float64) (*Server, string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	srv := &Server{Fixes: fixes, Speedup: speedup, Logf: t.Logf}
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(ctx, "127.0.0.1:0", addrCh) }()
	select {
	case addr := <-addrCh:
		return srv, addr.String(), func() {
			cancel()
			if err := <-errCh; err != nil {
				t.Errorf("server: %v", err)
			}
		}
	case err := <-errCh:
		t.Fatalf("server failed to start: %v", err)
		return nil, "", nil
	}
}

func TestFeedRoundTrip(t *testing.T) {
	fixes := testFixes(50)
	srv, addr, shutdown := startServer(t, fixes, 0) // replay at full speed
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	got, err := stream.Collect(c)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fixes) {
		t.Fatalf("received %d fixes, want %d", len(got), len(fixes))
	}
	// The server has finished streaming (the client read to EOF); it
	// accounts the completed connection shortly after.
	deadline := time.Now().Add(2 * time.Second)
	for srv.ClientsServed() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if srv.ClientsServed() != 1 {
		t.Errorf("ClientsServed = %d, want 1", srv.ClientsServed())
	}
	for i := range got {
		if got[i].MMSI != fixes[i].MMSI {
			t.Fatalf("fix %d MMSI = %d, want %d", i, got[i].MMSI, fixes[i].MMSI)
		}
		if !got[i].Time.Equal(fixes[i].Time) {
			t.Fatalf("fix %d time drifted", i)
		}
		// AIS position resolution is 1/10000 arc-minute (~0.2 m).
		if d := geo.Haversine(got[i].Pos, fixes[i].Pos); d > 0.5 {
			t.Fatalf("fix %d position drifted %.2f m over the wire", i, d)
		}
	}
	if c.Stats().Dropped() != 0 {
		t.Errorf("clean feed dropped lines: %+v", c.Stats())
	}
}

func TestFeedServesMultipleClients(t *testing.T) {
	fixes := testFixes(30)
	_, addr, shutdown := startServer(t, fixes, 0)
	defer shutdown()

	results := make(chan int, 3)
	for i := 0; i < 3; i++ {
		go func() {
			c, err := Dial(addr)
			if err != nil {
				results <- -1
				return
			}
			defer c.Close()
			got, err := stream.Collect(c)
			if err != nil {
				results <- -1
				return
			}
			results <- len(got)
		}()
	}
	for i := 0; i < 3; i++ {
		if n := <-results; n != len(fixes) {
			t.Fatalf("client received %d fixes, want %d", n, len(fixes))
		}
	}
}

func TestFeedPacing(t *testing.T) {
	// 10 fixes one minute apart at 1200× speedup: the replay should take
	// roughly 9*60/1200 = 450 ms of wall time.
	fixes := testFixes(10)
	_, addr, shutdown := startServer(t, fixes, 1200)
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	start := time.Now()
	got, err := stream.Collect(c)
	elapsed := time.Since(start)
	if err != nil || len(got) != len(fixes) {
		t.Fatalf("collect: %d fixes, err %v", len(got), err)
	}
	if elapsed < 300*time.Millisecond {
		t.Errorf("paced replay finished in %v, expected ≥ 300ms", elapsed)
	}
	if elapsed > 5*time.Second {
		t.Errorf("paced replay took %v, pacing badly off", elapsed)
	}
}

func TestRelayCancellation(t *testing.T) {
	// An unpaced infinite-ish feed: cancel mid-stream.
	fixes := testFixes(5000)
	_, addr, shutdown := startServer(t, fixes, 5) // slow replay
	defer shutdown()

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	n := 0
	err = Relay(ctx, c, func(ais.Fix) { n++ })
	if err != context.DeadlineExceeded {
		t.Errorf("Relay err = %v, want deadline exceeded", err)
	}
}

func TestClientOverPipe(t *testing.T) {
	// NewClient works over any net.Conn; exercise it with net.Pipe.
	server, client := net.Pipe()
	go func() {
		defer server.Close()
		r := &ais.PositionReport{Type: 1, MMSI: 237000009, Lon: 24.5, Lat: 37.5}
		lines, _ := ais.EncodeSentences(r, "A", 0)
		server.Write([]byte("1243814400 " + lines[0] + "\n"))
	}()
	c := NewClient(client)
	defer c.Close()
	if !c.Scan() {
		t.Fatal("no fix over pipe")
	}
	if c.Fix().MMSI != 237000009 {
		t.Errorf("MMSI = %d", c.Fix().MMSI)
	}
}
