package feed

import (
	"fmt"
	"maps"
	"net"

	"repro/internal/ais"
)

// Cursor is an externally owned resume cursor over the fix stream: the
// newest fix second observed and how many fixes each vessel contributed
// at that second — the same bookkeeping ReconnectingClient keeps
// internally, exposed so a checkpointing driver can track exactly the
// fixes its pipeline has *processed* (not merely received; batching
// read-ahead means the client is always ahead of the pipeline) and hand
// the cursor back after a restart.
type Cursor struct {
	Sec       int64
	SeenAtSec map[uint32]int
}

// Note advances the cursor past one processed fix. Fixes must be noted
// in the order the pipeline consumed them.
func (c *Cursor) Note(f ais.Fix) {
	u := f.Time.Unix()
	if u > c.Sec {
		c.Sec = u
		clear(c.SeenAtSec)
	}
	if u == c.Sec {
		if c.SeenAtSec == nil {
			c.SeenAtSec = make(map[uint32]int)
		}
		c.SeenAtSec[f.MMSI]++
	}
}

// Clone returns an independent copy.
func (c Cursor) Clone() Cursor {
	return Cursor{Sec: c.Sec, SeenAtSec: maps.Clone(c.SeenAtSec)}
}

// SeedCursor primes the client's resume cursor before its first
// connection, so that connect sends "RESUME <Sec-1>" and discards the
// replayed fixes the cursor already covers. It must be called before
// the first Scan and only on a client built by NewReconnecting (which
// connects lazily).
func (c *ReconnectingClient) SeedCursor(cur Cursor) {
	c.curSec = cur.Sec
	c.seenAtSec = maps.Clone(cur.SeenAtSec)
	if c.seenAtSec == nil {
		c.seenAtSec = make(map[uint32]int)
	}
}

// DialReconnectingFrom is DialReconnecting with a restored resume
// cursor: the very first connection performs the RESUME handshake at
// the cursor and discards the already-processed duplicates, so a
// process restarting from a checkpoint observes exactly the fixes after
// its checkpoint — exactly-once delivery across the crash.
func DialReconnectingFrom(addr string, policy RetryPolicy, cur Cursor) (*ReconnectingClient, error) {
	c := NewReconnecting(func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, policy.DialTimeout)
	}, policy)
	c.SeedCursor(cur)
	if !c.connect(false) {
		return nil, fmt.Errorf("feed: dial %s: %w", addr, c.err)
	}
	return c, nil
}

// FixSource is the structural source interface ResumeFilter wraps; it
// matches stream.FixSource without importing the stream package.
type FixSource interface {
	Scan() bool
	Fix() ais.Fix
}

// ResumeFilter discards the prefix of a fix source a restored cursor
// already covers, with the same semantics as the reconnecting client's
// resume skip: everything before the cursor second is dropped; at the
// cursor second, each vessel's first N fixes are dropped where N is its
// count in the cursor. File and simulator replays use it so a
// checkpointed offline run resumes exactly-once, like the live path.
// The source must deliver fixes in non-decreasing timestamp order.
type ResumeFilter struct {
	src      FixSource
	sec      int64
	skip     map[uint32]int
	resuming bool
	skipped  int
	fix      ais.Fix
}

// NewResumeFilter wraps src, skipping what cur covers. A zero cursor
// passes everything through.
func NewResumeFilter(src FixSource, cur Cursor) *ResumeFilter {
	return &ResumeFilter{
		src:      src,
		sec:      cur.Sec,
		skip:     maps.Clone(cur.SeenAtSec),
		resuming: cur.Sec > 0,
	}
}

// Scan advances to the next fix not covered by the cursor.
func (r *ResumeFilter) Scan() bool {
	for r.src.Scan() {
		f := r.src.Fix()
		if r.resuming {
			u := f.Time.Unix()
			switch {
			case u < r.sec:
				r.skipped++
				continue
			case u == r.sec:
				if r.skip[f.MMSI] > 0 {
					r.skip[f.MMSI]--
					r.skipped++
					continue
				}
			default:
				r.resuming = false
			}
		}
		r.fix = f
		return true
	}
	return false
}

// Fix returns the current fix.
func (r *ResumeFilter) Fix() ais.Fix { return r.fix }

// Err surfaces the wrapped source's error when it reports one, making
// ResumeFilter a drop-in stream.FixSource.
func (r *ResumeFilter) Err() error {
	if s, ok := r.src.(interface{ Err() error }); ok {
		return s.Err()
	}
	return nil
}

// Skipped returns how many already-processed fixes were discarded.
func (r *ResumeFilter) Skipped() int { return r.skipped }
