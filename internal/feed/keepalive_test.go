package feed

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

// Keepalive heartbeats and dead-peer detection are two halves of one
// contract: an idle-but-healthy feed emits "# HB" comments more often
// than the client's DeadPeerTimeout, so only a truly hung peer trips
// the timeout and forces a reconnect.

func pacedFixes(gap time.Duration) []ais.Fix {
	base := time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)
	return []ais.Fix{
		{MMSI: 111, Pos: geo.Point{Lon: 23.5, Lat: 37.9}, Time: base},
		{MMSI: 111, Pos: geo.Point{Lon: 23.6, Lat: 37.8}, Time: base.Add(gap)},
	}
}

// A paced server with KeepaliveEvery emits heartbeat comments through
// an idle stretch, and the client-side scanner skips them silently.
func TestServerKeepaliveHeartbeats(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// 30 s of stream time at 100× ≈ 300 ms of wall idle between fixes.
	srv := &Server{
		Fixes:          pacedFixes(30 * time.Second),
		Speedup:        100,
		HandshakeWait:  200 * time.Millisecond,
		KeepaliveEvery: 40 * time.Millisecond,
	}
	addrCh := make(chan net.Addr, 1)
	go srv.ListenAndServe(ctx, "127.0.0.1:0", addrCh)
	addr := <-addrCh

	conn, err := net.DialTimeout("tcp", addr.String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "RESUME -1\n")
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))

	var fixes, heartbeats int
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "# HB ") {
			heartbeats++
		} else {
			fixes++
		}
	}
	if fixes != len(srv.Fixes) {
		t.Errorf("received %d fix lines, want %d", fixes, len(srv.Fixes))
	}
	if heartbeats == 0 {
		t.Error("no heartbeat lines crossed the idle stretch")
	}
	if st := srv.Stats(); st.Heartbeats != heartbeats {
		t.Errorf("server counted %d heartbeats, client saw %d", st.Heartbeats, heartbeats)
	}
}

// With heartbeats flowing, a DeadPeerTimeout shorter than the idle
// stretch (but longer than the keepalive interval) never trips: the
// client can tell an idle stream from a dead peer.
func TestDeadPeerQuietWhenHeartbeatsFlow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv := &Server{
		Fixes:          pacedFixes(30 * time.Second),
		Speedup:        100,
		HandshakeWait:  200 * time.Millisecond,
		KeepaliveEvery: 40 * time.Millisecond,
	}
	addrCh := make(chan net.Addr, 1)
	go srv.ListenAndServe(ctx, "127.0.0.1:0", addrCh)
	addr := <-addrCh

	policy := DefaultRetryPolicy()
	policy.InitialBackoff = 10 * time.Millisecond
	client := NewReconnecting(func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr.String(), policy.DialTimeout)
	}, policy)
	client.DeadPeerTimeout = 120 * time.Millisecond
	defer client.Close()

	var got []ais.Fix
	for client.Scan() {
		got = append(got, client.Fix())
	}
	if err := client.Err(); err != nil {
		t.Fatalf("client error: %v", err)
	}
	if len(got) != len(srv.Fixes) {
		t.Fatalf("received %d fixes, want %d", len(got), len(srv.Fixes))
	}
	ns := client.NetStats()
	if ns.DeadPeers != 0 || ns.Reconnects != 0 {
		t.Errorf("heartbeat-fed client still tripped: %+v", ns)
	}
}

// A peer that goes silent mid-stream — no data, no heartbeats — trips
// the timeout: the drop is counted in DeadPeers, the client reconnects
// with a resume cursor, and the per-vessel dedupe discards the replayed
// prefix so every fix still arrives exactly once.
func TestDeadPeerTripsAndResumesWithoutHeartbeats(t *testing.T) {
	fixes := pacedFixes(30 * time.Second)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	var mu sync.Mutex
	var held []net.Conn
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range held {
			c.Close()
		}
	}()
	go func() {
		// First connection: one fix, then dead silence. Second: a full
		// replay (the fake server ignores the cursor on purpose — the
		// client must dedupe the prefix itself) followed by a clean close.
		for i := 0; ; i++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Drain the RESUME greeting so closing later sends a clean
			// FIN, not an RST over unread handshake bytes.
			bufio.NewReader(conn).ReadString('\n')
			if i == 0 {
				ais.WriteFixCSV(conn, fixes[0])
				mu.Lock()
				held = append(held, conn)
				mu.Unlock()
				continue
			}
			for _, f := range fixes {
				ais.WriteFixCSV(conn, f)
			}
			conn.Close()
		}
	}()

	policy := DefaultRetryPolicy()
	policy.InitialBackoff = 10 * time.Millisecond
	client := NewReconnecting(func() (net.Conn, error) {
		return net.DialTimeout("tcp", ln.Addr().String(), policy.DialTimeout)
	}, policy)
	client.DeadPeerTimeout = 100 * time.Millisecond
	defer client.Close()

	var got []ais.Fix
	for client.Scan() {
		got = append(got, client.Fix())
	}
	if err := client.Err(); err != nil {
		t.Fatalf("client error: %v", err)
	}
	if len(got) != len(fixes) {
		t.Fatalf("received %d fixes, want %d (dedupe across the resume failed?)", len(got), len(fixes))
	}
	ns := client.NetStats()
	if ns.DeadPeers == 0 {
		t.Errorf("silent mid-stream peer did not register as dead: %+v", ns)
	}
	if ns.Reconnects != 1 || ns.Resumes != 1 {
		t.Errorf("want exactly one resumed reconnect, got %+v", ns)
	}
	if ns.ResumeSkipped == 0 {
		t.Errorf("the replayed prefix was not deduplicated: %+v", ns)
	}
}

// A server that accepts and then hangs forever — no data at all — is
// declared dead after DeadPeerTimeout instead of blocking Scan.
func TestDeadPeerOnCompletelySilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	var mu sync.Mutex
	var conns []net.Conn
	defer func() {
		mu.Lock()
		defer mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}()
	go func() {
		// Hold the first connection open without sending a byte, then
		// stop listening so the re-dial after the dead-peer drop fails
		// and exhausts the retry policy.
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		mu.Lock()
		conns = append(conns, conn)
		mu.Unlock()
		ln.Close()
	}()

	policy := DefaultRetryPolicy()
	policy.MaxAttempts = 1
	policy.InitialBackoff = 5 * time.Millisecond
	client := NewReconnecting(func() (net.Conn, error) {
		return net.DialTimeout("tcp", ln.Addr().String(), time.Second)
	}, policy)
	client.DeadPeerTimeout = 80 * time.Millisecond
	defer client.Close()

	done := make(chan bool, 1)
	go func() { done <- client.Scan() }()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Scan produced a fix from a silent server")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Scan blocked past DeadPeerTimeout on a silent peer")
	}
	if ns := client.NetStats(); ns.DeadPeers == 0 {
		t.Errorf("silent server not counted as a dead peer: %+v", ns)
	}
}
