package feed

import (
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestClientMetricsExport runs a short faulty session and checks the
// transport and drop counters surface in a scrape with the values the
// client's own Stats/NetStats report.
func TestClientMetricsExport(t *testing.T) {
	fixes := testFixes(50)
	srv := &Server{Fixes: fixes, Logf: t.Logf, HandshakeWait: 2 * time.Second}
	_, addr, shutdown := startServerWith(t, srv)
	defer shutdown()

	dials := 0
	c := NewReconnecting(func() (net.Conn, error) {
		dials++
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		if dials == 1 {
			return &limitConn{Conn: conn, budget: 700}, nil // force one reconnect
		}
		return conn, nil
	}, testPolicy())
	defer c.Close()

	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)

	n := 0
	for c.Scan() {
		n++
	}
	if n != len(fixes) {
		t.Fatalf("received %d fixes, want %d", n, len(fixes))
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"maritime_feed_dial_attempts_total 2",
		"maritime_feed_reconnects_total 1",
		"maritime_feed_disconnects_total 1",
		"maritime_feed_resumes_total 1",
		// Scanner-level count includes the dupes replayed around the
		// resume cursor, so compare against the client's own stats.
		"maritime_feed_fixes_total " + strconv.Itoa(c.Stats().Fixes),
		`maritime_feed_drops_total{cause="checksum"}`,
		`maritime_feed_drops_total{cause="malformed"}`,
		`maritime_feed_drops_total{cause="unsupported"}`,
		`maritime_feed_drops_total{cause="no-position"}`,
		`maritime_feed_drops_total{cause="fragment-loss"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}
