package feed

import (
	"repro/internal/ais"
	"repro/internal/obs"
)

// RegisterMetrics exports the client's transport and scanner counters
// into the registry as pull-style metrics: each scrape samples
// NetStats/Stats under the client's own lock, so there is no second
// bookkeeping path to drift from the authoritative counters.
func (c *ReconnectingClient) RegisterMetrics(r *obs.Registry) {
	net := func(f func(NetStats) int) func() float64 {
		return func() float64 { return float64(f(c.NetStats())) }
	}
	r.CounterFunc("maritime_feed_dial_attempts_total",
		"Feed dials tried, including the initial connect.",
		nil, net(func(n NetStats) int { return n.DialAttempts }))
	r.CounterFunc("maritime_feed_dial_failures_total",
		"Feed dials that errored.",
		nil, net(func(n NetStats) int { return n.DialFailures }))
	r.CounterFunc("maritime_feed_disconnects_total",
		"Established feed connections lost mid-stream.",
		nil, net(func(n NetStats) int { return n.Disconnects }))
	r.CounterFunc("maritime_feed_reconnects_total",
		"Feed connections re-established after a loss.",
		nil, net(func(n NetStats) int { return n.Reconnects }))
	r.CounterFunc("maritime_feed_resumes_total",
		"RESUME handshakes sent on reconnect.",
		nil, net(func(n NetStats) int { return n.Resumes }))
	r.CounterFunc("maritime_feed_resume_dupes_total",
		"Duplicate fixes discarded during resume catch-up.",
		nil, net(func(n NetStats) int { return n.ResumeSkipped }))
	r.CounterFunc("maritime_feed_dead_peers_total",
		"Connections abandoned because the peer sent nothing — not even a heartbeat — within the dead-peer timeout.",
		nil, net(func(n NetStats) int { return n.DeadPeers }))

	scan := func(f func(s ais.ScannerStats) int) func() float64 {
		return func() float64 { return float64(f(c.Stats())) }
	}
	r.CounterFunc("maritime_feed_fixes_total",
		"Cleaned fixes emitted by the feed scanner.",
		nil, scan(func(s ais.ScannerStats) int { return s.Fixes }))
	const dropHelp = "Feed scanner lines dropped, by cause."
	r.CounterFunc("maritime_feed_drops_total", dropHelp,
		obs.Labels{"cause": "checksum"}, scan(func(s ais.ScannerStats) int { return s.BadChecksum }))
	r.CounterFunc("maritime_feed_drops_total", dropHelp,
		obs.Labels{"cause": "malformed"}, scan(func(s ais.ScannerStats) int { return s.Malformed }))
	r.CounterFunc("maritime_feed_drops_total", dropHelp,
		obs.Labels{"cause": "unsupported"}, scan(func(s ais.ScannerStats) int { return s.Unsupported }))
	r.CounterFunc("maritime_feed_drops_total", dropHelp,
		obs.Labels{"cause": "no-position"}, scan(func(s ais.ScannerStats) int { return s.NoPosition }))
	r.CounterFunc("maritime_feed_drops_total", dropHelp,
		obs.Labels{"cause": "fragment-loss"}, scan(func(s ais.ScannerStats) int { return s.FragmentLoss }))
}
