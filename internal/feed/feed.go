// Package feed provides the live AIS feed integration the paper plans
// for its deployment (§7: "we soon expect to be given access to live
// AIS feeds from all vessels across the Aegean Sea"): a TCP server that
// replays a positional stream as timestamped NMEA AIVDM lines at a
// configurable time acceleration, and a client that connects to such a
// feed and exposes it as a FixSource for the surveillance pipeline.
package feed

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ais"
)

// ServerStats counts what the feed server did and why it dropped
// output, mirroring ais.ScannerStats on the producing side: encode and
// write failures are structured counters rather than log lines, so a
// supervisor can alarm on them.
type ServerStats struct {
	ClientsServed int // connections that ran to completion or client drop
	Resumes       int // RESUME handshakes honored
	ResumeSkipped int // fixes skipped because they were ≤ a resume cursor
	EncodeErrors  int // fixes dropped because NMEA encoding failed
	WriteErrors   int // client connections dropped on a write error
	Heartbeats    int // keepalive comment lines emitted during idle stretches
}

// Server replays a fix stream to every connected client, paced by the
// original timestamps divided by Speedup (Speedup 0 or ≥ 1e6 replays
// as fast as the sockets drain).
type Server struct {
	Fixes   []ais.Fix
	Speedup float64
	// Logf receives connection lifecycle messages; nil silences them.
	Logf func(format string, args ...any)
	// HandshakeWait, when positive, makes the server wait this long after
	// accept for an optional "RESUME <unix>" line from the client before
	// streaming. A resuming client is replayed only the fixes with
	// timestamp strictly greater than the cursor; clients that send
	// nothing get the full stream after the wait elapses.
	HandshakeWait time.Duration
	// KeepaliveEvery, when positive, emits a "# HB <stream-unix>"
	// comment line whenever a paced replay would otherwise stay silent
	// for that long. The scanner on the other end skips comment lines
	// (counted as Blank), so heartbeats cost nothing semantically but
	// let a client with a read timeout distinguish an idle stream from
	// a dead peer.
	KeepaliveEvery time.Duration

	mu       sync.Mutex
	listener net.Listener
	stats    ServerStats
}

// Serve listens on addr ("host:port", port 0 picks a free one) and
// streams to each client until ctx is cancelled. It returns the bound
// address on a channel-free API: call Addr after Serve has started, or
// use ListenAndServe for the common case.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil // clean shutdown
			}
			return fmt.Errorf("feed: accept: %w", err)
		}
		s.logf("client %s connected", conn.RemoteAddr())
		go s.stream(ctx, conn)
	}
}

// ListenAndServe binds addr and serves until ctx is cancelled. The
// bound address is reported through addrCh (buffered, length 1) before
// the first Accept.
func (s *Server) ListenAndServe(ctx context.Context, addr string, addrCh chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("feed: listen: %w", err)
	}
	if addrCh != nil {
		addrCh <- ln.Addr()
	}
	return s.Serve(ctx, ln)
}

// ClientsServed returns how many client connections completed.
func (s *Server) ClientsServed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats.ClientsServed
}

// Stats returns a snapshot of the server's drop and resume counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Server) count(fn func(*ServerStats)) {
	s.mu.Lock()
	fn(&s.stats)
	s.mu.Unlock()
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// encodeSentences is swapped out by tests to exercise the encode-error
// accounting.
var encodeSentences = ais.EncodeSentences

// stream writes the fix stream to one client.
func (s *Server) stream(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	defer s.count(func(st *ServerStats) { st.ClientsServed++ })
	cursor := s.handshake(conn)
	w := bufio.NewWriter(conn)
	var streamStart time.Time
	var wallStart time.Time
	paced := false
	for i, f := range s.Fixes {
		if ctx.Err() != nil {
			return
		}
		if cursor != nil && f.Time.Unix() <= *cursor {
			s.count(func(st *ServerStats) { st.ResumeSkipped++ })
			continue
		}
		if s.Speedup > 0 && s.Speedup < 1e6 {
			if !paced {
				streamStart = f.Time
				wallStart = time.Now()
				paced = true
			} else {
				due := wallStart.Add(time.Duration(float64(f.Time.Sub(streamStart)) / s.Speedup))
				for {
					d := time.Until(due)
					if d <= 0 {
						break
					}
					if s.KeepaliveEvery > 0 && d > s.KeepaliveEvery {
						d = s.KeepaliveEvery
					}
					select {
					case <-ctx.Done():
						return
					case <-time.After(d):
					}
					if s.KeepaliveEvery > 0 && time.Until(due) > 0 {
						// Still waiting: reassure the client we are alive.
						if !s.heartbeat(w, conn) {
							return
						}
					}
				}
			}
		}
		report := &ais.PositionReport{
			Type: ais.TypePositionA, MMSI: f.MMSI,
			Lon: f.Pos.Lon, Lat: f.Pos.Lat,
			UTCSecond: f.Time.Second(),
		}
		lines, err := encodeSentences(report, "A", i)
		if err != nil {
			s.count(func(st *ServerStats) { st.EncodeErrors++ })
			s.logf("encode: %v", err)
			continue
		}
		for _, line := range lines {
			if _, err := fmt.Fprintf(w, "%d %s\n", f.Time.Unix(), line); err != nil {
				s.count(func(st *ServerStats) { st.WriteErrors++ })
				s.logf("client %s dropped: %v", conn.RemoteAddr(), err)
				return
			}
		}
		// Flush per fix so paced clients see data promptly.
		if err := w.Flush(); err != nil {
			s.count(func(st *ServerStats) { st.WriteErrors++ })
			return
		}
	}
	s.logf("client %s finished (%d fixes)", conn.RemoteAddr(), len(s.Fixes))
}

// heartbeat writes one keepalive comment line, reporting success.
func (s *Server) heartbeat(w *bufio.Writer, conn net.Conn) bool {
	if _, err := fmt.Fprintf(w, "# HB %d\n", time.Now().Unix()); err == nil {
		if err = w.Flush(); err == nil {
			s.count(func(st *ServerStats) { st.Heartbeats++ })
			return true
		}
	}
	s.count(func(st *ServerStats) { st.WriteErrors++ })
	s.logf("client %s dropped on heartbeat", conn.RemoteAddr())
	return false
}

// handshake waits up to HandshakeWait for an optional "RESUME <unix>"
// line and returns the parsed cursor, or nil when the client wants the
// stream from the beginning.
func (s *Server) handshake(conn net.Conn) *int64 {
	if s.HandshakeWait <= 0 {
		return nil
	}
	conn.SetReadDeadline(time.Now().Add(s.HandshakeWait))
	defer conn.SetReadDeadline(time.Time{})
	// The handshake is at most one short line; read byte-wise so no
	// stream data is buffered away from the writer below.
	line := make([]byte, 0, 32)
	buf := make([]byte, 1)
	for len(line) < 64 {
		if _, err := conn.Read(buf); err != nil {
			return nil // silence or a deadline: full replay
		}
		if buf[0] == '\n' {
			break
		}
		line = append(line, buf[0])
	}
	fields := strings.Fields(string(line))
	if len(fields) != 2 || fields[0] != "RESUME" {
		return nil
	}
	cursor, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil
	}
	if cursor < 0 {
		return nil // a fresh session's greeting: full replay
	}
	s.count(func(st *ServerStats) { st.Resumes++ })
	s.logf("client %s resumes after %d", conn.RemoteAddr(), cursor)
	return &cursor
}

// Client consumes a live feed as a FixSource: it dials the feed address
// and scans cleaned fixes off the wire. Close when done.
type Client struct {
	conn    net.Conn
	scanner *ais.Scanner
}

// Dial connects to a feed server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("feed: dial: %w", err)
	}
	return &Client{conn: conn, scanner: ais.NewScanner(conn)}, nil
}

// NewClient wraps an existing connection (e.g. one end of net.Pipe in
// tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, scanner: ais.NewScanner(conn)}
}

// Scan advances to the next fix from the wire.
func (c *Client) Scan() bool { return c.scanner.Scan() }

// Fix returns the current fix.
func (c *Client) Fix() ais.Fix { return c.scanner.Fix() }

// Err returns the first transport or scan error, filtering the EOF of
// a finished feed. A feed that ends mid-line after an otherwise clean
// finish surfaces as io.ErrUnexpectedEOF (possibly wrapped); that is
// still a finished feed, not a transport failure.
func (c *Client) Err() error {
	err := c.scanner.Err()
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return nil
	}
	return err
}

// Stats exposes the underlying scanner's drop counters.
func (c *Client) Stats() ais.ScannerStats { return c.scanner.Stats() }

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// StreamClient is the closable FixSource both feed clients implement.
type StreamClient interface {
	Scan() bool
	Fix() ais.Fix
	Err() error
	Close() error
}

// Relay pumps a client's fixes into a callback until the feed ends or
// ctx is cancelled, a convenience for live pipelines.
func Relay(ctx context.Context, c StreamClient, fn func(ais.Fix)) error {
	done := make(chan struct{})
	var scanErr error
	go func() {
		defer close(done)
		for c.Scan() {
			fn(c.Fix())
		}
		scanErr = c.Err()
	}()
	select {
	case <-ctx.Done():
		c.Close()
		<-done
		return ctx.Err()
	case <-done:
		return scanErr
	}
}
