// Package feed provides the live AIS feed integration the paper plans
// for its deployment (§7: "we soon expect to be given access to live
// AIS feeds from all vessels across the Aegean Sea"): a TCP server that
// replays a positional stream as timestamped NMEA AIVDM lines at a
// configurable time acceleration, and a client that connects to such a
// feed and exposes it as a FixSource for the surveillance pipeline.
package feed

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/ais"
)

// Server replays a fix stream to every connected client, paced by the
// original timestamps divided by Speedup (Speedup 0 or ≥ 1e6 replays
// as fast as the sockets drain).
type Server struct {
	Fixes   []ais.Fix
	Speedup float64
	// Logf receives connection lifecycle messages; nil silences them.
	Logf func(format string, args ...any)

	mu       sync.Mutex
	listener net.Listener
	served   int
}

// Serve listens on addr ("host:port", port 0 picks a free one) and
// streams to each client until ctx is cancelled. It returns the bound
// address on a channel-free API: call Addr after Serve has started, or
// use ListenAndServe for the common case.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil // clean shutdown
			}
			return fmt.Errorf("feed: accept: %w", err)
		}
		s.logf("client %s connected", conn.RemoteAddr())
		go s.stream(ctx, conn)
	}
}

// ListenAndServe binds addr and serves until ctx is cancelled. The
// bound address is reported through addrCh (buffered, length 1) before
// the first Accept.
func (s *Server) ListenAndServe(ctx context.Context, addr string, addrCh chan<- net.Addr) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("feed: listen: %w", err)
	}
	if addrCh != nil {
		addrCh <- ln.Addr()
	}
	return s.Serve(ctx, ln)
}

// ClientsServed returns how many client connections completed.
func (s *Server) ClientsServed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.served
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// stream writes the fix stream to one client.
func (s *Server) stream(ctx context.Context, conn net.Conn) {
	defer conn.Close()
	defer func() {
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
	}()
	w := bufio.NewWriter(conn)
	var streamStart time.Time
	var wallStart time.Time
	for i, f := range s.Fixes {
		if ctx.Err() != nil {
			return
		}
		if s.Speedup > 0 && s.Speedup < 1e6 {
			if i == 0 {
				streamStart = f.Time
				wallStart = time.Now()
			} else {
				due := wallStart.Add(time.Duration(float64(f.Time.Sub(streamStart)) / s.Speedup))
				if d := time.Until(due); d > 0 {
					select {
					case <-ctx.Done():
						return
					case <-time.After(d):
					}
				}
			}
		}
		report := &ais.PositionReport{
			Type: ais.TypePositionA, MMSI: f.MMSI,
			Lon: f.Pos.Lon, Lat: f.Pos.Lat,
			UTCSecond: f.Time.Second(),
		}
		lines, err := ais.EncodeSentences(report, "A", i)
		if err != nil {
			s.logf("encode: %v", err)
			continue
		}
		for _, line := range lines {
			if _, err := fmt.Fprintf(w, "%d %s\n", f.Time.Unix(), line); err != nil {
				s.logf("client %s dropped: %v", conn.RemoteAddr(), err)
				return
			}
		}
		// Flush per fix so paced clients see data promptly.
		if err := w.Flush(); err != nil {
			return
		}
	}
	s.logf("client %s finished (%d fixes)", conn.RemoteAddr(), len(s.Fixes))
}

// Client consumes a live feed as a FixSource: it dials the feed address
// and scans cleaned fixes off the wire. Close when done.
type Client struct {
	conn    net.Conn
	scanner *ais.Scanner
}

// Dial connects to a feed server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("feed: dial: %w", err)
	}
	return &Client{conn: conn, scanner: ais.NewScanner(conn)}, nil
}

// NewClient wraps an existing connection (e.g. one end of net.Pipe in
// tests).
func NewClient(conn net.Conn) *Client {
	return &Client{conn: conn, scanner: ais.NewScanner(conn)}
}

// Scan advances to the next fix from the wire.
func (c *Client) Scan() bool { return c.scanner.Scan() }

// Fix returns the current fix.
func (c *Client) Fix() ais.Fix { return c.scanner.Fix() }

// Err returns the first transport or scan error, filtering the EOF of
// a finished feed.
func (c *Client) Err() error {
	err := c.scanner.Err()
	if err == io.EOF {
		return nil
	}
	return err
}

// Stats exposes the underlying scanner's drop counters.
func (c *Client) Stats() ais.ScannerStats { return c.scanner.Stats() }

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// Relay pumps a client's fixes into a callback until the feed ends or
// ctx is cancelled, a convenience for live pipelines.
func Relay(ctx context.Context, c *Client, fn func(ais.Fix)) error {
	done := make(chan struct{})
	var scanErr error
	go func() {
		defer close(done)
		for c.Scan() {
			fn(c.Fix())
		}
		scanErr = c.Err()
	}()
	select {
	case <-ctx.Done():
		c.Close()
		<-done
		return ctx.Err()
	case <-done:
		return scanErr
	}
}
