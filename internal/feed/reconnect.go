package feed

import (
	"errors"
	"fmt"
	"io"
	"maps"
	"math/rand"
	"net"
	"sync"
	"time"

	"repro/internal/ais"
)

// RetryPolicy governs how a ReconnectingClient re-dials a dropped feed:
// exponential backoff with jitter, a cap, and a bound on consecutive
// failures. The zero value is not useful; start from DefaultRetryPolicy.
type RetryPolicy struct {
	// MaxAttempts is the number of consecutive failed dials tolerated
	// before the client gives up and surfaces the error.
	MaxAttempts int
	// InitialBackoff is the delay before the first retry.
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth.
	MaxBackoff time.Duration
	// Multiplier grows the backoff per consecutive failure (≥ 1).
	Multiplier float64
	// Jitter spreads each delay uniformly in ±Jitter·backoff, so a fleet
	// of clients does not re-dial a recovering server in lockstep.
	Jitter float64
	// ResetOnSuccess restarts the backoff schedule and failure count
	// after any successful connection, so a fresh outage after a healthy
	// period starts again from InitialBackoff.
	ResetOnSuccess bool
	// DialTimeout bounds each individual dial.
	DialTimeout time.Duration
	// Seed makes the jitter deterministic (tests); 0 derives one from
	// the policy itself, which is deterministic too.
	Seed int64
}

// DefaultRetryPolicy returns the policy used by the live drivers:
// 100 ms → 5 s exponential backoff with 20% jitter, up to 10
// consecutive failures, resetting after every successful connection.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		MaxAttempts:    10,
		InitialBackoff: 100 * time.Millisecond,
		MaxBackoff:     5 * time.Second,
		Multiplier:     2,
		Jitter:         0.2,
		ResetOnSuccess: true,
		DialTimeout:    5 * time.Second,
	}
}

// NetStats counts the transport-level life of a reconnecting client.
type NetStats struct {
	DialAttempts  int // dials tried, including the first connect
	DialFailures  int // dials that errored
	Disconnects   int // established connections lost mid-stream
	Reconnects    int // connections re-established after a loss
	Resumes       int // RESUME handshake lines sent
	ResumeSkipped int // duplicate fixes discarded during resume catch-up
	// DeadPeers counts connections abandoned because the peer sent
	// nothing — not even a keepalive heartbeat — for DeadPeerTimeout.
	// It distinguishes a hung peer from an idle stream: a healthy but
	// quiet server keeps the connection alive with "# HB" lines, so a
	// read timeout means the peer is gone, not just silent. Dead-peer
	// drops are also counted in Disconnects.
	DeadPeers int
}

// ReconnectingClient is a FixSource over a live feed that survives
// transport faults: when the connection drops mid-stream it re-dials
// with exponential backoff and jitter, asks the server to resume just
// before the last fix it saw ("RESUME <unix>"), and discards the
// duplicates replayed around the cursor so the pipeline observes each
// fix at most once. It assumes the upstream replays fixes in
// non-decreasing timestamp order (as feed.Server does); a server that
// ignores the handshake only costs replayed traffic, which the client
// skips client-side.
type ReconnectingClient struct {
	policy RetryPolicy
	dial   func() (net.Conn, error)
	// Logf receives lifecycle messages; nil silences them.
	Logf func(format string, args ...any)
	// DeadPeerTimeout, when positive, bounds how long a read may go
	// without any bytes from the peer before the connection is declared
	// dead and re-dialed (counted in NetStats.DeadPeers). Pair it with
	// a server that emits keepalive heartbeats more often than this, so
	// only a truly hung peer trips it. Set before the first Scan.
	DeadPeerTimeout time.Duration

	mu      sync.Mutex // guards conn, closed, net (Close races Scan)
	conn    net.Conn
	closed  bool
	closeCh chan struct{}
	net     NetStats

	scanner *ais.Scanner
	// acc folds the counters of finished connections; live is a
	// snapshot of the active scanner's counters, refreshed after each
	// scan step. Both are guarded by mu so Stats can be sampled from
	// another goroutine (health probes) while Scan blocks on the wire —
	// the scanner itself must never be read concurrently.
	acc  ais.ScannerStats
	live ais.ScannerStats
	fix  ais.Fix
	err  error

	// Resume cursor: the newest fix second seen, how many fixes each
	// vessel contributed at that second, and the dedupe budget armed at
	// the last reconnect.
	curSec    int64
	seenAtSec map[uint32]int
	skipAtSec map[uint32]int
	resuming  bool

	rng        *rand.Rand
	backoff    time.Duration
	consecFail int
}

// DialReconnecting connects to a feed server with the given retry
// policy; the initial connect itself retries per the policy.
func DialReconnecting(addr string, policy RetryPolicy) (*ReconnectingClient, error) {
	c := NewReconnecting(func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, policy.DialTimeout)
	}, policy)
	if !c.connect(false) {
		return nil, fmt.Errorf("feed: dial %s: %w", addr, c.err)
	}
	return c, nil
}

// NewReconnecting builds a client over an arbitrary dial function
// (tests inject listeners or pipes); the first connection is made
// lazily on the first Scan.
func NewReconnecting(dial func() (net.Conn, error), policy RetryPolicy) *ReconnectingClient {
	if policy.Multiplier < 1 {
		policy.Multiplier = 1
	}
	if policy.MaxAttempts <= 0 {
		policy.MaxAttempts = 1
	}
	seed := policy.Seed
	if seed == 0 {
		seed = 1
	}
	return &ReconnectingClient{
		policy:    policy,
		dial:      dial,
		closeCh:   make(chan struct{}),
		seenAtSec: make(map[uint32]int),
		rng:       rand.New(rand.NewSource(seed)),
		backoff:   policy.InitialBackoff,
	}
}

// Scan advances to the next fix, transparently re-dialing and resuming
// across connection losses. It returns false when the feed finishes
// cleanly, the client is closed, or the retry policy is exhausted (see
// Err to distinguish).
func (c *ReconnectingClient) Scan() bool {
	for {
		if c.isClosed() {
			return false
		}
		if c.scanner == nil && !c.connect(false) {
			return false
		}
		if c.scanner.Scan() {
			f := c.scanner.Fix()
			c.mu.Lock()
			c.live = c.scanner.Stats()
			c.mu.Unlock()
			if c.resumeSkip(f) {
				c.count(func(n *NetStats) { n.ResumeSkipped++ })
				continue
			}
			c.noteSeen(f)
			c.fix = f
			return true
		}
		err := c.scanner.Err()
		c.mu.Lock()
		c.acc = c.acc.Add(c.scanner.Stats())
		c.live = ais.ScannerStats{}
		c.mu.Unlock()
		c.scanner = nil
		c.dropConn()
		if err == nil || errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return false // the feed finished cleanly
		}
		if c.isClosed() {
			return false
		}
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			// No bytes — not even a heartbeat — within DeadPeerTimeout:
			// the peer is hung, not idle.
			c.count(func(n *NetStats) { n.DeadPeers++ })
			c.logf("peer silent past %s: declared dead", c.DeadPeerTimeout)
		}
		c.count(func(n *NetStats) { n.Disconnects++ })
		c.logf("connection lost after %s: %v", time.Unix(c.curSec, 0).UTC().Format(time.RFC3339), err)
		if !c.connect(true) {
			if c.err == nil {
				c.err = err
			}
			return false
		}
	}
}

// connect dials until it succeeds or the policy is exhausted, then arms
// the resume machinery. reconnected marks re-dials after a loss (the
// first connect is not a reconnect).
func (c *ReconnectingClient) connect(reconnected bool) bool {
	for {
		if c.isClosed() {
			return false
		}
		c.count(func(n *NetStats) { n.DialAttempts++ })
		conn, err := c.dial()
		if err == nil {
			c.mu.Lock()
			if c.closed {
				c.mu.Unlock()
				conn.Close()
				return false
			}
			c.conn = conn
			c.mu.Unlock()
			if c.policy.ResetOnSuccess {
				c.backoff = c.policy.InitialBackoff
				c.consecFail = 0
			}
			var rd io.Reader = conn
			if c.DeadPeerTimeout > 0 {
				rd = &timeoutReader{conn: conn, timeout: c.DeadPeerTimeout}
			}
			c.scanner = ais.NewScanner(rd)
			if reconnected {
				c.count(func(n *NetStats) { n.Reconnects++ })
			}
			// Always greet the server so a handshake-enabled server does
			// not burn its HandshakeWait. On a fresh session the cursor is
			// -1 ("everything"); on resume it is curSec-1, asking for
			// replay strictly after it so same-second siblings of the last
			// fix (possibly cut off mid-line) are resent — the per-vessel
			// counts discard the ones already seen.
			cursor := int64(-1)
			if c.curSec > 0 {
				cursor = c.curSec - 1
			}
			fmt.Fprintf(conn, "RESUME %d\n", cursor)
			if c.curSec > 0 {
				c.count(func(n *NetStats) { n.Resumes++ })
				c.skipAtSec = maps.Clone(c.seenAtSec)
				c.resuming = true
				c.logf("reconnected, resuming after %d", cursor)
			}
			return true
		}
		c.count(func(n *NetStats) { n.DialFailures++ })
		c.consecFail++
		if c.consecFail >= c.policy.MaxAttempts {
			c.err = err
			return false
		}
		if !c.sleep(c.jittered(c.backoff)) {
			return false
		}
		c.backoff = time.Duration(float64(c.backoff) * c.policy.Multiplier)
		if c.policy.MaxBackoff > 0 && c.backoff > c.policy.MaxBackoff {
			c.backoff = c.policy.MaxBackoff
		}
	}
}

// timeoutReader arms a read deadline before every Read, so a peer that
// stops sending (data or heartbeats) surfaces as a timeout error
// instead of blocking the scanner forever.
type timeoutReader struct {
	conn    net.Conn
	timeout time.Duration
}

func (r *timeoutReader) Read(p []byte) (int, error) {
	if err := r.conn.SetReadDeadline(time.Now().Add(r.timeout)); err != nil {
		return 0, err
	}
	return r.conn.Read(p)
}

// jittered spreads d by ±Jitter·d.
func (c *ReconnectingClient) jittered(d time.Duration) time.Duration {
	if c.policy.Jitter <= 0 || d <= 0 {
		return d
	}
	spread := 1 + c.policy.Jitter*(2*c.rng.Float64()-1)
	return time.Duration(float64(d) * spread)
}

// sleep waits d, interruptible by Close.
func (c *ReconnectingClient) sleep(d time.Duration) bool {
	if d <= 0 {
		return !c.isClosed()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closeCh:
		return false
	}
}

// resumeSkip reports whether f is a duplicate replayed around the
// resume cursor and must be discarded.
func (c *ReconnectingClient) resumeSkip(f ais.Fix) bool {
	if !c.resuming {
		return false
	}
	u := f.Time.Unix()
	switch {
	case u < c.curSec:
		return true // replayed history (server ignored the handshake)
	case u == c.curSec:
		if c.skipAtSec[f.MMSI] > 0 {
			c.skipAtSec[f.MMSI]--
			return true
		}
		return false // a same-second sibling we had not seen yet
	default:
		c.resuming = false // past the cursor: caught up
		return false
	}
}

// noteSeen advances the resume cursor past f.
func (c *ReconnectingClient) noteSeen(f ais.Fix) {
	u := f.Time.Unix()
	if u > c.curSec {
		c.curSec = u
		clear(c.seenAtSec)
	}
	if u == c.curSec {
		c.seenAtSec[f.MMSI]++
	}
}

// Fix returns the current fix.
func (c *ReconnectingClient) Fix() ais.Fix { return c.fix }

// Err returns the terminal error: nil after a clean finish or Close,
// the last dial error when the retry policy was exhausted.
func (c *ReconnectingClient) Err() error {
	if c.isClosed() {
		return nil
	}
	return c.err
}

// Stats returns the scanner counters accumulated across every
// connection of the session.
func (c *ReconnectingClient) Stats() ais.ScannerStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.acc.Add(c.live)
}

// NetStats returns the reconnect/resume counters.
func (c *ReconnectingClient) NetStats() NetStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.net
}

func (c *ReconnectingClient) count(fn func(*NetStats)) {
	c.mu.Lock()
	fn(&c.net)
	c.mu.Unlock()
}

// Close terminates the client; a Scan blocked in a read or a backoff
// sleep returns false promptly.
func (c *ReconnectingClient) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closeCh)
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

func (c *ReconnectingClient) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// dropConn closes and forgets the current connection without marking
// the client closed.
func (c *ReconnectingClient) dropConn() {
	c.mu.Lock()
	conn := c.conn
	c.conn = nil
	c.mu.Unlock()
	if conn != nil {
		conn.Close()
	}
}

func (c *ReconnectingClient) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}
