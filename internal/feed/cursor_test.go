package feed

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/stream"
)

func fixAt(m uint32, at time.Time) ais.Fix {
	return ais.Fix{MMSI: m, Time: at}
}

func TestCursorNote(t *testing.T) {
	var c Cursor
	c.Note(fixAt(1, t0))
	c.Note(fixAt(2, t0))
	c.Note(fixAt(1, t0))
	if c.Sec != t0.Unix() || c.SeenAtSec[1] != 2 || c.SeenAtSec[2] != 1 {
		t.Fatalf("cursor after same-second fixes = %+v", c)
	}
	// Advancing a second clears the per-vessel counts.
	c.Note(fixAt(3, t0.Add(time.Second)))
	if c.Sec != t0.Unix()+1 || len(c.SeenAtSec) != 1 || c.SeenAtSec[3] != 1 {
		t.Fatalf("cursor after advancing = %+v", c)
	}
}

func TestCursorCloneIsIndependent(t *testing.T) {
	var c Cursor
	c.Note(fixAt(1, t0))
	snap := c.Clone()
	c.Note(fixAt(1, t0))
	c.Note(fixAt(9, t0))
	if snap.SeenAtSec[1] != 1 || snap.SeenAtSec[9] != 0 {
		t.Fatalf("clone mutated by later notes: %+v", snap)
	}
}

func TestResumeFilterSkipsCoveredPrefix(t *testing.T) {
	fixes := []ais.Fix{
		fixAt(1, t0),                    // before cursor second: skipped
		fixAt(1, t0.Add(time.Second)),   // at cursor second, 1st of 2 covered
		fixAt(2, t0.Add(time.Second)),   // at cursor second, uncovered vessel
		fixAt(1, t0.Add(time.Second)),   // at cursor second, 2nd of 2 covered
		fixAt(1, t0.Add(2*time.Second)), // past the cursor
		fixAt(1, t0),                    // late fix after catch-up: delivered
	}
	cur := Cursor{Sec: t0.Unix() + 1, SeenAtSec: map[uint32]int{1: 2}}
	rf := NewResumeFilter(stream.NewSliceSource(fixes), cur)
	var got []ais.Fix
	for rf.Scan() {
		got = append(got, rf.Fix())
	}
	want := []ais.Fix{fixes[2], fixes[4], fixes[5]}
	if len(got) != len(want) {
		t.Fatalf("delivered %d fixes %v, want %d", len(got), got, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("fix %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if rf.Skipped() != 3 {
		t.Errorf("Skipped() = %d, want 3", rf.Skipped())
	}
	if rf.Err() != nil {
		t.Errorf("Err() = %v", rf.Err())
	}
}

func TestResumeFilterZeroCursorPassesThrough(t *testing.T) {
	fixes := testFixes(5)
	rf := NewResumeFilter(stream.NewSliceSource(fixes), Cursor{})
	n := 0
	for rf.Scan() {
		n++
	}
	if n != len(fixes) || rf.Skipped() != 0 {
		t.Fatalf("zero cursor delivered %d (skipped %d), want all %d", n, rf.Skipped(), len(fixes))
	}
}

type errSource struct{ stream.FixSource }

func (errSource) Err() error { return errors.New("wire broke") }

func TestResumeFilterSurfacesSourceError(t *testing.T) {
	rf := NewResumeFilter(errSource{stream.NewSliceSource(nil)}, Cursor{})
	for rf.Scan() {
	}
	if rf.Err() == nil {
		t.Fatal("Err() lost the wrapped source's error")
	}
}

func TestSeedCursorResumesFirstConnection(t *testing.T) {
	fixes := testFixes(30)
	_, addr, shutdown := startServer(t, fixes, 0)
	defer shutdown()

	// A cursor that has processed the first 10 fixes.
	var cur Cursor
	for _, f := range fixes[:10] {
		cur.Note(f)
	}
	c, err := DialReconnectingFrom(addr, DefaultRetryPolicy(), cur)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var got []ais.Fix
	for c.Scan() {
		got = append(got, c.Fix())
	}
	if len(got) != 20 {
		t.Fatalf("resumed connection delivered %d fixes, want the 20 after the cursor", len(got))
	}
	if !got[0].Time.Equal(fixes[10].Time) || got[0].MMSI != fixes[10].MMSI {
		t.Errorf("first resumed fix = %+v, want %+v", got[0], fixes[10])
	}
	if ns := c.NetStats(); ns.ResumeSkipped == 0 {
		t.Error("RESUME replay around the cursor skipped nothing")
	}
}
