package feed

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/ais"
)

// testPolicy retries fast so failure paths do not slow the suite.
func testPolicy() RetryPolicy {
	p := DefaultRetryPolicy()
	p.InitialBackoff = time.Millisecond
	p.MaxBackoff = 5 * time.Millisecond
	p.Seed = 7
	return p
}

// limitConn injects a transport fault: after budget bytes have been
// read, every Read fails with errInjectedReset.
type limitConn struct {
	net.Conn
	budget int
}

var errInjectedReset = errors.New("injected connection reset")

func (c *limitConn) Read(p []byte) (int, error) {
	if c.budget <= 0 {
		return 0, errInjectedReset
	}
	if len(p) > c.budget {
		p = p[:c.budget]
	}
	n, err := c.Conn.Read(p)
	c.budget -= n
	return n, err
}

// TestReconnectingClientResumes drops the transport twice mid-stream
// and checks the client reconnects, resumes via the handshake, and
// delivers every fix exactly once in order.
func TestReconnectingClientResumes(t *testing.T) {
	fixes := testFixes(200)
	srv := &Server{Fixes: fixes, Logf: t.Logf, HandshakeWait: 2 * time.Second}
	_, addr, shutdown := startServerWith(t, srv)
	defer shutdown()

	dials := 0
	c := NewReconnecting(func() (net.Conn, error) {
		dials++
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return nil, err
		}
		switch dials {
		case 1:
			return &limitConn{Conn: conn, budget: 900}, nil // dies mid-line
		case 2:
			return &limitConn{Conn: conn, budget: 2500}, nil
		default:
			return conn, nil
		}
	}, testPolicy())
	c.Logf = t.Logf
	defer c.Close()

	var got []ais.Fix
	for c.Scan() {
		got = append(got, c.Fix())
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err() = %v", err)
	}
	if len(got) != len(fixes) {
		t.Fatalf("received %d fixes, want %d (no loss, no duplicates)", len(got), len(fixes))
	}
	for i := range got {
		if got[i].MMSI != fixes[i].MMSI || !got[i].Time.Equal(fixes[i].Time) {
			t.Fatalf("fix %d = %v, want %v", i, got[i], fixes[i])
		}
	}
	ns := c.NetStats()
	if ns.Reconnects != 2 || ns.Disconnects != 2 {
		t.Errorf("NetStats = %+v, want 2 reconnects / 2 disconnects", ns)
	}
	if ns.Resumes != 2 {
		t.Errorf("Resumes = %d, want 2", ns.Resumes)
	}
	st := srv.Stats()
	if st.Resumes != 2 {
		t.Errorf("server Resumes = %d, want 2", st.Resumes)
	}
	if st.ResumeSkipped == 0 {
		t.Errorf("server skipped no fixes on resume: %+v", st)
	}
	// The cumulative scanner stats must account for every line every
	// connection saw, including partial lines cut by the fault.
	if s := c.Stats(); !s.Reconciles() {
		t.Errorf("cumulative scanner stats do not reconcile: %+v", s)
	}
}

// TestReconnectingClientExhaustsRetries pins the give-up path.
func TestReconnectingClientExhaustsRetries(t *testing.T) {
	p := testPolicy()
	p.MaxAttempts = 3
	dialErr := errors.New("refused")
	c := NewReconnecting(func() (net.Conn, error) { return nil, dialErr }, p)
	defer c.Close()
	if c.Scan() {
		t.Fatal("Scan succeeded with a dead dialer")
	}
	if !errors.Is(c.Err(), dialErr) {
		t.Errorf("Err() = %v, want %v", c.Err(), dialErr)
	}
	ns := c.NetStats()
	if ns.DialAttempts != 3 || ns.DialFailures != 3 {
		t.Errorf("NetStats = %+v, want 3 attempts / 3 failures", ns)
	}
}

// TestReconnectingClientCloseDuringBackoff checks Close interrupts the
// backoff sleep promptly.
func TestReconnectingClientCloseDuringBackoff(t *testing.T) {
	p := testPolicy()
	p.InitialBackoff = time.Hour
	p.MaxAttempts = 10
	c := NewReconnecting(func() (net.Conn, error) { return nil, errors.New("down") }, p)
	done := make(chan bool, 1)
	go func() { done <- c.Scan() }()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Scan returned true after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Scan did not return after Close during backoff")
	}
	if err := c.Err(); err != nil {
		t.Errorf("Err() after Close = %v, want nil", err)
	}
}

// startServerWith is startServer for a caller-built Server.
func startServerWith(t *testing.T, srv *Server) (*Server, string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	addrCh := make(chan net.Addr, 1)
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe(ctx, "127.0.0.1:0", addrCh) }()
	select {
	case addr := <-addrCh:
		return srv, addr.String(), func() {
			cancel()
			if err := <-errCh; err != nil {
				t.Errorf("server: %v", err)
			}
		}
	case err := <-errCh:
		t.Fatalf("server failed to start: %v", err)
		return nil, "", nil
	}
}

// TestServerCountsEncodeAndWriteErrors covers the structured drop
// counters that used to be log lines only.
func TestServerCountsEncodeAndWriteErrors(t *testing.T) {
	old := encodeSentences
	encodeSentences = func(r *ais.PositionReport, channel string, id int) ([]string, error) {
		if id == 3 { // fail exactly one fix
			return nil, errors.New("injected encode failure")
		}
		return old(r, channel, id)
	}
	defer func() { encodeSentences = old }()

	// The stream must not fit in the socket buffers, or the server can
	// finish writing before the slammed door is observable.
	fixes := testFixes(200000)
	srv := &Server{Fixes: fixes, Logf: t.Logf}
	_, addr, shutdown := startServerWith(t, srv)
	defer shutdown()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	conn.(*net.TCPConn).SetReadBuffer(4096)
	// Read a little, then slam the connection shut so a later write or
	// flush fails server-side.
	io.ReadFull(conn, make([]byte, 256))
	conn.(*net.TCPConn).SetLinger(0)
	conn.Close()

	deadline := time.Now().Add(5 * time.Second)
	for srv.ClientsServed() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := srv.Stats()
	if st.EncodeErrors != 1 {
		t.Errorf("EncodeErrors = %d, want 1", st.EncodeErrors)
	}
	if st.WriteErrors == 0 {
		t.Errorf("WriteErrors = %d, want ≥ 1 after the client slammed the door", st.WriteErrors)
	}
	if st.ClientsServed != 1 {
		t.Errorf("ClientsServed = %d, want 1", st.ClientsServed)
	}
}

// errConn is a net.Conn stub whose reads drain a string and then fail
// with a wrapped io.ErrUnexpectedEOF, the shape a feed that dies
// mid-line produces.
type errConn struct {
	net.Conn // nil; only Read/Close are used
	r        io.Reader
	err      error
}

func (c *errConn) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if err == io.EOF {
		return n, c.err
	}
	return n, err
}
func (c *errConn) Close() error { return nil }

// TestClientErrFiltersWrappedEOFs pins the errors.Is-based filtering:
// an unexpected EOF after the feed delivered its data is a finished
// feed, not a transport error.
func TestClientErrFiltersWrappedEOFs(t *testing.T) {
	report := &ais.PositionReport{Type: 1, MMSI: 237000009, Lon: 24.5, Lat: 37.5}
	lines, _ := ais.EncodeSentences(report, "A", 0)
	data := "1243814400 " + lines[0] + "\n1243814401 !AIVDM,1,1"

	for _, wrapped := range []error{
		io.ErrUnexpectedEOF,
		fmt.Errorf("read tcp: %w", io.ErrUnexpectedEOF),
		fmt.Errorf("feed: %w", io.EOF),
	} {
		c := NewClient(&errConn{r: strings.NewReader(data), err: wrapped})
		n := 0
		for c.Scan() {
			n++
		}
		if err := c.Err(); err != nil {
			t.Errorf("Err() with %v = %v, want nil", wrapped, err)
		}
		if n != 1 {
			t.Errorf("scanned %d fixes, want 1", n)
		}
	}
}
