package expbench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/stream"
	"repro/internal/tracker"
)

// Fig6Row is one point of the paper's Figure 6: the mean online
// tracking cost per window slide for a (ω, β) pair — updating the
// window with fresh locations, evicting expired ones, detecting
// trajectory events, and reporting critical points, averaged over all
// window instantiations.
type Fig6Row struct {
	Window time.Duration // ω
	Slide  time.Duration // β
	Slides int           // window instantiations measured
	Mean   time.Duration // mean tracking cost per slide
	Fixes  int           // fixes processed
	Crit   int           // critical points reported
}

// trackingCostPerSlide replays the workload through a fresh tracker and
// measures pure tracking time per slide.
func trackingCostPerSlide(wl *Workload, window stream.WindowSpec) Fig6Row {
	tr := tracker.New(tracker.DefaultParams(), window)
	batcher := stream.NewBatcher(stream.NewSliceSource(wl.Fixes), window.Slide)
	row := Fig6Row{Window: window.Range, Slide: window.Slide}
	var total time.Duration
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		t0 := time.Now()
		tr.Slide(b)
		total += time.Since(t0)
		row.Slides++
	}
	if row.Slides > 0 {
		row.Mean = total / time.Duration(row.Slides)
	}
	st := tr.Stats()
	row.Fixes = st.FixesIn
	row.Crit = st.Critical
	return row
}

// Fig6a reproduces Figure 6(a): small window ranges ω ∈ {1 h, 2 h}
// with slides β ∈ {5, 10, 15, 20, 30} min. The paper's shape: cost
// grows roughly linearly with β (more fresh positions per slide) and
// stays far below the slide period.
func Fig6a(wl *Workload) []Fig6Row {
	var rows []Fig6Row
	for _, omega := range []time.Duration{time.Hour, 2 * time.Hour} {
		for _, beta := range []time.Duration{5, 10, 15, 20, 30} {
			rows = append(rows, trackingCostPerSlide(wl, stream.WindowSpec{
				Range: omega, Slide: beta * time.Minute,
			}))
		}
	}
	return rows
}

// Fig6b reproduces Figure 6(b): large ranges ω ∈ {6 h, 24 h} with
// slides β ∈ {0.5, 1, 1.5, 2, 4} h. Same linear-in-β shape at a larger
// absolute level.
func Fig6b(wl *Workload) []Fig6Row {
	var rows []Fig6Row
	for _, omega := range []time.Duration{6 * time.Hour, 24 * time.Hour} {
		for _, beta := range []time.Duration{30, 60, 90, 120, 240} {
			rows = append(rows, trackingCostPerSlide(wl, stream.WindowSpec{
				Range: omega, Slide: beta * time.Minute,
			}))
		}
	}
	return rows
}

// WriteFig6 renders the rows in the layout of the paper's figure.
func WriteFig6(w io.Writer, title string, rows []Fig6Row) {
	fmt.Fprintf(w, "%s — online mobility tracking cost per window slide\n", title)
	fmt.Fprintf(w, "%-8s %-10s %8s %14s %10s %10s\n",
		"ω", "β", "slides", "mean/slide", "fixes", "critical")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10s %8d %14s %10d %10d\n",
			r.Window, r.Slide, r.Slides, r.Mean.Round(time.Microsecond), r.Fixes, r.Crit)
	}
}
