package expbench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// ProbRow is one point of the probabilistic-recognition sweep: how the
// belief threshold θ trades alert volume against recall of the planted
// violations, the noise-robustness question behind the paper's §7 plan
// to port RTEC to probabilistic frameworks. θ = 0 is crisp
// recognition.
type ProbRow struct {
	Theta  float64
	Alerts int // distinct CE alerts raised
	// Recall fractions against the scripted ground truth that completed
	// inside the run.
	FishingRecall float64
	FishingTruths int
}

// ProbSweep runs the full pipeline over a noisy workload at each belief
// threshold and scores illegalFishing recall against the simulator's
// scripted forbidden-ground trawls. Expected shape: raising θ sheds
// alerts monotonically; moderate thresholds keep recall, extreme ones
// sacrifice it.
func ProbSweep(sized *Workload, thetas []float64) []ProbRow {
	if len(thetas) == 0 {
		thetas = []float64{0, 0.5, 0.7, 0.9}
	}
	dur := sized.End.Sub(sized.Start)
	if dur > 6*time.Hour {
		dur = 6 * time.Hour
	}
	wl := BuildNoisyWorkload(len(sized.Vessels), dur, 3)

	// Ground truth: scripted forbidden-ground trawls overlapping the run.
	type truth struct {
		area       string
		start, end time.Time
	}
	var truths []truth
	for _, ev := range wl.Sim.Truth() {
		if ev.Kind != fleetsim.TruthFishingInForbidden {
			continue
		}
		if ev.Start.After(wl.End.Add(-30 * time.Minute)) {
			continue // barely started before the stream ends
		}
		truths = append(truths, truth{area: ev.AreaID, start: ev.Start, end: ev.End})
	}

	spec := stream.WindowSpec{Range: 2 * time.Hour, Slide: 30 * time.Minute}
	var rows []ProbRow
	for _, theta := range thetas {
		sys := core.NewSystem(core.Config{
			Window:  spec,
			Tracker: tracker.DefaultParams(),
			Recognition: maritime.Config{
				Window: spec.Range, ProbThreshold: theta,
			},
			DisableArchival: true,
		}, wl.Vessels, wl.Areas, wl.Ports)
		var alerts []maritime.Alert
		batcher := stream.NewBatcher(stream.NewSliceSource(wl.Fixes), spec.Slide)
		for {
			b, ok := batcher.Next()
			if !ok {
				break
			}
			alerts = append(alerts, sys.ProcessBatch(b).Alerts...)
		}

		row := ProbRow{Theta: theta, Alerts: len(alerts), FishingTruths: len(truths)}
		hit := 0
		for _, tr := range truths {
			for _, a := range alerts {
				if a.CE != maritime.CEIllegalFishing || a.AreaID != tr.area {
					continue
				}
				if a.Time.After(tr.start.Add(-30*time.Minute)) && a.Time.Before(tr.end.Add(30*time.Minute)) {
					hit++
					break
				}
			}
		}
		if len(truths) > 0 {
			row.FishingRecall = float64(hit) / float64(len(truths))
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteProb renders the rows.
func WriteProb(w io.Writer, rows []ProbRow) {
	fmt.Fprintln(w, "Probabilistic recognition sweep — belief threshold θ vs alerts and recall")
	fmt.Fprintf(w, "%-8s %10s %18s\n", "θ", "alerts", "fishing recall")
	for _, r := range rows {
		label := fmt.Sprintf("%.2f", r.Theta)
		if r.Theta == 0 {
			label = "crisp"
		}
		fmt.Fprintf(w, "%-8s %10d %15.0f%% (%d truths)\n",
			label, r.Alerts, r.FishingRecall*100, r.FishingTruths)
	}
}
