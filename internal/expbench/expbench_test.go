package expbench

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// Shared CI-scale workloads: building them once keeps the suite fast.
var (
	onceShort sync.Once
	onceLong  sync.Once
	wlShort   *Workload
	wlLong    *Workload
)

func shortWL(t *testing.T) *Workload {
	t.Helper()
	onceShort.Do(func() { wlShort = ScaleCI.shortWorkload() })
	return wlShort
}

func longWL(t *testing.T) *Workload {
	t.Helper()
	if testing.Short() {
		t.Skip("long workload skipped in -short mode")
	}
	onceLong.Do(func() { wlLong = ScaleCI.longWorkload() })
	return wlLong
}

func TestWorkloadConstruction(t *testing.T) {
	wl := shortWL(t)
	if len(wl.Fixes) == 0 {
		t.Fatal("empty workload")
	}
	if len(wl.Vessels) != ScaleCI.Vessels {
		t.Errorf("vessels = %d, want %d", len(wl.Vessels), ScaleCI.Vessels)
	}
	if len(wl.Areas) < 35 {
		t.Errorf("areas = %d, want >= 35 (incl. watch areas)", len(wl.Areas))
	}
	if len(wl.Ports) == 0 {
		t.Error("no ports")
	}
}

func TestReplicate(t *testing.T) {
	wl := shortWL(t)
	base := wl.Fixes[:100]
	out := Replicate(base, 3)
	if len(out) != 300 {
		t.Fatalf("len = %d, want 300", len(out))
	}
	// Timestamps preserved and MMSIs shifted per replica.
	seen := map[uint32]bool{}
	for _, f := range out[:3] {
		seen[f.MMSI] = true
		if !f.Time.Equal(base[0].Time) {
			t.Error("replica timestamp changed")
		}
	}
	if len(seen) != 3 {
		t.Errorf("first three replicas share MMSIs: %v", seen)
	}
	if got := Replicate(base, 1); len(got) != len(base) {
		t.Error("k=1 must be identity")
	}
}

func TestFig6aShape(t *testing.T) {
	rows := Fig6a(shortWL(t))
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(rows))
	}
	// Cost grows with β for fixed ω=1h: compare the extremes.
	if rows[4].Mean < rows[0].Mean {
		t.Errorf("tracking cost did not grow with β: β=5m %v vs β=30m %v",
			rows[0].Mean, rows[4].Mean)
	}
	for _, r := range rows {
		if r.Slides == 0 {
			t.Errorf("no slides for ω=%v β=%v", r.Window, r.Slide)
		}
		// Real-time requirement: far below the slide period.
		if r.Mean > r.Slide/2 {
			t.Errorf("tracking cost %v not far below slide %v", r.Mean, r.Slide)
		}
	}
}

func TestFig6bShape(t *testing.T) {
	rows := Fig6b(longWL(t))
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	// ω=24h series must process the whole stream.
	for _, r := range rows {
		if r.Fixes == 0 {
			t.Errorf("no fixes for ω=%v β=%v", r.Window, r.Slide)
		}
	}
	// Cost grows with β for ω=24h: compare β=30m to β=4h.
	if rows[9].Mean < rows[5].Mean {
		t.Errorf("large-window cost did not grow with β: %v vs %v",
			rows[5].Mean, rows[9].Mean)
	}
}

func TestFig7Shape(t *testing.T) {
	rows := Fig7(shortWL(t), []int{500, 1000, 2000}, 8, 3)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Slides == 0 {
			t.Fatalf("rate %d produced no full chunks", r.Rate)
		}
		// Timeliness: the tracker must respond well before the next
		// 1-minute slide.
		if r.Mean > 30*time.Second {
			t.Errorf("rate %d: mean %v exceeds half the slide period", r.Rate, r.Mean)
		}
	}
	// Latency grows with the arrival rate.
	if rows[2].Mean < rows[0].Mean {
		t.Errorf("latency did not grow with ρ: %v (ρ=500) vs %v (ρ=2000)",
			rows[0].Mean, rows[2].Mean)
	}
}

func TestFig89Shape(t *testing.T) {
	rows := Fig89(shortWL(t))
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i, r := range rows {
		if r.Compression < 0.80 || r.Compression >= 1 {
			t.Errorf("Δθ=%v: compression %.3f outside the paper's band", r.TurnDeg, r.Compression)
		}
		if r.AvgRMSE > r.MaxRMSE {
			t.Errorf("avg RMSE above max")
		}
		if i > 0 && r.Critical > rows[i-1].Critical {
			t.Errorf("critical points increased with a looser Δθ: %d → %d",
				rows[i-1].Critical, r.Critical)
		}
	}
	// Error grows as the threshold loosens (paper Figure 8).
	if rows[3].AvgRMSE < rows[0].AvgRMSE {
		t.Errorf("avg RMSE did not grow with Δθ: %f vs %f", rows[0].AvgRMSE, rows[3].AvgRMSE)
	}
}

func TestFig10Shape(t *testing.T) {
	rows := Fig10(longWL(t))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// The paper's headline: online tracking dominates maintenance.
		if r.Tracking < r.Staging || r.Tracking < r.Reconstruction || r.Tracking < r.Loading {
			t.Errorf("ω=%v: tracking %v does not dominate (stage %v, recon %v, load %v)",
				r.Window, r.Tracking, r.Staging, r.Reconstruction, r.Loading)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	t4 := Table4(longWL(t))
	if t4.Trips == 0 {
		t.Fatal("no trips reconstructed")
	}
	if t4.PointsInTrajectories == 0 || t4.PointsInStaging == 0 {
		t.Errorf("point split degenerate: %+v", t4)
	}
	if t4.AvgTravelTime <= 0 || t4.AvgDistanceMeters <= 0 {
		t.Errorf("degenerate averages: %+v", t4)
	}
	var sb strings.Builder
	WriteTable4(&sb, t4)
	if !strings.Contains(sb.String(), "trips") {
		t.Error("WriteTable4 output empty")
	}
}

func TestFig11aShape(t *testing.T) {
	rows := Fig11a(shortWL(t))
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Working memory grows with ω (1-processor series, indexes 0..3).
	if rows[3].MeanMEs <= rows[0].MeanMEs {
		t.Errorf("MEs/window did not grow with ω: %d vs %d", rows[0].MeanMEs, rows[3].MeanMEs)
	}
	// CE count grows with ω, as in the paper (0.2K at 1h → 2K at 9h).
	if rows[3].MeanCEs < rows[0].MeanCEs {
		t.Errorf("CEs did not grow with ω: %d vs %d", rows[0].MeanCEs, rows[3].MeanCEs)
	}
	for _, r := range rows {
		if r.Steps == 0 {
			t.Fatalf("ω=%v procs=%d measured no steps", r.Window, r.Procs)
		}
	}
}

func TestFig11TwoProcessorsNotSlower(t *testing.T) {
	wl := shortWL(t)
	slides, queries := meSlides(wl)
	one := runFig11(wl, fig11Config{window: 6 * time.Hour, procs: 1}, slides, queries)
	two := runFig11(wl, fig11Config{window: 6 * time.Hour, procs: 2}, slides, queries)
	// Timing noise at CI scale: allow slack, but parallel recognition
	// must not be systematically slower than sequential.
	if two.MeanStep > one.MeanStep*3/2 {
		t.Errorf("2 processors (%v) much slower than 1 (%v)", two.MeanStep, one.MeanStep)
	}
}

func TestFig11bFactsPresent(t *testing.T) {
	rows := Fig11b(shortWL(t))
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Mode != 1 {
			t.Fatalf("row not in SF mode: %+v", r)
		}
		if r.MeanFacts == 0 {
			t.Errorf("ω=%v procs=%d: no spatial facts generated", r.Window, r.Procs)
		}
	}
}

func TestAblationOutlierDegradesWithoutFilter(t *testing.T) {
	a := RunAblationOutlier(shortWL(t))
	if a.WithoutFilter.TruthAvgRMSE <= a.WithFilter.TruthAvgRMSE {
		t.Errorf("disabling the outlier filter did not degrade truth RMSE: %.1f vs %.1f",
			a.WithoutFilter.TruthAvgRMSE, a.WithFilter.TruthAvgRMSE)
	}
	if a.WithoutFilter.Critical <= a.WithFilter.Critical {
		t.Errorf("disabling the filter did not inflate the synopsis: %d vs %d",
			a.WithoutFilter.Critical, a.WithFilter.Critical)
	}
}

func TestAblationWindowGrowsUnbounded(t *testing.T) {
	a := RunAblationWindow(shortWL(t))
	if a.Unbounded.MeanMEs <= a.Windowed.MeanMEs {
		t.Errorf("unbounded memory (%d MEs) not larger than windowed (%d)",
			a.Unbounded.MeanMEs, a.Windowed.MeanMEs)
	}
}

func TestWritersProduceOutput(t *testing.T) {
	wl := shortWL(t)
	rows6 := Fig6a(wl)
	rows89 := Fig89(wl)
	rows7 := Fig7(wl, []int{500}, 4, 2)
	rows11 := Fig11a(wl)

	checks := []struct {
		name  string
		write func(sb *strings.Builder)
		want  string
	}{
		{"fig6", func(sb *strings.Builder) { WriteFig6(sb, "Figure 6(a)", rows6) }, "Figure 6(a)"},
		{"fig7", func(sb *strings.Builder) { WriteFig7(sb, rows7) }, "Figure 7"},
		{"fig8", func(sb *strings.Builder) { WriteFig8(sb, rows89) }, "Figure 8"},
		{"fig9", func(sb *strings.Builder) { WriteFig9(sb, rows89) }, "Figure 9"},
		{"fig11", func(sb *strings.Builder) { WriteFig11(sb, "Figure 11(a)", rows11) }, "Figure 11(a)"},
	}
	for _, c := range checks {
		var sb strings.Builder
		c.write(&sb)
		if !strings.Contains(sb.String(), c.want) {
			t.Errorf("%s writer output missing %q", c.name, c.want)
		}
		if strings.Count(sb.String(), "\n") < 3 {
			t.Errorf("%s writer produced too few lines", c.name)
		}
	}
}

func TestDelayExperimentShape(t *testing.T) {
	rows := DelayExperiment(shortWL(t), 90*time.Minute, 0.25)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The paper's trade-off: a longer window loses fewer delayed events.
	if rows[0].LossPct <= rows[3].LossPct {
		t.Errorf("loss did not shrink with ω: %.1f%% (1h) vs %.1f%% (9h)",
			rows[0].LossPct, rows[3].LossPct)
	}
	// With ω=1h and delays up to 90 min, some events must be lost.
	if rows[0].EventsLost == 0 {
		t.Error("no events lost at the smallest window despite 90-minute delays")
	}
	// With ω=9h, nothing should be lost: every delay fits the window.
	if rows[3].EventsLost != 0 {
		t.Errorf("events lost at ω=9h: %d", rows[3].EventsLost)
	}
	var sb strings.Builder
	WriteDelay(&sb, rows)
	if !strings.Contains(sb.String(), "Delayed-arrival") {
		t.Error("WriteDelay output missing title")
	}
}

func TestFig11bCECountsMatchOnDemand(t *testing.T) {
	// The paper: "the number of recognized CEs does not change with
	// respect to the experiments including spatial reasoning."
	wl := shortWL(t)
	a := Fig11a(wl)
	b := Fig11b(wl)
	for i := range a {
		if a[i].Procs != 1 {
			// Two-processor runs split the world geographically: CEs
			// whose vessels and areas straddle the median differ between
			// modes for partitioning reasons, not spatial-reasoning ones.
			continue
		}
		if a[i].MeanCEs != b[i].MeanCEs {
			t.Errorf("ω=%v procs=%d: CEs differ between modes: %d vs %d",
				a[i].Window, a[i].Procs, a[i].MeanCEs, b[i].MeanCEs)
		}
	}
}

func TestScalingSweepShape(t *testing.T) {
	rows := ScalingSweep([]int{100, 400}, 4, 1)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	small, large := rows[0], rows[1]
	if large.Fixes <= small.Fixes || large.MEs <= small.MEs {
		t.Fatalf("workload did not grow with N: %+v vs %+v", small, large)
	}
	// Tracking cost grows with the fleet — and not absurdly
	// super-linearly (allow 3× headroom over the 4× fleet growth).
	if large.TrackingMean < small.TrackingMean {
		t.Errorf("tracking cost shrank with a bigger fleet: %v vs %v",
			small.TrackingMean, large.TrackingMean)
	}
	if large.TrackingMean > small.TrackingMean*12 {
		t.Errorf("tracking cost grew super-linearly: %v vs %v for 4x vessels",
			small.TrackingMean, large.TrackingMean)
	}
	var sb strings.Builder
	WriteScaling(&sb, rows)
	if !strings.Contains(sb.String(), "Scaling sweep") {
		t.Error("WriteScaling output missing")
	}
}

func TestProbSweepShape(t *testing.T) {
	rows := ProbSweep(shortWL(t), []float64{0, 0.6, 0.95})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0].FishingTruths == 0 {
		t.Skip("no forbidden-ground trawls completed in this workload")
	}
	// Crisp recognition must find the planted trawls.
	if rows[0].FishingRecall == 0 {
		t.Error("crisp recognition missed every scripted trawl")
	}
	// Raising the belief threshold never raises the alert count.
	for i := 1; i < len(rows); i++ {
		if rows[i].Alerts > rows[i-1].Alerts {
			t.Errorf("alerts grew with θ: %d at %.2f vs %d at %.2f",
				rows[i].Alerts, rows[i].Theta, rows[i-1].Alerts, rows[i-1].Theta)
		}
	}
	var sb strings.Builder
	WriteProb(&sb, rows)
	if !strings.Contains(sb.String(), "crisp") {
		t.Error("WriteProb output missing the crisp row")
	}
}

func TestBaselineSimplifyShape(t *testing.T) {
	rows := BaselineSimplify(shortWL(t))
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	online, dp := rows[0], rows[1]
	// Matched compression within a few points.
	if online.Compression < 0.8 || dp.Compression < 0.8 {
		t.Errorf("compressions = %.3f / %.3f, want both high", online.Compression, dp.Compression)
	}
	if d := online.Compression - dp.Compression; d > 0.06 || d < -0.06 {
		t.Errorf("compression mismatch: %.3f vs %.3f", online.Compression, dp.Compression)
	}
	// Both must produce usable reconstructions.
	if online.AvgRMSE <= 0 || dp.AvgRMSE <= 0 {
		t.Errorf("degenerate RMSE: %v / %v", online.AvgRMSE, dp.AvgRMSE)
	}
	// DP optimizes geometry offline with full hindsight: it should not
	// be dramatically more accurate than the online method (the paper's
	// "negligible loss" claim), and the online pass must not be slower
	// by an order of magnitude.
	if online.AvgRMSE > dp.AvgRMSE*25 {
		t.Errorf("online RMSE %.1f m far above the offline optimum %.1f m",
			online.AvgRMSE, dp.AvgRMSE)
	}
	var sb strings.Builder
	WriteBaseline(&sb, rows)
	if !strings.Contains(sb.String(), "Douglas") {
		t.Error("WriteBaseline output missing")
	}
}
