package expbench

import (
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/maritime"
	"repro/internal/rtec"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// DelayRow quantifies the paper's Figure 5 / §4.2 trade-off: with
// delayed ME arrival, a longer window range ω loses fewer events (an
// ME arriving after its occurrence has fallen out of (Q-ω, Q] is
// discarded) but recognition costs more per query.
type DelayRow struct {
	Window     time.Duration // ω
	EventsIn   int           // MEs admitted into working memory
	EventsLost int           // MEs discarded as too late
	LossPct    float64
	MeanStep   time.Duration // mean recognition time per query
	MeanCEs    int           // mean CE instances recognized per step
}

// DelayExperiment replays the workload's movement events with a
// deterministic transport delay (a fraction of MEs delayed by up to
// maxDelay) and sweeps the window range. The paper's shape: increasing
// ω reduces information loss but decreases recognition efficiency
// ("To reduce the possibility of losing information, one may increase
// the window range ω. But doing so decreases recognition efficiency").
func DelayExperiment(wl *Workload, maxDelay time.Duration, fraction float64) []DelayRow {
	// Movement events of the whole run, produced in order.
	spec := stream.WindowSpec{Range: 2 * time.Hour, Slide: time.Hour}
	tr := tracker.New(tracker.DefaultParams(), spec)
	batcher := stream.NewBatcher(stream.NewSliceSource(wl.Fixes), spec.Slide)
	var all []rtec.Event
	var queries []time.Time
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		all = append(all, maritime.MEStream(tr.Slide(b).Fresh)...)
		queries = append(queries, b.Query)
	}

	// Deterministic delays: every k-th event arrives late, the delay
	// cycling over (0, maxDelay].
	type arrival struct {
		ev rtec.Event
		at int64 // unix seconds of arrival
	}
	k := int(1 / fraction)
	if k < 1 {
		k = 1
	}
	arrivals := make([]arrival, len(all))
	for i, ev := range all {
		at := ev.Time
		if i%k == 0 {
			at += int64(maxDelay/time.Second) * int64(1+i%7) / 7
		}
		arrivals[i] = arrival{ev: ev, at: at}
	}
	// Delivery follows arrival time: delayed messages overtake nothing,
	// they just show up late.
	sort.SliceStable(arrivals, func(i, j int) bool { return arrivals[i].at < arrivals[j].at })

	var rows []DelayRow
	for _, h := range []int{1, 2, 6, 9} {
		omega := time.Duration(h) * time.Hour
		rec := maritime.NewRecognizer(maritime.Config{Window: omega}, wl.Vessels, wl.Areas)
		var total time.Duration
		var ces, steps int
		cursor := 0
		for _, q := range queries {
			// Deliver everything that has *arrived* by q, in arrival
			// order (which may be out of occurrence order).
			var batch []rtec.Event
			for cursor < len(arrivals) && arrivals[cursor].at <= q.Unix() {
				batch = append(batch, arrivals[cursor].ev)
				cursor++
			}
			t0 := time.Now()
			snap := rec.Advance(q, batch, nil)
			total += time.Since(t0)
			ces += snap.Recognized
			steps++
		}
		st := rec.Engine().Stats()
		row := DelayRow{
			Window:     omega,
			EventsIn:   st.EventsIn,
			EventsLost: st.EventsLate,
			MeanCEs:    ces / max(1, steps),
		}
		if st.EventsIn+st.EventsLate > 0 {
			row.LossPct = float64(st.EventsLate) / float64(st.EventsIn+st.EventsLate) * 100
		}
		if steps > 0 {
			row.MeanStep = total / time.Duration(steps)
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteDelay renders the rows.
func WriteDelay(w io.Writer, rows []DelayRow) {
	fmt.Fprintln(w, "Delayed-arrival experiment (§4.2) — window range vs information loss")
	fmt.Fprintf(w, "%-8s %10s %10s %8s %8s %14s\n",
		"ω", "admitted", "lost", "loss%", "CEs", "mean/query")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10d %10d %7.1f%% %8d %14s\n",
			r.Window, r.EventsIn, r.EventsLost, r.LossPct, r.MeanCEs,
			r.MeanStep.Round(time.Microsecond))
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
