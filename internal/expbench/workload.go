// Package expbench is the experiment harness reproducing every table
// and figure of the paper's evaluation (§5): workload construction over
// the fleet simulator, parameter sweeps, per-stage timing, and runners
// that print the same rows and series the paper reports. Absolute
// numbers differ from the paper's hardware; the harness is about
// reproducing the shapes — linear growth of tracking cost in the slide
// step, ~94% compression, RMSE sensitivity to Δθ, the dominance of
// tracking in maintenance cost, and the parallel and spatial-facts
// speedups of CE recognition.
package expbench

import (
	"time"

	"repro/internal/ais"
	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/mod"
)

// Scale sizes the experiments. The paper's dataset (N = 6425 vessels,
// three months) is impractical for a test-suite run; each scale keeps
// the workload shape while trading volume for runtime.
type Scale struct {
	Name     string
	Vessels  int
	Seed     int64
	Short    time.Duration // runs for the small-window experiments
	Long     time.Duration // runs for ω up to 24 h (Figures 6(b), 10, Table 4)
	Fig7Reps int           // stream replication cap for the arrival-rate stress test
}

// Predefined scales.
var (
	// ScaleCI keeps the full suite under a couple of minutes.
	ScaleCI = Scale{Name: "ci", Vessels: 250, Seed: 1, Short: 7 * time.Hour, Long: 27 * time.Hour, Fig7Reps: 60}
	// ScaleDefault is the cmd/experiments default.
	ScaleDefault = Scale{Name: "default", Vessels: 1000, Seed: 1, Short: 10 * time.Hour, Long: 28 * time.Hour, Fig7Reps: 20}
	// ScalePaper matches the paper's fleet size.
	ScalePaper = Scale{Name: "paper", Vessels: 6425, Seed: 1, Short: 12 * time.Hour, Long: 30 * time.Hour, Fig7Reps: 4}
)

// Workload is one simulated dataset plus the static world adapted for
// the pipeline.
type Workload struct {
	Sim     *fleetsim.Simulator
	Fixes   []ais.Fix
	Vessels []maritime.Vessel
	Areas   []maritime.Area
	Ports   []mod.PortArea
	Start   time.Time
	End     time.Time
}

// BuildWorkload simulates a dataset of the given fleet size and
// duration.
func BuildWorkload(vessels int, duration time.Duration, seed int64) *Workload {
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = vessels
	cfg.Duration = duration
	cfg.Seed = seed
	sim := fleetsim.NewSimulator(cfg)
	w := &Workload{Sim: sim, Fixes: sim.Run(), Start: cfg.Start, End: cfg.Start.Add(duration)}
	w.Vessels, w.Areas, w.Ports = core.AdaptWorld(sim)
	return w
}

// BuildNoisyWorkload simulates a dataset with an aggressive noise
// profile — frequent, large off-course outliers — for the
// outlier-filter ablation, where the default trace's rare outliers
// wash out of fleet-level RMSE.
func BuildNoisyWorkload(vessels int, duration time.Duration, seed int64) *Workload {
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = vessels
	cfg.Duration = duration
	cfg.Seed = seed
	cfg.Noise.OutlierProb = 0.03
	cfg.Noise.OutlierMeters = 2500
	sim := fleetsim.NewSimulator(cfg)
	w := &Workload{Sim: sim, Fixes: sim.Run(), Start: cfg.Start, End: cfg.Start.Add(duration)}
	w.Vessels, w.Areas, w.Ports = core.AdaptWorld(sim)
	return w
}

// shortWorkload and longWorkload build (and the caller may cache) the
// two dataset sizes of a scale.
func (s Scale) shortWorkload() *Workload { return BuildWorkload(s.Vessels, s.Short, s.Seed) }
func (s Scale) longWorkload() *Workload  { return BuildWorkload(s.Vessels, s.Long, s.Seed) }

// Replicate concatenates k MMSI-shifted copies of the stream, keeping
// timestamps: the fleet grows k-fold, multiplying the arrival rate for
// the paper's Figure 7 stress test without changing motion dynamics.
func Replicate(fixes []ais.Fix, k int) []ais.Fix {
	if k <= 1 {
		return fixes
	}
	out := make([]ais.Fix, 0, len(fixes)*k)
	for _, f := range fixes {
		for r := 0; r < k; r++ {
			g := f
			g.MMSI += uint32(r) * 10_000_000
			out = append(out, g)
		}
	}
	return out
}

// Workloads caches the two dataset sizes so the figure runners share
// them within one invocation.
type Workloads struct {
	Scale Scale
	short *Workload
	long  *Workload
}

// NewWorkloads returns a lazy cache for the scale.
func NewWorkloads(s Scale) *Workloads { return &Workloads{Scale: s} }

// Short returns (building on first use) the short-duration workload.
func (w *Workloads) Short() *Workload {
	if w.short == nil {
		w.short = w.Scale.shortWorkload()
	}
	return w.short
}

// Long returns (building on first use) the long-duration workload.
func (w *Workloads) Long() *Workload {
	if w.long == nil {
		w.long = w.Scale.longWorkload()
	}
	return w.long
}
