package expbench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/stream"
	"repro/internal/tracker"
)

// Fig89Row is one point of the paper's Figures 8 and 9: for a turn
// threshold Δθ, the trajectory approximation error (average and
// maximum per-vessel RMSE against the original stream) and the
// compression achieved (critical points kept and reduction ratio).
type Fig89Row struct {
	TurnDeg     float64
	AvgRMSE     float64 // meters, averaged over vessels
	MaxRMSE     float64 // meters, worst vessel
	Critical    int     // critical points kept
	Compression float64 // fraction of original positions discarded
}

// Fig89 sweeps Δθ ∈ {5°, 10°, 15°, 20°} with ω = 6 h, β = 1 h (the
// setting of the paper's Figure 9) and reports both figures' series.
// The paper's shapes: average RMSE stays below ~16 m on its data and
// grows with Δθ (max bounded near ~200 m at 20°); each +5° in Δθ
// drops roughly 5% of the critical points while the ratio stays around
// 94%.
func Fig89(wl *Workload) []Fig89Row {
	window := stream.WindowSpec{Range: 6 * time.Hour, Slide: time.Hour}
	var rows []Fig89Row
	for _, deg := range []float64{5, 10, 15, 20} {
		params := tracker.DefaultParams()
		params.TurnThresholdDeg = deg
		tr := tracker.New(params, window)

		var points []tracker.CriticalPoint
		batcher := stream.NewBatcher(stream.NewSliceSource(wl.Fixes), window.Slide)
		for {
			b, ok := batcher.Next()
			if !ok {
				break
			}
			points = append(points, tr.Slide(b).Fresh...)
		}
		avg, max := tracker.FleetRMSE(wl.Fixes, points)
		st := tr.Stats()
		rows = append(rows, Fig89Row{
			TurnDeg:     deg,
			AvgRMSE:     avg,
			MaxRMSE:     max,
			Critical:    st.Critical,
			Compression: st.CompressionRatio(),
		})
	}
	return rows
}

// WriteFig8 renders the approximation-error series.
func WriteFig8(w io.Writer, rows []Fig89Row) {
	fmt.Fprintln(w, "Figure 8 — trajectory approximation error vs turn threshold Δθ")
	fmt.Fprintf(w, "%-6s %14s %14s\n", "Δθ", "avg RMSE (m)", "max RMSE (m)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6.0f %14.1f %14.1f\n", r.TurnDeg, r.AvgRMSE, r.MaxRMSE)
	}
}

// WriteFig9 renders the compression series.
func WriteFig9(w io.Writer, rows []Fig89Row) {
	fmt.Fprintln(w, "Figure 9 — compression vs turn threshold Δθ (ω=6h, β=1h)")
	fmt.Fprintf(w, "%-6s %16s %14s\n", "Δθ", "critical points", "compression")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6.0f %16d %13.1f%%\n", r.TurnDeg, r.Critical, r.Compression*100)
	}
}
