package expbench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/mod"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// Fig10Row is one bar group of the paper's Figure 10: the average
// per-slide cost of the four trajectory maintenance phases for a
// window configuration.
type Fig10Row struct {
	Window         time.Duration
	Slide          time.Duration
	Slides         int
	Tracking       time.Duration
	Staging        time.Duration
	Reconstruction time.Duration
	Loading        time.Duration
}

// Fig10 reproduces the trajectory maintenance breakdown for the
// paper's three configurations: (ω=1h, β=10min), (ω=6h, β=1h),
// (ω=24h, β=1h). The paper's shape: tracking dominates and grows with
// the window size; staging, reconstruction, and loading stay small and
// roughly flat because they handle only the drastically reduced
// critical points.
func Fig10(wl *Workload) []Fig10Row {
	configs := []stream.WindowSpec{
		{Range: time.Hour, Slide: 10 * time.Minute},
		{Range: 6 * time.Hour, Slide: time.Hour},
		{Range: 24 * time.Hour, Slide: time.Hour},
	}
	var rows []Fig10Row
	for _, spec := range configs {
		sys := core.NewSystem(core.Config{
			Window:             spec,
			Tracker:            tracker.DefaultParams(),
			DisableRecognition: true, // Figure 10 times trajectory maintenance alone
		}, wl.Vessels, wl.Areas, wl.Ports)
		batcher := stream.NewBatcher(stream.NewSliceSource(wl.Fixes), spec.Slide)
		row := Fig10Row{Window: spec.Range, Slide: spec.Slide}
		var sum core.Timings
		for {
			b, ok := batcher.Next()
			if !ok {
				break
			}
			rep := sys.ProcessBatch(b)
			sum.Tracking += rep.Timings.Tracking
			sum.Staging += rep.Timings.Staging
			sum.Reconstruction += rep.Timings.Reconstruction
			sum.Loading += rep.Timings.Loading
			row.Slides++
		}
		if row.Slides > 0 {
			n := time.Duration(row.Slides)
			row.Tracking = sum.Tracking / n
			row.Staging = sum.Staging / n
			row.Reconstruction = sum.Reconstruction / n
			row.Loading = sum.Loading / n
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteFig10 renders the rows.
func WriteFig10(w io.Writer, rows []Fig10Row) {
	fmt.Fprintln(w, "Figure 10 — trajectory maintenance cost per window slide")
	fmt.Fprintf(w, "%-20s %12s %12s %16s %12s\n",
		"window", "tracking", "staging", "reconstruction", "loading")
	for _, r := range rows {
		fmt.Fprintf(w, "ω=%-8s β=%-7s %12s %12s %16s %12s\n",
			r.Window, r.Slide,
			r.Tracking.Round(time.Microsecond), r.Staging.Round(time.Microsecond),
			r.Reconstruction.Round(time.Microsecond), r.Loading.Round(time.Microsecond))
	}
}

// Table4 runs the full pipeline over the workload, exhausts the input
// stream, and compiles the reconstructed-trajectory statistics of the
// paper's Table 4.
func Table4(wl *Workload) mod.Table4 {
	spec := stream.WindowSpec{Range: 6 * time.Hour, Slide: time.Hour}
	sys := core.NewSystem(core.Config{
		Window:             spec,
		Tracker:            tracker.DefaultParams(),
		DisableRecognition: true,
	}, wl.Vessels, wl.Areas, wl.Ports)
	sys.RunAll(stream.NewBatcher(stream.NewSliceSource(wl.Fixes), spec.Slide))
	return sys.Store().Table4Stats()
}

// WriteTable4 renders the statistics in the paper's layout.
func WriteTable4(w io.Writer, t4 mod.Table4) {
	fmt.Fprintln(w, "Table 4 — statistics from compressed trajectories")
	t4.Write(w)
}
