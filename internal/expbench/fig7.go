package expbench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/stream"
	"repro/internal/tracker"
)

// Fig7Row is one point of the paper's Figure 7: mean online tracking
// latency per slide when the stream is admitted in chunks matching an
// inflated arrival rate ρ, with ω = 10 min and β = 1 min.
type Fig7Row struct {
	Rate     int           // ρ in positions/second
	ChunkLen int           // positions admitted per 1-minute slide
	Slides   int           // slides measured
	Mean     time.Duration // mean tracking cost per slide
}

// Fig7 reproduces the arrival-rate stress test: the stream is
// replicated with MMSI-shifted copies until at least minSlides chunks
// of ρ·β positions exist, then per-slide tracking cost is measured.
// The paper's shape: latency grows with ρ but stays well below the
// one-minute slide period even at 10,000 positions/second.
func Fig7(wl *Workload, rates []int, maxReps, minSlides int) []Fig7Row {
	if len(rates) == 0 {
		rates = []int{1000, 2000, 5000, 10000}
	}
	window := stream.WindowSpec{Range: 10 * time.Minute, Slide: time.Minute}
	var rows []Fig7Row
	for _, rate := range rates {
		chunk := rate * 60
		// Replicate the fleet until the stream covers minSlides chunks.
		reps := (chunk*minSlides + len(wl.Fixes) - 1) / len(wl.Fixes)
		if reps < 1 {
			reps = 1
		}
		if reps > maxReps {
			reps = maxReps
		}
		fixes := Replicate(wl.Fixes, reps)

		tr := tracker.New(tracker.DefaultParams(), window)
		cb := stream.NewCountBatcher(stream.NewSliceSource(fixes), chunk, window.Slide, wl.Start)
		row := Fig7Row{Rate: rate, ChunkLen: chunk}
		var total time.Duration
		for {
			b, ok := cb.Next()
			if !ok {
				break
			}
			if len(b.Fixes) < chunk {
				break // ignore the ragged tail chunk
			}
			t0 := time.Now()
			tr.Slide(b)
			total += time.Since(t0)
			row.Slides++
		}
		if row.Slides > 0 {
			row.Mean = total / time.Duration(row.Slides)
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteFig7 renders the rows.
func WriteFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Figure 7 — online tracking at inflated arrival rates (ω=10min, β=1min)")
	fmt.Fprintf(w, "%-14s %12s %8s %14s\n", "ρ (pos/sec)", "chunk", "slides", "mean/slide")
	for _, r := range rows {
		fmt.Fprintf(w, "%-14d %12d %8d %14s\n", r.Rate, r.ChunkLen, r.Slides,
			r.Mean.Round(time.Microsecond))
	}
}
