package expbench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/simplify"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// BaselineRow compares the paper's online critical-point summarization
// against offline Douglas–Peucker simplification (§3.2/§6): at matched
// compression, how do approximation quality and processing cost
// differ? The paper's position: the online method avoids "a costly
// simplification algorithm" while keeping the loss negligible — and,
// unlike DP, works single-pass on a live stream and annotates the
// retained points with movement semantics.
type BaselineRow struct {
	Method      string
	Compression float64
	AvgRMSE     float64
	MaxRMSE     float64
	Elapsed     time.Duration // total processing time over the workload
}

// BaselineSimplify runs both methods over the workload. The online
// tracker runs first (its compression is whatever Δθ=15° yields); DP
// is then bisected to the same per-run ratio for a like-for-like RMSE
// comparison.
func BaselineSimplify(wl *Workload) []BaselineRow {
	// Online critical points.
	window := stream.WindowSpec{Range: 6 * time.Hour, Slide: time.Hour}
	tr := tracker.New(tracker.DefaultParams(), window)
	var points []tracker.CriticalPoint
	start := time.Now()
	batcher := stream.NewBatcher(stream.NewSliceSource(wl.Fixes), window.Slide)
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		points = append(points, tr.Slide(b).Fresh...)
	}
	onlineElapsed := time.Since(start)
	avg, max := tracker.FleetRMSE(wl.Fixes, points)
	ratio := tr.Stats().CompressionRatio()
	rows := []BaselineRow{{
		Method:      "online critical points",
		Compression: ratio,
		AvgRMSE:     avg,
		MaxRMSE:     max,
		Elapsed:     onlineElapsed,
	}}

	// Offline Douglas–Peucker at the same compression, per vessel.
	byVessel := tracker.SplitFixesByVessel(wl.Fixes)
	var dpPoints []tracker.CriticalPoint
	kept := 0
	start = time.Now()
	for mmsi, orig := range byVessel {
		got, _ := simplify.AtRatio(orig, ratio, 10)
		kept += len(got)
		for _, f := range got {
			dpPoints = append(dpPoints, tracker.CriticalPoint{
				MMSI: mmsi, Pos: f.Pos, Time: f.Time,
			})
		}
	}
	dpElapsed := time.Since(start)
	dpAvg, dpMax := tracker.FleetRMSE(wl.Fixes, dpPoints)
	rows = append(rows, BaselineRow{
		Method:      "offline Douglas–Peucker",
		Compression: 1 - float64(kept)/float64(len(wl.Fixes)),
		AvgRMSE:     dpAvg,
		MaxRMSE:     dpMax,
		Elapsed:     dpElapsed,
	})
	return rows
}

// WriteBaseline renders the comparison.
func WriteBaseline(w io.Writer, rows []BaselineRow) {
	fmt.Fprintln(w, "Baseline — online critical points vs offline Douglas–Peucker (matched compression)")
	fmt.Fprintf(w, "%-26s %12s %14s %14s %12s\n",
		"method", "compression", "avg RMSE (m)", "max RMSE (m)", "elapsed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-26s %11.1f%% %14.1f %14.1f %12s\n",
			r.Method, r.Compression*100, r.AvgRMSE, r.MaxRMSE,
			r.Elapsed.Round(time.Millisecond))
	}
}
