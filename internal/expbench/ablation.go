package expbench

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/geo"

	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// AblationOutlier compares trajectory approximation quality with and
// without the off-course outlier filter (DESIGN.md ablation 1): the
// filter is the reason noisy positions do not distort the synopsis
// (paper Figure 2(d)). Quality is measured against the simulator's
// noise-free scripted paths — an accepted outlier drags the
// reconstruction off the true course even though it sits close to the
// (equally bogus) reported fix.
type AblationOutlier struct {
	WithFilter    OutlierRow
	WithoutFilter OutlierRow
}

// OutlierRow is one configuration's result: truth-referenced RMSE plus
// the synopsis size.
type OutlierRow struct {
	TruthAvgRMSE float64 // meters, vs scripted ground truth
	TruthMaxRMSE float64
	Critical     int
}

// RunAblationOutlier measures both configurations at the default Δθ,
// over a dedicated workload with an aggressive outlier profile (the
// default trace's rare outliers wash out of fleet-level RMSE). The
// input workload only sizes the ablation dataset.
func RunAblationOutlier(sized *Workload) AblationOutlier {
	dur := sized.End.Sub(sized.Start)
	if dur > 6*time.Hour {
		dur = 6 * time.Hour
	}
	wl := BuildNoisyWorkload(len(sized.Vessels), dur, 2)
	run := func(disable bool) OutlierRow {
		params := tracker.DefaultParams()
		params.DisableOutlierFilter = disable
		window := stream.WindowSpec{Range: 6 * time.Hour, Slide: time.Hour}
		tr := tracker.New(params, window)
		var points []tracker.CriticalPoint
		batcher := stream.NewBatcher(stream.NewSliceSource(wl.Fixes), window.Slide)
		for {
			b, ok := batcher.Next()
			if !ok {
				break
			}
			points = append(points, tr.Slide(b).Fresh...)
		}
		avg, max := truthRMSE(wl, points)
		return OutlierRow{TruthAvgRMSE: avg, TruthMaxRMSE: max, Critical: tr.Stats().Critical}
	}
	return AblationOutlier{WithFilter: run(false), WithoutFilter: run(true)}
}

// truthRMSE measures reconstruction deviation from the scripted
// (noise-free) vessel paths, sampled at the original report times.
func truthRMSE(wl *Workload, points []tracker.CriticalPoint) (avg, max float64) {
	origins := tracker.SplitFixesByVessel(wl.Fixes)
	synopses := tracker.SplitByVessel(points)
	var sum float64
	n := 0
	for mmsi, orig := range origins {
		syn := synopses[mmsi]
		if len(syn) == 0 {
			continue
		}
		last := orig[len(orig)-1]
		if last.Time.After(syn[len(syn)-1].Time) {
			syn = append(syn[:len(syn):len(syn)], tracker.CriticalPoint{
				MMSI: mmsi, Pos: last.Pos, Time: last.Time,
			})
		}
		var sumSq float64
		m := 0
		for _, f := range orig {
			truth, ok := wl.Sim.ScriptedPos(mmsi, f.Time)
			if !ok {
				continue
			}
			approx, ok := syn.At(f.Time)
			if !ok {
				continue
			}
			d := geo.Haversine(truth, approx)
			sumSq += d * d
			m++
		}
		if m == 0 {
			continue
		}
		e := math.Sqrt(sumSq / float64(m))
		sum += e
		if e > max {
			max = e
		}
		n++
	}
	if n > 0 {
		avg = sum / float64(n)
	}
	return avg, max
}

// WriteAblationOutlier renders the comparison.
func WriteAblationOutlier(w io.Writer, a AblationOutlier) {
	fmt.Fprintln(w, "Ablation — off-course outlier filter (error vs scripted ground truth)")
	fmt.Fprintf(w, "%-16s %14s %14s %16s\n", "config", "avg RMSE (m)", "max RMSE (m)", "critical points")
	fmt.Fprintf(w, "%-16s %14.1f %14.1f %16d\n", "with filter",
		a.WithFilter.TruthAvgRMSE, a.WithFilter.TruthMaxRMSE, a.WithFilter.Critical)
	fmt.Fprintf(w, "%-16s %14.1f %14.1f %16d\n", "without filter",
		a.WithoutFilter.TruthAvgRMSE, a.WithoutFilter.TruthMaxRMSE, a.WithoutFilter.Critical)
}

// AblationWindow contrasts windowed RTEC recognition against an
// effectively unbounded working memory (DESIGN.md ablation 3): without
// forgetting, per-query cost grows with the full event history — the
// paper's motivation for the windowing semantics ("no [other] Event
// Calculus system 'forgets'").
type AblationWindow struct {
	Windowed  Fig11Row // ω = 2 h
	Unbounded Fig11Row // ω larger than the whole run
}

// RunAblationWindow measures both.
func RunAblationWindow(wl *Workload) AblationWindow {
	slides, queries := meSlides(wl)
	return AblationWindow{
		Windowed: runFig11(wl, fig11Config{
			window: 2 * time.Hour, procs: 1, mode: maritime.SpatialOnDemand,
		}, slides, queries),
		Unbounded: runFig11(wl, fig11Config{
			window: 1000 * time.Hour, procs: 1, mode: maritime.SpatialOnDemand,
		}, slides, queries),
	}
}

// WriteAblationWindow renders the comparison.
func WriteAblationWindow(w io.Writer, a AblationWindow) {
	fmt.Fprintln(w, "Ablation — windowed vs unbounded RTEC working memory")
	fmt.Fprintf(w, "%-12s %10s %14s\n", "config", "MEs/win", "mean/query")
	fmt.Fprintf(w, "%-12s %10d %14s\n", "ω=2h", a.Windowed.MeanMEs,
		a.Windowed.MeanStep.Round(time.Microsecond))
	fmt.Fprintf(w, "%-12s %10d %14s\n", "unbounded", a.Unbounded.MeanMEs,
		a.Unbounded.MeanStep.Round(time.Microsecond))
}

// AblationGrid contrasts close/3 evaluation with the uniform grid
// index against a linear scan over all areas (DESIGN.md ablation 4).
type AblationGrid struct {
	WithGrid   time.Duration // mean recognition time per query
	LinearScan time.Duration
	Steps      int
}

// RunAblationGrid measures both over ω = 6 h.
func RunAblationGrid(wl *Workload) AblationGrid {
	slides, queries := meSlides(wl)
	run := func(disable bool) time.Duration {
		rec := maritime.NewRecognizer(maritime.Config{
			Window: 6 * time.Hour, DisableGridIndex: disable,
		}, wl.Vessels, wl.Areas)
		var total time.Duration
		for i, events := range slides {
			t0 := time.Now()
			rec.Advance(queries[i], events, nil)
			total += time.Since(t0)
		}
		if len(slides) == 0 {
			return 0
		}
		return total / time.Duration(len(slides))
	}
	return AblationGrid{WithGrid: run(false), LinearScan: run(true), Steps: len(slides)}
}

// WriteAblationGrid renders the comparison.
func WriteAblationGrid(w io.Writer, a AblationGrid) {
	fmt.Fprintln(w, "Ablation — grid index vs linear scan for close/3 (ω=6h)")
	fmt.Fprintf(w, "%-14s %14s\n", "config", "mean/query")
	fmt.Fprintf(w, "%-14s %14s\n", "grid index", a.WithGrid.Round(time.Microsecond))
	fmt.Fprintf(w, "%-14s %14s\n", "linear scan", a.LinearScan.Round(time.Microsecond))
}
