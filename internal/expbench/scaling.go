package expbench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// ScalingRow is one point of the fleet-size scaling sweep: how the two
// online components cost out as the monitored fleet grows — the
// paper's central claim ("maritime surveillance systems need to scale
// to the increasing traffic activity"; "our results confirm the
// scalability ... of the proposed system").
type ScalingRow struct {
	Vessels      int
	Fixes        int
	TrackingMean time.Duration // mean tracking cost per slide (ω=1h, β=10min)
	RecogMean    time.Duration // mean CE recognition per query (ω=2h, β=1h)
	MEs          int           // movement events produced
}

// ScalingSweep measures tracking and recognition cost across fleet
// sizes. Expected shape: roughly linear growth in N for both
// components, since per-vessel state is independent and recognition
// cost follows the ME volume.
func ScalingSweep(sizes []int, hours int, seed int64) []ScalingRow {
	if len(sizes) == 0 {
		sizes = []int{250, 500, 1000, 2000}
	}
	var rows []ScalingRow
	for _, n := range sizes {
		wl := BuildWorkload(n, time.Duration(hours)*time.Hour, seed)
		row := ScalingRow{Vessels: n, Fixes: len(wl.Fixes)}

		// Tracking cost.
		spec := stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute}
		tr := tracker.New(tracker.DefaultParams(), spec)
		batcher := stream.NewBatcher(stream.NewSliceSource(wl.Fixes), spec.Slide)
		var total time.Duration
		slides := 0
		for {
			b, ok := batcher.Next()
			if !ok {
				break
			}
			t0 := time.Now()
			tr.Slide(b)
			total += time.Since(t0)
			slides++
		}
		if slides > 0 {
			row.TrackingMean = total / time.Duration(slides)
		}

		// Recognition cost over the derived ME stream.
		slidesME, queries := meSlides(wl)
		for _, mes := range slidesME {
			row.MEs += len(mes)
		}
		rec := maritime.NewRecognizer(maritime.Config{Window: 2 * time.Hour}, wl.Vessels, wl.Areas)
		total = 0
		for i, mes := range slidesME {
			t0 := time.Now()
			rec.Advance(queries[i], mes, nil)
			total += time.Since(t0)
		}
		if len(slidesME) > 0 {
			row.RecogMean = total / time.Duration(len(slidesME))
		}
		rows = append(rows, row)
	}
	return rows
}

// WriteScaling renders the rows.
func WriteScaling(w io.Writer, rows []ScalingRow) {
	fmt.Fprintln(w, "Scaling sweep — online cost vs fleet size N")
	fmt.Fprintf(w, "%-8s %10s %10s %16s %18s\n",
		"N", "fixes", "MEs", "tracking/slide", "recognition/query")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %10d %10d %16s %18s\n",
			r.Vessels, r.Fixes, r.MEs,
			r.TrackingMean.Round(time.Microsecond), r.RecogMean.Round(time.Microsecond))
	}
}
