package expbench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/maritime"
	"repro/internal/rtec"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// Fig11Row is one point of the paper's Figure 11: the average CE
// recognition time per query step for a window range ω, using one or
// two processors, with or without precomputed spatial facts.
type Fig11Row struct {
	Window    time.Duration // ω
	Procs     int           // 1 or 2 recognizers in parallel
	Mode      maritime.Mode
	Steps     int           // query steps measured
	MeanMEs   int           // mean movement events in working memory
	MeanFacts int           // mean spatial facts per slide (SF mode)
	MeanCEs   int           // mean CE instances recognized per step
	MeanStep  time.Duration // mean recognition time per query step
}

// meSlides precomputes the movement-event stream of the workload,
// bucketed into β = 1 h slides — the input shared by every Figure 11
// configuration.
func meSlides(wl *Workload) (slides [][]rtec.Event, queries []time.Time) {
	spec := stream.WindowSpec{Range: 2 * time.Hour, Slide: time.Hour}
	tr := tracker.New(tracker.DefaultParams(), spec)
	batcher := stream.NewBatcher(stream.NewSliceSource(wl.Fixes), spec.Slide)
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		res := tr.Slide(b)
		slides = append(slides, maritime.MEStream(res.Fresh))
		queries = append(queries, b.Query)
	}
	return slides, queries
}

// fig11Config is one recognition configuration to measure.
type fig11Config struct {
	window time.Duration
	procs  int
	mode   maritime.Mode
}

// runFig11 measures one configuration over the precomputed slides.
func runFig11(wl *Workload, cfg fig11Config, slides [][]rtec.Event, queries []time.Time) Fig11Row {
	row := Fig11Row{Window: cfg.window, Procs: cfg.procs, Mode: cfg.mode}
	mcfg := maritime.Config{Window: cfg.window, Mode: cfg.mode}

	var factGen *maritime.FactGenerator
	if cfg.mode == maritime.SpatialFacts {
		factGen = maritime.NewFactGenerator(wl.Areas, 3000)
	}

	var totalStep time.Duration
	var totalMEs, totalCEs, totalFacts int

	switch cfg.procs {
	case 1:
		rec := maritime.NewRecognizer(mcfg, wl.Vessels, wl.Areas)
		for i, events := range slides {
			var facts []maritime.SpatialFact
			if factGen != nil {
				facts = factGen.Facts(events)
				totalFacts += len(facts)
			}
			t0 := time.Now()
			snap := rec.Advance(queries[i], events, facts)
			totalStep += time.Since(t0)
			totalMEs += rec.Engine().WorkingMemorySize()
			totalCEs += snap.Recognized
			row.Steps++
		}
	case 2:
		median := wl.Sim.World().MedianLon()
		westAreas, eastAreas := maritime.PartitionAreas(wl.Areas, median)
		west := maritime.NewRecognizer(mcfg, wl.Vessels, westAreas)
		east := maritime.NewRecognizer(mcfg, wl.Vessels, eastAreas)
		for i, events := range slides {
			we, ee := maritime.PartitionEvents(events, median)
			var wf, ef []maritime.SpatialFact
			if factGen != nil {
				facts := factGen.Facts(events)
				totalFacts += len(facts)
				wf, ef = maritime.PartitionFacts(facts, westAreas)
			}
			var snapW, snapE maritime.Snapshot
			t0 := time.Now()
			var wg sync.WaitGroup
			wg.Add(2)
			go func() { defer wg.Done(); snapW = west.Advance(queries[i], we, wf) }()
			go func() { defer wg.Done(); snapE = east.Advance(queries[i], ee, ef) }()
			wg.Wait()
			totalStep += time.Since(t0)
			totalMEs += west.Engine().WorkingMemorySize() + east.Engine().WorkingMemorySize()
			totalCEs += snapW.Recognized + snapE.Recognized
			row.Steps++
		}
	default:
		panic("expbench: unsupported processor count")
	}

	if row.Steps > 0 {
		row.MeanStep = totalStep / time.Duration(row.Steps)
		row.MeanMEs = totalMEs / row.Steps
		row.MeanCEs = totalCEs / row.Steps
		row.MeanFacts = totalFacts / row.Steps
	}
	return row
}

// Fig11a reproduces Figure 11(a): recognition over critical movement
// events with on-demand spatial reasoning, ω ∈ {1, 2, 6, 9} h with
// β = 1 h, on one and two processors. The paper's shapes: time grows
// with ω, and two processors are markedly faster than one.
func Fig11a(wl *Workload) []Fig11Row {
	slides, queries := meSlides(wl)
	var rows []Fig11Row
	for _, procs := range []int{1, 2} {
		for _, h := range []int{1, 2, 6, 9} {
			rows = append(rows, runFig11(wl, fig11Config{
				window: time.Duration(h) * time.Hour,
				procs:  procs,
				mode:   maritime.SpatialOnDemand,
			}, slides, queries))
		}
	}
	return rows
}

// Fig11b reproduces Figure 11(b): the same sweep with the input
// augmented by precomputed spatial facts and the definitions consuming
// them instead of reasoning spatially. The paper's shape: despite the
// larger input, recognition is substantially faster than Figure 11(a).
func Fig11b(wl *Workload) []Fig11Row {
	slides, queries := meSlides(wl)
	var rows []Fig11Row
	for _, procs := range []int{1, 2} {
		for _, h := range []int{1, 2, 6, 9} {
			rows = append(rows, runFig11(wl, fig11Config{
				window: time.Duration(h) * time.Hour,
				procs:  procs,
				mode:   maritime.SpatialFacts,
			}, slides, queries))
		}
	}
	return rows
}

// WriteFig11 renders the rows.
func WriteFig11(w io.Writer, title string, rows []Fig11Row) {
	fmt.Fprintf(w, "%s — complex event recognition time per query (β=1h)\n", title)
	fmt.Fprintf(w, "%-8s %6s %10s %10s %8s %14s\n",
		"ω", "procs", "MEs/win", "SFs/slide", "CEs", "mean/query")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %6d %10d %10d %8d %14s\n",
			r.Window, r.Procs, r.MeanMEs, r.MeanFacts, r.MeanCEs,
			r.MeanStep.Round(time.Microsecond))
	}
}
