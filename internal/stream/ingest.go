package stream

import (
	"sync"

	"repro/internal/ais"
)

// IngestBuffer decouples a live FixSource from the pipeline with a
// bounded buffer: a pump goroutine drains the source as fast as the
// wire delivers it, while the consumer (the Batcher and tracker behind
// it) takes fixes at its own pace. When the consumer falls behind and
// the buffer fills, the oldest buffered fixes are dropped and counted —
// an explicit degradation policy that never blocks the ingest path, so
// a slow recognition slide cannot exert backpressure onto the feed and
// turn one stall into a timeout cascade.
//
// IngestBuffer is itself a FixSource, so it slots transparently between
// a feed client and a Batcher.
type IngestBuffer struct {
	mu      sync.Mutex
	cond    *sync.Cond
	buf     []ais.Fix // buf[head:] are the live entries
	head    int
	cap     int
	dropped int
	srcDone bool
	closed  bool
	err     error
	cur     ais.Fix
}

// NewIngestBuffer starts pumping src into a buffer of the given
// capacity (≤ 0 defaults to 8192 fixes).
func NewIngestBuffer(src FixSource, capacity int) *IngestBuffer {
	if capacity <= 0 {
		capacity = 8192
	}
	b := &IngestBuffer{cap: capacity}
	b.cond = sync.NewCond(&b.mu)
	go b.pump(src)
	return b
}

// pump drains the source until it ends or the buffer is closed.
func (b *IngestBuffer) pump(src FixSource) {
	for src.Scan() {
		f := src.Fix()
		b.mu.Lock()
		if b.closed {
			b.mu.Unlock()
			return
		}
		if len(b.buf)-b.head >= b.cap {
			// Overflow: drop the oldest fix, never block the producer.
			b.head++
			b.dropped++
			if b.head > b.cap && b.head*2 > len(b.buf) {
				b.buf = append(b.buf[:0], b.buf[b.head:]...)
				b.head = 0
			}
		}
		b.buf = append(b.buf, f)
		b.cond.Signal()
		b.mu.Unlock()
	}
	b.mu.Lock()
	b.srcDone = true
	b.err = src.Err()
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Scan blocks until a fix is available, the source ends, or the buffer
// is closed.
func (b *IngestBuffer) Scan() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for len(b.buf) == b.head && !b.srcDone && !b.closed {
		b.cond.Wait()
	}
	if b.closed || len(b.buf) == b.head {
		return false
	}
	b.cur = b.buf[b.head]
	b.head++
	if b.head == len(b.buf) {
		b.buf = b.buf[:0]
		b.head = 0
	}
	return true
}

// Fix returns the current fix.
func (b *IngestBuffer) Fix() ais.Fix { return b.cur }

// Err returns the source's terminal error once the pump has finished.
func (b *IngestBuffer) Err() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.err
}

// Dropped returns how many fixes were discarded by overflow.
func (b *IngestBuffer) Dropped() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Pending returns the number of buffered, unconsumed fixes.
func (b *IngestBuffer) Pending() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf) - b.head
}

// Close releases a blocked consumer and detaches the pump; it does not
// close the underlying source.
func (b *IngestBuffer) Close() {
	b.mu.Lock()
	b.closed = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
