package stream

import (
	"errors"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

func ingestFixes(n int) []ais.Fix {
	t0 := time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)
	fixes := make([]ais.Fix, n)
	for i := range fixes {
		fixes[i] = ais.Fix{
			MMSI: 237000000 + uint32(i),
			Pos:  geo.Point{Lon: 24, Lat: 37},
			Time: t0.Add(time.Duration(i) * time.Second),
		}
	}
	return fixes
}

func TestIngestBufferDeliversInOrder(t *testing.T) {
	fixes := ingestFixes(1000)
	b := NewIngestBuffer(NewSliceSource(fixes), len(fixes))
	defer b.Close()
	got, err := Collect(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fixes) {
		t.Fatalf("delivered %d fixes, want %d", len(got), len(fixes))
	}
	for i := range got {
		if got[i].MMSI != fixes[i].MMSI {
			t.Fatalf("fix %d out of order", i)
		}
	}
	if b.Dropped() != 0 {
		t.Errorf("Dropped = %d with ample capacity", b.Dropped())
	}
}

func TestIngestBufferOverflowDropsOldest(t *testing.T) {
	fixes := ingestFixes(100)
	b := NewIngestBuffer(NewSliceSource(fixes), 10)
	defer b.Close()
	// Do not consume: the pump must never block, so it runs the whole
	// source, dropping the oldest fixes as the buffer overflows.
	deadline := time.Now().Add(5 * time.Second)
	for b.Dropped()+b.Pending() < len(fixes) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if d := b.Dropped(); d != 90 {
		t.Fatalf("Dropped = %d, want 90 (drop-oldest, never block)", d)
	}
	got, err := Collect(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("delivered %d fixes, want the newest 10", len(got))
	}
	for i := range got {
		if want := fixes[90+i].MMSI; got[i].MMSI != want {
			t.Fatalf("fix %d = MMSI %d, want %d (the oldest must be the ones dropped)",
				i, got[i].MMSI, want)
		}
	}
}

// failSource yields n fixes then fails.
type failSource struct {
	n   int
	i   int
	err error
}

func (s *failSource) Scan() bool {
	s.i++
	return s.i <= s.n
}
func (s *failSource) Fix() ais.Fix {
	return ais.Fix{MMSI: uint32(s.i), Pos: geo.Point{Lon: 24, Lat: 37}}
}
func (s *failSource) Err() error { return s.err }

func TestIngestBufferPropagatesSourceError(t *testing.T) {
	wantErr := errors.New("wire fell over")
	b := NewIngestBuffer(&failSource{n: 5, err: wantErr}, 16)
	defer b.Close()
	n := 0
	for b.Scan() {
		n++
	}
	if n != 5 {
		t.Errorf("delivered %d fixes before the error, want 5", n)
	}
	if !errors.Is(b.Err(), wantErr) {
		t.Errorf("Err() = %v, want %v", b.Err(), wantErr)
	}
}

// stuckSource blocks in Scan until closed.
type stuckSource struct{ ch chan struct{} }

func (s *stuckSource) Scan() bool   { <-s.ch; return false }
func (s *stuckSource) Fix() ais.Fix { return ais.Fix{} }
func (s *stuckSource) Err() error   { return nil }

func TestIngestBufferCloseReleasesConsumer(t *testing.T) {
	src := &stuckSource{ch: make(chan struct{})}
	defer close(src.ch)
	b := NewIngestBuffer(src, 16)
	done := make(chan bool, 1)
	go func() { done <- b.Scan() }()
	time.Sleep(10 * time.Millisecond)
	b.Close()
	select {
	case ok := <-done:
		if ok {
			t.Error("Scan returned true after Close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Scan did not return after Close")
	}
}
