package stream

import "time"

// TimeBuffer is a time-ordered buffer of items with efficient eviction
// of expired entries, the in-memory structure behind both the mobility
// tracker's per-vessel history and RTEC's working memory. Items must be
// appended in non-decreasing timestamp order relative to evictions;
// within the buffer, small local disorder (delayed messages) is allowed
// and preserved.
type TimeBuffer[T any] struct {
	items []entry[T]
	head  int // index of the first live element
}

type entry[T any] struct {
	t time.Time
	v T
}

// Append adds an item stamped t.
func (b *TimeBuffer[T]) Append(t time.Time, v T) {
	b.items = append(b.items, entry[T]{t: t, v: v})
}

// Len returns the number of live items.
func (b *TimeBuffer[T]) Len() int { return len(b.items) - b.head }

// EvictBefore drops all items with timestamp <= cutoff and returns the
// number evicted. It assumes items are approximately time-ordered:
// eviction scans from the head while timestamps are not after cutoff,
// which matches window semantics where whole prefixes expire. Delayed
// items appended out of order deeper in the buffer expire on a later
// eviction once the scan reaches them.
func (b *TimeBuffer[T]) EvictBefore(cutoff time.Time) int {
	n := 0
	for b.head < len(b.items) && !b.items[b.head].t.After(cutoff) {
		var zero entry[T]
		b.items[b.head] = zero // release references for GC
		b.head++
		n++
	}
	if b.head == len(b.items) {
		b.items = b.items[:0]
		b.head = 0
	} else if b.head > 4096 && b.head*2 > len(b.items) {
		// Compact when more than half the backing array is dead.
		live := copy(b.items, b.items[b.head:])
		for i := live; i < len(b.items); i++ {
			var zero entry[T]
			b.items[i] = zero
		}
		b.items = b.items[:live]
		b.head = 0
	}
	return n
}

// At returns the i-th live item (0 = oldest).
func (b *TimeBuffer[T]) At(i int) (time.Time, T) {
	e := b.items[b.head+i]
	return e.t, e.v
}

// Oldest returns the timestamp of the oldest live item and true, or a
// zero time and false when empty. It lets eviction sweeps settle the
// common nothing-expires case with one head peek instead of a scan.
func (b *TimeBuffer[T]) Oldest() (time.Time, bool) {
	if b.Len() == 0 {
		return time.Time{}, false
	}
	return b.items[b.head].t, true
}

// Last returns the newest item and true, or zero values and false when
// empty.
func (b *TimeBuffer[T]) Last() (time.Time, T, bool) {
	if b.Len() == 0 {
		var zero T
		return time.Time{}, zero, false
	}
	e := b.items[len(b.items)-1]
	return e.t, e.v, true
}

// Each calls fn on every live item in order, stopping early if fn
// returns false.
func (b *TimeBuffer[T]) Each(fn func(t time.Time, v T) bool) {
	for i := b.head; i < len(b.items); i++ {
		if !fn(b.items[i].t, b.items[i].v) {
			return
		}
	}
}

// Reset discards all items.
func (b *TimeBuffer[T]) Reset() {
	b.items = b.items[:0]
	b.head = 0
}
