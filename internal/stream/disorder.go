package stream

import (
	"math/rand"
	"sort"
	"time"

	"repro/internal/ais"
)

// Delayer simulates the delayed, out-of-order message arrival the paper
// highlights (§4.2, Figure 5): MEs "may not necessarily arrive at the CE
// recognition system in a timely manner". It perturbs the *arrival*
// order of a stream while leaving occurrence timestamps untouched, so
// downstream windows observe genuinely late tuples.
type Delayer struct {
	// MaxDelay bounds the artificial transport delay per message.
	MaxDelay time.Duration
	// Fraction in [0,1] of messages that are delayed at all.
	Fraction float64
	// Seed makes the perturbation deterministic.
	Seed int64
}

// Apply returns a new slice ordered by simulated arrival time
// (occurrence time plus a random delay for the chosen fraction of
// messages). The input is not modified.
func (d Delayer) Apply(fixes []ais.Fix) []ais.Fix {
	rng := rand.New(rand.NewSource(d.Seed))
	type arrival struct {
		fix ais.Fix
		at  time.Time
		idx int
	}
	arr := make([]arrival, len(fixes))
	for i, f := range fixes {
		at := f.Time
		if d.Fraction > 0 && rng.Float64() < d.Fraction && d.MaxDelay > 0 {
			at = at.Add(time.Duration(rng.Int63n(int64(d.MaxDelay) + 1)))
		}
		arr[i] = arrival{fix: f, at: at, idx: i}
	}
	sort.SliceStable(arr, func(i, j int) bool {
		if !arr[i].at.Equal(arr[j].at) {
			return arr[i].at.Before(arr[j].at)
		}
		return arr[i].idx < arr[j].idx
	})
	out := make([]ais.Fix, len(arr))
	for i, a := range arr {
		out[i] = a.fix
	}
	return out
}
