package stream

import "repro/internal/obs"

// RegisterMetrics exports the buffer's occupancy and overflow counters.
// Depth and drops are sampled at scrape time under the buffer's lock,
// so the gauge reflects the instant the scrape happened rather than a
// stale copy.
func (b *IngestBuffer) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("maritime_ingest_pending",
		"Fixes buffered between the feed and the pipeline, awaiting consumption.",
		nil, func() float64 { return float64(b.Pending()) })
	r.CounterFunc("maritime_ingest_dropped_total",
		"Fixes discarded by ingest-buffer overflow (consumer fell behind).",
		nil, func() float64 { return float64(b.Dropped()) })
	r.Gauge("maritime_ingest_capacity",
		"Ingest buffer capacity in fixes.", nil).Set(float64(b.cap))
}
