package stream

import (
	"strings"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/obs"
)

// TestIngestBufferMetricsExport overflows a tiny buffer with no
// consumer attached and checks depth, drops and capacity land in the
// exposition with the same values the buffer's accessors report.
func TestIngestBufferMetricsExport(t *testing.T) {
	const total, capacity = 20, 4
	fixes := make([]ais.Fix, total)
	base := time.Unix(1_400_000_000, 0).UTC()
	for i := range fixes {
		fixes[i] = ais.Fix{MMSI: uint32(i + 1), Time: base.Add(time.Duration(i) * time.Second)}
	}
	b := NewIngestBuffer(NewSliceSource(fixes), capacity)
	defer b.Close()

	reg := obs.NewRegistry()
	b.RegisterMetrics(reg)

	// Wait for the pump to drain the source: every fix is then either
	// pending or dropped.
	deadline := time.Now().Add(2 * time.Second)
	for b.Pending()+b.Dropped() < total {
		if time.Now().After(deadline) {
			t.Fatalf("pump stalled: pending=%d dropped=%d", b.Pending(), b.Dropped())
		}
		time.Sleep(time.Millisecond)
	}

	var sb strings.Builder
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"maritime_ingest_pending 4",
		"maritime_ingest_dropped_total 16",
		"maritime_ingest_capacity 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}

	// Draining moves the gauge without touching the drop counter.
	if !b.Scan() {
		t.Fatal("Scan returned false with pending fixes")
	}
	if got := b.Pending(); got != 3 {
		t.Fatalf("Pending after one Scan = %d, want 3", got)
	}
	sb.Reset()
	if err := reg.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "maritime_ingest_pending 3") {
		t.Errorf("gauge did not track drain:\n%s", sb.String())
	}
}
