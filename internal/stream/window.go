// Package stream provides the data-stream machinery of the surveillance
// system: sliding-window specifications with range ω and slide β
// (paper §2), batching of a timestamped positional stream into slide
// intervals, replay at inflated arrival rates for stress tests, generic
// time-ordered buffers with eviction, and deterministic out-of-order
// delivery simulation for the delayed-message experiments.
package stream

import (
	"errors"
	"fmt"
	"time"
)

// WindowSpec is a sliding window with range ω and slide step β. The
// window abstracts the recent time period of interest: at each query
// time Q it covers (Q-ω, Q] and moves forward every β (paper §2, §4.2).
type WindowSpec struct {
	Range time.Duration // ω
	Slide time.Duration // β
}

// Errors returned by Validate.
var (
	ErrNonPositiveRange = errors.New("stream: window range must be positive")
	ErrNonPositiveSlide = errors.New("stream: window slide must be positive")
)

// Validate checks the specification. The paper notes that typically
// β ≤ ω so that successive window instantiations share tuples; larger
// slides are legal (they produce disjoint windows) so Validate only
// rejects non-positive values.
func (w WindowSpec) Validate() error {
	if w.Range <= 0 {
		return ErrNonPositiveRange
	}
	if w.Slide <= 0 {
		return ErrNonPositiveSlide
	}
	return nil
}

// String renders the spec as "ω=…/β=…".
func (w WindowSpec) String() string {
	return fmt.Sprintf("ω=%v/β=%v", w.Range, w.Slide)
}

// Instance is one window instantiation: the interval (Query-ω, Query]
// evaluated at query time Query.
type Instance struct {
	Query time.Time
	Spec  WindowSpec
}

// Start returns the exclusive lower bound Query-ω of the instance.
func (in Instance) Start() time.Time { return in.Query.Add(-in.Spec.Range) }

// Covers reports whether timestamp t falls inside the window interval
// (Query-ω, Query].
func (in Instance) Covers(t time.Time) bool {
	return t.After(in.Start()) && !t.After(in.Query)
}

// Next returns the next instantiation, β later.
func (in Instance) Next() Instance {
	return Instance{Query: in.Query.Add(in.Spec.Slide), Spec: in.Spec}
}
