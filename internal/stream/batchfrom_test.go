package stream

import (
	"testing"
	"time"

	"repro/internal/ais"
)

func TestBatcherFromContinuesSlideGrid(t *testing.T) {
	// A checkpoint taken at query time t0+10m; the replay's first fix is
	// three slides later. The resumed batcher must keep the original
	// grid: two empty slides, then the fix's slide.
	start := t0.Add(10 * time.Minute)
	fixes := []ais.Fix{
		fixAt(1, 34*time.Minute),
		fixAt(1, 38*time.Minute),
		fixAt(2, 44*time.Minute),
	}
	b := NewBatcherFrom(NewSliceSource(fixes), 10*time.Minute, start)
	var batches []Batch
	for {
		batch, ok := b.Next()
		if !ok {
			break
		}
		batches = append(batches, batch)
	}
	wantQueries := []time.Time{
		start.Add(10 * time.Minute), // empty
		start.Add(20 * time.Minute), // empty
		start.Add(30 * time.Minute), // fixes at 34m, 38m
		start.Add(40 * time.Minute), // fix at 44m
	}
	if len(batches) != len(wantQueries) {
		t.Fatalf("got %d batches, want %d", len(batches), len(wantQueries))
	}
	for i, q := range wantQueries {
		if !batches[i].Query.Equal(q) {
			t.Errorf("batch %d query = %v, want %v (grid not preserved)", i, batches[i].Query, q)
		}
	}
	if len(batches[0].Fixes) != 0 || len(batches[1].Fixes) != 0 {
		t.Error("gap slides before the first replayed fix must be empty, not skipped")
	}
	if len(batches[2].Fixes) != 2 || len(batches[3].Fixes) != 1 {
		t.Errorf("fix assignment off: %d and %d fixes", len(batches[2].Fixes), len(batches[3].Fixes))
	}
}

func TestBatcherFromMatchesPlainBatcherOnAlignedStart(t *testing.T) {
	// Resuming from the slide grid the plain batcher would have chosen
	// yields the identical batch sequence.
	var fixes []ais.Fix
	for i := 0; i < 40; i++ {
		fixes = append(fixes, fixAt(uint32(1+i%3), time.Duration(i)*90*time.Second))
	}
	plain := NewBatcher(NewSliceSource(fixes), 5*time.Minute)
	// The plain batcher aligns its first query to the slide grid below
	// the first fix; t0 is on that grid.
	resumed := NewBatcherFrom(NewSliceSource(fixes), 5*time.Minute, t0)
	for i := 0; ; i++ {
		pb, pok := plain.Next()
		rb, rok := resumed.Next()
		if pok != rok {
			t.Fatalf("batch %d: plain ok=%v resumed ok=%v", i, pok, rok)
		}
		if !pok {
			break
		}
		if !pb.Query.Equal(rb.Query) || len(pb.Fixes) != len(rb.Fixes) {
			t.Fatalf("batch %d diverges: plain (%v, %d fixes) vs resumed (%v, %d fixes)",
				i, pb.Query, len(pb.Fixes), rb.Query, len(rb.Fixes))
		}
	}
}

func TestBatcherFromEmptySource(t *testing.T) {
	b := NewBatcherFrom(NewSliceSource(nil), time.Minute, t0)
	if _, ok := b.Next(); ok {
		t.Fatal("empty source produced a batch")
	}
}
