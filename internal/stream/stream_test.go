package stream

import (
	"errors"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

var t0 = time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)

// fixAt builds a fix for MMSI m at t0+offset.
func fixAt(m uint32, offset time.Duration) ais.Fix {
	return ais.Fix{MMSI: m, Pos: geo.Point{Lon: 24, Lat: 38}, Time: t0.Add(offset)}
}

func TestWindowSpecValidate(t *testing.T) {
	if err := (WindowSpec{Range: time.Hour, Slide: time.Minute}).Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	if err := (WindowSpec{Range: 0, Slide: time.Minute}).Validate(); !errors.Is(err, ErrNonPositiveRange) {
		t.Errorf("zero range: %v", err)
	}
	if err := (WindowSpec{Range: time.Hour, Slide: -1}).Validate(); !errors.Is(err, ErrNonPositiveSlide) {
		t.Errorf("negative slide: %v", err)
	}
}

func TestInstanceCovers(t *testing.T) {
	spec := WindowSpec{Range: time.Hour, Slide: 10 * time.Minute}
	in := Instance{Query: t0.Add(2 * time.Hour), Spec: spec}
	if in.Covers(t0.Add(time.Hour)) {
		t.Error("start bound should be exclusive")
	}
	if !in.Covers(t0.Add(time.Hour + time.Nanosecond)) {
		t.Error("just inside the window not covered")
	}
	if !in.Covers(t0.Add(2 * time.Hour)) {
		t.Error("query time itself should be covered (right-closed)")
	}
	if in.Covers(t0.Add(2*time.Hour + time.Second)) {
		t.Error("future tuple covered")
	}
	next := in.Next()
	if !next.Query.Equal(t0.Add(2*time.Hour + 10*time.Minute)) {
		t.Errorf("Next query = %v", next.Query)
	}
}

func TestBatcherAssignsBySlideInterval(t *testing.T) {
	fixes := []ais.Fix{
		fixAt(1, 30*time.Second),
		fixAt(2, 90*time.Second),
		fixAt(3, 119*time.Second),
		fixAt(4, 241*time.Second), // skips one full slide (120–180 s empty? no: (120,180] has nothing, (180,240] nothing, 241 in (240,300])
	}
	b := NewBatcher(NewSliceSource(fixes), time.Minute)

	var batches []Batch
	for {
		batch, ok := b.Next()
		if !ok {
			break
		}
		batches = append(batches, batch)
	}
	// Expected query times: 1min (fix1), 2min (fix2, fix3), 3min (empty),
	// 4min (empty), 5min (fix4).
	if len(batches) != 5 {
		t.Fatalf("got %d batches, want 5", len(batches))
	}
	counts := []int{1, 2, 0, 0, 1}
	for i, want := range counts {
		if len(batches[i].Fixes) != want {
			t.Errorf("batch %d has %d fixes, want %d", i, len(batches[i].Fixes), want)
		}
		wantQ := t0.Add(time.Duration(i+1) * time.Minute)
		if !batches[i].Query.Equal(wantQ) {
			t.Errorf("batch %d query = %v, want %v", i, batches[i].Query, wantQ)
		}
	}
}

func TestBatcherPreservesEveryFix(t *testing.T) {
	f := func(offsets []uint16) bool {
		fixes := make([]ais.Fix, len(offsets))
		// Build a sorted stream from random offsets.
		cur := time.Duration(0)
		for i, o := range offsets {
			cur += time.Duration(o%300) * time.Second
			fixes[i] = fixAt(uint32(i), cur)
		}
		b := NewBatcher(NewSliceSource(fixes), 5*time.Minute)
		total := 0
		for {
			batch, ok := b.Next()
			if !ok {
				break
			}
			for _, fx := range batch.Fixes {
				if fx.Time.After(batch.Query) {
					return false // fix later than its batch's query time
				}
			}
			total += len(batch.Fixes)
		}
		return total == len(fixes)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBatcherEmptyStream(t *testing.T) {
	b := NewBatcher(NewSliceSource(nil), time.Minute)
	if _, ok := b.Next(); ok {
		t.Error("empty stream yielded a batch")
	}
}

func TestBatcherPanicsOnBadSlide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for slide <= 0")
		}
	}()
	NewBatcher(NewSliceSource(nil), 0)
}

func TestCountBatcher(t *testing.T) {
	fixes := make([]ais.Fix, 10)
	for i := range fixes {
		fixes[i] = fixAt(uint32(i), time.Duration(i)*time.Second)
	}
	cb := NewCountBatcher(NewSliceSource(fixes), 4, time.Minute, t0)
	var sizes []int
	var queries []time.Time
	for {
		batch, ok := cb.Next()
		if !ok {
			break
		}
		sizes = append(sizes, len(batch.Fixes))
		queries = append(queries, batch.Query)
	}
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 2 {
		t.Errorf("sizes = %v, want [4 4 2]", sizes)
	}
	if !queries[0].Equal(t0.Add(time.Minute)) || !queries[2].Equal(t0.Add(3*time.Minute)) {
		t.Errorf("queries = %v", queries)
	}
}

func TestSliceSourceReset(t *testing.T) {
	src := NewSliceSource([]ais.Fix{fixAt(1, 0), fixAt(2, time.Second)})
	n := 0
	for src.Scan() {
		n++
	}
	src.Reset()
	for src.Scan() {
		n++
	}
	if n != 4 {
		t.Errorf("scanned %d fixes across reset, want 4", n)
	}
}

func TestTimeBufferEviction(t *testing.T) {
	var b TimeBuffer[int]
	for i := 0; i < 10; i++ {
		b.Append(t0.Add(time.Duration(i)*time.Minute), i)
	}
	if b.Len() != 10 {
		t.Fatalf("Len = %d", b.Len())
	}
	evicted := b.EvictBefore(t0.Add(4 * time.Minute)) // drops minutes 0..4
	if evicted != 5 {
		t.Errorf("evicted %d, want 5", evicted)
	}
	if b.Len() != 5 {
		t.Errorf("Len = %d, want 5", b.Len())
	}
	ts, v := b.At(0)
	if v != 5 || !ts.Equal(t0.Add(5*time.Minute)) {
		t.Errorf("At(0) = %v, %d", ts, v)
	}
	_, last, ok := b.Last()
	if !ok || last != 9 {
		t.Errorf("Last = %d, %v", last, ok)
	}
}

func TestTimeBufferEvictAll(t *testing.T) {
	var b TimeBuffer[string]
	b.Append(t0, "a")
	b.Append(t0.Add(time.Second), "b")
	b.EvictBefore(t0.Add(time.Hour))
	if b.Len() != 0 {
		t.Errorf("Len = %d after full eviction", b.Len())
	}
	if _, _, ok := b.Last(); ok {
		t.Error("Last ok on empty buffer")
	}
	// Buffer remains usable.
	b.Append(t0.Add(2*time.Second), "c")
	if b.Len() != 1 {
		t.Errorf("Len = %d after reuse", b.Len())
	}
}

func TestTimeBufferEach(t *testing.T) {
	var b TimeBuffer[int]
	for i := 0; i < 5; i++ {
		b.Append(t0.Add(time.Duration(i)*time.Second), i)
	}
	b.EvictBefore(t0) // drops item 0
	var got []int
	b.Each(func(_ time.Time, v int) bool {
		got = append(got, v)
		return v < 3 // stop after 3
	})
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("Each visited %v", got)
	}
}

func TestTimeBufferCompaction(t *testing.T) {
	var b TimeBuffer[int]
	const n = 20000
	for i := 0; i < n; i++ {
		b.Append(t0.Add(time.Duration(i)*time.Second), i)
	}
	// Evict 75% to trigger compaction.
	b.EvictBefore(t0.Add(time.Duration(3*n/4) * time.Second))
	if b.Len() != n/4-1 {
		t.Errorf("Len = %d, want %d", b.Len(), n/4-1)
	}
	_, v := b.At(0)
	if v != 3*n/4+1 {
		t.Errorf("At(0) = %d, want %d", v, 3*n/4+1)
	}
}

func TestDelayerDeterministicAndComplete(t *testing.T) {
	fixes := make([]ais.Fix, 100)
	for i := range fixes {
		fixes[i] = fixAt(uint32(i), time.Duration(i)*time.Minute)
	}
	d := Delayer{MaxDelay: 30 * time.Minute, Fraction: 0.3, Seed: 5}
	out1 := d.Apply(fixes)
	out2 := d.Apply(fixes)
	if len(out1) != len(fixes) {
		t.Fatalf("lost fixes: %d", len(out1))
	}
	for i := range out1 {
		if out1[i].MMSI != out2[i].MMSI {
			t.Fatal("Delayer not deterministic")
		}
	}
	// Occurrence timestamps must be untouched.
	seen := make(map[uint32]time.Time)
	for _, f := range out1 {
		seen[f.MMSI] = f.Time
	}
	for _, f := range fixes {
		if !seen[f.MMSI].Equal(f.Time) {
			t.Fatalf("occurrence time of %d changed", f.MMSI)
		}
	}
	// With a 30-minute max delay and 1-minute spacing some inversions
	// must occur.
	inversions := 0
	for i := 1; i < len(out1); i++ {
		if out1[i].Time.Before(out1[i-1].Time) {
			inversions++
		}
	}
	if inversions == 0 {
		t.Error("Delayer produced no out-of-order deliveries")
	}
}

func TestDelayerZeroConfigIsIdentity(t *testing.T) {
	fixes := []ais.Fix{fixAt(1, 0), fixAt(2, time.Minute), fixAt(3, 2*time.Minute)}
	out := Delayer{}.Apply(fixes)
	for i := range out {
		if out[i].MMSI != fixes[i].MMSI {
			t.Fatal("zero-config Delayer reordered the stream")
		}
	}
}

func TestCollect(t *testing.T) {
	fixes := []ais.Fix{fixAt(1, 0), fixAt(2, time.Second)}
	got, err := Collect(NewSliceSource(fixes))
	if err != nil || len(got) != 2 {
		t.Errorf("Collect = %d fixes, err %v", len(got), err)
	}
}
