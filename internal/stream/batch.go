package stream

import (
	"time"

	"repro/internal/ais"
)

// FixSource is any pull-based producer of cleaned positional fixes.
// *ais.Scanner satisfies it, as does SliceSource.
type FixSource interface {
	Scan() bool
	Fix() ais.Fix
	Err() error
}

// SliceSource replays an in-memory slice of fixes.
type SliceSource struct {
	fixes []ais.Fix
	i     int
}

// NewSliceSource wraps the given fixes; the slice is not copied.
func NewSliceSource(fixes []ais.Fix) *SliceSource {
	return &SliceSource{fixes: fixes}
}

// Scan advances to the next fix.
func (s *SliceSource) Scan() bool {
	if s.i >= len(s.fixes) {
		return false
	}
	s.i++
	return true
}

// Fix returns the current fix.
func (s *SliceSource) Fix() ais.Fix { return s.fixes[s.i-1] }

// Err always returns nil.
func (s *SliceSource) Err() error { return nil }

// Reset rewinds the source to the beginning, for repeated replays in
// benchmarks.
func (s *SliceSource) Reset() { s.i = 0 }

// Batch is the chunk of stream admitted during one slide interval
// (Query-β, Query]: the paper simulates streaming "by consuming this
// positional data little by little, reading small chunks periodically
// according to window specifications" (§5).
// A batch carries its fixes in exactly one of two forms: the
// row-oriented Fixes slice, or the columnar Cols arena filled by
// Batcher.NextInto. Consumers check Cols first; Len abstracts over both.
type Batch struct {
	Fixes []ais.Fix
	Cols  *ais.FixBatch // columnar form; nil on the row path
	Query time.Time     // the query time Q_i closing this slide interval
}

// Len returns the number of fixes in the batch, whichever form it is in.
func (b Batch) Len() int {
	if b.Cols != nil {
		return b.Cols.Len()
	}
	return len(b.Fixes)
}

// Batcher groups a timestamped fix source into consecutive slide
// intervals. Batch boundaries follow the timestamps of the original
// messages, not wall-clock time, exactly as in the paper's replays.
// Slide intervals with no traffic yield empty batches so that window
// cadence (and gap detection) is preserved.
type Batcher struct {
	src     FixSource
	slide   time.Duration
	pending ais.Fix
	started bool
	done    bool
	query   time.Time
}

// NewBatcher wraps src with the given slide step. It panics if slide is
// not positive, which would make the cadence undefined.
func NewBatcher(src FixSource, slide time.Duration) *Batcher {
	if slide <= 0 {
		panic("stream: NewBatcher with non-positive slide")
	}
	return &Batcher{src: src, slide: slide}
}

// NewBatcherFrom wraps src with the first query time pinned to
// start+slide instead of aligned to the first fix. A pipeline resuming
// from a checkpoint taken at query time Q continues on the same slide
// grid: slides between Q and the first replayed fix still yield empty
// batches (preserving gap detection), where a plain NewBatcher would
// re-align to the first fix and silently skip them. start must lie on
// the original run's slide grid.
func NewBatcherFrom(src FixSource, slide time.Duration, start time.Time) *Batcher {
	if slide <= 0 {
		panic("stream: NewBatcherFrom with non-positive slide")
	}
	b := &Batcher{src: src, slide: slide}
	if !b.src.Scan() {
		b.done = true
		return b
	}
	b.pending = b.src.Fix()
	b.query = start.Add(slide)
	b.started = true
	return b
}

// Next returns the next batch and true, or a zero batch and false at
// end of stream. Fixes are assigned to batches by timestamp: a batch
// with query time Q contains fixes with t in (Q-β, Q]. Input is assumed
// to be in non-decreasing timestamp order between batches; a late fix
// older than the current batch start is still delivered in the current
// batch (delayed arrival, handled downstream by the window semantics).
func (b *Batcher) Next() (Batch, bool) {
	if b.done {
		return Batch{}, false
	}
	var out Batch
	if !b.started {
		if !b.src.Scan() {
			b.done = true
			return Batch{}, false
		}
		first := b.src.Fix()
		// Align the first query time to the slide grid so runs with the
		// same data but different β remain comparable.
		b.query = first.Time.Truncate(b.slide).Add(b.slide)
		b.pending = first
		b.started = true
	}
	out.Query = b.query
	if !b.pending.Time.After(b.query) {
		out.Fixes = append(out.Fixes, b.pending)
		for b.src.Scan() {
			f := b.src.Fix()
			if f.Time.After(b.query) {
				b.pending = f
				b.query = b.query.Add(b.slide)
				return out, true
			}
			out.Fixes = append(out.Fixes, f)
		}
		b.done = true
		return out, true
	}
	// The pending fix belongs to a later slide: emit an empty batch.
	b.query = b.query.Add(b.slide)
	return out, true
}

// NextInto is the columnar, allocation-free variant of Next: the next
// slide's fixes are appended into fb (reset first, capacity retained
// across slides) and the returned batch references fb via Cols. The
// batching algorithm — grid alignment, pending spill, empty slides — is
// identical to Next; only the storage form differs. The returned batch
// is valid until the next NextInto call recycles fb.
func (b *Batcher) NextInto(fb *ais.FixBatch) (Batch, bool) {
	if b.done {
		return Batch{}, false
	}
	fb.Reset()
	var out Batch
	if !b.started {
		if !b.src.Scan() {
			b.done = true
			return Batch{}, false
		}
		first := b.src.Fix()
		b.query = first.Time.Truncate(b.slide).Add(b.slide)
		b.pending = first
		b.started = true
	}
	out.Query = b.query
	out.Cols = fb
	if !b.pending.Time.After(b.query) {
		fb.Append(b.pending)
		for b.src.Scan() {
			f := b.src.Fix()
			if f.Time.After(b.query) {
				b.pending = f
				b.query = b.query.Add(b.slide)
				return out, true
			}
			fb.Append(f)
		}
		b.done = true
		return out, true
	}
	// The pending fix belongs to a later slide: emit an empty batch.
	b.query = b.query.Add(b.slide)
	return out, true
}

// CountBatcher groups a fix source into fixed-size chunks of n fixes,
// modelling an inflated arrival rate ρ: with slide β, a chunk of
// n = ρ·β positions arrives per slide regardless of original timestamps
// (the paper's Figure 7 stress test, "admitting bigger chunks of data
// for processing at considerably increased arrival rates").
type CountBatcher struct {
	src   FixSource
	n     int
	slide time.Duration
	query time.Time
	done  bool
}

// NewCountBatcher returns a batcher producing chunks of n fixes. The
// synthetic query times advance by slide per chunk starting at start.
func NewCountBatcher(src FixSource, n int, slide time.Duration, start time.Time) *CountBatcher {
	if n <= 0 {
		panic("stream: NewCountBatcher with non-positive chunk size")
	}
	return &CountBatcher{src: src, n: n, slide: slide, query: start}
}

// Next returns the next chunk of up to n fixes.
func (b *CountBatcher) Next() (Batch, bool) {
	if b.done {
		return Batch{}, false
	}
	out := Batch{Fixes: make([]ais.Fix, 0, b.n)}
	for len(out.Fixes) < b.n && b.src.Scan() {
		out.Fixes = append(out.Fixes, b.src.Fix())
	}
	if len(out.Fixes) == 0 {
		b.done = true
		return Batch{}, false
	}
	b.query = b.query.Add(b.slide)
	out.Query = b.query
	if len(out.Fixes) < b.n {
		b.done = true
	}
	return out, true
}

// Collect drains a fix source into a slice, for tests and offline runs.
func Collect(src FixSource) ([]ais.Fix, error) {
	var out []ais.Fix
	for src.Scan() {
		out = append(out, src.Fix())
	}
	return out, src.Err()
}
