package cluster

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"slices"
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/maritime"
	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/tracker"
)

// CoordinatorConfig assembles the merge tier.
type CoordinatorConfig struct {
	// Workers is the cluster width; a Hello with a different width is
	// rejected.
	Workers int
	// Slide is the cluster's slide step (must match the workers').
	Slide time.Duration
	// WindowRange is the window range ω; it defaults the recognizer's
	// working-memory window when Recognition.Window is zero.
	WindowRange time.Duration
	// Recognition configures the merged CE recognition; Vessels/Areas
	// are the same static world the workers carry.
	Recognition maritime.Config
	Vessels     []maritime.Vessel
	Areas       []maritime.Area
	// QueueCap bounds each worker's pending slide queue (default 64).
	// When the queue of any worker exceeds it — one peer stalled while
	// the rest stream on — the oldest pending slide is force-merged
	// without the laggard's contribution: the stalled worker degrades
	// only its own slice, never the whole merge.
	QueueCap int
	// Hub, when set, receives every merged slide's alerts.
	Hub *serve.Hub
	// Manifests, when set, records a cluster manifest every time a
	// checkpoint query time has been fully reported and merged.
	Manifests *ManifestStore
	// Restore seeds the coordinator from a cluster manifest: recognizer
	// working memory, hub state, and the merge frontier. The workers
	// must be restored to the same generation (Worker.PinSeq).
	Restore *Manifest
	// Analytics arms the cross-vessel analytics tier over the merged
	// critical-point stream, the same tier a single-process system runs
	// — workers disable recognition, so pairwise events exist only here,
	// byte-identical with the single-process run. Ports feed its
	// in-harbor rendezvous suppression.
	Analytics *analytics.Config
	Ports     []mod.PortArea
	// Logf receives lifecycle messages; nil silences them.
	Logf func(format string, args ...any)
}

// ClusterFinal sums the cluster's end-of-run digest.
type ClusterFinal struct {
	Final  WorkerFinal
	Slides int
	Alerts int
}

// CoordinatorStats counts the merge tier's work.
type CoordinatorStats struct {
	SlidesMerged int
	ForcedMerges int
	// DropsByCause ledgers every discarded worker slide: "duplicate"
	// (re-sent below the merge frontier after a worker restart — the
	// exactly-once path working as designed), "late-after-forced-merge"
	// (a stalled worker's output arriving after its slide was forced
	// through without it).
	DropsByCause map[string]int
	Alerts       int
	Manifests    int
}

// workerState is the coordinator's bookkeeping for one slice.
type workerState struct {
	connected bool
	everSeen  bool
	eos       bool
	restarts  int
	final     WorkerFinal
	health    core.Health
	// pending holds received-but-unmerged slides keyed by query time; a
	// worker restart may re-send a queued slide, which overwrites with
	// identical content.
	pending map[time.Time]*SlideOutput
	// maxKnown is the newest query time ever received from this worker
	// — monotone across reconnects, the merge barrier's evidence that
	// the worker has nothing older left to send.
	maxKnown time.Time
	// forcedSkips counts merges that went through without this worker's
	// contribution.
	forcedSkips int
}

// Coordinator accepts worker uplinks, k-way-merges their slide outputs
// deterministically under the (time, MMSI) contract, runs CE
// recognition over the merged event stream, publishes alerts, and
// binds worker checkpoints into cluster manifests. One lock serializes
// merge + recognition + publication, so the alert stream is totally
// ordered no matter which connection's message completed a barrier.
type Coordinator struct {
	cfg       CoordinatorConfig
	rec       *maritime.Recognizer
	factGen   *maritime.FactGenerator
	analytics *analytics.Tier

	mu         sync.Mutex
	workers    []*workerState
	lastMerged time.Time // merge frontier: newest merged query (zero before any)
	slides     int
	stats      CoordinatorStats
	sinks      []core.AlertSink
	finalized  bool
	done       chan struct{}

	metrics *coordinatorMetrics
}

// NewCoordinator builds the merge tier, seeding it from cfg.Restore
// when a manifest generation is being resumed.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 64
	}
	if cfg.Recognition.Window <= 0 {
		cfg.Recognition.Window = cfg.WindowRange
	}
	if cfg.Slide <= 0 {
		return nil, errors.New("cluster: coordinator needs a positive slide")
	}
	c := &Coordinator{
		cfg:  cfg,
		rec:  maritime.NewRecognizer(cfg.Recognition, cfg.Vessels, cfg.Areas),
		done: make(chan struct{}),
	}
	c.stats.DropsByCause = make(map[string]int)
	if cfg.Recognition.Mode == maritime.SpatialFacts {
		closeM := cfg.Recognition.CloseMeters
		if closeM <= 0 {
			closeM = 3000
		}
		c.factGen = maritime.NewFactGenerator(cfg.Areas, closeM)
	}
	if cfg.Analytics != nil {
		c.analytics = analytics.New(*cfg.Analytics, core.PortPolys(cfg.Ports))
	}
	for i := 0; i < cfg.Workers; i++ {
		c.workers = append(c.workers, &workerState{pending: make(map[time.Time]*SlideOutput)})
	}
	if cfg.Restore != nil {
		if cfg.Restore.Workers != cfg.Workers {
			return nil, fmt.Errorf("cluster: manifest for %d workers, coordinator has %d",
				cfg.Restore.Workers, cfg.Workers)
		}
		c.rec.RestoreSnapshot(cfg.Restore.Recognizer)
		c.lastMerged = cfg.Restore.Query
		c.slides = cfg.Restore.Slides
		if cfg.Hub != nil && cfg.Restore.Hub != nil {
			cfg.Hub.Restore(*cfg.Restore.Hub)
		}
		if c.analytics != nil {
			// Lenient like core: a manifest from before the tier existed
			// restores it empty.
			c.analytics.Restore(cfg.Restore.Analytics)
		}
		c.logf("coordinator: restored manifest at %s (%d slides)",
			cfg.Restore.Query.Format(time.RFC3339), cfg.Restore.Slides)
	}
	return c, nil
}

// AddAlertSink registers a consumer of every merged slide report.
// Sinks run under the coordinator's merge lock — in merge order — and
// must not call back into the coordinator.
func (c *Coordinator) AddAlertSink(s core.AlertSink) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sinks = append(c.sinks, s)
}

// Done is closed when every worker has delivered EOS and all pending
// slides are merged.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Final returns the cluster's end-of-run digest; valid after Done.
func (c *Coordinator) Final() ClusterFinal {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := ClusterFinal{Slides: c.slides, Alerts: c.stats.Alerts}
	for _, ws := range c.workers {
		out.Final = out.Final.Add(ws.final)
	}
	return out
}

// Stats snapshots the merge accounting.
func (c *Coordinator) Stats() CoordinatorStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := c.stats
	out.DropsByCause = make(map[string]int, len(c.stats.DropsByCause))
	for k, v := range c.stats.DropsByCause {
		out.DropsByCause[k] = v
	}
	return out
}

// Health folds the workers' reported health into a cluster view: a
// worker that is unreachable (never connected, or dropped before its
// EOS) or stalled behind a forced merge counts as quarantined, which
// degrades the cluster's /healthz state.
func (c *Coordinator) Health() core.Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	var h core.Health
	for _, ws := range c.workers {
		h = h.Merge(ws.health)
		if ws.eos {
			continue
		}
		if !ws.connected || ws.maxKnown.Before(c.lastMerged) && ws.forcedSkips > 0 {
			h.Quarantined++
		}
	}
	h.Restores += c.restartsLocked()
	return h
}

func (c *Coordinator) restartsLocked() int {
	n := 0
	for _, ws := range c.workers {
		n += ws.restarts
	}
	return n
}

// Serve accepts worker uplink connections until ctx is cancelled.
func (c *Coordinator) Serve(ctx context.Context, ln net.Listener) error {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			return fmt.Errorf("cluster: coordinator accept: %w", err)
		}
		go c.handle(conn)
	}
}

// ListenAndServe binds addr (port 0 picks a free one), serves in the
// background, and returns the bound address.
func (c *Coordinator) ListenAndServe(ctx context.Context, addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: coordinator listen %s: %w", addr, err)
	}
	go c.Serve(ctx, ln)
	return ln.Addr(), nil
}

// handle drives one worker connection: Hello, then slides until EOS or
// disconnect.
func (c *Coordinator) handle(conn net.Conn) {
	defer conn.Close()
	r := newWireReader(conn)
	m, err := r.next()
	if err != nil || m.Kind != KindHello || m.Hello == nil {
		c.logf("coordinator: %s: bad greeting (err=%v)", conn.RemoteAddr(), err)
		return
	}
	h := m.Hello
	if h.Workers != c.cfg.Workers || h.Worker < 0 || h.Worker >= c.cfg.Workers {
		c.logf("coordinator: %s: worker %d/%d does not fit a %d-wide cluster — rejected",
			conn.RemoteAddr(), h.Worker, h.Workers, c.cfg.Workers)
		return
	}
	c.mu.Lock()
	ws := c.workers[h.Worker]
	ws.connected = true
	if h.Restarted || ws.everSeen {
		ws.restarts++
	}
	ws.everSeen = true
	c.mu.Unlock()
	c.logf("coordinator: worker %d connected from %s (restarted=%v, %d slides)",
		h.Worker, conn.RemoteAddr(), h.Restarted, h.Slides)

	for {
		m, err := r.next()
		if err != nil {
			c.mu.Lock()
			ws.connected = false
			eos := ws.eos
			c.mu.Unlock()
			if !eos && !errors.Is(err, io.EOF) {
				c.logf("coordinator: worker %d dropped: %v", h.Worker, err)
			}
			return
		}
		switch m.Kind {
		case KindSlide:
			if m.Slide != nil && m.Slide.Worker == h.Worker {
				c.ingest(m.Slide)
			}
		case KindEOS:
			if m.EOS != nil && m.EOS.Worker == h.Worker {
				c.mu.Lock()
				ws.eos = true
				ws.final = m.EOS.Final
				c.mergeLocked()
				c.mu.Unlock()
				c.logf("coordinator: worker %d finished", h.Worker)
			}
		}
	}
}

// ingest queues one worker slide and merges whatever the barrier now
// allows.
func (c *Coordinator) ingest(s *SlideOutput) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ws := c.workers[s.Worker]
	ws.health = s.Health
	if ws.maxKnown.Before(s.Query) {
		ws.maxKnown = s.Query
	}
	if !s.Query.After(c.lastMerged) {
		// Below the merge frontier: a worker restart re-sending slides
		// the cluster already merged (exactly-once dedupe), or a stalled
		// worker's output arriving after its slide was forced through.
		cause := "duplicate"
		if ws.forcedSkips > 0 {
			cause = "late-after-forced-merge"
			ws.forcedSkips--
		}
		c.stats.DropsByCause[cause]++
		return
	}
	ws.pending[s.Query] = s
	c.mergeLocked()
}

// mergeLocked merges every pending slide the barrier allows, oldest
// first. A slide query Q is ready when every worker has either
// finished (eos) or reported a slide at or past Q — workers emit every
// grid slide, including empty ones, so maxKnown ≥ Q proves Q arrived.
// When a queue overflows QueueCap the oldest slide is forced through
// without the laggard.
func (c *Coordinator) mergeLocked() {
	for {
		q, ok := c.oldestPendingLocked()
		if !ok {
			break
		}
		ready := true
		for _, ws := range c.workers {
			if ws.eos || !ws.maxKnown.Before(q) {
				continue
			}
			ready = false
			break
		}
		forced := false
		if !ready {
			if c.maxDepthLocked() <= c.cfg.QueueCap {
				break
			}
			forced = true
		}
		c.mergeOneLocked(q, forced)
	}
	c.maybeFinishLocked()
}

func (c *Coordinator) oldestPendingLocked() (time.Time, bool) {
	var q time.Time
	found := false
	for _, ws := range c.workers {
		for t := range ws.pending {
			if !found || t.Before(q) {
				q = t
				found = true
			}
		}
	}
	return q, found
}

func (c *Coordinator) maxDepthLocked() int {
	depth := 0
	for _, ws := range c.workers {
		if len(ws.pending) > depth {
			depth = len(ws.pending)
		}
	}
	return depth
}

// mergeOneLocked merges the slide at query q: concatenate the workers'
// fresh critical points in worker order, stable-sort by (time, MMSI) —
// per-vessel order is preserved and vessels live in exactly one slice,
// so the merged stream is identical for every worker count — then run
// recognition, publish, and bind a manifest when this query is a fully
// reported checkpoint cut.
func (c *Coordinator) mergeOneLocked(q time.Time, forced bool) {
	rep := core.SlideReport{Query: q}
	var fresh []tracker.CriticalPoint
	ckptSeqs := make([]uint64, c.cfg.Workers)
	ckptCurs := make([]*feed.Cursor, c.cfg.Workers)
	ckptFull := true
	for i, ws := range c.workers {
		s, ok := ws.pending[q]
		if !ok {
			if !ws.eos {
				ws.forcedSkips++
			}
			ckptFull = false
			continue
		}
		delete(ws.pending, q)
		rep.FixesIn += s.FixesIn
		rep.TripsCompleted += s.TripsCompleted
		fresh = append(fresh, s.Fresh...)
		maxTimings(&rep.Timings, s.Timings)
		if s.CkptSeq == 0 {
			ckptFull = false
		} else {
			ckptSeqs[i] = s.CkptSeq
			ckptCurs[i] = s.CkptCursor
		}
	}
	tracker.SortCriticalPoints(fresh)
	rep.CriticalPoints = len(fresh)

	events := maritime.MEStream(fresh)
	var facts []maritime.SpatialFact
	if c.factGen != nil {
		facts = c.factGen.Facts(events)
	}
	t := time.Now()
	rep.Alerts = c.rec.Advance(q, events, facts).Alerts
	rep.Timings.Recognition = time.Since(t)
	slices.SortStableFunc(rep.Alerts, maritime.CompareAlerts)
	if c.analytics != nil {
		t = time.Now()
		pair := c.analytics.Slide(q, fresh)
		rep.Timings.Analytics = time.Since(t)
		if len(pair) > 0 {
			// Same append-then-stable-resort the single-process path uses,
			// so tie order matches byte for byte.
			rep.Alerts = append(rep.Alerts, pair...)
			slices.SortStableFunc(rep.Alerts, maritime.CompareAlerts)
		}
	}

	c.lastMerged = q
	c.slides++
	c.stats.SlidesMerged++
	c.stats.Alerts += len(rep.Alerts)
	if forced {
		c.stats.ForcedMerges++
		c.logf("coordinator: slide %s forced through without a stalled worker", q.Format(time.RFC3339))
	}
	if c.cfg.Hub != nil {
		c.cfg.Hub.Publish(q, rep.Alerts)
	}
	if c.metrics != nil {
		c.metrics.observe(rep)
	}
	rep.Health = c.healthForReportLocked()
	for _, s := range c.sinks {
		s.Consume(rep)
	}

	if c.cfg.Manifests != nil && ckptFull {
		c.writeManifestLocked(q, ckptSeqs, ckptCurs)
	}
}

// healthForReportLocked mirrors Health() without re-taking the lock.
func (c *Coordinator) healthForReportLocked() core.Health {
	var h core.Health
	for _, ws := range c.workers {
		h = h.Merge(ws.health)
		if ws.eos {
			continue
		}
		if !ws.connected || ws.maxKnown.Before(c.lastMerged) && ws.forcedSkips > 0 {
			h.Quarantined++
		}
	}
	h.Restores += c.restartsLocked()
	return h
}

// writeManifestLocked binds the fully reported checkpoint cut at q.
func (c *Coordinator) writeManifestLocked(q time.Time, seqs []uint64, curs []*feed.Cursor) {
	m := &Manifest{
		Query:      q,
		Workers:    c.cfg.Workers,
		WorkerSeqs: seqs,
		Cursor:     mergeCursors(curs),
		Recognizer: c.rec.Snapshot(),
		Slides:     c.slides,
	}
	if c.cfg.Hub != nil {
		snap := c.cfg.Hub.Snapshot()
		m.Hub = &snap
	}
	if c.analytics != nil {
		m.Analytics = c.analytics.Snapshot()
	}
	if err := c.cfg.Manifests.Save(m); err != nil {
		// The previous manifest generation survives; the cluster just
		// restores a little further back.
		c.logf("coordinator: manifest at %s failed: %v", q.Format(time.RFC3339), err)
		return
	}
	c.stats.Manifests++
}

// maybeFinishLocked closes Done once every worker reached EOS with
// nothing pending.
func (c *Coordinator) maybeFinishLocked() {
	if c.finalized {
		return
	}
	for _, ws := range c.workers {
		if !ws.eos || len(ws.pending) > 0 {
			return
		}
	}
	c.finalized = true
	close(c.done)
}

func maxTimings(dst *core.Timings, src core.Timings) {
	if src.Tracking > dst.Tracking {
		dst.Tracking = src.Tracking
	}
	if src.Staging > dst.Staging {
		dst.Staging = src.Staging
	}
	if src.Reconstruction > dst.Reconstruction {
		dst.Reconstruction = src.Reconstruction
	}
	if src.Loading > dst.Loading {
		dst.Loading = src.Loading
	}
	if src.Recognition > dst.Recognition {
		dst.Recognition = src.Recognition
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// coordinatorMetrics is the cluster observability wiring.
type coordinatorMetrics struct {
	alerts *obs.Counter
	merged *obs.Counter
}

func (m *coordinatorMetrics) observe(rep core.SlideReport) {
	m.merged.Inc()
	m.alerts.Add(uint64(len(rep.Alerts)))
}

// RegisterMetrics exposes the cluster's merge-tier series: per-worker
// slide lag and queue depth, forced merges and the drop ledger, worker
// restarts, manifest age, and merge throughput.
func (c *Coordinator) RegisterMetrics(r *obs.Registry) {
	c.mu.Lock()
	c.metrics = &coordinatorMetrics{
		merged: r.Counter("maritime_cluster_slides_merged_total",
			"Cluster slides merged across all workers.", nil),
		alerts: r.Counter("maritime_cluster_alerts_total",
			"Alerts recognized over the merged event stream.", nil),
	}
	c.mu.Unlock()
	r.GaugeFunc("maritime_cluster_workers", "Configured cluster width.", nil,
		func() float64 { return float64(c.cfg.Workers) })
	r.CounterFunc("maritime_cluster_forced_merges_total",
		"Slides force-merged past QueueCap without a stalled worker's contribution.", nil,
		func() float64 { return float64(c.Stats().ForcedMerges) })
	r.CounterFunc("maritime_cluster_manifests_total",
		"Cluster manifests written (fully reported checkpoint cuts).", nil,
		func() float64 { return float64(c.Stats().Manifests) })
	for _, cause := range []string{"duplicate", "late-after-forced-merge"} {
		cause := cause
		r.CounterFunc("maritime_cluster_dropped_slides_total",
			"Worker slide outputs discarded, by cause.",
			obs.Labels{"cause": cause},
			func() float64 { return float64(c.Stats().DropsByCause[cause]) })
	}
	r.CounterFunc("maritime_cluster_worker_restarts_total",
		"Worker reconnects after a restart or connection loss.", nil,
		func() float64 {
			c.mu.Lock()
			defer c.mu.Unlock()
			return float64(c.restartsLocked())
		})
	if c.cfg.Manifests != nil {
		r.GaugeFunc("maritime_cluster_manifest_age_seconds",
			"Age of the newest cluster manifest; rises between checkpoint cuts.", nil,
			func() float64 {
				last := c.cfg.Manifests.LastSave()
				if last.IsZero() {
					return 0
				}
				return time.Since(last).Seconds()
			})
	}
	for i := range c.workers {
		i := i
		labels := obs.Labels{"worker": fmt.Sprintf("%d", i)}
		r.GaugeFunc("maritime_cluster_worker_connected",
			"1 while the worker's uplink is established.", labels,
			func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				if c.workers[i].connected {
					return 1
				}
				return 0
			})
		r.GaugeFunc("maritime_cluster_worker_slide_lag",
			"Slides between the cluster's newest reported query and this worker's.", labels,
			func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				var newest time.Time
				for _, ws := range c.workers {
					if ws.maxKnown.After(newest) {
						newest = ws.maxKnown
					}
				}
				ws := c.workers[i]
				if ws.eos || newest.IsZero() || ws.maxKnown.IsZero() {
					return 0
				}
				return float64(newest.Sub(ws.maxKnown) / c.cfg.Slide)
			})
		r.GaugeFunc("maritime_cluster_merge_queue_depth",
			"Received-but-unmerged slides queued for this worker.", labels,
			func() float64 {
				c.mu.Lock()
				defer c.mu.Unlock()
				return float64(len(c.workers[i].pending))
			})
	}
}
