package cluster

import (
	"os"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/feed"
)

// seedGenerations writes two complete cluster generations — every
// worker checkpointed at seq 1 and 2, one manifest binding each — and
// returns the manifest store and worker directories.
func seedGenerations(t *testing.T, workers int) (*ManifestStore, []string) {
	t.Helper()
	dirs := make([]string, workers)
	base := time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)
	for w := range dirs {
		dirs[w] = t.TempDir()
		mgr, err := checkpoint.NewManager(checkpoint.Options{Dir: dirs[w]})
		if err != nil {
			t.Fatalf("worker %d manager: %v", w, err)
		}
		for gen := 1; gen <= 2; gen++ {
			st := &checkpoint.State{
				Query:  base.Add(time.Duration(gen) * 40 * time.Minute),
				Cursor: feed.Cursor{Sec: int64(gen)},
				Slides: gen * 4,
			}
			if err := mgr.Save(st); err != nil {
				t.Fatalf("worker %d gen %d: %v", w, gen, err)
			}
		}
	}
	store, err := NewManifestStore(t.TempDir(), 3)
	if err != nil {
		t.Fatalf("manifest store: %v", err)
	}
	for gen := 1; gen <= 2; gen++ {
		seqs := make([]uint64, workers)
		for w := range seqs {
			seqs[w] = uint64(gen)
		}
		m := &Manifest{
			Query:      base.Add(time.Duration(gen) * 40 * time.Minute),
			Workers:    workers,
			WorkerSeqs: seqs,
			Slides:     gen * 4,
		}
		if err := store.Save(m); err != nil {
			t.Fatalf("manifest gen %d: %v", gen, err)
		}
	}
	return store, dirs
}

// corrupt truncates the tail off a durable file so its CRC fails.
func corrupt(t *testing.T, path string) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat %s: %v", path, err)
	}
	if err := os.Truncate(path, info.Size()-4); err != nil {
		t.Fatalf("truncate %s: %v", path, err)
	}
}

func TestRestoreClusterPicksNewestGeneration(t *testing.T) {
	store, dirs := seedGenerations(t, 3)
	m, err := RestoreCluster(store, dirs)
	if err != nil {
		t.Fatalf("RestoreCluster: %v", err)
	}
	if m == nil || m.Slides != 8 {
		t.Fatalf("want generation 2 (8 slides), got %+v", m)
	}
}

// A corrupt newest manifest falls back to the previous generation.
func TestRestoreClusterFallsBackPastCorruptManifest(t *testing.T) {
	store, dirs := seedGenerations(t, 3)
	files, err := store.list()
	if err != nil || len(files) != 2 {
		t.Fatalf("want 2 manifests, got %d (err=%v)", len(files), err)
	}
	corrupt(t, files[1].path)
	m, err := RestoreCluster(store, dirs)
	if m == nil || m.Slides != 4 {
		t.Fatalf("want fallback to generation 1 (4 slides), got %+v (err=%v)", m, err)
	}
	if err == nil {
		t.Error("the rejected newest manifest should surface in the joined error")
	}
}

// One unreadable worker checkpoint disqualifies the WHOLE generation:
// the cluster never restores a mixed cut where one worker is on an
// older generation than the rest.
func TestRestoreClusterNeverMixesGenerations(t *testing.T) {
	store, dirs := seedGenerations(t, 3)
	corrupt(t, checkpoint.PathFor(dirs[1], 2))
	m, err := RestoreCluster(store, dirs)
	if m == nil || m.Slides != 4 {
		t.Fatalf("want whole-generation fallback to generation 1, got %+v (err=%v)", m, err)
	}
	for w, seq := range m.WorkerSeqs {
		if seq != 1 {
			t.Errorf("worker %d pinned to seq %d; a coherent fallback pins every worker to 1", w, seq)
		}
		if _, err := checkpoint.Load(checkpoint.PathFor(dirs[w], seq)); err != nil {
			t.Errorf("worker %d's pinned checkpoint does not load: %v", w, err)
		}
	}
}

// Every generation unreadable: no manifest, and the reasons surface.
func TestRestoreClusterAllGenerationsBroken(t *testing.T) {
	store, dirs := seedGenerations(t, 3)
	corrupt(t, checkpoint.PathFor(dirs[0], 2))
	corrupt(t, checkpoint.PathFor(dirs[2], 1))
	m, err := RestoreCluster(store, dirs)
	if m != nil {
		t.Fatalf("restored %+v from a fully broken store", m)
	}
	if err == nil {
		t.Fatal("want the joined rejection reasons, got nil")
	}
}

// An empty manifest directory is a cold start, not an error.
func TestRestoreClusterColdStart(t *testing.T) {
	store, err := NewManifestStore(t.TempDir(), 3)
	if err != nil {
		t.Fatalf("manifest store: %v", err)
	}
	m, err := RestoreCluster(store, []string{t.TempDir(), t.TempDir()})
	if m != nil || err != nil {
		t.Fatalf("cold start: want nil/nil, got %+v / %v", m, err)
	}
}

// A manifest written for a different cluster width never restores.
func TestRestoreClusterRejectsWidthMismatch(t *testing.T) {
	store, dirs := seedGenerations(t, 3)
	wrong := append(dirs, t.TempDir())
	m, err := RestoreCluster(store, wrong)
	if m != nil {
		t.Fatalf("restored a 3-worker manifest into a %d-worker cluster", len(wrong))
	}
	if err == nil {
		t.Fatal("want width-mismatch rejections, got nil")
	}
}
