package cluster

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/maritime"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// A stalled worker must degrade only its own slice: the coordinator
// forces the oldest slide through once the healthy workers' queues pass
// QueueCap, ledgers the laggard's late output, reports the cluster as
// degraded while the stall lasts — and still finishes, with the health
// state recovering once the laggard catches up.
func TestClusterStalledWorkerDegradesGracefully(t *testing.T) {
	sim, raw := testFleet(t, 60, 2)
	fixes := canonFixes(t, raw)
	vessels, areas, ports := core.AdaptWorld(sim)
	gridStart := fixes[0].Time.Truncate(testSlide)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	const workers = 3
	const laggard = 1
	router := NewRouter(RouterOptions{
		Workers:        workers,
		RetainFixes:    len(fixes) + 1,
		KeepaliveEvery: 250 * time.Millisecond,
	})
	addrs, err := router.ListenSlices(ctx, nil)
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}

	// The laggard reaches its slice through a fault proxy that stalls
	// the stream — the wire-level picture of an intermittent link.
	proxy := &faults.Proxy{
		Upstream: addrs[laggard].String(),
		Plan:     faults.Plan{StallEvery: 1000, StallFor: 20 * time.Millisecond},
	}
	addrCh := make(chan net.Addr, 1)
	go proxy.ListenAndServe(ctx, "127.0.0.1:0", addrCh)
	proxyAddr := <-addrCh

	coord, err := NewCoordinator(CoordinatorConfig{
		Workers:     workers,
		Slide:       testSlide,
		WindowRange: time.Hour,
		Recognition: maritime.Config{Window: time.Hour},
		Vessels:     vessels,
		Areas:       areas,
		QueueCap:    2, // overflow quickly so the forced-merge path runs
		Hub:         serve.NewHub(1 << 12),
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	sink := &reportSink{}
	coord.AddAlertSink(sink)
	coordAddr, err := coord.ListenAndServe(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("coordinator listen: %v", err)
	}

	mkWorker := func(i int, routerAddr string) *Worker {
		w, err := NewWorker(WorkerConfig{
			ID:          i,
			Workers:     workers,
			Router:      routerAddr,
			Coordinator: coordAddr.String(),
			System: core.Config{
				Window:      stream.WindowSpec{Range: time.Hour, Slide: testSlide},
				Tracker:     tracker.DefaultParams(),
				Recognition: maritime.Config{Window: time.Hour},
			},
			Vessels:   vessels,
			Areas:     areas,
			Ports:     ports,
			GridStart: gridStart,
		})
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		return w
	}

	var wg sync.WaitGroup
	runWorker := func(w *Worker) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil && ctx.Err() == nil {
				t.Errorf("worker failed: %v", err)
			}
		}()
	}
	defer wg.Wait()
	defer cancel()

	// Healthy workers first; the laggard stays down until the healthy
	// side has already been forced past it.
	for i := 0; i < workers; i++ {
		if i != laggard {
			runWorker(mkWorker(i, addrs[i].String()))
		}
	}
	for _, f := range fixes {
		router.Dispatch(f)
	}
	router.Finish()

	deadline := time.Now().Add(30 * time.Second)
	for coord.Stats().ForcedMerges == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no forced merge happened; stats: %+v", coord.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if state := coord.Health().State(); state != "degraded" {
		t.Errorf("cluster with an absent worker reports health %q, want degraded", state)
	}

	runWorker(mkWorker(laggard, proxyAddr.String()))

	select {
	case <-coord.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("cluster deadlocked waiting for the laggard; stats: %+v", coord.Stats())
	}

	stats := coord.Stats()
	if stats.ForcedMerges == 0 {
		t.Error("no forced merges recorded")
	}
	if stats.DropsByCause["late-after-forced-merge"] == 0 {
		t.Errorf("laggard's late slides were not ledgered: %+v", stats.DropsByCause)
	}
	if stats.SlidesMerged != len(sink.rendered()) {
		t.Errorf("merged %d slides but delivered %d reports", stats.SlidesMerged, sink.count())
	}
	if proxy.Stats().Stalls == 0 {
		t.Error("the fault proxy injected no stalls; the chaos schedule never ran")
	}
	if state := coord.Health().State(); state != "ok" {
		t.Errorf("cluster health did not recover after the laggard caught up: %q", state)
	}
}
