package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/ais"
	"repro/internal/feed"
	"repro/internal/obs"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// RouterOptions configures the partitioning tier.
type RouterOptions struct {
	// Workers is the number of vessel slices (≥ 1).
	Workers int
	// RetainFixes bounds each slice's replay ring, in fixes (default
	// 1<<16). A worker reconnecting with a cursor older than the ring's
	// horizon misses the trimmed prefix; the loss is counted, never
	// silent.
	RetainFixes int
	// KeepaliveEvery emits a "# HB <unix>" comment line on a slice
	// connection that has been idle for this long (default 2s), so a
	// worker with a dead-peer timeout can tell an idle slice from a
	// dead router.
	KeepaliveEvery time.Duration
	// HandshakeWait bounds the wait for the worker's "RESUME <unix>"
	// greeting (default 2s).
	HandshakeWait time.Duration
	// WriteTimeout bounds each flush to a worker; a worker that stops
	// reading for this long is dropped (default 10s) and must
	// reconnect.
	WriteTimeout time.Duration
	// Logf receives lifecycle messages; nil silences them.
	Logf func(format string, args ...any)
}

// RouterSliceStats counts one slice's serving life.
type RouterSliceStats struct {
	Dispatched    int // fixes routed into this slice
	Trimmed       int // fixes dropped off the replay ring's horizon
	ClientsServed int // slice connections accepted
	Resumes       int // RESUME handshakes honored
	ResumeSkipped int // fixes skipped as ≤ a resume cursor
	Heartbeats    int // keepalive lines emitted
	DeadClients   int // connections dropped on a write timeout/error
}

// RouterStats aggregates the router's accounting.
type RouterStats struct {
	Dispatched int
	Slices     []RouterSliceStats
}

// Router partitions a fix stream into per-vessel-slice feeds served
// over the feed wire protocol: each slice listener speaks the same
// line format and RESUME handshake as feed.Server, so workers consume
// their slice through the ordinary reconnecting client with
// exactly-once resume semantics.
type Router struct {
	opt    RouterOptions
	slices []*sliceFeed

	mu     sync.Mutex
	cursor feed.Cursor // upstream cursor over every dispatched fix
}

// NewRouter builds a router with Workers slices.
func NewRouter(opt RouterOptions) *Router {
	if opt.Workers < 1 {
		opt.Workers = 1
	}
	if opt.RetainFixes <= 0 {
		opt.RetainFixes = 1 << 16
	}
	if opt.KeepaliveEvery <= 0 {
		opt.KeepaliveEvery = 2 * time.Second
	}
	if opt.HandshakeWait <= 0 {
		opt.HandshakeWait = 2 * time.Second
	}
	if opt.WriteTimeout <= 0 {
		opt.WriteTimeout = 10 * time.Second
	}
	r := &Router{opt: opt}
	for i := 0; i < opt.Workers; i++ {
		r.slices = append(r.slices, newSliceFeed(opt.RetainFixes))
	}
	return r
}

// Workers returns the slice count.
func (r *Router) Workers() int { return len(r.slices) }

// ListenSlices binds one listener per slice ("host:port", port 0 picks
// a free one; an empty addrs entry defaults to 127.0.0.1:0) and starts
// serving. It returns the bound addresses, indexed by slice.
func (r *Router) ListenSlices(ctx context.Context, addrs []string) ([]net.Addr, error) {
	bound := make([]net.Addr, len(r.slices))
	for i := range r.slices {
		addr := "127.0.0.1:0"
		if i < len(addrs) && addrs[i] != "" {
			addr = addrs[i]
		}
		ln, err := net.Listen("tcp", addr)
		if err != nil {
			return nil, fmt.Errorf("cluster: router slice %d listen %s: %w", i, addr, err)
		}
		bound[i] = ln.Addr()
		go r.serveSlice(ctx, i, ln)
	}
	return bound, nil
}

// serveSlice accepts worker connections for one slice.
func (r *Router) serveSlice(ctx context.Context, i int, ln net.Listener) {
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		r.logf("slice %d: worker %s connected", i, conn.RemoteAddr())
		go r.streamSlice(ctx, i, conn)
	}
}

// Dispatch routes one fix to its slice and advances the upstream
// cursor. Fixes must arrive in the stream's order (non-decreasing
// time), from one goroutine.
func (r *Router) Dispatch(f ais.Fix) {
	r.mu.Lock()
	r.cursor.Note(f)
	r.mu.Unlock()
	r.slices[tracker.ShardOf(f.MMSI, len(r.slices))].append(f)
}

// Finish marks the stream complete: slice connections drain their ring
// and close cleanly, so workers observe an ordinary end of feed.
func (r *Router) Finish() {
	for _, s := range r.slices {
		s.finish()
	}
}

// Run dispatches an entire fix source and finishes. It is the router's
// ingest loop: src is typically a feed client on the upstream AIS feed
// or an archive replay.
func (r *Router) Run(ctx context.Context, src stream.FixSource) error {
	defer r.Finish()
	for src.Scan() {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		r.Dispatch(src.Fix())
	}
	return src.Err()
}

// Cursor returns the upstream resume cursor covering every dispatched
// fix — what the router itself would hand an upstream RESUME handshake
// after a restart.
func (r *Router) Cursor() feed.Cursor {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cursor.Clone()
}

// Stats snapshots the router's accounting.
func (r *Router) Stats() RouterStats {
	out := RouterStats{Slices: make([]RouterSliceStats, len(r.slices))}
	for i, s := range r.slices {
		out.Slices[i] = s.stats()
		out.Dispatched += out.Slices[i].Dispatched
	}
	return out
}

func (r *Router) logf(format string, args ...any) {
	if r.opt.Logf != nil {
		r.opt.Logf(format, args...)
	}
}

// RegisterMetrics exposes the router's per-slice partition series:
// throughput, replay-ring trims, resumes, heartbeats, and dropped
// workers.
func (r *Router) RegisterMetrics(reg *obs.Registry) {
	for i := range r.slices {
		s := r.slices[i]
		labels := obs.Labels{"slice": strconv.Itoa(i)}
		get := func(f func(RouterSliceStats) int) func() float64 {
			return func() float64 { return float64(f(s.stats())) }
		}
		reg.CounterFunc("maritime_cluster_router_dispatched_total",
			"Fixes routed into this vessel slice.", labels,
			get(func(st RouterSliceStats) int { return st.Dispatched }))
		reg.CounterFunc("maritime_cluster_router_trimmed_total",
			"Fixes dropped off this slice's replay ring horizon.", labels,
			get(func(st RouterSliceStats) int { return st.Trimmed }))
		reg.CounterFunc("maritime_cluster_router_resumes_total",
			"RESUME handshakes honored on this slice.", labels,
			get(func(st RouterSliceStats) int { return st.Resumes }))
		reg.CounterFunc("maritime_cluster_router_heartbeats_total",
			"Keepalive lines emitted to idle workers on this slice.", labels,
			get(func(st RouterSliceStats) int { return st.Heartbeats }))
		reg.CounterFunc("maritime_cluster_router_dead_clients_total",
			"Worker connections dropped on a write timeout or error.", labels,
			get(func(st RouterSliceStats) int { return st.DeadClients }))
	}
}

// streamSlice serves one worker connection: RESUME handshake, replay
// from the ring, then follow the live stream with idle heartbeats.
func (r *Router) streamSlice(ctx context.Context, i int, conn net.Conn) {
	defer conn.Close()
	s := r.slices[i]
	s.count(func(st *RouterSliceStats) { st.ClientsServed++ })
	cursor := r.handshake(i, conn)

	w := newLineWriter(conn, r.opt.WriteTimeout)
	pos, skipped := s.resumePos(cursor)
	if skipped > 0 {
		s.count(func(st *RouterSliceStats) { st.ResumeSkipped += skipped })
	}
	for {
		if ctx.Err() != nil {
			return
		}
		fixes, next, done, notify := s.window(pos)
		for _, f := range fixes {
			if err := w.writeFix(f); err != nil {
				s.count(func(st *RouterSliceStats) { st.DeadClients++ })
				r.logf("slice %d: worker %s dropped: %v", i, conn.RemoteAddr(), err)
				return
			}
		}
		pos = next
		if err := w.flush(); err != nil {
			s.count(func(st *RouterSliceStats) { st.DeadClients++ })
			r.logf("slice %d: worker %s dropped: %v", i, conn.RemoteAddr(), err)
			return
		}
		if done {
			r.logf("slice %d: worker %s finished (%d fixes)", i, conn.RemoteAddr(), pos)
			return
		}
		if len(fixes) == 0 {
			// Caught up on a live stream: wait for traffic, heartbeating
			// so the worker's dead-peer detector stays quiet.
			select {
			case <-ctx.Done():
				return
			case <-notify:
			case <-time.After(r.opt.KeepaliveEvery):
				if err := w.heartbeat(); err != nil {
					s.count(func(st *RouterSliceStats) { st.DeadClients++ })
					return
				}
				s.count(func(st *RouterSliceStats) { st.Heartbeats++ })
			}
		}
	}
}

// handshake reads the worker's "RESUME <unix>" greeting, mirroring
// feed.Server's semantics: nil means full replay.
func (r *Router) handshake(i int, conn net.Conn) *int64 {
	conn.SetReadDeadline(time.Now().Add(r.opt.HandshakeWait))
	defer conn.SetReadDeadline(time.Time{})
	line := make([]byte, 0, 32)
	buf := make([]byte, 1)
	for len(line) < 64 {
		if _, err := conn.Read(buf); err != nil {
			return nil
		}
		if buf[0] == '\n' {
			break
		}
		line = append(line, buf[0])
	}
	fields := strings.Fields(string(line))
	if len(fields) != 2 || fields[0] != "RESUME" {
		return nil
	}
	cursor, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || cursor < 0 {
		return nil
	}
	r.slices[i].count(func(st *RouterSliceStats) { st.Resumes++ })
	r.logf("slice %d: worker %s resumes after %d", i, conn.RemoteAddr(), cursor)
	return &cursor
}

// sliceFeed is one slice's bounded replay ring plus live fan-out. Fixes
// are indexed by a monotone sequence; the ring holds [start, start+len)
// and trims its oldest entries when full.
type sliceFeed struct {
	mu     sync.Mutex
	buf    []ais.Fix
	start  int // sequence number of buf[0]
	bound  int
	done   bool
	notify chan struct{}
	st     RouterSliceStats
}

func newSliceFeed(bound int) *sliceFeed {
	return &sliceFeed{bound: bound, notify: make(chan struct{})}
}

func (s *sliceFeed) append(f ais.Fix) {
	s.mu.Lock()
	s.buf = append(s.buf, f)
	s.st.Dispatched++
	if len(s.buf) > s.bound {
		n := len(s.buf) - s.bound
		s.buf = s.buf[n:]
		s.start += n
		s.st.Trimmed += n
	}
	close(s.notify)
	s.notify = make(chan struct{})
	s.mu.Unlock()
}

func (s *sliceFeed) finish() {
	s.mu.Lock()
	s.done = true
	close(s.notify)
	s.notify = make(chan struct{})
	s.mu.Unlock()
}

// resumePos returns the ring position of the first fix strictly newer
// than the cursor, and how many retained fixes the cursor skips.
func (s *sliceFeed) resumePos(cursor *int64) (pos, skipped int) {
	if cursor == nil {
		return 0, 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i := 0
	for i < len(s.buf) && s.buf[i].Time.Unix() <= *cursor {
		i++
	}
	return s.start + i, i
}

// window copies the retained fixes at and after pos, returning the next
// position, whether the stream is complete past it, and a channel that
// signals the next append.
func (s *sliceFeed) window(pos int) (fixes []ais.Fix, next int, done bool, notify chan struct{}) {
	s.mu.Lock()
	defer s.mu.Unlock()
	i := pos - s.start
	if i < 0 {
		// The requested position fell off the ring's horizon; resume at
		// the oldest retained fix. The trimmed prefix is already counted.
		i = 0
	}
	if i < len(s.buf) {
		fixes = append(fixes, s.buf[i:]...)
	}
	// The window always extends to the newest retained fix, so once the
	// stream is finished the returned batch completes the replay.
	next = s.start + len(s.buf)
	return fixes, next, s.done, s.notify
}

func (s *sliceFeed) count(fn func(*RouterSliceStats)) {
	s.mu.Lock()
	fn(&s.st)
	s.mu.Unlock()
}

func (s *sliceFeed) stats() RouterSliceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}

// lineWriter renders fixes in the feed wire protocol's CSV form with a
// per-flush write deadline.
type lineWriter struct {
	conn    net.Conn
	w       *strings.Builder
	timeout time.Duration
}

func newLineWriter(conn net.Conn, timeout time.Duration) *lineWriter {
	return &lineWriter{conn: conn, w: &strings.Builder{}, timeout: timeout}
}

func (l *lineWriter) writeFix(f ais.Fix) error {
	if err := ais.WriteFixCSV(l.w, f); err != nil {
		return err
	}
	if l.w.Len() >= 32*1024 {
		return l.flush()
	}
	return nil
}

func (l *lineWriter) heartbeat() error {
	fmt.Fprintf(l.w, "# HB %d\n", time.Now().Unix())
	return l.flush()
}

func (l *lineWriter) flush() error {
	if l.w.Len() == 0 {
		return nil
	}
	if err := l.conn.SetWriteDeadline(time.Now().Add(l.timeout)); err != nil {
		return err
	}
	_, err := l.conn.Write([]byte(l.w.String()))
	l.w.Reset()
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			return fmt.Errorf("write timeout after %s: %w", l.timeout, err)
		}
	}
	return err
}
