package cluster

import (
	"bytes"
	"cmp"
	"context"
	"fmt"
	"slices"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// The cluster's headline contract: the same stream pushed through one
// process and through a router + N workers + coordinator must produce
// byte-identical observable output — per-slide critical point counts,
// trips, alerts, and the end-of-run archival digest — including when
// one worker is killed mid-run and restored from its checkpoint.

const testSlide = 10 * time.Minute

// testFleet builds a deterministic world and its fix stream.
func testFleet(t *testing.T, vessels, hours int) (*fleetsim.Simulator, []ais.Fix) {
	t.Helper()
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = vessels
	cfg.Duration = time.Duration(hours) * time.Hour
	sim := fleetsim.NewSimulator(cfg)
	fixes := sim.Run()
	if len(fixes) == 0 {
		t.Fatal("simulator produced no fixes")
	}
	return sim, fixes
}

// canonFixes round-trips the fixes through the feed wire's CSV form, so
// the reference run sees exactly the coordinate rounding the cluster's
// workers receive over the router sockets. The rounding is idempotent:
// the router re-serializing a canonical fix reproduces it bit-for-bit.
func canonFixes(t *testing.T, fixes []ais.Fix) []ais.Fix {
	t.Helper()
	var buf bytes.Buffer
	for _, f := range fixes {
		if err := ais.WriteFixCSV(&buf, f); err != nil {
			t.Fatalf("canonicalizing fixes: %v", err)
		}
	}
	out, err := stream.Collect(ais.NewScanner(&buf))
	if err != nil {
		t.Fatalf("re-reading canonical fixes: %v", err)
	}
	if len(out) != len(fixes) {
		t.Fatalf("canonical round-trip lost fixes: %d in, %d out", len(fixes), len(out))
	}
	return out
}

// orderAlerts is a full total order: CompareAlerts (time, CE, area)
// broken by vessel pair, so digests are insensitive to the emission
// order of same-instant alerts from different vessels.
func orderAlerts(a, b maritime.Alert) int {
	if d := maritime.CompareAlerts(a, b); d != 0 {
		return d
	}
	if d := cmp.Compare(a.Vessel, b.Vessel); d != 0 {
		return d
	}
	return cmp.Compare(a.Vessel2, b.Vessel2)
}

// renderSlide canonicalizes one slide's observable output.
func renderSlide(rep core.SlideReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Q=%s fixes=%d cps=%d trips=%d alerts=[",
		rep.Query.UTC().Format(time.RFC3339), rep.FixesIn, rep.CriticalPoints, rep.TripsCompleted)
	alerts := slices.Clone(rep.Alerts)
	slices.SortFunc(alerts, orderAlerts)
	for i, a := range alerts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s@%s@%s@%d", a.CE, a.AreaID, a.Time.UTC().Format(time.RFC3339), a.Vessel)
		if a.Vessel2 != 0 {
			fmt.Fprintf(&b, "+%d", a.Vessel2)
		}
	}
	b.WriteByte(']')
	return b.String()
}

// renderFinal canonicalizes a single-process run's archival digest.
func renderFinal(sys *core.System) string {
	t4 := sys.Store().Table4Stats()
	st := sys.Tracker().Stats()
	return fmt.Sprintf("trips=%d trajPoints=%d staged=%d fixes=%d critical=%d",
		t4.Trips, t4.PointsInTrajectories, t4.PointsInStaging, st.FixesIn, st.Critical)
}

// renderClusterFinal mirrors renderFinal over the summed worker digest.
func renderClusterFinal(f ClusterFinal) string {
	return fmt.Sprintf("trips=%d trajPoints=%d staged=%d fixes=%d critical=%d",
		f.Final.Trips, f.Final.TrajPoints, f.Final.Staged, f.Final.FixesIn, f.Final.Critical)
}

// referenceRun processes the whole stream in one process, recognition
// on — the ground truth the cluster must reproduce.
func referenceRun(t *testing.T, sim *fleetsim.Simulator, fixes []ais.Fix) ([]string, string) {
	t.Helper()
	vessels, areas, ports := core.AdaptWorld(sim)
	sys := core.NewSystem(core.Config{
		Window:        stream.WindowSpec{Range: time.Hour, Slide: testSlide},
		Tracker:       tracker.DefaultParams(),
		Recognition:   maritime.Config{Window: time.Hour},
		TrackerShards: 3,
	}, vessels, areas, ports)
	defer sys.Close()
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), testSlide)
	var out []string
	var last time.Time
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		rep := sys.ProcessBatch(b)
		out = append(out, renderSlide(rep))
		last = rep.Query
	}
	sys.Drain(last)
	return out, renderFinal(sys)
}

// reportSink collects merged slide reports in merge order.
type reportSink struct {
	mu   sync.Mutex
	reps []core.SlideReport
}

func (s *reportSink) Consume(rep core.SlideReport) {
	s.mu.Lock()
	s.reps = append(s.reps, rep)
	s.mu.Unlock()
}

func (s *reportSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.reps)
}

func (s *reportSink) rendered() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, len(s.reps))
	for i, r := range s.reps {
		out[i] = renderSlide(r)
	}
	return out
}

// clusterOpts parameterizes one cluster run.
type clusterOpts struct {
	workers   int
	queueCap  int // 0: large (1024) so equivalence runs never force a merge
	hub       *serve.Hub
	analytics bool // enable the coordinator's pairwise analytics tier

	ckptDirs  []string // per-worker; enables checkpointing when set
	ckptEvery int
	manifests *ManifestStore
	restore   *Manifest // coordinator manifest restore
	pinSeqs   []uint64  // per-worker pinned checkpoint generations

	// killSlide > 0: pause dispatch after slide killSlide is merged,
	// SIGKILL worker killWorker (cancel its context), restart it from
	// its newest checkpoint, then stream the rest.
	killSlide  int
	killWorker int
	// stopSlide > 0: pause dispatch after slide stopSlide is merged and
	// tear the whole cluster down — phase one of a manifest restore.
	stopSlide int
}

type clusterResult struct {
	slides []string
	final  ClusterFinal
	stats  CoordinatorStats
	health core.Health
	router *Router
	coord  *Coordinator
}

// runCluster drives one full cluster run: router + coordinator + N
// in-process workers over loopback TCP.
func runCluster(t *testing.T, sim *fleetsim.Simulator, fixes []ais.Fix, o clusterOpts) clusterResult {
	t.Helper()
	vessels, areas, ports := core.AdaptWorld(sim)
	gridStart := fixes[0].Time.Truncate(testSlide)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	router := NewRouter(RouterOptions{
		Workers:        o.workers,
		RetainFixes:    len(fixes) + 1, // tests replay killed workers from the full ring
		KeepaliveEvery: 250 * time.Millisecond,
	})
	addrs, err := router.ListenSlices(ctx, nil)
	if err != nil {
		t.Fatalf("router listen: %v", err)
	}
	queueCap := o.queueCap
	if queueCap == 0 {
		queueCap = 1024
	}
	coordCfg := CoordinatorConfig{
		Workers:     o.workers,
		Slide:       testSlide,
		WindowRange: time.Hour,
		Recognition: maritime.Config{Window: time.Hour},
		Vessels:     vessels,
		Areas:       areas,
		QueueCap:    queueCap,
		Hub:         o.hub,
		Manifests:   o.manifests,
		Restore:     o.restore,
		Logf:        t.Logf,
	}
	if o.analytics {
		coordCfg.Analytics = &analytics.Config{EnableCollision: true}
		coordCfg.Ports = ports
	}
	coord, err := NewCoordinator(coordCfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	sink := &reportSink{}
	coord.AddAlertSink(sink)
	coordAddr, err := coord.ListenAndServe(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatalf("coordinator listen: %v", err)
	}

	mkWorker := func(i int) *Worker {
		cfg := WorkerConfig{
			ID:          i,
			Workers:     o.workers,
			Router:      addrs[i].String(),
			Coordinator: coordAddr.String(),
			System: core.Config{
				Window:      stream.WindowSpec{Range: time.Hour, Slide: testSlide},
				Tracker:     tracker.DefaultParams(),
				Recognition: maritime.Config{Window: time.Hour},
			},
			Vessels:   vessels,
			Areas:     areas,
			Ports:     ports,
			GridStart: gridStart,
		}
		if len(o.ckptDirs) == o.workers && o.ckptDirs[i] != "" {
			cfg.CheckpointDir = o.ckptDirs[i]
			cfg.CheckpointEvery = o.ckptEvery
		}
		if len(o.pinSeqs) == o.workers {
			cfg.PinSeq = o.pinSeqs[i]
		}
		w, err := NewWorker(cfg)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		return w
	}

	var wg sync.WaitGroup
	errCh := make(chan error, o.workers+2)
	start := func(w *Worker, wctx context.Context, exited chan struct{}) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if exited != nil {
				defer close(exited)
			}
			if err := w.Run(wctx); err != nil && wctx.Err() == nil {
				errCh <- err
			}
		}()
	}

	victimCtx, victimCancel := context.WithCancel(ctx)
	defer victimCancel()
	victimExited := make(chan struct{})
	for i := 0; i < o.workers; i++ {
		w := mkWorker(i)
		if o.killSlide > 0 && i == o.killWorker {
			start(w, victimCtx, victimExited)
		} else {
			start(w, ctx, nil)
		}
	}

	waitMerged := func(n int) {
		deadline := time.Now().Add(60 * time.Second)
		for sink.count() < n {
			select {
			case err := <-errCh:
				t.Fatalf("worker failed: %v", err)
			default:
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %d merged slides (have %d)", n, sink.count())
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Dispatch; when a kill/stop point is set, pause once every slide up
	// to it has been merged. The prefix extends half a slide past the
	// pause query so every worker's batcher sees the trigger fix that
	// flushes that slide.
	split := len(fixes)
	if pause := max(o.killSlide, o.stopSlide); pause > 0 {
		pauseQ := gridStart.Add(time.Duration(pause) * testSlide).Add(testSlide / 2)
		for i, f := range fixes {
			if f.Time.After(pauseQ) {
				split = i
				break
			}
		}
	}
	for _, f := range fixes[:split] {
		router.Dispatch(f)
	}

	if o.stopSlide > 0 {
		waitMerged(o.stopSlide)
		cancel()
		wg.Wait()
		return clusterResult{
			slides: sink.rendered(),
			final:  coord.Final(),
			stats:  coord.Stats(),
			health: coord.Health(),
			router: router,
			coord:  coord,
		}
	}

	if o.killSlide > 0 {
		waitMerged(o.killSlide)
		victimCancel()
		select {
		case <-victimExited:
		case <-time.After(15 * time.Second):
			t.Fatal("killed worker did not exit")
		}
		w2 := mkWorker(o.killWorker)
		if w2.base == nil {
			t.Fatalf("restarted worker %d found no checkpoint to restore", o.killWorker)
		}
		start(w2, ctx, nil)
	}

	for _, f := range fixes[split:] {
		router.Dispatch(f)
	}
	router.Finish()

	select {
	case <-coord.Done():
	case err := <-errCh:
		t.Fatalf("worker failed: %v", err)
	case <-time.After(120 * time.Second):
		t.Fatalf("cluster did not finish; merged %d slides", sink.count())
	}
	res := clusterResult{
		slides: sink.rendered(),
		final:  coord.Final(),
		stats:  coord.Stats(),
		health: coord.Health(),
		router: router,
		coord:  coord,
	}
	cancel()
	wg.Wait()
	return res
}

// compareSlides asserts two rendered slide sequences are identical.
func compareSlides(t *testing.T, label string, want, got []string) {
	t.Helper()
	n := min(len(want), len(got))
	for i := 0; i < n; i++ {
		if want[i] != got[i] {
			t.Fatalf("%s: slide %d diverged:\n  want %s\n  got  %s", label, i+1, want[i], got[i])
		}
	}
	if len(want) != len(got) {
		t.Fatalf("%s: slide count diverged: want %d, got %d", label, len(want), len(got))
	}
}

// drainEnvelopes collects every queued hub envelope.
func drainEnvelopes(sub *serve.Subscriber) []serve.Envelope {
	var out []serve.Envelope
	for {
		env, ok, timedOut := sub.NextTimeout(200 * time.Millisecond)
		if timedOut || !ok {
			return out
		}
		out = append(out, env)
	}
}

// TestClusterMatchesSingleProcess is the golden equivalence check: one
// process, a 1-worker cluster and a 3-worker cluster must all produce
// the same per-slide output and final archival digest.
func TestClusterMatchesSingleProcess(t *testing.T) {
	sim, raw := testFleet(t, 120, 4)
	fixes := canonFixes(t, raw)
	refSlides, refFinal := referenceRun(t, sim, fixes)

	for _, workers := range []int{1, 3} {
		res := runCluster(t, sim, fixes, clusterOpts{workers: workers})
		label := fmt.Sprintf("cluster(%d)", workers)
		compareSlides(t, label, refSlides, res.slides)
		if got := renderClusterFinal(res.final); got != refFinal {
			t.Errorf("%s final digest diverged:\n  want %s\n  got  %s", label, refFinal, got)
		}
		if res.stats.ForcedMerges != 0 {
			t.Errorf("%s forced %d merges on a healthy run", label, res.stats.ForcedMerges)
		}
		if res.health.State() != "ok" {
			t.Errorf("%s finished with health %q", label, res.health.State())
		}
		if disp := res.router.Stats().Dispatched; disp != len(fixes) {
			t.Errorf("%s router dispatched %d of %d fixes", label, disp, len(fixes))
		}
	}
}

// TestClusterKillWorkerRestore kills one worker mid-run, restores it
// from its newest checkpoint, and requires the merged output to stay
// byte-identical — with the re-sent slides deduplicated, the restart
// counted, and the SSE hub delivering every alert exactly once.
func TestClusterKillWorkerRestore(t *testing.T) {
	sim, raw := testFleet(t, 120, 4)
	fixes := canonFixes(t, raw)
	refSlides, refFinal := referenceRun(t, sim, fixes)

	cleanHub := serve.NewHub(1 << 15)
	cleanSub := cleanHub.Subscribe(serve.Filter{}, 1<<15)
	clean := runCluster(t, sim, fixes, clusterOpts{workers: 3, hub: cleanHub})
	compareSlides(t, "clean cluster(3)", refSlides, clean.slides)

	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	killHub := serve.NewHub(1 << 15)
	killSub := killHub.Subscribe(serve.Filter{}, 1<<15)
	killed := runCluster(t, sim, fixes, clusterOpts{
		workers:    3,
		hub:        killHub,
		ckptDirs:   dirs,
		ckptEvery:  4,
		killSlide:  6,
		killWorker: 1,
	})

	compareSlides(t, "kill-and-restore cluster(3)", refSlides, killed.slides)
	if got := renderClusterFinal(killed.final); got != refFinal {
		t.Errorf("kill-and-restore final digest diverged:\n  want %s\n  got  %s", refFinal, got)
	}
	if killed.stats.DropsByCause["duplicate"] == 0 {
		t.Error("restored worker re-sent no slides: the kill happened after EOS or dedupe never ran")
	}
	if killed.health.Restores == 0 {
		t.Error("coordinator did not count the worker restart")
	}

	// Exactly-once SSE: both runs must deliver the same envelopes, with
	// contiguous hub sequence numbers — no duplicates, no gaps.
	cleanEnvs := drainEnvelopes(cleanSub)
	killEnvs := drainEnvelopes(killSub)
	if len(cleanEnvs) == 0 {
		t.Fatal("clean run published no alerts; the SSE comparison is vacuous")
	}
	if len(killEnvs) != len(cleanEnvs) {
		t.Fatalf("SSE delivery count diverged: clean %d, kill-and-restore %d", len(cleanEnvs), len(killEnvs))
	}
	for i := range cleanEnvs {
		c, k := cleanEnvs[i], killEnvs[i]
		if c.Seq != k.Seq || !c.Slide.Equal(k.Slide) || c.Alert != k.Alert {
			t.Fatalf("SSE envelope %d diverged: clean seq=%d %v, kill seq=%d %v",
				i, c.Seq, c.Alert, k.Seq, k.Alert)
		}
		if i > 0 && k.Seq != killEnvs[i-1].Seq+1 {
			t.Fatalf("SSE sequence gap after %d: next %d", killEnvs[i-1].Seq, k.Seq)
		}
	}
}

// TestClusterManifestRestore tears the whole cluster down mid-run and
// restores every tier from the newest cluster manifest: workers pinned
// to the manifest's checkpoint generation, the coordinator's recognizer
// and hub state reloaded, and the combined output identical to an
// uninterrupted run.
func TestClusterManifestRestore(t *testing.T) {
	sim, raw := testFleet(t, 120, 4)
	fixes := canonFixes(t, raw)
	refSlides, refFinal := referenceRun(t, sim, fixes)

	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	manifestDir := t.TempDir()
	store, err := NewManifestStore(manifestDir, 3)
	if err != nil {
		t.Fatalf("manifest store: %v", err)
	}
	hub1 := serve.NewHub(1 << 15)
	phase1 := runCluster(t, sim, fixes, clusterOpts{
		workers:   3,
		hub:       hub1,
		ckptDirs:  dirs,
		ckptEvery: 4,
		manifests: store,
		stopSlide: 6,
	})
	if phase1.stats.Manifests == 0 {
		t.Fatal("no manifest was bound before the shutdown")
	}

	m, err := RestoreCluster(store, dirs)
	if err != nil {
		t.Fatalf("RestoreCluster: %v", err)
	}
	if m == nil {
		t.Fatal("RestoreCluster found nothing to restore")
	}
	if m.Slides == 0 || m.Slides > len(phase1.slides) {
		t.Fatalf("manifest covers %d slides, phase 1 merged %d", m.Slides, len(phase1.slides))
	}

	hub2 := serve.NewHub(1 << 15)
	sub2 := hub2.Subscribe(serve.Filter{}, 1<<15)
	phase2 := runCluster(t, sim, fixes, clusterOpts{
		workers:   3,
		hub:       hub2,
		ckptDirs:  dirs,
		ckptEvery: 4,
		manifests: store,
		restore:   m,
		pinSeqs:   m.WorkerSeqs,
	})

	combined := append(slices.Clone(refSlides[:m.Slides]), phase2.slides...)
	compareSlides(t, "manifest restore", refSlides, combined)
	if got := renderClusterFinal(phase2.final); got != refFinal {
		t.Errorf("manifest-restored final digest diverged:\n  want %s\n  got  %s", refFinal, got)
	}

	// The restored hub continues the sequence from the manifest's
	// snapshot: the first post-restore delivery follows it with no gap.
	if m.Hub == nil {
		t.Fatal("manifest carried no hub snapshot")
	}
	envs := drainEnvelopes(sub2)
	for i, e := range envs {
		want := m.Hub.Seq + uint64(i+1)
		if e.Seq != want {
			t.Fatalf("restored hub sequence diverged at %d: want %d, got %d", i, want, e.Seq)
		}
	}
}
