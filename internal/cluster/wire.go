// Package cluster scales the surveillance pipeline across processes:
// a router tier partitions the live AIS stream by MMSI hash (the same
// fmix32 boundary the in-process tracker shards use) and serves each
// vessel slice over the feed wire protocol; worker processes run
// tracking and archival for their slice and ship per-slide outputs
// upstream; a coordinator k-way-merges the slide outputs
// deterministically under the (time, MMSI) contract, runs complex
// event recognition over the merged event stream, publishes into the
// serve hub, and binds per-worker checkpoints plus the router cursor
// into one atomic cluster manifest.
//
// Recognition runs at the coordinator, not in the workers, because
// several maritime CEs aggregate across vessels (suspicious counts the
// stopped vessels near an area; illegalFishing termination requires
// zero fishing activity near the area): a vessel-sliced recognizer
// cannot see them. Trajectory detection and trip archival are
// per-vessel and stay in the workers — they carry the bulk of the
// per-fix cost.
package cluster

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/feed"
	"repro/internal/tracker"
)

const (
	// wireMagic/wireVersion frame every worker→coordinator message: the
	// durable framing layer's CRC turns a torn TCP stream into a typed
	// error instead of a misparsed message.
	wireMagic   = "MARSLIDE"
	wireVersion = 1
)

// Message is the worker→coordinator uplink envelope. Exactly one of
// Hello, Slide, EOS is set, selected by Kind.
type Message struct {
	Kind  Kind
	Hello *Hello
	Slide *SlideOutput
	EOS   *EOS
}

// Kind discriminates uplink messages.
type Kind int

const (
	// KindHello introduces a worker connection (first message).
	KindHello Kind = iota + 1
	// KindSlide carries one processed slide's output.
	KindSlide
	// KindEOS announces that the worker's slice stream ended cleanly.
	KindEOS
)

// Hello is the first message on every worker connection — both a fresh
// start and a reconnect after a worker restart.
type Hello struct {
	// Worker is the slice index in [0, Workers).
	Worker int
	// Workers is the cluster width the worker was configured with; the
	// coordinator rejects a mismatch instead of merging a mis-sliced
	// stream.
	Workers int
	// Slides is how many slides the worker's restored checkpoint covers
	// (0 on cold start).
	Slides int
	// Query is the restored checkpoint's query time (zero on cold
	// start).
	Query time.Time
	// Restarted marks a worker that came back from a checkpoint; the
	// coordinator counts it as a worker restart.
	Restarted bool
}

// SlideOutput is one window slide processed by one worker: the slice's
// share of the slide's fixes and the fresh critical points trajectory
// detection emitted — the input of the coordinator's merged
// recognition.
type SlideOutput struct {
	Worker         int
	Query          time.Time
	FixesIn        int
	TripsCompleted int
	// Fresh holds the slide's critical points in the worker's emission
	// order (per-vessel chronological).
	Fresh []tracker.CriticalPoint
	// Timings carries the worker-side stage costs for observability.
	Timings core.Timings
	// Health is the worker's cumulative health snapshot as of this
	// slide; the coordinator merges it into the cluster's.
	Health core.Health

	// Checkpoint bookkeeping, set on slides where the worker saved a
	// checkpoint: the sequence number, and the resume cursor covering
	// exactly the fixes folded into it. The coordinator binds the
	// per-worker sequences of one checkpoint query time into a cluster
	// manifest.
	CkptSeq    uint64
	CkptCursor *feed.Cursor
}

// EOS closes a worker's stream: its slice replay finished and the
// worker drained its archival state.
type EOS struct {
	Worker int
	// Final is the worker's end-of-stream archival digest, summed by
	// the coordinator into the cluster total.
	Final WorkerFinal
}

// WorkerFinal mirrors the end-of-run archival statistics the recovery
// harness compares (store Table 4 plus tracker totals).
type WorkerFinal struct {
	Trips        int
	TrajPoints   int
	Staged       int
	FixesIn      int
	Critical     int
	LateAccepted int
	LateDropped  int
}

// Add returns the element-wise sum.
func (f WorkerFinal) Add(o WorkerFinal) WorkerFinal {
	return WorkerFinal{
		Trips:        f.Trips + o.Trips,
		TrajPoints:   f.TrajPoints + o.TrajPoints,
		Staged:       f.Staged + o.Staged,
		FixesIn:      f.FixesIn + o.FixesIn,
		Critical:     f.Critical + o.Critical,
		LateAccepted: f.LateAccepted + o.LateAccepted,
		LateDropped:  f.LateDropped + o.LateDropped,
	}
}

// wireWriter frames gob-encoded messages onto one connection. Writes
// are serialized so a worker's pipeline goroutine and its shutdown path
// never interleave frames.
type wireWriter struct {
	mu  sync.Mutex
	w   *bufio.Writer
	buf bytes.Buffer
}

func newWireWriter(conn io.Writer) *wireWriter {
	return &wireWriter{w: bufio.NewWriterSize(conn, 64*1024)}
}

// send encodes and frames one message, flushing it to the wire.
func (w *wireWriter) send(m *Message) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.buf.Reset()
	if err := gob.NewEncoder(&w.buf).Encode(m); err != nil {
		return fmt.Errorf("cluster: encoding %v message: %w", m.Kind, err)
	}
	if err := durable.WriteFrame(w.w, wireMagic, wireVersion, w.buf.Bytes()); err != nil {
		return err
	}
	return w.w.Flush()
}

// wireReader decodes framed messages off one connection.
type wireReader struct {
	r *bufio.Reader
}

func newWireReader(conn io.Reader) *wireReader {
	return &wireReader{r: bufio.NewReaderSize(conn, 64*1024)}
}

// next reads one message; io.EOF on a cleanly closed connection. The
// durable framing layer reports a stream that ends exactly on a frame
// boundary as ErrTruncated (it never gets a header to judge), so the
// reader peeks first: end-of-stream before any frame byte is a clean
// close, while a cut mid-frame keeps its truncation error.
func (r *wireReader) next() (*Message, error) {
	if _, err := r.r.Peek(1); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, err
	}
	payload, _, err := durable.ReadFrame(r.r, wireMagic, wireVersion)
	if err != nil {
		return nil, err
	}
	var m Message
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return nil, fmt.Errorf("cluster: decoding message: %w", err)
	}
	return &m, nil
}

// dialCoordinator connects a worker's uplink.
func dialCoordinator(addr string, timeout time.Duration) (net.Conn, *wireWriter, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, nil, fmt.Errorf("cluster: dial coordinator %s: %w", addr, err)
	}
	return conn, newWireWriter(conn), nil
}
