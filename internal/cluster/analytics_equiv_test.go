package cluster

import (
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// pairFleet builds a fleet seeded with scripted rendezvous and dark
// pairs, so pairwise alerts are guaranteed to appear in the output.
func pairFleet(t *testing.T, vessels, hours, pairs int) (*fleetsim.Simulator, []ais.Fix) {
	t.Helper()
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = vessels
	cfg.Duration = time.Duration(hours) * time.Hour
	cfg.RendezvousPairs = pairs
	cfg.DarkPairs = pairs
	sim := fleetsim.NewSimulator(cfg)
	fixes := sim.Run()
	if len(fixes) == 0 {
		t.Fatal("simulator produced no fixes")
	}
	return sim, fixes
}

// referenceRunAnalytics is referenceRun with the cross-vessel tier on:
// one process, recognition and pairwise analytics enabled. Returns the
// per-slide digests and the count of pairwise alerts by composite
// event, so callers can reject vacuous comparisons.
func referenceRunAnalytics(t *testing.T, sim *fleetsim.Simulator, fixes []ais.Fix) ([]string, map[string]int) {
	t.Helper()
	vessels, areas, ports := core.AdaptWorld(sim)
	sys := core.NewSystem(core.Config{
		Window:        stream.WindowSpec{Range: time.Hour, Slide: testSlide},
		Tracker:       tracker.DefaultParams(),
		Recognition:   maritime.Config{Window: time.Hour},
		TrackerShards: 3,
		Analytics:     &analytics.Config{EnableCollision: true},
	}, vessels, areas, ports)
	defer sys.Close()
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), testSlide)
	var out []string
	pairCEs := make(map[string]int)
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		rep := sys.ProcessBatch(b)
		for _, a := range rep.Alerts {
			if a.Vessel2 != 0 {
				pairCEs[a.CE]++
			}
		}
		out = append(out, renderSlide(rep))
	}
	return out, pairCEs
}

// TestClusterPairwiseAnalyticsEquivalence extends the golden
// equivalence contract to the cross-vessel tier: with scripted
// rendezvous and dark pairs in the fleet and the analytics tier
// enabled, a single process and a 3-worker cluster must produce
// byte-identical per-slide output — pairwise alerts included. The tier
// runs post-merge on the coordinator, exactly where single-process
// recognition runs, so the merged critical-point stream it sees is the
// same on both paths.
func TestClusterPairwiseAnalyticsEquivalence(t *testing.T) {
	sim, raw := pairFleet(t, 120, 4, 2)
	fixes := canonFixes(t, raw)
	refSlides, pairCEs := referenceRunAnalytics(t, sim, fixes)
	if pairCEs[maritime.CERendezvous] == 0 || pairCEs[maritime.CEDarkRendezvous] == 0 {
		t.Fatalf("reference run emitted no pairwise alerts (%v); the equivalence check would be vacuous", pairCEs)
	}
	t.Logf("reference pairwise alerts: %v", pairCEs)

	res := runCluster(t, sim, fixes, clusterOpts{workers: 3, analytics: true})
	compareSlides(t, "cluster(3)+analytics", refSlides, res.slides)
}

// TestClusterManifestRestoreWithAnalytics tears the cluster down
// mid-run — while rendezvous streaks and open dark gaps are in
// flight — and restores it from the newest manifest. The manifest must
// carry the analytics tier's snapshot, and the combined output must be
// byte-identical to an uninterrupted run: a restore that reset the
// tier would drop or re-fire pairwise alerts after the cut.
func TestClusterManifestRestoreWithAnalytics(t *testing.T) {
	sim, raw := pairFleet(t, 120, 4, 2)
	fixes := canonFixes(t, raw)
	refSlides, pairCEs := referenceRunAnalytics(t, sim, fixes)
	if pairCEs[maritime.CERendezvous] == 0 || pairCEs[maritime.CEDarkRendezvous] == 0 {
		t.Fatalf("reference run emitted no pairwise alerts (%v); the restore check would be vacuous", pairCEs)
	}

	dirs := []string{t.TempDir(), t.TempDir(), t.TempDir()}
	store, err := NewManifestStore(t.TempDir(), 3)
	if err != nil {
		t.Fatalf("manifest store: %v", err)
	}
	phase1 := runCluster(t, sim, fixes, clusterOpts{
		workers:   3,
		analytics: true,
		ckptDirs:  dirs,
		ckptEvery: 4,
		manifests: store,
		stopSlide: 10,
	})
	if phase1.stats.Manifests == 0 {
		t.Fatal("no manifest was bound before the shutdown")
	}

	m, err := RestoreCluster(store, dirs)
	if err != nil {
		t.Fatalf("RestoreCluster: %v", err)
	}
	if m == nil {
		t.Fatal("RestoreCluster found nothing to restore")
	}
	if m.Analytics == nil {
		t.Fatal("manifest carried no analytics snapshot")
	}
	if m.Slides == 0 || m.Slides > len(phase1.slides) {
		t.Fatalf("manifest covers %d slides, phase 1 merged %d", m.Slides, len(phase1.slides))
	}
	// The restore only exercises the tier's carried-over state if
	// pairwise alerts still fire after the cut.
	post := false
	for _, s := range refSlides[m.Slides:] {
		if strings.Contains(s, "+") {
			post = true
			break
		}
	}
	if !post {
		t.Fatalf("no pairwise alerts after slide %d; the analytics restore check would be vacuous", m.Slides)
	}

	phase2 := runCluster(t, sim, fixes, clusterOpts{
		workers:   3,
		analytics: true,
		ckptDirs:  dirs,
		ckptEvery: 4,
		manifests: store,
		restore:   m,
		pinSeqs:   m.WorkerSeqs,
	})

	combined := append(slices.Clone(refSlides[:m.Slides]), phase2.slides...)
	compareSlides(t, "manifest restore with analytics", refSlides, combined)
}
