package cluster

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/ais"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/feed"
	"repro/internal/maritime"
	"repro/internal/mod"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// WorkerConfig assembles one worker process: which vessel slice it
// owns, where its slice feed and the coordinator live, and the pipeline
// configuration it runs for the slice.
type WorkerConfig struct {
	// ID is the slice index in [0, Workers); Workers is the cluster
	// width. Both must match the router's partitioning or the
	// coordinator rejects the Hello.
	ID      int
	Workers int
	// Router is the worker's slice feed address (the router's listener
	// for slice ID); Coordinator is the uplink address.
	Router      string
	Coordinator string
	// System configures the worker pipeline. Recognition is forced off:
	// several maritime CEs aggregate across vessels, so recognition runs
	// at the coordinator over the merged event stream.
	System core.Config
	// Static world knowledge, identical across the cluster.
	Vessels []maritime.Vessel
	Areas   []maritime.Area
	Ports   []mod.PortArea
	// GridStart pins the slide grid's origin (a time on the original
	// stream's grid, at or before the first fix) so every worker batches
	// on the same grid regardless of when its slice's first fix falls.
	// Zero falls back to first-fix alignment — only safe in a
	// single-worker cluster.
	GridStart time.Time
	// CheckpointDir enables checkpointing; CheckpointEvery is the
	// cadence in slides, taken grid-absolutely ((Q/slide) mod K == 0) so
	// every worker checkpoints at the same query times — the coordinator
	// can only bind a manifest at a query time all workers covered.
	CheckpointDir   string
	CheckpointEvery int
	// PinSeq, when nonzero, restores exactly that checkpoint sequence
	// instead of the newest — how a manifest-driven cluster restore puts
	// every worker on the same generation.
	PinSeq uint64
	// Retry is the slice-feed reconnect policy (zero: defaults).
	// DeadPeerAfter bounds reads from the router; pair it with the
	// router's keepalive so only a hung router trips it.
	Retry         feed.RetryPolicy
	DeadPeerAfter time.Duration
	// DialTimeout bounds the coordinator dial.
	DialTimeout time.Duration
	// Logf receives lifecycle messages; nil silences them.
	Logf func(format string, args ...any)
}

// Worker is one vessel slice's pipeline process: it consumes the slice
// feed through the reconnecting client (RESUME semantics across both
// router and worker restarts), runs tracking and archival, checkpoints
// autonomously, and ships every slide's output to the coordinator.
type Worker struct {
	cfg  WorkerConfig
	sys  *core.System
	mgr  *checkpoint.Manager
	base *checkpoint.State // restored checkpoint, nil on cold start

	fresh  []tracker.CriticalPoint // current slide's copied critical points
	cursor feed.Cursor
	slides int

	// Steady-state scratch: the columnar batch arena the slice feed is
	// decoded into, and the uplink frames re-filled every slide so the
	// per-slide encode allocates nothing on the worker side.
	cols ais.FixBatch
	out  SlideOutput
	msg  Message
}

// NewWorker builds the worker and, when a checkpoint directory is
// configured, restores its state: the pinned sequence when PinSeq is
// set, otherwise the newest valid checkpoint (cold start when none).
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Workers < 1 {
		cfg.Workers = 1
	}
	if cfg.ID < 0 || cfg.ID >= cfg.Workers {
		return nil, fmt.Errorf("cluster: worker ID %d outside [0,%d)", cfg.ID, cfg.Workers)
	}
	sysCfg := cfg.System
	sysCfg.DisableRecognition = true
	w := &Worker{cfg: cfg, sys: core.NewSystem(sysCfg, cfg.Vessels, cfg.Areas, cfg.Ports)}
	w.sys.SetFreshObserver(func(q time.Time, fresh []tracker.CriticalPoint) {
		// The slice is tracker-owned scratch; copy before the call ends.
		w.fresh = append(w.fresh[:0], fresh...)
	})

	if cfg.CheckpointDir != "" {
		mgr, err := checkpoint.NewManager(checkpoint.Options{Dir: cfg.CheckpointDir})
		if err != nil {
			return nil, err
		}
		w.mgr = mgr
		var st *checkpoint.State
		if cfg.PinSeq != 0 {
			if st, err = mgr.LoadAt(cfg.PinSeq); err != nil {
				return nil, fmt.Errorf("cluster: worker %d pinned restore: %w", cfg.ID, err)
			}
		} else if st, err = mgr.RestoreNewest(); err != nil && st == nil {
			w.logf("worker %d: no restorable checkpoint: %v", cfg.ID, err)
		}
		if st != nil {
			if err := w.sys.RestoreSnapshot(st.System); err != nil {
				return nil, fmt.Errorf("cluster: worker %d restore: %w", cfg.ID, err)
			}
			w.base = st
			w.cursor = st.Cursor.Clone()
			w.slides = st.Slides
			w.logf("worker %d: restored checkpoint at %s (%d slides)",
				cfg.ID, st.Query.Format(time.RFC3339), st.Slides)
		}
	}
	return w, nil
}

// System exposes the worker's pipeline (tests inspect its stores).
func (w *Worker) System() *core.System { return w.sys }

// Checkpoints exposes the worker's checkpoint manager (nil when
// checkpointing is off).
func (w *Worker) Checkpoints() *checkpoint.Manager { return w.mgr }

// Run consumes the slice feed to its end, shipping every slide upstream,
// and closes with Drain + EOS. A cancelled ctx stops the worker without
// an EOS — exactly what a killed worker looks like to the coordinator.
func (w *Worker) Run(ctx context.Context) error {
	defer w.sys.Close()
	conn, uplink, err := dialCoordinator(w.cfg.Coordinator, w.cfg.DialTimeout)
	if err != nil {
		return err
	}
	defer conn.Close()

	hello := &Hello{Worker: w.cfg.ID, Workers: w.cfg.Workers, Slides: w.slides, Restarted: w.base != nil}
	if w.base != nil {
		hello.Query = w.base.Query
	}
	if err := uplink.send(&Message{Kind: KindHello, Hello: hello}); err != nil {
		return err
	}

	retry := w.cfg.Retry
	if retry.MaxAttempts == 0 {
		retry = feed.DefaultRetryPolicy()
	}
	client := feed.NewReconnecting(func() (net.Conn, error) {
		return net.DialTimeout("tcp", w.cfg.Router, retry.DialTimeout)
	}, retry)
	client.DeadPeerTimeout = w.cfg.DeadPeerAfter
	client.Logf = w.cfg.Logf
	if w.base != nil {
		client.SeedCursor(w.cursor)
	}
	defer client.Close()
	w.sys.AddHealthSource(core.LiveHealthSource(client, nil))
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		select {
		case <-ctx.Done():
			client.Close()
		case <-stop:
		}
	}()

	var batcher *stream.Batcher
	switch {
	case w.base != nil:
		// Continue on the restored grid; slides between the checkpoint
		// and the first replayed fix still run (empty).
		batcher = stream.NewBatcherFrom(client, w.cfg.System.Window.Slide, w.base.Query)
	case !w.cfg.GridStart.IsZero():
		// The shared grid origin: a slice whose first fix comes late (or
		// exactly on a grid point) still batches on the cluster's grid.
		batcher = stream.NewBatcherFrom(client, w.cfg.System.Window.Slide, w.cfg.GridStart)
	default:
		batcher = stream.NewBatcher(client, w.cfg.System.Window.Slide)
	}

	slideSec := int64(w.cfg.System.Window.Slide / time.Second)
	var lastQ time.Time
	for {
		// Columnar slide admission: the slice feed decodes straight into
		// the worker's reusable batch arena.
		b, ok := batcher.NextInto(&w.cols)
		if !ok {
			break
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		for i := 0; i < w.cols.Len(); i++ {
			w.cursor.Note(w.cols.At(i))
		}
		w.fresh = w.fresh[:0]
		rep := w.sys.ProcessBatch(b)
		w.slides++
		lastQ = b.Query

		w.out = SlideOutput{
			Worker:         w.cfg.ID,
			Query:          b.Query,
			FixesIn:        rep.FixesIn,
			TripsCompleted: rep.TripsCompleted,
			Fresh:          w.fresh,
			Timings:        rep.Timings,
			Health:         rep.Health,
		}
		if w.mgr != nil && w.cfg.CheckpointEvery > 0 && slideSec > 0 &&
			(b.Query.Unix()/slideSec)%int64(w.cfg.CheckpointEvery) == 0 {
			if err := w.saveCheckpoint(b.Query); err != nil {
				// The previous checkpoint survives; keep streaming.
				w.logf("worker %d: checkpoint at %s failed: %v", w.cfg.ID, b.Query.Format(time.RFC3339), err)
			} else {
				w.out.CkptSeq = w.mgr.LastSeq()
				cur := w.cursor.Clone()
				w.out.CkptCursor = &cur
			}
		}
		w.msg = Message{Kind: KindSlide, Slide: &w.out}
		if err := uplink.send(&w.msg); err != nil {
			return err
		}
	}
	if err := client.Err(); err != nil {
		return fmt.Errorf("cluster: worker %d slice feed: %w", w.cfg.ID, err)
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	if !lastQ.IsZero() {
		w.sys.Drain(lastQ)
	}
	t4 := w.sys.Store().Table4Stats()
	tr := w.sys.Tracker().Stats()
	final := WorkerFinal{
		Trips:        t4.Trips,
		TrajPoints:   t4.PointsInTrajectories,
		Staged:       t4.PointsInStaging,
		FixesIn:      tr.FixesIn,
		Critical:     tr.Critical,
		LateAccepted: tr.LateAccepted,
		LateDropped:  tr.LateDropped,
	}
	return uplink.send(&Message{Kind: KindEOS, EOS: &EOS{Worker: w.cfg.ID, Final: final}})
}

// saveCheckpoint persists the worker's state as of query time q.
func (w *Worker) saveCheckpoint(q time.Time) error {
	snap, err := w.sys.Snapshot()
	if err != nil {
		return err
	}
	return w.mgr.Save(&checkpoint.State{
		Query:  q,
		System: snap,
		Cursor: w.cursor.Clone(),
		Slides: w.slides,
	})
}

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}
