package cluster

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

func testFix(mmsi uint32, sec int64) ais.Fix {
	return ais.Fix{MMSI: mmsi, Pos: geo.Point{Lon: 23.5, Lat: 37.9}, Time: time.Unix(sec, 0).UTC()}
}

// The replay ring trims its oldest fixes past the bound, and the loss
// is counted, never silent.
func TestSliceFeedTrimAccounting(t *testing.T) {
	s := newSliceFeed(4)
	for i := int64(0); i < 10; i++ {
		s.append(testFix(1, 1000+i))
	}
	st := s.stats()
	if st.Dispatched != 10 || st.Trimmed != 6 {
		t.Fatalf("want 10 dispatched / 6 trimmed, got %d / %d", st.Dispatched, st.Trimmed)
	}
	fixes, next, done, _ := s.window(0)
	if len(fixes) != 4 || fixes[0].Time.Unix() != 1006 {
		t.Fatalf("window after trim: %d fixes from %v", len(fixes), fixes[0].Time)
	}
	if next != 10 || done {
		t.Fatalf("want next=10 done=false, got next=%d done=%v", next, done)
	}
}

// A resume cursor skips everything at or before its second.
func TestSliceFeedResumePos(t *testing.T) {
	s := newSliceFeed(100)
	for i := int64(0); i < 5; i++ {
		s.append(testFix(1, 1000+i))
	}
	cursor := int64(1002)
	pos, skipped := s.resumePos(&cursor)
	if pos != 3 || skipped != 3 {
		t.Fatalf("resume after 1002: want pos=3 skipped=3, got %d/%d", pos, skipped)
	}
	if pos, skipped := s.resumePos(nil); pos != 0 || skipped != 0 {
		t.Fatalf("full replay: want 0/0, got %d/%d", pos, skipped)
	}
}

// A slice connection speaks the feed wire protocol: RESUME handshake,
// CSV fixes, keepalive comments while idle, clean close on Finish.
func TestRouterSliceServesResumeAndHeartbeats(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	r := NewRouter(RouterOptions{Workers: 1, KeepaliveEvery: 30 * time.Millisecond})
	addrs, err := r.ListenSlices(ctx, nil)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	for i := int64(0); i < 4; i++ {
		r.Dispatch(testFix(7, 2000+i))
	}

	conn, err := net.DialTimeout("tcp", addrs[0].String(), 2*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "RESUME %d\n", 2001)
	sc := bufio.NewScanner(conn)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))

	var fixes, heartbeats int
	for fixes < 2 || heartbeats < 1 {
		if !sc.Scan() {
			t.Fatalf("stream ended early (fixes=%d heartbeats=%d): %v", fixes, heartbeats, sc.Err())
		}
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "# HB "):
			heartbeats++
		case strings.HasPrefix(line, "7,"):
			fixes++
		default:
			t.Fatalf("unexpected line %q", line)
		}
	}

	// Finish drains the connection cleanly: EOF, no torn line.
	r.Finish()
	for sc.Scan() {
		if !strings.HasPrefix(sc.Text(), "# HB ") {
			t.Fatalf("unexpected line after finish: %q", sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream did not close cleanly: %v", err)
	}

	st := r.Stats().Slices[0]
	if st.Resumes != 1 || st.ResumeSkipped != 2 {
		t.Errorf("want 1 resume skipping 2 fixes, got %d/%d", st.Resumes, st.ResumeSkipped)
	}
	if st.Heartbeats == 0 {
		t.Error("no heartbeats counted")
	}
	if st.ClientsServed != 1 {
		t.Errorf("want 1 client served, got %d", st.ClientsServed)
	}
}

// Vessels are partitioned by the same hash boundary the in-process
// tracker shards use, and the upstream cursor covers every dispatch.
func TestRouterPartitionsAndCursor(t *testing.T) {
	r := NewRouter(RouterOptions{Workers: 4})
	for i := int64(0); i < 100; i++ {
		r.Dispatch(testFix(uint32(100+i), 3000+i/10))
	}
	st := r.Stats()
	if st.Dispatched != 100 {
		t.Fatalf("dispatched %d of 100", st.Dispatched)
	}
	nonEmpty := 0
	for _, s := range st.Slices {
		if s.Dispatched > 0 {
			nonEmpty++
		}
	}
	if nonEmpty < 2 {
		t.Errorf("hash partitioning degenerated: %d of 4 slices used", nonEmpty)
	}
	if cur := r.Cursor(); cur.Sec != 3009 {
		t.Errorf("upstream cursor at %d, want 3009", cur.Sec)
	}
}
