package cluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/analytics"
	"repro/internal/checkpoint"
	"repro/internal/durable"
	"repro/internal/feed"
	"repro/internal/maritime"
	"repro/internal/serve"
)

const (
	manifestMagic   = "MARMANI"
	manifestVersion = 1
	manifestPrefix  = "manifest-"
	manifestSuffix  = ".mft"
)

// Manifest binds one atomic cluster snapshot: the checkpoint sequence
// number of every worker at a common query time, the merged resume
// cursor the router would honor, and the coordinator's own state
// (recognizer working memory, alert hub sequence/history). Restoring
// every worker to its recorded sequence and the coordinator to the
// recorded snapshots puts the whole cluster on one coherent cut — no
// worker ahead of or behind the merge frontier.
type Manifest struct {
	// Query is the slide query time the cut was taken at; every worker
	// checkpointed at exactly this query.
	Query time.Time
	// Workers is the cluster width; WorkerSeqs[i] is worker i's
	// checkpoint sequence number.
	Workers    int
	WorkerSeqs []uint64
	// Cursor is the merged upstream resume cursor: Sec is the max of
	// the workers' cursor seconds, SeenAtSec the union of their
	// per-vessel counts at that second (vessel slices are disjoint).
	Cursor feed.Cursor
	// Recognizer is the coordinator's CE working memory as of Query.
	Recognizer maritime.RecognizerSnapshot
	// Hub is the alert gateway's sequence/history; nil without one.
	Hub *serve.HubSnapshot
	// Slides is how many slides the coordinator had merged.
	Slides int
	// Analytics is the cross-vessel tier's state as of Query; nil when
	// the tier is off or the manifest predates it.
	Analytics *analytics.Snapshot
}

// ManifestStore owns one manifest directory, mirroring the checkpoint
// manager's contract: atomic durable-framed saves, keep-last-K
// pruning, and newest-valid restore with fallback.
type ManifestStore struct {
	dir  string
	keep int

	mu       sync.Mutex
	seq      uint64
	lastSave time.Time
}

// NewManifestStore opens (creating if needed) the manifest directory.
// keep ≤ 0 retains 3.
func NewManifestStore(dir string, keep int) (*ManifestStore, error) {
	if dir == "" {
		return nil, errors.New("cluster: manifest dir is required")
	}
	if keep <= 0 {
		keep = 3
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cluster: creating %s: %w", dir, err)
	}
	s := &ManifestStore{dir: dir, keep: keep}
	files, err := s.list()
	if err != nil {
		return nil, err
	}
	if len(files) > 0 {
		s.seq = files[len(files)-1].seq
	}
	return s, nil
}

type manifestFile struct {
	seq  uint64
	path string
}

func (s *ManifestStore) list() ([]manifestFile, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading %s: %w", s.dir, err)
	}
	var out []manifestFile
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		if _, err := fmt.Sscanf(name, manifestPrefix+"%d"+manifestSuffix, &seq); err != nil {
			continue
		}
		if name != manifestName(seq) {
			continue
		}
		out = append(out, manifestFile{seq: seq, path: filepath.Join(s.dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

func manifestName(seq uint64) string {
	return fmt.Sprintf("%s%012d%s", manifestPrefix, seq, manifestSuffix)
}

// Save persists one manifest atomically and prunes beyond keep.
func (s *ManifestStore) Save(m *Manifest) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(m); err != nil {
		return fmt.Errorf("cluster: encoding manifest: %w", err)
	}
	s.mu.Lock()
	seq := s.seq + 1
	s.mu.Unlock()
	path := filepath.Join(s.dir, manifestName(seq))
	err := durable.WriteFileAtomic(path, func(w io.Writer) error {
		return durable.WriteFrame(w, manifestMagic, manifestVersion, payload.Bytes())
	})
	if err != nil {
		return fmt.Errorf("cluster: writing %s: %w", path, err)
	}
	s.mu.Lock()
	s.seq = seq
	s.lastSave = time.Now()
	s.mu.Unlock()
	return s.prune()
}

func (s *ManifestStore) prune() error {
	files, err := s.list()
	if err != nil {
		return err
	}
	for len(files) > s.keep {
		if err := os.Remove(files[0].path); err != nil {
			return fmt.Errorf("cluster: pruning %s: %w", files[0].path, err)
		}
		files = files[1:]
	}
	return nil
}

// LastSave returns when the newest manifest was written (zero before
// any save this session).
func (s *ManifestStore) LastSave() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastSave
}

// Seq returns the newest manifest sequence (0 before any).
func (s *ManifestStore) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// LoadManifest reads and verifies one manifest file; truncated,
// corrupt, wrong-magic and future-version files fail with the
// corresponding typed durable error.
func LoadManifest(path string) (*Manifest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening %s: %w", path, err)
	}
	defer f.Close()
	payload, _, err := durable.ReadFrame(f, manifestMagic, manifestVersion)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", path, err)
	}
	var m Manifest
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&m); err != nil {
		return nil, fmt.Errorf("cluster: decoding %s: %w", path, err)
	}
	return &m, nil
}

// RestoreCluster finds the newest manifest whose entire generation is
// restorable: the manifest itself loads, it matches the cluster width,
// and EVERY worker's recorded checkpoint sequence loads from that
// worker's directory. A generation with any unreadable member is
// skipped whole — the cluster never restores a mixed cut where one
// worker is on a different generation than the rest. Returns nil with
// a nil error when the directory holds no manifests at all (cold
// start); when every candidate was rejected, the joined rejection
// reasons come back with the nil manifest.
func RestoreCluster(s *ManifestStore, workerDirs []string) (*Manifest, error) {
	files, err := s.list()
	if err != nil {
		return nil, err
	}
	var failures []error
	for i := len(files) - 1; i >= 0; i-- {
		m, err := LoadManifest(files[i].path)
		if err != nil {
			failures = append(failures, err)
			continue
		}
		if m.Workers != len(workerDirs) || len(m.WorkerSeqs) != m.Workers {
			failures = append(failures, fmt.Errorf(
				"cluster: %s: manifest for %d workers, cluster has %d",
				files[i].path, m.Workers, len(workerDirs)))
			continue
		}
		ok := true
		for w, seq := range m.WorkerSeqs {
			if _, err := checkpoint.Load(checkpoint.PathFor(workerDirs[w], seq)); err != nil {
				failures = append(failures, fmt.Errorf(
					"cluster: generation %d: worker %d: %w", m.Slides, w, err))
				ok = false
				break
			}
		}
		if ok {
			return m, errors.Join(failures...)
		}
	}
	return nil, errors.Join(failures...)
}

// mergeCursors folds per-worker checkpoint cursors into the cluster
// cursor: the frontier second is the max across workers, and the
// per-vessel same-second counts are the union of the workers at that
// second — vessel slices are disjoint, so the union is a disjoint
// merge.
func mergeCursors(curs []*feed.Cursor) feed.Cursor {
	var out feed.Cursor
	for _, c := range curs {
		if c != nil && c.Sec > out.Sec {
			out.Sec = c.Sec
		}
	}
	for _, c := range curs {
		if c == nil || c.Sec != out.Sec {
			continue
		}
		for mmsi, n := range c.SeenAtSec {
			if out.SeenAtSec == nil {
				out.SeenAtSec = make(map[uint32]int)
			}
			out.SeenAtSec[mmsi] += n
		}
	}
	return out
}
