package export

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"repro/internal/geo"
	"repro/internal/maritime"
	"repro/internal/mod"
)

// WriteWorldGeoJSON renders the static geography — the areas of
// interest and the port polygons — as a GeoJSON FeatureCollection, so
// the map display the paper's control centers use (§2, Trajectory
// Exporter) can draw the context the alerts refer to.
func WriteWorldGeoJSON(w io.Writer, areas []maritime.Area, ports []mod.PortArea) error {
	fc := featureCollection{Type: "FeatureCollection", Features: []feature{}}
	for _, a := range areas {
		fc.Features = append(fc.Features, polygonFeature(a.Poly.Vertices(), map[string]any{
			"kind":      a.Kind.String(),
			"id":        a.ID,
			"minDepthM": a.MinDepthM,
		}))
	}
	for _, p := range ports {
		fc.Features = append(fc.Features, polygonFeature(p.Poly.Vertices(), map[string]any{
			"kind": "port",
			"id":   p.Name,
		}))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("export: encoding world GeoJSON: %w", err)
	}
	return nil
}

// polygonFeature closes the ring (GeoJSON requires first == last) and
// wraps it as a Feature.
func polygonFeature(ring []geo.Point, props map[string]any) feature {
	coords := make([][2]float64, 0, len(ring)+1)
	for _, v := range ring {
		coords = append(coords, [2]float64{v.Lon, v.Lat})
	}
	if len(coords) > 0 {
		coords = append(coords, coords[0])
	}
	return feature{
		Type:       "Feature",
		Geometry:   geometry{Type: "Polygon", Coordinates: [][][2]float64{coords}},
		Properties: props,
	}
}

// WriteAlertsGeoJSON renders recognized complex events as point
// features (located at their area's centroid), for overlay on the
// world layer.
func WriteAlertsGeoJSON(w io.Writer, alerts []maritime.Alert, areas []maritime.Area) error {
	byID := make(map[string]maritime.Area, len(areas))
	for _, a := range areas {
		byID[a.ID] = a
	}
	fc := featureCollection{Type: "FeatureCollection", Features: []feature{}}
	for _, al := range alerts {
		a, ok := byID[al.AreaID]
		if !ok {
			continue
		}
		c := a.Poly.Centroid()
		fc.Features = append(fc.Features, feature{
			Type:     "Feature",
			Geometry: geometry{Type: "Point", Coordinates: [2]float64{c.Lon, c.Lat}},
			Properties: map[string]any{
				"kind": "alert",
				"ce":   al.CE,
				"area": al.AreaID,
				"time": al.Time.UTC().Format(time.RFC3339),
			},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("export: encoding alerts GeoJSON: %w", err)
	}
	return nil
}
