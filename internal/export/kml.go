// Package export implements the paper's Trajectory Exporter (§2): once
// new trajectory events are detected per window slide, the annotated
// critical points can be emitted and visualized on maps — as KML
// polylines for trajectories and placemarks for vessel locations — or
// exchanged as GeoJSON and CSV.
package export

import (
	"encoding/xml"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"repro/internal/tracker"
)

// kml document structures (subset of OGC KML 2.2).
type kmlRoot struct {
	XMLName  xml.Name    `xml:"kml"`
	Xmlns    string      `xml:"xmlns,attr"`
	Document kmlDocument `xml:"Document"`
}

type kmlDocument struct {
	Name       string         `xml:"name"`
	Placemarks []kmlPlacemark `xml:"Placemark"`
}

type kmlPlacemark struct {
	Name        string         `xml:"name"`
	Description string         `xml:"description,omitempty"`
	TimeStamp   *kmlTimeStamp  `xml:"TimeStamp,omitempty"`
	Point       *kmlPoint      `xml:"Point,omitempty"`
	LineString  *kmlLineString `xml:"LineString,omitempty"`
}

type kmlTimeStamp struct {
	When string `xml:"when"`
}

type kmlPoint struct {
	Coordinates string `xml:"coordinates"`
}

type kmlLineString struct {
	Tessellate  int    `xml:"tessellate"`
	Coordinates string `xml:"coordinates"`
}

// WriteKML renders the critical points of one or more vessels as a KML
// document: one polyline per vessel trajectory synopsis plus one
// placemark per critical point.
func WriteKML(w io.Writer, name string, points []tracker.CriticalPoint) error {
	doc := kmlRoot{
		Xmlns:    "http://www.opengis.net/kml/2.2",
		Document: kmlDocument{Name: name},
	}
	byVessel := tracker.SplitByVessel(points)
	mmsis := make([]uint32, 0, len(byVessel))
	for mmsi := range byVessel {
		mmsis = append(mmsis, mmsi)
	}
	sort.Slice(mmsis, func(i, j int) bool { return mmsis[i] < mmsis[j] })

	for _, mmsi := range mmsis {
		syn := byVessel[mmsi]
		var coords strings.Builder
		for _, cp := range syn {
			fmt.Fprintf(&coords, "%.6f,%.6f,0 ", cp.Pos.Lon, cp.Pos.Lat)
		}
		doc.Document.Placemarks = append(doc.Document.Placemarks, kmlPlacemark{
			Name: fmt.Sprintf("trajectory %d", mmsi),
			LineString: &kmlLineString{
				Tessellate:  1,
				Coordinates: strings.TrimSpace(coords.String()),
			},
		})
		for _, cp := range syn {
			doc.Document.Placemarks = append(doc.Document.Placemarks, kmlPlacemark{
				Name:        fmt.Sprintf("%d %s", mmsi, cp.Type),
				Description: describe(cp),
				TimeStamp:   &kmlTimeStamp{When: cp.Time.UTC().Format(time.RFC3339)},
				Point: &kmlPoint{
					Coordinates: fmt.Sprintf("%.6f,%.6f,0", cp.Pos.Lon, cp.Pos.Lat),
				},
			})
		}
	}

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("export: encoding KML: %w", err)
	}
	return enc.Close()
}

// describe renders the annotation line shown in placemark balloons.
func describe(cp tracker.CriticalPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "event=%s", cp.Type)
	if cp.SpeedKn > 0 {
		fmt.Fprintf(&b, " speed=%.1fkn heading=%.0f°", cp.SpeedKn, cp.HeadingDeg)
	}
	if cp.Duration > 0 {
		fmt.Fprintf(&b, " duration=%s", cp.Duration)
	}
	return b.String()
}
