package export

import (
	"encoding/json"
	"encoding/xml"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/maritime"
	"repro/internal/mod"
	"repro/internal/tracker"
)

func samplePoints() []tracker.CriticalPoint {
	t0 := time.Date(2009, 6, 1, 12, 0, 0, 0, time.UTC)
	return []tracker.CriticalPoint{
		{MMSI: 237000001, Pos: geo.Point{Lon: 24.0, Lat: 37.5}, Time: t0, Type: tracker.EventFirst},
		{MMSI: 237000001, Pos: geo.Point{Lon: 24.1, Lat: 37.6}, Time: t0.Add(10 * time.Minute),
			Type: tracker.EventTurn, SpeedKn: 12.5, HeadingDeg: 45},
		{MMSI: 237000002, Pos: geo.Point{Lon: 25.0, Lat: 36.5}, Time: t0.Add(time.Minute),
			Type: tracker.EventStopEnd, Duration: 30 * time.Minute},
	}
}

func TestWriteKMLWellFormed(t *testing.T) {
	var sb strings.Builder
	if err := WriteKML(&sb, "test", samplePoints()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	var doc kmlRoot
	if err := xml.Unmarshal([]byte(out[strings.Index(out, "<kml"):]), &doc); err != nil {
		t.Fatalf("output is not well-formed XML: %v", err)
	}
	// Two vessels: 2 polylines + 3 placemark points.
	if got := len(doc.Document.Placemarks); got != 5 {
		t.Errorf("placemarks = %d, want 5", got)
	}
	if !strings.Contains(out, "trajectory 237000001") {
		t.Error("missing trajectory polyline for vessel 1")
	}
	if !strings.Contains(out, "duration=30m0s") {
		t.Error("stop duration not described")
	}
}

func TestWriteKMLDeterministic(t *testing.T) {
	var a, b strings.Builder
	if err := WriteKML(&a, "x", samplePoints()); err != nil {
		t.Fatal(err)
	}
	if err := WriteKML(&b, "x", samplePoints()); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("KML output not deterministic across runs")
	}
}

func TestWriteGeoJSONValid(t *testing.T) {
	var sb strings.Builder
	if err := WriteGeoJSON(&sb, samplePoints()); err != nil {
		t.Fatal(err)
	}
	var fc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &fc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if fc["type"] != "FeatureCollection" {
		t.Errorf("type = %v", fc["type"])
	}
	features := fc["features"].([]any)
	if len(features) != 5 {
		t.Errorf("features = %d, want 5", len(features))
	}
	// The turn point must carry its annotations.
	found := false
	for _, f := range features {
		props := f.(map[string]any)["properties"].(map[string]any)
		if props["event"] == "turn" {
			found = true
			if props["speedKnots"].(float64) != 12.5 {
				t.Errorf("turn speed = %v", props["speedKnots"])
			}
		}
	}
	if !found {
		t.Error("turn feature missing")
	}
}

func TestWriteGeoJSONEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteGeoJSON(&sb, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `"features": []`) {
		t.Errorf("empty collection rendered as %q", sb.String())
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := WriteCSV(&sb, samplePoints()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 4 { // header + 3 rows
		t.Fatalf("lines = %d, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "mmsi,event,") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[2], "turn") {
		t.Errorf("row 2 = %q", lines[2])
	}
	if !strings.HasSuffix(lines[3], "1800") {
		t.Errorf("stop row duration: %q", lines[3])
	}
}

func TestWriteWorldGeoJSON(t *testing.T) {
	poly := geo.MustPolygon([]geo.Point{{Lon: 24, Lat: 37}, {Lon: 24.1, Lat: 37}, {Lon: 24.05, Lat: 37.1}})
	areas := []maritime.Area{
		{ID: "prot-1", Kind: maritime.KindProtected, Poly: poly},
		{ID: "shal-1", Kind: maritime.KindShallow, Poly: poly, MinDepthM: 4},
	}
	ports := []mod.PortArea{{Name: "Piraeus", Poly: poly}}
	var sb strings.Builder
	if err := WriteWorldGeoJSON(&sb, areas, ports); err != nil {
		t.Fatal(err)
	}
	var fc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &fc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	features := fc["features"].([]any)
	if len(features) != 3 {
		t.Fatalf("features = %d, want 3", len(features))
	}
	// GeoJSON polygons must close their rings.
	geom := features[0].(map[string]any)["geometry"].(map[string]any)
	ring := geom["coordinates"].([]any)[0].([]any)
	first := ring[0].([]any)
	last := ring[len(ring)-1].([]any)
	if first[0] != last[0] || first[1] != last[1] {
		t.Error("polygon ring not closed")
	}
}

func TestWriteAlertsGeoJSON(t *testing.T) {
	poly := geo.MustPolygon([]geo.Point{{Lon: 24, Lat: 37}, {Lon: 24.1, Lat: 37}, {Lon: 24.05, Lat: 37.1}})
	areas := []maritime.Area{{ID: "prot-1", Kind: maritime.KindProtected, Poly: poly}}
	alerts := []maritime.Alert{
		{CE: maritime.CEIllegalShipping, AreaID: "prot-1", Time: time.Date(2009, 6, 1, 4, 0, 0, 0, time.UTC)},
		{CE: maritime.CEIllegalShipping, AreaID: "unknown", Time: time.Now()},
	}
	var sb strings.Builder
	if err := WriteAlertsGeoJSON(&sb, alerts, areas); err != nil {
		t.Fatal(err)
	}
	var fc map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &fc); err != nil {
		t.Fatal(err)
	}
	features := fc["features"].([]any)
	if len(features) != 1 {
		t.Fatalf("features = %d, want 1 (unknown areas skipped)", len(features))
	}
	props := features[0].(map[string]any)["properties"].(map[string]any)
	if props["ce"] != maritime.CEIllegalShipping {
		t.Errorf("props = %v", props)
	}
}
