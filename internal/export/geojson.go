package export

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/tracker"
)

// geoJSON structures (RFC 7946 subset).
type featureCollection struct {
	Type     string    `json:"type"`
	Features []feature `json:"features"`
}

type feature struct {
	Type       string         `json:"type"`
	Geometry   geometry       `json:"geometry"`
	Properties map[string]any `json:"properties"`
}

type geometry struct {
	Type        string `json:"type"`
	Coordinates any    `json:"coordinates"`
}

// WriteGeoJSON renders critical points as a GeoJSON FeatureCollection:
// a LineString feature per vessel synopsis and a Point feature per
// critical point, with the movement-event annotations as properties.
func WriteGeoJSON(w io.Writer, points []tracker.CriticalPoint) error {
	fc := featureCollection{Type: "FeatureCollection", Features: []feature{}}
	byVessel := tracker.SplitByVessel(points)
	mmsis := make([]uint32, 0, len(byVessel))
	for mmsi := range byVessel {
		mmsis = append(mmsis, mmsi)
	}
	sort.Slice(mmsis, func(i, j int) bool { return mmsis[i] < mmsis[j] })

	for _, mmsi := range mmsis {
		syn := byVessel[mmsi]
		line := make([][2]float64, len(syn))
		for i, cp := range syn {
			line[i] = [2]float64{cp.Pos.Lon, cp.Pos.Lat}
		}
		fc.Features = append(fc.Features, feature{
			Type:     "Feature",
			Geometry: geometry{Type: "LineString", Coordinates: line},
			Properties: map[string]any{
				"mmsi": mmsi,
				"kind": "trajectory",
			},
		})
		for _, cp := range syn {
			props := map[string]any{
				"mmsi":  mmsi,
				"kind":  "critical-point",
				"event": cp.Type.String(),
				"time":  cp.Time.UTC().Format(time.RFC3339),
			}
			if cp.SpeedKn > 0 {
				props["speedKnots"] = cp.SpeedKn
				props["headingDeg"] = cp.HeadingDeg
			}
			if cp.Duration > 0 {
				props["durationSeconds"] = cp.Duration.Seconds()
			}
			fc.Features = append(fc.Features, feature{
				Type:       "Feature",
				Geometry:   geometry{Type: "Point", Coordinates: [2]float64{cp.Pos.Lon, cp.Pos.Lat}},
				Properties: props,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(fc); err != nil {
		return fmt.Errorf("export: encoding GeoJSON: %w", err)
	}
	return nil
}

// WriteCSV renders critical points as CSV rows:
// mmsi,event,lon,lat,unixSeconds,speedKnots,headingDeg,durationSeconds.
func WriteCSV(w io.Writer, points []tracker.CriticalPoint) error {
	if _, err := io.WriteString(w, "mmsi,event,lon,lat,unix,speed_kn,heading_deg,duration_s\n"); err != nil {
		return err
	}
	for _, cp := range points {
		_, err := fmt.Fprintf(w, "%d,%s,%.6f,%.6f,%d,%.2f,%.1f,%.0f\n",
			cp.MMSI, cp.Type, cp.Pos.Lon, cp.Pos.Lat, cp.Time.Unix(),
			cp.SpeedKn, cp.HeadingDeg, cp.Duration.Seconds())
		if err != nil {
			return err
		}
	}
	return nil
}
