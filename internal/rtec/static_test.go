package rtec

import (
	"reflect"
	"testing"
)

func TestStaticFluentFromIntervalAlgebra(t *testing.T) {
	// jointActivity(pair) = intersect(busy(a), busy(b)): a statically
	// determined fluent over two simple ones.
	e := NewEngine(1000)
	e.DeclareInputFluent(InputFluent{Name: "busy", StartEvent: "begin", EndEvent: "finish"})
	e.DefineStaticFluent(StaticFluentDef{
		Name:     "joint",
		Entities: []string{"a+b"},
		Compute: func(ctx *Ctx, entity string) IntervalList {
			return Intersect(
				ctx.IntervalsOf("busy", "a", True),
				ctx.IntervalsOf("busy", "b", True),
			)
		},
	})
	res := e.Advance(500, []Event{
		{Name: "begin", Entity: "a", Time: 10},
		{Name: "finish", Entity: "a", Time: 100},
		{Name: "begin", Entity: "b", Time: 60},
		{Name: "finish", Entity: "b", Time: 200},
	})
	got := res.Fluents[FluentKey{"joint", "a+b", True}]
	if !reflect.DeepEqual(got, IntervalList{iv(60, 100)}) {
		t.Errorf("joint = %v, want [(60,100]]", got)
	}
}

func TestStaticFluentEntitiesOf(t *testing.T) {
	// Groundings derived from the window: every entity with a "ping".
	e := NewEngine(1000)
	e.DefineStaticFluent(StaticFluentDef{
		Name: "alive",
		EntitiesOf: func(ctx *Ctx) []string {
			var out []string
			seen := map[string]bool{}
			for _, ev := range ctx.EventsNamed("ping") {
				if !seen[ev.Entity] {
					seen[ev.Entity] = true
					out = append(out, ev.Entity)
				}
			}
			return out
		},
		Compute: func(ctx *Ctx, entity string) IntervalList {
			var ivs []Interval
			for _, ev := range ctx.EventsNamed("ping") {
				if ev.Entity == entity {
					ivs = append(ivs, Interval{Since: ev.Time, Until: ev.Time + 50})
				}
			}
			return Normalize(ivs)
		},
	})
	res := e.Advance(400, []Event{
		{Name: "ping", Entity: "x", Time: 10},
		{Name: "ping", Entity: "x", Time: 40},
		{Name: "ping", Entity: "y", Time: 200},
	})
	x := res.Fluents[FluentKey{"alive", "x", True}]
	if !reflect.DeepEqual(x, IntervalList{iv(10, 90)}) {
		t.Errorf("alive(x) = %v, want [(10,90]]", x)
	}
	if res.Fluents[FluentKey{"alive", "y", True}] == nil {
		t.Error("alive(y) missing")
	}
}

func TestStaticFluentClippedToWindow(t *testing.T) {
	e := NewEngine(100)
	e.DefineStaticFluent(StaticFluentDef{
		Name:     "always",
		Entities: []string{"z"},
		Compute: func(ctx *Ctx, entity string) IntervalList {
			return IntervalList{iv(-1000, 1000)} // wildly outside the window
		},
	})
	res := e.Advance(300, nil)
	got := res.Fluents[FluentKey{"always", "z", True}]
	if !reflect.DeepEqual(got, IntervalList{iv(200, 1000)}) {
		t.Errorf("clipped = %v, want [(200,1000]]", got)
	}
}

func TestStaticFluentFeedsDownstreamSimpleFluent(t *testing.T) {
	// A simple fluent triggered by the built-in start event of a static
	// fluent — definition chaining across forms.
	e := NewEngine(1000)
	e.DeclareInputFluent(InputFluent{Name: "busy", StartEvent: "begin", EndEvent: "finish"})
	e.DefineStaticFluent(StaticFluentDef{
		Name:     "echo",
		Entities: []string{"a"},
		Compute: func(ctx *Ctx, entity string) IntervalList {
			return ctx.IntervalsOf("busy", entity, True)
		},
	})
	identity := func(_ *Ctx, ev Event) []string { return []string{ev.Entity} }
	e.DefineSimpleFluent(SimpleFluentDef{
		Name: "reacted",
		Init: map[string][]TriggerRule{True: {{Event: "start:echo", Map: identity}}},
	})
	res := e.Advance(500, []Event{{Name: "begin", Entity: "a", Time: 42}})
	got := res.Fluents[FluentKey{"reacted", "a", True}]
	if len(got) != 1 || got[0].Since != 42 {
		t.Errorf("reacted = %v, want open from 42", got)
	}
}

func TestDeclarationsRestrictSimpleFluent(t *testing.T) {
	// The paper's footnote 3: computation restricted to declared areas.
	e := NewEngine(1000)
	e.DefineSimpleFluent(boolFluent("watchlisted", "mark", "unmark"))
	e.Declare("watchlisted", []string{"area-1"})
	res := e.Advance(100, []Event{
		{Name: "mark", Entity: "area-1", Time: 10},
		{Name: "mark", Entity: "area-2", Time: 20}, // undeclared: ignored
	})
	if res.Fluents[FluentKey{"watchlisted", "area-1", True}] == nil {
		t.Error("declared entity not computed")
	}
	if res.Fluents[FluentKey{"watchlisted", "area-2", True}] != nil {
		t.Error("undeclared entity computed despite declaration")
	}
}

func TestDeclarationsRestrictStaticFluent(t *testing.T) {
	e := NewEngine(1000)
	e.DefineStaticFluent(StaticFluentDef{
		Name:     "covered",
		Entities: []string{"a", "b"},
		Compute: func(ctx *Ctx, entity string) IntervalList {
			return IntervalList{iv(10, 20)}
		},
	})
	e.Declare("covered", []string{"b"})
	res := e.Advance(100, nil)
	if res.Fluents[FluentKey{"covered", "a", True}] != nil {
		t.Error("undeclared static entity computed")
	}
	if res.Fluents[FluentKey{"covered", "b", True}] == nil {
		t.Error("declared static entity missing")
	}
}

func TestDeclareUnknownFluentIsNoOp(t *testing.T) {
	e := NewEngine(1000)
	e.Declare("nonexistent", []string{"x"})
	e.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
	res := e.Advance(100, []Event{{Name: "begin", Entity: "v", Time: 5}})
	if res.Fluents[FluentKey{"busy", "v", True}] == nil {
		t.Error("unrelated declaration broke an undeclared fluent")
	}
}
