package rtec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func iv(a, b Timepoint) Interval { return Interval{Since: a, Until: b} }

func TestNormalizeMergesAndSorts(t *testing.T) {
	got := Normalize([]Interval{iv(10, 20), iv(5, 8), iv(18, 25), iv(30, 30), iv(40, 50)})
	want := IntervalList{iv(5, 8), iv(10, 25), iv(40, 50)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Normalize = %v, want %v", got, want)
	}
}

func TestNormalizeAdjacency(t *testing.T) {
	// (5,10] and (10,15] are adjacent in left-open/right-closed terms and
	// must merge into one maximal interval.
	got := Normalize([]Interval{iv(5, 10), iv(10, 15)})
	if !reflect.DeepEqual(got, IntervalList{iv(5, 15)}) {
		t.Errorf("adjacent intervals did not merge: %v", got)
	}
}

func TestNormalizeEmpty(t *testing.T) {
	if Normalize(nil) != nil {
		t.Error("Normalize(nil) != nil")
	}
	if got := Normalize([]Interval{iv(5, 5), iv(7, 3)}); got != nil {
		t.Errorf("degenerate intervals survived: %v", got)
	}
}

func TestIntervalSemantics(t *testing.T) {
	// Paper example (§4.1): F=V initiated at 10 and 20, terminated at 25
	// and 30 → F=V holds at all T with 10 < T <= 25.
	inits := []Timepoint{10, 20}
	terms := []Timepoint{25, 30}
	var ivs []Interval
	for _, ts := range inits {
		until := Inf
		for _, tf := range terms {
			if tf > ts {
				until = tf
				break
			}
		}
		ivs = append(ivs, Interval{Since: ts, Until: until})
	}
	l := Normalize(ivs)
	if !reflect.DeepEqual(l, IntervalList{iv(10, 25)}) {
		t.Fatalf("intervals = %v, want [(10,25]]", l)
	}
	if l.HoldsAt(10) {
		t.Error("holds at initiation point 10 (must be exclusive)")
	}
	if !l.HoldsAt(11) || !l.HoldsAt(25) {
		t.Error("must hold on (10, 25]")
	}
	if l.HoldsAt(26) {
		t.Error("holds after termination")
	}
}

func TestHoldsAtOpenInterval(t *testing.T) {
	l := IntervalList{iv(10, Inf)}
	if !l.HoldsAt(1 << 40) {
		t.Error("open interval should cover arbitrarily late timepoints")
	}
	if l.HoldsAt(10) {
		t.Error("open interval start must be exclusive")
	}
}

func TestDuration(t *testing.T) {
	l := IntervalList{iv(0, 10), iv(20, Inf)}
	if got := l.Duration(100); got != 10+80 {
		t.Errorf("Duration = %d, want 90", got)
	}
}

func TestUnionIntersect(t *testing.T) {
	a := IntervalList{iv(0, 10), iv(20, 30)}
	b := IntervalList{iv(5, 25)}
	if got := Union(a, b); !reflect.DeepEqual(got, IntervalList{iv(0, 30)}) {
		t.Errorf("Union = %v", got)
	}
	if got := Intersect(a, b); !reflect.DeepEqual(got, IntervalList{iv(5, 10), iv(20, 25)}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := Intersect(a, nil); got != nil {
		t.Errorf("Intersect with empty = %v", got)
	}
}

func TestComplement(t *testing.T) {
	win := iv(0, 100)
	l := IntervalList{iv(10, 20), iv(50, 60)}
	want := IntervalList{iv(0, 10), iv(20, 50), iv(60, 100)}
	if got := Complement(win, l); !reflect.DeepEqual(got, want) {
		t.Errorf("Complement = %v, want %v", got, want)
	}
	if got := Complement(win, nil); !reflect.DeepEqual(got, IntervalList{win}) {
		t.Errorf("Complement of empty = %v", got)
	}
	if got := Complement(win, IntervalList{iv(-5, 200)}); got != nil {
		t.Errorf("Complement under full cover = %v", got)
	}
}

func TestClip(t *testing.T) {
	win := iv(10, 100)
	l := IntervalList{iv(0, 20), iv(50, Inf), iv(200, 300)}
	got := Clip(win, l)
	want := IntervalList{iv(10, 20), iv(50, Inf)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Clip = %v, want %v", got, want)
	}
}

// randList builds a random small interval list for property tests.
func randList(rng *rand.Rand) IntervalList {
	n := rng.Intn(6)
	var ivs []Interval
	for i := 0; i < n; i++ {
		a := Timepoint(rng.Intn(200))
		b := a + Timepoint(rng.Intn(50))
		ivs = append(ivs, iv(a, b))
	}
	return Normalize(ivs)
}

func TestPropertyUnionCommutative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randList(rng), randList(rng)
		return reflect.DeepEqual(Union(a, b), Union(b, a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyIntersectIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randList(rng)
		return reflect.DeepEqual(Intersect(a, a), a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyComplementPartitionsWindow(t *testing.T) {
	// l ∪ complement(l) restricted to the window must equal the window,
	// and their intersection must be empty.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		win := iv(0, 250)
		l := Clip(win, randList(rng))
		comp := Complement(win, l)
		if Intersect(l, comp) != nil {
			return false
		}
		return reflect.DeepEqual(Union(l, comp), IntervalList{win})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPropertyHoldsAtConsistentWithMembership(t *testing.T) {
	f := func(seed int64, probe uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		l := randList(rng)
		tpt := Timepoint(probe)
		member := false
		for _, v := range l {
			if v.Covers(tpt) {
				member = true
			}
		}
		return l.HoldsAt(tpt) == member
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntervalString(t *testing.T) {
	if iv(1, 5).String() != "(1, 5]" {
		t.Errorf("String = %s", iv(1, 5))
	}
	if iv(1, Inf).String() != "(1, ∞)" {
		t.Errorf("open String = %s", iv(1, Inf))
	}
}
