package rtec

import (
	"reflect"
	"testing"
)

// boolFluent builds a Boolean simple fluent with single init/term
// trigger events that map 1:1 on the triggering entity.
func boolFluent(name, initEvent, termEvent string) SimpleFluentDef {
	identity := func(_ *Ctx, ev Event) []string { return []string{ev.Entity} }
	return SimpleFluentDef{
		Name: name,
		Init: map[string][]TriggerRule{True: {{Event: initEvent, Map: identity}}},
		Term: map[string][]TriggerRule{True: {{Event: termEvent, Map: identity}}},
	}
}

func TestSimpleFluentInertia(t *testing.T) {
	e := NewEngine(1000)
	e.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
	res := e.Advance(100, []Event{
		{Name: "begin", Entity: "v1", Time: 10},
		{Name: "begin", Entity: "v1", Time: 20}, // re-initiation: no effect
		{Name: "finish", Entity: "v1", Time: 25},
		{Name: "finish", Entity: "v1", Time: 30}, // already broken
	})
	got := res.Fluents[FluentKey{"busy", "v1", True}]
	want := IntervalList{iv(10, 25)}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("busy(v1) = %v, want %v", got, want)
	}
}

func TestSimpleFluentOpenInterval(t *testing.T) {
	e := NewEngine(1000)
	e.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
	res := e.Advance(100, []Event{{Name: "begin", Entity: "v1", Time: 40}})
	got := res.Fluents[FluentKey{"busy", "v1", True}]
	if len(got) != 1 || !got[0].Open() || got[0].Since != 40 {
		t.Errorf("busy(v1) = %v, want open from 40", got)
	}
	if !e.HoldsAt(FluentKey{"busy", "v1", True}, 99) {
		t.Error("HoldsAt(99) = false")
	}
}

func TestMultiValuedFluentCrossBreaking(t *testing.T) {
	// A fluent with values red/green: initiating green must break red
	// (paper rule (2)).
	identity := func(_ *Ctx, ev Event) []string { return []string{ev.Entity} }
	e := NewEngine(1000)
	e.DefineSimpleFluent(SimpleFluentDef{
		Name: "light",
		Init: map[string][]TriggerRule{
			"red":   {{Event: "toRed", Map: identity}},
			"green": {{Event: "toGreen", Map: identity}},
		},
	})
	res := e.Advance(100, []Event{
		{Name: "toRed", Entity: "x", Time: 10},
		{Name: "toGreen", Entity: "x", Time: 30},
	})
	red := res.Fluents[FluentKey{"light", "x", "red"}]
	green := res.Fluents[FluentKey{"light", "x", "green"}]
	if !reflect.DeepEqual(red, IntervalList{iv(10, 30)}) {
		t.Errorf("red = %v", red)
	}
	if len(green) != 1 || green[0].Since != 30 || !green[0].Open() {
		t.Errorf("green = %v", green)
	}
	// A fluent cannot have two values at once.
	for tp := Timepoint(11); tp <= 99; tp += 7 {
		if red.HoldsAt(tp) && green.HoldsAt(tp) {
			t.Fatalf("light has two values at %d", tp)
		}
	}
}

func TestInputFluentPairing(t *testing.T) {
	e := NewEngine(1000)
	e.DeclareInputFluent(InputFluent{Name: "stopped", StartEvent: "stopStart", EndEvent: "stopEnd"})
	res := e.Advance(200, []Event{
		{Name: "stopStart", Entity: "v1", Time: 50},
		{Name: "stopEnd", Entity: "v1", Time: 80},
		{Name: "stopStart", Entity: "v1", Time: 120},
	})
	got := res.Fluents[FluentKey{"stopped", "v1", True}]
	if len(got) != 2 || got[0] != iv(50, 80) || got[1].Since != 120 || !got[1].Open() {
		t.Errorf("stopped(v1) = %v", got)
	}
}

func TestInputFluentEndWithoutStart(t *testing.T) {
	// The episode began before the working memory: the interval is open
	// on the left at the window start.
	e := NewEngine(100)
	res := func() Result {
		e.DeclareInputFluent(InputFluent{Name: "stopped", StartEvent: "stopStart", EndEvent: "stopEnd"})
		return e.Advance(200, []Event{{Name: "stopEnd", Entity: "v1", Time: 150}})
	}()
	got := res.Fluents[FluentKey{"stopped", "v1", True}]
	if !reflect.DeepEqual(got, IntervalList{iv(100, 150)}) {
		t.Errorf("stopped(v1) = %v, want [(100,150]]", got)
	}
}

func TestEventDefWithCondition(t *testing.T) {
	// alarm(area) happens when "trigger" occurs for a vessel whose
	// longitude exceeds 10 (a stand-in for a spatial condition).
	e := NewEngine(1000)
	e.DefineEvent(EventDef{
		Name: "alarm",
		Rules: []TriggerRule{{
			Event: "trigger",
			Map: func(_ *Ctx, ev Event) []string {
				if ev.Lon > 10 {
					return []string{"area-1"}
				}
				return nil
			},
		}},
	})
	res := e.Advance(100, []Event{
		{Name: "trigger", Entity: "v1", Time: 10, Lon: 5},
		{Name: "trigger", Entity: "v2", Time: 20, Lon: 15},
	})
	if len(res.Derived) != 1 {
		t.Fatalf("derived = %v", res.Derived)
	}
	d := res.Derived[0]
	if d.Name != "alarm" || d.Entity != "area-1" || d.Time != 20 {
		t.Errorf("alarm = %+v", d)
	}
	if e.Stats().DerivedEvents != 1 {
		t.Errorf("stats.DerivedEvents = %d", e.Stats().DerivedEvents)
	}
}

func TestFluentTriggeredByStartOfInputFluent(t *testing.T) {
	// suspicious(Area) initiated by start(stopped(V)) — the chaining the
	// maritime definitions rely on. Map uses the built-in start:stopped
	// events synthesized from the input fluent.
	e := NewEngine(1000)
	e.DeclareInputFluent(InputFluent{Name: "stopped", StartEvent: "stopStart", EndEvent: "stopEnd"})
	count := func(ctx *Ctx, t Timepoint) int {
		return len(ctx.EntitiesHolding("stopped", True, t))
	}
	e.DefineSimpleFluent(SimpleFluentDef{
		Name: "suspicious",
		Init: map[string][]TriggerRule{True: {{
			Event: "start:stopped",
			Map: func(ctx *Ctx, ev Event) []string {
				if count(ctx, ev.Time+1) >= 2 {
					return []string{"zone"}
				}
				return nil
			},
		}}},
		Term: map[string][]TriggerRule{True: {{
			Event: "end:stopped",
			Map: func(ctx *Ctx, ev Event) []string {
				if count(ctx, ev.Time+1) < 2 {
					return []string{"zone"}
				}
				return nil
			},
		}}},
	})
	res := e.Advance(500, []Event{
		{Name: "stopStart", Entity: "v1", Time: 10},
		{Name: "stopStart", Entity: "v2", Time: 50}, // second vessel → suspicious
		{Name: "stopEnd", Entity: "v1", Time: 100},  // back to one → not suspicious
		{Name: "stopEnd", Entity: "v2", Time: 150},
	})
	got := res.Fluents[FluentKey{"suspicious", "zone", True}]
	if !reflect.DeepEqual(got, IntervalList{iv(50, 100)}) {
		t.Errorf("suspicious(zone) = %v, want [(50,100]]", got)
	}
}

func TestWindowingForgetsOldEvents(t *testing.T) {
	e := NewEngine(100)
	e.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
	e.Advance(100, []Event{{Name: "begin", Entity: "v1", Time: 50}})
	if e.WorkingMemorySize() != 1 {
		t.Fatalf("memory = %d", e.WorkingMemorySize())
	}
	// Query at 300: the begin event (t=50) is before 300-100=200 → gone.
	res := e.Advance(300, nil)
	if e.WorkingMemorySize() != 0 {
		t.Errorf("memory = %d after expiry", e.WorkingMemorySize())
	}
	if got := res.Fluents[FluentKey{"busy", "v1", True}]; got != nil {
		t.Errorf("busy derived from forgotten events: %v", got)
	}
}

func TestDelayedEventWithinWindowIsUsed(t *testing.T) {
	// The paper's Figure 5: an ME occurring before Q_{i-1} but arriving
	// after it is still considered at Q_i while inside the window.
	e := NewEngine(200)
	e.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
	e.Advance(100, nil)
	res := e.Advance(200, []Event{{Name: "begin", Entity: "v1", Time: 90}}) // delayed
	got := res.Fluents[FluentKey{"busy", "v1", True}]
	if len(got) != 1 || got[0].Since != 90 {
		t.Errorf("delayed event ignored: %v", got)
	}
	if e.Stats().EventsLate != 0 {
		t.Errorf("EventsLate = %d", e.Stats().EventsLate)
	}
}

func TestTooLateEventDiscarded(t *testing.T) {
	e := NewEngine(100)
	e.Advance(100, nil)
	e.Advance(300, []Event{{Name: "begin", Entity: "v1", Time: 150}}) // ≤ 300-100
	if e.Stats().EventsLate != 1 {
		t.Errorf("EventsLate = %d, want 1", e.Stats().EventsLate)
	}
	if e.Stats().EventsIn != 0 {
		t.Errorf("EventsIn = %d, want 0", e.Stats().EventsIn)
	}
}

func TestFutureEventHeldPending(t *testing.T) {
	e := NewEngine(100)
	e.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
	res := e.Advance(100, []Event{{Name: "begin", Entity: "v1", Time: 150}})
	if got := res.Fluents[FluentKey{"busy", "v1", True}]; got != nil {
		t.Errorf("future event already visible: %v", got)
	}
	res = e.Advance(200, nil)
	got := res.Fluents[FluentKey{"busy", "v1", True}]
	if len(got) != 1 || got[0].Since != 150 {
		t.Errorf("pending event not admitted: %v", got)
	}
}

func TestOutOfOrderArrivalSameStep(t *testing.T) {
	e := NewEngine(1000)
	e.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
	// Events delivered in reverse order within one step.
	res := e.Advance(100, []Event{
		{Name: "finish", Entity: "v1", Time: 60},
		{Name: "begin", Entity: "v1", Time: 30},
	})
	got := res.Fluents[FluentKey{"busy", "v1", True}]
	if !reflect.DeepEqual(got, IntervalList{iv(30, 60)}) {
		t.Errorf("out-of-order = %v, want [(30,60]]", got)
	}
}

func TestSetComputedFluent(t *testing.T) {
	// Statically determined fluents installed via interval manipulation.
	e := NewEngine(1000)
	e.DefineEvent(EventDef{
		Name: "check",
		Rules: []TriggerRule{{
			Event: "probe",
			Map: func(ctx *Ctx, ev Event) []string {
				ctx.SetComputedFluent(FluentKey{"zoneBusy", "z", True},
					IntervalList{iv(0, 500)})
				if ctx.HoldsAt("zoneBusy", "z", True, ev.Time) {
					return []string{"z"}
				}
				return nil
			},
		}},
	})
	res := e.Advance(400, []Event{{Name: "probe", Entity: "v", Time: 100}})
	if len(res.Derived) != 1 {
		t.Errorf("derived = %v", res.Derived)
	}
}

func TestNewEnginePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	NewEngine(0)
}

func TestEventAndKeyStrings(t *testing.T) {
	ev := Event{Name: "turn", Entity: "v9", Time: 42}
	if ev.String() != "happensAt(turn(v9), 42)" {
		t.Errorf("Event.String = %s", ev)
	}
	k := FluentKey{"stopped", "v9", True}
	if k.String() != "stopped(v9)=true" {
		t.Errorf("FluentKey.String = %s", k)
	}
}

// BenchmarkAdvance measures one recognition query over a realistic
// working-memory size (the paper's ω=6h ≈ 40K MEs setting).
func BenchmarkAdvance(b *testing.B) {
	const n = 40000
	events := make([]Event, n)
	for i := range events {
		name := "begin"
		if i%2 == 1 {
			name = "finish"
		}
		events[i] = Event{
			Name:   name,
			Entity: string(rune('a' + i%26)),
			Time:   Timepoint(1 + i/4),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine(1 << 30)
		e.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
		e.Advance(Timepoint(n), events)
	}
}
