package rtec

import (
	"math"
	"reflect"
	"testing"
)

func wp(t Timepoint, p float64) WeightedPoint { return WeightedPoint{Time: t, P: p} }

func TestEvolveProbabilityCrispMatchesEngine(t *testing.T) {
	// With probability-1 occurrences, Prob-EC degenerates to crisp RTEC:
	// init@10, term@25 → holds exactly on (10, 25].
	steps := EvolveProbability(
		[]WeightedPoint{wp(10, 1)},
		[]WeightedPoint{wp(25, 1)},
		0,
	)
	got := ThresholdIntervals(steps, 0.5)
	if !reflect.DeepEqual(got, IntervalList{iv(10, 25)}) {
		t.Errorf("crisp thresholding = %v, want [(10,25]]", got)
	}
	if ProbAt(steps, 10) != 0 {
		t.Error("initiation point itself must be exclusive")
	}
	if ProbAt(steps, 11) != 1 || ProbAt(steps, 25) != 1 {
		t.Error("belief inside the interval must be 1")
	}
	if ProbAt(steps, 26) != 0 {
		t.Error("belief after termination must be 0")
	}
}

func TestEvolveProbabilityAccumulatesNoisyInitiations(t *testing.T) {
	// Three 0.5-confidence initiations: belief climbs 0.5 → 0.75 → 0.875.
	steps := EvolveProbability(
		[]WeightedPoint{wp(10, 0.5), wp(20, 0.5), wp(30, 0.5)},
		nil, 0,
	)
	checks := []struct {
		t Timepoint
		p float64
	}{{15, 0.5}, {25, 0.75}, {35, 0.875}}
	for _, c := range checks {
		if got := ProbAt(steps, c.t); math.Abs(got-c.p) > 1e-12 {
			t.Errorf("P(%d) = %v, want %v", c.t, got, c.p)
		}
	}
	// A 0.8 threshold is crossed only by the third initiation.
	got := ThresholdIntervals(steps, 0.8)
	if len(got) != 1 || got[0].Since != 30 || !got[0].Open() {
		t.Errorf("thresholded = %v, want open from 30", got)
	}
}

func TestEvolveProbabilityDecaysWithUncertainTermination(t *testing.T) {
	// A certain initiation followed by two 0.6-confidence terminations:
	// belief decays 1 → 0.4 → 0.16.
	steps := EvolveProbability(
		[]WeightedPoint{wp(10, 1)},
		[]WeightedPoint{wp(20, 0.6), wp(30, 0.6)},
		0,
	)
	if got := ProbAt(steps, 25); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("P(25) = %v, want 0.4", got)
	}
	if got := ProbAt(steps, 35); math.Abs(got-0.16) > 1e-12 {
		t.Errorf("P(35) = %v, want 0.16", got)
	}
	// With θ=0.5 the CE interval ends at the first uncertain termination.
	got := ThresholdIntervals(steps, 0.5)
	if !reflect.DeepEqual(got, IntervalList{iv(10, 20)}) {
		t.Errorf("thresholded = %v, want [(10,20]]", got)
	}
}

func TestEvolveProbabilityCoTimedTermThenInit(t *testing.T) {
	// An occurrence that both terminates and re-initiates at T leaves
	// the fluent holding (termination applies first).
	steps := EvolveProbability(
		[]WeightedPoint{wp(10, 1), wp(20, 1)},
		[]WeightedPoint{wp(20, 1)},
		0,
	)
	if got := ProbAt(steps, 21); got != 1 {
		t.Errorf("P(21) = %v, want 1 (re-initiated)", got)
	}
}

func TestEvolveProbabilityPrior(t *testing.T) {
	// A fluent believed half-on at the window start decays under a
	// certain termination and nothing else.
	steps := EvolveProbability(nil, []WeightedPoint{wp(10, 1)}, 0.5)
	if got := ProbAt(steps, 5); got != 0.5 {
		t.Errorf("P(5) = %v, want the prior", got)
	}
	if got := ProbAt(steps, 15); got != 0 {
		t.Errorf("P(15) = %v, want 0", got)
	}
}

func TestEvolveProbabilityClampsInputs(t *testing.T) {
	steps := EvolveProbability(
		[]WeightedPoint{wp(10, 2.5)}, // clamped to 1
		[]WeightedPoint{wp(20, -3)},  // clamped to 0
		-1,                           // clamped to 0
	)
	if got := ProbAt(steps, 15); got != 1 {
		t.Errorf("P(15) = %v", got)
	}
	if got := ProbAt(steps, 25); got != 1 {
		t.Errorf("P(25) = %v (a 0-probability termination must not decay)", got)
	}
}

func TestThresholdIntervalsMergesAdjacentSteps(t *testing.T) {
	// Steps with different probabilities above the threshold merge into
	// one maximal interval.
	steps := EvolveProbability(
		[]WeightedPoint{wp(10, 0.9), wp(20, 0.9)},
		nil, 0,
	)
	got := ThresholdIntervals(steps, 0.8)
	if len(got) != 1 || got[0].Since != 10 {
		t.Errorf("thresholded = %v, want one interval from 10", got)
	}
}

func TestProbAtOutsideSteps(t *testing.T) {
	if ProbAt(nil, 5) != 0 {
		t.Error("empty belief function must read 0")
	}
}

func TestEngineProbabilisticMode(t *testing.T) {
	e := NewEngine(10000)
	e.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
	e.SetProbabilistic(0.7)
	res := e.Advance(5000, []Event{
		{Name: "begin", Entity: "v", Time: 10, P: 0.5}, // belief 0.5 < θ
		{Name: "begin", Entity: "v", Time: 20, P: 0.5}, // belief 0.75 ≥ θ
		{Name: "finish", Entity: "v", Time: 40, P: 1},  // belief 0
	})
	key := FluentKey{"busy", "v", True}
	got := res.Fluents[key]
	if !reflect.DeepEqual(got, IntervalList{iv(20, 40)}) {
		t.Errorf("probabilistic intervals = %v, want [(20,40]]", got)
	}
	belief := e.BeliefOf(key)
	if belief == nil {
		t.Fatal("no belief function stored")
	}
	if p := ProbAt(belief, 15); math.Abs(p-0.5) > 1e-12 {
		t.Errorf("belief at 15 = %v, want 0.5", p)
	}
	if p := ProbAt(belief, 25); math.Abs(p-0.75) > 1e-12 {
		t.Errorf("belief at 25 = %v, want 0.75", p)
	}
}

func TestEngineProbabilisticCertainEventsMatchCrisp(t *testing.T) {
	// Certain events in probabilistic mode reproduce crisp recognition.
	events := []Event{
		{Name: "begin", Entity: "v", Time: 10},
		{Name: "finish", Entity: "v", Time: 30},
		{Name: "begin", Entity: "v", Time: 50},
	}
	crisp := NewEngine(10000)
	crisp.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
	want := crisp.Advance(5000, events).Fluents

	prob := NewEngine(10000)
	prob.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
	prob.SetProbabilistic(0.5)
	got := prob.Advance(5000, events).Fluents

	if !reflect.DeepEqual(got, want) {
		t.Errorf("probabilistic with certain events diverged:\n got %v\nwant %v", got, want)
	}
}

func TestEngineProbabilisticLeavesMultiValuedCrisp(t *testing.T) {
	identity := func(_ *Ctx, ev Event) []string { return []string{ev.Entity} }
	e := NewEngine(10000)
	e.DefineSimpleFluent(SimpleFluentDef{
		Name: "light",
		Init: map[string][]TriggerRule{
			"red":   {{Event: "toRed", Map: identity}},
			"green": {{Event: "toGreen", Map: identity}},
		},
	})
	e.SetProbabilistic(0.9)
	res := e.Advance(5000, []Event{
		{Name: "toRed", Entity: "x", Time: 10, P: 0.3}, // confidence ignored crisply
		{Name: "toGreen", Entity: "x", Time: 30},
	})
	red := res.Fluents[FluentKey{"light", "x", "red"}]
	if !reflect.DeepEqual(red, IntervalList{iv(10, 30)}) {
		t.Errorf("multi-valued fluent not crisp in prob mode: %v", red)
	}
}
