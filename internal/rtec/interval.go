// Package rtec implements the Event Calculus for Run-Time reasoning
// (RTEC) used by the paper's complex event recognition component (§4):
// linear integer time, fluents with values, maximal-interval
// computation from initiatedAt/terminatedAt rules under the law of
// inertia, built-in start/end events, interval manipulation for
// statically determined fluents, and a windowing semantics with range ω
// and query times Q₁, Q₂, … that forgets movement events older than the
// working memory and tolerates delayed, out-of-order input.
package rtec

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"
)

// Timepoint is an integer timepoint (the timestamps of the movement
// events computed by trajectory detection, in seconds).
type Timepoint = int64

// Inf is the open right endpoint of an ongoing interval.
const Inf Timepoint = math.MaxInt64

// Interval is one maximal interval during which a fluent holds a value
// continuously. Following RTEC semantics, the interval is left-open and
// right-closed: F=V holds at every T with Since < T ≤ Until. A fluent
// initiated at 10 and terminated at 25 holds at all T in (10, 25];
// start(F=V) occurs at 10 and end(F=V) at 25.
type Interval struct {
	Since Timepoint // exclusive: the initiation timepoint
	Until Timepoint // inclusive: the termination timepoint, Inf if ongoing
}

// Open reports whether the interval is ongoing.
func (iv Interval) Open() bool { return iv.Until == Inf }

// Covers reports whether the fluent holds at t under this interval.
func (iv Interval) Covers(t Timepoint) bool { return t > iv.Since && t <= iv.Until }

// String renders the interval.
func (iv Interval) String() string {
	if iv.Open() {
		return fmt.Sprintf("(%d, ∞)", iv.Since)
	}
	return fmt.Sprintf("(%d, %d]", iv.Since, iv.Until)
}

// IntervalList is a list of disjoint, non-adjacent maximal intervals in
// ascending order — the value of holdsFor(F=V, I).
type IntervalList []Interval

// Normalize sorts, merges overlapping or adjacent intervals, and drops
// empty ones, returning a canonical maximal-interval list.
func Normalize(ivs []Interval) IntervalList {
	if len(ivs) == 0 {
		return nil
	}
	sorted := make([]Interval, 0, len(ivs))
	for _, iv := range ivs {
		if iv.Until > iv.Since { // drop empty/negative
			sorted = append(sorted, iv)
		}
	}
	if len(sorted) == 0 {
		return nil
	}
	slices.SortFunc(sorted, func(a, b Interval) int {
		if c := cmp.Compare(a.Since, b.Since); c != 0 {
			return c
		}
		return cmp.Compare(a.Until, b.Until)
	})
	out := IntervalList{sorted[0]}
	for _, iv := range sorted[1:] {
		last := &out[len(out)-1]
		if iv.Since <= last.Until { // overlap or adjacency in (a,b] terms
			if iv.Until > last.Until {
				last.Until = iv.Until
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// HoldsAt reports whether the fluent holds at t.
func (l IntervalList) HoldsAt(t Timepoint) bool {
	i := sort.Search(len(l), func(i int) bool { return l[i].Until >= t })
	return i < len(l) && l[i].Covers(t)
}

// Duration returns the total covered duration; open intervals are
// clipped at the given horizon.
func (l IntervalList) Duration(horizon Timepoint) Timepoint {
	var d Timepoint
	for _, iv := range l {
		until := iv.Until
		if until > horizon {
			until = horizon
		}
		if until > iv.Since {
			d += until - iv.Since
		}
	}
	return d
}

// Union returns the maximal intervals covered by either list — RTEC's
// union_all interval manipulation construct.
func Union(a, b IntervalList) IntervalList {
	merged := make([]Interval, 0, len(a)+len(b))
	merged = append(merged, a...)
	merged = append(merged, b...)
	return Normalize(merged)
}

// Intersect returns the maximal intervals covered by both lists —
// RTEC's intersect_all construct.
func Intersect(a, b IntervalList) IntervalList {
	var out []Interval
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		lo := a[i].Since
		if b[j].Since > lo {
			lo = b[j].Since
		}
		hi := a[i].Until
		if b[j].Until < hi {
			hi = b[j].Until
		}
		if hi > lo {
			out = append(out, Interval{Since: lo, Until: hi})
		}
		if a[i].Until < b[j].Until {
			i++
		} else {
			j++
		}
	}
	return Normalize(out)
}

// Complement returns the maximal sub-intervals of window that are not
// covered by l — RTEC's relative_complement_all against a reference
// interval.
func Complement(window Interval, l IntervalList) IntervalList {
	var out []Interval
	cur := window.Since
	for _, iv := range l {
		if iv.Until <= window.Since {
			continue
		}
		if iv.Since >= window.Until {
			break
		}
		if iv.Since > cur {
			hi := iv.Since
			if hi > window.Until {
				hi = window.Until
			}
			out = append(out, Interval{Since: cur, Until: hi})
		}
		if iv.Until > cur {
			cur = iv.Until
		}
	}
	if cur < window.Until {
		out = append(out, Interval{Since: cur, Until: window.Until})
	}
	return Normalize(out)
}

// Clip restricts the list to the given window interval.
func Clip(window Interval, l IntervalList) IntervalList {
	var out []Interval
	for _, iv := range l {
		lo, hi := iv.Since, iv.Until
		if lo < window.Since {
			lo = window.Since
		}
		if hi > window.Until && !iv.Open() {
			hi = window.Until
		}
		if iv.Open() {
			hi = Inf
			if lo >= window.Until {
				continue
			}
		}
		if hi > lo {
			out = append(out, Interval{Since: lo, Until: hi})
		}
	}
	return Normalize(out)
}
