package rtec

import (
	"cmp"
	"fmt"
	"slices"
	"sort"
)

// compareEventTime orders events chronologically; it is a concrete
// comparator for slices.SortStableFunc so the per-query sorts of the
// recognition hot path avoid reflection.
func compareEventTime(a, b Event) int { return cmp.Compare(a.Time, b.Time) }

// compareWeightedTime orders weighted points chronologically.
func compareWeightedTime(a, b WeightedPoint) int { return cmp.Compare(a.Time, b.Time) }

// Event is one instantaneous event occurrence: an input movement event
// from trajectory detection (turn, speedChange, gap, or the start/end
// markers of durative MEs), a built-in start/end event of a fluent, or
// a derived (recognized) instantaneous complex event. Entity is the
// subject (a vessel MMSI or an area ID); Lon/Lat carry the vessel
// coordinates that accompany every critical ME (the paper's coord
// fluent).
type Event struct {
	Name   string
	Entity string
	Time   Timepoint
	Lon    float64
	Lat    float64
	// P is the detection confidence of the event in (0, 1]; zero means
	// certain (1), so crisp callers can ignore the field. It is only
	// consulted in probabilistic mode.
	P float64
}

// certainty normalizes the confidence field.
func certainty(ev Event) float64 {
	if ev.P <= 0 || ev.P > 1 {
		return 1
	}
	return ev.P
}

// String renders the event as happensAt(name(entity), t).
func (e Event) String() string {
	return fmt.Sprintf("happensAt(%s(%s), %d)", e.Name, e.Entity, e.Time)
}

// FluentKey identifies one fluent instance with a value: F(Entity)=Value.
type FluentKey struct {
	Fluent string
	Entity string
	Value  string
}

// String renders the key as fluent(entity)=value.
func (k FluentKey) String() string {
	return fmt.Sprintf("%s(%s)=%s", k.Fluent, k.Entity, k.Value)
}

// True is the conventional value of Boolean fluents.
const True = "true"

// TriggerRule relates an event pattern to the fluent instances it
// initiates or terminates (or, for event definitions, the derived
// events it produces). When an event named Event occurs at T, Map
// returns the entities of the defined fluent/event affected at T —
// empty when the rule's other conditions do not hold. Map receives the
// evaluation context for holdsAt queries and atemporal predicates over
// static data.
type TriggerRule struct {
	Event string
	Map   func(ctx *Ctx, ev Event) []string
}

// SimpleFluentDef defines a simple fluent: per value, the initiatedAt
// and terminatedAt rules. Maximal intervals follow the law of inertia,
// with initiation of a different value breaking the current one
// (the paper's rules (1) and (2)).
type SimpleFluentDef struct {
	Name string
	Init map[string][]TriggerRule // value → initiation rules
	Term map[string][]TriggerRule // value → termination rules
}

// EventDef defines a derived instantaneous complex event by happensAt
// rules (e.g. illegalShipping, rule (5) of the paper).
type EventDef struct {
	Name  string
	Rules []TriggerRule
}

// InputFluent declares a durative input fluent whose maximal intervals
// are delivered as paired start/end events in the ME stream (e.g. the
// tracker's stopStart/stopEnd demarcating stopped(Vessel)=true).
type InputFluent struct {
	Name       string
	StartEvent string
	EndEvent   string
}

// Stats counts engine activity.
type Stats struct {
	EventsIn      int // events admitted into the working memory
	EventsLate    int // events discarded for arriving after their window
	QuerySteps    int // Advance calls
	DerivedEvents int // instantaneous CE occurrences recognized
}

// Engine is one RTEC run-time: a working memory of events within the
// window range ω, plus the registered event description (input fluents,
// simple fluent definitions, derived event definitions). Definitions
// are evaluated in registration order; a rule may consult only fluents
// defined earlier in that order (a stratification the event description
// developer chooses, as in RTEC's dependency graph).
type Engine struct {
	window Timepoint // ω in seconds

	inputFluents []InputFluent
	defs         []definition // simple and static fluents, in order
	eventDefs    []EventDef
	declared     map[string]map[string]bool // fluent → declared entities

	memory  []Event // working memory, kept sorted by time
	pending []Event // events with occurrence time after the last query time

	fluents map[FluentKey]IntervalList // all computed at the last query time
	beliefs map[FluentKey][]ProbStep   // belief functions (probabilistic mode)
	lastQ   Timepoint

	// theta > 0 enables probabilistic recognition of Boolean simple
	// fluents: maximal intervals are the periods where belief ≥ theta.
	theta float64

	stats Stats
}

// NewEngine returns an engine with window range ω (seconds).
// It panics for a non-positive window.
func NewEngine(windowSeconds Timepoint) *Engine {
	if windowSeconds <= 0 {
		panic("rtec: window must be positive")
	}
	return &Engine{
		window:  windowSeconds,
		fluents: make(map[FluentKey]IntervalList),
	}
}

// SetProbabilistic enables Prob-EC evaluation of Boolean simple fluents
// (paper §7's uncertainty direction): event confidences evolve a belief
// function under probabilistic inertia, and a fluent's maximal
// intervals are the periods where belief is at least theta. Fluents
// with non-Boolean values and input fluents remain crisp. Pass 0 to
// return to crisp recognition.
func (e *Engine) SetProbabilistic(theta float64) { e.theta = theta }

// BeliefOf returns the belief step function of a Boolean simple fluent
// instance as of the last query time (probabilistic mode only).
func (e *Engine) BeliefOf(key FluentKey) []ProbStep { return e.beliefs[key] }

// DeclareInputFluent registers a durative input fluent.
func (e *Engine) DeclareInputFluent(f InputFluent) { e.inputFluents = append(e.inputFluents, f) }

// definition is one entry of the ordered fluent definition list:
// either a simple fluent or a statically determined one.
type definition struct {
	simple *SimpleFluentDef
	static *StaticFluentDef
}

// DefineSimpleFluent registers a simple fluent definition.
func (e *Engine) DefineSimpleFluent(def SimpleFluentDef) {
	e.defs = append(e.defs, definition{simple: &def})
}

// DefineEvent registers a derived event definition.
func (e *Engine) DefineEvent(def EventDef) { e.eventDefs = append(e.eventDefs, def) }

// Stats returns a snapshot of the counters.
func (e *Engine) Stats() Stats { return e.stats }

// Result is the outcome of one query step.
type Result struct {
	Query Timepoint
	// Derived lists the instantaneous complex events recognized from the
	// current window contents, in chronological order.
	Derived []Event
	// Fluents holds the maximal intervals of every fluent instance
	// (input, simple, computed) derivable from the window contents.
	Fluents map[FluentKey]IntervalList
}

// Advance performs complex event recognition at query time q: events
// received since the previous step are merged into the working memory,
// events at or before q-ω are forgotten (newly arriving ones that old
// are counted as lost, exactly the paper's Figure 5 semantics), and all
// definitions are re-evaluated over the window contents.
func (e *Engine) Advance(q Timepoint, incoming []Event) Result {
	e.stats.QuerySteps++
	windowStart := q - e.window

	// Admit pending events whose occurrence time is now within reach.
	carry := e.pending
	e.pending = nil
	for _, batch := range [2][]Event{carry, incoming} {
		for _, ev := range batch {
			switch {
			case ev.Time > q:
				e.pending = append(e.pending, ev)
			case ev.Time <= windowStart:
				e.stats.EventsLate++
			default:
				e.memory = append(e.memory, ev)
				e.stats.EventsIn++
			}
		}
	}
	// Forget events that fell out of the window.
	live := e.memory[:0]
	for _, ev := range e.memory {
		if ev.Time > windowStart {
			live = append(live, ev)
		}
	}
	e.memory = live
	slices.SortStableFunc(e.memory, compareEventTime)

	ctx := &Ctx{
		engine:      e,
		Query:       q,
		WindowStart: windowStart,
		fluents:     make(map[FluentKey]IntervalList),
		beliefs:     make(map[FluentKey][]ProbStep),
		byName:      make(map[string][]Event),
	}
	for _, ev := range e.memory {
		ctx.byName[ev.Name] = append(ctx.byName[ev.Name], ev)
	}

	// 1. Input durative fluents from their start/end marker events.
	for _, f := range e.inputFluents {
		ctx.computeInputFluent(f)
	}
	// 2. Definitions in registration order. Derived events from event
	// definitions become visible to later definitions.
	var derived []Event
	for _, def := range e.eventDefs {
		occ := ctx.evalEventDef(def)
		derived = append(derived, occ...)
		for _, ev := range occ {
			ctx.byName[ev.Name] = append(ctx.byName[ev.Name], ev)
		}
	}
	for _, def := range e.defs {
		switch {
		case def.simple != nil:
			ctx.evalSimpleFluent(*def.simple)
		case def.static != nil:
			ctx.evalStaticFluent(def.static)
		}
	}

	slices.SortStableFunc(derived, compareEventTime)
	e.stats.DerivedEvents += len(derived)
	e.fluents = ctx.fluents
	e.beliefs = ctx.beliefs
	e.lastQ = q

	return Result{Query: q, Derived: derived, Fluents: ctx.fluents}
}

// HoldsFor returns the maximal intervals of a fluent instance as of the
// last query time.
func (e *Engine) HoldsFor(key FluentKey) IntervalList { return e.fluents[key] }

// HoldsAt reports whether the fluent instance held at t, as of the last
// query time.
func (e *Engine) HoldsAt(key FluentKey, t Timepoint) bool { return e.fluents[key].HoldsAt(t) }

// WorkingMemorySize returns the number of events currently retained.
func (e *Engine) WorkingMemorySize() int { return len(e.memory) }

// Ctx is the evaluation context passed to rules: it exposes holdsAt
// queries over already-computed fluents, the event window, and the
// current query time.
type Ctx struct {
	engine      *Engine
	Query       Timepoint
	WindowStart Timepoint

	fluents map[FluentKey]IntervalList
	beliefs map[FluentKey][]ProbStep
	byName  map[string][]Event
}

// HoldsAt reports whether a fluent instance (computed earlier in the
// evaluation order) holds at t.
func (c *Ctx) HoldsAt(fluent, entity, value string, t Timepoint) bool {
	return c.fluents[FluentKey{Fluent: fluent, Entity: entity, Value: value}].HoldsAt(t)
}

// IntervalsOf returns the computed maximal intervals of a fluent
// instance.
func (c *Ctx) IntervalsOf(fluent, entity, value string) IntervalList {
	return c.fluents[FluentKey{Fluent: fluent, Entity: entity, Value: value}]
}

// EventsNamed returns the window occurrences of the named event in
// chronological order, including derived and built-in start/end events
// already produced.
func (c *Ctx) EventsNamed(name string) []Event { return c.byName[name] }

// EntitiesHolding returns the entities for which fluent=value holds at
// t, in sorted order. It scans the computed instances of the fluent —
// the helper behind aggregate conditions like vesselsStoppedIn.
func (c *Ctx) EntitiesHolding(fluent, value string, t Timepoint) []string {
	var out []string
	for key, ivs := range c.fluents {
		if key.Fluent == fluent && key.Value == value && ivs.HoldsAt(t) {
			out = append(out, key.Entity)
		}
	}
	sort.Strings(out)
	return out
}

// SetComputedFluent installs externally computed maximal intervals for
// a fluent instance (RTEC's statically determined fluents): later
// definitions can consult it via HoldsAt. The intervals are clipped to
// the current window.
func (c *Ctx) SetComputedFluent(key FluentKey, ivs IntervalList) {
	c.fluents[key] = Clip(Interval{Since: c.WindowStart, Until: Inf}, ivs)
	c.emitStartEnd(key, c.fluents[key])
}

// computeInputFluent converts paired start/end events into maximal
// intervals per entity. An end without a preceding start yields an
// interval open on the left at the window start (the episode began
// before the working memory); a start without an end yields an ongoing
// interval.
func (c *Ctx) computeInputFluent(f InputFluent) {
	type state struct {
		open      bool
		since     Timepoint
		intervals []Interval
	}
	states := make(map[string]*state)
	get := func(entity string) *state {
		s := states[entity]
		if s == nil {
			s = &state{}
			states[entity] = s
		}
		return s
	}
	starts := c.byName[f.StartEvent]
	ends := c.byName[f.EndEvent]
	merged := make([]Event, 0, len(starts)+len(ends))
	merged = append(merged, starts...)
	merged = append(merged, ends...)
	slices.SortStableFunc(merged, compareEventTime)

	for _, ev := range merged {
		s := get(ev.Entity)
		if ev.Name == f.StartEvent {
			if !s.open {
				s.open = true
				s.since = ev.Time
			}
			continue
		}
		// End event.
		since := s.since
		if !s.open {
			since = c.WindowStart // began before the window
		}
		s.intervals = append(s.intervals, Interval{Since: since, Until: ev.Time})
		s.open = false
	}
	entities := make([]string, 0, len(states))
	for entity := range states {
		entities = append(entities, entity)
	}
	sort.Strings(entities)
	for _, entity := range entities {
		s := states[entity]
		if s.open {
			s.intervals = append(s.intervals, Interval{Since: s.since, Until: Inf})
		}
		key := FluentKey{Fluent: f.Name, Entity: entity, Value: True}
		c.fluents[key] = Normalize(s.intervals)
		// Synthesize the built-in start(F)/end(F) events so downstream
		// rules trigger uniformly on "start:<fluent>"/"end:<fluent>"
		// regardless of whether F is an input or a defined fluent.
		c.emitStartEnd(key, c.fluents[key])
	}
}

// evalEventDef evaluates a derived event definition over the window.
func (c *Ctx) evalEventDef(def EventDef) []Event {
	var out []Event
	for _, rule := range def.Rules {
		for _, ev := range c.byName[rule.Event] {
			for _, entity := range rule.Map(c, ev) {
				out = append(out, Event{
					Name: def.Name, Entity: entity, Time: ev.Time,
					Lon: ev.Lon, Lat: ev.Lat,
				})
			}
		}
	}
	slices.SortStableFunc(out, compareEventTime)
	return out
}

// evalSimpleFluent computes the maximal intervals of a simple fluent
// for every entity and value, implementing holdsFor with the broken
// semantics of the paper's rules (1) and (2).
func (c *Ctx) evalSimpleFluent(def SimpleFluentDef) {
	type points struct {
		inits map[string][]WeightedPoint // value → initiation points
		terms map[string][]WeightedPoint // value → termination points
	}
	byEntity := make(map[string]*points)
	get := func(entity string) *points {
		p := byEntity[entity]
		if p == nil {
			p = &points{
				inits: make(map[string][]WeightedPoint),
				terms: make(map[string][]WeightedPoint),
			}
			byEntity[entity] = p
		}
		return p
	}
	for value, rules := range def.Init {
		for _, rule := range rules {
			for _, ev := range c.byName[rule.Event] {
				for _, entity := range rule.Map(c, ev) {
					if !c.engine.declaredOK(def.Name, entity) {
						continue
					}
					p := get(entity)
					p.inits[value] = append(p.inits[value], WeightedPoint{Time: ev.Time, P: certainty(ev)})
				}
			}
		}
	}
	for value, rules := range def.Term {
		for _, rule := range rules {
			for _, ev := range c.byName[rule.Event] {
				for _, entity := range rule.Map(c, ev) {
					if !c.engine.declaredOK(def.Name, entity) {
						continue
					}
					p := get(entity)
					p.terms[value] = append(p.terms[value], WeightedPoint{Time: ev.Time, P: certainty(ev)})
				}
			}
		}
	}

	entities := make([]string, 0, len(byEntity))
	for entity := range byEntity {
		entities = append(entities, entity)
	}
	sort.Strings(entities)

	for _, entity := range entities {
		p := byEntity[entity]
		// Probabilistic recognition applies to Boolean fluents: a single
		// True value with init/term rules (Prob-EC's setting). Fluents
		// with other values stay crisp.
		if c.engine.theta > 0 && len(p.inits) == 1 && p.inits[True] != nil {
			steps := EvolveProbability(p.inits[True], p.terms[True], 0)
			key := FluentKey{Fluent: def.Name, Entity: entity, Value: True}
			c.beliefs[key] = steps
			c.fluents[key] = ThresholdIntervals(steps, c.engine.theta)
			c.emitStartEnd(key, c.fluents[key])
			continue
		}
		for value, inits := range p.inits {
			// Break points for F=V: terminations of V plus initiations of
			// any other value (rule (2)).
			breaks := append([]WeightedPoint(nil), p.terms[value]...)
			for other, oInits := range p.inits {
				if other != value {
					breaks = append(breaks, oInits...)
				}
			}
			slices.SortFunc(breaks, compareWeightedTime)
			slices.SortFunc(inits, compareWeightedTime)

			var ivs []Interval
			for _, ts := range inits {
				// First break strictly after ts.
				i := sort.Search(len(breaks), func(i int) bool { return breaks[i].Time > ts.Time })
				until := Inf
				if i < len(breaks) {
					until = breaks[i].Time
				}
				ivs = append(ivs, Interval{Since: ts.Time, Until: until})
			}
			key := FluentKey{Fluent: def.Name, Entity: entity, Value: value}
			c.fluents[key] = Normalize(ivs)
			c.emitStartEnd(key, c.fluents[key])
		}
	}
}

// emitStartEnd synthesizes the built-in start(F=V)/end(F=V) events of a
// computed fluent so later definitions can trigger on them. Event names
// are "start:<fluent>" and "end:<fluent>"; only the True value emits
// markers, matching the maritime definitions' usage.
func (c *Ctx) emitStartEnd(key FluentKey, ivs IntervalList) {
	if key.Value != True {
		return
	}
	for _, iv := range ivs {
		c.byName["start:"+key.Fluent] = append(c.byName["start:"+key.Fluent],
			Event{Name: "start:" + key.Fluent, Entity: key.Entity, Time: iv.Since})
		if !iv.Open() {
			c.byName["end:"+key.Fluent] = append(c.byName["end:"+key.Fluent],
				Event{Name: "end:" + key.Fluent, Entity: key.Entity, Time: iv.Until})
		}
	}
}
