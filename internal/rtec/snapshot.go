package rtec

import (
	"cmp"
	"slices"
)

// Checkpoint support. Only the engine's dynamic state is serialized: the
// working memory, events pending beyond the last query time, the
// computed fluent intervals and belief functions, the last query time,
// and the counters. The event description (input fluents, definitions,
// declarations, theta) is code plus configuration — the restoring
// process re-registers it, exactly as it did at first start.

// FluentState is the serialized intervals of one fluent instance.
type FluentState struct {
	Key       FluentKey
	Intervals IntervalList
}

// BeliefState is the serialized belief function of one fluent instance
// (probabilistic mode).
type BeliefState struct {
	Key   FluentKey
	Steps []ProbStep
}

// EngineSnapshot is the serialized dynamic state of an Engine. Map-held
// state is flattened to key-sorted slices so the encoding is
// deterministic: the same engine state always serializes to the same
// bytes.
type EngineSnapshot struct {
	Memory  []Event
	Pending []Event
	Fluents []FluentState
	Beliefs []BeliefState
	LastQ   Timepoint
	Stats   Stats
}

// compareFluentKey orders fluent instances lexicographically.
func compareFluentKey(a, b FluentKey) int {
	if c := cmp.Compare(a.Fluent, b.Fluent); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Entity, b.Entity); c != 0 {
		return c
	}
	return cmp.Compare(a.Value, b.Value)
}

// Snapshot captures the engine's dynamic state. It must not run
// concurrently with Advance.
func (e *Engine) Snapshot() EngineSnapshot {
	snap := EngineSnapshot{
		Memory:  slices.Clone(e.memory),
		Pending: slices.Clone(e.pending),
		LastQ:   e.lastQ,
		Stats:   e.stats,
	}
	for key, ivs := range e.fluents {
		snap.Fluents = append(snap.Fluents, FluentState{Key: key, Intervals: slices.Clone(ivs)})
	}
	slices.SortFunc(snap.Fluents, func(a, b FluentState) int { return compareFluentKey(a.Key, b.Key) })
	for key, steps := range e.beliefs {
		snap.Beliefs = append(snap.Beliefs, BeliefState{Key: key, Steps: slices.Clone(steps)})
	}
	slices.SortFunc(snap.Beliefs, func(a, b BeliefState) int { return compareFluentKey(a.Key, b.Key) })
	return snap
}

// Restore replaces the engine's dynamic state with a snapshot's. The
// event description is untouched: the caller registers it the same way
// it did on the original engine before restoring. It must not run
// concurrently with Advance.
func (e *Engine) Restore(snap EngineSnapshot) {
	e.memory = slices.Clone(snap.Memory)
	e.pending = slices.Clone(snap.Pending)
	e.fluents = make(map[FluentKey]IntervalList, len(snap.Fluents))
	for _, fs := range snap.Fluents {
		e.fluents[fs.Key] = slices.Clone(fs.Intervals)
	}
	if len(snap.Beliefs) > 0 {
		e.beliefs = make(map[FluentKey][]ProbStep, len(snap.Beliefs))
		for _, bs := range snap.Beliefs {
			e.beliefs[bs.Key] = slices.Clone(bs.Steps)
		}
	} else {
		e.beliefs = nil
	}
	e.lastQ = snap.LastQ
	e.stats = snap.Stats
}
