package rtec

import (
	"math/rand"
	"reflect"
	"testing"
)

// randomEvents builds a random stream of begin/finish/toRed/toGreen
// events over a few entities within [1, span].
func randomEvents(rng *rand.Rand, n int, span Timepoint) []Event {
	names := []string{"begin", "finish", "toRed", "toGreen"}
	entities := []string{"a", "b", "c"}
	out := make([]Event, n)
	for i := range out {
		out[i] = Event{
			Name:   names[rng.Intn(len(names))],
			Entity: entities[rng.Intn(len(entities))],
			Time:   1 + Timepoint(rng.Intn(int(span))),
		}
	}
	return out
}

// buildEngine registers one boolean and one multi-valued fluent.
func buildEngine(window Timepoint) *Engine {
	e := NewEngine(window)
	identity := func(_ *Ctx, ev Event) []string { return []string{ev.Entity} }
	e.DefineSimpleFluent(boolFluent("busy", "begin", "finish"))
	e.DefineSimpleFluent(SimpleFluentDef{
		Name: "light",
		Init: map[string][]TriggerRule{
			"red":   {{Event: "toRed", Map: identity}},
			"green": {{Event: "toGreen", Map: identity}},
		},
	})
	return e
}

func TestPropertyFluentsHaveOneValueAtATime(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := buildEngine(10000)
		res := e.Advance(5000, randomEvents(rng, 60, 4000))
		for tp := Timepoint(1); tp <= 4200; tp += 13 {
			for _, entity := range []string{"a", "b", "c"} {
				red := res.Fluents[FluentKey{"light", entity, "red"}].HoldsAt(tp)
				green := res.Fluents[FluentKey{"light", entity, "green"}].HoldsAt(tp)
				if red && green {
					t.Fatalf("seed %d: light(%s) is both red and green at %d", seed, entity, tp)
				}
			}
		}
	}
}

func TestPropertyIntervalsAreMaximalAndDisjoint(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		e := buildEngine(10000)
		res := e.Advance(5000, randomEvents(rng, 80, 4000))
		for key, ivs := range res.Fluents {
			for i := 0; i < len(ivs); i++ {
				if ivs[i].Until <= ivs[i].Since {
					t.Fatalf("seed %d: %v has empty interval %v", seed, key, ivs[i])
				}
				if i > 0 && ivs[i].Since < ivs[i-1].Until {
					t.Fatalf("seed %d: %v intervals overlap: %v then %v",
						seed, key, ivs[i-1], ivs[i])
				}
				if i > 0 && ivs[i].Since == ivs[i-1].Until {
					t.Fatalf("seed %d: %v intervals adjacent (not maximal): %v then %v",
						seed, key, ivs[i-1], ivs[i])
				}
			}
		}
	}
}

func TestPropertyDeliveryOrderIrrelevantWithinWindow(t *testing.T) {
	// Within one window, the recognition outcome must not depend on the
	// order events are delivered in, nor on how they are batched across
	// query steps (as long as nothing falls out of the window).
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		events := randomEvents(rng, 50, 3000)

		oneShot := buildEngine(100000)
		want := oneShot.Advance(5000, events).Fluents

		shuffled := append([]Event(nil), events...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		incremental := buildEngine(100000)
		// Deliver in three arbitrary chunks at increasing query times.
		incremental.Advance(4000, shuffled[:len(shuffled)/3])
		incremental.Advance(4500, shuffled[len(shuffled)/3:2*len(shuffled)/3])
		got := incremental.Advance(5000, shuffled[2*len(shuffled)/3:]).Fluents

		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: incremental shuffled delivery diverged\n got: %v\nwant: %v",
				seed, got, want)
		}
	}
}

func TestPropertyWindowedSubsetOfUnbounded(t *testing.T) {
	// Everything a windowed engine derives must also be derivable by an
	// unbounded one from the same events (forgetting only loses, never
	// invents — modulo intervals clipped at the window edge).
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		events := randomEvents(rng, 60, 4000)

		windowed := buildEngine(1500)
		w := windowed.Advance(5000, events).Fluents
		unbounded := buildEngine(1 << 40)
		u := unbounded.Advance(5000, events).Fluents

		for key, ivs := range w {
			for _, iv := range ivs {
				if iv.Since <= 5000-1500 {
					continue // clipped at the window edge; shape differs
				}
				probe := iv.Since + 1
				if !u[key].HoldsAt(probe) {
					t.Fatalf("seed %d: windowed derived %v at %d but unbounded did not",
						seed, key, probe)
				}
			}
		}
	}
}
