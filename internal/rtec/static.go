package rtec

import "sort"

// Statically determined fluents and declarations — the remaining RTEC
// definition forms (Artikis et al., "An Event Calculus for Event
// Recognition"). A statically determined fluent is defined directly by
// interval manipulation over other fluents' maximal intervals
// (union_all, intersect_all, relative_complement_all) instead of
// initiatedAt/terminatedAt rules. Declarations restrict grounding: the
// entities for which a fluent is computed (the paper's footnote 3:
// officials "restrict computation of the maximal intervals of the
// suspicious fluent to these areas ... through the 'declarations'
// facility of RTEC").

// StaticFluentDef defines a statically determined fluent: Compute
// receives the evaluation context (with every earlier definition's
// intervals available) and one declared entity, and returns the
// fluent's maximal intervals for that entity via interval algebra.
type StaticFluentDef struct {
	Name string
	// Entities lists the declared groundings. When nil, EntitiesOf is
	// consulted instead.
	Entities []string
	// EntitiesOf derives the groundings from the window contents (e.g.
	// every vessel with events this window). Ignored when Entities is
	// set.
	EntitiesOf func(ctx *Ctx) []string
	// Compute returns the maximal intervals of fluent=true for the
	// entity. Returned intervals are clipped to the window.
	Compute func(ctx *Ctx, entity string) IntervalList
}

// DefineStaticFluent registers a statically determined fluent. Static
// fluents are evaluated after input fluents and derived events, in
// registration order, interleaved with simple fluents in one combined
// definition order.
func (e *Engine) DefineStaticFluent(def StaticFluentDef) {
	e.defs = append(e.defs, definition{static: &def})
}

// Declare limits a previously registered simple fluent to the given
// entities: initiations and terminations mapped to undeclared entities
// are dropped. Declaring an unknown fluent is a no-op, matching RTEC's
// permissive declarations.
func (e *Engine) Declare(fluent string, entities []string) {
	if e.declared == nil {
		e.declared = make(map[string]map[string]bool)
	}
	set := make(map[string]bool, len(entities))
	for _, ent := range entities {
		set[ent] = true
	}
	e.declared[fluent] = set
}

// declaredOK reports whether the entity passes the fluent's
// declaration (fluents without declarations accept everything).
func (e *Engine) declaredOK(fluent, entity string) bool {
	set, ok := e.declared[fluent]
	if !ok {
		return true
	}
	return set[entity]
}

// evalStaticFluent computes a statically determined fluent for its
// declared entities.
func (c *Ctx) evalStaticFluent(def *StaticFluentDef) {
	entities := def.Entities
	if entities == nil && def.EntitiesOf != nil {
		entities = def.EntitiesOf(c)
	}
	sorted := append([]string(nil), entities...)
	sort.Strings(sorted)
	window := Interval{Since: c.WindowStart, Until: Inf}
	for _, entity := range sorted {
		if !c.engine.declaredOK(def.Name, entity) {
			continue
		}
		ivs := Clip(window, def.Compute(c, entity))
		if len(ivs) == 0 {
			continue
		}
		key := FluentKey{Fluent: def.Name, Entity: entity, Value: True}
		c.fluents[key] = ivs
		c.emitStartEnd(key, ivs)
	}
}
