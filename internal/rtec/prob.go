package rtec

import (
	"cmp"
	"slices"
)

// Probabilistic fluents — the uncertainty treatment the paper plans
// (§7: "we are porting RTEC into probabilistic logic programming
// frameworks, in order to deal with imperfect complex event
// definitions, incomplete and erroneous data streams"). This follows
// the Prob-EC semantics of Skarlatidis et al.: initiation and
// termination occurrences carry probabilities, and the probability
// that a fluent holds evolves by probabilistic inertia —
//
//	P(holds after T) = P(holds before T)·(1 − P(term at T))
//	                 + (1 − P(holds before T))·P(init at T)
//
// so noisy initiations accumulate belief gradually and isolated noise
// decays instead of flipping the fluent outright. Crisp RTEC is the
// special case where every occurrence has probability 1.

// WeightedPoint is one initiation or termination occurrence with the
// probability that it truly happened (e.g. the detection confidence of
// the movement event behind it).
type WeightedPoint struct {
	Time Timepoint
	P    float64
}

// ProbStep is one step of the resulting belief function: the fluent
// holds with probability P for all T with Since < T ≤ Until.
type ProbStep struct {
	Since Timepoint
	Until Timepoint // Inf on the last step
	P     float64
}

// EvolveProbability computes the belief step function of a fluent from
// weighted initiation and termination occurrences, starting from prior
// (the belief before the first occurrence; 0 for fluents assumed false
// at the window start). Occurrences sharing a timepoint compose
// termination-then-initiation, matching the crisp engine's broken
// semantics where an initiation at T re-establishes the fluent.
func EvolveProbability(inits, terms []WeightedPoint, prior float64) []ProbStep {
	type occ struct {
		t            Timepoint
		pInit, pTerm float64
	}
	merged := make(map[Timepoint]*occ)
	at := func(t Timepoint) *occ {
		o := merged[t]
		if o == nil {
			o = &occ{t: t}
			merged[t] = o
		}
		return o
	}
	for _, w := range inits {
		o := at(w.Time)
		// Multiple initiations at one timepoint compose as noisy-or.
		o.pInit = 1 - (1-o.pInit)*(1-clamp01(w.P))
	}
	for _, w := range terms {
		o := at(w.Time)
		o.pTerm = 1 - (1-o.pTerm)*(1-clamp01(w.P))
	}
	occs := make([]*occ, 0, len(merged))
	for _, o := range merged {
		occs = append(occs, o)
	}
	slices.SortFunc(occs, func(a, b *occ) int { return cmp.Compare(a.t, b.t) })

	p := clamp01(prior)
	var steps []ProbStep
	last := Timepoint(-1 << 62)
	for _, o := range occs {
		if p != clamp01(prior) || len(steps) > 0 {
			// close the previous step at this occurrence
		}
		steps = append(steps, ProbStep{Since: last, Until: o.t, P: p})
		// Termination first, then initiation: an event at T that both
		// breaks and re-establishes the fluent leaves it re-established.
		p = p * (1 - o.pTerm)
		p = p + (1-p)*o.pInit
		last = o.t
	}
	steps = append(steps, ProbStep{Since: last, Until: Inf, P: p})
	// Drop the leading degenerate step when the first occurrence is the
	// earliest representable time.
	out := steps[:0]
	for _, s := range steps {
		if s.Until > s.Since {
			out = append(out, s)
		}
	}
	return out
}

// clamp01 bounds a probability.
func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// ProbAt evaluates the belief function at t.
func ProbAt(steps []ProbStep, t Timepoint) float64 {
	for _, s := range steps {
		if t > s.Since && t <= s.Until {
			return s.P
		}
	}
	return 0
}

// ThresholdIntervals crisps a belief function: the maximal intervals
// where the fluent holds with probability at least theta — what a
// probabilistic recognizer reports to the end user.
func ThresholdIntervals(steps []ProbStep, theta float64) IntervalList {
	var ivs []Interval
	for _, s := range steps {
		if s.P >= theta {
			ivs = append(ivs, Interval{Since: s.Since, Until: s.Until})
		}
	}
	return Normalize(ivs)
}
