package rtec_test

import (
	"fmt"

	"repro/internal/rtec"
)

// Example reproduces the paper's §4.1 semantics walkthrough: a fluent
// initiated at 10 and 20 and terminated at 25 and 30 holds at all T
// with 10 < T ≤ 25; start(F) occurs at 10 only and end(F) at 25 only.
func Example() {
	engine := rtec.NewEngine(1000)
	identity := func(_ *rtec.Ctx, ev rtec.Event) []string { return []string{ev.Entity} }
	engine.DefineSimpleFluent(rtec.SimpleFluentDef{
		Name: "f",
		Init: map[string][]rtec.TriggerRule{rtec.True: {{Event: "init", Map: identity}}},
		Term: map[string][]rtec.TriggerRule{rtec.True: {{Event: "term", Map: identity}}},
	})

	res := engine.Advance(100, []rtec.Event{
		{Name: "init", Entity: "x", Time: 10},
		{Name: "init", Entity: "x", Time: 20},
		{Name: "term", Entity: "x", Time: 25},
		{Name: "term", Entity: "x", Time: 30},
	})

	key := rtec.FluentKey{Fluent: "f", Entity: "x", Value: rtec.True}
	fmt.Println("holdsFor:", res.Fluents[key])
	fmt.Println("holdsAt(10):", engine.HoldsAt(key, 10))
	fmt.Println("holdsAt(25):", engine.HoldsAt(key, 25))
	fmt.Println("holdsAt(26):", engine.HoldsAt(key, 26))
	// Output:
	// holdsFor: [(10, 25]]
	// holdsAt(10): false
	// holdsAt(25): true
	// holdsAt(26): false
}

// ExampleEvolveProbability shows probabilistic inertia: three
// half-confident initiations accumulate belief, which a threshold
// turns into a crisp interval.
func ExampleEvolveProbability() {
	steps := rtec.EvolveProbability(
		[]rtec.WeightedPoint{{Time: 10, P: 0.5}, {Time: 20, P: 0.5}, {Time: 30, P: 0.5}},
		nil, 0,
	)
	fmt.Printf("belief at 15: %.3f\n", rtec.ProbAt(steps, 15))
	fmt.Printf("belief at 25: %.3f\n", rtec.ProbAt(steps, 25))
	fmt.Printf("belief at 35: %.3f\n", rtec.ProbAt(steps, 35))
	fmt.Println("holds (θ=0.8):", rtec.ThresholdIntervals(steps, 0.8))
	// Output:
	// belief at 15: 0.500
	// belief at 25: 0.750
	// belief at 35: 0.875
	// holds (θ=0.8): [(30, ∞)]
}
