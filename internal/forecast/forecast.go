// Package forecast implements the short-term traffic forecasting the
// paper lists as future work (§7): "Traffic forecasts at short-term
// horizons (e.g., 5, 15, or 30 minutes ahead) could also be issued,
// gracefully weighing online events with offline trajectory analytics."
//
// The predictor dead-reckons each vessel from its current velocity
// vector, but weighs the projection with the online movement events of
// the trajectory detection component: a vessel inside a long-term stop
// is predicted to stay put, a slow-motion vessel is projected at its
// episode speed, and a vessel in a communication gap is flagged as
// unpredictable beyond its last known position.
package forecast

import (
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/tracker"
)

// Confidence grades a forecast.
type Confidence int

// Confidence levels.
const (
	// ConfidenceDead marks vessels silent beyond the gap threshold: the
	// projection is the last known position and should not be trusted.
	ConfidenceDead Confidence = iota
	// ConfidenceLow marks vessels whose motion regime makes linear
	// projection unreliable (recent turns, sparse history).
	ConfidenceLow
	// ConfidenceHigh marks steadily cruising or stopped vessels.
	ConfidenceHigh
)

// String names the confidence.
func (c Confidence) String() string {
	return []string{"dead", "low", "high"}[c]
}

// Prediction is one vessel's forecast position at a horizon.
type Prediction struct {
	MMSI       uint32
	At         time.Time
	Pos        geo.Point
	Confidence Confidence
}

// Forecaster maintains per-vessel kinematic state from the positional
// stream and the tracker's movement events.
type Forecaster struct {
	vessels map[uint32]*fcState
	params  tracker.Params
}

type fcState struct {
	last     ais.Fix
	haveLast bool
	vel      geo.Velocity
	haveVel  bool
	stopped  bool
	slow     bool
	slowKn   float64
	lastTurn time.Time
}

// New returns a forecaster using the given tracking parameters (for
// the gap threshold and speed bands).
func New(params tracker.Params) *Forecaster {
	return &Forecaster{
		vessels: make(map[uint32]*fcState),
		params:  params,
	}
}

// ObserveFix updates kinematics with a cleaned position report.
func (f *Forecaster) ObserveFix(fx ais.Fix) {
	st := f.state(fx.MMSI)
	if st.haveLast && fx.Time.After(st.last.Time) {
		if v, ok := geo.VelocityBetween(st.last.Pos, st.last.Time, fx.Pos, fx.Time); ok {
			st.vel = v
			st.haveVel = true
		}
	}
	st.last = fx
	st.haveLast = true
}

// ObserveEvents updates motion regimes with the tracker's critical
// points, the "online events" the forecast weighs in.
func (f *Forecaster) ObserveEvents(points []tracker.CriticalPoint) {
	for _, cp := range points {
		st := f.state(cp.MMSI)
		switch cp.Type {
		case tracker.EventStopStart:
			st.stopped = true
		case tracker.EventStopEnd:
			st.stopped = false
		case tracker.EventSlowStart:
			st.slow = true
			st.slowKn = cp.SpeedKn
		case tracker.EventSlowEnd:
			st.slow = false
		case tracker.EventTurn, tracker.EventSmoothTurn:
			st.lastTurn = cp.Time
		case tracker.EventGapEnd:
			// Fresh contact after silence: prior velocity is stale.
			st.haveVel = false
		}
	}
}

func (f *Forecaster) state(mmsi uint32) *fcState {
	st := f.vessels[mmsi]
	if st == nil {
		st = &fcState{}
		f.vessels[mmsi] = st
	}
	return st
}

// Predict projects one vessel to now+horizon. ok is false for unknown
// vessels.
func (f *Forecaster) Predict(mmsi uint32, now time.Time, horizon time.Duration) (Prediction, bool) {
	st := f.vessels[mmsi]
	if st == nil || !st.haveLast {
		return Prediction{}, false
	}
	p := Prediction{MMSI: mmsi, At: now.Add(horizon)}

	silent := now.Sub(st.last.Time)
	switch {
	case silent >= f.params.GapPeriod:
		// In a communication gap: hold the last known position, flagged.
		p.Pos = st.last.Pos
		p.Confidence = ConfidenceDead
		return p, true
	case st.stopped || !st.haveVel:
		p.Pos = st.last.Pos
		if st.stopped {
			p.Confidence = ConfidenceHigh
		} else {
			p.Confidence = ConfidenceLow
		}
		return p, true
	}

	speed := st.vel.SpeedKnots
	if st.slow && st.slowKn > 0 {
		speed = st.slowKn
	}
	// Project from the last fix across the elapsed silence plus the
	// horizon.
	dt := now.Add(horizon).Sub(st.last.Time).Seconds()
	if dt < 0 {
		dt = 0
	}
	p.Pos = geo.Destination(st.last.Pos, st.vel.HeadingDeg, geo.KnotsToMetersPerSecond(speed)*dt)
	p.Confidence = ConfidenceHigh
	if st.slow || now.Sub(st.lastTurn) < 5*time.Minute {
		// Meandering regimes and fresh course changes degrade linear
		// projection.
		p.Confidence = ConfidenceLow
	}
	return p, true
}

// PredictAll projects every tracked vessel, in unspecified order.
func (f *Forecaster) PredictAll(now time.Time, horizon time.Duration) []Prediction {
	out := make([]Prediction, 0, len(f.vessels))
	for mmsi := range f.vessels {
		if p, ok := f.Predict(mmsi, now, horizon); ok {
			out = append(out, p)
		}
	}
	return out
}

// VesselCount returns the number of vessels with forecast state.
func (f *Forecaster) VesselCount() int { return len(f.vessels) }
