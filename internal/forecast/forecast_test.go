package forecast

import (
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/fleetsim"
	"repro/internal/geo"
	"repro/internal/stream"
	"repro/internal/tracker"
)

var t0 = time.Date(2009, 6, 1, 6, 0, 0, 0, time.UTC)

// cruiseFixes emits a straight 12-knot track.
func cruiseFixes(mmsi uint32, heading float64, n int) []ais.Fix {
	pos := geo.Point{Lon: 24, Lat: 37}
	fixes := make([]ais.Fix, n)
	for i := 0; i < n; i++ {
		pos = geo.Destination(pos, heading, geo.KnotsToMetersPerSecond(12)*60)
		fixes[i] = ais.Fix{MMSI: mmsi, Pos: pos, Time: t0.Add(time.Duration(i+1) * time.Minute)}
	}
	return fixes
}

func TestPredictCruisingVessel(t *testing.T) {
	f := New(tracker.DefaultParams())
	fixes := cruiseFixes(1, 90, 10)
	for _, fx := range fixes {
		f.ObserveFix(fx)
	}
	now := fixes[len(fixes)-1].Time
	for _, horizon := range []time.Duration{5 * time.Minute, 15 * time.Minute, 30 * time.Minute} {
		p, ok := f.Predict(1, now, horizon)
		if !ok {
			t.Fatal("no prediction")
		}
		if p.Confidence != ConfidenceHigh {
			t.Errorf("horizon %v: confidence %v", horizon, p.Confidence)
		}
		// Ground truth: continue straight at 12 knots.
		want := geo.Destination(fixes[len(fixes)-1].Pos, 90,
			geo.KnotsToMetersPerSecond(12)*horizon.Seconds())
		if d := geo.Haversine(p.Pos, want); d > 100 {
			t.Errorf("horizon %v: forecast %0.f m off the dead-reckoned truth", horizon, d)
		}
	}
}

func TestPredictStoppedVesselStaysPut(t *testing.T) {
	f := New(tracker.DefaultParams())
	fix := ais.Fix{MMSI: 2, Pos: geo.Point{Lon: 23.6, Lat: 37.9}, Time: t0}
	f.ObserveFix(fix)
	f.ObserveEvents([]tracker.CriticalPoint{
		{MMSI: 2, Type: tracker.EventStopStart, Pos: fix.Pos, Time: t0},
	})
	p, ok := f.Predict(2, t0.Add(time.Minute), 30*time.Minute)
	if !ok || p.Pos != fix.Pos {
		t.Errorf("stopped vessel predicted to move: %+v", p)
	}
	if p.Confidence != ConfidenceHigh {
		t.Errorf("confidence = %v", p.Confidence)
	}
	// After the stop ends and the vessel moves, projection resumes.
	f.ObserveEvents([]tracker.CriticalPoint{{MMSI: 2, Type: tracker.EventStopEnd, Time: t0.Add(time.Hour)}})
}

func TestPredictSilentVesselFlaggedDead(t *testing.T) {
	f := New(tracker.DefaultParams())
	for _, fx := range cruiseFixes(3, 45, 5) {
		f.ObserveFix(fx)
	}
	// 20 minutes of silence exceeds the 10-minute gap threshold.
	now := t0.Add(25 * time.Minute)
	p, ok := f.Predict(3, now, 5*time.Minute)
	if !ok {
		t.Fatal("no prediction")
	}
	if p.Confidence != ConfidenceDead {
		t.Errorf("confidence = %v, want dead", p.Confidence)
	}
}

func TestPredictAfterTurnIsLowConfidence(t *testing.T) {
	f := New(tracker.DefaultParams())
	fixes := cruiseFixes(4, 90, 8)
	for _, fx := range fixes {
		f.ObserveFix(fx)
	}
	now := fixes[len(fixes)-1].Time
	f.ObserveEvents([]tracker.CriticalPoint{
		{MMSI: 4, Type: tracker.EventTurn, Time: now.Add(-time.Minute)},
	})
	p, _ := f.Predict(4, now, 15*time.Minute)
	if p.Confidence != ConfidenceLow {
		t.Errorf("confidence after a fresh turn = %v, want low", p.Confidence)
	}
}

func TestPredictUnknownVessel(t *testing.T) {
	f := New(tracker.DefaultParams())
	if _, ok := f.Predict(99, t0, time.Minute); ok {
		t.Error("prediction for unknown vessel")
	}
}

// TestForecastAccuracyAgainstSimulator evaluates mean forecast error at
// the paper's 5/15/30-minute horizons against scripted ground truth:
// error must grow with the horizon and stay moderate for
// high-confidence predictions.
func TestForecastAccuracyAgainstSimulator(t *testing.T) {
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = 120
	cfg.Duration = 4 * time.Hour
	sim := fleetsim.NewSimulator(cfg)
	fixes := sim.Run()

	params := tracker.DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 10 * time.Minute}
	tr := tracker.New(params, window)
	f := New(params)

	// Feed the first three hours.
	now := cfg.Start.Add(3 * time.Hour)
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), window.Slide)
	for {
		b, ok := batcher.Next()
		if !ok || b.Query.After(now) {
			break
		}
		res := tr.Slide(b)
		for _, fx := range b.Fixes {
			f.ObserveFix(fx)
		}
		f.ObserveEvents(res.Fresh)
	}
	if f.VesselCount() == 0 {
		t.Fatal("no vessels observed")
	}

	horizons := []time.Duration{5 * time.Minute, 15 * time.Minute, 30 * time.Minute}
	means := make([]float64, len(horizons))
	for hi, horizon := range horizons {
		var sum float64
		n := 0
		for _, p := range f.PredictAll(now, horizon) {
			if p.Confidence != ConfidenceHigh {
				continue
			}
			truth, ok := sim.ScriptedPos(p.MMSI, p.At)
			if !ok {
				continue
			}
			sum += geo.Haversine(p.Pos, truth)
			n++
		}
		if n == 0 {
			t.Fatalf("no high-confidence predictions at %v", horizon)
		}
		means[hi] = sum / float64(n)
	}
	if !(means[0] <= means[1] && means[1] <= means[2]) {
		t.Errorf("forecast error not monotone in horizon: %v", means)
	}
	// 5-minute dead reckoning of mostly-straight traffic: mean error
	// well under 2 km (a 12-knot vessel covers ~1.85 km in 5 minutes).
	if means[0] > 2000 {
		t.Errorf("5-minute mean error = %.0f m", means[0])
	}
}
