package checkpoint

import (
	"testing"
	"time"

	"repro/internal/feed"
	"repro/internal/fleetsim"
	"repro/internal/stream"
)

// BenchmarkCheckpointSave measures the full checkpoint cost — snapshot
// capture plus atomic durable write — against a pipeline loaded with
// the 400-vessel bench workload (the benchpipe scale), the number
// EXPERIMENTS.md reports as per-slide overhead.
func BenchmarkCheckpointSave(b *testing.B) {
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = 400
	cfg.Duration = 4 * time.Hour
	sim := fleetsim.NewSimulator(cfg)
	fixes := sim.Run()

	sys := newPipeline(sim, 0)
	defer sys.Close()
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), testSlide)
	var cur feed.Cursor
	var lastQ time.Time
	slides := 0
	var slideTime time.Duration
	for {
		batch, ok := batcher.Next()
		if !ok {
			break
		}
		t0 := time.Now()
		rep := sys.ProcessBatch(batch)
		slideTime += time.Since(t0)
		for _, f := range batch.Fixes {
			cur.Note(f)
		}
		lastQ = rep.Query
		slides++
	}

	mgr, err := NewManager(Options{Dir: b.TempDir(), Keep: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := sys.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		st := &State{Query: lastQ, System: snap, Cursor: cur.Clone(), Slides: slides}
		if err := mgr.Save(st); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	mgr.mu.Lock()
	size := mgr.lastSize
	mgr.mu.Unlock()
	b.ReportMetric(float64(size), "payload-bytes")
	b.ReportMetric(float64(slideTime.Nanoseconds())/float64(slides), "slide-ns")
}
