package checkpoint

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"os"
	"slices"
	"strings"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/feed"
	"repro/internal/fleetsim"
	"repro/internal/maritime"
	"repro/internal/serve"
	"repro/internal/stream"
	"repro/internal/tracker"
)

// The kill-and-restore equivalence harness: a pipeline killed at an
// arbitrary slide and restored from its newest checkpoint must produce,
// for the durable prefix (everything up to the checkpoint) concatenated
// with everything after the restore, byte-identical output to an
// uninterrupted run — critical points, alerts and trips alike. Slides
// between the last checkpoint and the kill are re-processed on replay;
// determinism makes the re-emission identical, and the gateway's
// sequence numbers make it deduplicatable downstream.

const testSlide = 10 * time.Minute

// testFleet builds a deterministic world and its fix stream once per
// test.
func testFleet(t *testing.T, vessels, hours int) (*fleetsim.Simulator, []ais.Fix) {
	t.Helper()
	cfg := fleetsim.DefaultConfig()
	cfg.Vessels = vessels
	cfg.Duration = time.Duration(hours) * time.Hour
	sim := fleetsim.NewSimulator(cfg)
	fixes := sim.Run()
	if len(fixes) == 0 {
		t.Fatal("simulator produced no fixes")
	}
	return sim, fixes
}

// newPipeline assembles a fresh system over the world with the given
// tracker shard count — every call must be state-identical so that a
// restored system differs from the crashed one only by its snapshot.
func newPipeline(sim *fleetsim.Simulator, shards int) *core.System {
	vessels, areas, ports := core.AdaptWorld(sim)
	return core.NewSystem(core.Config{
		Window:        stream.WindowSpec{Range: time.Hour, Slide: testSlide},
		Tracker:       tracker.DefaultParams(),
		Recognition:   maritime.Config{Window: time.Hour},
		TrackerShards: shards,
	}, vessels, areas, ports)
}

// renderSlide canonicalizes one slide's observable output. Alerts are
// sorted so the comparison is insensitive to any future reordering
// inside a slide; everything else is already deterministic.
func renderSlide(rep core.SlideReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Q=%s fixes=%d cps=%d trips=%d alerts=[",
		rep.Query.UTC().Format(time.RFC3339), rep.FixesIn, rep.CriticalPoints, rep.TripsCompleted)
	alerts := slices.Clone(rep.Alerts)
	slices.SortFunc(alerts, maritime.CompareAlerts)
	for i, a := range alerts {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s@%s@%s@%d", a.CE, a.AreaID, a.Time.UTC().Format(time.RFC3339), a.Vessel)
	}
	b.WriteByte(']')
	return b.String()
}

// renderFinal canonicalizes the end-of-run archival state.
func renderFinal(sys *core.System) string {
	t4 := sys.Store().Table4Stats()
	st := sys.Tracker().Stats()
	return fmt.Sprintf("trips=%d trajPoints=%d staged=%d fixes=%d critical=%d",
		t4.Trips, t4.PointsInTrajectories, t4.PointsInStaging, st.FixesIn, st.Critical)
}

// referenceRun processes the whole stream uninterrupted.
func referenceRun(t *testing.T, sim *fleetsim.Simulator, fixes []ais.Fix) ([]string, string) {
	t.Helper()
	sys := newPipeline(sim, 3)
	defer sys.Close()
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), testSlide)
	var out []string
	var last time.Time
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		rep := sys.ProcessBatch(b)
		out = append(out, renderSlide(rep))
		last = rep.Query
	}
	sys.Drain(last)
	return out, renderFinal(sys)
}

// checkpointingRun processes the stream until killSlide (exclusive of
// further slides), checkpointing every saveEvery slides into mgr. It
// returns the rendered slides and the fix cursor bookkeeping happens
// inside — exactly the loop a checkpointing driver runs.
func checkpointingRun(t *testing.T, sim *fleetsim.Simulator, fixes []ais.Fix, mgr *Manager, saveEvery, killSlide, shards int) []string {
	t.Helper()
	sys := newPipeline(sim, shards)
	defer sys.Close()
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), testSlide)
	var out []string
	var cur feed.Cursor
	slides := 0
	for slides < killSlide {
		b, ok := batcher.Next()
		if !ok {
			t.Fatalf("stream ended at slide %d before the kill point %d", slides, killSlide)
		}
		rep := sys.ProcessBatch(b)
		for _, f := range b.Fixes {
			cur.Note(f)
		}
		out = append(out, renderSlide(rep))
		slides++
		if slides%saveEvery == 0 {
			snap, err := sys.Snapshot()
			if err != nil {
				t.Fatalf("snapshot at slide %d: %v", slides, err)
			}
			st := &State{Query: rep.Query, System: snap, Cursor: cur.Clone(), Slides: slides}
			if err := mgr.Save(st); err != nil {
				t.Fatalf("checkpoint at slide %d: %v", slides, err)
			}
		}
	}
	// Process killed here: no Drain, no final checkpoint — the system is
	// simply abandoned, like a SIGKILL between two slides.
	return out
}

// resumeRun restores the newest checkpoint into a fresh pipeline (with
// restoreShards tracker shards) and replays the rest of the stream
// through a resume filter, returning the restored State, the rendered
// post-restore slides, and the final archival state.
func resumeRun(t *testing.T, sim *fleetsim.Simulator, fixes []ais.Fix, mgr *Manager, restoreShards int) (*State, []string, string) {
	t.Helper()
	st, err := mgr.RestoreNewest()
	if err != nil {
		t.Logf("restore skipped invalid checkpoints: %v", err)
	}
	if st == nil {
		t.Fatal("no checkpoint to restore")
	}
	sys := newPipeline(sim, restoreShards)
	defer sys.Close()
	if err := sys.RestoreSnapshot(st.System); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	src := feed.NewResumeFilter(stream.NewSliceSource(fixes), st.Cursor)
	batcher := stream.NewBatcherFrom(src, testSlide, st.Query)
	var out []string
	last := st.Query
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		rep := sys.ProcessBatch(b)
		out = append(out, renderSlide(rep))
		last = rep.Query
	}
	if src.Skipped() == 0 {
		t.Error("resume filter skipped nothing: the replay re-processed already-counted fixes")
	}
	sys.Drain(last)
	return st, out, renderFinal(sys)
}

// compareRuns asserts durable-prefix + resumed output == reference.
func compareRuns(t *testing.T, reference, killed, resumed []string, refFinal, resFinal string, ckptSlides int) {
	t.Helper()
	combined := append(slices.Clone(killed[:ckptSlides]), resumed...)
	if len(combined) != len(reference) {
		t.Fatalf("combined run has %d slides, reference %d (checkpoint at %d, %d resumed)",
			len(combined), len(reference), ckptSlides, len(resumed))
	}
	for i := range reference {
		if combined[i] != reference[i] {
			t.Fatalf("slide %d diverges after restore:\n  reference: %s\n  restored:  %s",
				i, reference[i], combined[i])
		}
	}
	if resFinal != refFinal {
		t.Errorf("final archival state diverges:\n  reference: %s\n  restored:  %s", refFinal, resFinal)
	}
}

func TestKillRestoreEquivalence(t *testing.T) {
	sim, fixes := testFleet(t, 120, 4)
	reference, refFinal := referenceRun(t, sim, fixes)
	if len(reference) < 12 {
		t.Fatalf("run too short for kill/restore coverage: %d slides", len(reference))
	}

	cases := []struct {
		name                 string
		saveEvery, killSlide int
		shards, restore      int
	}{
		{"kill-on-checkpoint-boundary", 3, 9, 3, 3},
		{"kill-between-checkpoints", 4, 10, 3, 3},
		{"kill-first-checkpoint", 2, 3, 3, 3},
		{"reshard-up-on-restore", 3, 9, 2, 5},
		{"reshard-down-on-restore", 3, 9, 4, 1},
		{"kill-near-end", 5, len(reference) - 1, 3, 3},
	}
	// Seeded randomized kills on top of the curated boundary cases, so
	// the suite probes arbitrary slide positions deterministically.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3; i++ {
		saveEvery := 1 + rng.Intn(4)
		killSlide := saveEvery + rng.Intn(len(reference)-saveEvery-1)
		cases = append(cases, struct {
			name                 string
			saveEvery, killSlide int
			shards, restore      int
		}{fmt.Sprintf("random-kill-%d-every-%d", killSlide, saveEvery), saveEvery, killSlide, 3, 3})
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mgr := newTestManager(t, Options{})
			killed := checkpointingRun(t, sim, fixes, mgr, tc.saveEvery, tc.killSlide, tc.shards)
			st, resumed, resFinal := resumeRun(t, sim, fixes, mgr, tc.restore)
			if want := tc.killSlide / tc.saveEvery * tc.saveEvery; st.Slides != want {
				t.Fatalf("restored checkpoint covers %d slides, want %d", st.Slides, want)
			}
			compareRuns(t, reference, killed, resumed, refFinal, resFinal, st.Slides)
		})
	}
}

func TestKillRestoreMidCheckpointWrite(t *testing.T) {
	// The process dies *inside* a checkpoint write: the torn file must
	// not exist (atomic rename never happened), and recovery proceeds
	// from the previous intact checkpoint with full equivalence.
	sim, fixes := testFleet(t, 120, 4)
	reference, refFinal := referenceRun(t, sim, fixes)

	mgr := newTestManager(t, Options{})
	killed := checkpointingRun(t, sim, fixes, mgr, 3, 9, 3)

	// One more slide's worth of state tries to checkpoint and crashes
	// mid-write at varying depths into the file.
	for _, limit := range []int64{0, 5, 21, 100} {
		mgr.opt.WrapWriter = func(w io.Writer) io.Writer { return faults.NewCrashWriter(w, limit) }
		if err := mgr.Save(testState(99)); err == nil {
			t.Fatalf("Save with %d-byte crash limit unexpectedly succeeded", limit)
		}
	}
	mgr.opt.WrapWriter = nil

	st, resumed, resFinal := resumeRun(t, sim, fixes, mgr, 3)
	if st.Slides != 9 {
		t.Fatalf("restored checkpoint covers %d slides, want the pre-crash 9", st.Slides)
	}
	compareRuns(t, reference, killed, resumed, refFinal, resFinal, st.Slides)
}

func TestSigtermMidReplayDiscardsPartialReplayWhole(t *testing.T) {
	// A restart dies *during* restore-then-replay — SIGTERM while the
	// replayed slides are still in flight, before any new checkpoint.
	// The partial replay must be discarded whole: replay writes nothing
	// durable, so the interrupted attempt leaves the checkpoint dir
	// byte-identical and the next start recovers from the same
	// checkpoint with full equivalence.
	sim, fixes := testFleet(t, 120, 4)
	reference, refFinal := referenceRun(t, sim, fixes)

	const saveEvery, killSlide = 3, 10
	mgr := newTestManager(t, Options{})
	killed := checkpointingRun(t, sim, fixes, mgr, saveEvery, killSlide, 3)
	seqBefore := mgr.LastSeq()
	newest := newestPath(t, mgr)
	rawBefore, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}

	// First restart: restore, replay a handful of slides, then die.
	var partial []string
	{
		st, err := mgr.RestoreNewest()
		if err != nil || st == nil {
			t.Fatalf("RestoreNewest: (%v, %v)", st, err)
		}
		sys := newPipeline(sim, 3)
		if err := sys.RestoreSnapshot(st.System); err != nil {
			t.Fatalf("RestoreSnapshot: %v", err)
		}
		src := feed.NewResumeFilter(stream.NewSliceSource(fixes), st.Cursor)
		batcher := stream.NewBatcherFrom(src, testSlide, st.Query)
		for i := 0; i < 4; i++ {
			b, ok := batcher.Next()
			if !ok {
				t.Fatalf("stream ended %d slides into the replay", i)
			}
			partial = append(partial, renderSlide(sys.ProcessBatch(b)))
		}
		// SIGTERM: no Drain, no checkpoint, the process just stops.
		sys.Close()
	}

	// Nothing durable changed: same newest checkpoint, same bytes, no
	// new sequence numbers, no temp litter.
	m2 := newTestManager(t, Options{Dir: mgr.Dir()})
	if m2.LastSeq() != seqBefore {
		t.Fatalf("aborted replay advanced the checkpoint sequence: %d → %d", seqBefore, m2.LastSeq())
	}
	rawAfter, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rawBefore, rawAfter) {
		t.Fatal("aborted replay mutated the newest checkpoint on disk")
	}
	entries, err := os.ReadDir(mgr.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), fileSuffix) {
			t.Errorf("aborted replay left stray file %q", e.Name())
		}
	}

	// Second restart recovers byte-identically: the durable prefix plus
	// the fresh replay reproduce the uninterrupted reference, and the
	// discarded partial slides match their re-replayed counterparts
	// (determinism makes the re-emission identical, so nothing from the
	// interrupted attempt is lost — it is simply recomputed).
	st, resumed, resFinal := resumeRun(t, sim, fixes, m2, 3)
	if st.Slides != killSlide/saveEvery*saveEvery {
		t.Fatalf("second restart restored %d slides, want %d", st.Slides, killSlide/saveEvery*saveEvery)
	}
	for i, p := range partial {
		if i >= len(resumed) {
			t.Fatalf("second replay shorter than the aborted one: %d < %d", len(resumed), len(partial))
		}
		if p != resumed[i] {
			t.Fatalf("replay slide %d not deterministic across restarts:\n  aborted: %s\n  second:  %s", i, p, resumed[i])
		}
	}
	compareRuns(t, reference, killed, resumed, refFinal, resFinal, st.Slides)
}

func TestGatewayExactlyOnceAcrossRestart(t *testing.T) {
	// End-to-end through the serving tier: a subscriber that survives the
	// crash by reconnecting with its last seen sequence number receives
	// every alert exactly once, in order, despite the restored pipeline
	// re-publishing the slides between the checkpoint and the kill.
	sim, fixes := testFleet(t, 120, 4)

	drain := func(sub *serve.Subscriber) []serve.Envelope {
		var out []serve.Envelope
		for {
			env, ok, timedOut := sub.NextTimeout(50 * time.Millisecond)
			if !ok || timedOut {
				return out
			}
			out = append(out, env)
		}
	}
	// sameAlerts compares envelope streams ignoring Published (wall
	// clock) — seq, slide and alert must match exactly.
	sameAlerts := func(a, b []serve.Envelope) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].Seq != b[i].Seq || !a[i].Slide.Equal(b[i].Slide) || a[i].Alert != b[i].Alert {
				return false
			}
		}
		return true
	}

	// Reference: one uninterrupted gateway run.
	var reference []serve.Envelope
	{
		sys := newPipeline(sim, 3)
		gw := serve.New(sys, serve.Options{})
		sub := gw.Hub().Subscribe(serve.Filter{}, 1<<14)
		batcher := stream.NewBatcher(stream.NewSliceSource(fixes), testSlide)
		for {
			b, ok := batcher.Next()
			if !ok {
				break
			}
			gw.Process(b)
		}
		reference = drain(sub)
		sub.Close()
		sys.Close()
	}
	if len(reference) == 0 {
		t.Fatal("reference run published no alerts")
	}

	// Crashed run: kill at slide 10, checkpoints every 3 slides include
	// the hub state captured under Quiesce.
	const saveEvery, killSlide = 3, 10
	mgr := newTestManager(t, Options{})
	var received []serve.Envelope
	{
		sys := newPipeline(sim, 3)
		gw := serve.New(sys, serve.Options{})
		sub := gw.Hub().Subscribe(serve.Filter{}, 1<<14)
		batcher := stream.NewBatcher(stream.NewSliceSource(fixes), testSlide)
		var cur feed.Cursor
		for slides := 0; slides < killSlide; slides++ {
			b, ok := batcher.Next()
			if !ok {
				t.Fatalf("stream ended before kill slide %d", killSlide)
			}
			rep := gw.Process(b)
			for _, f := range b.Fixes {
				cur.Note(f)
			}
			if (slides+1)%saveEvery == 0 {
				var st *State
				gw.Quiesce(func() {
					snap, err := sys.Snapshot()
					if err != nil {
						t.Errorf("snapshot: %v", err)
						return
					}
					hub := gw.Hub().Snapshot()
					st = &State{Query: rep.Query, System: snap, Cursor: cur.Clone(), Hub: &hub, Slides: slides + 1}
				})
				if st == nil {
					t.Fatal("quiesced snapshot failed")
				}
				if err := mgr.Save(st); err != nil {
					t.Fatalf("checkpoint: %v", err)
				}
			}
		}
		received = drain(sub)
		// Crash: the subscriber's connection dies with the process; only
		// its Last-Event-ID survives, client-side.
		sys.Close()
	}
	var lastSeq uint64
	if len(received) > 0 {
		lastSeq = received[len(received)-1].Seq
	}

	// Restart: restore system + hub, re-attach the subscriber at its
	// cursor, replay the rest of the stream.
	st, err := mgr.RestoreNewest()
	if err != nil || st == nil {
		t.Fatalf("RestoreNewest: (%v, %v)", st, err)
	}
	if st.Hub == nil {
		t.Fatal("checkpoint carries no hub state")
	}
	sys2 := newPipeline(sim, 3)
	defer sys2.Close()
	if err := sys2.RestoreSnapshot(st.System); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	gw2 := serve.New(sys2, serve.Options{})
	gw2.Hub().Restore(*st.Hub)
	sub2 := gw2.Hub().SubscribeFrom(serve.Filter{}, 1<<14, lastSeq)
	defer sub2.Close()

	src := feed.NewResumeFilter(stream.NewSliceSource(fixes), st.Cursor)
	batcher := stream.NewBatcherFrom(src, testSlide, st.Query)
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		gw2.Process(b)
	}
	received = append(received, drain(sub2)...)

	// Exactly-once: the concatenation of pre-crash and post-restore
	// deliveries is the reference stream — no duplicates, no gaps, same
	// alerts under the same sequence numbers.
	for i := 1; i < len(received); i++ {
		if received[i].Seq != received[i-1].Seq+1 {
			t.Fatalf("sequence break at %d: %d → %d (duplicate or gap across the restart)",
				i, received[i-1].Seq, received[i].Seq)
		}
	}
	if !sameAlerts(reference, received) {
		t.Fatalf("delivered stream diverges from reference: got %d envelopes, want %d",
			len(received), len(reference))
	}
}

func TestReplayGapReported(t *testing.T) {
	// A checkpoint older than the feed's replayable horizon: the feed can
	// only serve fixes from wipeAfter on, so the slides in between carry
	// no data. The driver-side gap computation must report them.
	sim, fixes := testFleet(t, 80, 3)
	mgr := newTestManager(t, Options{})
	_ = checkpointingRun(t, sim, fixes, mgr, 2, 4, 2)
	st, err := mgr.RestoreNewest()
	if err != nil || st == nil {
		t.Fatalf("RestoreNewest: (%v, %v)", st, err)
	}

	// The feed lost everything older than checkpoint + 3 slides.
	horizon := st.Query.Add(3 * testSlide)
	var tail []ais.Fix
	for _, f := range fixes {
		if !f.Time.Before(horizon) {
			tail = append(tail, f)
		}
	}
	if len(tail) == 0 {
		t.Fatal("no fixes beyond the simulated horizon")
	}

	sys := newPipeline(sim, 2)
	defer sys.Close()
	if err := sys.RestoreSnapshot(st.System); err != nil {
		t.Fatalf("RestoreSnapshot: %v", err)
	}
	src := feed.NewResumeFilter(stream.NewSliceSource(tail), st.Cursor)
	batcher := stream.NewBatcherFrom(src, testSlide, st.Query)
	var firstNonEmpty time.Time
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		sys.ProcessBatch(b)
		if firstNonEmpty.IsZero() && len(b.Fixes) > 0 {
			firstNonEmpty = b.Query
		}
	}
	gap := ReplayGapSlides(st.Query, firstNonEmpty, testSlide)
	if gap < 2 {
		t.Fatalf("ReplayGapSlides = %d for a 3-slide horizon loss, want ≥ 2", gap)
	}

	// Folded into Health the gap is visible to /healthz and the log line.
	sys.AddHealthSource(func() core.Health { return core.Health{ReplayGapSlides: gap} })
	h := sys.Health()
	if h.ReplayGapSlides != gap {
		t.Errorf("Health.ReplayGapSlides = %d, want %d", h.ReplayGapSlides, gap)
	}
	if !strings.Contains(h.String(), "replay-gap-slides=") {
		t.Errorf("Health.String() %q omits the replay gap", h.String())
	}
}

func TestReplayGapSlidesMath(t *testing.T) {
	base := time.Unix(10000, 0)
	cases := []struct {
		first time.Time
		want  int
	}{
		{time.Time{}, 0},             // nothing replayed at all
		{base.Add(testSlide), 0},     // immediate continuation
		{base.Add(2 * testSlide), 1}, // one empty slide
		{base.Add(5 * testSlide), 4}, // four empty slides
		{base.Add(testSlide / 2), 0}, // sub-slide skew clamps to 0
	}
	for _, tc := range cases {
		if got := ReplayGapSlides(base, tc.first, testSlide); got != tc.want {
			t.Errorf("ReplayGapSlides(%v) = %d, want %d", tc.first, got, tc.want)
		}
	}
}
