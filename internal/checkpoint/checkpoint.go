// Package checkpoint persists the full pipeline state — tracker
// vessels, recognizer working memories, the moving-object store, the
// alert hub's sequence/history, and the feed resume cursor — so a
// surveillance process killed at any instant restarts with no
// observable difference in its output stream.
//
// Each checkpoint is one file: a durable frame (magic, version, CRC)
// around a gob-encoded State, written atomically (temp file, fsync,
// rename, directory fsync) so a crash mid-write leaves the previous
// checkpoint untouched. The manager keeps the last K checkpoints;
// restore walks them newest-first and falls back past any truncated,
// corrupt, or future-version file — every rejection is a typed
// durable error, never a panic or a half-restored pipeline.
//
// The restore → replay contract: State.Cursor covers exactly the fixes
// the pipeline had processed when the checkpoint was taken. On restart
// the driver restores the newest valid State into an identically
// configured system, then re-attaches to the feed with the cursor
// (feed.DialReconnectingFrom live, feed.ResumeFilter offline); the
// RESUME handshake plus per-vessel same-second dedupe discard
// everything already processed, so each fix is applied exactly once
// across the crash.
package checkpoint

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/durable"
	"repro/internal/feed"
	"repro/internal/obs"
	"repro/internal/serve"
)

const (
	// fileMagic tags a pipeline checkpoint file; fileVersion is the
	// current payload format (gob of State).
	fileMagic   = "MARCKPT"
	fileVersion = 1
	// filePrefix/fileSuffix shape checkpoint file names:
	// checkpoint-<seq>.ckpt with a fixed-width sequence number so
	// lexicographic and numeric order agree.
	filePrefix = "checkpoint-"
	fileSuffix = ".ckpt"
)

// State is everything a restart needs, captured atomically between two
// window slides.
type State struct {
	// Query is the query time of the last slide folded into this
	// checkpoint; the resumed batcher continues the slide grid from it.
	Query time.Time
	// System is the pipeline's dynamic state (tracker, recognizers,
	// store).
	System core.Snapshot
	// Cursor covers exactly the fixes processed up to Query.
	Cursor feed.Cursor
	// Hub is the alert gateway's sequence/history state; nil for drivers
	// without a gateway.
	Hub *serve.HubSnapshot
	// Slides is how many slides the pipeline had processed.
	Slides int
}

// Options configures a Manager.
type Options struct {
	// Dir is the checkpoint directory, created if missing.
	Dir string
	// Keep is how many checkpoints to retain (≤ 0: 3). Older ones are
	// pruned after each successful save.
	Keep int
	// WrapWriter, when set, wraps the frame writer inside the atomic
	// write protocol — the crash-injection hook: a writer that fails
	// mid-stream aborts the protocol exactly like a process death, and
	// the previous checkpoint must survive. Production leaves it nil.
	WrapWriter func(io.Writer) io.Writer
	// RetryAttempts is how many extra write attempts a failed save gets
	// before it is declared failed — transient filesystem errors
	// (ENOSPC while logs rotate, EIO on flaky storage) routinely clear
	// within milliseconds, and each attempt restarts the atomic protocol
	// on a fresh temp file so a partial write never leaks into a retry.
	// 0 uses the default (2); negative disables retrying. Encoding
	// errors are never retried — they are deterministic.
	RetryAttempts int
	// RetryBackoff is the wait before the first retry, doubling per
	// attempt (default 25ms).
	RetryBackoff time.Duration
}

// Manager owns one checkpoint directory: periodic saves with pruning,
// and newest-valid restore with fallback.
type Manager struct {
	opt Options

	mu       sync.Mutex
	seq      uint64
	lastSize int64
	lastSave time.Time

	metrics *managerMetrics
}

// NewManager opens (creating if needed) the checkpoint directory and
// positions the sequence counter after the newest existing checkpoint.
func NewManager(opt Options) (*Manager, error) {
	if opt.Dir == "" {
		return nil, errors.New("checkpoint: Options.Dir is required")
	}
	if opt.Keep <= 0 {
		opt.Keep = 3
	}
	if err := os.MkdirAll(opt.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: creating %s: %w", opt.Dir, err)
	}
	m := &Manager{opt: opt}
	files, err := m.list()
	if err != nil {
		return nil, err
	}
	if len(files) > 0 {
		m.seq = files[len(files)-1].seq
	}
	return m, nil
}

// ckptFile is one discovered checkpoint file.
type ckptFile struct {
	seq  uint64
	path string
}

// list returns the directory's checkpoint files in ascending sequence
// order.
func (m *Manager) list() ([]ckptFile, error) {
	entries, err := os.ReadDir(m.opt.Dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: reading %s: %w", m.opt.Dir, err)
	}
	var out []ckptFile
	for _, e := range entries {
		name := e.Name()
		var seq uint64
		if _, err := fmt.Sscanf(name, filePrefix+"%d"+fileSuffix, &seq); err != nil {
			continue
		}
		if name != fileName(seq) {
			continue
		}
		out = append(out, ckptFile{seq: seq, path: filepath.Join(m.opt.Dir, name)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// fileName renders the canonical name of sequence seq.
func fileName(seq uint64) string {
	return fmt.Sprintf("%s%012d%s", filePrefix, seq, fileSuffix)
}

// Save persists one checkpoint atomically and prunes beyond Keep. On
// any failure — including an injected mid-write crash — the directory
// still holds the previous checkpoints, untouched.
func (m *Manager) Save(st *State) error {
	start := time.Now()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(st); err != nil {
		m.countFailure()
		return fmt.Errorf("checkpoint: encoding state: %w", err)
	}

	m.mu.Lock()
	seq := m.seq + 1
	m.mu.Unlock()
	path := filepath.Join(m.opt.Dir, fileName(seq))
	attempts := 1 + m.retryAttempts()
	backoff := m.opt.RetryBackoff
	if backoff <= 0 {
		backoff = 25 * time.Millisecond
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
			if m.metrics != nil {
				m.metrics.retries.Inc()
			}
		}
		err = durable.WriteFileAtomic(path, func(w io.Writer) error {
			if m.opt.WrapWriter != nil {
				w = m.opt.WrapWriter(w)
			}
			return durable.WriteFrame(w, fileMagic, fileVersion, payload.Bytes())
		})
		if err == nil {
			break
		}
	}
	if err != nil {
		// Only an exhausted save counts as a failure; recovered retries
		// are reported separately.
		m.countFailure()
		return fmt.Errorf("checkpoint: writing %s: %w", path, err)
	}

	m.mu.Lock()
	m.seq = seq
	m.lastSize = int64(payload.Len())
	m.lastSave = time.Now()
	m.mu.Unlock()
	if m.metrics != nil {
		m.metrics.saves.Inc()
		m.metrics.saveDur.ObserveDuration(time.Since(start))
	}
	return m.prune()
}

// prune removes checkpoints beyond the newest Keep.
func (m *Manager) prune() error {
	files, err := m.list()
	if err != nil {
		return err
	}
	for len(files) > m.opt.Keep {
		if err := os.Remove(files[0].path); err != nil {
			return fmt.Errorf("checkpoint: pruning %s: %w", files[0].path, err)
		}
		files = files[1:]
	}
	return nil
}

// Load reads and verifies one checkpoint file. Truncated, corrupt,
// wrong-magic, and future-version files fail with the corresponding
// typed durable error.
func Load(path string) (*State, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: opening %s: %w", path, err)
	}
	defer f.Close()
	payload, _, err := durable.ReadFrame(f, fileMagic, fileVersion)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %s: %w", path, err)
	}
	var st State
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&st); err != nil {
		return nil, fmt.Errorf("checkpoint: decoding %s: %w", path, err)
	}
	return &st, nil
}

// RestoreNewest loads the newest valid checkpoint, walking past
// invalid ones (each failure is joined into err so the caller can log
// what was skipped). A nil State means cold start: no checkpoint could
// be restored — err is nil when the directory held none at all, and
// carries the rejection reasons when every candidate was invalid.
func (m *Manager) RestoreNewest() (*State, error) {
	files, err := m.list()
	if err != nil {
		return nil, err
	}
	var failures []error
	for i := len(files) - 1; i >= 0; i-- {
		st, err := Load(files[i].path)
		if err != nil {
			failures = append(failures, err)
			if m.metrics != nil {
				m.metrics.rejected.Inc()
			}
			continue
		}
		if m.metrics != nil {
			m.metrics.restores.Inc()
		}
		return st, errors.Join(failures...)
	}
	return nil, errors.Join(failures...)
}

// PathFor returns the canonical path of checkpoint sequence seq inside
// dir. A cluster manifest references worker checkpoints by sequence
// number; the coordinator resolves them through this.
func PathFor(dir string, seq uint64) string {
	return filepath.Join(dir, fileName(seq))
}

// LoadAt loads the checkpoint with exactly the given sequence number —
// not the newest. A cluster restore pins every worker to the sequence
// its manifest generation recorded, so the whole cluster restores one
// coherent cut even when some workers have newer checkpoints.
func (m *Manager) LoadAt(seq uint64) (*State, error) {
	return Load(PathFor(m.opt.Dir, seq))
}

// Dir returns the checkpoint directory.
func (m *Manager) Dir() string { return m.opt.Dir }

// LastSeq returns the sequence number of the newest saved checkpoint
// (0 before any save).
func (m *Manager) LastSeq() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.seq
}

// retryAttempts resolves the effective extra-attempt budget.
func (m *Manager) retryAttempts() int {
	if m.opt.RetryAttempts < 0 {
		return 0
	}
	if m.opt.RetryAttempts == 0 {
		return 2
	}
	return m.opt.RetryAttempts
}

func (m *Manager) countFailure() {
	if m.metrics != nil {
		m.metrics.failures.Inc()
	}
}

// NoteReplaySkipped feeds the replay-dedupe counter: how many
// already-processed fixes the resume path discarded after a restore.
func (m *Manager) NoteReplaySkipped(n int) {
	if m.metrics != nil && n > 0 {
		m.metrics.replaySkipped.Add(uint64(n))
	}
}

// ReplayGapSlides reports how many window slides separate a restored
// checkpoint from the first traffic the feed could actually replay. A
// checkpoint older than the feed's replayable horizon resumes with a
// partial replay; the driver folds the result into core.Health so the
// gap is reported instead of silently closed. checkpointQuery is the
// restored State.Query, firstQuery the query time of the first
// non-empty batch after resume. Zero means the replay was complete.
func ReplayGapSlides(checkpointQuery, firstQuery time.Time, slide time.Duration) int {
	if slide <= 0 || firstQuery.IsZero() {
		return 0
	}
	gap := int(firstQuery.Sub(checkpointQuery)/slide) - 1
	if gap < 0 {
		return 0
	}
	return gap
}

// managerMetrics is the checkpoint observability wiring.
type managerMetrics struct {
	saveDur       *obs.Histogram
	saves         *obs.Counter
	failures      *obs.Counter
	retries       *obs.Counter
	restores      *obs.Counter
	rejected      *obs.Counter
	replaySkipped *obs.Counter
}

// RegisterMetrics exposes the checkpoint lifecycle on the registry:
// save cost and cadence, the size and age of the newest checkpoint,
// restores, rejected (corrupt/stale) files, and the fixes skipped as
// already-processed during post-restore replay.
func (m *Manager) RegisterMetrics(r *obs.Registry) {
	m.metrics = &managerMetrics{
		saveDur: r.Histogram("maritime_checkpoint_seconds",
			"Time to serialize and atomically persist one pipeline checkpoint.", nil, nil),
		saves: r.Counter("maritime_checkpoint_saves_total",
			"Checkpoints successfully written.", nil),
		failures: r.Counter("maritime_checkpoint_failures_total",
			"Checkpoint saves that failed after exhausting their retries (the previous checkpoint survives).", nil),
		retries: r.Counter("maritime_checkpoint_retries_total",
			"Write attempts retried after a transient failure (ENOSPC, EIO); not counted as failures when a retry succeeds.", nil),
		restores: r.Counter("maritime_checkpoint_restores_total",
			"Successful restores from a checkpoint at startup.", nil),
		rejected: r.Counter("maritime_checkpoint_rejected_total",
			"Checkpoint files rejected at restore (truncated, corrupt, or future-version).", nil),
		replaySkipped: r.Counter("maritime_checkpoint_replay_skipped_total",
			"Already-processed fixes discarded during post-restore replay.", nil),
	}
	r.GaugeFunc("maritime_checkpoint_size_bytes",
		"Payload size of the newest checkpoint.", nil,
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			return float64(m.lastSize)
		})
	r.GaugeFunc("maritime_checkpoint_age_seconds",
		"Age of the newest checkpoint; rises between saves.", nil,
		func() float64 {
			m.mu.Lock()
			defer m.mu.Unlock()
			if m.lastSave.IsZero() {
				return 0
			}
			return time.Since(m.lastSave).Seconds()
		})
}
