package checkpoint

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/faults"
	"repro/internal/feed"
	"repro/internal/obs"
)

// testState builds a small distinguishable State; the System field stays
// zero — Manager treats it as opaque, and the full-pipeline round trip
// is covered by the recovery equivalence tests.
func testState(slides int) *State {
	return &State{
		Query:  time.Unix(int64(1000+60*slides), 0).UTC(),
		Cursor: feed.Cursor{Sec: int64(1000 + 60*slides), SeenAtSec: map[uint32]int{7: slides + 1}},
		Slides: slides,
	}
}

func newTestManager(t *testing.T, opt Options) *Manager {
	t.Helper()
	if opt.Dir == "" {
		opt.Dir = t.TempDir()
	}
	m, err := NewManager(opt)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func mustSave(t *testing.T, m *Manager, st *State) {
	t.Helper()
	if err := m.Save(st); err != nil {
		t.Fatalf("Save: %v", err)
	}
}

func TestSaveRestoreRoundTrip(t *testing.T) {
	m := newTestManager(t, Options{})
	mustSave(t, m, testState(1))
	mustSave(t, m, testState(2))

	st, err := m.RestoreNewest()
	if err != nil {
		t.Fatalf("RestoreNewest: %v", err)
	}
	if st == nil {
		t.Fatal("RestoreNewest returned nil state")
	}
	if st.Slides != 2 {
		t.Errorf("restored Slides = %d, want 2 (the newest checkpoint)", st.Slides)
	}
	if !st.Query.Equal(testState(2).Query) {
		t.Errorf("restored Query = %v, want %v", st.Query, testState(2).Query)
	}
	if st.Cursor.Sec != 1120 || st.Cursor.SeenAtSec[7] != 3 {
		t.Errorf("restored Cursor = %+v, want Sec=1120 SeenAtSec[7]=3", st.Cursor)
	}
}

func TestEmptyDirIsColdStart(t *testing.T) {
	m := newTestManager(t, Options{})
	st, err := m.RestoreNewest()
	if st != nil || err != nil {
		t.Fatalf("RestoreNewest on empty dir = (%v, %v), want (nil, nil)", st, err)
	}
}

// newestPath returns the path of the newest checkpoint file on disk.
func newestPath(t *testing.T, m *Manager) string {
	t.Helper()
	files, err := m.list()
	if err != nil || len(files) == 0 {
		t.Fatalf("listing checkpoints: files=%d err=%v", len(files), err)
	}
	return files[len(files)-1].path
}

func TestRestoreFallsBackPastCorruptNewest(t *testing.T) {
	m := newTestManager(t, Options{})
	mustSave(t, m, testState(1))
	mustSave(t, m, testState(2))

	// Flip a payload byte of the newest checkpoint.
	path := newestPath(t, m)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := m.RestoreNewest()
	if st == nil {
		t.Fatalf("RestoreNewest found no valid checkpoint, err=%v", err)
	}
	if st.Slides != 1 {
		t.Errorf("restored Slides = %d, want 1 (fallback past corrupt newest)", st.Slides)
	}
	if !errors.Is(err, durable.ErrChecksum) {
		t.Errorf("err = %v, want the skipped file's ErrChecksum joined in", err)
	}
}

func TestRestoreFallsBackPastTruncatedNewest(t *testing.T) {
	m := newTestManager(t, Options{})
	mustSave(t, m, testState(1))
	mustSave(t, m, testState(2))

	path := newestPath(t, m)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := m.RestoreNewest()
	if st == nil || st.Slides != 1 {
		t.Fatalf("RestoreNewest = (%+v, %v), want fallback to Slides=1", st, err)
	}
	if !errors.Is(err, durable.ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated joined in", err)
	}
}

func TestRestoreFallsBackPastFutureVersion(t *testing.T) {
	m := newTestManager(t, Options{})
	mustSave(t, m, testState(1))
	mustSave(t, m, testState(2))

	path := newestPath(t, m)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[durable.MagicLen] = 0x7f // version byte far beyond fileVersion
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := m.RestoreNewest()
	if st == nil || st.Slides != 1 {
		t.Fatalf("RestoreNewest = (%+v, %v), want fallback to Slides=1", st, err)
	}
	if !errors.Is(err, durable.ErrFutureVersion) {
		t.Errorf("err = %v, want ErrFutureVersion joined in", err)
	}
}

func TestAllInvalidIsColdStartWithReasons(t *testing.T) {
	m := newTestManager(t, Options{})
	mustSave(t, m, testState(1))
	mustSave(t, m, testState(2))
	files, err := m.list()
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if err := os.WriteFile(f.path, []byte("definitely not a checkpoint frame"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	st, err := m.RestoreNewest()
	if st != nil {
		t.Fatalf("RestoreNewest restored %+v from garbage", st)
	}
	if !errors.Is(err, durable.ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic for the rejected files", err)
	}
}

func TestPruneKeepsLastK(t *testing.T) {
	m := newTestManager(t, Options{Keep: 2})
	for i := 1; i <= 5; i++ {
		mustSave(t, m, testState(i))
	}
	files, err := m.list()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("dir holds %d checkpoints after pruning, want 2", len(files))
	}
	st, err := m.RestoreNewest()
	if err != nil || st == nil || st.Slides != 5 {
		t.Fatalf("RestoreNewest after pruning = (%+v, %v), want Slides=5", st, err)
	}
	// The oldest survivor must be the 4th save, not an arbitrary pair.
	old, err := Load(files[0].path)
	if err != nil || old.Slides != 4 {
		t.Fatalf("oldest survivor = (%+v, %v), want Slides=4", old, err)
	}
}

func TestCrashMidWriteLeavesPreviousIntact(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Options{Dir: dir})
	mustSave(t, m, testState(1))

	// Arm the crash: the next save dies after 10 bytes, inside the frame
	// header of the temp file.
	m.opt.WrapWriter = func(w io.Writer) io.Writer { return faults.NewCrashWriter(w, 10) }
	err := m.Save(testState(2))
	if !errors.Is(err, faults.ErrInjectedCrash) {
		t.Fatalf("Save with crash writer: err = %v, want ErrInjectedCrash", err)
	}
	m.opt.WrapWriter = nil

	// No temp litter, and the previous checkpoint restores cleanly.
	entries, readErr := os.ReadDir(dir)
	if readErr != nil {
		t.Fatal(readErr)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), fileSuffix) {
			t.Errorf("crashed save left stray file %q in checkpoint dir", e.Name())
		}
	}
	st, restoreErr := m.RestoreNewest()
	if restoreErr != nil || st == nil || st.Slides != 1 {
		t.Fatalf("RestoreNewest after crashed save = (%+v, %v), want intact Slides=1", st, restoreErr)
	}

	// And the manager keeps working: the next clean save supersedes it.
	mustSave(t, m, testState(3))
	st, err = m.RestoreNewest()
	if err != nil || st == nil || st.Slides != 3 {
		t.Fatalf("RestoreNewest after recovery save = (%+v, %v), want Slides=3", st, err)
	}
}

func TestSaveRetriesTransientWriteFailure(t *testing.T) {
	m := newTestManager(t, Options{RetryBackoff: time.Millisecond})
	reg := obs.NewRegistry()
	m.RegisterMetrics(reg)

	// The first two attempts crash mid-frame (a transient ENOSPC/EIO
	// stand-in); the third writes through. Each retry restarts the
	// atomic protocol, so WrapWriter is called once per attempt.
	attempts := 0
	m.opt.WrapWriter = func(w io.Writer) io.Writer {
		attempts++
		if attempts <= 2 {
			return faults.NewCrashWriter(w, 10)
		}
		return w
	}
	if err := m.Save(testState(1)); err != nil {
		t.Fatalf("Save should succeed on the third attempt: %v", err)
	}
	if attempts != 3 {
		t.Errorf("write attempts = %d, want 3", attempts)
	}
	st, err := m.RestoreNewest()
	if err != nil || st == nil || st.Slides != 1 {
		t.Fatalf("RestoreNewest after retried save = (%+v, %v), want Slides=1", st, err)
	}

	// Recovered retries are not failures: 2 retries, 0 failures.
	var buf strings.Builder
	reg.WriteText(&buf)
	text := buf.String()
	if !strings.Contains(text, "maritime_checkpoint_retries_total 2") {
		t.Errorf("metrics should count 2 retries:\n%s", text)
	}
	if !strings.Contains(text, "maritime_checkpoint_failures_total 0") {
		t.Errorf("recovered retries must not count as failures:\n%s", text)
	}

	// A persistent fault exhausts the budget (1 + RetryAttempts writes)
	// and only then counts one failure.
	attempts = 0
	m.opt.WrapWriter = func(w io.Writer) io.Writer {
		attempts++
		return faults.NewCrashWriter(w, 10)
	}
	if err := m.Save(testState(2)); !errors.Is(err, faults.ErrInjectedCrash) {
		t.Fatalf("Save with persistent fault: err = %v, want ErrInjectedCrash", err)
	}
	if attempts != 3 {
		t.Errorf("exhausted save used %d attempts, want 3", attempts)
	}
	buf.Reset()
	reg.WriteText(&buf)
	if !strings.Contains(buf.String(), "maritime_checkpoint_failures_total 1") {
		t.Errorf("exhausted save should count exactly one failure:\n%s", buf.String())
	}
}

func TestSaveRetryDisabled(t *testing.T) {
	m := newTestManager(t, Options{RetryAttempts: -1})
	attempts := 0
	m.opt.WrapWriter = func(w io.Writer) io.Writer {
		attempts++
		return faults.NewCrashWriter(w, 10)
	}
	if err := m.Save(testState(1)); err == nil {
		t.Fatal("Save should fail with retries disabled")
	}
	if attempts != 1 {
		t.Errorf("RetryAttempts=-1 made %d attempts, want 1", attempts)
	}
}

func TestNewManagerContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	m1 := newTestManager(t, Options{Dir: dir})
	mustSave(t, m1, testState(1))
	mustSave(t, m1, testState(2))
	seq := m1.LastSeq()

	// A fresh manager over the same dir (a restarted process) numbers its
	// saves after the existing ones instead of overwriting them.
	m2 := newTestManager(t, Options{Dir: dir})
	mustSave(t, m2, testState(3))
	if m2.LastSeq() != seq+1 {
		t.Errorf("restarted manager LastSeq = %d, want %d", m2.LastSeq(), seq+1)
	}
	st, err := m2.RestoreNewest()
	if err != nil || st == nil || st.Slides != 3 {
		t.Fatalf("RestoreNewest = (%+v, %v), want Slides=3", st, err)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	m := newTestManager(t, Options{Dir: dir})
	mustSave(t, m, testState(1))
	for _, name := range []string{"README", "checkpoint-abc.ckpt", "checkpoint-9.tmp"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := m.RestoreNewest()
	if err != nil || st == nil || st.Slides != 1 {
		t.Fatalf("RestoreNewest with foreign files = (%+v, %v), want Slides=1 and no error", st, err)
	}
}
