// Package analytics implements the cross-vessel analytics tier: the
// pairwise composite events the per-vessel RTEC rules cannot express.
// Every slide, the tier ingests the merged critical-point stream (the
// same synopsis recognition consumes), maintains one compact state per
// vessel, publishes positions into the shared geo.PointIndex proximity
// grid, and screens the fleet for three pairwise patterns:
//
//   - rendezvous: two vessels slow/stopped within a distance threshold,
//     sustained for several consecutive slides, away from port areas —
//     the ship-to-ship transfer pattern of Pitsikalis et al.
//   - darkRendezvous: two vessels whose AIS gaps overlap in time and
//     whose gap endpoints are mutually reachable at plausible implied
//     speed and converge — a candidate transfer carried out dark.
//   - collisionCourse: CPA screening over the live fleet via the
//     collision detector, fed from tracker state instead of raw fixes.
//
// The tier is deterministic: points are normalized to (time, MMSI)
// order before ingestion and all iteration is over sorted keys, so a
// single process and a cluster coordinator produce byte-identical
// alerts from the same merged stream.
package analytics

import (
	"slices"
	"sync/atomic"
	"time"

	"repro/internal/collision"
	"repro/internal/geo"
	"repro/internal/maritime"
	"repro/internal/tracker"
)

// RendezvousParams tunes the rendezvous screen.
type RendezvousParams struct {
	// DistanceMeters is the pairing radius (default 400 m).
	DistanceMeters float64
	// MaxSpeedKn is the speed ceiling for a vessel to count as loitering
	// (default 1 knot); the vessel must also be inside a tracker
	// stop/slow episode.
	MaxSpeedKn float64
	// MinSlides is how many consecutive slides a pair must stay matched
	// before the alert fires (default 3).
	MinSlides int
	// PortStandoffMeters suppresses pairs near ports, where slow
	// side-by-side traffic is routine (default 2000 m).
	PortStandoffMeters float64
}

func (p RendezvousParams) withDefaults() RendezvousParams {
	if p.DistanceMeters <= 0 {
		p.DistanceMeters = 400
	}
	if p.MaxSpeedKn <= 0 {
		p.MaxSpeedKn = 1
	}
	if p.MinSlides <= 0 {
		p.MinSlides = 3
	}
	if p.PortStandoffMeters <= 0 {
		p.PortStandoffMeters = 2000
	}
	return p
}

// DarkParams tunes the gap-linking screen (the GFW-style heuristic:
// time window + distance window + implied-speed plausibility).
type DarkParams struct {
	// MaxImpliedKn bounds the speed a vessel would have needed across
	// its own gap for the gap to be a plausible transit (default 25 kn).
	MaxImpliedKn float64
	// ConvergeMeters is how close two gap end points must be (default
	// 5000 m); the ends must also be closer than the starts were.
	ConvergeMeters float64
	// MinOverlap is the minimum temporal overlap of the two gaps
	// (default 10 minutes).
	MinOverlap time.Duration
	// Retention bounds how long a closed gap stays linkable (default 2
	// hours).
	Retention time.Duration
}

func (p DarkParams) withDefaults() DarkParams {
	if p.MaxImpliedKn <= 0 {
		p.MaxImpliedKn = 25
	}
	if p.ConvergeMeters <= 0 {
		p.ConvergeMeters = 5000
	}
	if p.MinOverlap <= 0 {
		p.MinOverlap = 10 * time.Minute
	}
	if p.Retention <= 0 {
		p.Retention = 2 * time.Hour
	}
	return p
}

// Config configures the tier.
type Config struct {
	Rendezvous RendezvousParams
	Dark       DarkParams
	// Collision parameterizes CPA screening; EnableCollision turns it
	// on (it re-alarms every time a pair newly enters conflict).
	Collision       collision.Params
	EnableCollision bool
	// Stale evicts vessel state silent beyond this (default 30 min).
	Stale time.Duration
}

func (c Config) withDefaults() Config {
	c.Rendezvous = c.Rendezvous.withDefaults()
	c.Dark = c.Dark.withDefaults()
	if c.Stale <= 0 {
		c.Stale = 30 * time.Minute
	}
	return c
}

// vstate is the per-vessel analytics state distilled from critical
// points.
type vstate struct {
	pos        geo.Point
	at         time.Time
	speedKn    float64
	slow       bool // inside a tracker stop/slow episode
	dark       bool // inside an open communication gap
	gapStart   geo.Point
	gapStartAt time.Time
}

type pairKey struct{ a, b uint32 } // a < b

// pairState tracks a rendezvous streak.
type pairState struct {
	streak  int
	emitted bool
}

// gapRec is one closed communication gap kept for cross-vessel linking.
type gapRec struct {
	MMSI             uint32
	StartPos, EndPos geo.Point
	StartAt, EndAt   time.Time
}

// Tier holds the cross-vessel analytics state.
type Tier struct {
	cfg     Config
	det     *collision.Detector
	portIdx *geo.AreaIndex

	vstates    map[uint32]*vstate
	pairs      map[pairKey]*pairState
	closedGaps []gapRec
	collActive map[pairKey]bool

	// Scratch reused across slides.
	idx  *geo.PointIndex
	cand []int32
	buf  []int32

	// Mirrors of the counters, scraped concurrently by health probes.
	atomVessels      atomic.Int64
	atomEvicted      atomic.Int64
	atomLateRejected atomic.Int64
	atomPairAlerts   atomic.Int64

	evicted    int64
	pairAlerts int64
}

// Stats reports the tier's state accounting. Safe to call concurrently
// with Slide: it reads only atomic mirrors.
type Stats struct {
	Vessels      int64 // vessels with live analytics state
	Evicted      int64 // vessel states dropped after going stale
	LateRejected int64 // out-of-order points the collision feed rejected
	PairAlerts   int64 // pairwise alerts emitted
}

// New builds the tier. ports are the port polygons used to suppress
// in-harbor rendezvous pairs; nil disables the suppression.
func New(cfg Config, ports []*geo.Polygon) *Tier {
	cfg = cfg.withDefaults()
	t := &Tier{
		cfg:        cfg,
		vstates:    make(map[uint32]*vstate),
		pairs:      make(map[pairKey]*pairState),
		collActive: make(map[pairKey]bool),
		idx:        geo.NewPointIndex(cfg.Rendezvous.DistanceMeters / 50_000),
	}
	if cfg.EnableCollision {
		t.det = collision.New(cfg.Collision)
	}
	if len(ports) > 0 {
		t.portIdx = geo.NewAreaIndex(ports, cfg.Rendezvous.PortStandoffMeters, 0.25)
	}
	return t
}

// Stats snapshots the atomic mirrors.
func (t *Tier) Stats() Stats {
	return Stats{
		Vessels:      t.atomVessels.Load(),
		Evicted:      t.atomEvicted.Load(),
		LateRejected: t.atomLateRejected.Load(),
		PairAlerts:   t.atomPairAlerts.Load(),
	}
}

// Slide ingests one slide's fresh critical points and returns the
// pairwise alerts recognized at query time q, in canonical alert order.
// The input slice is not modified.
func (t *Tier) Slide(q time.Time, fresh []tracker.CriticalPoint) []maritime.Alert {
	// Normalize to the canonical (time, MMSI) order: the single-process
	// path hands shard-merged points, the coordinator hands worker-
	// concatenated ones; after this stable sort both are byte-identical.
	pts := slices.Clone(fresh)
	tracker.SortCriticalPoints(pts)

	var alerts []maritime.Alert
	for _, cp := range pts {
		v := t.vstates[cp.MMSI]
		if v == nil {
			v = &vstate{}
			t.vstates[cp.MMSI] = v
		}
		if cp.Time.After(v.at) {
			v.pos, v.at, v.speedKn = cp.Pos, cp.Time, cp.SpeedKn
		}
		switch cp.Type {
		case tracker.EventStopStart, tracker.EventSlowStart:
			v.slow = true
		case tracker.EventStopEnd, tracker.EventSlowEnd:
			v.slow = false
		case tracker.EventGapStart:
			v.dark = true
			v.gapStart, v.gapStartAt = cp.Pos, cp.Time
		case tracker.EventGapEnd:
			if v.dark {
				g := gapRec{
					MMSI:     cp.MMSI,
					StartPos: v.gapStart, StartAt: v.gapStartAt,
					EndPos: cp.Pos, EndAt: cp.Time,
				}
				alerts = append(alerts, t.linkGap(g)...)
				t.closedGaps = append(t.closedGaps, g)
			}
			v.dark = false
		}
		if t.det != nil {
			t.det.ObservePoint(cp.MMSI, cp.Pos, cp.Time, cp.SpeedKn, cp.HeadingDeg)
		}
	}

	t.evictStale(q)
	t.pruneGaps(q)
	alerts = append(alerts, t.rendezvousScreen(q)...)
	if t.det != nil {
		alerts = append(alerts, t.collisionScreen(q)...)
		st := t.det.Stats()
		t.atomLateRejected.Store(int64(st.LateRejected))
	}

	slices.SortStableFunc(alerts, maritime.CompareAlerts)
	t.pairAlerts += int64(len(alerts))
	t.atomPairAlerts.Store(t.pairAlerts)
	t.atomVessels.Store(int64(len(t.vstates)))
	t.atomEvicted.Store(t.evicted)
	return alerts
}

// evictStale drops vessels silent beyond Stale, and any pair streak
// touching a dropped vessel. Vessels inside a stop/slow episode or an
// open gap are exempt: the synopsis is legitimately silent between a
// StopStart and its StopEnd (and across a gap), and those are exactly
// the vessels the rendezvous and dark screens are watching. Their
// episodes always close with an End/GapEnd point (or the vessel ages
// out of the tracker and its state is rebuilt), so the exemption is
// bounded.
func (t *Tier) evictStale(q time.Time) {
	cut := q.Add(-t.cfg.Stale)
	for mmsi, v := range t.vstates {
		if v.at.Before(cut) && !v.slow && !v.dark {
			delete(t.vstates, mmsi)
			t.evicted++
		}
	}
	for k := range t.pairs {
		if t.vstates[k.a] == nil || t.vstates[k.b] == nil {
			delete(t.pairs, k)
		}
	}
	for k := range t.collActive {
		if t.vstates[k.a] == nil || t.vstates[k.b] == nil {
			delete(t.collActive, k)
		}
	}
}

// pruneGaps forgets closed gaps beyond the linking retention.
func (t *Tier) pruneGaps(q time.Time) {
	cut := q.Add(-t.cfg.Dark.Retention)
	kept := t.closedGaps[:0]
	for _, g := range t.closedGaps {
		if !g.EndAt.Before(cut) {
			kept = append(kept, g)
		}
	}
	t.closedGaps = kept
}

// linkGap matches a just-closed gap against every other vessel's stored
// gaps: overlapping in time, each transit plausible at implied speed,
// and end points converging. Called before g itself is stored, so every
// unordered gap pair is examined exactly once, in the deterministic
// order gaps close.
func (t *Tier) linkGap(g gapRec) []maritime.Alert {
	p := t.cfg.Dark
	var out []maritime.Alert
	for _, h := range t.closedGaps {
		if h.MMSI == g.MMSI {
			continue
		}
		overlapStart := maxTime(g.StartAt, h.StartAt)
		overlapEnd := minTime(g.EndAt, h.EndAt)
		if overlapEnd.Sub(overlapStart) < p.MinOverlap {
			continue
		}
		if impliedKnots(g) > p.MaxImpliedKn || impliedKnots(h) > p.MaxImpliedKn {
			continue
		}
		endDist := geo.Haversine(g.EndPos, h.EndPos)
		if endDist > p.ConvergeMeters || endDist >= geo.Haversine(g.StartPos, h.StartPos) {
			continue
		}
		a, b := g.MMSI, h.MMSI
		if a > b {
			a, b = b, a
		}
		out = append(out, maritime.Alert{
			CE:     maritime.CEDarkRendezvous,
			Time:   maxTime(g.EndAt, h.EndAt),
			Vessel: a, Vessel2: b,
		})
	}
	return out
}

// impliedKnots is the average speed a vessel must have sustained to
// cross its own gap.
func impliedKnots(g gapRec) float64 {
	secs := g.EndAt.Sub(g.StartAt).Seconds()
	if secs <= 0 {
		return 0
	}
	return geo.MetersPerSecondToKnots(geo.Haversine(g.StartPos, g.EndPos) / secs)
}

// rendezvousScreen pairs loitering vessels through the proximity index
// and advances each pair's streak; a pair that stays matched MinSlides
// consecutive slides fires once per episode.
func (t *Tier) rendezvousScreen(q time.Time) []maritime.Alert {
	p := t.cfg.Rendezvous
	// Collect loitering vessels in MMSI order and publish them into the
	// shared proximity index.
	mmsis := make([]uint32, 0, len(t.vstates))
	for mmsi, v := range t.vstates {
		if v.slow && !v.dark && v.speedKn <= p.MaxSpeedKn {
			mmsis = append(mmsis, mmsi)
		}
	}
	slices.Sort(mmsis)
	t.idx.Reset()
	for i, mmsi := range mmsis {
		t.idx.Add(int32(i), t.vstates[mmsi].pos)
	}

	matched := make(map[pairKey]bool)
	for i, mmsi := range mmsis {
		v := t.vstates[mmsi]
		t.cand = t.idx.NearAppend(t.cand[:0], v.pos, p.DistanceMeters)
		for _, jj := range t.cand {
			j := int(jj)
			if j <= i {
				continue // Haversine-exact query is symmetric: lower index owns the pair
			}
			other := mmsis[j]
			if t.nearPort(v.pos, p.PortStandoffMeters) ||
				t.nearPort(t.vstates[other].pos, p.PortStandoffMeters) {
				continue
			}
			matched[pairKey{mmsi, other}] = true
		}
	}

	// Advance streaks: matched pairs accumulate, unmatched ones reset.
	var out []maritime.Alert
	for k := range t.pairs {
		if !matched[k] {
			delete(t.pairs, k)
		}
	}
	keys := make([]pairKey, 0, len(matched))
	for k := range matched {
		keys = append(keys, k)
	}
	slices.SortFunc(keys, comparePairKeys)
	for _, k := range keys {
		ps := t.pairs[k]
		if ps == nil {
			ps = &pairState{}
			t.pairs[k] = ps
		}
		ps.streak++
		if ps.streak >= t.cfg.Rendezvous.MinSlides && !ps.emitted {
			ps.emitted = true
			out = append(out, maritime.Alert{
				CE:     maritime.CERendezvous,
				Time:   q,
				Vessel: k.a, Vessel2: k.b,
			})
		}
	}
	return out
}

// nearPort reports whether p lies within standoff of any port polygon.
func (t *Tier) nearPort(p geo.Point, standoff float64) bool {
	if t.portIdx == nil {
		return false
	}
	t.buf = t.portIdx.CloseToAppend(t.buf[:0], p, standoff)
	return len(t.buf) > 0
}

// collisionScreen queries the CPA detector and alerts on pairs newly in
// conflict; a pair re-alarms only after leaving conflict first.
func (t *Tier) collisionScreen(q time.Time) []maritime.Alert {
	encs := t.det.Encounters(q)
	current := make(map[pairKey]bool, len(encs))
	var out []maritime.Alert
	for _, e := range encs {
		k := pairKey{e.A, e.B}
		if current[k] {
			continue
		}
		current[k] = true
		if !t.collActive[k] {
			out = append(out, maritime.Alert{
				CE:     maritime.CECollisionCourse,
				Time:   q,
				Vessel: e.A, Vessel2: e.B,
			})
		}
	}
	t.collActive = current
	return out
}

func comparePairKeys(x, y pairKey) int {
	if x.a != y.a {
		if x.a < y.a {
			return -1
		}
		return 1
	}
	if x.b != y.b {
		if x.b < y.b {
			return -1
		}
		return 1
	}
	return 0
}

func minTime(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}

func maxTime(a, b time.Time) time.Time {
	if a.After(b) {
		return a
	}
	return b
}
