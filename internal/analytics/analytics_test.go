package analytics

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/maritime"
	"repro/internal/tracker"
)

var t0 = time.Date(2009, 6, 1, 12, 0, 0, 0, time.UTC)

func cp(mmsi uint32, pos geo.Point, at time.Time, typ tracker.EventType, speedKn, headingDeg float64) tracker.CriticalPoint {
	return tracker.CriticalPoint{
		MMSI: mmsi, Pos: pos, Time: at, Type: typ,
		SpeedKn: speedKn, HeadingDeg: headingDeg,
	}
}

func TestRendezvousStreakFiresOncePerEpisode(t *testing.T) {
	tier := New(Config{}, nil) // MinSlides defaults to 3
	base := geo.Point{Lon: 24.5, Lat: 37.5}
	near := geo.Destination(base, 90, 200) // within the 400 m default

	// Slide 1: both vessels enter a stop 200 m apart. Streak = 1.
	got := tier.Slide(t0, []tracker.CriticalPoint{
		cp(101, base, t0, tracker.EventStopStart, 0.3, 0),
		cp(102, near, t0, tracker.EventStopStart, 0.2, 0),
	})
	if len(got) != 0 {
		t.Fatalf("slide 1 alerts = %v, want none before MinSlides", got)
	}
	// Slide 2: still together (no fresh points needed). Streak = 2.
	if got = tier.Slide(t0.Add(time.Minute), nil); len(got) != 0 {
		t.Fatalf("slide 2 alerts = %v, want none before MinSlides", got)
	}
	// Slide 3: streak reaches MinSlides — the episode fires once.
	q3 := t0.Add(2 * time.Minute)
	got = tier.Slide(q3, nil)
	want := []maritime.Alert{{CE: maritime.CERendezvous, Time: q3, Vessel: 101, Vessel2: 102}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("slide 3 alerts = %v, want %v", got, want)
	}
	// Slide 4: the pair is still together; the episode must not re-fire.
	if got = tier.Slide(t0.Add(3*time.Minute), nil); len(got) != 0 {
		t.Fatalf("slide 4 alerts = %v, want no repeat within the episode", got)
	}

	// Vessel 102 gets under way: the pair separates and the streak resets.
	q5 := t0.Add(4 * time.Minute)
	tier.Slide(q5, []tracker.CriticalPoint{
		cp(102, geo.Destination(base, 90, 3000), q5, tracker.EventStopEnd, 8, 90),
	})
	// It comes back and stops again: a fresh episode needs MinSlides anew.
	q6 := t0.Add(5 * time.Minute)
	tier.Slide(q6, []tracker.CriticalPoint{
		cp(102, near, q6, tracker.EventStopStart, 0.4, 0),
	})
	tier.Slide(t0.Add(6*time.Minute), nil)
	q8 := t0.Add(7 * time.Minute)
	got = tier.Slide(q8, nil)
	want = []maritime.Alert{{CE: maritime.CERendezvous, Time: q8, Vessel: 101, Vessel2: 102}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("second episode alerts = %v, want %v", got, want)
	}
	if n := tier.Stats().PairAlerts; n != 2 {
		t.Errorf("PairAlerts = %d, want 2", n)
	}
}

func TestRendezvousSuppressedNearPort(t *testing.T) {
	base := geo.Point{Lon: 24.5, Lat: 37.5}
	harbor := geo.Destination(base, 0, 1000) // within the 2 km standoff
	port := geo.MustPolygon([]geo.Point{
		{Lon: harbor.Lon - 0.01, Lat: harbor.Lat - 0.01},
		{Lon: harbor.Lon + 0.01, Lat: harbor.Lat - 0.01},
		{Lon: harbor.Lon + 0.01, Lat: harbor.Lat + 0.01},
		{Lon: harbor.Lon - 0.01, Lat: harbor.Lat + 0.01},
	})
	tier := New(Config{}, []*geo.Polygon{port})
	near := geo.Destination(base, 90, 200)
	tier.Slide(t0, []tracker.CriticalPoint{
		cp(101, base, t0, tracker.EventStopStart, 0.3, 0),
		cp(102, near, t0, tracker.EventStopStart, 0.2, 0),
	})
	for i := 1; i <= 5; i++ {
		if got := tier.Slide(t0.Add(time.Duration(i)*time.Minute), nil); len(got) != 0 {
			t.Fatalf("slide %d: in-harbor pair alarmed: %v", i, got)
		}
	}
}

func TestRendezvousRequiresLoitering(t *testing.T) {
	tier := New(Config{}, nil)
	base := geo.Point{Lon: 24.5, Lat: 37.5}
	near := geo.Destination(base, 90, 200)
	// Close together, but sailing (no stop/slow episode): never a pair.
	for i := 0; i <= 5; i++ {
		q := t0.Add(time.Duration(i) * time.Minute)
		got := tier.Slide(q, []tracker.CriticalPoint{
			cp(101, base, q, tracker.EventSpeedChange, 12, 90),
			cp(102, near, q, tracker.EventSpeedChange, 12, 90),
		})
		if len(got) != 0 {
			t.Fatalf("slide %d: moving pair alarmed: %v", i, got)
		}
	}
}

func TestDarkGapLinking(t *testing.T) {
	tier := New(Config{}, nil)
	spot := geo.Point{Lon: 24.8, Lat: 37.2}
	aStart := geo.Destination(spot, 270, 6000)
	bStart := geo.Destination(spot, 90, 6000)
	aEnd := geo.Destination(spot, 0, 400)
	bEnd := geo.Destination(spot, 180, 400)

	// Both vessels go dark a couple of minutes apart, 12 km from each
	// other, and resurface 40 minutes later 800 m apart at the spot:
	// overlapping gaps, implied speeds ≈ 5 kn, endpoints converged.
	tier.Slide(t0, []tracker.CriticalPoint{
		cp(201, aStart, t0, tracker.EventGapStart, 8, 90),
		cp(202, bStart, t0.Add(2*time.Minute), tracker.EventGapStart, 8, 270),
	})
	q2 := t0.Add(45 * time.Minute)
	aBack := t0.Add(40 * time.Minute)
	bBack := t0.Add(42 * time.Minute)
	got := tier.Slide(q2, []tracker.CriticalPoint{
		cp(201, aEnd, aBack, tracker.EventGapEnd, 7, 90),
		cp(202, bEnd, bBack, tracker.EventGapEnd, 7, 270),
	})
	want := []maritime.Alert{{CE: maritime.CEDarkRendezvous, Time: bBack, Vessel: 201, Vessel2: 202}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("alerts = %v, want %v", got, want)
	}
}

func TestDarkGapLinkingRejectsImplausible(t *testing.T) {
	spot := geo.Point{Lon: 24.8, Lat: 37.2}
	cases := []struct {
		name           string
		bGapStart      time.Time
		bEnd           geo.Point
		bStartDistance float64
	}{
		// Gap B opens after A closed: no temporal overlap.
		{"no-overlap", t0.Add(41 * time.Minute), geo.Destination(spot, 180, 400), 6000},
		// Gap B's endpoints are 60 km apart in 40 min: ≈ 48 kn implied.
		{"teleport", t0, geo.Destination(spot, 180, 400), 60000},
		// Gap B ends 8 km from A's end: beyond ConvergeMeters.
		{"diverged", t0, geo.Destination(spot, 180, 8000), 6000},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tier := New(Config{}, nil)
			aStart := geo.Destination(spot, 270, 6000)
			bStart := geo.Destination(spot, 90, tc.bStartDistance)
			tier.Slide(t0, []tracker.CriticalPoint{
				cp(201, aStart, t0, tracker.EventGapStart, 8, 90),
				cp(202, bStart, tc.bGapStart, tracker.EventGapStart, 8, 270),
			})
			got := tier.Slide(t0.Add(45*time.Minute), []tracker.CriticalPoint{
				cp(201, geo.Destination(spot, 0, 400), t0.Add(40*time.Minute), tracker.EventGapEnd, 7, 90),
				cp(202, tc.bEnd, t0.Add(42*time.Minute), tracker.EventGapEnd, 7, 270),
			})
			if len(got) != 0 {
				t.Fatalf("implausible gap pair linked: %v", got)
			}
		})
	}
}

func TestCollisionScreenAlarmsOncePerConflict(t *testing.T) {
	tier := New(Config{EnableCollision: true}, nil)
	mid := geo.Point{Lon: 24.5, Lat: 37.5}

	converging := func(q time.Time) []tracker.CriticalPoint {
		return []tracker.CriticalPoint{
			cp(301, geo.Destination(mid, 270, 4000), q, tracker.EventSpeedChange, 12, 90),
			cp(302, geo.Destination(mid, 90, 4000), q, tracker.EventSpeedChange, 12, 270),
		}
	}
	got := tier.Slide(t0, converging(t0))
	want := []maritime.Alert{{CE: maritime.CECollisionCourse, Time: t0, Vessel: 301, Vessel2: 302}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("first slide alerts = %v, want %v", got, want)
	}
	// Still in conflict next slide: no duplicate alarm.
	if got = tier.Slide(t0.Add(30*time.Second), nil); len(got) != 0 {
		t.Fatalf("persisting conflict re-alarmed: %v", got)
	}
	// The pair turns away: conflict ends.
	q3 := t0.Add(time.Minute)
	got = tier.Slide(q3, []tracker.CriticalPoint{
		cp(301, geo.Destination(mid, 270, 3500), q3, tracker.EventSpeedChange, 12, 270),
		cp(302, geo.Destination(mid, 90, 3500), q3, tracker.EventSpeedChange, 12, 90),
	})
	if len(got) != 0 {
		t.Fatalf("diverging pair alarmed: %v", got)
	}
	// They converge again: a new conflict, a new alarm.
	q4 := t0.Add(2 * time.Minute)
	got = tier.Slide(q4, converging(q4))
	want = []maritime.Alert{{CE: maritime.CECollisionCourse, Time: q4, Vessel: 301, Vessel2: 302}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("renewed conflict alerts = %v, want %v", got, want)
	}
}

func TestSlideInputOrderIrrelevant(t *testing.T) {
	// The coordinator hands worker-concatenated points, the single
	// process shard-merged ones; any within-slide permutation must give
	// identical alerts.
	mkPoints := func(q time.Time) []tracker.CriticalPoint {
		mid := geo.Point{Lon: 24.5, Lat: 37.5}
		return []tracker.CriticalPoint{
			cp(301, geo.Destination(mid, 270, 4000), q, tracker.EventSpeedChange, 12, 90),
			cp(302, geo.Destination(mid, 90, 4000), q, tracker.EventSpeedChange, 12, 270),
			cp(101, geo.Destination(mid, 0, 9000), q, tracker.EventStopStart, 0.3, 0),
			cp(102, geo.Destination(geo.Destination(mid, 0, 9000), 90, 150), q, tracker.EventStopStart, 0.2, 0),
		}
	}
	run := func(perm []int) [][]maritime.Alert {
		tier := New(Config{EnableCollision: true, Rendezvous: RendezvousParams{MinSlides: 2}}, nil)
		var out [][]maritime.Alert
		for i := 0; i < 3; i++ {
			q := t0.Add(time.Duration(i) * time.Minute)
			pts := mkPoints(q)
			shuffled := make([]tracker.CriticalPoint, len(pts))
			for to, from := range perm {
				shuffled[to] = pts[from]
			}
			out = append(out, tier.Slide(q, shuffled))
		}
		return out
	}
	want := run([]int{0, 1, 2, 3})
	for _, perm := range [][]int{{3, 2, 1, 0}, {1, 3, 0, 2}, {2, 0, 3, 1}} {
		if got := run(perm); !reflect.DeepEqual(got, want) {
			t.Fatalf("permutation %v changed the alerts:\n got %v\nwant %v", perm, got, want)
		}
	}
}

func TestSnapshotRoundtripAndGob(t *testing.T) {
	cfg := Config{EnableCollision: true}
	mid := geo.Point{Lon: 24.5, Lat: 37.5}
	seedSlides := func(tier *Tier) {
		tier.Slide(t0, []tracker.CriticalPoint{
			cp(101, geo.Destination(mid, 0, 9000), t0, tracker.EventStopStart, 0.3, 0),
			cp(102, geo.Destination(geo.Destination(mid, 0, 9000), 90, 150), t0, tracker.EventStopStart, 0.2, 0),
			cp(201, geo.Destination(mid, 270, 6000), t0, tracker.EventGapStart, 8, 90),
			cp(301, geo.Destination(mid, 270, 4000), t0, tracker.EventSpeedChange, 12, 90),
			cp(302, geo.Destination(mid, 90, 4000), t0, tracker.EventSpeedChange, 12, 270),
		})
		tier.Slide(t0.Add(time.Minute), []tracker.CriticalPoint{
			cp(201, geo.Destination(mid, 270, 2000), t0.Add(50*time.Second), tracker.EventGapEnd, 7, 90),
		})
	}
	orig := New(cfg, nil)
	seedSlides(orig)

	// Gob-roundtrip the snapshot: the checkpoint and manifest paths
	// serialize it with gob, so it must encode and decode faithfully.
	snap := orig.Snapshot()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	var decoded Snapshot
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&decoded); err != nil {
		t.Fatalf("gob decode: %v", err)
	}

	restored := New(cfg, nil)
	restored.Restore(&decoded)
	if got, want := restored.Snapshot(), orig.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored snapshot differs:\n got %+v\nwant %+v", got, want)
	}

	// The restored tier must continue exactly like the original.
	follow := func(tier *Tier) [][]maritime.Alert {
		var out [][]maritime.Alert
		for i := 2; i < 6; i++ {
			out = append(out, tier.Slide(t0.Add(time.Duration(i)*time.Minute), nil))
		}
		return out
	}
	if got, want := follow(restored), follow(orig); !reflect.DeepEqual(got, want) {
		t.Fatalf("post-restore alerts diverge:\n got %v\nwant %v", got, want)
	}

	// A nil snapshot (pre-tier checkpoint) restores to empty.
	fresh := New(cfg, nil)
	seedSlides(fresh)
	fresh.Restore(nil)
	if st := fresh.Stats(); st.Vessels != 0 || st.PairAlerts != 0 {
		t.Errorf("nil restore left state behind: %+v", st)
	}
}

func TestStaleVesselsEvicted(t *testing.T) {
	tier := New(Config{Stale: 10 * time.Minute}, nil)
	base := geo.Point{Lon: 24.5, Lat: 37.5}
	// 101 cruises past and goes silent; 102 enters a stop. The synopsis
	// is legitimately silent during a stop episode, so only the cruiser
	// may be evicted.
	tier.Slide(t0, []tracker.CriticalPoint{
		cp(101, base, t0, tracker.EventSpeedChange, 12, 90),
		cp(102, geo.Destination(base, 0, 5000), t0, tracker.EventStopStart, 0.3, 0),
	})
	if st := tier.Stats(); st.Vessels != 2 {
		t.Fatalf("Vessels = %d, want 2", st.Vessels)
	}
	tier.Slide(t0.Add(time.Hour), nil)
	st := tier.Stats()
	if st.Vessels != 1 || st.Evicted != 1 {
		t.Errorf("after an hour of silence: %+v, want 1 vessel (the stopped one) / 1 evicted", st)
	}
}
