package analytics

import (
	"slices"
	"time"

	"repro/internal/collision"
	"repro/internal/geo"
)

// VesselSnap is one vessel's analytics state in serializable form.
type VesselSnap struct {
	MMSI       uint32
	Pos        geo.Point
	At         time.Time
	SpeedKn    float64
	Slow, Dark bool
	GapStart   geo.Point
	GapStartAt time.Time
}

// PairSnap is one rendezvous streak.
type PairSnap struct {
	A, B    uint32
	Streak  int
	Emitted bool
}

// Snapshot captures the tier for checkpointing. All slices are sorted
// (or in deterministic insertion order, for gaps), so encoding is
// reproducible.
type Snapshot struct {
	Vessels    []VesselSnap
	Pairs      []PairSnap
	Gaps       []gapRec
	CollActive [][2]uint32
	Collision  *collision.DetectorSnapshot
	Evicted    int64
	PairAlerts int64
}

// Snapshot serializes the tier state.
func (t *Tier) Snapshot() *Snapshot {
	s := &Snapshot{
		Vessels:    make([]VesselSnap, 0, len(t.vstates)),
		Pairs:      make([]PairSnap, 0, len(t.pairs)),
		Gaps:       slices.Clone(t.closedGaps),
		Evicted:    t.evicted,
		PairAlerts: t.pairAlerts,
	}
	for mmsi, v := range t.vstates {
		s.Vessels = append(s.Vessels, VesselSnap{
			MMSI: mmsi, Pos: v.pos, At: v.at, SpeedKn: v.speedKn,
			Slow: v.slow, Dark: v.dark,
			GapStart: v.gapStart, GapStartAt: v.gapStartAt,
		})
	}
	slices.SortFunc(s.Vessels, func(a, b VesselSnap) int {
		if a.MMSI < b.MMSI {
			return -1
		}
		if a.MMSI > b.MMSI {
			return 1
		}
		return 0
	})
	for k, ps := range t.pairs {
		s.Pairs = append(s.Pairs, PairSnap{A: k.a, B: k.b, Streak: ps.streak, Emitted: ps.emitted})
	}
	slices.SortFunc(s.Pairs, func(x, y PairSnap) int {
		return comparePairKeys(pairKey{x.A, x.B}, pairKey{y.A, y.B})
	})
	for k := range t.collActive {
		s.CollActive = append(s.CollActive, [2]uint32{k.a, k.b})
	}
	slices.SortFunc(s.CollActive, func(x, y [2]uint32) int {
		return comparePairKeys(pairKey{x[0], x[1]}, pairKey{y[0], y[1]})
	})
	if t.det != nil {
		ds := t.det.Snapshot()
		s.Collision = &ds
	}
	return s
}

// Restore replaces the tier state with a snapshot's. A nil snapshot
// resets the tier to empty (lenient restore for checkpoints written
// before the tier existed).
func (t *Tier) Restore(s *Snapshot) {
	t.vstates = make(map[uint32]*vstate)
	t.pairs = make(map[pairKey]*pairState)
	t.collActive = make(map[pairKey]bool)
	t.closedGaps = nil
	t.evicted = 0
	t.pairAlerts = 0
	if t.det != nil {
		t.det = collision.New(t.cfg.Collision)
	}
	if s == nil {
		t.publishStats()
		return
	}
	for _, v := range s.Vessels {
		t.vstates[v.MMSI] = &vstate{
			pos: v.Pos, at: v.At, speedKn: v.SpeedKn,
			slow: v.Slow, dark: v.Dark,
			gapStart: v.GapStart, gapStartAt: v.GapStartAt,
		}
	}
	for _, p := range s.Pairs {
		t.pairs[pairKey{p.A, p.B}] = &pairState{streak: p.Streak, emitted: p.Emitted}
	}
	for _, k := range s.CollActive {
		t.collActive[pairKey{k[0], k[1]}] = true
	}
	t.closedGaps = slices.Clone(s.Gaps)
	t.evicted = s.Evicted
	t.pairAlerts = s.PairAlerts
	if t.det != nil && s.Collision != nil {
		t.det.Restore(*s.Collision)
	}
	t.publishStats()
}

// publishStats refreshes the atomic mirrors after a restore.
func (t *Tier) publishStats() {
	t.atomVessels.Store(int64(len(t.vstates)))
	t.atomEvicted.Store(t.evicted)
	t.atomPairAlerts.Store(t.pairAlerts)
	if t.det != nil {
		t.atomLateRejected.Store(int64(t.det.Stats().LateRejected))
	} else {
		t.atomLateRejected.Store(0)
	}
}
