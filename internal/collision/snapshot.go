package collision

import (
	"slices"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

// VesselSnapshot is one vessel's kinematic state in serializable form.
type VesselSnapshot struct {
	MMSI     uint32
	Pos      geo.Point
	At       time.Time
	Vel      geo.Velocity
	HaveVel  bool
	Prev     ais.Fix
	HavePrev bool
}

// DetectorSnapshot captures the detector for checkpointing. Vessels are
// sorted by MMSI so the encoding is deterministic.
type DetectorSnapshot struct {
	Vessels      []VesselSnapshot
	LateRejected int
	Evicted      int
}

// Snapshot serializes the detector state.
func (d *Detector) Snapshot() DetectorSnapshot {
	s := DetectorSnapshot{
		Vessels:      make([]VesselSnapshot, 0, len(d.vessels)),
		LateRejected: d.lateRejected,
		Evicted:      d.evicted,
	}
	for mmsi, k := range d.vessels {
		s.Vessels = append(s.Vessels, VesselSnapshot{
			MMSI: mmsi, Pos: k.pos, At: k.at, Vel: k.vel,
			HaveVel: k.haveVel, Prev: k.prev, HavePrev: k.havePrev,
		})
	}
	slices.SortFunc(s.Vessels, func(a, b VesselSnapshot) int {
		if a.MMSI < b.MMSI {
			return -1
		}
		if a.MMSI > b.MMSI {
			return 1
		}
		return 0
	})
	return s
}

// Restore replaces the detector state with a snapshot's.
func (d *Detector) Restore(s DetectorSnapshot) {
	d.vessels = make(map[uint32]*kinematics, len(s.Vessels))
	for _, v := range s.Vessels {
		d.vessels[v.MMSI] = &kinematics{
			pos: v.Pos, at: v.At, vel: v.Vel,
			haveVel: v.HaveVel, prev: v.Prev, havePrev: v.HavePrev,
		}
	}
	d.lateRejected = s.LateRejected
	d.evicted = s.Evicted
}
