package collision

import (
	"math"
	"math/rand"
	"reflect"
	"slices"
	"sort"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/stream"
)

// track builds a straight-line fix sequence for one vessel: n fixes
// every interval, starting at start from pos on heading at speedKn.
func track(mmsi uint32, pos geo.Point, heading, speedKn float64, start time.Time, interval time.Duration, n int) []ais.Fix {
	fixes := make([]ais.Fix, 0, n)
	step := geo.KnotsToMetersPerSecond(speedKn) * interval.Seconds()
	for i := 0; i < n; i++ {
		fixes = append(fixes, ais.Fix{
			MMSI: mmsi,
			Pos:  geo.Destination(pos, heading, step*float64(i)),
			Time: start.Add(time.Duration(i) * interval),
		})
	}
	return fixes
}

// Regression for the state-overwrite bug: Observe used to apply every
// fix unconditionally, so a late (out-of-order) arrival rewound the
// vessel to a stale position and poisoned the next velocity estimate.
// Perturb a clean track with the transport-delay simulator and check
// the detector ends on the newest fix, not the last-arriving one.
func TestObserveRejectsLateFixes(t *testing.T) {
	start := t0.Add(-20 * time.Minute)
	fixes := track(7, geo.Point{Lon: 24.5, Lat: 37.5}, 90, 12, start, 30*time.Second, 40)
	perturbed := stream.Delayer{MaxDelay: 2 * time.Minute, Fraction: 0.5, Seed: 11}.Apply(fixes)
	if reflect.DeepEqual(perturbed, fixes) {
		t.Fatal("delayer did not perturb the arrival order; pick another seed")
	}

	d := New(Params{})
	wantRejected := 0
	applied := time.Time{}
	for _, f := range perturbed {
		if !applied.IsZero() && !f.Time.After(applied) {
			wantRejected++
		} else {
			applied = f.Time
		}
		d.Observe(f)
	}
	if wantRejected == 0 {
		t.Fatal("perturbation produced no late arrivals; pick another seed")
	}

	k := d.vessels[7]
	newest := fixes[len(fixes)-1]
	if !k.at.Equal(newest.Time) || k.pos != newest.Pos {
		t.Errorf("state = %v @ %v, want the newest fix %v @ %v",
			k.pos, k.at, newest.Pos, newest.Time)
	}
	if got := d.Stats().LateRejected; got != wantRejected {
		t.Errorf("LateRejected = %d, want %d", got, wantRejected)
	}
	// The velocity estimate must come from in-order neighbors, so the
	// recovered speed stays near the true 12 knots instead of the wild
	// values a rewound position pair would produce.
	if k.vel.SpeedKnots < 10 || k.vel.SpeedKnots > 14 {
		t.Errorf("recovered speed = %.1f kn, want ~12", k.vel.SpeedKnots)
	}
}

// Regression for the unbounded-memory bug: vessels that went silent
// were skipped by queries but never removed, so a long-running
// detector accumulated every vessel ever heard. Under churn (new
// vessels appearing as old ones go silent) the population must
// stabilize and the evictions must be counted.
func TestVesselCountStabilizesUnderChurn(t *testing.T) {
	d := New(Params{Stale: 10 * time.Minute})
	base := geo.Point{Lon: 24.0, Lat: 37.0}
	// 200 generations, one new vessel per minute; with a 10-minute
	// staleness bound only ~10 vessels are ever live at once.
	for i := 0; i < 200; i++ {
		now := t0.Add(time.Duration(i) * time.Minute)
		pos := geo.Destination(base, float64(i*37%360), 5000+float64(i%7)*3000)
		d.Observe(ais.Fix{MMSI: uint32(1000 + i), Pos: geo.Destination(pos, 180, 100), Time: now.Add(-30 * time.Second)})
		d.Observe(ais.Fix{MMSI: uint32(1000 + i), Pos: pos, Time: now})
		d.Encounters(now)
		if n := d.VesselCount(); n > 15 {
			t.Fatalf("generation %d: population %d keeps growing despite churn", i, n)
		}
	}
	st := d.Stats()
	if st.Evicted == 0 {
		t.Error("no vessels were evicted under churn")
	}
	if st.Vessels+st.Evicted != 200 {
		t.Errorf("vessels(%d) + evicted(%d) = %d, want 200 (every vessel accounted for)",
			st.Vessels, st.Evicted, st.Vessels+st.Evicted)
	}
}

// Property: Encounters is a pure function of the accepted observation
// history — interleaving the per-vessel streams differently across
// vessels (preserving each vessel's own order, so exactly the same
// fixes are accepted) must give byte-identical results.
func TestEncountersInvariantToArrivalOrder(t *testing.T) {
	mid := geo.Point{Lon: 24.5, Lat: 37.5}
	start := t0.Add(-10 * time.Minute)
	tracks := [][]ais.Fix{
		track(1, geo.Destination(mid, 270, 4000), 90, 12, start, time.Minute, 11),
		track(2, geo.Destination(mid, 90, 4000), 270, 12, start, time.Minute, 11),
		track(3, geo.Destination(mid, 0, 2500), 180, 9, start, time.Minute, 11),
		track(4, geo.Destination(mid, 135, 9000), 315, 15, start, time.Minute, 11),
		track(5, geo.Destination(mid, 200, 1200), 20, 0.5, start, time.Minute, 11),
	}

	run := func(order []ais.Fix) []Encounter {
		d := New(Params{})
		for _, f := range order {
			d.Observe(f)
		}
		return d.Encounters(t0)
	}

	var roundRobin []ais.Fix
	for i := 0; i < 11; i++ {
		for _, tr := range tracks {
			roundRobin = append(roundRobin, tr[i])
		}
	}
	want := run(roundRobin)
	if len(want) == 0 {
		t.Fatal("fixture produced no encounters; the invariance check would be vacuous")
	}

	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		// Random fair interleaving: repeatedly pop the head of a random
		// non-empty track. Per-vessel order is preserved by construction.
		heads := make([]int, len(tracks))
		var order []ais.Fix
		for len(order) < len(roundRobin) {
			i := rng.Intn(len(tracks))
			if heads[i] < len(tracks[i]) {
				order = append(order, tracks[i][heads[i]])
				heads[i]++
			}
		}
		if got := run(order); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: encounters differ under reordering:\n got %v\nwant %v",
				trial, got, want)
		}
	}
}

// A pair closing at only 0.3 m/s is suppressed by the default
// MinClosingMS (0.5) but must alarm when the caller explicitly asks
// for a finer gate — the override must not be clobbered by defaults.
func TestMinClosingOverride(t *testing.T) {
	base := geo.Point{Lon: 24.5, Lat: 37.5}
	const lead, chase = 4.42, 5.0 // knots; overtaking at ≈0.30 m/s
	setup := func(p Params) *Detector {
		d := New(p)
		feed(d, 1, base, 90, chase)
		feed(d, 2, geo.Destination(base, 90, 100), 90, lead)
		return d
	}
	if enc := setup(Params{}).Encounters(t0); len(enc) != 0 {
		t.Errorf("slow overtake alarmed under the default closing gate: %v", enc)
	}
	enc := setup(Params{MinClosingMS: 0.2}).Encounters(t0)
	if len(enc) != 1 {
		t.Fatalf("slow overtake with MinClosingMS=0.2: encounters = %v, want 1", enc)
	}
	if enc[0].A != 1 || enc[0].B != 2 {
		t.Errorf("pair = %d,%d", enc[0].A, enc[0].B)
	}
}

// The DCPA comparison is a strict exclusion (dcpa > threshold), so a
// pair predicted to pass exactly at the threshold distance still
// alarms. Exercised directly on planar states where the geometry is
// exact: reciprocal courses offset laterally by precisely 500 m.
func TestExactThresholdPairAlarms(t *testing.T) {
	p := Params{}.withDefaults() // DistanceMeters = 500
	a := planar{mmsi: 1, x: 0, y: 0, vx: 5, vy: 0, speedKn: 10}
	b := planar{mmsi: 2, x: 2000, y: 500, vx: -5, vy: 0, speedKn: 10}
	enc, ok := cpa(a, b, p)
	if !ok {
		t.Fatal("pair at exactly the DCPA threshold did not alarm")
	}
	if enc.DCPA != 500 {
		t.Errorf("DCPA = %v, want exactly 500", enc.DCPA)
	}
	if want := 200 * time.Second; enc.TCPA != want {
		t.Errorf("TCPA = %v, want %v", enc.TCPA, want)
	}
	// One millimeter wider and the strict exclusion kicks in.
	b.y = 500.001
	if _, ok := cpa(a, b, p); ok {
		t.Error("pair just beyond the threshold alarmed")
	}
}

// bruteForce replays Encounters' projection on the detector's state
// but sweeps all pairs with no spatial pruning — the oracle the
// index-driven query must match exactly.
func bruteForce(d *Detector, now time.Time) []Encounter {
	p := d.params
	mmsis := make([]uint32, 0, len(d.vessels))
	for mmsi, k := range d.vessels {
		if k.haveVel && now.Sub(k.at) <= p.Stale {
			mmsis = append(mmsis, mmsi)
		}
	}
	slices.Sort(mmsis)
	var ref geo.Point
	var states []planar
	for i, mmsi := range mmsis {
		k := d.vessels[mmsi]
		if i == 0 {
			ref = k.pos
		}
		ms := geo.KnotsToMetersPerSecond(k.vel.SpeedKnots)
		brng := k.vel.HeadingDeg * math.Pi / 180
		pos := geo.Destination(k.pos, k.vel.HeadingDeg, ms*now.Sub(k.at).Seconds())
		x, y := planarOffset(ref, pos)
		states = append(states, planar{
			mmsi: mmsi, geo: pos, x: x, y: y,
			vx: ms * math.Sin(brng), vy: ms * math.Cos(brng), speedKn: k.vel.SpeedKnots,
		})
	}
	var out []Encounter
	for i := range states {
		for j := i + 1; j < len(states); j++ {
			if enc, ok := cpa(states[i], states[j], p); ok {
				enc.A, enc.B = states[i].mmsi, states[j].mmsi
				enc.Where = planarToGeo(ref, enc.Where.Lon, enc.Where.Lat)
				out = append(out, enc)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TCPA != out[j].TCPA {
			return out[i].TCPA < out[j].TCPA
		}
		return out[i].A < out[j].A
	})
	return out
}

// The index-driven Encounters must agree with the all-pairs oracle on
// randomized fleets: pruning may skip pairs that cannot alarm, never
// pairs that do, and must not duplicate any.
func TestIndexMatchesBruteForce(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := New(Params{})
		// A few dense clusters (encounter-rich) plus scattered traffic.
		for c := 0; c < 4; c++ {
			center := geo.Point{Lon: 23 + rng.Float64()*3, Lat: 36.5 + rng.Float64()*2}
			for i := 0; i < 12; i++ {
				pos := geo.Destination(center, rng.Float64()*360, rng.Float64()*6000)
				feed(d, uint32(seed*10_000+int64(c)*100+int64(i)),
					pos, rng.Float64()*360, 2+rng.Float64()*16)
			}
		}
		for i := 0; i < 40; i++ {
			pos := geo.Point{Lon: 20 + rng.Float64()*8, Lat: 34 + rng.Float64()*5}
			feed(d, uint32(seed*10_000+5000+int64(i)), pos, rng.Float64()*360, 2+rng.Float64()*16)
		}
		want := bruteForce(d, t0)
		got := d.Encounters(t0)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: index-driven encounters diverge from brute force:\n got %d %v\nwant %d %v",
				seed, len(got), got, len(want), want)
		}
		if len(want) == 0 {
			t.Errorf("seed %d: oracle found no encounters; fixture too sparse", seed)
		}
	}
}
