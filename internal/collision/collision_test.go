package collision

import (
	"math"
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

var t0 = time.Date(2009, 6, 1, 12, 0, 0, 0, time.UTC)

// feed gives the detector two fixes (one minute apart) establishing a
// course for the vessel: at now it sits at pos moving on heading at
// speedKn.
func feed(d *Detector, mmsi uint32, pos geo.Point, heading, speedKn float64) {
	step := geo.KnotsToMetersPerSecond(speedKn) * 60
	before := geo.Destination(pos, heading+180, step)
	d.Observe(ais.Fix{MMSI: mmsi, Pos: before, Time: t0.Add(-time.Minute)})
	d.Observe(ais.Fix{MMSI: mmsi, Pos: pos, Time: t0})
}

func TestHeadOnEncounterDetected(t *testing.T) {
	d := New(Params{})
	mid := geo.Point{Lon: 24.5, Lat: 37.5}
	// Two 12-knot vessels 8 km apart, sailing straight at each other:
	// closing speed 24 kn ≈ 12.35 m/s → TCPA ≈ 648 s, DCPA ≈ 0.
	feed(d, 1, geo.Destination(mid, 270, 4000), 90, 12)
	feed(d, 2, geo.Destination(mid, 90, 4000), 270, 12)
	enc := d.Encounters(t0)
	if len(enc) != 1 {
		t.Fatalf("encounters = %v", enc)
	}
	e := enc[0]
	if e.A != 1 || e.B != 2 {
		t.Errorf("pair = %d,%d", e.A, e.B)
	}
	wantT := 8000 / geo.KnotsToMetersPerSecond(24)
	if math.Abs(e.TCPA.Seconds()-wantT) > 30 {
		t.Errorf("TCPA = %v, want ~%.0fs", e.TCPA, wantT)
	}
	if e.DCPA > 100 {
		t.Errorf("DCPA = %.0f m, want ~0", e.DCPA)
	}
	if dist := geo.Haversine(e.Where, mid); dist > 500 {
		t.Errorf("CPA position %.0f m from the geometric midpoint", dist)
	}
}

func TestCrossingCoursesRespectThreshold(t *testing.T) {
	d := New(Params{DistanceMeters: 300})
	cross := geo.Point{Lon: 24.5, Lat: 37.5}
	// Vessel 1 eastbound through the crossing; vessel 2 northbound,
	// timed to pass 1 km behind it: DCPA ≈ 700 m > 300 m → no alarm.
	feed(d, 1, geo.Destination(cross, 270, 3000), 90, 12)
	feed(d, 2, geo.Destination(cross, 180, 4000), 0, 12)
	if enc := d.Encounters(t0); len(enc) != 0 {
		t.Errorf("crossing with wide CPA alarmed: %v", enc)
	}
	// Re-time vessel 2 to arrive simultaneously: alarm.
	d2 := New(Params{DistanceMeters: 300})
	feed(d2, 1, geo.Destination(cross, 270, 3000), 90, 12)
	feed(d2, 2, geo.Destination(cross, 180, 3000), 0, 12)
	if enc := d2.Encounters(t0); len(enc) != 1 {
		t.Errorf("simultaneous crossing not alarmed: %v", enc)
	}
}

func TestDivergingVesselsIgnored(t *testing.T) {
	d := New(Params{})
	mid := geo.Point{Lon: 24.5, Lat: 37.5}
	// Back to back, sailing apart — but currently only 400 m from each
	// other (inside the threshold at TCPA=0).
	feed(d, 1, geo.Destination(mid, 270, 3000), 270, 12)
	feed(d, 2, geo.Destination(mid, 90, 3000), 90, 12)
	if enc := d.Encounters(t0); len(enc) != 0 {
		t.Errorf("diverging distant vessels alarmed: %v", enc)
	}
}

func TestParallelCoursesOutsideThresholdIgnored(t *testing.T) {
	d := New(Params{DistanceMeters: 500})
	base := geo.Point{Lon: 24.5, Lat: 37.5}
	feed(d, 1, base, 90, 15)
	feed(d, 2, geo.Destination(base, 0, 2000), 90, 15) // 2 km abeam
	if enc := d.Encounters(t0); len(enc) != 0 {
		t.Errorf("parallel courses 2 km apart alarmed: %v", enc)
	}
}

func TestHorizonBoundsLookahead(t *testing.T) {
	d := New(Params{Horizon: 5 * time.Minute})
	mid := geo.Point{Lon: 24.5, Lat: 37.5}
	// Head-on but 20 km apart at 12 kn each: TCPA ≈ 27 min > 5 min.
	feed(d, 1, geo.Destination(mid, 270, 10000), 90, 12)
	feed(d, 2, geo.Destination(mid, 90, 10000), 270, 12)
	if enc := d.Encounters(t0); len(enc) != 0 {
		t.Errorf("encounter beyond the horizon alarmed: %v", enc)
	}
}

func TestStaleVesselsExcluded(t *testing.T) {
	d := New(Params{Stale: 10 * time.Minute})
	mid := geo.Point{Lon: 24.5, Lat: 37.5}
	feed(d, 1, geo.Destination(mid, 270, 4000), 90, 12)
	feed(d, 2, geo.Destination(mid, 90, 4000), 270, 12)
	// Query half an hour later: both tracks are stale.
	if enc := d.Encounters(t0.Add(30 * time.Minute)); len(enc) != 0 {
		t.Errorf("stale tracks alarmed: %v", enc)
	}
}

func TestGridPruningMatchesNaive(t *testing.T) {
	// A converging pair embedded in a dispersed fleet: pruning must not
	// lose it, and far-apart vessels must not appear.
	d := New(Params{})
	mid := geo.Point{Lon: 24.5, Lat: 37.5}
	feed(d, 1, geo.Destination(mid, 270, 4000), 90, 12)
	feed(d, 2, geo.Destination(mid, 90, 4000), 270, 12)
	for i := uint32(0); i < 60; i++ {
		pos := geo.Point{
			Lon: 20 + float64(i%10)*0.8,
			Lat: 34 + float64(i/10)*1.1,
		}
		feed(d, 100+i, pos, float64(i*7%360), 10)
	}
	enc := d.Encounters(t0)
	found := false
	for _, e := range enc {
		if e.A == 1 && e.B == 2 {
			found = true
		}
		if e.DCPA > d.params.DistanceMeters {
			t.Errorf("encounter beyond threshold: %+v", e)
		}
	}
	if !found {
		t.Error("grid pruning lost the converging pair")
	}
}

func BenchmarkEncounters(b *testing.B) {
	d := New(Params{})
	for i := uint32(0); i < 2000; i++ {
		pos := geo.Point{
			Lon: 20 + float64(i%45)*0.2,
			Lat: 34 + float64(i/45)*0.15,
		}
		feed(d, i, pos, float64(i*13%360), 8+float64(i%12))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Encounters(t0)
	}
}

func TestMooredClusterDoesNotAlarm(t *testing.T) {
	// Five vessels drifting within 200 m of each other at anchor: GPS
	// drift gives them sub-knot velocities in random directions. A quay
	// full of neighbors is not collision traffic.
	d := New(Params{})
	quay := geo.Point{Lon: 23.63, Lat: 37.94}
	for i := uint32(0); i < 5; i++ {
		pos := geo.Destination(quay, float64(i)*72, 120)
		feed(d, 10+i, pos, float64(i*50%360), 0.4)
	}
	if enc := d.Encounters(t0); len(enc) != 0 {
		t.Errorf("anchored cluster alarmed: %v", enc)
	}
}

func TestMovingVesselTowardMooredOneAlarms(t *testing.T) {
	// One vessel bearing down on an anchored one: the moored vessel's
	// low speed must not suppress a genuine risk.
	d := New(Params{})
	anchored := geo.Point{Lon: 24.5, Lat: 37.5}
	feed(d, 1, anchored, 10, 0.2)
	feed(d, 2, geo.Destination(anchored, 270, 3000), 90, 14)
	enc := d.Encounters(t0)
	if len(enc) != 1 {
		t.Fatalf("encounters = %v, want the bearing-down pair", enc)
	}
	if enc[0].DCPA > 300 {
		t.Errorf("DCPA = %.0f m", enc[0].DCPA)
	}
}
