// Package collision implements the online collision detection the
// paper cites as a beneficiary of trajectory compression (§1:
// "reducing latency of online collision detection") and the purpose
// AIS exists for ("AIS is intended to assist vessel crews in collision
// avoidance"). The detector keeps one kinematic state per vessel and,
// on demand, finds pairs on conflicting courses via closest point of
// approach (CPA): time-to-CPA and distance-at-CPA computed from the
// current velocity vectors, with a spatial hash so only plausibly
// reachable pairs are examined.
package collision

import (
	"math"
	"sort"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

// Params configures the detector.
type Params struct {
	// DistanceMeters is the DCPA threshold: pairs predicted to pass
	// closer than this raise an encounter (default 500 m).
	DistanceMeters float64
	// Horizon bounds the look-ahead: encounters with TCPA beyond it are
	// ignored (default 20 minutes).
	Horizon time.Duration
	// MaxSpeedKnots bounds plausible vessel speed for the spatial
	// pruning radius (default 40 knots).
	MaxSpeedKnots float64
	// Stale drops vessels not heard from for this long (default 15
	// minutes): their projected positions are meaningless.
	Stale time.Duration
	// MinSpeedKnots: at least one vessel of a pair must move this fast
	// (default 3 knots) — moored neighbors sharing a quay are not
	// collision traffic.
	MinSpeedKnots float64
	// MinClosingMS is the minimum relative speed in m/s (default 0.5):
	// pairs in near-identical motion (a loitering group, ships berthed
	// side by side) never alarm.
	MinClosingMS float64
}

// withDefaults fills unset fields.
func (p Params) withDefaults() Params {
	if p.DistanceMeters <= 0 {
		p.DistanceMeters = 500
	}
	if p.Horizon <= 0 {
		p.Horizon = 20 * time.Minute
	}
	if p.MaxSpeedKnots <= 0 {
		p.MaxSpeedKnots = 40
	}
	if p.Stale <= 0 {
		p.Stale = 15 * time.Minute
	}
	if p.MinSpeedKnots <= 0 {
		p.MinSpeedKnots = 3
	}
	if p.MinClosingMS <= 0 {
		p.MinClosingMS = 0.5
	}
	return p
}

// Encounter is one predicted close approach between two vessels.
type Encounter struct {
	A, B  uint32        // MMSIs, A < B
	TCPA  time.Duration // time to closest point of approach from query time
	DCPA  float64       // distance at CPA in meters
	Where geo.Point     // midpoint of the two projected CPA positions
}

// Detector tracks vessel kinematics and answers encounter queries.
type Detector struct {
	params  Params
	vessels map[uint32]*kinematics
}

type kinematics struct {
	pos      geo.Point
	at       time.Time
	vel      geo.Velocity
	haveVel  bool
	prev     ais.Fix
	havePrev bool
}

// New returns an empty detector.
func New(params Params) *Detector {
	return &Detector{
		params:  params.withDefaults(),
		vessels: make(map[uint32]*kinematics),
	}
}

// Observe updates a vessel's kinematics with a cleaned fix.
func (d *Detector) Observe(f ais.Fix) {
	k := d.vessels[f.MMSI]
	if k == nil {
		k = &kinematics{}
		d.vessels[f.MMSI] = k
	}
	if k.havePrev && f.Time.After(k.prev.Time) {
		if v, ok := geo.VelocityBetween(k.prev.Pos, k.prev.Time, f.Pos, f.Time); ok {
			k.vel = v
			k.haveVel = true
		}
	}
	k.prev = f
	k.havePrev = true
	k.pos = f.Pos
	k.at = f.Time
}

// VesselCount returns the number of vessels with kinematic state.
func (d *Detector) VesselCount() int { return len(d.vessels) }

// planar is a vessel state projected onto a local plane: meters east/
// north of a reference point, with velocity in meters/second.
type planar struct {
	mmsi    uint32
	x, y    float64
	vx, vy  float64
	speedKn float64
}

// Encounters returns every pair predicted to pass within the DCPA
// threshold inside the horizon, as of query time now, ordered by TCPA.
// Vessels silent beyond Stale are excluded.
func (d *Detector) Encounters(now time.Time) []Encounter {
	p := d.params
	// Project live vessels to a shared local plane; dead-reckon each to
	// the query time so projections start from a common instant.
	var ref geo.Point
	var states []planar
	first := true
	for mmsi, k := range d.vessels {
		if !k.haveVel || now.Sub(k.at) > p.Stale {
			continue
		}
		if first {
			ref = k.pos
			first = false
		}
		ms := geo.KnotsToMetersPerSecond(k.vel.SpeedKnots)
		brng := k.vel.HeadingDeg * math.Pi / 180
		pos := geo.Destination(k.pos, k.vel.HeadingDeg, ms*now.Sub(k.at).Seconds())
		x, y := planarOffset(ref, pos)
		states = append(states, planar{
			mmsi: mmsi,
			x:    x, y: y,
			vx: ms * math.Sin(brng), vy: ms * math.Cos(brng),
			speedKn: k.vel.SpeedKnots,
		})
	}
	// Spatial hash: two vessels can only meet within the horizon if they
	// are currently within reach = 2·maxSpeed·horizon + threshold.
	reach := 2*geo.KnotsToMetersPerSecond(p.MaxSpeedKnots)*p.Horizon.Seconds() + p.DistanceMeters
	cells := make(map[[2]int][]int)
	cellOf := func(x, y float64) [2]int {
		return [2]int{int(math.Floor(x / reach)), int(math.Floor(y / reach))}
	}
	for i, s := range states {
		c := cellOf(s.x, s.y)
		cells[c] = append(cells[c], i)
	}

	var out []Encounter
	seen := make(map[[2]uint32]bool)
	for i, s := range states {
		c := cellOf(s.x, s.y)
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range cells[[2]int{c[0] + dx, c[1] + dy}] {
					if j == i {
						continue
					}
					o := states[j]
					a, b := s.mmsi, o.mmsi
					if a > b {
						a, b = b, a
					}
					key := [2]uint32{a, b}
					if seen[key] {
						continue
					}
					seen[key] = true
					if enc, ok := cpa(s, o, p); ok {
						enc.A, enc.B = a, b
						enc.Where = planarToGeo(ref, enc.Where.Lon, enc.Where.Lat)
						out = append(out, enc)
					}
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TCPA != out[j].TCPA {
			return out[i].TCPA < out[j].TCPA
		}
		return out[i].A < out[j].A
	})
	return out
}

// cpa computes the closest point of approach of two planar states. The
// returned Encounter carries the CPA midpoint in plane coordinates in
// Where (converted by the caller). ok is false when the pair never
// comes within threshold inside the horizon.
func cpa(a, b planar, p Params) (Encounter, bool) {
	if a.speedKn < p.MinSpeedKnots && b.speedKn < p.MinSpeedKnots {
		return Encounter{}, false // both effectively moored or adrift
	}
	dx, dy := b.x-a.x, b.y-a.y
	dvx, dvy := b.vx-a.vx, b.vy-a.vy
	relSq := dvx*dvx + dvy*dvy
	if relSq < p.MinClosingMS*p.MinClosingMS {
		return Encounter{}, false // near-identical motion: no closing
	}

	tcpa := -(dx*dvx + dy*dvy) / relSq
	if tcpa < 0 {
		tcpa = 0 // already diverging: closest approach is now
	}
	if tcpa > p.Horizon.Seconds() {
		return Encounter{}, false
	}
	cx, cy := dx+dvx*tcpa, dy+dvy*tcpa
	dcpa := math.Hypot(cx, cy)
	if dcpa > p.DistanceMeters {
		return Encounter{}, false
	}
	// CPA midpoint in plane coordinates, smuggled through Where.
	ax, ay := a.x+a.vx*tcpa, a.y+a.vy*tcpa
	bx, by := b.x+b.vx*tcpa, b.y+b.vy*tcpa
	return Encounter{
		TCPA:  time.Duration(tcpa * float64(time.Second)),
		DCPA:  dcpa,
		Where: geo.Point{Lon: (ax + bx) / 2, Lat: (ay + by) / 2},
	}, true
}

// planarOffset returns p's offset from ref in meters east (x) and
// north (y).
func planarOffset(ref, p geo.Point) (x, y float64) {
	const mPerDegLat = math.Pi * geo.EarthRadiusMeters / 180
	y = (p.Lat - ref.Lat) * mPerDegLat
	x = (p.Lon - ref.Lon) * mPerDegLat * math.Cos(ref.Lat*math.Pi/180)
	return x, y
}

// planarToGeo converts plane meters back to coordinates.
func planarToGeo(ref geo.Point, x, y float64) geo.Point {
	const mPerDegLat = math.Pi * geo.EarthRadiusMeters / 180
	return geo.Point{
		Lon: ref.Lon + x/(mPerDegLat*math.Cos(ref.Lat*math.Pi/180)),
		Lat: ref.Lat + y/mPerDegLat,
	}
}
