// Package collision implements the online collision detection the
// paper cites as a beneficiary of trajectory compression (§1:
// "reducing latency of online collision detection") and the purpose
// AIS exists for ("AIS is intended to assist vessel crews in collision
// avoidance"). The detector keeps one kinematic state per vessel and,
// on demand, finds pairs on conflicting courses via closest point of
// approach (CPA): time-to-CPA and distance-at-CPA computed from the
// current velocity vectors, with the shared geo.PointIndex proximity
// grid so only plausibly reachable pairs are examined.
//
// The detector can be fed either raw AIS fixes (Observe) or the
// tracker's compressed critical-point state (ObservePoint) — the
// latter is the paper's motivating use: screening the whole fleet from
// the synopsis instead of the full stream. Queries are deterministic:
// given the same observation sequence, Encounters returns byte-equal
// results regardless of map iteration or fix arrival order.
package collision

import (
	"math"
	"slices"
	"sort"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

// Params configures the detector.
type Params struct {
	// DistanceMeters is the DCPA threshold: pairs predicted to pass
	// closer than this raise an encounter (default 500 m).
	DistanceMeters float64
	// Horizon bounds the look-ahead: encounters with TCPA beyond it are
	// ignored (default 20 minutes).
	Horizon time.Duration
	// MaxSpeedKnots bounds plausible vessel speed for the spatial
	// pruning radius (default 40 knots).
	MaxSpeedKnots float64
	// Stale drops vessels not heard from for this long (default 15
	// minutes): their projected positions are meaningless. Stale state
	// is evicted (not merely skipped) on Encounters, so a long-running
	// detector's memory tracks the live fleet, not every vessel ever
	// seen.
	Stale time.Duration
	// MinSpeedKnots: at least one vessel of a pair must move this fast
	// (default 3 knots) — moored neighbors sharing a quay are not
	// collision traffic.
	MinSpeedKnots float64
	// MinClosingMS is the minimum relative speed in m/s (default 0.5):
	// pairs in near-identical motion (a loitering group, ships berthed
	// side by side) never alarm.
	MinClosingMS float64
}

// withDefaults fills unset fields.
func (p Params) withDefaults() Params {
	if p.DistanceMeters <= 0 {
		p.DistanceMeters = 500
	}
	if p.Horizon <= 0 {
		p.Horizon = 20 * time.Minute
	}
	if p.MaxSpeedKnots <= 0 {
		p.MaxSpeedKnots = 40
	}
	if p.Stale <= 0 {
		p.Stale = 15 * time.Minute
	}
	if p.MinSpeedKnots <= 0 {
		p.MinSpeedKnots = 3
	}
	if p.MinClosingMS <= 0 {
		p.MinClosingMS = 0.5
	}
	return p
}

// Encounter is one predicted close approach between two vessels.
type Encounter struct {
	A, B  uint32        // MMSIs, A < B
	TCPA  time.Duration // time to closest point of approach from query time
	DCPA  float64       // distance at CPA in meters
	Where geo.Point     // midpoint of the two projected CPA positions
}

// Stats counts the detector's state management for health accounting.
type Stats struct {
	// Vessels is the current kinematic-state population.
	Vessels int
	// LateRejected counts observations that arrived out of order —
	// behind their vessel's clock — and were discarded instead of
	// rewinding the vessel to a stale position.
	LateRejected int
	// Evicted counts vessels whose state was dropped after going silent
	// beyond Stale.
	Evicted int
}

// Detector tracks vessel kinematics and answers encounter queries.
type Detector struct {
	params  Params
	vessels map[uint32]*kinematics

	lateRejected int
	evicted      int

	// Query scratch, reused across Encounters calls.
	idx    *geo.PointIndex
	states []planar
	cand   []int32
}

type kinematics struct {
	pos      geo.Point
	at       time.Time
	vel      geo.Velocity
	haveVel  bool
	prev     ais.Fix
	havePrev bool
}

// New returns an empty detector.
func New(params Params) *Detector {
	return &Detector{
		params:  params.withDefaults(),
		vessels: make(map[uint32]*kinematics),
	}
}

// Observe updates a vessel's kinematics with a cleaned fix. Fixes that
// do not advance their vessel's clock — late, reordered, or duplicated
// arrivals — are rejected and counted, never applied: overwriting with
// a stale position would rewind the vessel and poison the next
// velocity estimate.
func (d *Detector) Observe(f ais.Fix) {
	k := d.vessels[f.MMSI]
	if k == nil {
		k = &kinematics{}
		d.vessels[f.MMSI] = k
	}
	if k.havePrev {
		if !f.Time.After(k.prev.Time) {
			d.lateRejected++
			return
		}
		if v, ok := geo.VelocityBetween(k.prev.Pos, k.prev.Time, f.Pos, f.Time); ok {
			k.vel = v
			k.haveVel = true
		}
	}
	k.prev = f
	k.havePrev = true
	k.pos = f.Pos
	k.at = f.Time
}

// ObservePoint updates a vessel's kinematics directly from tracker
// state: a critical point already carries the instantaneous speed and
// heading at detection, so no two-fix velocity estimation is needed.
// This is how the per-slide analytics tier feeds the detector from the
// compressed synopsis. Out-of-order points are rejected like Observe's
// late fixes.
func (d *Detector) ObservePoint(mmsi uint32, pos geo.Point, at time.Time, speedKn, headingDeg float64) {
	k := d.vessels[mmsi]
	if k == nil {
		k = &kinematics{}
		d.vessels[mmsi] = k
	}
	if k.havePrev && !at.After(k.prev.Time) {
		d.lateRejected++
		return
	}
	k.prev = ais.Fix{MMSI: mmsi, Pos: pos, Time: at}
	k.havePrev = true
	k.pos = pos
	k.at = at
	k.vel = geo.Velocity{SpeedKnots: speedKn, HeadingDeg: headingDeg}
	k.haveVel = true
}

// VesselCount returns the number of vessels with kinematic state.
func (d *Detector) VesselCount() int { return len(d.vessels) }

// Stats snapshots the detector's state accounting.
func (d *Detector) Stats() Stats {
	return Stats{
		Vessels:      len(d.vessels),
		LateRejected: d.lateRejected,
		Evicted:      d.evicted,
	}
}

// planar is a vessel state projected onto a local plane: meters east/
// north of a reference point, with velocity in meters/second.
type planar struct {
	mmsi    uint32
	geo     geo.Point // dead-reckoned position at query time
	x, y    float64
	vx, vy  float64
	speedKn float64
}

// Encounters returns every pair predicted to pass within the DCPA
// threshold inside the horizon, as of query time now, ordered by TCPA.
// Vessels silent beyond Stale are evicted. The result is a pure
// function of the accepted observation history and now: vessels are
// processed in MMSI order and pair candidates come from the shared
// proximity index's deterministic scan, so arrival order, map layout
// and prior queries never change the output.
func (d *Detector) Encounters(now time.Time) []Encounter {
	p := d.params
	// Evict vessels silent beyond Stale instead of skipping them: in a
	// long-running server the map would otherwise grow with every vessel
	// ever heard, live or gone.
	for mmsi, k := range d.vessels {
		if now.Sub(k.at) > p.Stale {
			delete(d.vessels, mmsi)
			d.evicted++
		}
	}
	// Project live vessels to a shared local plane in MMSI order; the
	// reference point (the lowest live MMSI's position) and every
	// floating-point rounding after it are then arrival-order
	// independent. Dead-reckon each vessel to the query time so
	// projections start from a common instant.
	mmsis := make([]uint32, 0, len(d.vessels))
	for mmsi, k := range d.vessels {
		if k.haveVel {
			mmsis = append(mmsis, mmsi)
		}
	}
	slices.Sort(mmsis)
	var ref geo.Point
	states := d.states[:0]
	for i, mmsi := range mmsis {
		k := d.vessels[mmsi]
		if i == 0 {
			ref = k.pos
		}
		ms := geo.KnotsToMetersPerSecond(k.vel.SpeedKnots)
		brng := k.vel.HeadingDeg * math.Pi / 180
		pos := geo.Destination(k.pos, k.vel.HeadingDeg, ms*now.Sub(k.at).Seconds())
		x, y := planarOffset(ref, pos)
		states = append(states, planar{
			mmsi: mmsi,
			geo:  pos,
			x:    x, y: y,
			vx: ms * math.Sin(brng), vy: ms * math.Cos(brng),
			speedKn: k.vel.SpeedKnots,
		})
	}
	d.states = states
	// Two vessels can only meet within the horizon if they are currently
	// within reach = 2·maxSpeed·horizon + threshold. Publish the
	// dead-reckoned positions into the shared proximity index and pull
	// each vessel's candidates from it — the same index machinery the
	// area lookups and the rendezvous screen use, instead of a private
	// spatial hash.
	reach := 2*geo.KnotsToMetersPerSecond(p.MaxSpeedKnots)*p.Horizon.Seconds() + p.DistanceMeters
	if d.idx == nil {
		d.idx = geo.NewPointIndex(reach / 111_000)
	}
	d.idx.Reset()
	for i, s := range states {
		d.idx.Add(int32(i), s.geo)
	}

	var out []Encounter
	for i := range states {
		s := &states[i]
		d.cand = d.idx.CandidatesAppend(d.cand[:0], s.geo, reach)
		for _, jj := range d.cand {
			j := int(jj)
			if j == i {
				continue
			}
			if j < i {
				// Canonically the pair is handled by the lower index's
				// query. The per-row longitude pad makes the scan slightly
				// asymmetric at the reach boundary, so re-handle the pair
				// here only if j's own query could not see i.
				if pairSeenFrom(d.idx, d.states, j, i, reach) {
					continue
				}
			}
			a, b := states[min(i, j)], states[max(i, j)]
			if enc, ok := cpa(a, b, p); ok {
				enc.A, enc.B = a.mmsi, b.mmsi
				enc.Where = planarToGeo(ref, enc.Where.Lon, enc.Where.Lat)
				out = append(out, enc)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TCPA != out[j].TCPA {
			return out[i].TCPA < out[j].TCPA
		}
		return out[i].A < out[j].A
	})
	return out
}

// pairSeenFrom reports whether querying the index from states[from]
// yields states[to] as a candidate.
func pairSeenFrom(idx *geo.PointIndex, states []planar, from, to int, reach float64) bool {
	for _, c := range idx.CandidatesAppend(nil, states[from].geo, reach) {
		if int(c) == to {
			return true
		}
	}
	return false
}

// cpa computes the closest point of approach of two planar states. The
// returned Encounter carries the CPA midpoint in plane coordinates in
// Where (converted by the caller). ok is false when the pair never
// comes within threshold inside the horizon.
func cpa(a, b planar, p Params) (Encounter, bool) {
	if a.speedKn < p.MinSpeedKnots && b.speedKn < p.MinSpeedKnots {
		return Encounter{}, false // both effectively moored or adrift
	}
	dx, dy := b.x-a.x, b.y-a.y
	dvx, dvy := b.vx-a.vx, b.vy-a.vy
	relSq := dvx*dvx + dvy*dvy
	if relSq < p.MinClosingMS*p.MinClosingMS {
		return Encounter{}, false // near-identical motion: no closing
	}

	tcpa := -(dx*dvx + dy*dvy) / relSq
	if tcpa < 0 {
		tcpa = 0 // already diverging: closest approach is now
	}
	if tcpa > p.Horizon.Seconds() {
		return Encounter{}, false
	}
	cx, cy := dx+dvx*tcpa, dy+dvy*tcpa
	dcpa := math.Hypot(cx, cy)
	if dcpa > p.DistanceMeters {
		return Encounter{}, false
	}
	// CPA midpoint in plane coordinates, smuggled through Where.
	ax, ay := a.x+a.vx*tcpa, a.y+a.vy*tcpa
	bx, by := b.x+b.vx*tcpa, b.y+b.vy*tcpa
	return Encounter{
		TCPA:  time.Duration(tcpa * float64(time.Second)),
		DCPA:  dcpa,
		Where: geo.Point{Lon: (ax + bx) / 2, Lat: (ay + by) / 2},
	}, true
}

// planarOffset returns p's offset from ref in meters east (x) and
// north (y).
func planarOffset(ref, p geo.Point) (x, y float64) {
	const mPerDegLat = math.Pi * geo.EarthRadiusMeters / 180
	y = (p.Lat - ref.Lat) * mPerDegLat
	x = (p.Lon - ref.Lon) * mPerDegLat * math.Cos(ref.Lat*math.Pi/180)
	return x, y
}

// planarToGeo converts plane meters back to coordinates.
func planarToGeo(ref geo.Point, x, y float64) geo.Point {
	const mPerDegLat = math.Pi * geo.EarthRadiusMeters / 180
	return geo.Point{
		Lon: ref.Lon + x/(mPerDegLat*math.Cos(ref.Lat*math.Pi/180)),
		Lat: ref.Lat + y/mPerDegLat,
	}
}
