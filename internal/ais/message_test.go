package ais

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// roundTrip encodes a report to sentences and decodes it back.
func roundTrip(t *testing.T, r *PositionReport) *PositionReport {
	t.Helper()
	lines, err := EncodeSentences(r, "A", 1)
	if err != nil {
		t.Fatalf("EncodeSentences: %v", err)
	}
	asm := NewAssembler()
	var msg any
	for _, line := range lines {
		s, err := ParseSentence(line)
		if err != nil {
			t.Fatalf("ParseSentence(%q): %v", line, err)
		}
		msg, err = asm.Push(s)
		if err != nil {
			t.Fatalf("Push: %v", err)
		}
	}
	got, ok := msg.(*PositionReport)
	if !ok {
		t.Fatalf("decoded %T, want *PositionReport", msg)
	}
	return got
}

func TestPositionReportRoundTripClassA(t *testing.T) {
	r := &PositionReport{
		Type:       TypePositionA,
		MMSI:       237123456,
		NavStatus:  NavUnderWayEngine,
		RateOfTurn: -12,
		SpeedKnots: 14.3,
		Accuracy:   true,
		Lon:        23.64671,
		Lat:        37.94215,
		CourseDeg:  187.4,
		HeadingDeg: 185,
		UTCSecond:  42,
	}
	got := roundTrip(t, r)
	if got.Type != r.Type || got.MMSI != r.MMSI || got.NavStatus != r.NavStatus ||
		got.RateOfTurn != r.RateOfTurn || got.Accuracy != r.Accuracy ||
		got.HeadingDeg != r.HeadingDeg || got.UTCSecond != r.UTCSecond {
		t.Errorf("integer fields differ: got %+v", got)
	}
	if math.Abs(got.SpeedKnots-r.SpeedKnots) > 0.05 {
		t.Errorf("speed %v, want %v", got.SpeedKnots, r.SpeedKnots)
	}
	if math.Abs(got.CourseDeg-r.CourseDeg) > 0.05 {
		t.Errorf("course %v, want %v", got.CourseDeg, r.CourseDeg)
	}
	// 1/10000 arc-minute is ~0.18 m, i.e. ~1.7e-6 degrees.
	if math.Abs(got.Lon-r.Lon) > 2e-6 || math.Abs(got.Lat-r.Lat) > 2e-6 {
		t.Errorf("position (%v, %v), want (%v, %v)", got.Lon, got.Lat, r.Lon, r.Lat)
	}
}

func TestPositionReportRoundTripAllTypes(t *testing.T) {
	for _, typ := range []int{1, 2, 3, 18, 19} {
		r := &PositionReport{
			Type:       typ,
			MMSI:       239000123,
			SpeedKnots: 8.7,
			Lon:        -25.5,
			Lat:        -36.25,
			CourseDeg:  271.3,
			HeadingDeg: 270,
			UTCSecond:  7,
		}
		if typ == 19 {
			r.ShipName = "AEGEAN QUEEN"
			r.ShipType = 70
		}
		got := roundTrip(t, r)
		if got.Type != typ || got.MMSI != r.MMSI {
			t.Errorf("type %d: got %+v", typ, got)
		}
		if math.Abs(got.Lon-r.Lon) > 2e-6 || math.Abs(got.Lat-r.Lat) > 2e-6 {
			t.Errorf("type %d position: (%v, %v)", typ, got.Lon, got.Lat)
		}
		if typ == 19 {
			if got.ShipName != r.ShipName {
				t.Errorf("ship name %q, want %q", got.ShipName, r.ShipName)
			}
			if got.ShipType != r.ShipType {
				t.Errorf("ship type %d, want %d", got.ShipType, r.ShipType)
			}
		}
	}
}

func TestPositionReportRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	types := []int{1, 2, 3, 18, 19}
	for trial := 0; trial < 500; trial++ {
		r := &PositionReport{
			Type:       types[rng.Intn(len(types))],
			MMSI:       uint32(rng.Intn(1 << 30)),
			SpeedKnots: float64(rng.Intn(1023)) / 10,
			Lon:        rng.Float64()*360 - 180,
			Lat:        rng.Float64()*180 - 90,
			CourseDeg:  float64(rng.Intn(3600)) / 10,
			HeadingDeg: rng.Intn(360),
			UTCSecond:  rng.Intn(60),
		}
		if r.Type <= 3 {
			r.NavStatus = rng.Intn(16)
			r.RateOfTurn = rng.Intn(256) - 128
		}
		got := roundTrip(t, r)
		if got.MMSI != r.MMSI {
			t.Fatalf("trial %d: MMSI %d, want %d", trial, got.MMSI, r.MMSI)
		}
		if math.Abs(got.Lon-r.Lon) > 2e-6 || math.Abs(got.Lat-r.Lat) > 2e-6 {
			t.Fatalf("trial %d: position error too large", trial)
		}
		if math.Abs(got.SpeedKnots-r.SpeedKnots) > 0.051 {
			t.Fatalf("trial %d: speed %v, want %v", trial, got.SpeedKnots, r.SpeedKnots)
		}
	}
}

func TestDecodeKnownVector(t *testing.T) {
	// A widely published AIVDM test vector (type 1, MMSI 371798000,
	// off Vancouver; see the GPSd AIVDM documentation).
	line := "!AIVDM,1,1,,A,15RTgt0PAso;90TKcjM8h6g208CQ,0*4A"
	s, err := ParseSentence(line)
	if err != nil {
		t.Fatalf("ParseSentence: %v", err)
	}
	msg, err := NewAssembler().Push(s)
	if err != nil {
		t.Fatalf("Push: %v", err)
	}
	r, ok := msg.(*PositionReport)
	if !ok {
		t.Fatalf("decoded %T, want *PositionReport", msg)
	}
	if r.Type != 1 {
		t.Errorf("type = %d, want 1", r.Type)
	}
	if r.MMSI != 371798000 {
		t.Errorf("MMSI = %d, want 371798000", r.MMSI)
	}
	if math.Abs(r.Lon-(-123.3954)) > 0.001 {
		t.Errorf("lon = %v, want ~-123.395", r.Lon)
	}
	if math.Abs(r.Lat-48.3816) > 0.001 {
		t.Errorf("lat = %v, want ~48.382", r.Lat)
	}
	if math.Abs(r.SpeedKnots-12.3) > 0.05 {
		t.Errorf("speed = %v, want 12.3", r.SpeedKnots)
	}
}

func TestEncodeRejectsUnsupportedType(t *testing.T) {
	r := &PositionReport{Type: 5}
	if _, err := EncodeSentences(r, "A", 1); !errors.Is(err, ErrUnsupportedType) {
		t.Errorf("err = %v, want ErrUnsupportedType", err)
	}
}

func TestDecodeRejectsUnsupportedType(t *testing.T) {
	b := newBitBuffer(168)
	b.setUint(0, 6, 4) // type 4 = base station report, not handled
	payload, fill := b.armor()
	_, err := decodeArmored(payload, fill)
	if !errors.Is(err, ErrUnsupportedType) {
		t.Errorf("err = %v, want ErrUnsupportedType", err)
	}
}

func TestDecodeRejectsTruncated(t *testing.T) {
	b := newBitBuffer(100) // type 1 needs 168 bits
	b.setUint(0, 6, 1)
	payload, fill := b.armor()
	_, err := decodeArmored(payload, fill)
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestHasPosition(t *testing.T) {
	ok := &PositionReport{Lon: 23.5, Lat: 37.9}
	if !ok.HasPosition() {
		t.Error("valid position reported unavailable")
	}
	sentinel := &PositionReport{Lon: LonNotAvailable, Lat: LatNotAvailable}
	if sentinel.HasPosition() {
		t.Error("sentinel position reported available")
	}
}

func TestType19MultiSentence(t *testing.T) {
	// Type 19 is 312 bits = 52 armored chars; force fragmentation by
	// checking the encoder splits when payload exceeds the limit. The
	// standard payload fits in one sentence, so craft one directly.
	r := &PositionReport{
		Type: TypePositionBExtended, MMSI: 237999111,
		Lon: 24.1, Lat: 38.3, ShipName: "TEST RUNNER", ShipType: 30,
	}
	lines, err := EncodeSentences(r, "B", 3)
	if err != nil {
		t.Fatal(err)
	}
	// 312 bits -> 52 chars: single sentence under the 60-char limit.
	if len(lines) != 1 {
		t.Fatalf("type 19 encoded to %d sentences, want 1", len(lines))
	}
	if !strings.HasPrefix(lines[0], "!AIVDM,1,1,") {
		t.Errorf("unexpected sentence header: %s", lines[0])
	}
}
