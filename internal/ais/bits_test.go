package ais

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestBitBufferUintRoundTrip(t *testing.T) {
	f := func(raw uint64, widthSeed uint8, startSeed uint8) bool {
		width := int(widthSeed%64) + 1
		start := int(startSeed % 32)
		b := newBitBuffer(start + width + 7)
		v := raw
		if width < 64 {
			v &= (1 << uint(width)) - 1
		}
		b.setUint(start, width, v)
		return b.uint(start, width) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitBufferIntRoundTrip(t *testing.T) {
	f := func(raw int64, widthSeed uint8) bool {
		width := int(widthSeed%61) + 2 // 2..62 bits; 63 would overflow the span computation
		b := newBitBuffer(width)
		// Fold raw into the representable range.
		min := int64(-1) << uint(width-1)
		max := -min - 1
		v := raw
		if v < min || v > max {
			span := max - min + 1
			v = min + ((raw%span)+span)%span
		}
		b.setInt(0, width, v)
		return b.int(0, width) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitBufferIntNegativeValues(t *testing.T) {
	b := newBitBuffer(8)
	for _, v := range []int64{-128, -1, 0, 1, 127} {
		b.setInt(0, 8, v)
		if got := b.int(0, 8); got != v {
			t.Errorf("int8 roundtrip of %d = %d", v, got)
		}
	}
}

func TestSixBitStringRoundTrip(t *testing.T) {
	cases := []string{"", "AEGEAN QUEEN", "MV-42", "0123456789", "A"}
	for _, s := range cases {
		b := newBitBuffer(20 * 6)
		b.setString(0, 20, s)
		if got := b.string(0, 20); got != s {
			t.Errorf("string roundtrip %q = %q", s, got)
		}
	}
}

func TestSixBitStringTruncates(t *testing.T) {
	long := "THIS VESSEL NAME IS FAR TOO LONG FOR AIS"
	b := newBitBuffer(20 * 6)
	b.setString(0, 20, long)
	// The 20-char prefix ends in a blank, which the decoder trims along
	// with '@' padding.
	want := strings.TrimRight(long[:20], " ")
	if got := b.string(0, 20); got != want {
		t.Errorf("truncated = %q, want %q", got, want)
	}
}

func TestArmorDearmorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(400)
		b := newBitBuffer(n)
		for i := range b.bits {
			b.bits[i] = byte(rng.Intn(2))
		}
		payload, fill := b.armor()
		back, err := dearmor(payload, fill)
		if err != nil {
			t.Fatalf("dearmor: %v", err)
		}
		if back.len() != n {
			t.Fatalf("length %d, want %d", back.len(), n)
		}
		for i := 0; i < n; i++ {
			if back.bits[i] != b.bits[i] {
				t.Fatalf("bit %d differs (n=%d)", i, n)
			}
		}
	}
}

func TestDearmorRejectsBadInput(t *testing.T) {
	if _, err := dearmor("zz", 0); err == nil {
		t.Error("invalid armor characters accepted")
	}
	if _, err := dearmor("00", 6); err == nil {
		t.Error("fill bits 6 accepted")
	}
	if _, err := dearmor("0", 6); err == nil {
		t.Error("fill bits exceeding payload accepted")
	}
}

func TestArmorAlphabetValid(t *testing.T) {
	// Every 6-bit value must round-trip through the armor alphabet.
	for v := byte(0); v < 64; v++ {
		c := armorChar(v)
		got, ok := dearmorChar(c)
		if !ok || got != v {
			t.Errorf("armor char for %d: %q round-trips to %d, ok=%v", v, c, got, ok)
		}
	}
}
