package ais

import (
	"errors"
	"strings"
	"testing"
)

func TestParseSentenceChecksum(t *testing.T) {
	good := "!AIVDM,1,1,,A,15RTgt0PAso;90TKcjM8h6g208CQ,0*4A"
	if _, err := ParseSentence(good); err != nil {
		t.Fatalf("valid sentence rejected: %v", err)
	}
	// Flip one payload character: checksum must fail.
	bad := strings.Replace(good, "15RTgt0", "15RTgt1", 1)
	if _, err := ParseSentence(bad); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("corrupted sentence: err = %v, want ErrBadChecksum", err)
	}
}

func TestParseSentenceMalformed(t *testing.T) {
	cases := []string{
		"",
		"AIVDM,1,1,,A,xyz,0*00", // missing '!'
		"!AIVDM,1,1,,A,xyz,0",   // missing checksum
		"!AIVDM,1,1,,A,0*XY",    // bad hex
		"!AIVDM,1,1,A,0*26",     // too few fields
		"!AIVDM,0,1,,A,0,0*55",  // fragment count 0
		"!AIVDM,1,2,,A,0,0*56",  // fragment num > count
		"!AIVDM,1,1,,A,0,9*5C",  // fill bits out of range
	}
	for _, line := range cases {
		if _, err := ParseSentence(line); err == nil {
			t.Errorf("ParseSentence(%q) accepted malformed input", line)
		}
	}
}

func TestParseSentenceNotAIVDM(t *testing.T) {
	// A GPS sentence with a correct checksum for its body.
	body := "GPGGA,1,1,,A,x,0"
	line := "!" + body + "*"
	sum := nmeaChecksum(body)
	line = line + hexByte(sum)
	if _, err := ParseSentence(line); !errors.Is(err, ErrNotAIVDM) {
		t.Errorf("err = %v, want ErrNotAIVDM", err)
	}
}

func hexByte(b byte) string {
	const hexdigits = "0123456789ABCDEF"
	return string([]byte{hexdigits[b>>4], hexdigits[b&0xF]})
}

func TestFormatParseRoundTrip(t *testing.T) {
	s := Sentence{
		Talker: "AIVDM", FragmentCount: 2, FragmentNum: 1,
		MessageID: "3", Channel: "B", Payload: "55NBjP01mtGIL@CW", FillBits: 0,
	}
	line := FormatSentence(s)
	got, err := ParseSentence(line)
	if err != nil {
		t.Fatalf("ParseSentence(%q): %v", line, err)
	}
	if got != s {
		t.Errorf("round trip = %+v, want %+v", got, s)
	}
}

func TestAssemblerInterleavedGroups(t *testing.T) {
	// Two interleaved 2-fragment groups on different message IDs.
	rA := &PositionReport{Type: 1, MMSI: 111111111, Lon: 20, Lat: 35}
	rB := &PositionReport{Type: 1, MMSI: 222222222, Lon: 21, Lat: 36}
	// Force multi-fragment by hand: split each encoded payload in two.
	mk := func(r *PositionReport, id string) []Sentence {
		bits, err := r.encode()
		if err != nil {
			t.Fatal(err)
		}
		payload, fill := bits.armor()
		half := len(payload) / 2
		return []Sentence{
			{Talker: "AIVDM", FragmentCount: 2, FragmentNum: 1, MessageID: id, Channel: "A", Payload: payload[:half]},
			{Talker: "AIVDM", FragmentCount: 2, FragmentNum: 2, MessageID: id, Channel: "A", Payload: payload[half:], FillBits: fill},
		}
	}
	fragsA := mk(rA, "1")
	fragsB := mk(rB, "2")

	asm := NewAssembler()
	if rep, err := asm.Push(fragsA[0]); err != nil || rep != nil {
		t.Fatalf("A1: rep=%v err=%v", rep, err)
	}
	if rep, err := asm.Push(fragsB[0]); err != nil || rep != nil {
		t.Fatalf("B1: rep=%v err=%v", rep, err)
	}
	if asm.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", asm.Pending())
	}
	msgA, err := asm.Push(fragsA[1])
	repA, okA := msgA.(*PositionReport)
	if err != nil || !okA || repA.MMSI != 111111111 {
		t.Fatalf("A2: rep=%+v err=%v", msgA, err)
	}
	msgB, err := asm.Push(fragsB[1])
	repB, okB := msgB.(*PositionReport)
	if err != nil || !okB || repB.MMSI != 222222222 {
		t.Fatalf("B2: rep=%+v err=%v", msgB, err)
	}
	if asm.Pending() != 0 {
		t.Errorf("Pending = %d, want 0", asm.Pending())
	}
}

func TestAssemblerOutOfSequence(t *testing.T) {
	asm := NewAssembler()
	s := Sentence{Talker: "AIVDM", FragmentCount: 2, FragmentNum: 2, MessageID: "5", Channel: "A", Payload: "000"}
	if _, err := asm.Push(s); !errors.Is(err, ErrFragmentLost) {
		t.Errorf("err = %v, want ErrFragmentLost", err)
	}
	if asm.Pending() != 0 {
		t.Errorf("broken group retained")
	}
}
