package ais_test

import (
	"fmt"
	"strings"

	"repro/internal/ais"
)

// ExampleScanner shows the Data Scanner cleaning a mixed feed: a CSV
// tuple, a valid AIVDM sentence, and a corrupted line that is dropped.
func ExampleScanner() {
	feed := strings.Join([]string{
		"237000001,23.646700,37.942100,1243814400",
		"1243814455 !AIVDM,1,1,,A,15RTgt0PAso;90TKcjM8h6g208CQ,0*4A",
		"1243814460 !AIVDM,1,1,,A,garbage,0*00",
	}, "\n")

	sc := ais.NewScanner(strings.NewReader(feed))
	for sc.Scan() {
		fmt.Println(sc.Fix())
	}
	fmt.Println("dropped:", sc.Stats().Dropped())
	// Output:
	// 237000001@2009-06-01T00:00:00Z (23.646700, 37.942100)
	// 371798000@2009-06-01T00:00:55Z (-123.395383, 48.381633)
	// dropped: 1
}
