package ais

import (
	"fmt"
	"math"
)

// TypeStaticVoyage is the AIS message carrying static ship data and
// voyage particulars. The paper consults it for trip semantics and
// rejects it (§3.2): "AIS messages sometimes include information
// regarding the destination of sailing vessels. Unfortunately ... this
// voyage-related information is often missing or error-prone, mainly
// because it is updated manually by the crew" — which is why trip
// destinations are derived from long-term stops inside port polygons
// instead. The codec is still implemented so the scanner can surface
// the declared (unreliable) values, and because the 424-bit payload is
// the one message of the supported set that genuinely needs
// multi-sentence AIVDM fragmentation.
const TypeStaticVoyage = 5

// lenStaticVoyage is the payload length in bits.
const lenStaticVoyage = 424

// StaticVoyage is the decoded content of a type 5 message.
type StaticVoyage struct {
	MMSI        uint32
	IMO         uint32 // IMO ship identification number
	CallSign    string // up to 7 six-bit characters
	ShipName    string // up to 20 six-bit characters
	ShipType    int
	DimToBowM   int // distance from reference point to bow
	DimToSternM int
	DraughtM    float64 // maximum present static draught, 0.1 m units
	// ETA as declared by the crew (month 0 and day 0 mean unavailable).
	ETAMonth, ETADay, ETAHour, ETAMinute int
	// Destination as typed by the crew — the unreliable field.
	Destination string
}

// String renders the voyage particulars.
func (v *StaticVoyage) String() string {
	dest := v.Destination
	if dest == "" {
		dest = "(none)"
	}
	return fmt.Sprintf("%d %q → %s (draught %.1f m)", v.MMSI, v.ShipName, dest, v.DraughtM)
}

// encode packs the voyage report into its 424-bit payload.
func (v *StaticVoyage) encode() *bitBuffer {
	b := newBitBuffer(lenStaticVoyage)
	b.setUint(0, 6, TypeStaticVoyage)
	// Bits 6–7: repeat indicator, zero.
	b.setUint(8, 30, uint64(v.MMSI))
	// Bits 38–39: AIS version, zero.
	b.setUint(40, 30, uint64(v.IMO))
	b.setString(70, 7, v.CallSign)
	b.setString(112, 20, v.ShipName)
	b.setUint(232, 8, uint64(v.ShipType))
	b.setUint(240, 9, uint64(v.DimToBowM))
	b.setUint(249, 9, uint64(v.DimToSternM))
	// Bits 258–269: port/starboard dimensions, zero.
	// Bits 270–273: EPFD type, zero.
	b.setUint(274, 4, uint64(v.ETAMonth))
	b.setUint(278, 5, uint64(v.ETADay))
	b.setUint(283, 5, uint64(v.ETAHour))
	b.setUint(288, 6, uint64(v.ETAMinute))
	b.setUint(294, 8, uint64(math.Round(v.DraughtM*10)))
	b.setString(302, 20, v.Destination)
	// Bits 422–423: DTE and spare, zero.
	return b
}

// EncodeVoyageSentences encodes the voyage report as AIVDM wire lines.
// At 424 bits the payload always spans two sentences.
func EncodeVoyageSentences(v *StaticVoyage, channel string, messageID int) []string {
	payload, fill := v.encode().armor()
	n := (len(payload) + maxPayloadChars - 1) / maxPayloadChars
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lo := i * maxPayloadChars
		hi := lo + maxPayloadChars
		if hi > len(payload) {
			hi = len(payload)
		}
		s := Sentence{
			Talker:        "AIVDM",
			FragmentCount: n,
			FragmentNum:   i + 1,
			Channel:       channel,
			Payload:       payload[lo:hi],
		}
		if i == n-1 {
			s.FillBits = fill
		}
		if n > 1 {
			s.MessageID = fmt.Sprintf("%d", messageID%10)
		}
		lines = append(lines, FormatSentence(s))
	}
	return lines
}

// decodeStaticVoyage unpacks a 424-bit type 5 payload.
func decodeStaticVoyage(b *bitBuffer) (*StaticVoyage, error) {
	if b.len() < lenStaticVoyage {
		return nil, fmt.Errorf("%w: type 5 needs %d bits, got %d", ErrTruncated, lenStaticVoyage, b.len())
	}
	return &StaticVoyage{
		MMSI:        uint32(b.uint(8, 30)),
		IMO:         uint32(b.uint(40, 30)),
		CallSign:    b.string(70, 7),
		ShipName:    b.string(112, 20),
		ShipType:    int(b.uint(232, 8)),
		DimToBowM:   int(b.uint(240, 9)),
		DimToSternM: int(b.uint(249, 9)),
		ETAMonth:    int(b.uint(274, 4)),
		ETADay:      int(b.uint(278, 5)),
		ETAHour:     int(b.uint(283, 5)),
		ETAMinute:   int(b.uint(288, 6)),
		DraughtM:    float64(b.uint(294, 8)) / 10,
		Destination: b.string(302, 20),
	}, nil
}
