package ais

import (
	"time"

	"repro/internal/geo"
)

// FixBatch is the columnar (struct-of-arrays) form of a slide's worth of
// positional fixes: parallel MMSI, longitude, latitude and UnixNano
// timestamp columns backed by one reusable arena. The hot tracking path
// scans these contiguous columns instead of chasing 48-byte Fix structs,
// and the arena is recycled across slides (Reset keeps capacity), so a
// warm pipeline admits a slide without allocating.
//
// Timestamps are int64 Unix nanoseconds in UTC. The conversion round
// trips exactly for instants between the years 1678 and 2262 — far wider
// than any AIS archive — so a Fix rebuilt with At is structurally
// identical to the row-oriented original.
type FixBatch struct {
	MMSI   []uint32
	Lon    []float64
	Lat    []float64
	TimeNS []int64
}

// Len returns the number of fixes in the batch.
func (b *FixBatch) Len() int { return len(b.MMSI) }

// Reset empties the batch, keeping the column capacity for reuse.
func (b *FixBatch) Reset() {
	b.MMSI = b.MMSI[:0]
	b.Lon = b.Lon[:0]
	b.Lat = b.Lat[:0]
	b.TimeNS = b.TimeNS[:0]
}

// Grow ensures capacity for at least n additional fixes.
func (b *FixBatch) Grow(n int) {
	if need := len(b.MMSI) + n; need > cap(b.MMSI) {
		b.MMSI = append(make([]uint32, 0, need), b.MMSI...)
		b.Lon = append(make([]float64, 0, need), b.Lon...)
		b.Lat = append(make([]float64, 0, need), b.Lat...)
		b.TimeNS = append(make([]int64, 0, need), b.TimeNS...)
	}
}

// Append adds a row-oriented fix to the columns.
func (b *FixBatch) Append(f Fix) {
	b.AppendCols(f.MMSI, f.Pos.Lon, f.Pos.Lat, f.Time.UnixNano())
}

// AppendCols adds one fix given directly as column values.
func (b *FixBatch) AppendCols(mmsi uint32, lon, lat float64, tns int64) {
	b.MMSI = append(b.MMSI, mmsi)
	b.Lon = append(b.Lon, lon)
	b.Lat = append(b.Lat, lat)
	b.TimeNS = append(b.TimeNS, tns)
}

// At reconstructs the i-th fix in row form.
func (b *FixBatch) At(i int) Fix {
	return Fix{
		MMSI: b.MMSI[i],
		Pos:  geo.Point{Lon: b.Lon[i], Lat: b.Lat[i]},
		Time: time.Unix(0, b.TimeNS[i]).UTC(),
	}
}

// AppendRows appends every fix in row form to dst and returns it, for
// consumers that need the legacy row layout (e.g. journaling).
func (b *FixBatch) AppendRows(dst []Fix) []Fix {
	for i := range b.MMSI {
		dst = append(dst, b.At(i))
	}
	return dst
}
