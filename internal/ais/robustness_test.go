package ais

import (
	"math/rand"
	"strings"
	"testing"
)

// TestScannerSurvivesGarbage feeds the scanner adversarial byte soup:
// it must never panic, never emit an invalid fix, and account every
// line.
func TestScannerSurvivesGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var sb strings.Builder
	lines := 0
	for i := 0; i < 2000; i++ {
		lines++
		switch i % 7 {
		case 0: // random binary-ish junk
			n := rng.Intn(120)
			buf := make([]byte, n)
			for j := range buf {
				buf[j] = byte(32 + rng.Intn(94))
			}
			sb.Write(buf)
		case 1: // truncated NMEA
			sb.WriteString("1243814400 !AIVDM,1,1,,A,15RTgt0")
		case 2: // valid-looking CSV with overflowing numbers
			sb.WriteString("99999999999999999999,999,999,99999999999999999999")
		case 3: // CSV with NaN-ish fields
			sb.WriteString("237000001,NaN,+Inf,1243814400")
		case 4: // empty-ish
			sb.WriteString("   ")
		case 5: // a checksum of the wrong length
			sb.WriteString("1243814400 !AIVDM,1,1,,A,0,0*F")
		case 6: // stray comma storm
			sb.WriteString(strings.Repeat(",", rng.Intn(30)))
		}
		sb.WriteByte('\n')
	}
	sc := NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
		f := sc.Fix()
		if !f.Pos.Valid() {
			t.Fatalf("scanner emitted an invalid position: %v", f)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("scanner err: %v", err)
	}
	st := sc.Stats()
	if st.Lines != lines {
		t.Errorf("lines accounted = %d, want %d", st.Lines, lines)
	}
	// Some of the mod-3 NaN lines could in principle parse as floats;
	// nothing else may have survived.
	if st.Fixes > lines/7+1 {
		t.Errorf("garbage produced %d fixes", st.Fixes)
	}
}

// TestScannerNaNCoordinatesRejected pins the NaN/Inf case: ParseFloat
// accepts them, Point.Valid must not.
func TestScannerNaNCoordinatesRejected(t *testing.T) {
	input := strings.Join([]string{
		"237000001,NaN,37.0,1243814400",
		"237000001,23.5,+Inf,1243814400",
		"237000001,-Inf,-Inf,1243814400",
	}, "\n")
	sc := NewScanner(strings.NewReader(input))
	for sc.Scan() {
		t.Fatalf("non-finite coordinates emitted: %v", sc.Fix())
	}
	if sc.Stats().NoPosition != 3 {
		t.Errorf("stats = %+v, want 3 NoPosition drops", sc.Stats())
	}
}

// TestDearmorNeverPanics hammers the payload decoder with random
// strings.
func TestDearmorNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(80)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = byte(rng.Intn(256))
		}
		fill := rng.Intn(8) - 1
		if bits, err := dearmor(string(buf), fill); err == nil {
			// Any successfully decoded payload must also survive the
			// report decoder (which may still reject it cleanly).
			_, _ = decodePositionReport(bits)
		}
	}
}

// TestParseSentenceNeverPanics hammers the NMEA parser.
func TestParseSentenceNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	alphabet := "!AIVDM,0123456789*ABCDEF\r\n \x00ü"
	for i := 0; i < 5000; i++ {
		n := rng.Intn(90)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = alphabet[rng.Intn(len(alphabet))]
		}
		_, _ = ParseSentence(string(buf))
	}
}
