package ais

import (
	"errors"
	"fmt"
	"math"
)

// Message type numbers handled by the system (paper §2: "we consider AIS
// messages of certain types (1, 2, 3, 18, 19) and extract position
// reports").
const (
	TypePositionA         = 1  // Class A position report (scheduled)
	TypePositionAAssigned = 2  // Class A position report (assigned schedule)
	TypePositionAResponse = 3  // Class A position report (interrogation response)
	TypePositionB         = 18 // Class B standard position report
	TypePositionBExtended = 19 // Class B extended position report
)

// Navigation status values (types 1–3).
const (
	NavUnderWayEngine = 0
	NavAtAnchor       = 1
	NavNotUnderWay    = 2
	NavMoored         = 5
	NavUnderWaySail   = 8
	NavNotDefined     = 15
)

// Sentinels defined by ITU-R M.1371 for "not available" fields.
const (
	LonNotAvailable     = 181.0
	LatNotAvailable     = 91.0
	SpeedNotAvailable   = 102.3 // SOG raw value 1023
	CourseNotAvailable  = 360.0 // COG raw value 3600
	HeadingNotAvailable = 511
)

// PositionReport is the decoded content of an AIS position report of
// type 1, 2, 3, 18 or 19. Fields that a given type lacks are left at
// their zero or not-available values.
type PositionReport struct {
	Type       int     // message type, one of the Type* constants
	Repeat     int     // repeat indicator
	MMSI       uint32  // Maritime Mobile Service Identity (30 bits)
	NavStatus  int     // navigation status (types 1–3 only)
	RateOfTurn int     // raw ROT field, -128..127 (types 1–3 only)
	SpeedKnots float64 // speed over ground, 0.1-knot resolution
	Accuracy   bool    // position accuracy flag (<10 m when true)
	Lon        float64 // longitude, 1/10000-minute resolution
	Lat        float64 // latitude, 1/10000-minute resolution
	CourseDeg  float64 // course over ground, 0.1-degree resolution
	HeadingDeg int     // true heading in degrees, 511 = not available
	UTCSecond  int     // UTC second of the fix, 0–59 (60+ = unavailable)
	ShipName   string  // type 19 only
	ShipType   int     // type 19 only
}

// Errors returned by Decode.
var (
	ErrUnsupportedType = errors.New("ais: unsupported message type")
	ErrTruncated       = errors.New("ais: truncated payload")
)

// Lengths in bits of the supported payload types.
const (
	lenPositionA    = 168
	lenPositionB    = 168
	lenPositionBExt = 312
)

// HasPosition reports whether the report carries an available position
// fix (i.e. neither coordinate is the not-available sentinel) within the
// legal WGS-84 ranges.
func (r *PositionReport) HasPosition() bool {
	return r.Lon >= -180 && r.Lon <= 180 && r.Lat >= -90 && r.Lat <= 90
}

// encodeLon converts a longitude to the 28-bit 1/10000-minute raw field.
func encodeLon(lon float64) int64 { return int64(math.Round(lon * 600000)) }

// encodeLat converts a latitude to the 27-bit 1/10000-minute raw field.
func encodeLat(lat float64) int64 { return int64(math.Round(lat * 600000)) }

// Encode packs the report into its binary payload bits. Only the
// supported message types are accepted.
func (r *PositionReport) encode() (*bitBuffer, error) {
	switch r.Type {
	case TypePositionA, TypePositionAAssigned, TypePositionAResponse:
		return r.encodeClassA(), nil
	case TypePositionB:
		return r.encodeClassB(false), nil
	case TypePositionBExtended:
		return r.encodeClassB(true), nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnsupportedType, r.Type)
	}
}

func (r *PositionReport) encodeClassA() *bitBuffer {
	b := newBitBuffer(lenPositionA)
	b.setUint(0, 6, uint64(r.Type))
	b.setUint(6, 2, uint64(r.Repeat))
	b.setUint(8, 30, uint64(r.MMSI))
	b.setUint(38, 4, uint64(r.NavStatus))
	b.setInt(42, 8, int64(r.RateOfTurn))
	b.setUint(50, 10, uint64(math.Round(r.SpeedKnots*10)))
	if r.Accuracy {
		b.setUint(60, 1, 1)
	}
	b.setInt(61, 28, encodeLon(r.Lon))
	b.setInt(89, 27, encodeLat(r.Lat))
	b.setUint(116, 12, uint64(math.Round(r.CourseDeg*10)))
	b.setUint(128, 9, uint64(r.HeadingDeg))
	b.setUint(137, 6, uint64(r.UTCSecond))
	// Bits 143–167: maneuver indicator, spare, RAIM, radio status — zero.
	return b
}

func (r *PositionReport) encodeClassB(extended bool) *bitBuffer {
	n := lenPositionB
	if extended {
		n = lenPositionBExt
	}
	b := newBitBuffer(n)
	b.setUint(0, 6, uint64(r.Type))
	b.setUint(6, 2, uint64(r.Repeat))
	b.setUint(8, 30, uint64(r.MMSI))
	// Bits 38–45 reserved.
	b.setUint(46, 10, uint64(math.Round(r.SpeedKnots*10)))
	if r.Accuracy {
		b.setUint(56, 1, 1)
	}
	b.setInt(57, 28, encodeLon(r.Lon))
	b.setInt(85, 27, encodeLat(r.Lat))
	b.setUint(112, 12, uint64(math.Round(r.CourseDeg*10)))
	b.setUint(124, 9, uint64(r.HeadingDeg))
	b.setUint(133, 6, uint64(r.UTCSecond))
	if extended {
		// Bits 139–142 reserved.
		b.setString(143, 20, r.ShipName)
		b.setUint(263, 8, uint64(r.ShipType))
		// Bits 271–311: dimensions, EPFD, flags — zero.
	}
	return b
}

// decodePositionReport unpacks a payload bit buffer into a
// PositionReport. It validates only structure (type and length), not
// positional plausibility; the Scanner applies semantic filtering.
func decodePositionReport(b *bitBuffer) (*PositionReport, error) {
	if b.len() < 6 {
		return nil, ErrTruncated
	}
	msgType := int(b.uint(0, 6))
	switch msgType {
	case TypePositionA, TypePositionAAssigned, TypePositionAResponse:
		if b.len() < lenPositionA {
			return nil, fmt.Errorf("%w: type %d needs %d bits, got %d", ErrTruncated, msgType, lenPositionA, b.len())
		}
		return &PositionReport{
			Type:       msgType,
			Repeat:     int(b.uint(6, 2)),
			MMSI:       uint32(b.uint(8, 30)),
			NavStatus:  int(b.uint(38, 4)),
			RateOfTurn: int(b.int(42, 8)),
			SpeedKnots: float64(b.uint(50, 10)) / 10,
			Accuracy:   b.uint(60, 1) == 1,
			Lon:        float64(b.int(61, 28)) / 600000,
			Lat:        float64(b.int(89, 27)) / 600000,
			CourseDeg:  float64(b.uint(116, 12)) / 10,
			HeadingDeg: int(b.uint(128, 9)),
			UTCSecond:  int(b.uint(137, 6)),
		}, nil
	case TypePositionB, TypePositionBExtended:
		need := lenPositionB
		if msgType == TypePositionBExtended {
			need = lenPositionBExt
		}
		if b.len() < need {
			return nil, fmt.Errorf("%w: type %d needs %d bits, got %d", ErrTruncated, msgType, need, b.len())
		}
		r := &PositionReport{
			Type:       msgType,
			Repeat:     int(b.uint(6, 2)),
			MMSI:       uint32(b.uint(8, 30)),
			SpeedKnots: float64(b.uint(46, 10)) / 10,
			Accuracy:   b.uint(56, 1) == 1,
			Lon:        float64(b.int(57, 28)) / 600000,
			Lat:        float64(b.int(85, 27)) / 600000,
			CourseDeg:  float64(b.uint(112, 12)) / 10,
			HeadingDeg: int(b.uint(124, 9)),
			UTCSecond:  int(b.uint(133, 6)),
		}
		if msgType == TypePositionBExtended {
			r.ShipName = b.string(143, 20)
			r.ShipType = int(b.uint(263, 8))
		}
		return r, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnsupportedType, msgType)
	}
}
