package ais

import (
	"strings"
	"testing"
)

// FuzzScanner hammers the Data Scanner with arbitrary byte streams: it
// must never panic, never emit an invalid fix, and its stats must
// account every consumed line exactly once
// (Lines == Fixes + VoyageReports + Dropped + Blank + Fragments).
func FuzzScanner(f *testing.F) {
	// Seeds drawn from the robustness-test corpus: every input shape the
	// deterministic tests already exercise, plus valid traffic so the
	// fuzzer mutates from both sides of the accept/reject boundary.
	seeds := []string{
		"1243814400 !AIVDM,1,1,,A,15RTgt0PAso;90TKcjM8h6g208CQ,0*4A",
		"237000001,23.5,37.5,1243814400",
		"1243814400 !AIVDM,1,1,,A,15RTgt0", // truncated NMEA
		"99999999999999999999,999,999,99999999999999999999",
		"237000001,NaN,+Inf,1243814400",
		"   ",
		"# comment line",
		"1243814400 !AIVDM,1,1,,A,0,0*F", // checksum of the wrong length
		strings.Repeat(",", 17),
		"1243814400 !AIVDM,2,1,3,B,55P5TL01VIaAL@7WKO@mBplU@<PDhh000000001S;AJ::4A80?4i@E53,0*3E",
		"1243814400 !AIVDM,2,2,3,B,1@0000000000000,2*55",
		"1243814400 !AIVDM,2,1,7,A,5000Htl000000000000<518T<u8pTuwF0000001S0p==40004hC`12,0*2B",
		"not a line at all \x00\xff",
		"1243814400 !BSVDM,1,1,,A,15RTgt0PAso;90TKcjM8h6g208CQ,0*4A",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
		f.Add([]byte(s + "\n" + s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := NewScanner(strings.NewReader(string(data)))
		for sc.Scan() {
			if fix := sc.Fix(); !fix.Pos.Valid() {
				t.Fatalf("scanner emitted an invalid position: %v", fix)
			}
		}
		if err := sc.Err(); err != nil {
			// bufio's token-too-long is the only acceptable read error on
			// an in-memory stream.
			t.Logf("scan err: %v", err)
		}
		if st := sc.Stats(); !st.Reconciles() {
			t.Fatalf("stats do not reconcile: %+v (fixes+voyage+dropped+blank+fragments = %d, lines = %d)",
				st, st.Fixes+st.VoyageReports+st.Dropped()+st.Blank+st.Fragments, st.Lines)
		}
	})
}
