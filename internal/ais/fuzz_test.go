package ais

import (
	"strings"
	"testing"
)

// FuzzScanner hammers the Data Scanner with arbitrary byte streams: it
// must never panic, never emit an invalid fix, and its stats must
// account every consumed line exactly once
// (Lines == Fixes + VoyageReports + Dropped + Blank + Fragments).
func FuzzScanner(f *testing.F) {
	// Seeds drawn from the robustness-test corpus: every input shape the
	// deterministic tests already exercise, plus valid traffic so the
	// fuzzer mutates from both sides of the accept/reject boundary.
	seeds := []string{
		"1243814400 !AIVDM,1,1,,A,15RTgt0PAso;90TKcjM8h6g208CQ,0*4A",
		"237000001,23.5,37.5,1243814400",
		"1243814400 !AIVDM,1,1,,A,15RTgt0", // truncated NMEA
		"99999999999999999999,999,999,99999999999999999999",
		"237000001,NaN,+Inf,1243814400",
		"   ",
		"# comment line",
		"1243814400 !AIVDM,1,1,,A,0,0*F", // checksum of the wrong length
		strings.Repeat(",", 17),
		"1243814400 !AIVDM,2,1,3,B,55P5TL01VIaAL@7WKO@mBplU@<PDhh000000001S;AJ::4A80?4i@E53,0*3E",
		"1243814400 !AIVDM,2,2,3,B,1@0000000000000,2*55",
		"1243814400 !AIVDM,2,1,7,A,5000Htl000000000000<518T<u8pTuwF0000001S0p==40004hC`12,0*2B",
		"not a line at all \x00\xff",
		"1243814400 !BSVDM,1,1,,A,15RTgt0PAso;90TKcjM8h6g208CQ,0*4A",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
		f.Add([]byte(s + "\n" + s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		// Differential run: the zero-copy fast path (default) against the
		// legacy string-based decoder held up as the oracle. Both must
		// emit identical fixes in identical order, reconcile their stats,
		// and agree on every drop counter.
		sc := NewScanner(strings.NewReader(string(data)))
		oracle := NewScanner(strings.NewReader(string(data)))
		oracle.SetLegacyDecode(true)
		for sc.Scan() {
			fix := sc.Fix()
			if !fix.Pos.Valid() {
				t.Fatalf("scanner emitted an invalid position: %v", fix)
			}
			if !oracle.Scan() {
				t.Fatalf("zero-copy path emitted %v, legacy oracle ended", fix)
			}
			if want := oracle.Fix(); fix != want {
				t.Fatalf("decoders diverge:\n zero-copy: %+v\n legacy:    %+v", fix, want)
			}
		}
		if oracle.Scan() {
			t.Fatalf("legacy oracle emitted %v past the zero-copy path's end", oracle.Fix())
		}
		if err := sc.Err(); err != nil {
			// bufio's token-too-long is the only acceptable read error on
			// an in-memory stream.
			t.Logf("scan err: %v", err)
		}
		st, ost := sc.Stats(), oracle.Stats()
		if st != ost {
			t.Fatalf("stats diverge:\n zero-copy: %+v\n legacy:    %+v", st, ost)
		}
		if !st.Reconciles() {
			t.Fatalf("stats do not reconcile: %+v (fixes+voyage+dropped+blank+fragments = %d, lines = %d)",
				st, st.Fixes+st.VoyageReports+st.Dropped()+st.Blank+st.Fragments, st.Lines)
		}
		if len(sc.Voyages()) != len(oracle.Voyages()) {
			t.Fatalf("voyage maps diverge: %d zero-copy, %d legacy", len(sc.Voyages()), len(oracle.Voyages()))
		}
		for mmsi, v := range sc.Voyages() {
			if ov, ok := oracle.Voyages()[mmsi]; !ok || ov != v {
				t.Fatalf("voyage for %d diverges:\n zero-copy: %+v\n legacy:    %+v", mmsi, v, ov)
			}
		}
	})
}
