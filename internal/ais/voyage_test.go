package ais

import (
	"errors"
	"strings"
	"testing"
)

func sampleVoyage() *StaticVoyage {
	return &StaticVoyage{
		MMSI:        237123456,
		IMO:         9074729,
		CallSign:    "SV2BZ",
		ShipName:    "BLUE STAR PAROS",
		ShipType:    60, // passenger
		DimToBowM:   90,
		DimToSternM: 35,
		DraughtM:    5.6,
		ETAMonth:    6, ETADay: 2, ETAHour: 14, ETAMinute: 30,
		Destination: "PIRAEUS",
	}
}

func TestStaticVoyageSpansTwoSentences(t *testing.T) {
	// 424 bits = 71 armored characters: the one supported message that
	// genuinely exercises multi-sentence AIVDM.
	lines := EncodeVoyageSentences(sampleVoyage(), "A", 2)
	if len(lines) != 2 {
		t.Fatalf("type 5 encoded to %d sentences, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "!AIVDM,2,1,2,") {
		t.Errorf("fragment 1 header: %s", lines[0])
	}
	if !strings.HasPrefix(lines[1], "!AIVDM,2,2,2,") {
		t.Errorf("fragment 2 header: %s", lines[1])
	}
}

func TestStaticVoyageRoundTrip(t *testing.T) {
	want := sampleVoyage()
	asm := NewAssembler()
	var msg any
	var err error
	for _, line := range EncodeVoyageSentences(want, "B", 7) {
		s, perr := ParseSentence(line)
		if perr != nil {
			t.Fatal(perr)
		}
		msg, err = asm.Push(s)
		if err != nil {
			t.Fatal(err)
		}
	}
	got, ok := msg.(*StaticVoyage)
	if !ok {
		t.Fatalf("decoded %T, want *StaticVoyage", msg)
	}
	if got.MMSI != want.MMSI || got.IMO != want.IMO ||
		got.CallSign != want.CallSign || got.ShipName != want.ShipName ||
		got.ShipType != want.ShipType || got.Destination != want.Destination {
		t.Errorf("round trip = %+v", got)
	}
	if got.DraughtM != want.DraughtM {
		t.Errorf("draught = %v, want %v", got.DraughtM, want.DraughtM)
	}
	if got.ETAMonth != 6 || got.ETADay != 2 || got.ETAHour != 14 || got.ETAMinute != 30 {
		t.Errorf("ETA = %d-%d %d:%d", got.ETAMonth, got.ETADay, got.ETAHour, got.ETAMinute)
	}
	if got.DimToBowM != 90 || got.DimToSternM != 35 {
		t.Errorf("dimensions = %d/%d", got.DimToBowM, got.DimToSternM)
	}
}

func TestStaticVoyageTruncatedRejected(t *testing.T) {
	b := newBitBuffer(200)
	b.setUint(0, 6, TypeStaticVoyage)
	payload, fill := b.armor()
	_, err := decodeArmored(payload, fill)
	if !errors.Is(err, ErrTruncated) {
		t.Errorf("err = %v, want ErrTruncated", err)
	}
}

func TestScannerCollectsVoyageReports(t *testing.T) {
	// A position fix interleaved with a two-fragment voyage report: the
	// scanner emits the fix and records the voyage particulars.
	pos := &PositionReport{Type: 1, MMSI: 237123456, Lon: 23.7, Lat: 37.9}
	posLines, err := EncodeSentences(pos, "A", 0)
	if err != nil {
		t.Fatal(err)
	}
	voyLines := EncodeVoyageSentences(sampleVoyage(), "A", 3)

	input := "1243814400 " + voyLines[0] + "\n" +
		"1243814400 " + voyLines[1] + "\n" +
		"1243814410 " + posLines[0] + "\n"
	sc := NewScanner(strings.NewReader(input))
	n := 0
	for sc.Scan() {
		n++
	}
	if n != 1 {
		t.Fatalf("fixes = %d, want 1", n)
	}
	if sc.Stats().VoyageReports != 1 {
		t.Fatalf("voyage reports = %d, want 1", sc.Stats().VoyageReports)
	}
	v, ok := sc.Voyages()[237123456]
	if !ok {
		t.Fatal("voyage not recorded for the vessel")
	}
	if v.Destination != "PIRAEUS" || v.ShipName != "BLUE STAR PAROS" {
		t.Errorf("voyage = %+v", v)
	}
	if v.String() == "" {
		t.Error("empty String()")
	}
}

func TestScannerVoyageOverwrittenByNewer(t *testing.T) {
	first := sampleVoyage()
	second := sampleVoyage()
	second.Destination = "RHODES" // crew updated the plan
	var sb strings.Builder
	for _, line := range EncodeVoyageSentences(first, "A", 1) {
		sb.WriteString("1243814400 " + line + "\n")
	}
	for _, line := range EncodeVoyageSentences(second, "A", 2) {
		sb.WriteString("1243818000 " + line + "\n")
	}
	sc := NewScanner(strings.NewReader(sb.String()))
	for sc.Scan() {
	}
	if got := sc.Voyages()[237123456].Destination; got != "RHODES" {
		t.Errorf("destination = %q, want the newer report", got)
	}
}
