// Package ais implements the subset of the Automatic Identification
// System (ITU-R M.1371) that the maritime surveillance system consumes:
// position reports of message types 1, 2, 3 (Class A) and 18, 19
// (Class B), their binary payload encoding, the NMEA 0183 AIVDM sentence
// layer with 6-bit ASCII armoring and checksums, and a Scanner that
// plays the role of the paper's Data Scanner (§2): it decodes each AIS
// message, extracts the ⟨MMSI, Lon, Lat, τ⟩ tuple, and discards
// messages corrupted in transmission.
package ais

import "fmt"

// bitBuffer is a big-endian bit vector used to pack and unpack AIS
// binary payloads. AIS fields are MSB-first within the payload.
type bitBuffer struct {
	bits []byte // one byte per bit, values 0 or 1; simple and fast enough
}

// newBitBuffer returns a buffer pre-sized to n bits, all zero.
func newBitBuffer(n int) *bitBuffer {
	return &bitBuffer{bits: make([]byte, n)}
}

// len returns the number of bits in the buffer.
func (b *bitBuffer) len() int { return len(b.bits) }

// setUint writes an unsigned value into bits [start, start+width).
func (b *bitBuffer) setUint(start, width int, v uint64) {
	for i := 0; i < width; i++ {
		bit := (v >> uint(width-1-i)) & 1
		b.bits[start+i] = byte(bit)
	}
}

// uint reads an unsigned value from bits [start, start+width).
func (b *bitBuffer) uint(start, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		v = v<<1 | uint64(b.bits[start+i])
	}
	return v
}

// setInt writes a signed value in two's complement.
func (b *bitBuffer) setInt(start, width int, v int64) {
	b.setUint(start, width, uint64(v)&((1<<uint(width))-1))
}

// int reads a signed two's-complement value.
func (b *bitBuffer) int(start, width int) int64 {
	v := b.uint(start, width)
	if v&(1<<uint(width-1)) != 0 { // sign bit set
		v |= ^uint64(0) << uint(width)
	}
	return int64(v)
}

// sixBitText is the AIS 6-bit character set (ITU-R M.1371 table 44).
const sixBitText = "@ABCDEFGHIJKLMNOPQRSTUVWXYZ[\\]^_ !\"#$%&'()*+,-./0123456789:;<=>?"

// setString writes s as n 6-bit characters, padding with '@'.
func (b *bitBuffer) setString(start, chars int, s string) {
	for i := 0; i < chars; i++ {
		code := 0 // '@' padding
		if i < len(s) {
			c := s[i]
			for j := 0; j < 64; j++ {
				if sixBitText[j] == c {
					code = j
					break
				}
			}
		}
		b.setUint(start+i*6, 6, uint64(code))
	}
}

// string reads n 6-bit characters, trimming trailing '@' padding and
// trailing spaces.
func (b *bitBuffer) string(start, chars int) string {
	out := make([]byte, 0, chars)
	for i := 0; i < chars; i++ {
		code := b.uint(start+i*6, 6)
		out = append(out, sixBitText[code])
	}
	// Trim '@' padding and trailing blanks.
	end := len(out)
	for end > 0 && (out[end-1] == '@' || out[end-1] == ' ') {
		end--
	}
	return string(out[:end])
}

// armor encodes the bit buffer into the AIVDM 6-bit ASCII payload
// alphabet and returns the payload characters plus the number of fill
// bits appended to reach a multiple of six.
func (b *bitBuffer) armor() (payload string, fillBits int) {
	n := len(b.bits)
	rem := n % 6
	if rem != 0 {
		fillBits = 6 - rem
	}
	out := make([]byte, 0, (n+fillBits)/6)
	for i := 0; i < n; i += 6 {
		var v byte
		for j := 0; j < 6; j++ {
			v <<= 1
			if i+j < n {
				v |= b.bits[i+j]
			}
		}
		out = append(out, armorChar(v))
	}
	return string(out), fillBits
}

// armorChar maps a 6-bit value to its AIVDM payload character.
func armorChar(v byte) byte {
	if v < 40 {
		return v + 48
	}
	return v + 56
}

// dearmorChar maps an AIVDM payload character back to its 6-bit value,
// reporting false for characters outside the alphabet.
func dearmorChar(c byte) (byte, bool) {
	switch {
	case c >= 48 && c <= 87: // '0'..'W'
		return c - 48, true
	case c >= 96 && c <= 119: // '`'..'w'
		return c - 56, true
	default:
		return 0, false
	}
}

// dearmor decodes an AIVDM payload string into a bit buffer, dropping
// the trailing fillBits.
func dearmor(payload string, fillBits int) (*bitBuffer, error) {
	if fillBits < 0 || fillBits > 5 {
		return nil, fmt.Errorf("ais: invalid fill bits %d", fillBits)
	}
	b := &bitBuffer{bits: make([]byte, 0, len(payload)*6)}
	for i := 0; i < len(payload); i++ {
		v, ok := dearmorChar(payload[i])
		if !ok {
			return nil, fmt.Errorf("ais: invalid payload character %q at offset %d", payload[i], i)
		}
		for j := 5; j >= 0; j-- {
			b.bits = append(b.bits, (v>>uint(j))&1)
		}
	}
	if fillBits > len(b.bits) {
		return nil, fmt.Errorf("ais: fill bits %d exceed payload length", fillBits)
	}
	b.bits = b.bits[:len(b.bits)-fillBits]
	return b, nil
}
