package ais

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
)

func TestScannerCSV(t *testing.T) {
	input := strings.Join([]string{
		"# comment line",
		"",
		"237000001,23.646700,37.942100,1243814400",
		"237000002,25.144200,35.338700,1243814460",
		"not,a,valid,line,at,all",
		"237000003,200.0,37.0,1243814520", // longitude out of range
	}, "\n")
	sc := NewScanner(strings.NewReader(input))

	var fixes []Fix
	for sc.Scan() {
		fixes = append(fixes, sc.Fix())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(fixes) != 2 {
		t.Fatalf("got %d fixes, want 2", len(fixes))
	}
	if fixes[0].MMSI != 237000001 || fixes[1].MMSI != 237000002 {
		t.Errorf("MMSIs = %d, %d", fixes[0].MMSI, fixes[1].MMSI)
	}
	if !fixes[0].Time.Equal(time.Unix(1243814400, 0)) {
		t.Errorf("time = %v", fixes[0].Time)
	}
	st := sc.Stats()
	if st.Malformed != 1 || st.NoPosition != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestScannerNMEA(t *testing.T) {
	r := &PositionReport{Type: 1, MMSI: 237555000, Lon: 24.9, Lat: 37.4, SpeedKnots: 11.5}
	lines, err := EncodeSentences(r, "A", 0)
	if err != nil {
		t.Fatal(err)
	}
	input := "1243814400 " + lines[0] + "\n" +
		"1243814455 " + lines[0] + "\n"
	sc := NewScanner(strings.NewReader(input))
	var n int
	for sc.Scan() {
		n++
		f := sc.Fix()
		if f.MMSI != 237555000 {
			t.Errorf("MMSI = %d", f.MMSI)
		}
	}
	if n != 2 {
		t.Errorf("fixes = %d, want 2", n)
	}
}

func TestScannerDropsBadChecksum(t *testing.T) {
	r := &PositionReport{Type: 1, MMSI: 237555000, Lon: 24.9, Lat: 37.4}
	lines, _ := EncodeSentences(r, "A", 0)
	corrupted := lines[0][:len(lines[0])-6] + "zzz*00"
	input := "1243814400 " + corrupted + "\n1243814401 " + lines[0] + "\n"
	sc := NewScanner(strings.NewReader(input))
	var n int
	for sc.Scan() {
		n++
	}
	if n != 1 {
		t.Errorf("fixes = %d, want 1", n)
	}
	if sc.Stats().Dropped() != 1 {
		t.Errorf("dropped = %d, want 1", sc.Stats().Dropped())
	}
}

func TestScannerMixedFormats(t *testing.T) {
	r := &PositionReport{Type: 18, MMSI: 237666000, Lon: 23.1, Lat: 37.8}
	lines, _ := EncodeSentences(r, "B", 0)
	input := "237000001,23.6467,37.9421,1243814400\n" +
		"1243814410 " + lines[0] + "\n"
	sc := NewScanner(strings.NewReader(input))
	var got []uint32
	for sc.Scan() {
		got = append(got, sc.Fix().MMSI)
	}
	if len(got) != 2 || got[0] != 237000001 || got[1] != 237666000 {
		t.Errorf("MMSIs = %v", got)
	}
}

func TestScannerSentinelPositionDropped(t *testing.T) {
	r := &PositionReport{Type: 1, MMSI: 237555000, Lon: LonNotAvailable, Lat: LatNotAvailable}
	lines, err := EncodeSentences(r, "A", 0)
	if err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(strings.NewReader("1243814400 " + lines[0] + "\n"))
	for sc.Scan() {
		t.Error("sentinel position emitted as a fix")
	}
	if sc.Stats().NoPosition != 1 {
		t.Errorf("stats = %+v", sc.Stats())
	}
}

func TestWriteFixCSVRoundTrip(t *testing.T) {
	f := Fix{MMSI: 237000009, Pos: geo.Point{Lon: 24.123456, Lat: 38.654321}, Time: time.Unix(1243814400, 0).UTC()}
	var sb strings.Builder
	if err := WriteFixCSV(&sb, f); err != nil {
		t.Fatal(err)
	}
	sc := NewScanner(strings.NewReader(sb.String()))
	if !sc.Scan() {
		t.Fatal("no fix scanned back")
	}
	got := sc.Fix()
	if got.MMSI != f.MMSI || !got.Time.Equal(f.Time) {
		t.Errorf("got %+v, want %+v", got, f)
	}
	if diff := math.Abs(got.Pos.Lon-f.Pos.Lon) + math.Abs(got.Pos.Lat-f.Pos.Lat); diff > 2e-6 {
		t.Errorf("position drift %v", diff)
	}
}

// BenchmarkScannerCSV measures Data Scanner throughput on the CSV
// format (the shape of the paper's dataset).
func BenchmarkScannerCSV(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 5000; i++ {
		fmt.Fprintf(&sb, "%d,%.6f,%.6f,%d\n", 237000000+i%500, 20.0+float64(i%800)/100,
			34.0+float64(i%600)/100, 1243814400+i)
	}
	input := sb.String()
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := NewScanner(strings.NewReader(input))
		for sc.Scan() {
		}
	}
}

// BenchmarkScannerNMEA measures the full AIVDM decode path.
func BenchmarkScannerNMEA(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		r := &PositionReport{
			Type: TypePositionA, MMSI: uint32(237000000 + i%500),
			Lon: 20.0 + float64(i%800)/100, Lat: 34.0 + float64(i%600)/100,
		}
		lines, err := EncodeSentences(r, "A", i)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(&sb, "%d %s\n", 1243814400+i, lines[0])
	}
	input := sb.String()
	b.SetBytes(int64(len(input)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := NewScanner(strings.NewReader(input))
		for sc.Scan() {
		}
	}
}
