package ais

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Sentence is one parsed NMEA 0183 AIVDM sentence. AIS payloads that do
// not fit in a single sentence (82-character NMEA limit) are fragmented;
// FragmentCount/FragmentNum/MessageID describe the grouping.
type Sentence struct {
	Talker        string // "AIVDM" or "AIVDO"
	FragmentCount int
	FragmentNum   int
	MessageID     string // sequential message ID for multi-sentence groups, may be empty
	Channel       string // radio channel, "A" or "B"
	Payload       string // 6-bit armored payload
	FillBits      int
}

// Errors from the NMEA layer.
var (
	ErrBadChecksum  = errors.New("ais: bad NMEA checksum")
	ErrMalformed    = errors.New("ais: malformed NMEA sentence")
	ErrNotAIVDM     = errors.New("ais: not an AIVDM/AIVDO sentence")
	ErrFragmentLost = errors.New("ais: incomplete multi-sentence group")
)

// maxPayloadChars is the maximum armored payload per sentence such that
// the whole sentence respects the 82-character NMEA line limit.
const maxPayloadChars = 60

// nmeaChecksum computes the XOR checksum over the sentence body (between
// '!' and '*', exclusive).
func nmeaChecksum(body string) byte {
	var sum byte
	for i := 0; i < len(body); i++ {
		sum ^= body[i]
	}
	return sum
}

// FormatSentence renders the sentence in wire format including the
// leading '!' and the checksum.
func FormatSentence(s Sentence) string {
	seq := s.MessageID
	body := fmt.Sprintf("%s,%d,%d,%s,%s,%s,%d",
		s.Talker, s.FragmentCount, s.FragmentNum, seq, s.Channel, s.Payload, s.FillBits)
	return fmt.Sprintf("!%s*%02X", body, nmeaChecksum(body))
}

// ParseSentence parses one AIVDM/AIVDO line (with or without trailing
// CR/LF) and validates its checksum.
func ParseSentence(line string) (Sentence, error) {
	line = strings.TrimRight(line, "\r\n")
	if len(line) == 0 || line[0] != '!' {
		return Sentence{}, fmt.Errorf("%w: missing '!' start", ErrMalformed)
	}
	star := strings.LastIndexByte(line, '*')
	if star < 0 || star+3 > len(line) {
		return Sentence{}, fmt.Errorf("%w: missing checksum", ErrMalformed)
	}
	body := line[1:star]
	wantSum, err := strconv.ParseUint(line[star+1:star+3], 16, 8)
	if err != nil {
		return Sentence{}, fmt.Errorf("%w: unparsable checksum %q", ErrMalformed, line[star+1:])
	}
	if nmeaChecksum(body) != byte(wantSum) {
		return Sentence{}, ErrBadChecksum
	}

	fields := strings.Split(body, ",")
	if len(fields) != 7 {
		return Sentence{}, fmt.Errorf("%w: %d fields, want 7", ErrMalformed, len(fields))
	}
	if fields[0] != "AIVDM" && fields[0] != "AIVDO" {
		return Sentence{}, fmt.Errorf("%w: talker %q", ErrNotAIVDM, fields[0])
	}
	fragCount, err := strconv.Atoi(fields[1])
	if err != nil || fragCount < 1 {
		return Sentence{}, fmt.Errorf("%w: fragment count %q", ErrMalformed, fields[1])
	}
	fragNum, err := strconv.Atoi(fields[2])
	if err != nil || fragNum < 1 || fragNum > fragCount {
		return Sentence{}, fmt.Errorf("%w: fragment number %q", ErrMalformed, fields[2])
	}
	fill, err := strconv.Atoi(fields[6])
	if err != nil || fill < 0 || fill > 5 {
		return Sentence{}, fmt.Errorf("%w: fill bits %q", ErrMalformed, fields[6])
	}
	return Sentence{
		Talker:        fields[0],
		FragmentCount: fragCount,
		FragmentNum:   fragNum,
		MessageID:     fields[3],
		Channel:       fields[4],
		Payload:       fields[5],
		FillBits:      fill,
	}, nil
}

// EncodeSentences encodes a position report into one or more AIVDM wire
// lines, fragmenting the armored payload when necessary. messageID is
// used to correlate fragments of multi-sentence messages.
func EncodeSentences(r *PositionReport, channel string, messageID int) ([]string, error) {
	bits, err := r.encode()
	if err != nil {
		return nil, err
	}
	payload, fill := bits.armor()

	n := (len(payload) + maxPayloadChars - 1) / maxPayloadChars
	if n == 0 {
		n = 1
	}
	lines := make([]string, 0, n)
	for i := 0; i < n; i++ {
		lo := i * maxPayloadChars
		hi := lo + maxPayloadChars
		if hi > len(payload) {
			hi = len(payload)
		}
		s := Sentence{
			Talker:        "AIVDM",
			FragmentCount: n,
			FragmentNum:   i + 1,
			Channel:       channel,
			Payload:       payload[lo:hi],
		}
		if i == n-1 {
			s.FillBits = fill
		}
		if n > 1 {
			s.MessageID = strconv.Itoa(messageID % 10)
		}
		lines = append(lines, FormatSentence(s))
	}
	return lines, nil
}

// Assembler reassembles multi-sentence AIVDM groups and decodes complete
// payloads into position reports. It tolerates interleaved groups on
// different (channel, messageID) keys, as real AIS receivers emit them.
type Assembler struct {
	partial map[string][]Sentence
}

// NewAssembler returns an empty assembler.
func NewAssembler() *Assembler {
	return &Assembler{partial: make(map[string][]Sentence)}
}

// Push feeds one parsed sentence. When the sentence completes a
// message, the decoded message — a *PositionReport or a *StaticVoyage —
// is returned; otherwise the message is nil. An error is returned for
// out-of-sequence fragments (the group is dropped) or payload decoding
// failures.
func (a *Assembler) Push(s Sentence) (any, error) {
	if s.FragmentCount == 1 {
		return decodeArmored(s.Payload, s.FillBits)
	}
	key := s.Channel + "/" + s.MessageID
	frags := a.partial[key]
	if s.FragmentNum != len(frags)+1 {
		delete(a.partial, key)
		return nil, fmt.Errorf("%w: got fragment %d/%d on %q, want %d",
			ErrFragmentLost, s.FragmentNum, s.FragmentCount, key, len(frags)+1)
	}
	frags = append(frags, s)
	if s.FragmentNum < s.FragmentCount {
		a.partial[key] = frags
		return nil, nil
	}
	delete(a.partial, key)
	var payload strings.Builder
	for _, f := range frags {
		payload.WriteString(f.Payload)
	}
	return decodeArmored(payload.String(), s.FillBits)
}

// Pending returns the number of incomplete multi-sentence groups held.
func (a *Assembler) Pending() int { return len(a.partial) }

// decodeArmored dearmors a payload and decodes the message it carries.
func decodeArmored(payload string, fillBits int) (any, error) {
	bits, err := dearmor(payload, fillBits)
	if err != nil {
		return nil, err
	}
	if bits.len() >= 6 && bits.uint(0, 6) == TypeStaticVoyage {
		return decodeStaticVoyage(bits)
	}
	return decodePositionReport(bits)
}
