package ais

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/geo"
)

// Fix is one cleaned positional tuple ⟨MMSI, Lon, Lat, τ⟩ — the unit of
// the positional stream that the rest of the system consumes (paper §2).
type Fix struct {
	MMSI uint32
	Pos  geo.Point
	Time time.Time
}

// String renders the fix for logs and exports.
func (f Fix) String() string {
	return fmt.Sprintf("%d@%s %s", f.MMSI, f.Time.UTC().Format(time.RFC3339), f.Pos)
}

// ScannerStats counts what the Data Scanner saw and why it dropped
// input. The paper notes that AIS data "is not noise-free; messages may
// be delayed, intermittent, or conflicting" and that the scanner cleans
// distortions such as bad checksums.
type ScannerStats struct {
	Lines         int // input lines consumed
	Fixes         int // cleaned fixes emitted
	BadChecksum   int // NMEA checksum failures
	Malformed     int // unparsable lines
	Unsupported   int // AIS types other than 1, 2, 3, 5, 18, 19
	NoPosition    int // reports with not-available coordinates
	FragmentLoss  int // broken multi-sentence groups
	VoyageReports int // type 5 static/voyage messages collected
	Blank         int // blank and '#'-comment lines
	Fragments     int // fragments consumed while awaiting the rest of a group
}

// Dropped returns the total number of dropped input lines.
func (s ScannerStats) Dropped() int {
	return s.BadChecksum + s.Malformed + s.Unsupported + s.NoPosition + s.FragmentLoss
}

// Reconciles reports whether every consumed line is accounted for by
// exactly one outcome counter — the Data Scanner's bookkeeping
// invariant, checked by the robustness and fuzz tests.
func (s ScannerStats) Reconciles() bool {
	return s.Lines == s.Fixes+s.VoyageReports+s.Dropped()+s.Blank+s.Fragments
}

// Add returns the element-wise sum of two snapshots. A resuming client
// that re-dials a feed restarts its scanner per connection; Add folds
// the finished connection's counters into the session total.
func (s ScannerStats) Add(o ScannerStats) ScannerStats {
	return ScannerStats{
		Lines:         s.Lines + o.Lines,
		Fixes:         s.Fixes + o.Fixes,
		BadChecksum:   s.BadChecksum + o.BadChecksum,
		Malformed:     s.Malformed + o.Malformed,
		Unsupported:   s.Unsupported + o.Unsupported,
		NoPosition:    s.NoPosition + o.NoPosition,
		FragmentLoss:  s.FragmentLoss + o.FragmentLoss,
		VoyageReports: s.VoyageReports + o.VoyageReports,
		Blank:         s.Blank + o.Blank,
		Fragments:     s.Fragments + o.Fragments,
	}
}

// Scanner implements the paper's Data Scanner: it reads a line-oriented
// AIS feed, decodes and validates each message, and emits an append-only
// stream of cleaned fixes. Two line formats are accepted and may be
// mixed:
//
//	<unix-seconds> !AIVDM,...        timestamped NMEA, as archived feeds store it
//	<mmsi>,<lon>,<lat>,<unix-seconds> plain CSV, the shape of the paper's dataset
//
// Lines starting with '#' and blank lines are skipped.
type Scanner struct {
	r       *bufio.Scanner
	asm     *Assembler
	stats   ScannerStats
	err     error
	fix     Fix
	voyages map[uint32]StaticVoyage
	legacy  bool
}

// NewScanner wraps the reader. Lines may be up to 1 MiB long.
func NewScanner(r io.Reader) *Scanner {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Scanner{r: sc, asm: NewAssembler(), voyages: make(map[uint32]StaticVoyage)}
}

// Voyages returns the latest static/voyage report collected per vessel.
// Trip semantics deliberately ignore the declared destinations (paper
// §3.2: manually entered, "often missing or error-prone"); they are
// surfaced for display and comparison only.
func (s *Scanner) Voyages() map[uint32]StaticVoyage { return s.voyages }

// SetLegacyDecode forces the allocating string-based decode path for
// every line instead of the zero-copy fast path. The two paths produce
// identical fixes and identical ScannerStats on every input; the
// differential fuzz test uses this switch to hold the legacy decoder up
// as the oracle.
func (s *Scanner) SetLegacyDecode(on bool) { s.legacy = on }

// Scan advances to the next cleaned fix. It returns false at end of
// input or on a read error (see Err); decoding errors only increment
// the drop counters.
//
// The default path decodes each line zero-copy out of the read buffer
// (see zerocopy.go); a warm scanner emits fixes without allocating.
func (s *Scanner) Scan() bool {
	for s.r.Scan() {
		s.stats.Lines++
		if s.legacy {
			line := strings.TrimSpace(s.r.Text())
			if line == "" || strings.HasPrefix(line, "#") {
				s.stats.Blank++
				continue
			}
			if fix, ok := s.consume(line); ok {
				s.fix = fix
				s.stats.Fixes++
				return true
			}
			continue
		}
		line := bytes.TrimSpace(s.r.Bytes())
		if len(line) == 0 || line[0] == '#' {
			s.stats.Blank++
			continue
		}
		if fix, ok := s.consumeBytes(line); ok {
			s.fix = fix
			s.stats.Fixes++
			return true
		}
	}
	s.err = s.r.Err()
	return false
}

// Fix returns the fix produced by the last successful Scan.
func (s *Scanner) Fix() Fix { return s.fix }

// Err returns the first read error encountered, if any.
func (s *Scanner) Err() error { return s.err }

// Stats returns a snapshot of the drop counters.
func (s *Scanner) Stats() ScannerStats { return s.stats }

// consume handles one non-empty line.
func (s *Scanner) consume(line string) (Fix, bool) {
	if i := strings.IndexByte(line, '!'); i >= 0 {
		return s.consumeNMEA(line[:i], line[i:])
	}
	return s.consumeCSV(line)
}

// consumeNMEA parses "<ts> !AIVDM..." lines.
func (s *Scanner) consumeNMEA(prefix, sentence string) (Fix, bool) {
	ts, err := strconv.ParseInt(strings.TrimSpace(prefix), 10, 64)
	if err != nil {
		s.stats.Malformed++
		return Fix{}, false
	}
	sent, err := ParseSentence(sentence)
	if err != nil {
		switch {
		case isErr(err, ErrBadChecksum):
			s.stats.BadChecksum++
		case isErr(err, ErrNotAIVDM):
			s.stats.Unsupported++
		default:
			s.stats.Malformed++
		}
		return Fix{}, false
	}
	msg, err := s.asm.Push(sent)
	if err != nil {
		switch {
		case isErr(err, ErrUnsupportedType):
			s.stats.Unsupported++
		case isErr(err, ErrFragmentLost):
			s.stats.FragmentLoss++
		default:
			s.stats.Malformed++
		}
		return Fix{}, false
	}
	switch report := msg.(type) {
	case nil:
		s.stats.Fragments++
		return Fix{}, false // awaiting more fragments
	case *StaticVoyage:
		s.stats.VoyageReports++
		s.voyages[report.MMSI] = *report
		return Fix{}, false
	case *PositionReport:
		if !report.HasPosition() {
			s.stats.NoPosition++
			return Fix{}, false
		}
		return Fix{
			MMSI: report.MMSI,
			Pos:  geo.Point{Lon: report.Lon, Lat: report.Lat},
			Time: time.Unix(ts, 0).UTC(),
		}, true
	default:
		s.stats.Malformed++
		return Fix{}, false
	}
}

// consumeCSV parses "mmsi,lon,lat,unix-seconds" lines.
func (s *Scanner) consumeCSV(line string) (Fix, bool) {
	parts := strings.Split(line, ",")
	if len(parts) != 4 {
		s.stats.Malformed++
		return Fix{}, false
	}
	mmsi, err1 := strconv.ParseUint(strings.TrimSpace(parts[0]), 10, 32)
	lon, err2 := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
	lat, err3 := strconv.ParseFloat(strings.TrimSpace(parts[2]), 64)
	ts, err4 := strconv.ParseInt(strings.TrimSpace(parts[3]), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		s.stats.Malformed++
		return Fix{}, false
	}
	p := geo.Point{Lon: lon, Lat: lat}
	if !p.Valid() {
		s.stats.NoPosition++
		return Fix{}, false
	}
	return Fix{MMSI: uint32(mmsi), Pos: p, Time: time.Unix(ts, 0).UTC()}, true
}

// isErr unwraps with errors.Is semantics; a tiny indirection to keep the
// switch above readable.
func isErr(err, target error) bool { return errors.Is(err, target) }

// WriteFixCSV renders a fix in the scanner's CSV input format.
func WriteFixCSV(w io.Writer, f Fix) error {
	_, err := fmt.Fprintf(w, "%d,%.6f,%.6f,%d\n", f.MMSI, f.Pos.Lon, f.Pos.Lat, f.Time.Unix())
	return err
}
