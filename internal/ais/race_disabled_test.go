//go:build !race

package ais

const raceEnabled = false
