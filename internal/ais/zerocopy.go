package ais

import (
	"bytes"
	"strconv"
	"time"
	"unsafe"

	"repro/internal/geo"
)

// Zero-copy decode fast path. The Scanner's hot loop reads lines as
// byte slices straight out of the bufio.Scanner's buffer and decodes
// single-fragment position reports by extracting the three payload
// fields a Fix needs — MMSI, longitude, latitude — directly from the
// 6-bit armored characters, with no intermediate string, bitBuffer or
// PositionReport allocation. The legacy string path (ParseSentence →
// Assembler → decodePositionReport) is retained verbatim: multi-sentence
// groups and type 5 voyage reports fall back to it, and the differential
// fuzz test uses it as the oracle (SetLegacyDecode).
//
// Every validation step below mirrors the legacy path's checks in the
// same order, so each input line lands on exactly the same ScannerStats
// counter and yields exactly the same Fix (or none) as the oracle.

// unsafeString views a byte slice as a string for the strconv parsers,
// which do not retain their argument. The slice must not be mutated
// while the string is in use; every use here is confined to one call.
func unsafeString(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return unsafe.String(&b[0], len(b))
}

// dearmorTable maps an armored payload character to its 6-bit value,
// with 0xFF marking characters outside the alphabet. It is the table
// form of dearmorChar.
var dearmorTable = func() (t [256]byte) {
	for i := range t {
		v, ok := dearmorChar(byte(i))
		if !ok {
			v = 0xFF
		}
		t[i] = v
	}
	return
}()

// payloadUint extracts an unsigned MSB-first bit field [start,
// start+width) from an armored payload, without dearmoring it into a
// buffer. The payload must already be validated (all characters in the
// alphabet, field within the bit length).
func payloadUint(payload []byte, start, width int) uint64 {
	var v uint64
	for i := start; i < start+width; i++ {
		c := dearmorTable[payload[i/6]]
		v = v<<1 | uint64((c>>(5-i%6))&1)
	}
	return v
}

// payloadInt extracts a signed two's-complement field.
func payloadInt(payload []byte, start, width int) int64 {
	v := payloadUint(payload, start, width)
	if v&(1<<uint(width-1)) != 0 {
		v |= ^uint64(0) << uint(width)
	}
	return int64(v)
}

// consumeBytes handles one non-empty, whitespace-trimmed line on the
// zero-copy path.
func (s *Scanner) consumeBytes(line []byte) (Fix, bool) {
	if i := bytes.IndexByte(line, '!'); i >= 0 {
		return s.consumeNMEABytes(line[:i], line[i:])
	}
	return s.consumeCSVBytes(line)
}

// consumeNMEABytes parses "<ts> !AIVDM..." lines without allocating.
// The validation sequence replicates ParseSentence + Assembler.Push +
// decodeArmored + decodePositionReport step for step.
func (s *Scanner) consumeNMEABytes(prefix, sentence []byte) (Fix, bool) {
	ts, err := strconv.ParseInt(unsafeString(bytes.TrimSpace(prefix)), 10, 64)
	if err != nil {
		s.stats.Malformed++
		return Fix{}, false
	}

	// ParseSentence structure checks. sentence[0] == '!' is guaranteed
	// by the IndexByte split; the caller already trimmed trailing CR/LF.
	star := bytes.LastIndexByte(sentence, '*')
	if star < 0 || star+3 > len(sentence) {
		s.stats.Malformed++ // missing checksum
		return Fix{}, false
	}
	body := sentence[1:star]
	wantSum, err := strconv.ParseUint(unsafeString(sentence[star+1:star+3]), 16, 8)
	if err != nil {
		s.stats.Malformed++ // unparsable checksum
		return Fix{}, false
	}
	var sum byte
	for _, c := range body {
		sum ^= c
	}
	if sum != byte(wantSum) {
		s.stats.BadChecksum++
		return Fix{}, false
	}

	// Split the body into its 7 comma-separated fields in place.
	var fields [7][]byte
	nf := 0
	rest := body
	for {
		j := bytes.IndexByte(rest, ',')
		if j < 0 {
			break
		}
		if nf == 7 {
			s.stats.Malformed++ // 8+ fields
			return Fix{}, false
		}
		fields[nf] = rest[:j]
		nf++
		rest = rest[j+1:]
	}
	if nf != 6 {
		s.stats.Malformed++ // field count != 7
		return Fix{}, false
	}
	fields[6] = rest

	talker := fields[0]
	if !bytes.Equal(talker, []byte("AIVDM")) && !bytes.Equal(talker, []byte("AIVDO")) {
		s.stats.Unsupported++ // ErrNotAIVDM
		return Fix{}, false
	}
	fragCount, err := strconv.Atoi(unsafeString(fields[1]))
	if err != nil || fragCount < 1 {
		s.stats.Malformed++
		return Fix{}, false
	}
	fragNum, err := strconv.Atoi(unsafeString(fields[2]))
	if err != nil || fragNum < 1 || fragNum > fragCount {
		s.stats.Malformed++
		return Fix{}, false
	}
	fill, err := strconv.Atoi(unsafeString(fields[6]))
	if err != nil || fill < 0 || fill > 5 {
		s.stats.Malformed++
		return Fix{}, false
	}

	payload := fields[5]
	if fragCount > 1 {
		// Multi-sentence group: rare, and the assembler must retain the
		// payload beyond this line's buffer — take the legacy path.
		return s.pushLegacy(ts, Sentence{
			Talker:        string(talker),
			FragmentCount: fragCount,
			FragmentNum:   fragNum,
			MessageID:     string(fields[3]),
			Channel:       string(fields[4]),
			Payload:       string(payload),
			FillBits:      fill,
		})
	}

	// decodeArmored: validate every payload character (dearmor rejects
	// the whole payload on any bad character) and establish the bit
	// length.
	for _, c := range payload {
		if dearmorTable[c] == 0xFF {
			s.stats.Malformed++ // invalid payload character
			return Fix{}, false
		}
	}
	bitLen := len(payload) * 6
	if fill > bitLen {
		s.stats.Malformed++ // fill bits exceed payload
		return Fix{}, false
	}
	bitLen -= fill

	if bitLen < 6 {
		s.stats.Malformed++ // ErrTruncated
		return Fix{}, false
	}
	msgType := int(dearmorTable[payload[0]])
	switch msgType {
	case TypeStaticVoyage:
		// Voyage report: decoded off the hot path (ship name, ETA, …).
		return s.pushLegacy(ts, Sentence{
			Talker:        string(talker),
			FragmentCount: fragCount,
			FragmentNum:   fragNum,
			MessageID:     string(fields[3]),
			Channel:       string(fields[4]),
			Payload:       string(payload),
			FillBits:      fill,
		})
	case TypePositionA, TypePositionAAssigned, TypePositionAResponse:
		if bitLen < lenPositionA {
			s.stats.Malformed++ // ErrTruncated
			return Fix{}, false
		}
		return s.finishFix(ts,
			uint32(payloadUint(payload, 8, 30)),
			float64(payloadInt(payload, 61, 28))/600000,
			float64(payloadInt(payload, 89, 27))/600000)
	case TypePositionB, TypePositionBExtended:
		need := lenPositionB
		if msgType == TypePositionBExtended {
			need = lenPositionBExt
		}
		if bitLen < need {
			s.stats.Malformed++ // ErrTruncated
			return Fix{}, false
		}
		return s.finishFix(ts,
			uint32(payloadUint(payload, 8, 30)),
			float64(payloadInt(payload, 57, 28))/600000,
			float64(payloadInt(payload, 85, 27))/600000)
	default:
		s.stats.Unsupported++ // ErrUnsupportedType
		return Fix{}, false
	}
}

// finishFix applies the Scanner's semantic position filter and builds
// the fix. The lon/lat range check is PositionReport.HasPosition.
func (s *Scanner) finishFix(ts int64, mmsi uint32, lon, lat float64) (Fix, bool) {
	if lon < -180 || lon > 180 || lat < -90 || lat > 90 {
		s.stats.NoPosition++
		return Fix{}, false
	}
	return Fix{
		MMSI: mmsi,
		Pos:  geo.Point{Lon: lon, Lat: lat},
		Time: time.Unix(ts, 0).UTC(),
	}, true
}

// pushLegacy routes an already-parsed sentence through the assembler and
// the allocating decoder: multi-fragment groups and voyage reports. The
// outcome classification is the tail of the legacy consumeNMEA.
func (s *Scanner) pushLegacy(ts int64, sent Sentence) (Fix, bool) {
	msg, err := s.asm.Push(sent)
	if err != nil {
		switch {
		case isErr(err, ErrUnsupportedType):
			s.stats.Unsupported++
		case isErr(err, ErrFragmentLost):
			s.stats.FragmentLoss++
		default:
			s.stats.Malformed++
		}
		return Fix{}, false
	}
	switch report := msg.(type) {
	case nil:
		s.stats.Fragments++
		return Fix{}, false // awaiting more fragments
	case *StaticVoyage:
		s.stats.VoyageReports++
		s.voyages[report.MMSI] = *report
		return Fix{}, false
	case *PositionReport:
		if !report.HasPosition() {
			s.stats.NoPosition++
			return Fix{}, false
		}
		return Fix{
			MMSI: report.MMSI,
			Pos:  geo.Point{Lon: report.Lon, Lat: report.Lat},
			Time: time.Unix(ts, 0).UTC(),
		}, true
	default:
		s.stats.Malformed++
		return Fix{}, false
	}
}

// consumeCSVBytes parses "mmsi,lon,lat,unix-seconds" lines without
// allocating.
func (s *Scanner) consumeCSVBytes(line []byte) (Fix, bool) {
	var parts [4][]byte
	np := 0
	rest := line
	for {
		j := bytes.IndexByte(rest, ',')
		if j < 0 {
			break
		}
		if np == 4 {
			s.stats.Malformed++ // 5+ fields
			return Fix{}, false
		}
		parts[np] = rest[:j]
		np++
		rest = rest[j+1:]
	}
	if np != 3 {
		s.stats.Malformed++ // field count != 4
		return Fix{}, false
	}
	parts[3] = rest

	mmsi, err1 := strconv.ParseUint(unsafeString(bytes.TrimSpace(parts[0])), 10, 32)
	lon, err2 := strconv.ParseFloat(unsafeString(bytes.TrimSpace(parts[1])), 64)
	lat, err3 := strconv.ParseFloat(unsafeString(bytes.TrimSpace(parts[2])), 64)
	ts, err4 := strconv.ParseInt(unsafeString(bytes.TrimSpace(parts[3])), 10, 64)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		s.stats.Malformed++
		return Fix{}, false
	}
	p := geo.Point{Lon: lon, Lat: lat}
	if !p.Valid() {
		s.stats.NoPosition++
		return Fix{}, false
	}
	return Fix{MMSI: uint32(mmsi), Pos: p, Time: time.Unix(ts, 0).UTC()}, true
}
