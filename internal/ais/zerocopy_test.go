package ais

import (
	"fmt"
	"strings"
	"testing"
)

// differentialCorpus is a deterministic input exercising every line shape
// and every drop-classification path of the scanner: valid CSV and NMEA
// traffic, multi-fragment groups, type-5 voyage reports, and one
// representative of each malformation the stats distinguish.
func differentialCorpus(t testing.TB) string {
	t.Helper()
	var sb strings.Builder
	add := func(line string) { sb.WriteString(line); sb.WriteByte('\n') }
	// sum builds "!<body>*XX" with a correct checksum, so crafted lines
	// reach the classification stage they target instead of dropping as
	// BadChecksum first.
	sum := func(body string) string {
		var x byte
		for i := 0; i < len(body); i++ {
			x ^= body[i]
		}
		return fmt.Sprintf("!%s*%02X", body, x)
	}

	// Valid traffic in both formats, classes A and B.
	for i := 0; i < 50; i++ {
		add(fmt.Sprintf("%d,%.6f,%.6f,%d", 237000000+i, 20.0+float64(i)/100, 34.0+float64(i)/200, 1243814400+i))
		cls, typ := "A", TypePositionA
		if i%2 == 1 {
			cls, typ = "B", TypePositionB
		}
		r := &PositionReport{Type: typ, MMSI: uint32(237100000 + i),
			Lon: 21.0 + float64(i)/100, Lat: 35.0 + float64(i)/200, SpeedKnots: float64(i % 20)}
		lines, err := EncodeSentences(r, cls, i)
		if err != nil {
			t.Fatal(err)
		}
		add(fmt.Sprintf("%d %s", 1243814400+i, lines[0]))
	}
	// Multi-fragment group (type 5 voyage report) — legacy assembler path.
	add("1243814400 !AIVDM,2,1,3,B,55P5TL01VIaAL@7WKO@mBplU@<PDhh000000001S;AJ::4A80?4i@E53,0*3E")
	add("1243814400 !AIVDM,2,2,3,B,1@0000000000000,2*55")
	// Comment, blank, whitespace lines.
	add("# comment")
	add("")
	add("   ")
	// One representative per drop class.
	add("1243814400 !AIVDM,1,1,,A,15RTgt0PAso;90TKcjM8h6g208CQ,0*00")        // bad checksum
	add("1243814400 " + sum("BSVDM,1,1,,A,15RTgt0PAso;90TKcjM8h6g208CQ,0"))  // not AIVDM
	add("notanumber !AIVDM,1,1,,A,15RTgt0PAso;90TKcjM8h6g208CQ,0*4A")        // bad timestamp
	add("1243814400 !AIVDM,1,1,,A,15RTgt0")                                  // truncated, no checksum
	add("1243814400 " + sum("AIVDM,1,1,,A"))                                 // too few fields
	add("1243814400 " + sum("AIVDM,1,1,,A,x,y,z,15RTgt0PAso;90TKcjM8h6g,0")) // too many fields
	add("1243814400 " + sum("AIVDM,x,1,,A,15RTgt0PAso;90TKcjM8h6g208CQ,0"))  // bad fragment count
	add("1243814400 " + sum("AIVDM,1,1,,A,1\x7f5RTgt0PAso,0"))               // invalid armor char
	add("1243814400 " + sum("AIVDM,1,1,,A,w,0"))                             // unsupported type 63
	add("1243814400 " + sum("AIVDM,1,1,,A,1,0"))                             // class A too short
	add("1243814400 " + sum("AIVDM,2,2,9,A,1@0000000000000,2"))              // fragment 2 without 1
	add("not,a,csv,line,at,all")                                             // CSV field count
	add("mmsi,x,y,ts")                                                       // CSV parse failure
	add("237000001,200.0,37.0,1243814400")                                   // CSV out of range
	add("237000001,NaN,+Inf,1243814400")                                     // CSV non-finite
	// Sentinel not-available position over NMEA.
	r := &PositionReport{Type: TypePositionA, MMSI: 237555000, Lon: LonNotAvailable, Lat: LatNotAvailable}
	lines, err := EncodeSentences(r, "A", 0)
	if err != nil {
		t.Fatal(err)
	}
	add("1243814400 " + lines[0])
	return sb.String()
}

// TestZeroCopyDifferential runs the corpus through the zero-copy fast
// path and the legacy string decoder: fix streams, stats, and collected
// voyages must match exactly, and the stats must reconcile.
func TestZeroCopyDifferential(t *testing.T) {
	input := differentialCorpus(t)
	fast := NewScanner(strings.NewReader(input))
	oracle := NewScanner(strings.NewReader(input))
	oracle.SetLegacyDecode(true)

	var n int
	for fast.Scan() {
		if !oracle.Scan() {
			t.Fatalf("fix %d: legacy oracle ended early", n)
		}
		if got, want := fast.Fix(), oracle.Fix(); got != want {
			t.Fatalf("fix %d diverges:\n zero-copy: %+v\n legacy:    %+v", n, got, want)
		}
		n++
	}
	if oracle.Scan() {
		t.Fatalf("legacy oracle emitted an extra fix: %+v", oracle.Fix())
	}
	if n == 0 {
		t.Fatal("corpus produced no fixes")
	}
	st, ost := fast.Stats(), oracle.Stats()
	if st != ost {
		t.Fatalf("stats diverge:\n zero-copy: %+v\n legacy:    %+v", st, ost)
	}
	if !st.Reconciles() {
		t.Fatalf("stats do not reconcile: %+v", st)
	}
	// Every drop class must actually be hit, or the corpus has rotted.
	if st.BadChecksum == 0 || st.Malformed == 0 || st.Unsupported == 0 ||
		st.NoPosition == 0 || st.FragmentLoss == 0 || st.VoyageReports == 0 ||
		st.Blank == 0 || st.Fragments == 0 {
		t.Fatalf("corpus misses a drop class: %+v", st)
	}
	if len(fast.Voyages()) != len(oracle.Voyages()) || len(fast.Voyages()) == 0 {
		t.Fatalf("voyages: %d zero-copy, %d legacy", len(fast.Voyages()), len(oracle.Voyages()))
	}
}

// TestZeroCopyScanAllocs pins the allocation contract of the fast path: a
// warm scanner decodes single-fragment position traffic without
// allocating per line.
func TestZeroCopyScanAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race runtime inflates allocation counts")
	}
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		r := &PositionReport{Type: TypePositionA, MMSI: uint32(237000000 + i%500),
			Lon: 20.0 + float64(i%800)/100, Lat: 34.0 + float64(i%600)/100}
		lines, err := EncodeSentences(r, "A", i)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&sb, "%d %s\n", 1243814400+i, lines[0])
		fmt.Fprintf(&sb, "%d,%.6f,%.6f,%d\n", 237000000+i%500, 20.0+float64(i%800)/100,
			34.0+float64(i%600)/100, 1243814400+i)
	}
	input := sb.String()
	allocs := testing.AllocsPerRun(5, func() {
		sc := NewScanner(strings.NewReader(input))
		for sc.Scan() {
		}
		if sc.Stats().Fixes != 4000 {
			t.Fatalf("fixes = %d, want 4000", sc.Stats().Fixes)
		}
	})
	// One scanner construction costs a handful of allocations (bufio
	// buffer, assembler, voyage map); the 4000 decoded lines must add
	// nothing on top.
	const maxAllocs = 10
	if allocs > maxAllocs {
		t.Errorf("scan pass allocated %.0f times for 4000 fixes, want <= %d (scanner setup only)", allocs, maxAllocs)
	}
}

// benchDecode measures per-fix decode cost over a prebuilt input.
func benchDecode(b *testing.B, input string, fixes int, legacy bool) {
	b.SetBytes(int64(len(input)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := NewScanner(strings.NewReader(input))
		sc.SetLegacyDecode(legacy)
		n := 0
		for sc.Scan() {
			n++
		}
		if n != fixes {
			b.Fatalf("fixes = %d, want %d", n, fixes)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*fixes), "ns/fix")
}

// BenchmarkDecode compares the zero-copy fast path against the legacy
// string-based decoder on pure NMEA and pure CSV traffic. The interesting
// metrics are ns/fix and allocs/op (one op = one pass over the corpus;
// scanner setup is the only allocation the fast path should show).
func BenchmarkDecode(b *testing.B) {
	const lines = 5000
	var nmea, csv strings.Builder
	for i := 0; i < lines; i++ {
		r := &PositionReport{Type: TypePositionA, MMSI: uint32(237000000 + i%500),
			Lon: 20.0 + float64(i%800)/100, Lat: 34.0 + float64(i%600)/100,
			SpeedKnots: float64(i % 25)}
		enc, err := EncodeSentences(r, "A", i)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(&nmea, "%d %s\n", 1243814400+i, enc[0])
		fmt.Fprintf(&csv, "%d,%.6f,%.6f,%d\n", 237000000+i%500, 20.0+float64(i%800)/100,
			34.0+float64(i%600)/100, 1243814400+i)
	}
	b.Run("nmea-zerocopy", func(b *testing.B) { benchDecode(b, nmea.String(), lines, false) })
	b.Run("nmea-legacy", func(b *testing.B) { benchDecode(b, nmea.String(), lines, true) })
	b.Run("csv-zerocopy", func(b *testing.B) { benchDecode(b, csv.String(), lines, false) })
	b.Run("csv-legacy", func(b *testing.B) { benchDecode(b, csv.String(), lines, true) })
}
