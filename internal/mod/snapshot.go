package mod

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/tracker"
)

// Durable state (paper §2: "'Delta' critical points ... are
// periodically sent from main memory into a staging area on disk" and
// trajectories are "physically archived in a database"). The store
// serializes its staging area, per-vessel origins, and archived trips
// so a surveillance process can restart without losing the trajectory
// history.

// snapshot is the serialized form of a store.
type snapshot struct {
	Staging map[uint32][]tracker.CriticalPoint
	Origin  map[uint32]string
	Trips   []Trip
}

// SaveSnapshot serializes the store.
func (m *MOD) SaveSnapshot(w io.Writer) error {
	snap := snapshot{
		Staging: m.staging,
		Origin:  m.origin,
		Trips:   make([]Trip, len(m.trips)),
	}
	for i, t := range m.trips {
		snap.Trips[i] = *t
	}
	if err := gob.NewEncoder(w).Encode(&snap); err != nil {
		return fmt.Errorf("mod: encoding snapshot: %w", err)
	}
	return nil
}

// RestoreSnapshot replaces the store's contents with a serialized
// snapshot. The port set is not serialized: it is configuration, and
// the restoring process supplies it to New.
func (m *MOD) RestoreSnapshot(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("mod: decoding snapshot: %w", err)
	}
	m.staging = snap.Staging
	if m.staging == nil {
		m.staging = make(map[uint32][]tracker.CriticalPoint)
	}
	m.origin = snap.Origin
	if m.origin == nil {
		m.origin = make(map[uint32]string)
	}
	m.trips = m.trips[:0]
	m.byVessel = make(map[uint32][]*Trip)
	for i := range snap.Trips {
		t := snap.Trips[i]
		m.trips = append(m.trips, &t)
		m.byVessel[t.MMSI] = append(m.byVessel[t.MMSI], &t)
	}
	return nil
}
