package mod

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/durable"
	"repro/internal/tracker"
)

// Durable state (paper §2: "'Delta' critical points ... are
// periodically sent from main memory into a staging area on disk" and
// trajectories are "physically archived in a database"). The store
// serializes its staging area, per-vessel origins, and archived trips
// so a surveillance process can restart without losing the trajectory
// history.
//
// On disk the snapshot is framed through internal/durable: a magic
// header, a format version, and a payload CRC, so restoring from a
// truncated, corrupted or future-format file fails with one of the
// typed durable errors (ErrBadMagic, ErrTruncated, ErrChecksum,
// ErrFutureVersion) instead of panicking or half-populating the store.

// snapshotMagic tags a MOD snapshot file; snapshotVersion is the
// current payload format revision (gob of the snapshot struct).
const (
	snapshotMagic   = "MODSNAP"
	snapshotVersion = 1
)

// snapshot is the serialized form of a store.
type snapshot struct {
	Staging map[uint32][]tracker.CriticalPoint
	Origin  map[uint32]string
	Trips   []Trip
}

// SaveSnapshot serializes the store.
func (m *MOD) SaveSnapshot(w io.Writer) error {
	snap := snapshot{
		Staging: m.staging,
		Origin:  m.origin,
		Trips:   make([]Trip, len(m.trips)),
	}
	for i, t := range m.trips {
		snap.Trips[i] = *t
	}
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&snap); err != nil {
		return fmt.Errorf("mod: encoding snapshot: %w", err)
	}
	if err := durable.WriteFrame(w, snapshotMagic, snapshotVersion, payload.Bytes()); err != nil {
		return fmt.Errorf("mod: writing snapshot frame: %w", err)
	}
	return nil
}

// RestoreSnapshot replaces the store's contents with a serialized
// snapshot. The port set is not serialized: it is configuration, and
// the restoring process supplies it to New.
//
// The frame is verified and the payload fully decoded into fresh state
// before the store is touched, so a failed restore (typed durable
// errors for a bad/truncated/corrupt/future-version file, or a gob
// decode failure) leaves the store exactly as it was.
func (m *MOD) RestoreSnapshot(r io.Reader) error {
	payload, _, err := durable.ReadFrame(r, snapshotMagic, snapshotVersion)
	if err != nil {
		return fmt.Errorf("mod: snapshot frame: %w", err)
	}
	var snap snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&snap); err != nil {
		return fmt.Errorf("mod: decoding snapshot: %w", err)
	}
	staging := snap.Staging
	if staging == nil {
		staging = make(map[uint32][]tracker.CriticalPoint)
	}
	origin := snap.Origin
	if origin == nil {
		origin = make(map[uint32]string)
	}
	trips := make([]*Trip, 0, len(snap.Trips))
	byVessel := make(map[uint32][]*Trip)
	for i := range snap.Trips {
		t := snap.Trips[i]
		trips = append(trips, &t)
		byVessel[t.MMSI] = append(byVessel[t.MMSI], &t)
	}
	m.staging = staging
	m.origin = origin
	m.trips = trips
	m.byVessel = byVessel
	return nil
}
