package mod

import (
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/tracker"
)

// Ships traveling together — the spatiotemporal interaction the paper
// names as a target of sequence-aware processing (§2: "spatiotemporal
// interactions (e.g., ships traveling together)"). Two archived trips
// travel together when their time intervals overlap long enough and,
// throughout the overlap, the reconstructed positions stay within a
// distance bound.

// Companionship describes one detected joint movement.
type Companionship struct {
	A, B    *Trip
	From    time.Time
	To      time.Time
	MaxDist float64 // worst observed separation during the overlap
}

// Overlap returns the duration of the joint movement.
func (c Companionship) Overlap() time.Duration { return c.To.Sub(c.From) }

// TravelingTogether scans the archive for pairs of trips by different
// vessels that overlap in time for at least minOverlap and whose
// reconstructed positions stay within maxDistMeters at sampled instants
// throughout the overlap. Pairs are returned ordered by descending
// overlap.
func (m *MOD) TravelingTogether(maxDistMeters float64, minOverlap time.Duration) []Companionship {
	const samples = 12
	var out []Companionship
	trips := m.trips
	for i := 0; i < len(trips); i++ {
		for j := i + 1; j < len(trips); j++ {
			a, b := trips[i], trips[j]
			if a.MMSI == b.MMSI {
				continue
			}
			from := a.Start
			if b.Start.After(from) {
				from = b.Start
			}
			to := a.End
			if b.End.Before(to) {
				to = b.End
			}
			if to.Sub(from) < minOverlap {
				continue
			}
			sa := tracker.Synopsis(a.Points)
			sb := tracker.Synopsis(b.Points)
			worst := 0.0
			together := true
			for k := 0; k <= samples; k++ {
				f := float64(k) / samples
				at := from.Add(time.Duration(f * float64(to.Sub(from))))
				pa, _ := sa.At(at)
				pb, _ := sb.At(at)
				d := geo.Haversine(pa, pb)
				if d > worst {
					worst = d
				}
				if d > maxDistMeters {
					together = false
					break
				}
			}
			if together {
				out = append(out, Companionship{A: a, B: b, From: from, To: to, MaxDist: worst})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Overlap() != out[j].Overlap() {
			return out[i].Overlap() > out[j].Overlap()
		}
		return out[i].A.MMSI < out[j].A.MMSI
	})
	return out
}
