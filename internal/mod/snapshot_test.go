package mod

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/tracker"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := New(testPorts())
	src.Stage(voyagePoints(1))
	src.Stage(voyagePoints(2))
	src.ReconstructAndLoad()
	// Leave an open trip staged for vessel 3.
	src.Stage([]tracker.CriticalPoint{
		cp(3, 24.0, 37.0, 0, tracker.EventFirst),
		cp(3, 24.2, 36.8, time.Hour, tracker.EventTurn),
	})

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New(testPorts())
	if err := dst.RestoreSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := len(dst.Trips()), len(src.Trips()); got != want {
		t.Fatalf("trips after restore = %d, want %d", got, want)
	}
	if got, want := dst.StagedCount(), src.StagedCount(); got != want {
		t.Fatalf("staged after restore = %d, want %d", got, want)
	}
	if !reflect.DeepEqual(dst.Table4Stats(), src.Table4Stats()) {
		t.Errorf("Table 4 differs after restore")
	}
	// The per-vessel index must be rebuilt.
	if len(dst.TripsOf(1)) != len(src.TripsOf(1)) {
		t.Errorf("per-vessel index broken after restore")
	}
}

func TestSnapshotRestoreContinuesIncrementally(t *testing.T) {
	// Reconstruct half the voyage, snapshot, restore into a fresh
	// process, deliver the rest: same result as an uninterrupted run.
	pts := voyagePoints(4)
	mid := len(pts) / 2

	first := New(testPorts())
	first.Stage(pts[:mid])
	first.ReconstructAndLoad()
	var buf bytes.Buffer
	if err := first.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	resumed := New(testPorts())
	if err := resumed.RestoreSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	resumed.Stage(pts[mid:])
	resumed.ReconstructAndLoad()

	oneShot := New(testPorts())
	oneShot.Stage(pts)
	oneShot.ReconstructAndLoad()

	a, b := resumed.Trips(), oneShot.Trips()
	if len(a) != len(b) {
		t.Fatalf("resumed %d trips, one-shot %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Origin != b[i].Origin || a[i].Dest != b[i].Dest || len(a[i].Points) != len(b[i].Points) {
			t.Errorf("trip %d differs after restore: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSnapshotToFile(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	m.ReconstructAndLoad()

	path := filepath.Join(t.TempDir(), "mod.snapshot")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	restored := New(testPorts())
	if err := restored.RestoreSnapshot(g); err != nil {
		t.Fatal(err)
	}
	if len(restored.Trips()) != len(m.Trips()) {
		t.Errorf("file round trip lost trips")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	m := New(testPorts())
	err := m.RestoreSnapshot(strings.NewReader("not a gob stream, and long enough to cover a whole frame header"))
	if err == nil {
		t.Fatal("garbage accepted")
	}
	if !errors.Is(err, durable.ErrBadMagic) {
		t.Errorf("err = %v, want durable.ErrBadMagic", err)
	}
}

// populatedStore builds a store with trips and staged points, plus its
// serialized snapshot bytes.
func populatedStore(t *testing.T) (*MOD, []byte) {
	t.Helper()
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	m.ReconstructAndLoad()
	m.Stage([]tracker.CriticalPoint{
		cp(9, 24.0, 37.0, 0, tracker.EventFirst),
	})
	var buf bytes.Buffer
	if err := m.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return m, buf.Bytes()
}

// assertUntouched verifies a failed restore left the store's previous
// contents fully intact — no half-populated state.
func assertUntouched(t *testing.T, got, want *MOD) {
	t.Helper()
	if len(got.Trips()) != len(want.Trips()) {
		t.Errorf("failed restore changed trips: %d, want %d", len(got.Trips()), len(want.Trips()))
	}
	if got.StagedCount() != want.StagedCount() {
		t.Errorf("failed restore changed staging: %d, want %d", got.StagedCount(), want.StagedCount())
	}
}

func TestRestoreRejectsTruncatedFile(t *testing.T) {
	want, raw := populatedStore(t)
	for _, cut := range []int{0, 4, 13, len(raw) / 2, len(raw) - 1} {
		m := New(testPorts())
		m.Stage(voyagePoints(2))
		m.ReconstructAndLoad()
		prev := New(testPorts())
		prev.Stage(voyagePoints(2))
		prev.ReconstructAndLoad()
		err := m.RestoreSnapshot(bytes.NewReader(raw[:cut]))
		if !errors.Is(err, durable.ErrTruncated) {
			t.Errorf("cut at %d: err = %v, want durable.ErrTruncated", cut, err)
		}
		assertUntouched(t, m, prev)
	}
	_ = want
}

func TestRestoreRejectsCorruptPayload(t *testing.T) {
	want, raw := populatedStore(t)
	mut := append([]byte(nil), raw...)
	mut[len(mut)-3] ^= 0xff
	m := New(testPorts())
	err := m.RestoreSnapshot(bytes.NewReader(mut))
	if !errors.Is(err, durable.ErrChecksum) {
		t.Fatalf("err = %v, want durable.ErrChecksum", err)
	}
	if len(m.Trips()) != 0 || m.StagedCount() != 0 {
		t.Error("failed restore half-populated an empty store")
	}
	_ = want
}

func TestRestoreRejectsFutureVersion(t *testing.T) {
	_, raw := populatedStore(t)
	// The version field sits right after the magic (big endian uint16).
	mut := append([]byte(nil), raw...)
	mut[durable.MagicLen] = 0x7f
	m := New(testPorts())
	err := m.RestoreSnapshot(bytes.NewReader(mut))
	if !errors.Is(err, durable.ErrFutureVersion) {
		t.Fatalf("err = %v, want durable.ErrFutureVersion", err)
	}
}

func TestRestoreRejectsCorruptGobInsideValidFrame(t *testing.T) {
	// A frame whose checksum is fine but whose payload is not a gob
	// snapshot: the decode error must also leave the store untouched.
	var buf bytes.Buffer
	if err := durable.WriteFrame(&buf, "MODSNAP", 1, []byte("valid frame, bogus gob")); err != nil {
		t.Fatal(err)
	}
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	m.ReconstructAndLoad()
	prev := New(testPorts())
	prev.Stage(voyagePoints(1))
	prev.ReconstructAndLoad()
	if err := m.RestoreSnapshot(&buf); err == nil {
		t.Fatal("bogus gob accepted")
	}
	assertUntouched(t, m, prev)
}
