package mod

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/tracker"
)

func TestSnapshotRoundTrip(t *testing.T) {
	src := New(testPorts())
	src.Stage(voyagePoints(1))
	src.Stage(voyagePoints(2))
	src.ReconstructAndLoad()
	// Leave an open trip staged for vessel 3.
	src.Stage([]tracker.CriticalPoint{
		cp(3, 24.0, 37.0, 0, tracker.EventFirst),
		cp(3, 24.2, 36.8, time.Hour, tracker.EventTurn),
	})

	var buf bytes.Buffer
	if err := src.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	dst := New(testPorts())
	if err := dst.RestoreSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if got, want := len(dst.Trips()), len(src.Trips()); got != want {
		t.Fatalf("trips after restore = %d, want %d", got, want)
	}
	if got, want := dst.StagedCount(), src.StagedCount(); got != want {
		t.Fatalf("staged after restore = %d, want %d", got, want)
	}
	if !reflect.DeepEqual(dst.Table4Stats(), src.Table4Stats()) {
		t.Errorf("Table 4 differs after restore")
	}
	// The per-vessel index must be rebuilt.
	if len(dst.TripsOf(1)) != len(src.TripsOf(1)) {
		t.Errorf("per-vessel index broken after restore")
	}
}

func TestSnapshotRestoreContinuesIncrementally(t *testing.T) {
	// Reconstruct half the voyage, snapshot, restore into a fresh
	// process, deliver the rest: same result as an uninterrupted run.
	pts := voyagePoints(4)
	mid := len(pts) / 2

	first := New(testPorts())
	first.Stage(pts[:mid])
	first.ReconstructAndLoad()
	var buf bytes.Buffer
	if err := first.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	resumed := New(testPorts())
	if err := resumed.RestoreSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	resumed.Stage(pts[mid:])
	resumed.ReconstructAndLoad()

	oneShot := New(testPorts())
	oneShot.Stage(pts)
	oneShot.ReconstructAndLoad()

	a, b := resumed.Trips(), oneShot.Trips()
	if len(a) != len(b) {
		t.Fatalf("resumed %d trips, one-shot %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Origin != b[i].Origin || a[i].Dest != b[i].Dest || len(a[i].Points) != len(b[i].Points) {
			t.Errorf("trip %d differs after restore: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSnapshotToFile(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	m.ReconstructAndLoad()

	path := filepath.Join(t.TempDir(), "mod.snapshot")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SaveSnapshot(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	restored := New(testPorts())
	if err := restored.RestoreSnapshot(g); err != nil {
		t.Fatal(err)
	}
	if len(restored.Trips()) != len(m.Trips()) {
		t.Errorf("file round trip lost trips")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	m := New(testPorts())
	err := m.RestoreSnapshot(strings.NewReader("not a gob stream"))
	if err == nil {
		t.Fatal("garbage accepted")
	}
}
