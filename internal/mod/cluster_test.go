package mod

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/tracker"
)

// routeTrip builds a straight synthetic trip from a to b departing at
// dep with the given duration.
func routeTrip(mmsi uint32, a, b geo.Point, dep time.Time, dur time.Duration) *Trip {
	const n = 6
	pts := make([]tracker.CriticalPoint, n)
	for i := 0; i < n; i++ {
		f := float64(i) / (n - 1)
		pts[i] = tracker.CriticalPoint{
			MMSI: mmsi,
			Pos:  geo.Interpolate(a, b, f),
			Time: dep.Add(time.Duration(f * float64(dur))),
		}
	}
	return &Trip{
		MMSI: mmsi, Origin: "A", Dest: "B",
		Points: pts, Start: dep, End: dep.Add(dur),
	}
}

func TestTripClustersSpatialSeparation(t *testing.T) {
	dep := time.Date(2009, 6, 1, 8, 0, 0, 0, time.UTC)
	north := []geo.Point{{Lon: 23, Lat: 39}, {Lon: 25, Lat: 40}}
	south := []geo.Point{{Lon: 24, Lat: 35}, {Lon: 26, Lat: 36}}
	var trips []*Trip
	for i := 0; i < 4; i++ {
		trips = append(trips, routeTrip(uint32(100+i), north[0], north[1],
			dep.AddDate(0, 0, i), 3*time.Hour))
		trips = append(trips, routeTrip(uint32(200+i), south[0], south[1],
			dep.AddDate(0, 0, i), 3*time.Hour))
	}
	clusters := TripClusters(trips, ClusterOptions{K: 2, Seed: 1})
	if len(clusters) != 2 {
		t.Fatalf("clusters = %d", len(clusters))
	}
	for _, c := range clusters {
		if len(c.Trips) != 4 {
			t.Fatalf("cluster sizes = %d/%d, want 4/4", len(clusters[0].Trips), len(clusters[1].Trips))
		}
		// All members share the medoid's route (north or south).
		medoidLat := c.Medoid.Points[0].Pos.Lat
		for _, tr := range c.Trips {
			if (tr.Points[0].Pos.Lat > 38) != (medoidLat > 38) {
				t.Errorf("route mixed into wrong cluster")
			}
		}
	}
}

func TestTripClustersTemporalSeparation(t *testing.T) {
	// Identical routes sailed at 08:00 vs 20:00: spatially identical,
	// temporally distinct (the paper's periodicity example).
	a, b := geo.Point{Lon: 23, Lat: 38}, geo.Point{Lon: 25, Lat: 38.5}
	var trips []*Trip
	for i := 0; i < 4; i++ {
		day := time.Date(2009, 6, 1+i, 0, 0, 0, 0, time.UTC)
		trips = append(trips, routeTrip(uint32(300+i), a, b, day.Add(8*time.Hour), 3*time.Hour))
		trips = append(trips, routeTrip(uint32(400+i), a, b, day.Add(20*time.Hour), 3*time.Hour))
	}
	// Purely spatial clustering cannot separate them...
	spatial := TripClusters(trips, ClusterOptions{K: 2, Seed: 1})
	if len(spatial[0].Trips) == 4 && morningsOnly(spatial[0].Trips) {
		t.Error("spatial clustering separated by time of day without a temporal term")
	}
	// ...the spatiotemporal distance can.
	st := TripClusters(trips, ClusterOptions{K: 2, Seed: 1, TemporalWeight: 20})
	if len(st[0].Trips) != 4 || len(st[1].Trips) != 4 {
		t.Fatalf("spatiotemporal cluster sizes = %d/%d", len(st[0].Trips), len(st[1].Trips))
	}
	for _, c := range st {
		hour := c.Trips[0].Start.Hour()
		for _, tr := range c.Trips {
			if tr.Start.Hour() != hour {
				t.Errorf("departure hours mixed within a cluster")
			}
		}
	}
}

func morningsOnly(trips []*Trip) bool {
	for _, t := range trips {
		if t.Start.Hour() != 8 {
			return false
		}
	}
	return true
}

func TestTripClustersDegenerateInputs(t *testing.T) {
	if got := TripClusters(nil, ClusterOptions{K: 3}); got != nil {
		t.Errorf("clusters of nothing = %v", got)
	}
	one := routeTrip(1, geo.Point{Lon: 23, Lat: 38}, geo.Point{Lon: 24, Lat: 38},
		time.Date(2009, 6, 1, 8, 0, 0, 0, time.UTC), time.Hour)
	got := TripClusters([]*Trip{one}, ClusterOptions{K: 3})
	if len(got) != 1 || got[0].Medoid != one {
		t.Errorf("singleton clustering = %v", got)
	}
}

func TestTimeOfDayDiff(t *testing.T) {
	at := func(h int) time.Time { return time.Date(2009, 6, 1, h, 0, 0, 0, time.UTC) }
	if d := timeOfDayDiff(at(8), at(10)); d != 2*time.Hour {
		t.Errorf("8↔10 = %v", d)
	}
	// Circular: 23:00 vs 01:00 is 2 h apart, not 22.
	late := time.Date(2009, 6, 1, 23, 0, 0, 0, time.UTC)
	early := time.Date(2009, 6, 3, 1, 0, 0, 0, time.UTC)
	if d := timeOfDayDiff(late, early); d != 2*time.Hour {
		t.Errorf("23↔01 = %v", d)
	}
	if d := timeOfDayDiff(at(6), at(6)); d != 0 {
		t.Errorf("equal = %v", d)
	}
}

func TestAggregateTrips(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	m.Stage(voyagePoints(2))
	m.ReconstructAndLoad()
	byDay := m.AggregateTrips(ByDay)
	if len(byDay) != 1 {
		t.Fatalf("day buckets = %d, want 1", len(byDay))
	}
	s := byDay[0]
	if s.Trips != 4 || s.Vessels != 2 {
		t.Errorf("day stats = %+v", s)
	}
	if s.DistanceMeters <= 0 || s.TravelTime <= 0 {
		t.Errorf("degenerate aggregates: %+v", s)
	}
	if len(m.AggregateTrips(ByWeek)) != 1 || len(m.AggregateTrips(ByMonth)) != 1 {
		t.Error("week/month bucketing broken")
	}
	// 1 June 2009 is a Monday: the week bucket must be that same day.
	if !m.AggregateTrips(ByWeek)[0].Period.Equal(t0) {
		t.Errorf("week bucket = %v", m.AggregateTrips(ByWeek)[0].Period)
	}
}

func TestIdlePeriods(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(7))
	m.ReconstructAndLoad()
	idles := m.IdlePeriods()
	// Between arriving at Heraklion (6h) and departing it (8h).
	if len(idles) != 1 {
		t.Fatalf("idle periods = %d, want 1 (%v)", len(idles), idles)
	}
	p := idles[0]
	if p.Port != "Heraklion" || p.Duration() != 2*time.Hour {
		t.Errorf("idle = %+v (duration %v)", p, p.Duration())
	}
}

func TestTravelingTogether(t *testing.T) {
	dep := time.Date(2009, 6, 1, 8, 0, 0, 0, time.UTC)
	a := geo.Point{Lon: 23, Lat: 38}
	b := geo.Point{Lon: 25, Lat: 38.5}
	m := New(testPorts())
	// Two vessels in convoy: same route, same departure, 300 m abeam.
	convoy1 := routeTrip(501, a, b, dep, 4*time.Hour)
	aOff := geo.Destination(a, 0, 300)
	bOff := geo.Destination(b, 0, 300)
	convoy2 := routeTrip(502, aOff, bOff, dep, 4*time.Hour)
	// A third vessel on the same route three hours later: no overlap in
	// proximity.
	straggler := routeTrip(503, a, b, dep.Add(3*time.Hour), 4*time.Hour)
	m.Load([]*Trip{convoy1, convoy2, straggler})

	got := m.TravelingTogether(1000, time.Hour)
	if len(got) != 1 {
		t.Fatalf("companionships = %d (%v), want 1", len(got), got)
	}
	c := got[0]
	if c.A.MMSI != 501 || c.B.MMSI != 502 {
		t.Errorf("pair = %d,%d", c.A.MMSI, c.B.MMSI)
	}
	if c.Overlap() != 4*time.Hour {
		t.Errorf("overlap = %v", c.Overlap())
	}
	if c.MaxDist > 1000 || c.MaxDist < 100 {
		t.Errorf("max separation = %.0f m, want ≈300", c.MaxDist)
	}
}

func TestTravelingTogetherIgnoresSameVessel(t *testing.T) {
	dep := time.Date(2009, 6, 1, 8, 0, 0, 0, time.UTC)
	a := geo.Point{Lon: 23, Lat: 38}
	b := geo.Point{Lon: 25, Lat: 38.5}
	m := New(testPorts())
	// The same vessel's consecutive overlapping-in-error trips must not
	// pair with themselves.
	m.Load([]*Trip{
		routeTrip(601, a, b, dep, 4*time.Hour),
		routeTrip(601, a, b, dep.Add(time.Hour), 4*time.Hour),
	})
	if got := m.TravelingTogether(100000, time.Minute); len(got) != 0 {
		t.Errorf("self-pairing: %v", got)
	}
}
