package mod

import (
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/tracker"
)

// RangeQuery returns the trips that intersect the given spatial box and
// overlap the time interval [from, to], the basic historical query of a
// moving object database.
func (m *MOD) RangeQuery(box geo.BBox, from, to time.Time) []*Trip {
	var out []*Trip
	for _, t := range m.trips {
		if t.End.Before(from) || t.Start.After(to) {
			continue
		}
		if !t.BBox().Intersects(box) {
			continue
		}
		// Refine: at least one critical point inside the box and interval.
		for _, cp := range t.Points {
			if box.Contains(cp.Pos) && !cp.Time.Before(from) && !cp.Time.After(to) {
				out = append(out, t)
				break
			}
		}
	}
	return out
}

// NearestTrips returns the k trips whose paths pass closest to p,
// ordered by ascending distance.
func (m *MOD) NearestTrips(p geo.Point, k int) []*Trip {
	type scored struct {
		t *Trip
		d float64
	}
	all := make([]scored, 0, len(m.trips))
	for _, t := range m.trips {
		best := -1.0
		for i := 1; i < len(t.Points); i++ {
			d := distanceToLeg(p, t.Points[i-1].Pos, t.Points[i].Pos)
			if best < 0 || d < best {
				best = d
			}
		}
		if best < 0 && len(t.Points) == 1 {
			best = geo.Haversine(p, t.Points[0].Pos)
		}
		all = append(all, scored{t: t, d: best})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	if k > len(all) {
		k = len(all)
	}
	out := make([]*Trip, k)
	for i := 0; i < k; i++ {
		out[i] = all[i].t
	}
	return out
}

// distanceToLeg approximates the distance from p to the segment ab by
// sampling, adequate at trip-leg scale for ranking.
func distanceToLeg(p, a, b geo.Point) float64 {
	best := geo.Haversine(p, a)
	for i := 1; i <= 8; i++ {
		q := geo.Interpolate(a, b, float64(i)/8)
		if d := geo.Haversine(p, q); d < best {
			best = d
		}
	}
	return best
}

// Similarity returns the mean Haversine distance in meters between two
// trips sampled at n aligned fractions of their respective durations —
// the time-normalized similarity used for "similarity search among
// recent vessel paths" (paper §1). Lower is more similar.
func Similarity(a, b *Trip, n int) float64 {
	if n < 2 {
		n = 2
	}
	sa := synopsisOf(a)
	sb := synopsisOf(b)
	var sum float64
	for i := 0; i < n; i++ {
		f := float64(i) / float64(n-1)
		pa, _ := sa.At(a.Start.Add(time.Duration(f * float64(a.Duration()))))
		pb, _ := sb.At(b.Start.Add(time.Duration(f * float64(b.Duration()))))
		sum += geo.Haversine(pa, pb)
	}
	return sum / float64(n)
}

// synopsisOf adapts a trip's points for interpolation.
func synopsisOf(t *Trip) tracker.Synopsis {
	return tracker.Synopsis(t.Points)
}

// PositionAt answers the basic historical lookup — where was the
// vessel at time t — from the archive and, failing that, from the
// staging area (open-ended trips). ok is false when the store has no
// trajectory covering t for the vessel.
func (m *MOD) PositionAt(mmsi uint32, t time.Time) (geo.Point, bool) {
	for _, trip := range m.byVessel[mmsi] {
		if t.Before(trip.Start) || t.After(trip.End) {
			continue
		}
		if p, ok := synopsisOf(trip).At(t); ok {
			return p, true
		}
	}
	staged := m.staging[mmsi]
	if len(staged) == 0 {
		return geo.Point{}, false
	}
	syn := tracker.Synopsis(staged)
	if t.Before(syn[0].Time) || t.After(syn[len(syn)-1].Time) {
		return geo.Point{}, false
	}
	return syn.At(t)
}
