// Package mod is the repository's stand-in for Hermes MOD, the moving
// object database the paper archives trajectories in (§3.2–§3.3): an
// in-process store that accepts the "delta" critical points evicted
// from the sliding window into a staging area, periodically reconstructs
// them into disjoint trip segments between ports (with semantic
// enrichment: origin and destination port names), and answers offline
// queries — range, nearest neighbor, similarity — plus the aggregate
// analytics of the paper's Table 4.
package mod

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/geo"
	"repro/internal/tracker"
)

// PortArea is a named port polygon used for trip segmentation: a
// long-term stop inside the polygon tags the vessel as docked there.
type PortArea struct {
	Name string
	Poly *geo.Polygon
}

// Trip is one reconstructed trajectory segment between two port calls.
// Origin may be empty when the vessel was already under way when its
// signals first arrived (paper §3.2: "origin port O may remain
// unknown").
type Trip struct {
	MMSI   uint32
	Origin string // origin port name, possibly empty
	Dest   string // destination port name
	Points []tracker.CriticalPoint
	Start  time.Time
	End    time.Time
}

// Duration returns the trip travel time.
func (t *Trip) Duration() time.Duration { return t.End.Sub(t.Start) }

// DistanceMeters returns the length of the reconstructed path.
func (t *Trip) DistanceMeters() float64 {
	var d float64
	for i := 1; i < len(t.Points); i++ {
		d += geo.Haversine(t.Points[i-1].Pos, t.Points[i].Pos)
	}
	return d
}

// BBox returns the spatial extent of the trip.
func (t *Trip) BBox() geo.BBox {
	b := geo.BBox{
		MinLon: t.Points[0].Pos.Lon, MaxLon: t.Points[0].Pos.Lon,
		MinLat: t.Points[0].Pos.Lat, MaxLat: t.Points[0].Pos.Lat,
	}
	for _, cp := range t.Points[1:] {
		if cp.Pos.Lon < b.MinLon {
			b.MinLon = cp.Pos.Lon
		}
		if cp.Pos.Lon > b.MaxLon {
			b.MaxLon = cp.Pos.Lon
		}
		if cp.Pos.Lat < b.MinLat {
			b.MinLat = cp.Pos.Lat
		}
		if cp.Pos.Lat > b.MaxLat {
			b.MaxLat = cp.Pos.Lat
		}
	}
	return b
}

// String renders the trip for logs.
func (t *Trip) String() string {
	o := t.Origin
	if o == "" {
		o = "?"
	}
	return fmt.Sprintf("%d %s→%s %s..%s (%d pts)", t.MMSI, o, t.Dest,
		t.Start.UTC().Format("01-02 15:04"), t.End.UTC().Format("01-02 15:04"), len(t.Points))
}

// MOD is the moving-object store.
type MOD struct {
	ports []PortArea

	// staging holds per-vessel delta critical points not yet assigned to
	// a completed trip, in time order (the paper's staging table).
	staging map[uint32][]tracker.CriticalPoint
	// origin tracks the port the vessel departed from, once known.
	origin map[uint32]string

	trips    []*Trip
	byVessel map[uint32][]*Trip
}

// minTripDistance filters out degenerate "trips" between stop episodes
// at the same quay.
const minTripDistance = 2000.0 // meters

// New returns an empty store segmenting against the given ports.
func New(ports []PortArea) *MOD {
	return &MOD{
		ports:    ports,
		staging:  make(map[uint32][]tracker.CriticalPoint),
		origin:   make(map[uint32]string),
		byVessel: make(map[uint32][]*Trip),
	}
}

// Stage appends a batch of expired critical points to the staging area.
// Points must arrive in per-vessel time order, which the tracker's delta
// stream guarantees.
func (m *MOD) Stage(points []tracker.CriticalPoint) {
	for _, cp := range points {
		m.staging[cp.MMSI] = append(m.staging[cp.MMSI], cp)
	}
}

// StagedCount returns the number of critical points awaiting assignment
// to a trajectory.
func (m *MOD) StagedCount() int {
	n := 0
	for _, pts := range m.staging {
		n += len(pts)
	}
	return n
}

// portOfStop returns the port containing a long-term-stop critical
// point, or "".
func (m *MOD) portOfStop(cp tracker.CriticalPoint) string {
	if cp.Type != tracker.EventStopStart && cp.Type != tracker.EventStopEnd {
		return ""
	}
	for i := range m.ports {
		if m.ports[i].Poly.Contains(cp.Pos) {
			return m.ports[i].Name
		}
	}
	return ""
}

// Reconstruct processes the staging area: it scans each vessel's staged
// points for long-term stops located inside port polygons and closes a
// trip whenever a new destination port is identified (paper §3.2). The
// completed trips are returned for a subsequent Load; points that do
// not yet belong to a completed trip remain staged ("open-ended
// trips").
func (m *MOD) Reconstruct() []*Trip {
	var completed []*Trip
	mmsis := make([]uint32, 0, len(m.staging))
	for mmsi := range m.staging {
		mmsis = append(mmsis, mmsi)
	}
	sort.Slice(mmsis, func(i, j int) bool { return mmsis[i] < mmsis[j] })

	for _, mmsi := range mmsis {
		pts := m.staging[mmsi]
		cursor := 0 // start of the segment being assembled
		for i, cp := range pts {
			port := m.portOfStop(cp)
			if port == "" {
				continue
			}
			segment := pts[cursor : i+1]
			trip := &Trip{
				MMSI:   mmsi,
				Origin: m.origin[mmsi],
				Dest:   port,
				Points: append([]tracker.CriticalPoint(nil), segment...),
				Start:  segment[0].Time,
				End:    cp.Time,
			}
			if len(trip.Points) >= 2 && trip.DistanceMeters() >= minTripDistance {
				completed = append(completed, trip)
			}
			// Whether or not the segment qualified as a trip, the vessel
			// is now docked at the port: it becomes the next origin and
			// the stop anchors the next segment.
			m.origin[mmsi] = port
			cursor = i
		}
		if cursor > 0 {
			// Keep only the unassigned tail staged.
			m.staging[mmsi] = append(pts[:0:0], pts[cursor:]...)
		}
	}
	return completed
}

// Load inserts reconstructed trips into the archive and updates the
// per-vessel index — the paper's final "loading" stage, where
// "trajectory segments are inserted or updated in Hermes MOD".
func (m *MOD) Load(trips []*Trip) {
	for _, t := range trips {
		m.trips = append(m.trips, t)
		m.byVessel[t.MMSI] = append(m.byVessel[t.MMSI], t)
	}
}

// ReconstructAndLoad runs both stages, returning the number of trips
// completed.
func (m *MOD) ReconstructAndLoad() int {
	trips := m.Reconstruct()
	m.Load(trips)
	return len(trips)
}

// Trips returns all reconstructed trips. The slice must not be
// modified.
func (m *MOD) Trips() []*Trip { return m.trips }

// TripsOf returns the trips of one vessel in chronological order.
func (m *MOD) TripsOf(mmsi uint32) []*Trip {
	out := append([]*Trip(nil), m.byVessel[mmsi]...)
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}
