package mod

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// Table4 mirrors the statistics of the paper's Table 4: what trajectory
// reconstruction compiled once the input stream was exhausted.
type Table4 struct {
	PointsInTrajectories int           // critical points assigned to trips
	PointsInStaging      int           // critical points still awaiting assignment
	Trips                int           // trips between ports
	AvgTripsPerVessel    float64       // over vessels with at least one trip
	AvgPointsPerTrip     float64       //
	AvgTravelTime        time.Duration //
	AvgDistanceMeters    float64       //
}

// Table4Stats computes the Table 4 snapshot of the store's current
// contents.
func (m *MOD) Table4Stats() Table4 {
	var t4 Table4
	t4.PointsInStaging = m.StagedCount()
	vessels := make(map[uint32]int)
	var totalTime time.Duration
	var totalDist float64
	for _, t := range m.trips {
		t4.Trips++
		t4.PointsInTrajectories += len(t.Points)
		vessels[t.MMSI]++
		totalTime += t.Duration()
		totalDist += t.DistanceMeters()
	}
	if len(vessels) > 0 {
		t4.AvgTripsPerVessel = float64(t4.Trips) / float64(len(vessels))
	}
	if t4.Trips > 0 {
		t4.AvgPointsPerTrip = float64(t4.PointsInTrajectories) / float64(t4.Trips)
		t4.AvgTravelTime = totalTime / time.Duration(t4.Trips)
		t4.AvgDistanceMeters = totalDist / float64(t4.Trips)
	}
	return t4
}

// Write renders the snapshot in the layout of the paper's Table 4.
func (t4 Table4) Write(w io.Writer) {
	fmt.Fprintf(w, "Critical points in reconstructed trajectories  %d\n", t4.PointsInTrajectories)
	fmt.Fprintf(w, "Critical points remaining in staging area      %d\n", t4.PointsInStaging)
	fmt.Fprintf(w, "Number of trips between ports                  %d\n", t4.Trips)
	fmt.Fprintf(w, "Average trips per vessel                       %.1f\n", t4.AvgTripsPerVessel)
	fmt.Fprintf(w, "Average number of critical points per trip     %.1f\n", t4.AvgPointsPerTrip)
	fmt.Fprintf(w, "Average travel time per trip                   %s\n", t4.AvgTravelTime.Round(time.Second))
	fmt.Fprintf(w, "Average traveled distance per trip             %.3fkm\n", t4.AvgDistanceMeters/1000)
}

// ODPair is one origin–destination connection.
type ODPair struct {
	Origin string // "" for unknown origins
	Dest   string
}

// ODMatrix aggregates trip counts by origin–destination pair — the
// paper's offline analytics for identifying connections between ports
// (§3.3).
func (m *MOD) ODMatrix() map[ODPair]int {
	out := make(map[ODPair]int)
	for _, t := range m.trips {
		out[ODPair{Origin: t.Origin, Dest: t.Dest}]++
	}
	return out
}

// TravelStats summarizes one vessel's archived history.
type TravelStats struct {
	MMSI           uint32
	Trips          int
	DistanceMeters float64
	TravelTime     time.Duration
	VisitedPorts   []string // distinct destination ports, sorted
}

// VesselStats computes per-vessel travel statistics over all archived
// trips, keyed by MMSI.
func (m *MOD) VesselStats() map[uint32]TravelStats {
	out := make(map[uint32]TravelStats)
	ports := make(map[uint32]map[string]bool)
	for _, t := range m.trips {
		s := out[t.MMSI]
		s.MMSI = t.MMSI
		s.Trips++
		s.DistanceMeters += t.DistanceMeters()
		s.TravelTime += t.Duration()
		if ports[t.MMSI] == nil {
			ports[t.MMSI] = make(map[string]bool)
		}
		ports[t.MMSI][t.Dest] = true
		out[t.MMSI] = s
	}
	for mmsi, set := range ports {
		s := out[mmsi]
		for p := range set {
			s.VisitedPorts = append(s.VisitedPorts, p)
		}
		sort.Strings(s.VisitedPorts)
		out[mmsi] = s
	}
	return out
}

// FrequentRoutes returns the busiest origin–destination pairs with at
// least minTrips trips, ordered by descending count — the "corridors"
// of the paper's motion-pattern analytics.
func (m *MOD) FrequentRoutes(minTrips int) []struct {
	Pair  ODPair
	Count int
} {
	var out []struct {
		Pair  ODPair
		Count int
	}
	for pair, n := range m.ODMatrix() {
		if n >= minTrips {
			out = append(out, struct {
				Pair  ODPair
				Count int
			}{pair, n})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].Pair.Origin != out[j].Pair.Origin {
			return out[i].Pair.Origin < out[j].Pair.Origin
		}
		return out[i].Pair.Dest < out[j].Pair.Dest
	})
	return out
}
