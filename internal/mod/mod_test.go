package mod

import (
	"strings"
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/tracker"
)

var t0 = time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)

func testPorts() []PortArea {
	sq := func(lon, lat float64) *geo.Polygon {
		return geo.MustPolygon([]geo.Point{
			{Lon: lon - 0.01, Lat: lat - 0.01},
			{Lon: lon + 0.01, Lat: lat - 0.01},
			{Lon: lon + 0.01, Lat: lat + 0.01},
			{Lon: lon - 0.01, Lat: lat + 0.01},
		})
	}
	return []PortArea{
		{Name: "Piraeus", Poly: sq(23.63, 37.94)},
		{Name: "Heraklion", Poly: sq(25.14, 35.345)},
	}
}

// cp builds a critical point.
func cp(mmsi uint32, lon, lat float64, at time.Duration, et tracker.EventType) tracker.CriticalPoint {
	return tracker.CriticalPoint{
		MMSI: mmsi, Pos: geo.Point{Lon: lon, Lat: lat}, Time: t0.Add(at), Type: et,
	}
}

// voyagePoints returns a synthetic delta stream: depart Piraeus, cruise,
// stop at Heraklion, cruise back, stop at Piraeus.
func voyagePoints(mmsi uint32) []tracker.CriticalPoint {
	return []tracker.CriticalPoint{
		cp(mmsi, 23.63, 37.94, 0, tracker.EventStopEnd), // docked at Piraeus
		cp(mmsi, 23.80, 37.60, 1*time.Hour, tracker.EventTurn),
		cp(mmsi, 24.40, 36.60, 3*time.Hour, tracker.EventSpeedChange),
		cp(mmsi, 25.14, 35.345, 6*time.Hour, tracker.EventStopStart), // arrive Heraklion
		cp(mmsi, 25.14, 35.345, 8*time.Hour, tracker.EventStopEnd),   // depart Heraklion
		cp(mmsi, 24.40, 36.60, 11*time.Hour, tracker.EventTurn),
		cp(mmsi, 23.63, 37.94, 14*time.Hour, tracker.EventStopStart), // arrive Piraeus
	}
}

func TestReconstructSegmentsTrips(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	n := m.ReconstructAndLoad()
	// Stops: Piraeus@0 (origin anchor; the segment to it is degenerate),
	// Heraklion@6h (trip 1), Heraklion@8h (same port, degenerate),
	// Piraeus@14h (trip 2).
	if n != 2 {
		t.Fatalf("trips reconstructed = %d, want 2", n)
	}
	trips := m.TripsOf(1)
	if len(trips) != 2 {
		t.Fatalf("trips = %d", len(trips))
	}
	if trips[0].Origin != "Piraeus" || trips[0].Dest != "Heraklion" {
		t.Errorf("trip 1 = %s → %s", trips[0].Origin, trips[0].Dest)
	}
	if trips[1].Origin != "Heraklion" || trips[1].Dest != "Piraeus" {
		t.Errorf("trip 2 = %s → %s", trips[1].Origin, trips[1].Dest)
	}
	if d := trips[0].DistanceMeters(); d < 200000 || d > 500000 {
		t.Errorf("trip 1 distance = %.0f m", d)
	}
	if trips[0].Duration() != 6*time.Hour {
		t.Errorf("trip 1 duration = %v", trips[0].Duration())
	}
}

func TestReconstructUnknownOrigin(t *testing.T) {
	// Vessel first seen mid-sea: its first trip has an unknown origin.
	m := New(testPorts())
	pts := []tracker.CriticalPoint{
		cp(2, 24.5, 36.8, 0, tracker.EventFirst),
		cp(2, 24.9, 36.0, 2*time.Hour, tracker.EventTurn),
		cp(2, 25.14, 35.345, 4*time.Hour, tracker.EventStopStart),
	}
	m.Stage(pts)
	if n := m.ReconstructAndLoad(); n != 1 {
		t.Fatalf("trips = %d, want 1", n)
	}
	trip := m.Trips()[0]
	if trip.Origin != "" {
		t.Errorf("origin = %q, want unknown", trip.Origin)
	}
	if trip.Dest != "Heraklion" {
		t.Errorf("dest = %q", trip.Dest)
	}
	if !strings.Contains(trip.String(), "?→Heraklion") {
		t.Errorf("String() = %q", trip.String())
	}
}

func TestReconstructLeavesOpenTripStaged(t *testing.T) {
	m := New(testPorts())
	pts := voyagePoints(3)
	// Add a tail after the last port stop: an open-ended trip.
	pts = append(pts,
		cp(3, 23.8, 37.7, 15*time.Hour, tracker.EventTurn),
		cp(3, 24.0, 37.3, 16*time.Hour, tracker.EventSpeedChange),
	)
	m.Stage(pts)
	m.ReconstructAndLoad()
	// The anchor stop plus the two tail points remain staged.
	if got := m.StagedCount(); got != 3 {
		t.Errorf("staged = %d, want 3", got)
	}
	// A later batch completing the journey closes the trip.
	m.Stage([]tracker.CriticalPoint{
		cp(3, 25.14, 35.345, 20*time.Hour, tracker.EventStopStart),
	})
	if n := m.ReconstructAndLoad(); n != 1 {
		t.Errorf("second pass trips = %d, want 1", n)
	}
}

func TestReconstructIncrementalEqualsOneShot(t *testing.T) {
	pts := voyagePoints(4)
	oneShot := New(testPorts())
	oneShot.Stage(pts)
	oneShot.ReconstructAndLoad()

	incr := New(testPorts())
	for _, p := range pts {
		incr.Stage([]tracker.CriticalPoint{p})
		incr.ReconstructAndLoad()
	}
	a, b := oneShot.Trips(), incr.Trips()
	if len(a) != len(b) {
		t.Fatalf("one-shot %d trips, incremental %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Origin != b[i].Origin || a[i].Dest != b[i].Dest ||
			len(a[i].Points) != len(b[i].Points) {
			t.Errorf("trip %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestNoTripForDockedVessel(t *testing.T) {
	m := New(testPorts())
	// A vessel at anchor: repeated stops at the same port.
	m.Stage([]tracker.CriticalPoint{
		cp(5, 23.63, 37.94, 0, tracker.EventStopEnd),
		cp(5, 23.631, 37.941, 2*time.Hour, tracker.EventStopStart),
		cp(5, 23.631, 37.941, 5*time.Hour, tracker.EventStopEnd),
	})
	if n := m.ReconstructAndLoad(); n != 0 {
		t.Errorf("docked vessel produced %d trips", n)
	}
}

func TestTable4Stats(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	m.Stage(voyagePoints(2))
	m.ReconstructAndLoad()
	t4 := m.Table4Stats()
	if t4.Trips != 4 {
		t.Fatalf("trips = %d, want 4", t4.Trips)
	}
	if t4.AvgTripsPerVessel != 2 {
		t.Errorf("avg trips/vessel = %v, want 2", t4.AvgTripsPerVessel)
	}
	if t4.AvgPointsPerTrip < 3 || t4.AvgPointsPerTrip > 5 {
		t.Errorf("avg points/trip = %v", t4.AvgPointsPerTrip)
	}
	if t4.AvgTravelTime != 6*time.Hour {
		t.Errorf("avg travel time = %v", t4.AvgTravelTime)
	}
	if t4.AvgDistanceMeters < 200000 {
		t.Errorf("avg distance = %v", t4.AvgDistanceMeters)
	}
	var sb strings.Builder
	t4.Write(&sb)
	if !strings.Contains(sb.String(), "Number of trips between ports") {
		t.Error("Write missing table rows")
	}
}

func TestODMatrixAndFrequentRoutes(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	m.Stage(voyagePoints(2))
	m.ReconstructAndLoad()
	od := m.ODMatrix()
	if od[ODPair{"Piraeus", "Heraklion"}] != 2 {
		t.Errorf("OD[Piraeus→Heraklion] = %d, want 2", od[ODPair{"Piraeus", "Heraklion"}])
	}
	routes := m.FrequentRoutes(2)
	if len(routes) != 2 {
		t.Fatalf("frequent routes = %d, want 2", len(routes))
	}
	if routes[0].Count != 2 {
		t.Errorf("top route count = %d", routes[0].Count)
	}
}

func TestVesselStats(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(9))
	m.ReconstructAndLoad()
	stats := m.VesselStats()
	s, ok := stats[9]
	if !ok {
		t.Fatal("no stats for vessel 9")
	}
	if s.Trips != 2 {
		t.Errorf("trips = %d", s.Trips)
	}
	if len(s.VisitedPorts) != 2 {
		t.Errorf("visited ports = %v", s.VisitedPorts)
	}
}

func TestRangeQuery(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	m.ReconstructAndLoad()
	// Box around the mid-sea waypoint, covering the first trip's times.
	box := geo.BBox{MinLon: 24.3, MinLat: 36.5, MaxLon: 24.5, MaxLat: 36.7}
	got := m.RangeQuery(box, t0, t0.Add(4*time.Hour))
	if len(got) != 1 {
		t.Fatalf("range query = %d trips, want 1", len(got))
	}
	// Same box, but a time interval when the vessel was elsewhere.
	got = m.RangeQuery(box, t0.Add(5*time.Hour), t0.Add(7*time.Hour))
	if len(got) != 0 {
		t.Errorf("out-of-time range query = %d trips", len(got))
	}
	// A box nowhere near the route.
	far := geo.BBox{MinLon: 20, MinLat: 39, MaxLon: 20.5, MaxLat: 39.5}
	if got := m.RangeQuery(far, t0, t0.Add(24*time.Hour)); len(got) != 0 {
		t.Errorf("far range query = %d trips", len(got))
	}
}

func TestNearestTrips(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	m.ReconstructAndLoad()
	got := m.NearestTrips(geo.Point{Lon: 24.4, Lat: 36.6}, 1)
	if len(got) != 1 {
		t.Fatalf("nearest = %d", len(got))
	}
	if got[0].Dest != "Heraklion" && got[0].Dest != "Piraeus" {
		t.Errorf("unexpected trip %v", got[0])
	}
	if got := m.NearestTrips(geo.Point{}, 10); len(got) != 2 {
		t.Errorf("k larger than store: %d trips", len(got))
	}
}

func TestSimilarity(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	m.Stage(voyagePoints(2))
	m.ReconstructAndLoad()
	t1 := m.TripsOf(1)
	t2 := m.TripsOf(2)
	// Identical itineraries: outbound trips are maximally similar.
	if d := Similarity(t1[0], t2[0], 16); d > 1 {
		t.Errorf("identical trips similarity = %.1f m", d)
	}
	// Outbound vs return differ along the path midpoints in time.
	if d := Similarity(t1[0], t1[1], 16); d < 10000 {
		t.Errorf("opposite trips similarity = %.1f m, expected large", d)
	}
}

func TestPositionAt(t *testing.T) {
	m := New(testPorts())
	m.Stage(voyagePoints(1))
	m.ReconstructAndLoad()
	// Mid-way through the first trip (hour 3 of Piraeus→Heraklion).
	p, ok := m.PositionAt(1, t0.Add(3*time.Hour))
	if !ok {
		t.Fatal("no position for an archived instant")
	}
	if d := geo.Haversine(p, geo.Point{Lon: 24.40, Lat: 36.60}); d > 1000 {
		t.Errorf("position %.0f m from the trip's mid waypoint", d)
	}
	// An instant covered only by staged (unassigned) points.
	m.Stage([]tracker.CriticalPoint{
		cp(2, 24.0, 37.0, 0, tracker.EventFirst),
		cp(2, 25.0, 36.5, 2*time.Hour, tracker.EventTurn),
	})
	if _, ok := m.PositionAt(2, t0.Add(time.Hour)); !ok {
		t.Error("staged trajectory not consulted")
	}
	// Outside any coverage.
	if _, ok := m.PositionAt(1, t0.Add(-time.Hour)); ok {
		t.Error("position invented before first contact")
	}
	if _, ok := m.PositionAt(999, t0); ok {
		t.Error("position for unknown vessel")
	}
}
