package mod

import (
	"sort"
	"time"
)

// Granular aggregates (paper §3.3): "a series of derived tables can
// offer historical information about traveled distances and travel
// times per ship, idle periods at dock, visited ports, etc. Such
// aggregates may be obtained at various time granularities (e.g., per
// week, month, or year)".

// Granularity buckets trips by the calendar period of their start.
type Granularity int

// Granularities.
const (
	ByDay Granularity = iota
	ByWeek
	ByMonth
)

// String names the granularity.
func (g Granularity) String() string {
	return []string{"day", "week", "month"}[g]
}

// bucket truncates t to the start of its period.
func (g Granularity) bucket(t time.Time) time.Time {
	u := t.UTC()
	switch g {
	case ByDay:
		return time.Date(u.Year(), u.Month(), u.Day(), 0, 0, 0, 0, time.UTC)
	case ByWeek:
		// ISO-ish week: truncate to the preceding Monday.
		d := time.Date(u.Year(), u.Month(), u.Day(), 0, 0, 0, 0, time.UTC)
		for d.Weekday() != time.Monday {
			d = d.AddDate(0, 0, -1)
		}
		return d
	default:
		return time.Date(u.Year(), u.Month(), 1, 0, 0, 0, 0, time.UTC)
	}
}

// PeriodStats aggregates the trips starting within one period.
type PeriodStats struct {
	Period         time.Time // period start
	Trips          int
	Vessels        int // distinct vessels that sailed
	DistanceMeters float64
	TravelTime     time.Duration
}

// AggregateTrips buckets the archive by the given granularity, sorted
// by period.
func (m *MOD) AggregateTrips(g Granularity) []PeriodStats {
	byPeriod := make(map[time.Time]*PeriodStats)
	vessels := make(map[time.Time]map[uint32]bool)
	for _, t := range m.trips {
		p := g.bucket(t.Start)
		s := byPeriod[p]
		if s == nil {
			s = &PeriodStats{Period: p}
			byPeriod[p] = s
			vessels[p] = make(map[uint32]bool)
		}
		s.Trips++
		s.DistanceMeters += t.DistanceMeters()
		s.TravelTime += t.Duration()
		vessels[p][t.MMSI] = true
	}
	out := make([]PeriodStats, 0, len(byPeriod))
	for p, s := range byPeriod {
		s.Vessels = len(vessels[p])
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Period.Before(out[j].Period) })
	return out
}

// IdlePeriod is a docked interval between two consecutive trips of one
// vessel at the same port.
type IdlePeriod struct {
	MMSI  uint32
	Port  string
	Start time.Time
	End   time.Time
}

// Duration returns the idle time at dock.
func (p IdlePeriod) Duration() time.Duration { return p.End.Sub(p.Start) }

// IdlePeriods derives the docked intervals between consecutive trips
// per vessel: the gap between arriving at a port and departing on the
// next trip whose origin is that port.
func (m *MOD) IdlePeriods() []IdlePeriod {
	var out []IdlePeriod
	byVessel := make(map[uint32][]*Trip)
	for _, t := range m.trips {
		byVessel[t.MMSI] = append(byVessel[t.MMSI], t)
	}
	mmsis := make([]uint32, 0, len(byVessel))
	for mmsi := range byVessel {
		mmsis = append(mmsis, mmsi)
	}
	sort.Slice(mmsis, func(i, j int) bool { return mmsis[i] < mmsis[j] })
	for _, mmsi := range mmsis {
		trips := byVessel[mmsi]
		sort.Slice(trips, func(i, j int) bool { return trips[i].Start.Before(trips[j].Start) })
		for i := 1; i < len(trips); i++ {
			prev, next := trips[i-1], trips[i]
			if prev.Dest != next.Origin || !next.Start.After(prev.End) {
				continue
			}
			out = append(out, IdlePeriod{
				MMSI: mmsi, Port: prev.Dest, Start: prev.End, End: next.Start,
			})
		}
	}
	return out
}
