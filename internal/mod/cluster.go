package mod

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

// Spatiotemporal trip clustering (paper §3.3): "Hermes MOD incorporates
// an algorithm for spatiotemporal clustering, which can help exploring
// periodicity of trips. Indeed, two (or more) trajectory clusters may
// be almost identical spatially, but they are distinct because the
// temporal dimension is taken into consideration when calculating
// distances between pairs of trajectory segments."
//
// The implementation is k-medoids over a spatiotemporal trip distance:
// the spatial term samples both paths at aligned fractions of their
// durations (as in Similarity), and the temporal term compares
// time-of-day of departure, so spatially identical itineraries sailed
// at different hours separate into distinct clusters.

// ClusterOptions parameterizes TripClusters.
type ClusterOptions struct {
	// K is the number of clusters.
	K int
	// TemporalWeight converts departure-time difference into meters of
	// equivalent distance: a weight of 20 makes one hour of time-of-day
	// difference count like 72 km of spatial separation. Zero clusters
	// purely spatially.
	TemporalWeight float64
	// Samples per trip for the spatial term (default 8).
	Samples int
	// MaxIterations bounds the medoid refinement (default 20).
	MaxIterations int
	// Seed makes medoid initialization deterministic.
	Seed int64
}

// Cluster is one group of trips around a medoid.
type Cluster struct {
	Medoid *Trip
	Trips  []*Trip
}

// stDistance is the spatiotemporal distance between two trips in
// meters-equivalent.
func stDistance(a, b *Trip, samples int, temporalWeight float64) float64 {
	d := Similarity(a, b, samples)
	if temporalWeight > 0 {
		d += temporalWeight * timeOfDayDiff(a.Start, b.Start).Seconds()
	}
	return d
}

// timeOfDayDiff returns the circular difference between the
// times-of-day of two instants, in [0, 12h].
func timeOfDayDiff(a, b time.Time) time.Duration {
	au := a.UTC()
	bu := b.UTC()
	secA := au.Hour()*3600 + au.Minute()*60 + au.Second()
	secB := bu.Hour()*3600 + bu.Minute()*60 + bu.Second()
	d := secA - secB
	if d < 0 {
		d = -d
	}
	if d > 43200 {
		d = 86400 - d
	}
	return time.Duration(d) * time.Second
}

// TripClusters clusters the given trips with k-medoids under the
// spatiotemporal distance. Fewer trips than K yields one singleton
// cluster per trip. The result is deterministic for a fixed seed, with
// clusters ordered by descending size.
func TripClusters(trips []*Trip, opt ClusterOptions) []Cluster {
	if opt.K <= 0 {
		opt.K = 2
	}
	if opt.Samples <= 0 {
		opt.Samples = 8
	}
	if opt.MaxIterations <= 0 {
		opt.MaxIterations = 20
	}
	n := len(trips)
	if n == 0 {
		return nil
	}
	if n <= opt.K {
		out := make([]Cluster, n)
		for i, t := range trips {
			out[i] = Cluster{Medoid: t, Trips: []*Trip{t}}
		}
		return out
	}

	// Precompute the pairwise distance matrix; trip counts here are
	// archive-scale (thousands at most), so O(n²) is acceptable offline.
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := stDistance(trips[i], trips[j], opt.Samples, opt.TemporalWeight)
			dist[i][j] = d
			dist[j][i] = d
		}
	}

	// Initialize medoids: first at random, the rest maximally distant
	// from chosen ones (a deterministic k-means++-like seeding).
	rng := rand.New(rand.NewSource(opt.Seed))
	medoids := []int{rng.Intn(n)}
	for len(medoids) < opt.K {
		best, bestD := -1, -1.0
		for i := 0; i < n; i++ {
			nearest := math.Inf(1)
			for _, m := range medoids {
				if dist[i][m] < nearest {
					nearest = dist[i][m]
				}
			}
			if nearest > bestD {
				best, bestD = i, nearest
			}
		}
		medoids = append(medoids, best)
	}

	assign := make([]int, n)
	assignAll := func() {
		for i := 0; i < n; i++ {
			bestK, bestD := 0, math.Inf(1)
			for k, m := range medoids {
				if dist[i][m] < bestD {
					bestK, bestD = k, dist[i][m]
				}
			}
			assign[i] = bestK
		}
	}
	assignAll()

	for iter := 0; iter < opt.MaxIterations; iter++ {
		changed := false
		for k := range medoids {
			// The new medoid minimizes the total distance to its cluster.
			bestM, bestSum := medoids[k], math.Inf(1)
			for i := 0; i < n; i++ {
				if assign[i] != k {
					continue
				}
				sum := 0.0
				for j := 0; j < n; j++ {
					if assign[j] == k {
						sum += dist[i][j]
					}
				}
				if sum < bestSum {
					bestM, bestSum = i, sum
				}
			}
			if bestM != medoids[k] {
				medoids[k] = bestM
				changed = true
			}
		}
		if !changed {
			break
		}
		assignAll()
	}

	out := make([]Cluster, len(medoids))
	for k, m := range medoids {
		out[k] = Cluster{Medoid: trips[m]}
	}
	for i, k := range assign {
		out[k].Trips = append(out[k].Trips, trips[i])
	}
	sort.SliceStable(out, func(i, j int) bool { return len(out[i].Trips) > len(out[j].Trips) })
	return out
}
