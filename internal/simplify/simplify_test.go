package simplify

import (
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/tracker"
)

var t0 = time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)

// leg appends n fixes on a heading at a speed, one per minute.
func leg(fixes []ais.Fix, start geo.Point, heading, speedKn float64, n int) []ais.Fix {
	pos, tm := start, t0
	if len(fixes) > 0 {
		pos = fixes[len(fixes)-1].Pos
		tm = fixes[len(fixes)-1].Time
	}
	step := geo.KnotsToMetersPerSecond(speedKn) * 60
	for i := 0; i < n; i++ {
		tm = tm.Add(time.Minute)
		pos = geo.Destination(pos, heading, step)
		fixes = append(fixes, ais.Fix{MMSI: 1, Pos: pos, Time: tm})
	}
	return fixes
}

func TestDouglasPeuckerStraightLineKeepsEndpoints(t *testing.T) {
	fixes := leg(nil, geo.Point{Lon: 24, Lat: 37}, 90, 12, 50)
	got := DouglasPeucker(fixes, 50)
	if len(got) != 2 {
		t.Fatalf("straight line simplified to %d points, want 2", len(got))
	}
	if got[0] != fixes[0] || got[1] != fixes[len(fixes)-1] {
		t.Error("endpoints not preserved")
	}
}

func TestDouglasPeuckerKeepsCorner(t *testing.T) {
	a := leg(nil, geo.Point{Lon: 24, Lat: 37}, 0, 12, 20)
	fixes := leg(a, geo.Point{}, 90, 12, 20)
	got := DouglasPeucker(fixes, 100)
	if len(got) < 3 {
		t.Fatalf("corner lost: %d points", len(got))
	}
	// The corner fix (index 19) must survive.
	found := false
	for _, f := range got {
		if f.Time.Equal(fixes[19].Time) {
			found = true
		}
	}
	if !found {
		t.Error("the turning point was discarded")
	}
	// The simplification must respect the SED bound everywhere.
	syn := make(tracker.Synopsis, len(got))
	for i, f := range got {
		syn[i] = tracker.CriticalPoint{MMSI: f.MMSI, Pos: f.Pos, Time: f.Time}
	}
	for _, f := range fixes {
		approx, _ := syn.At(f.Time)
		if d := geo.Haversine(f.Pos, approx); d > 100+1 {
			t.Fatalf("SED bound violated: %.1f m at %v", d, f.Time)
		}
	}
}

func TestDouglasPeuckerToleranceMonotone(t *testing.T) {
	a := leg(nil, geo.Point{Lon: 24, Lat: 37}, 0, 12, 30)
	b := leg(a, geo.Point{}, 70, 12, 30)
	fixes := leg(b, geo.Point{}, 140, 12, 30)
	prev := len(fixes) + 1
	for _, tol := range []float64{10, 50, 200, 1000, 10000} {
		n := len(DouglasPeucker(fixes, tol))
		if n > prev {
			t.Fatalf("point count grew with tolerance %v: %d > %d", tol, n, prev)
		}
		prev = n
	}
}

func TestDouglasPeuckerSmallInputs(t *testing.T) {
	if got := DouglasPeucker(nil, 10); len(got) != 0 {
		t.Error("nil input")
	}
	one := leg(nil, geo.Point{Lon: 24, Lat: 37}, 90, 10, 1)
	if got := DouglasPeucker(one, 10); len(got) != 1 {
		t.Error("single fix")
	}
	two := leg(one, geo.Point{}, 90, 10, 1)
	if got := DouglasPeucker(two, 10); len(got) != 2 {
		t.Error("two fixes")
	}
}

func TestAtRatioHitsTarget(t *testing.T) {
	a := leg(nil, geo.Point{Lon: 24, Lat: 37}, 0, 12, 60)
	b := leg(a, geo.Point{}, 75, 12, 60)
	fixes := leg(b, geo.Point{}, 150, 12, 60)
	got, tol := AtRatio(fixes, 0.90, 16)
	ratio := 1 - float64(len(got))/float64(len(fixes))
	if ratio < 0.80 || ratio > 0.99 {
		t.Errorf("achieved ratio %.3f (tolerance %.1f), want ≈0.90", ratio, tol)
	}
}
