// Package simplify implements the classic offline trajectory
// simplification the paper positions itself against: top-down
// Douglas–Peucker over the synchronized Euclidean distance (SED), the
// spatiotemporal variant used by the compression literature the paper
// cites (§6: Cao/Wolfson/Trajcevski; Meratnia & de By). The paper's
// §3.2 choice — "instead of resorting to a costly simplification
// algorithm, we opt to reconstruct vessel traces approximately from
// already available critical points" — is evaluated in
// internal/expbench by comparing this baseline against the online
// tracker at matched compression.
package simplify

import (
	"repro/internal/ais"
	"repro/internal/geo"
)

// sed returns the synchronized Euclidean distance of fix p from the
// time-parameterized segment a→b: the Haversine distance between p and
// the point the vessel would occupy at p's timestamp under constant
// velocity from a to b.
func sed(p, a, b ais.Fix) float64 {
	span := b.Time.Sub(a.Time).Seconds()
	if span <= 0 {
		return geo.Haversine(p.Pos, a.Pos)
	}
	f := p.Time.Sub(a.Time).Seconds() / span
	if f < 0 {
		f = 0
	} else if f > 1 {
		f = 1
	}
	return geo.Haversine(p.Pos, geo.Interpolate(a.Pos, b.Pos, f))
}

// DouglasPeucker simplifies the trajectory to the points whose SED
// exceeds tolerance meters, always retaining the endpoints. The input
// must be in time order; the output preserves it.
func DouglasPeucker(fixes []ais.Fix, toleranceMeters float64) []ais.Fix {
	if len(fixes) <= 2 {
		return append([]ais.Fix(nil), fixes...)
	}
	keep := make([]bool, len(fixes))
	keep[0], keep[len(fixes)-1] = true, true

	type span struct{ lo, hi int }
	stack := []span{{0, len(fixes) - 1}}
	for len(stack) > 0 {
		s := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if s.hi-s.lo < 2 {
			continue
		}
		worstI, worstD := -1, toleranceMeters
		for i := s.lo + 1; i < s.hi; i++ {
			if d := sed(fixes[i], fixes[s.lo], fixes[s.hi]); d > worstD {
				worstI, worstD = i, d
			}
		}
		if worstI < 0 {
			continue
		}
		keep[worstI] = true
		stack = append(stack, span{s.lo, worstI}, span{worstI, s.hi})
	}

	out := make([]ais.Fix, 0, len(fixes)/4)
	for i, k := range keep {
		if k {
			out = append(out, fixes[i])
		}
	}
	return out
}

// AtRatio simplifies to approximately the target compression ratio
// (fraction of points discarded) by bisecting the tolerance — how the
// baseline is matched against the online tracker's compression for a
// fair RMSE comparison. It returns the simplified trajectory and the
// tolerance that achieved it.
func AtRatio(fixes []ais.Fix, targetRatio float64, iterations int) ([]ais.Fix, float64) {
	if len(fixes) <= 2 {
		return append([]ais.Fix(nil), fixes...), 0
	}
	if iterations <= 0 {
		iterations = 12
	}
	lo, hi := 0.0, 50000.0
	best := append([]ais.Fix(nil), fixes...)
	bestTol := 0.0
	for i := 0; i < iterations; i++ {
		tol := (lo + hi) / 2
		got := DouglasPeucker(fixes, tol)
		ratio := 1 - float64(len(got))/float64(len(fixes))
		best, bestTol = got, tol
		if ratio < targetRatio {
			lo = tol // not aggressive enough
		} else {
			hi = tol
		}
	}
	return best, bestTol
}
