package alertlog

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
)

// TailOptions configures a Tailer.
type TailOptions struct {
	// MinPoll/MaxPoll bound the idle backoff: after an empty poll the
	// wait doubles from MinPoll up to MaxPoll, and resets on the first
	// delivered batch (defaults 5ms / 250ms).
	MinPoll time.Duration
	MaxPoll time.Duration
	// MaxBatch bounds one poll's delivery (≤ 0: 1024 records).
	MaxBatch int
}

// TailerStats is one replica's tailing accounting.
type TailerStats struct {
	// Applied is the newest sequence delivered to the sink.
	Applied uint64 `json:"applied"`
	// Skipped counts sequences the reader had to jump (pruned or
	// corrupt ranges) — loss surfaced, never hidden.
	Skipped uint64 `json:"skipped"`
	Polls   uint64 `json:"polls"`
	Batches uint64 `json:"batches"`
	Records uint64 `json:"records"`
	Errors  uint64 `json:"errors"`
}

// Tailer drives one replica: it polls the log with backoff, resumes
// from its last applied sequence, and hands each batch to the sink (the
// replica hub's PublishEnvelopes) in order. One goroutine runs Run; the
// stats are safe to read concurrently.
type Tailer struct {
	dir  string
	sink func([]serve.Envelope)
	opt  TailOptions

	mu sync.Mutex
	r  *Reader
	st TailerStats
}

// NewTailer returns a tailer resuming after afterSeq (0 = from the
// oldest retained record).
func NewTailer(dir string, afterSeq uint64, sink func([]serve.Envelope), opt TailOptions) *Tailer {
	if opt.MinPoll <= 0 {
		opt.MinPoll = 5 * time.Millisecond
	}
	if opt.MaxPoll <= 0 {
		opt.MaxPoll = 250 * time.Millisecond
	}
	if opt.MaxBatch <= 0 {
		opt.MaxBatch = 1024
	}
	return &Tailer{
		dir:  dir,
		sink: sink,
		opt:  opt,
		r:    NewReader(dir, afterSeq),
	}
}

// Poll performs one read-and-deliver step, returning how many records
// it applied. Tests drive it directly for determinism; Run loops it.
func (t *Tailer) Poll() (int, error) {
	t.mu.Lock()
	batch, err := t.r.Next(t.opt.MaxBatch)
	t.st.Polls++
	if err != nil {
		t.st.Errors++
	}
	if len(batch) > 0 {
		t.st.Batches++
		t.st.Records += uint64(len(batch))
		t.st.Applied = batch[len(batch)-1].Seq
	}
	t.st.Skipped = t.r.Skipped()
	t.mu.Unlock()
	if len(batch) > 0 {
		t.sink(batch)
	}
	return len(batch), err
}

// Run tails until ctx is done.
func (t *Tailer) Run(ctx context.Context) {
	backoff := t.opt.MinPoll
	for ctx.Err() == nil {
		n, err := t.Poll()
		if n > 0 && err == nil {
			backoff = t.opt.MinPoll
			continue
		}
		select {
		case <-ctx.Done():
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > t.opt.MaxPoll {
			backoff = t.opt.MaxPoll
		}
	}
	t.mu.Lock()
	t.r.Close()
	t.mu.Unlock()
}

// Stats snapshots the tailer's accounting.
func (t *Tailer) Stats() TailerStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st
}

// Applied returns the newest sequence delivered to the sink.
func (t *Tailer) Applied() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.st.Applied
}

// Lag returns how many durable records the replica has not applied yet
// (it scans the newest segment; call it from scrape paths, not loops).
func (t *Tailer) Lag() uint64 {
	tail := TailSeq(t.dir)
	applied := t.Applied()
	if tail <= applied {
		return 0
	}
	return tail - applied
}

// RegisterMetrics exposes the replica's tail position on the registry.
// replica labels the series so several replicas can share a scrape.
func (t *Tailer) RegisterMetrics(r *obs.Registry, replica string) {
	labels := obs.Labels{"replica": replica}
	r.GaugeFunc("maritime_alertlog_tail_applied", "Newest log sequence applied by this replica.", labels,
		func() float64 { return float64(t.Applied()) })
	r.GaugeFunc("maritime_alertlog_tail_lag", "Durable records not yet applied by this replica.", labels,
		func() float64 { return float64(t.Lag()) })
	r.CounterFunc("maritime_alertlog_tail_records_total", "Records applied by this replica.", labels,
		func() float64 { return float64(t.Stats().Records) })
	r.CounterFunc("maritime_alertlog_tail_skipped_total", "Sequences this replica had to jump (pruned or corrupt).", labels,
		func() float64 { return float64(t.Stats().Skipped) })
	r.CounterFunc("maritime_alertlog_tail_polls_total", "Log polls by this replica.", labels,
		func() float64 { return float64(t.Stats().Polls) })
	r.CounterFunc("maritime_alertlog_tail_errors_total", "Failed log polls.", labels,
		func() float64 { return float64(t.Stats().Errors) })
}
