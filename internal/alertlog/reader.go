package alertlog

import (
	"encoding/json"
	"errors"
	"io"
	"os"

	"repro/internal/durable"
	"repro/internal/serve"
)

// Reader follows the log from a sequence cursor, caching its file
// position between polls so tailing the active segment is incremental,
// not a rescan. It is safe against everything a live log does under
// it: a half-flushed frame at the tail reads as "no more data yet", a
// rotation advances it to the next segment, a prune ahead of the
// cursor skips forward with the loss counted, and a writer-restart
// truncation behind the cursor rewinds and deduplicates by sequence.
type Reader struct {
	dir  string
	next uint64 // next expected sequence (applied + 1)

	f        *os.File
	offset   int64
	segStart uint64

	skipped uint64 // records jumped over because retention pruned them
}

// NewReader positions a reader so its first delivered record has
// sequence > afterSeq (0 = from the oldest retained record).
func NewReader(dir string, afterSeq uint64) *Reader {
	return &Reader{dir: dir, next: afterSeq + 1}
}

// Skipped returns how many sequence numbers the reader had to jump
// because retention pruned them before it caught up.
func (r *Reader) Skipped() uint64 { return r.skipped }

// Next returns up to max envelopes after the cursor, oldest first. An
// empty batch with a nil error means "caught up — poll again later".
func (r *Reader) Next(max int) ([]serve.Envelope, error) {
	if max <= 0 {
		max = 1024
	}
	var out []serve.Envelope
	for len(out) < max {
		if r.f == nil {
			ok, err := r.open()
			if err != nil {
				return out, err
			}
			if !ok {
				return out, nil // nothing (new) to read yet
			}
		}
		n, scanErr, err := r.scan(&out, max)
		if err != nil {
			return out, err
		}
		if scanErr != nil || n == 0 {
			// Either a torn tail or a clean end of the current segment.
			// If a newer segment exists this one is sealed: a torn tail
			// here is permanent corruption, and a clean end means the
			// reader should move on. Otherwise wait for the writer.
			advanced, err := r.advance(scanErr != nil)
			if err != nil {
				return out, err
			}
			if !advanced {
				return out, nil
			}
		}
	}
	return out, nil
}

// open locates the segment containing the cursor and opens it. It
// returns false when the log has no segment for the cursor yet.
func (r *Reader) open() (bool, error) {
	segs, err := listSegments(r.dir)
	if err != nil {
		return false, err
	}
	if len(segs) == 0 {
		return false, nil
	}
	if r.next < segs[0].start {
		// Retention pruned the range the cursor wanted; jump forward
		// and account for every sequence lost to the reader.
		r.skipped += segs[0].start - r.next
		r.next = segs[0].start
	}
	pick := segs[0]
	for _, s := range segs[1:] {
		if s.start <= r.next {
			pick = s
		}
	}
	f, err := os.Open(pick.path)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return false, nil // pruned between list and open; next poll realigns
		}
		return false, err
	}
	r.f = f
	r.offset = 0
	r.segStart = pick.start
	return true, nil
}

// scan reads frames from the cached offset, appending records past the
// cursor to out. It returns how many records were appended, the frame
// scan's terminal condition (torn/corrupt tail), and any I/O error.
func (r *Reader) scan(out *[]serve.Envelope, max int) (int, error, error) {
	info, err := r.f.Stat()
	if err != nil {
		return 0, nil, err
	}
	if info.Size() < r.offset {
		// The writer restarted and recovery truncated behind us; reread
		// from the top — records below the cursor deduplicate by seq.
		r.offset = 0
	}
	if info.Size() == r.offset {
		return 0, nil, nil
	}
	if _, err := r.f.Seek(r.offset, io.SeekStart); err != nil {
		return 0, nil, err
	}
	n := 0
	valid, _, scanErr := durable.ScanFrames(r.f, recordMagic, recordVersion,
		func(payload []byte, _ uint16) bool {
			var e serve.Envelope
			if json.Unmarshal(payload, &e) != nil {
				return true // framing was valid; skip the record
			}
			if e.Seq < r.next {
				return true // duplicate below the cursor
			}
			if e.Seq > r.next {
				r.skipped += e.Seq - r.next
			}
			*out = append(*out, e)
			r.next = e.Seq + 1
			n++
			return n < max
		})
	r.offset += valid
	if scanErr != nil && (errors.Is(scanErr, durable.ErrTruncated) ||
		errors.Is(scanErr, durable.ErrChecksum) || errors.Is(scanErr, durable.ErrBadMagic)) {
		return n, scanErr, nil
	}
	return n, nil, scanErr
}

// advance moves to the next segment when one exists. With torn true the
// current segment's tail was invalid: if the segment is sealed (a newer
// one exists) the tail is permanent loss and the reader steps over it;
// if it is the active segment the writer is mid-append and the reader
// waits.
func (r *Reader) advance(torn bool) (bool, error) {
	segs, err := listSegments(r.dir)
	if err != nil {
		return false, err
	}
	var nextSeg *segFile
	for i := range segs {
		if segs[i].start > r.segStart {
			nextSeg = &segs[i]
			break
		}
	}
	if nextSeg == nil {
		return false, nil // this is the active segment; wait for the writer
	}
	if torn {
		// Sealed segment with an invalid tail: everything up to the next
		// segment's first record is gone for this reader.
		if nextSeg.start > r.next {
			r.skipped += nextSeg.start - r.next
		}
		r.next = nextSeg.start
	}
	r.f.Close()
	f, err := os.Open(nextSeg.path)
	if err != nil {
		r.f = nil
		if errors.Is(err, os.ErrNotExist) {
			return false, nil
		}
		return false, err
	}
	r.f = f
	r.offset = 0
	r.segStart = nextSeg.start
	return true, nil
}

// Close releases the reader's file handle.
func (r *Reader) Close() {
	if r.f != nil {
		r.f.Close()
		r.f = nil
	}
}

// TailSeq returns the newest fully durable record sequence in dir
// (0 = empty log), by scanning the newest segment that holds a valid
// record. Replicas use it to report tail lag without holding the
// writer's state.
func TailSeq(dir string) uint64 {
	segs, err := listSegments(dir)
	if err != nil {
		return 0
	}
	for i := len(segs) - 1; i >= 0; i-- {
		if _, _, _, last, _ := scanSegment(segs[i].path); last != 0 {
			return last
		}
	}
	return 0
}
