package alertlog

import (
	"io"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/maritime"
	"repro/internal/serve"
)

// testEnvs builds n deterministic envelopes with sequences first..first+n-1.
func testEnvs(first uint64, n int) []serve.Envelope {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	out := make([]serve.Envelope, n)
	for i := range out {
		seq := first + uint64(i)
		out[i] = serve.Envelope{
			Seq:       seq,
			Slide:     base.Add(time.Duration(seq) * time.Minute),
			Published: base.Add(time.Duration(seq) * time.Minute),
			Alert: maritime.Alert{
				CE:     "speeding",
				AreaID: "a1",
				Time:   base.Add(time.Duration(seq) * time.Minute),
				Vessel: uint32(237000000 + seq%40),
			},
		}
	}
	return out
}

// seqsOf extracts the sequence numbers of a batch.
func seqsOf(envs []serve.Envelope) []uint64 {
	out := make([]uint64, len(envs))
	for i, e := range envs {
		out[i] = e.Seq
	}
	return out
}

// requireContiguous asserts envs covers exactly first..last once, in order.
func requireContiguous(t *testing.T, envs []serve.Envelope, first, last uint64) {
	t.Helper()
	want := int(last - first + 1)
	if len(envs) != want {
		t.Fatalf("got %d records, want %d (%d..%d); seqs=%v", len(envs), want, first, last, seqsOf(envs))
	}
	for i, e := range envs {
		if e.Seq != first+uint64(i) {
			t.Fatalf("record %d has seq %d, want %d", i, e.Seq, first+uint64(i))
		}
	}
}

// readAll drains the log from afterSeq via a fresh reader.
func readAll(t *testing.T, dir string, afterSeq uint64) []serve.Envelope {
	t.Helper()
	r := NewReader(dir, afterSeq)
	defer r.Close()
	var out []serve.Envelope
	for {
		batch, err := r.Next(256)
		if err != nil {
			t.Fatalf("reader: %v", err)
		}
		if len(batch) == 0 {
			return out
		}
		out = append(out, batch...)
	}
}

func TestAppendReadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(testEnvs(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEnvs(101, 50)); err != nil {
		t.Fatal(err)
	}
	if got := l.LastSeq(); got != 150 {
		t.Fatalf("LastSeq=%d, want 150", got)
	}
	requireContiguous(t, readAll(t, dir, 0), 1, 150)
	// ReadSince respects the cursor.
	envs, err := l.ReadSince(140, 100)
	if err != nil {
		t.Fatal(err)
	}
	requireContiguous(t, envs, 141, 150)
}

func TestRotationAndPruning(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512, KeepSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for seq := uint64(1); seq <= 200; seq += 10 {
		if err := l.Append(testEnvs(seq, 10)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments > 3 {
		t.Fatalf("retention kept %d segments, want ≤ 3", st.Segments)
	}
	if st.PrunedSegments == 0 {
		t.Fatal("expected pruned segments with a 512-byte rotation threshold")
	}
	if st.FirstSeq == 1 {
		t.Fatal("FirstSeq did not advance past the pruned range")
	}
	// A reader starting before the retained range jumps forward and
	// accounts the loss — the log never silently closes a gap.
	r := NewReader(dir, 0)
	defer r.Close()
	var got []serve.Envelope
	for {
		batch, err := r.Next(256)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		got = append(got, batch...)
	}
	requireContiguous(t, got, st.FirstSeq, 200)
	if want := st.FirstSeq - 1; r.Skipped() != want {
		t.Fatalf("reader skipped %d, want %d", r.Skipped(), want)
	}
}

func TestIdempotentAppend(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(testEnvs(1, 10)); err != nil {
		t.Fatal(err)
	}
	// A checkpoint replay re-publishes 5..12: 5..10 must be discarded as
	// already durable, 11..12 appended.
	if err := l.Append(testEnvs(5, 8)); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if st.SkippedDup != 6 {
		t.Fatalf("SkippedDup=%d, want 6", st.SkippedDup)
	}
	if st.LastSeq != 12 {
		t.Fatalf("LastSeq=%d, want 12", st.LastSeq)
	}
	requireContiguous(t, readAll(t, dir, 0), 1, 12)
}

func TestGapCounting(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(testEnvs(1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEnvs(9, 2)); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.GapRecords != 3 {
		t.Fatalf("GapRecords=%d, want 3 (seqs 6..8 never logged)", st.GapRecords)
	}
}

func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEnvs(1, 20)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the final frame: cut the segment mid-record, as a crash
	// between write and fsync would.
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	if err := os.Truncate(segs[0].path, segs[0].size-7); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery refused to open: %v", err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.Truncations != 1 {
		t.Fatalf("Truncations=%d, want 1", st.Truncations)
	}
	if st.TruncatedBytes == 0 {
		t.Fatal("TruncatedBytes not counted")
	}
	if st.LastSeq != 19 {
		t.Fatalf("LastSeq=%d after torn-tail recovery, want 19", st.LastSeq)
	}
	// Every frame before the torn one survived, and the writer resumes
	// exactly after the recovered tail.
	requireContiguous(t, readAll(t, dir, 0), 1, 19)
	if err := l2.Append(testEnvs(20, 5)); err != nil {
		t.Fatal(err)
	}
	requireContiguous(t, readAll(t, dir, 0), 1, 24)
}

func TestCorruptTailRecovery(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEnvs(1, 20)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip bytes inside the newest record's payload: framing length still
	// parses, the CRC must catch it.
	segs, _ := listSegments(dir)
	f, err := os.OpenFile(segs[0].path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, segs[0].size-10); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery refused to open: %v", err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.Truncations != 1 || st.LastSeq != 19 {
		t.Fatalf("Truncations=%d LastSeq=%d, want 1/19", st.Truncations, st.LastSeq)
	}
	requireContiguous(t, readAll(t, dir, 0), 1, 19)
}

func TestCrashWriterLeavesRecoverableTail(t *testing.T) {
	dir := t.TempDir()
	// The crash writer dies mid-frame partway into the stream — the
	// injected equivalent of the process being killed between write and
	// fsync.
	l, err := Open(dir, Options{WrapWriter: func(w io.Writer) io.Writer {
		return faults.NewCrashWriter(w, 2000)
	}})
	if err != nil {
		t.Fatal(err)
	}
	var crashed bool
	for seq := uint64(1); seq <= 100 && !crashed; seq += 5 {
		if err := l.Append(testEnvs(seq, 5)); err != nil {
			crashed = true
		}
	}
	if !crashed {
		t.Fatal("crash writer never fired; raise the record count")
	}
	// No Close: a crashed process does not seal its segment.

	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery refused to open: %v", err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.LastSeq == 0 {
		t.Fatal("recovery found no durable records")
	}
	// The survivors are contiguous from 1 — recovery cut the torn frame,
	// never a frame before it.
	requireContiguous(t, readAll(t, dir, 0), 1, st.LastSeq)
	// Post-restart replay re-appends the whole range: durable records
	// deduplicate, lost ones land again — exactly once end to end.
	if err := l2.Append(testEnvs(1, 100)); err != nil {
		t.Fatal(err)
	}
	requireContiguous(t, readAll(t, dir, 0), 1, 100)
	if l2.Stats().SkippedDup != st.LastSeq {
		t.Fatalf("SkippedDup=%d, want %d", l2.Stats().SkippedDup, st.LastSeq)
	}
}

func TestReaderFollowsRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512, KeepSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	r := NewReader(dir, 0)
	defer r.Close()
	var got []serve.Envelope
	for seq := uint64(1); seq <= 100; seq += 10 {
		if err := l.Append(testEnvs(seq, 10)); err != nil {
			t.Fatal(err)
		}
		// Interleave reads with appends so the reader crosses live
		// rotations, not a finished chain.
		batch, err := r.Next(1024)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, batch...)
	}
	for {
		batch, err := r.Next(1024)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		got = append(got, batch...)
	}
	requireContiguous(t, got, 1, 100)
	if l.Stats().Segments < 3 {
		t.Fatalf("only %d segments; the test did not exercise rotation", l.Stats().Segments)
	}
}

func TestTailSeqAndReplay(t *testing.T) {
	dir := t.TempDir()
	if got := TailSeq(dir); got != 0 {
		t.Fatalf("TailSeq of empty dir = %d, want 0", got)
	}
	l, err := Open(dir, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEnvs(1, 60)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := TailSeq(dir); got != 60 {
		t.Fatalf("TailSeq=%d, want 60", got)
	}
	rp := OpenReplay(dir)
	if got := rp.LastSeq(); got != 60 {
		t.Fatalf("Replay.LastSeq=%d, want 60", got)
	}
	envs, err := rp.ReadSince(50, 100)
	if err != nil {
		t.Fatal(err)
	}
	requireContiguous(t, envs, 51, 60)
	if rp.Append(testEnvs(61, 1)) == nil {
		t.Fatal("read-only replay accepted an append")
	}
}

func TestRecoveryDropsSegmentsPastCorruption(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 512, KeepSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(testEnvs(1, 60)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("need ≥ 3 segments, got %d", len(segs))
	}
	// Corrupt a MIDDLE segment: recovery must end the log there and drop
	// every later segment — otherwise a sequence gap would hide inside
	// the chain.
	mid := segs[len(segs)/2]
	f, err := os.OpenFile(mid.path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xff, 0xff, 0xff}, mid.size/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{SegmentBytes: 512, KeepSegments: 100})
	if err != nil {
		t.Fatalf("recovery refused to open: %v", err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.Truncations != 1 {
		t.Fatalf("Truncations=%d, want 1", st.Truncations)
	}
	if st.LastSeq == 0 || st.LastSeq >= 60 {
		t.Fatalf("LastSeq=%d, want inside (0,60)", st.LastSeq)
	}
	requireContiguous(t, readAll(t, dir, 0), 1, st.LastSeq)
	for _, p := range segsAfter(t, dir, mid.start) {
		t.Fatalf("segment %s survived past the corruption", p)
	}
}

// segsAfter lists segment paths with start > after.
func segsAfter(t *testing.T, dir string, after uint64) []string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, s := range segs {
		if s.start > after {
			out = append(out, filepath.Base(s.path))
		}
	}
	return out
}
