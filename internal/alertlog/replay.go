package alertlog

import (
	"errors"

	"repro/internal/serve"
)

// Replay is a read-only view of a log directory implementing
// serve.EnvelopeLog for replica hubs: reconnecting subscribers replay
// history straight from the segment files without the replica ever
// holding writer state — and, crucially, without running recovery,
// which would truncate files out from under the live writer.
type Replay struct {
	dir string
}

// OpenReplay returns a read-only replay source over dir. The directory
// may be empty or not yet created; reads simply find nothing until the
// writer produces segments.
func OpenReplay(dir string) *Replay { return &Replay{dir: dir} }

// Append always fails: replicas do not write the log.
func (r *Replay) Append([]serve.Envelope) error {
	return errors.New("alertlog: replay source is read-only")
}

// LastSeq returns the newest fully durable sequence (0 = empty log).
func (r *Replay) LastSeq() uint64 { return TailSeq(r.dir) }

// ReadSince returns up to max records with sequence > afterSeq, oldest
// first, reading directly from the segment files.
func (r *Replay) ReadSince(afterSeq uint64, max int) ([]serve.Envelope, error) {
	rd := NewReader(r.dir, afterSeq)
	defer rd.Close()
	return rd.Next(max)
}
