package alertlog

// The chaos suite: kill serving replicas mid-stream, crash the writer
// mid-segment, corrupt the newest segment on disk — and assert the one
// property the tier exists for: a subscriber that reconnects anywhere
// with its Last-Event-ID sees every alert exactly once, byte-identical
// to a consumer that never saw a failure. Run via `make test-alertlog`
// (under -race) or plain `go test ./internal/alertlog/`.

import (
	"context"
	"fmt"
	"io"
	"os"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"net/http/httptest"

	"repro/internal/faults"
	"repro/internal/maritime"
	"repro/internal/serve"
)

// chaosReplica is one stateless serving node under test: its own hub
// fed by its own tailer, serving SSE over an httptest listener.
type chaosReplica struct {
	name   string
	hub    *serve.Hub
	tailer *Tailer
	srv    *httptest.Server
	cancel context.CancelFunc
	done   chan struct{}
}

func startChaosReplica(t *testing.T, dir, name string) *chaosReplica {
	t.Helper()
	hub := serve.NewHub(64) // tiny ring: reconnect replay MUST come from the log
	hub.AttachReplay(OpenReplay(dir))
	tailer := NewTailer(dir, 0, hub.PublishEnvelopes,
		TailOptions{MinPoll: time.Millisecond, MaxPoll: 5 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		tailer.Run(ctx)
	}()
	rp := serve.NewReplica(hub, serve.ReplicaOptions{
		Name:            name,
		SubscriberQueue: 4096,
		Heartbeat:       50 * time.Millisecond,
	})
	r := &chaosReplica{
		name:   name,
		hub:    hub,
		tailer: tailer,
		srv:    httptest.NewServer(rp.Handler()),
		cancel: cancel,
		done:   done,
	}
	t.Cleanup(r.kill)
	return r
}

// kill tears the replica down hard: connections reset, tailer stopped.
// Idempotent so t.Cleanup can re-run it.
func (r *chaosReplica) kill() {
	select {
	case <-r.done:
		return
	default:
	}
	r.cancel()
	r.srv.CloseClientConnections()
	r.srv.Close()
	<-r.done
	r.hub.Close()
}

// chaosAlerts builds the deterministic alert stream both the victim and
// the control consume.
func chaosAlerts(total int) ([]time.Time, [][]maritime.Alert) {
	base := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	const batch = 25
	var slides []time.Time
	var batches [][]maritime.Alert
	for off := 0; off < total; off += batch {
		n := batch
		if off+n > total {
			n = total - off
		}
		slide := base.Add(time.Duration(off) * time.Minute)
		alerts := make([]maritime.Alert, n)
		for i := range alerts {
			seq := off + i + 1
			alerts[i] = maritime.Alert{
				CE:     "speeding",
				AreaID: "a1",
				Time:   slide,
				Vessel: uint32(237000000 + seq%40),
			}
		}
		slides = append(slides, slide)
		batches = append(batches, alerts)
	}
	return slides, batches
}

// normalize strips the wall-clock publish stamp (it legitimately
// differs across republication) so histories compare on what matters:
// sequence, slide and the alert itself.
func normalize(envs []serve.Envelope) []serve.Envelope {
	out := make([]serve.Envelope, len(envs))
	for i, e := range envs {
		e.Published = time.Time{}
		out[i] = e
	}
	return out
}

// requireExactlyOnce asserts envs is exactly seq 1..total: no gap, no
// duplicate, no reordering.
func requireExactlyOnce(t *testing.T, who string, envs []serve.Envelope, total int) {
	t.Helper()
	if len(envs) != total {
		t.Fatalf("%s received %d envelopes, want %d", who, len(envs), total)
	}
	for i, e := range envs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("%s envelope %d has seq %d, want %d (gap or duplicate)", who, i, e.Seq, i+1)
		}
	}
}

// collect streams from one replica until stop returns true or the
// connection dies, appending into *got and advancing *last. The resume
// point rides in the "after" query parameter rather than Last-Event-ID
// so that the very first connection (after = 0) also replays from the
// log start — a fresh subscribe would begin at the replica hub's
// current head and silently miss whatever its tailer already applied.
func collect(t *testing.T, r *chaosReplica, got *[]serve.Envelope, last *uint64, stop func() bool) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	err := serve.StreamAlerts(ctx, fmt.Sprintf("%s/events?after=%d", r.srv.URL, *last), 0, func(e serve.Envelope) {
		if e.Marker != "" {
			t.Errorf("unexpected %s marker at seq %d (missing %d): retention covers the whole run", e.Marker, e.Seq, e.Missing)
			return
		}
		*got = append(*got, e)
		*last = e.Seq
		if stop() {
			cancel()
		}
	})
	// A reset mid-kill surfaces as a transport error; the reconnect with
	// Last-Event-ID is exactly what the test is proving.
	_ = err
	if ctx.Err() == context.DeadlineExceeded {
		t.Fatalf("stream from %s stalled (got %d envelopes)", r.name, len(*got))
	}
}

// TestChaosReplicaKillAndFailover kills two replicas mid-stream under a
// live writer; the subscriber fails over with Last-Event-ID each time
// and must still see every alert exactly once, byte-identical to a
// consumer on a never-killed replica.
func TestChaosReplicaKillAndFailover(t *testing.T) {
	const total = 1500
	dir := t.TempDir()
	l, err := Open(dir, Options{SegmentBytes: 8 << 10, KeepSegments: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	writer := serve.NewHub(64)
	writer.AttachLog(l)

	victims := []*chaosReplica{
		startChaosReplica(t, dir, "r0"),
		startChaosReplica(t, dir, "r1"),
		startChaosReplica(t, dir, "r2"),
	}
	control := startChaosReplica(t, dir, "control")

	slides, batches := chaosAlerts(total)
	var published atomic.Uint64
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		for i := range batches {
			writer.Publish(slides[i], batches[i])
			published.Add(uint64(len(batches[i])))
			time.Sleep(time.Millisecond)
		}
	}()

	// Control consumer on the never-killed replica, running concurrently
	// with the chaos.
	ctrlDone := make(chan []serve.Envelope, 1)
	go func() {
		var got []serve.Envelope
		var last uint64
		for len(got) < total {
			collect(t, control, &got, &last, func() bool { return len(got) >= total })
			time.Sleep(5 * time.Millisecond)
		}
		ctrlDone <- got
	}()

	// The victim consumer: each kill point tears down the replica it is
	// streaming from, then it reconnects to the next with its last id.
	killAt := []int{400, 900} // received counts that trigger a kill
	var got []serve.Envelope
	var last uint64
	cur := 0
	for len(got) < total {
		collect(t, victims[cur], &got, &last, func() bool {
			return len(got) >= total || (cur < len(killAt) && len(got) >= killAt[cur])
		})
		if cur < len(killAt) && len(got) >= killAt[cur] {
			victims[cur].kill()
			cur++
			continue
		}
		if len(got) < total {
			time.Sleep(5 * time.Millisecond)
		}
	}
	<-pubDone
	ctrl := <-ctrlDone

	requireExactlyOnce(t, "failover subscriber", got, total)
	requireExactlyOnce(t, "control subscriber", ctrl, total)
	if !reflect.DeepEqual(normalize(got), normalize(ctrl)) {
		t.Fatal("failover history diverged from the never-killed control")
	}
	if cur != 2 {
		t.Fatalf("only %d replicas were killed; the failover path was not exercised", cur)
	}
}

// TestChaosWriterCrashMidSegment crashes the writer mid-frame (injected
// power loss), restarts it, replays the full publish history — and a
// replica that tailed through the whole ordeal must deliver every alert
// exactly once.
func TestChaosWriterCrashMidSegment(t *testing.T) {
	const total = 600
	dir := t.TempDir()
	slides, batches := chaosAlerts(total)

	rep := startChaosReplica(t, dir, "survivor")
	var got []serve.Envelope
	var last uint64
	consume := func(until int) {
		for len(got) < until {
			collect(t, rep, &got, &last, func() bool { return len(got) >= until })
			time.Sleep(2 * time.Millisecond)
		}
	}

	// Phase 1: a writer whose segment writer dies mid-frame partway in.
	// The crash budget must be below the rotation threshold: WrapWriter
	// wraps each segment file anew, so a budget past SegmentBytes would
	// never fire.
	l, err := Open(dir, Options{SegmentBytes: 16 << 10, KeepSegments: 1000,
		WrapWriter: func(w io.Writer) io.Writer { return faults.NewCrashWriter(w, 9000) }})
	if err != nil {
		t.Fatal(err)
	}
	hub := serve.NewHub(64)
	hub.AttachLog(l)
	for i := range batches {
		hub.Publish(slides[i], batches[i])
	}
	if hub.LogAppendErrors() == 0 {
		t.Fatal("crash writer never fired; the test exercised nothing")
	}
	// The process "dies": no Close, no sync of the torn tail.
	durableBefore := TailSeq(dir)
	if durableBefore == 0 || durableBefore >= total {
		t.Fatalf("durable tail %d before restart, want inside (0,%d)", durableBefore, total)
	}
	consume(int(durableBefore))

	// Phase 2: restart. Recovery truncates the torn frame; the restarted
	// pipeline replays the whole history (deterministic slides → same
	// alerts under the same sequences); the log deduplicates the prefix.
	l2, err := Open(dir, Options{SegmentBytes: 4 << 10, KeepSegments: 1000})
	if err != nil {
		t.Fatalf("recovery refused to open: %v", err)
	}
	defer l2.Close()
	if st := l2.Stats(); st.Truncations == 0 {
		t.Fatal("recovery did not count the torn-tail truncation")
	}
	hub2 := serve.NewHub(64)
	hub2.AttachLog(l2)
	for i := range batches {
		hub2.Publish(slides[i], batches[i])
	}
	if st := l2.Stats(); st.SkippedDup == 0 {
		t.Fatal("replay deduplication never engaged")
	}

	consume(total)
	requireExactlyOnce(t, "tailing subscriber", got, total)

	// The durable history equals the replay exactly once too.
	var onDisk []serve.Envelope
	r := NewReader(dir, 0)
	defer r.Close()
	for {
		batch, err := r.Next(1024)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		onDisk = append(onDisk, batch...)
	}
	requireExactlyOnce(t, "durable log", onDisk, total)
}

// TestChaosCorruptNewestSegment flips bytes in the newest segment while
// the writer is down; the restarted writer counts the truncation,
// replays, and a fresh replica still serves the exact history.
func TestChaosCorruptNewestSegment(t *testing.T) {
	const total = 400
	dir := t.TempDir()
	slides, batches := chaosAlerts(total)
	l, err := Open(dir, Options{SegmentBytes: 4 << 10, KeepSegments: 1000})
	if err != nil {
		t.Fatal(err)
	}
	hub := serve.NewHub(64)
	hub.AttachLog(l)
	for i := range batches {
		hub.Publish(slides[i], batches[i])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("need ≥ 2 segments, got %d (%v)", len(segs), err)
	}
	newest := segs[len(segs)-1]
	f, err := os.OpenFile(newest.path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xba, 0xdb, 0xad, 0xba, 0xdb, 0xad}, newest.size/3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, Options{SegmentBytes: 4 << 10, KeepSegments: 1000})
	if err != nil {
		t.Fatalf("recovery refused to open: %v", err)
	}
	defer l2.Close()
	st := l2.Stats()
	if st.Truncations == 0 || st.TruncatedBytes == 0 {
		t.Fatalf("corruption recovery not counted: %+v", st)
	}
	if st.LastSeq >= uint64(total) {
		t.Fatalf("LastSeq=%d survived the corruption untruncated", st.LastSeq)
	}
	hub2 := serve.NewHub(64)
	hub2.AttachLog(l2)
	for i := range batches {
		hub2.Publish(slides[i], batches[i])
	}

	rep := startChaosReplica(t, dir, "fresh")
	var got []serve.Envelope
	var last uint64
	for len(got) < total {
		collect(t, rep, &got, &last, func() bool { return len(got) >= total })
		time.Sleep(2 * time.Millisecond)
	}
	requireExactlyOnce(t, "post-recovery subscriber", got, total)
}
