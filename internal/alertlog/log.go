// Package alertlog is the durable, replicated backbone of the serving
// tier: a segmented append-only log of published alert envelopes, each
// record an individually CRC-framed (durable.WriteFrame) JSON envelope,
// so the serving tier survives what the pipeline already survives. The
// writer (the hub) appends every published envelope before any
// subscriber sees it; N stateless gateway replicas tail the log from
// their last applied sequence and serve SSE independently, so a
// subscriber reconnecting to any replica with Last-Event-ID sees every
// alert exactly once across replica kill/restart.
//
// Durability discipline: records are appended to the active segment and
// fsynced per batch; rotation fsyncs the sealed segment, creates the
// next one and fsyncs the directory (the WriteFileAtomic ordering,
// applied to an append-only file). A crash mid-append leaves a torn or
// checksum-failing final frame; Open truncates the file back to the
// last valid frame and counts the loss instead of refusing to start.
// Sequence numbers are contiguous within and across segments — a gap
// can only be introduced by corruption loss beyond the checkpoint
// replay horizon, and is counted, never silently closed.
package alertlog

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/durable"
	"repro/internal/obs"
	"repro/internal/serve"
)

const (
	// recordMagic frames one envelope; recordVersion is its payload
	// format (JSON of serve.Envelope).
	recordMagic   = "ALOGREC"
	recordVersion = 1
	// segPrefix/segSuffix shape segment names: alog-<firstseq>.seg with
	// a fixed-width first-record sequence so lexicographic and numeric
	// order agree.
	segPrefix = "alog-"
	segSuffix = ".seg"
)

// Options configures a Log.
type Options struct {
	// SegmentBytes is the rotation threshold of the active segment
	// (≤ 0: 1 MiB). A record never straddles segments.
	SegmentBytes int64
	// KeepSegments bounds retention: sealed segments beyond the newest
	// KeepSegments-1 (plus the active one) are pruned after rotation
	// (≤ 0: 8). Align it with checkpoint retention so a restored writer
	// can always reconcile its hub sequence against the log.
	KeepSegments int
	// NoSync skips the per-append fsync (benchmarks only; rotation
	// still syncs).
	NoSync bool
	// WrapWriter, when set, wraps the active segment's writer — the
	// crash-injection hook (faults.CrashWriter): a writer that fails
	// mid-frame leaves exactly the torn tail a process death would.
	WrapWriter func(io.Writer) io.Writer
}

// Stats is the log's cumulative accounting.
type Stats struct {
	FirstSeq uint64 `json:"first_seq"` // oldest retained record (0 = empty)
	LastSeq  uint64 `json:"last_seq"`  // newest record (0 = empty)
	Segments int    `json:"segments"`  // retained segment files
	// ActiveBytes is the size of the active segment.
	ActiveBytes int64 `json:"active_bytes"`
	// Appended counts records written; SkippedDup counts idempotent
	// re-appends discarded because their sequence was already durable
	// (exactly-once across writer crash + checkpoint replay).
	Appended   uint64 `json:"appended"`
	SkippedDup uint64 `json:"skipped_dup"`
	// GapRecords counts sequence numbers that never reached the log —
	// corruption loss beyond the replay horizon, reported not hidden.
	GapRecords uint64 `json:"gap_records"`
	// Truncations counts torn/corrupt-tail recoveries at Open;
	// TruncatedBytes the bytes cut back in them.
	Truncations    uint64 `json:"truncations"`
	TruncatedBytes uint64 `json:"truncated_bytes"`
	// PrunedSegments counts sealed segments removed by retention.
	PrunedSegments uint64 `json:"pruned_segments"`
	// AppendErrors counts failed appends (the hub keeps serving; the
	// record retries via checkpoint replay after restart).
	AppendErrors uint64 `json:"append_errors"`
}

// Log is the writer side: one process appends, any number of Readers
// and Tailers (in or out of process) follow.
type Log struct {
	dir string
	opt Options

	mu          sync.Mutex
	f           *os.File
	w           io.Writer // f, possibly wrapped by WrapWriter
	segStart    uint64    // sequence the active segment is named for
	activeSize  int64
	activeBorn  time.Time
	firstSeq    uint64
	lastSeq     uint64
	segments    int
	st          Stats
	enc         bytes.Buffer // frame staging, reused per record
	metricsOnce sync.Once
}

// Open opens (creating if needed) the log directory, recovers the
// segment chain — truncating a torn or corrupt tail back to the last
// valid frame, with the loss counted in Stats — and positions the
// writer after the newest durable record.
func Open(dir string, opt Options) (*Log, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 1 << 20
	}
	if opt.KeepSegments <= 0 {
		opt.KeepSegments = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("alertlog: creating %s: %w", dir, err)
	}
	l := &Log{dir: dir, opt: opt, activeBorn: time.Now()}
	if err := l.recover(); err != nil {
		return nil, err
	}
	return l, nil
}

// segFile is one discovered segment.
type segFile struct {
	start uint64 // sequence in the file name
	path  string
	size  int64
}

// listSegments returns dir's segments in ascending start-sequence order.
func listSegments(dir string) ([]segFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("alertlog: reading %s: %w", dir, err)
	}
	var out []segFile
	for _, e := range entries {
		name := e.Name()
		var start uint64
		if _, err := fmt.Sscanf(name, segPrefix+"%d"+segSuffix, &start); err != nil {
			continue
		}
		if name != segName(start) {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		out = append(out, segFile{start: start, path: filepath.Join(dir, name), size: info.Size()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].start < out[j].start })
	return out, nil
}

// segName renders the canonical segment name for first-record seq.
func segName(start uint64) string {
	return fmt.Sprintf("%s%020d%s", segPrefix, start, segSuffix)
}

// recover scans the segment chain, truncates the first invalid frame
// and everything after it (later segments would hide a gap), and opens
// the newest surviving segment for append.
func (l *Log) recover() error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for i, seg := range segs {
		valid, _, first, last, scanErr := scanSegment(seg.path)
		if first != 0 && l.firstSeq == 0 {
			l.firstSeq = first
		}
		if last != 0 {
			l.lastSeq = last
		}
		if scanErr == nil && valid == seg.size {
			continue
		}
		// Torn or corrupt tail: cut this segment back to its last valid
		// frame and drop every later segment — the log ends here.
		l.st.Truncations++
		l.st.TruncatedBytes += uint64(seg.size - valid)
		if err := os.Truncate(seg.path, valid); err != nil {
			return fmt.Errorf("alertlog: truncating %s: %w", seg.path, err)
		}
		for _, later := range segs[i+1:] {
			l.st.TruncatedBytes += uint64(later.size)
			if err := os.Remove(later.path); err != nil {
				return fmt.Errorf("alertlog: removing %s past the corruption: %w", later.path, err)
			}
		}
		segs = segs[:i+1]
		segs[i].size = valid
		break
	}
	l.segments = len(segs)
	if len(segs) == 0 {
		return nil // cold start; the first append creates the segment
	}
	newest := segs[len(segs)-1]
	f, err := os.OpenFile(newest.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("alertlog: opening %s for append: %w", newest.path, err)
	}
	l.f = f
	l.w = l.wrap(f)
	l.segStart = newest.start
	l.activeSize = newest.size
	return nil
}

// scanSegment reads one segment's frames, returning the offset after
// the last valid frame, the frame count, the first and last record
// sequences, and the terminal frame error (nil when the file ends
// cleanly on a frame boundary).
func scanSegment(path string) (valid int64, frames int, first, last uint64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, 0, err
	}
	defer f.Close()
	valid, frames, scanErr := durable.ScanFrames(f, recordMagic, recordVersion,
		func(payload []byte, _ uint16) bool {
			var e serve.Envelope
			if json.Unmarshal(payload, &e) != nil {
				return true // counted as valid framing; sequence unknown
			}
			if first == 0 {
				first = e.Seq
			}
			last = e.Seq
			return true
		})
	return valid, frames, first, last, scanErr
}

// wrap applies the crash-injection hook to the active segment writer.
func (l *Log) wrap(f *os.File) io.Writer {
	if l.opt.WrapWriter != nil {
		return l.opt.WrapWriter(f)
	}
	return f
}

// Append writes the envelopes' records durably, in order. Envelopes at
// or below the newest durable sequence are skipped (idempotent
// re-publish during post-restore replay); a sequence jump past
// lastSeq+1 is allowed but counted as gap loss. The batch is fsynced
// once at the end unless Options.NoSync.
func (l *Log) Append(envs []serve.Envelope) error {
	if len(envs) == 0 {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	wrote := false
	for i := range envs {
		e := &envs[i]
		if e.Seq <= l.lastSeq {
			l.st.SkippedDup++
			continue
		}
		if l.lastSeq != 0 && e.Seq > l.lastSeq+1 {
			l.st.GapRecords += e.Seq - l.lastSeq - 1
		}
		if err := l.appendOne(e); err != nil {
			l.st.AppendErrors++
			if wrote && !l.opt.NoSync && l.f != nil {
				l.f.Sync()
			}
			return err
		}
		wrote = true
	}
	if wrote && !l.opt.NoSync {
		if err := l.f.Sync(); err != nil {
			l.st.AppendErrors++
			return fmt.Errorf("alertlog: fsync %s: %w", l.f.Name(), err)
		}
	}
	return nil
}

// appendOne frames and writes one record, rotating first if the active
// segment is full. Callers hold l.mu.
func (l *Log) appendOne(e *serve.Envelope) error {
	if l.f == nil || l.activeSize >= l.opt.SegmentBytes {
		if err := l.rotate(e.Seq); err != nil {
			return err
		}
	}
	payload, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("alertlog: encoding record %d: %w", e.Seq, err)
	}
	l.enc.Reset()
	if err := durable.WriteFrame(&l.enc, recordMagic, recordVersion, payload); err != nil {
		return err
	}
	n, err := l.w.Write(l.enc.Bytes())
	l.activeSize += int64(n)
	if err != nil {
		return fmt.Errorf("alertlog: appending record %d: %w", e.Seq, err)
	}
	if l.firstSeq == 0 {
		l.firstSeq = e.Seq
	}
	l.lastSeq = e.Seq
	l.st.Appended++
	return nil
}

// rotate seals the active segment (fsync + close), creates the next one
// named for nextSeq, fsyncs the directory so the new file is durable,
// and prunes retention. Callers hold l.mu.
func (l *Log) rotate(nextSeq uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("alertlog: sealing %s: %w", l.f.Name(), err)
		}
		if err := l.f.Close(); err != nil {
			return fmt.Errorf("alertlog: closing %s: %w", l.f.Name(), err)
		}
		l.f = nil
	}
	path := filepath.Join(l.dir, segName(nextSeq))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("alertlog: creating %s: %w", path, err)
	}
	if err := syncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.f = f
	l.w = l.wrap(f)
	l.segStart = nextSeq
	l.activeSize = 0
	l.activeBorn = time.Now()
	l.segments++
	return l.pruneLocked()
}

// pruneLocked removes the oldest sealed segments beyond KeepSegments.
func (l *Log) pruneLocked() error {
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for len(segs) > l.opt.KeepSegments && segs[0].start != l.segStart {
		if err := os.Remove(segs[0].path); err != nil {
			return fmt.Errorf("alertlog: pruning %s: %w", segs[0].path, err)
		}
		l.st.PrunedSegments++
		l.segments--
		segs = segs[1:]
		l.firstSeq = segs[0].start
	}
	return nil
}

// LastSeq returns the newest durable record sequence (0 = empty).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// FirstSeq returns the oldest retained record sequence (0 = empty).
func (l *Log) FirstSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstSeq
}

// ReadSince returns up to max retained envelopes with sequence strictly
// greater than afterSeq, oldest first — the hub's replay source when a
// reconnecting subscriber's cursor predates the in-memory ring. It
// reads the segment files directly and never blocks the append path.
func (l *Log) ReadSince(afterSeq uint64, max int) ([]serve.Envelope, error) {
	r := NewReader(l.dir, afterSeq)
	defer r.Close()
	return r.Next(max)
}

// Stats snapshots the log's accounting.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	st := l.st
	st.FirstSeq = l.firstSeq
	st.LastSeq = l.lastSeq
	st.Segments = l.segments
	st.ActiveBytes = l.activeSize
	return st
}

// Close seals the active segment. Append after Close reopens nothing;
// the Log is done.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}

// RegisterMetrics exposes the log on the registry: segment count and
// active-segment size/age, sequence bounds, append/dup/gap accounting,
// and the recovered-truncation counters the chaos suite asserts on.
func (l *Log) RegisterMetrics(r *obs.Registry) {
	r.GaugeFunc("maritime_alertlog_segments", "Retained alert-log segment files.", nil,
		func() float64 { return float64(l.Stats().Segments) })
	r.GaugeFunc("maritime_alertlog_active_bytes", "Size of the active alert-log segment.", nil,
		func() float64 { return float64(l.Stats().ActiveBytes) })
	r.GaugeFunc("maritime_alertlog_active_age_seconds", "Age of the active alert-log segment.", nil,
		func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return time.Since(l.activeBorn).Seconds()
		})
	r.GaugeFunc("maritime_alertlog_first_seq", "Oldest retained alert-log sequence.", nil,
		func() float64 { return float64(l.Stats().FirstSeq) })
	r.GaugeFunc("maritime_alertlog_last_seq", "Newest durable alert-log sequence.", nil,
		func() float64 { return float64(l.Stats().LastSeq) })
	r.CounterFunc("maritime_alertlog_appended_total", "Alert records appended durably.", nil,
		func() float64 { return float64(l.Stats().Appended) })
	r.CounterFunc("maritime_alertlog_dup_skipped_total", "Idempotent re-appends discarded (already durable).", nil,
		func() float64 { return float64(l.Stats().SkippedDup) })
	r.CounterFunc("maritime_alertlog_gap_records_total", "Sequence numbers lost to corruption beyond the replay horizon.", nil,
		func() float64 { return float64(l.Stats().GapRecords) })
	r.CounterFunc("maritime_alertlog_truncations_recovered_total", "Torn/corrupt-tail recoveries at open.", nil,
		func() float64 { return float64(l.Stats().Truncations) })
	r.CounterFunc("maritime_alertlog_truncated_bytes_total", "Bytes cut back by tail recovery.", nil,
		func() float64 { return float64(l.Stats().TruncatedBytes) })
	r.CounterFunc("maritime_alertlog_pruned_segments_total", "Sealed segments removed by retention.", nil,
		func() float64 { return float64(l.Stats().PrunedSegments) })
	r.CounterFunc("maritime_alertlog_append_errors_total", "Failed appends (the hub keeps serving; replay refills after restart).", nil,
		func() float64 { return float64(l.Stats().AppendErrors) })
}

// syncDir fsyncs a directory so segment creation survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("alertlog: opening dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("alertlog: fsync dir %s: %w", dir, err)
	}
	return nil
}
