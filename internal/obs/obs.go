// Package obs is the observability layer: a dependency-free metrics
// registry with atomic counters, gauges and fixed-bucket latency
// histograms, exposed in the Prometheus text format. The paper's whole
// evaluation (§5, Figures 6–11, Table 4) is about measured per-stage
// latency and throughput; obs turns those same measurements into
// runtime metrics any scraper can pull from a live deployment, instead
// of numbers that die inside a SlideReport.
//
// Components own their metrics and register them here; pull-style
// metrics (CounterFunc, GaugeFunc) sample an existing stats snapshot at
// scrape time, so already-synchronized counters need no second home.
// The registry itself is safe for concurrent registration, updates and
// scrapes.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Labels is an optional set of constant label pairs attached to a
// metric at registration time.
type Labels map[string]string

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram of float64 observations
// (seconds, for latencies). Buckets are cumulative at exposition, in
// the Prometheus style.
type Histogram struct {
	bounds []float64       // upper bounds, sorted ascending
	counts []atomic.Uint64 // one per bound, plus a final +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// DefBuckets spans 100 µs to 10 s — the per-slide stage costs of the
// paper's Figures 6–11 all land inside this range at every scale the
// harness runs.
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metricKind discriminates the exposition TYPE line.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// sample is one registered metric instance (a label combination of a
// family). Exactly one of the value fields is set.
type sample struct {
	labels string // pre-rendered {k="v",...} or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64 // pull-style counter or gauge
}

// family groups every label combination of one metric name.
type family struct {
	name    string
	help    string
	kind    metricKind
	samples map[string]*sample // by rendered label string
}

// Registry holds metric families and renders them on demand.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the sample slot for name+labels, creating the family
// and slot as needed (init populates a fresh slot while the registry
// lock is held, so a concurrent get-or-create never sees a half-built
// sample). It panics on a kind mismatch — that is a wiring bug, not a
// runtime condition.
func (r *Registry) lookup(name, help string, kind metricKind, labels Labels, init func(*sample)) *sample {
	key := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, samples: make(map[string]*sample)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s, was %s", name, kind, f.kind))
	}
	if s, ok := f.samples[key]; ok {
		return s
	}
	s := &sample{labels: key}
	init(s)
	f.samples[key] = s
	return s
}

// Counter returns the counter for name+labels, creating it on first
// use. Repeated registration with the same name and labels returns the
// same counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	return r.lookup(name, help, kindCounter, labels, func(s *sample) {
		s.c = &Counter{}
	}).c
}

// Gauge returns the gauge for name+labels, creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	return r.lookup(name, help, kindGauge, labels, func(s *sample) {
		s.g = &Gauge{}
	}).g
}

// Histogram returns the histogram for name+labels, creating it with
// the given bucket bounds on first use (nil buckets: DefBuckets).
func (r *Registry) Histogram(name, help string, labels Labels, buckets []float64) *Histogram {
	return r.lookup(name, help, kindHistogram, labels, func(s *sample) {
		if len(buckets) == 0 {
			buckets = DefBuckets
		}
		bounds := append([]float64(nil), buckets...)
		sort.Float64s(bounds)
		s.h = &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
	}).h
}

// CounterFunc registers a pull-style counter sampled at scrape time;
// fn must be safe to call from any goroutine and should be
// monotonically non-decreasing.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.lookup(name, help, kindCounter, labels, func(s *sample) { s.fn = fn })
}

// GaugeFunc registers a pull-style gauge sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.lookup(name, help, kindGauge, labels, func(s *sample) { s.fn = fn })
}

// WriteText renders every registered metric in the Prometheus text
// exposition format (families sorted by name, samples by label set).
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, 0, len(names))
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.RUnlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		keys := make([]string, 0, len(f.samples))
		// Samples are read under the registry lock only for map shape;
		// values are atomics or pull funcs, safe without it.
		r.mu.RLock()
		for k := range f.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		samples := make([]*sample, 0, len(keys))
		for _, k := range keys {
			samples = append(samples, f.samples[k])
		}
		r.mu.RUnlock()
		for _, s := range samples {
			writeSample(&b, f, s)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeSample renders one metric instance.
func writeSample(b *strings.Builder, f *family, s *sample) {
	switch {
	case s.fn != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
	case s.c != nil:
		fmt.Fprintf(b, "%s%s %d\n", f.name, s.labels, s.c.Value())
	case s.g != nil:
		fmt.Fprintf(b, "%s%s %s\n", f.name, s.labels, formatFloat(s.g.Value()))
	case s.h != nil:
		cum := uint64(0)
		for i, bound := range s.h.bounds {
			cum += s.h.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, withLE(s.labels, formatFloat(bound)), cum)
		}
		cum += s.h.counts[len(s.h.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, withLE(s.labels, "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.h.Sum()))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, s.labels, s.h.Count())
	}
}

// withLE merges the le bucket label into a pre-rendered label string.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// renderLabels produces the canonical {k="v",...} form, keys sorted.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text-format rules.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// escapeHelp escapes a HELP string.
func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float the way Prometheus expects: integers
// without a decimal point, everything else in shortest form.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
