package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry in the Prometheus text exposition format
// (mount it at GET /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// A failed write means the scraper went away; nothing to report.
		_ = r.WriteText(w)
	})
}

// DebugMux builds the sidecar debug mux the drivers expose behind
// -debug-addr: the registry's /metrics plus the net/http/pprof suite
// (/debug/pprof/, profile, heap, goroutine, trace, ...). It is a
// separate listener by design, so profiling endpoints are never bound
// to the public serving address by accident.
func DebugMux(r *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("GET /metrics", r.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
