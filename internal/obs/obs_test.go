package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// scrape renders the registry to a string.
func scrape(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("events_total", "Total events.", nil)
	c.Inc()
	c.Add(4)
	out := scrape(t, r)
	for _, want := range []string{
		"# HELP events_total Total events.",
		"# TYPE events_total counter",
		"events_total 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

func TestGetOrCreateReturnsSameInstance(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", Labels{"k": "v"})
	b := r.Counter("x_total", "", Labels{"k": "v"})
	if a != b {
		t.Fatal("same name+labels produced distinct counters")
	}
	c := r.Counter("x_total", "", Labels{"k": "w"})
	if a == c {
		t.Fatal("distinct labels share a counter")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("aliased counter did not observe the increment")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestLabelsSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	r.Counter("l_total", "", Labels{"z": "1", "a": `qu"ote\back`, "m": "line\nbreak"}).Inc()
	out := scrape(t, r)
	want := `l_total{a="qu\"ote\\back",m="line\nbreak",z="1"} 1`
	if !strings.Contains(out, want) {
		t.Fatalf("labels not canonical:\n%s\nwant %s", out, want)
	}
}

func TestGaugeSetAddAndFloats(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth", "", nil)
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	if out := scrape(t, r); !strings.Contains(out, "depth 1.5") {
		t.Fatalf("gauge exposition wrong:\n%s", out)
	}
	g.Set(3)
	if out := scrape(t, r); !strings.Contains(out, "depth 3\n") {
		t.Fatalf("integral gauge must render without decimals:\n%s", out)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", Labels{"stage": "x"}, []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.01, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-5.565) > 1e-9 {
		t.Fatalf("Sum = %v, want 5.565", h.Sum())
	}
	out := scrape(t, r)
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{stage="x",le="0.01"} 2`, // 0.005 and the exact-boundary 0.01
		`lat_seconds_bucket{stage="x",le="0.1"} 3`,
		`lat_seconds_bucket{stage="x",le="1"} 4`,
		`lat_seconds_bucket{stage="x",le="+Inf"} 5`,
		`lat_seconds_count{stage="x"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

func TestObserveDuration(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("d_seconds", "", nil, []float64{0.05, 1})
	h.ObserveDuration(100 * time.Millisecond)
	out := scrape(t, r)
	if !strings.Contains(out, `d_seconds_bucket{le="0.05"} 0`) ||
		!strings.Contains(out, `d_seconds_bucket{le="1"} 1`) {
		t.Fatalf("duration bucketed wrong:\n%s", out)
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := 7
	r.CounterFunc("pulled_total", "", nil, func() float64 { return float64(n) })
	r.GaugeFunc("pulled_gauge", "", Labels{"src": "test"}, func() float64 { return 2.25 })
	out := scrape(t, r)
	if !strings.Contains(out, "pulled_total 7") {
		t.Errorf("counter func not sampled:\n%s", out)
	}
	if !strings.Contains(out, `pulled_gauge{src="test"} 2.25`) {
		t.Errorf("gauge func not sampled:\n%s", out)
	}
	n = 9
	if out := scrape(t, r); !strings.Contains(out, "pulled_total 9") {
		t.Errorf("counter func not re-sampled:\n%s", out)
	}
}

func TestFamiliesSortedByName(t *testing.T) {
	r := NewRegistry()
	r.Counter("zzz_total", "", nil)
	r.Counter("aaa_total", "", nil)
	out := scrape(t, r)
	if strings.Index(out, "aaa_total") > strings.Index(out, "zzz_total") {
		t.Fatalf("families not sorted:\n%s", out)
	}
}

// TestConcurrentUse hammers registration, updates and scrapes from many
// goroutines; run under -race this is the registry's safety proof.
func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				r.Counter("con_total", "", Labels{"w": string(rune('a' + i%3))}).Inc()
				r.Histogram("con_seconds", "", nil, nil).Observe(float64(j) / 1000)
				r.Gauge("con_gauge", "", nil).Set(float64(j))
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var b strings.Builder
				_ = r.WriteText(&b)
			}
		}()
	}
	wg.Wait()
	var total uint64
	for _, w := range []string{"a", "b", "c"} {
		total += r.Counter("con_total", "", Labels{"w": w}).Value()
	}
	if total != 1600 {
		t.Fatalf("counter total = %d, want 1600", total)
	}
	if got := r.Histogram("con_seconds", "", nil, nil).Count(); got != 1600 {
		t.Fatalf("histogram count = %d, want 1600", got)
	}
}

func TestHandlerServesTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("h_total", "", nil).Add(3)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q", ct)
	}
	buf := make([]byte, 1<<12)
	n, _ := res.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "h_total 3") {
		t.Fatalf("handler body missing metric:\n%s", buf[:n])
	}
}

func TestRegisterRuntime(t *testing.T) {
	r := NewRegistry()
	RegisterRuntime(r)
	out := scrape(t, r)
	for _, want := range []string{"go_goroutines", "go_heap_alloc_bytes", "go_gc_cycles_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("runtime scrape missing %s:\n%s", want, out)
		}
	}
}

func TestDebugMuxRoutes(t *testing.T) {
	r := NewRegistry()
	r.Counter("dm_total", "", nil).Inc()
	srv := httptest.NewServer(DebugMux(r))
	defer srv.Close()
	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		res, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		res.Body.Close()
		if res.StatusCode != 200 {
			t.Errorf("%s returned %d", path, res.StatusCode)
		}
	}
}
