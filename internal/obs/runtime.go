package obs

import (
	"runtime"
	"sync"
	"time"
)

// RegisterRuntime registers the Go runtime gauges (goroutines, heap,
// GC) on the registry. MemStats collection stops the world briefly, so
// one snapshot per scrape is shared by every gauge and cached for a
// second — scrapers hitting /metrics in close succession pay for it
// once.
func RegisterRuntime(r *Registry) {
	var mu sync.Mutex
	var last time.Time
	var ms runtime.MemStats
	snap := func() *runtime.MemStats {
		mu.Lock()
		defer mu.Unlock()
		if now := time.Now(); now.Sub(last) > time.Second {
			runtime.ReadMemStats(&ms)
			last = now
		}
		return &ms
	}
	r.GaugeFunc("go_goroutines", "Number of live goroutines.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("go_heap_alloc_bytes", "Bytes of allocated heap objects.", nil,
		func() float64 { return float64(snap().HeapAlloc) })
	r.GaugeFunc("go_heap_sys_bytes", "Bytes of heap obtained from the OS.", nil,
		func() float64 { return float64(snap().HeapSys) })
	r.GaugeFunc("go_heap_objects", "Number of allocated heap objects.", nil,
		func() float64 { return float64(snap().HeapObjects) })
	r.GaugeFunc("go_next_gc_bytes", "Heap size target of the next GC cycle.", nil,
		func() float64 { return float64(snap().NextGC) })
	r.CounterFunc("go_gc_cycles_total", "Completed GC cycles.", nil,
		func() float64 { return float64(snap().NumGC) })
	r.CounterFunc("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause.", nil,
		func() float64 { return float64(snap().PauseTotalNs) / 1e9 })
	r.CounterFunc("go_alloc_bytes_total", "Cumulative bytes allocated for heap objects.", nil,
		func() float64 { return float64(snap().TotalAlloc) })
}
