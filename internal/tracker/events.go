// Package tracker implements the paper's trajectory detection component
// (§3): the Mobility Tracker that maintains one velocity vector per
// vessel, detects instantaneous trajectory events (pause, speed change,
// turn, off-course outliers) and long-lasting ones (communication gap,
// smooth turn, long-term stop, slow motion), and the Compressor that
// filters noise and emits annotated "critical points" — the concise
// synopsis from which each vessel's trajectory can be approximately
// reconstructed with negligible accuracy loss.
package tracker

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/geo"
)

// EventType annotates a critical point with the movement event that
// produced it.
type EventType int

// Event types. Durative phenomena (gap, long-term stop, slow motion)
// are demarcated by paired Start/End points so that downstream complex
// event recognition can maintain the corresponding fluent intervals.
const (
	// EventFirst marks the first retained position of a vessel (or its
	// first after state eviction); it anchors reconstruction.
	EventFirst EventType = iota
	// EventSpeedChange marks an acceleration or deceleration beyond the
	// α threshold (paper Figure 2(b)).
	EventSpeedChange
	// EventTurn marks a sharp instantaneous change in heading beyond Δθ
	// (paper Figure 2(c)).
	EventTurn
	// EventSmoothTurn marks the completion of a cumulative change in
	// heading beyond Δθ across several positions (paper Figure 3(b)).
	EventSmoothTurn
	// EventGapStart marks the last known position before a reporting
	// silence of at least ΔT (paper Figure 3(a)); its timestamp is when
	// the gap started, i.e. the last report.
	EventGapStart
	// EventGapEnd marks the first position after a reporting gap.
	EventGapEnd
	// EventStopStart marks the beginning of a long-term stop: at least m
	// consecutive low-speed positions within radius r (paper Figure 3(c)).
	EventStopStart
	// EventStopEnd marks the end of a long-term stop; its position is the
	// centroid of the stop and Duration carries the total stop time.
	EventStopEnd
	// EventSlowStart marks the beginning of slow motion: at least m
	// consecutive positions at low but nonzero speed along a path
	// (paper Figure 3(d)).
	EventSlowStart
	// EventSlowEnd marks the end of a slow-motion episode; its position
	// is the median of the episode's positions.
	EventSlowEnd
)

// String names the event type as used in exports and RTEC input.
func (e EventType) String() string {
	names := []string{
		"first", "speedChange", "turn", "smoothTurn",
		"gapStart", "gapEnd", "stopStart", "stopEnd", "slowStart", "slowEnd",
	}
	if int(e) < len(names) {
		return names[e]
	}
	return fmt.Sprintf("EventType(%d)", int(e))
}

// CriticalPoint is one annotated salient position: the unit of the
// compressed trajectory synopsis and the movement-event (ME) input of
// complex event recognition.
type CriticalPoint struct {
	MMSI       uint32
	Pos        geo.Point
	Time       time.Time
	Type       EventType
	SpeedKn    float64       // instantaneous speed at detection
	HeadingDeg float64       // instantaneous heading at detection
	Duration   time.Duration // total episode duration on StopEnd/SlowEnd
	// Confidence in (0, 1] grades how far past its detection threshold
	// the event was: 0.5 at the threshold itself, approaching 1 as the
	// margin doubles. Zero means unset and reads as certain. Gap and
	// anchor points are always certain. Downstream probabilistic
	// recognition (rtec.SetProbabilistic) consumes it; crisp recognition
	// ignores it.
	Confidence float64
}

// marginConfidence maps a detected value relative to its threshold to a
// confidence: 0.5 when the value barely crossed the threshold, 1 when
// it exceeded it twofold.
func marginConfidence(value, threshold float64) float64 {
	if threshold <= 0 {
		return 1
	}
	c := 0.5 + 0.5*(value-threshold)/threshold
	if c < 0.5 {
		c = 0.5
	}
	if c > 1 {
		c = 1
	}
	return c
}

// String renders the critical point for logs.
func (c CriticalPoint) String() string {
	return fmt.Sprintf("%s %d %s @%s", c.Type, c.MMSI, c.Pos, c.Time.UTC().Format("15:04:05"))
}

// SortCriticalPoints stable-sorts points into the canonical (time,
// MMSI) order. Both the cluster coordinator's k-way merge and the
// single-process analytics tier normalize slide output through this
// one comparator: per-vessel order is preserved by either path, so the
// stable sort makes the two streams byte-identical.
func SortCriticalPoints(points []CriticalPoint) {
	slices.SortStableFunc(points, func(a, b CriticalPoint) int {
		if d := a.Time.Compare(b.Time); d != 0 {
			return d
		}
		if a.MMSI != b.MMSI {
			if a.MMSI < b.MMSI {
				return -1
			}
			return 1
		}
		return 0
	})
}

// Stats aggregates tracker activity for the compression and performance
// experiments.
type Stats struct {
	FixesIn    int // fixes admitted
	Duplicates int // dropped: non-advancing timestamps
	Outliers   int // dropped: off-course positions
	Critical   int // critical points emitted
	ByType     map[EventType]int

	// Late-fix accounting: AIS messages routinely arrive delayed or
	// reordered (paper §4.2). A fix older than the last query time but
	// still advancing its vessel's clock is admitted and counted as
	// LateAccepted; a fix behind its vessel's last position is dropped
	// (it cannot be sequenced) and counted as LateDropped — a subset of
	// Duplicates, split out so operators can tell reordering from
	// genuine duplicates.
	LateAccepted int
	LateDropped  int

	// Shed counts fixes skipped under overload degradation: positions
	// of long-stopped vessels that only advance the vessel clock while
	// the pipeline sheds load.
	Shed int
}

// CompressionRatio returns the fraction of original positions that were
// discarded (the paper reports ratios close to 94–95%).
func (s Stats) CompressionRatio() float64 {
	if s.FixesIn == 0 {
		return 0
	}
	return 1 - float64(s.Critical)/float64(s.FixesIn)
}
