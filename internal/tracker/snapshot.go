package tracker

import (
	"fmt"
	"slices"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
)

// Checkpoint support. The tracking tier serializes its full per-vessel
// motion state so a crashed surveillance process restores mid-window
// instead of rebuilding from a cold stream. The encoding is
// shard-count-independent: vessels are gathered across shards into one
// MMSI-sorted list, and restore re-routes each vessel by hash — a
// checkpoint taken with N shards restores into a tier with M.

// VesselSnapshot is the serialized motion state of one vessel: every
// field of the in-memory vesselState, with the window synopsis flattened
// to its critical points (entry timestamps equal cp.Time by
// construction, so they need no separate encoding).
type VesselSnapshot struct {
	MMSI     uint32
	Last     ais.Fix
	HaveLast bool

	VPrev  geo.Velocity
	HaveV  bool
	Recent []geo.Velocity

	OutlierRun int
	GapOpen    bool

	StopRun []ais.Fix
	Stopped bool

	SlowRun []ais.Fix
	Slow    bool

	RecentTurns []float64

	OdometerM  float64
	DepartureM float64

	Synopsis []CriticalPoint
	LastSeen time.Time
}

// Snapshot is the serialized state of the whole tracking tier: every
// vessel, MMSI-sorted, plus the merged counters.
type Snapshot struct {
	Vessels []VesselSnapshot
	Stats   Stats
}

// snapshotVessel captures one vessel's state, converting the columnar
// in-memory layout back to the stable row-oriented wire format. Slices
// are copied so the snapshot stays valid while the tracker keeps
// sliding.
func snapshotVessel(mmsi uint32, st *vesselState) VesselSnapshot {
	vs := VesselSnapshot{
		MMSI:        mmsi,
		HaveLast:    st.haveLast,
		VPrev:       st.vPrev,
		HaveV:       st.haveV,
		OutlierRun:  st.outlierRun,
		GapOpen:     st.gapOpen,
		Stopped:     st.stopped,
		Slow:        st.slow,
		RecentTurns: slices.Clone(st.recentTurns),
		OdometerM:   st.odometerM,
		DepartureM:  st.departureM,
	}
	if st.haveLast {
		vs.Last = ais.Fix{MMSI: mmsi, Pos: st.lastPos, Time: nsTime(st.lastTNS)}
	}
	if st.haveSeen {
		vs.LastSeen = nsTime(st.lastSeenNS)
	}
	if len(st.recent) > 0 {
		vs.Recent = make([]geo.Velocity, len(st.recent))
		for i := range st.recent {
			vs.Recent[i] = st.recent[i].v
		}
	}
	vs.StopRun = runToFixes(mmsi, st.stopRun)
	vs.SlowRun = runToFixes(mmsi, st.slowRun)
	if n := st.synopsis.Len(); n > 0 {
		vs.Synopsis = make([]CriticalPoint, 0, n)
		st.synopsis.Each(func(_ time.Time, cp CriticalPoint) bool {
			vs.Synopsis = append(vs.Synopsis, cp)
			return true
		})
	}
	return vs
}

// runToFixes converts a stop/slow run to the wire's row form.
func runToFixes(mmsi uint32, run []runFix) []ais.Fix {
	if len(run) == 0 {
		return nil
	}
	out := make([]ais.Fix, len(run))
	for i, f := range run {
		out[i] = ais.Fix{MMSI: mmsi, Pos: f.pos, Time: nsTime(f.tns)}
	}
	return out
}

// fixesToRun converts wire-form run members to the in-memory layout.
func fixesToRun(fs []ais.Fix) []runFix {
	if len(fs) == 0 {
		return nil
	}
	out := make([]runFix, len(fs))
	for i, f := range fs {
		out[i] = runFix{pos: f.Pos, tns: f.Time.UnixNano()}
	}
	return out
}

// restoreVessel rebuilds the in-memory state from its snapshot. Derived
// caches — latitude trig, per-sample heading trig, stop-run aggregates —
// are recomputed with the same math calls ingest would have made, so the
// restored state is bit-identical to the live one it mirrors.
func restoreVessel(vs VesselSnapshot) *vesselState {
	st := &vesselState{
		mmsi:        vs.MMSI,
		haveLast:    vs.HaveLast,
		vPrev:       vs.VPrev,
		haveV:       vs.HaveV,
		outlierRun:  vs.OutlierRun,
		gapOpen:     vs.GapOpen,
		stopRun:     fixesToRun(vs.StopRun),
		stopped:     vs.Stopped,
		slowRun:     fixesToRun(vs.SlowRun),
		slow:        vs.Slow,
		recentTurns: slices.Clone(vs.RecentTurns),
		odometerM:   vs.OdometerM,
		departureM:  vs.DepartureM,
		mult:        1,
	}
	if vs.HaveLast {
		st.lastPos = vs.Last.Pos
		st.lastTNS = vs.Last.Time.UnixNano()
		st.lastTrig = geo.LatTrigOf(vs.Last.Pos)
	}
	if !vs.LastSeen.IsZero() {
		st.lastSeenNS = vs.LastSeen.UnixNano()
		st.haveSeen = true
	}
	if len(vs.Recent) > 0 {
		st.recent = make([]velEntry, len(vs.Recent))
		for i, v := range vs.Recent {
			st.recent[i] = velEntry{v: v}
		}
	}
	st.rebuildStopAgg()
	for _, cp := range vs.Synopsis {
		st.synopsis.Append(cp.Time, cp)
	}
	return st
}

// Snapshot captures the tier's complete state. It must not run
// concurrently with Slide. Quarantined shards are excluded: callers
// that need a complete snapshot must repair them first (core.Snapshot
// refuses with ErrWedged until then).
func (s *Sharded) Snapshot() Snapshot {
	var snap Snapshot
	for i, sh := range s.shards {
		if s.outOfService(i) {
			continue
		}
		for mmsi, st := range sh.vessels {
			snap.Vessels = append(snap.Vessels, snapshotVessel(mmsi, st))
		}
	}
	slices.SortFunc(snap.Vessels, func(a, b VesselSnapshot) int {
		switch {
		case a.MMSI < b.MMSI:
			return -1
		case a.MMSI > b.MMSI:
			return 1
		}
		return 0
	})
	snap.Stats = s.Stats()
	return snap
}

// RestoreSnapshot replaces the tier's vessel state and counters with a
// snapshot's. Vessels are re-routed by hash, so the snapshot may come
// from a tier with a different shard count; the merged counters land on
// shard 0 (per-shard attribution is not preserved across a reshard, the
// merged totals are). It must not run concurrently with Slide.
func (s *Sharded) RestoreSnapshot(snap Snapshot) error {
	n := len(s.shards)
	// Quarantined shards' trackers may still be touched by a wedged
	// goroutine: replace them outright rather than mutating them, which
	// also re-admits every shard (a restore supersedes any pending
	// repair).
	if s.heal != nil {
		s.resetHeal()
	}
	for _, sh := range s.shards {
		sh.vessels = make(map[uint32]*vesselState)
		sh.stats = Stats{ByType: make(map[EventType]int)}
	}
	for _, vs := range snap.Vessels {
		sh := s.shards[ShardOf(vs.MMSI, n)]
		if _, dup := sh.vessels[vs.MMSI]; dup {
			return fmt.Errorf("tracker: snapshot lists vessel %d twice", vs.MMSI)
		}
		sh.vessels[vs.MMSI] = restoreVessel(vs)
	}
	s0 := s.shards[0]
	s0.stats.FixesIn = snap.Stats.FixesIn
	s0.stats.Duplicates = snap.Stats.Duplicates
	s0.stats.Outliers = snap.Stats.Outliers
	s0.stats.Critical = snap.Stats.Critical
	s0.stats.LateAccepted = snap.Stats.LateAccepted
	s0.stats.LateDropped = snap.Stats.LateDropped
	s0.stats.Shed = snap.Stats.Shed
	for k, v := range snap.Stats.ByType {
		s0.stats.ByType[k] = v
	}
	// Repair journals must describe the restored state, not the one it
	// replaced.
	if s.heal != nil {
		for i := range s.heal {
			s.rebase(i)
		}
	}
	return nil
}
