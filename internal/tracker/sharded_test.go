package tracker

import (
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/fleetsim"
	"repro/internal/geo"
	"repro/internal/stream"
)

// simBatches runs a seeded simulation and slices it into window slides.
// The returned batches are shared read-only across tracker runs.
func simBatches(t *testing.T, vessels int, hours int) []stream.Batch {
	t.Helper()
	cfg := fleetsim.DefaultConfig()
	cfg.Seed = 7
	cfg.Vessels = vessels
	cfg.Duration = time.Duration(hours) * time.Hour
	fixes := fleetsim.NewSimulator(cfg).Run()
	if len(fixes) == 0 {
		t.Fatal("simulator produced no fixes")
	}
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), 5*time.Minute)
	var batches []stream.Batch
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		batches = append(batches, b)
	}
	// A final empty slide far in the future expires every synopsis, so
	// the delta stream is compared end to end.
	last := batches[len(batches)-1].Query
	batches = append(batches, stream.Batch{Query: last.Add(48 * time.Hour)})
	return batches
}

func comparePoints(t *testing.T, slide int, kind string, serial, sharded []CriticalPoint) {
	t.Helper()
	if len(serial) != len(sharded) {
		t.Fatalf("slide %d: %s count %d (serial) != %d (sharded)", slide, kind, len(serial), len(sharded))
	}
	for i := range serial {
		if serial[i] != sharded[i] {
			t.Fatalf("slide %d: %s[%d] differs:\n serial:  %+v\n sharded: %+v",
				slide, kind, i, serial[i], sharded[i])
		}
	}
}

// TestShardedEquivalence is the golden test of the sharded tier: for a
// seeded fleet run, an N-shard tracker must emit byte-identical fresh
// and delta critical-point streams, and identical final statistics, to
// the single-shard (legacy serial) tracker on every slide.
func TestShardedEquivalence(t *testing.T) {
	batches := simBatches(t, 120, 2)
	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}

	for _, shards := range []int{2, 4, 7} {
		sharded := NewSharded(params, window, shards)
		serial := New(params, window)
		for i, b := range batches {
			// Tracker.Slide copies its outputs; the sharded result aliases
			// the tier's merge scratch, stable until its next Slide, so
			// comparing within the iteration needs no copy.
			want := serial.Slide(b)
			got := sharded.Slide(b)
			comparePoints(t, i, "fresh", want.Fresh, got.Fresh)
			comparePoints(t, i, "delta", want.Delta, got.Delta)
		}
		wantStats := serial.Stats()
		gotStats := sharded.Stats()
		if wantStats.FixesIn != gotStats.FixesIn || wantStats.Critical != gotStats.Critical ||
			wantStats.Duplicates != gotStats.Duplicates || wantStats.Outliers != gotStats.Outliers {
			t.Errorf("shards=%d: stats differ: serial %+v, sharded %+v", shards, wantStats, gotStats)
		}
		for k, v := range wantStats.ByType {
			if gotStats.ByType[k] != v {
				t.Errorf("shards=%d: ByType[%v] = %d, want %d", shards, k, gotStats.ByType[k], v)
			}
		}
		sharded.Close()
	}
}

// TestShardedEquivalenceStreaming advances a 1-shard and a 4-shard tier
// in lockstep over a larger run, copying the serial outputs before the
// next slide. Unlike the replay-based golden test this exercises long
// windows with per-slide comparison at streaming cost.
func TestShardedEquivalenceStreaming(t *testing.T) {
	batches := simBatches(t, 200, 3)
	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}

	serial := NewSharded(params, window, 1)
	sharded := NewSharded(params, window, 4)
	defer serial.Close()
	defer sharded.Close()

	var critical int
	for i, b := range batches {
		want := serial.Slide(b)
		wantFresh := append([]CriticalPoint(nil), want.Fresh...)
		wantDelta := append([]CriticalPoint(nil), want.Delta...)
		got := sharded.Slide(b)
		comparePoints(t, i, "fresh", wantFresh, got.Fresh)
		comparePoints(t, i, "delta", wantDelta, got.Delta)
		critical += len(got.Fresh)
	}
	if critical == 0 {
		t.Fatal("run produced no critical points; equivalence vacuous")
	}
	if serial.VesselCount() != sharded.VesselCount() {
		t.Errorf("vessel count %d (serial) != %d (sharded)", serial.VesselCount(), sharded.VesselCount())
	}
	si, gi := serial.Infos(), sharded.Infos()
	if len(si) != len(gi) {
		t.Fatalf("Infos length %d != %d", len(si), len(gi))
	}
	for i := range si {
		if si[i] != gi[i] {
			t.Errorf("Infos[%d] differs: %+v vs %+v", i, si[i], gi[i])
		}
	}
}

func TestShardOfRange(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 16} {
		for mmsi := uint32(200000000); mmsi < 200000100; mmsi++ {
			s := ShardOf(mmsi, n)
			if s < 0 || s >= n {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", mmsi, n, s)
			}
			if s != ShardOf(mmsi, n) {
				t.Fatalf("ShardOf(%d, %d) not deterministic", mmsi, n)
			}
		}
	}
	if ShardOf(123456789, 1) != 0 {
		t.Error("single shard must own every vessel")
	}
	if ShardOf(123456789, 0) != 0 || ShardOf(123456789, -3) != 0 {
		t.Error("degenerate shard counts must clamp to shard 0")
	}
}

// TestShardOfBalance checks that sequential MMSI blocks — the worst case
// for a modulo without mixing — spread evenly across shards.
func TestShardOfBalance(t *testing.T) {
	const n = 8
	const vessels = 4000
	var counts [n]int
	for i := 0; i < vessels; i++ {
		counts[ShardOf(uint32(200000000+i), n)]++
	}
	mean := vessels / n
	for s, c := range counts {
		if c < mean/2 || c > mean*2 {
			t.Errorf("shard %d owns %d of %d vessels (mean %d): hash badly unbalanced", s, c, vessels, mean)
		}
	}
}

// TestShardedBoundaryVessels pins vessels to each shard of a small tier
// and checks the per-vessel accessors route to the right shard.
func TestShardedBoundaryVessels(t *testing.T) {
	const n = 4
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}
	s := NewSharded(DefaultParams(), window, n)
	defer s.Close()

	// One vessel per shard: scan MMSIs until each shard is hit.
	byShard := map[int]uint32{}
	for m := uint32(1000); len(byShard) < n; m++ {
		sh := ShardOf(m, n)
		if _, ok := byShard[sh]; !ok {
			byShard[sh] = m
		}
	}
	base := time.Date(2009, 6, 1, 0, 0, 0, 0, time.UTC)
	var b stream.Batch
	b.Query = base.Add(5 * time.Minute)
	for _, m := range byShard {
		for i := 0; i < 3; i++ {
			b.Fixes = append(b.Fixes, ais.Fix{
				MMSI: m,
				Pos:  geo.Point{Lon: 24.0, Lat: 37.0 + float64(i)*0.01},
				Time: base.Add(time.Duration(i) * time.Minute),
			})
		}
	}
	res := s.Slide(b)
	if len(res.Fresh) == 0 {
		t.Fatal("no critical points from boundary vessels")
	}
	if s.VesselCount() != n {
		t.Fatalf("VesselCount = %d, want %d", s.VesselCount(), n)
	}
	for sh, m := range byShard {
		if _, ok := s.Info(m); !ok {
			t.Errorf("vessel %d (shard %d) missing from Info", m, sh)
		}
		if s.Synopsis(m) == nil {
			t.Errorf("vessel %d (shard %d) has no synopsis", m, sh)
		}
	}
}
