package tracker

import (
	"testing"
	"time"

	"repro/internal/stream"
)

// TestSnapshotRestoreEquivalence is the tracker-level kill-and-restore
// golden test: run a seeded fleet to an arbitrary slide, snapshot, build
// a fresh tier (same or different shard count), restore, and finish the
// run — every subsequent fresh/delta stream and the final statistics
// must be byte-identical to the uninterrupted run.
func TestSnapshotRestoreEquivalence(t *testing.T) {
	batches := simBatches(t, 120, 2)
	params := DefaultParams()
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}

	for _, tc := range []struct {
		name            string
		fromShards, to  int
		killAfterSlides int
	}{
		{"same-shard-count", 4, 4, len(batches) / 2},
		{"reshard-up", 2, 7, len(batches) / 3},
		{"reshard-down", 7, 1, 2 * len(batches) / 3},
		{"kill-at-first-slide", 3, 3, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			uninterrupted := NewSharded(params, window, tc.fromShards)
			defer uninterrupted.Close()
			victim := NewSharded(params, window, tc.fromShards)
			defer victim.Close()

			var snap Snapshot
			for i, b := range batches[:tc.killAfterSlides] {
				want := uninterrupted.Slide(b)
				wantFresh := append([]CriticalPoint(nil), want.Fresh...)
				wantDelta := append([]CriticalPoint(nil), want.Delta...)
				got := victim.Slide(b)
				comparePoints(t, i, "fresh", wantFresh, got.Fresh)
				comparePoints(t, i, "delta", wantDelta, got.Delta)
			}
			snap = victim.Snapshot()

			restored := NewSharded(params, window, tc.to)
			defer restored.Close()
			if err := restored.RestoreSnapshot(snap); err != nil {
				t.Fatal(err)
			}

			var critical int
			for i, b := range batches[tc.killAfterSlides:] {
				want := uninterrupted.Slide(b)
				wantFresh := append([]CriticalPoint(nil), want.Fresh...)
				wantDelta := append([]CriticalPoint(nil), want.Delta...)
				got := restored.Slide(b)
				comparePoints(t, tc.killAfterSlides+i, "fresh", wantFresh, got.Fresh)
				comparePoints(t, tc.killAfterSlides+i, "delta", wantDelta, got.Delta)
				critical += len(got.Fresh)
			}
			if critical == 0 {
				t.Fatal("post-restore run produced no critical points; equivalence vacuous")
			}

			wantStats, gotStats := uninterrupted.Stats(), restored.Stats()
			if wantStats.FixesIn != gotStats.FixesIn || wantStats.Critical != gotStats.Critical ||
				wantStats.Duplicates != gotStats.Duplicates || wantStats.Outliers != gotStats.Outliers {
				t.Errorf("stats differ after restore: %+v vs %+v", gotStats, wantStats)
			}
			for k, v := range wantStats.ByType {
				if gotStats.ByType[k] != v {
					t.Errorf("ByType[%v] = %d, want %d", k, gotStats.ByType[k], v)
				}
			}

			si, gi := uninterrupted.Infos(), restored.Infos()
			if len(si) != len(gi) {
				t.Fatalf("Infos length %d != %d after restore", len(gi), len(si))
			}
			for i := range si {
				if si[i] != gi[i] {
					t.Errorf("Infos[%d] differs after restore: %+v vs %+v", i, gi[i], si[i])
				}
			}
		})
	}
}

// TestSnapshotIndependentOfLiveState verifies the snapshot deep-copies:
// sliding the source tier after Snapshot must not change the snapshot.
func TestSnapshotIndependentOfLiveState(t *testing.T) {
	batches := simBatches(t, 40, 1)
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}
	s := NewSharded(DefaultParams(), window, 2)
	defer s.Close()

	mid := len(batches) / 2
	for _, b := range batches[:mid] {
		s.Slide(b)
	}
	snap := s.Snapshot()
	before := len(snap.Vessels)
	fixesIn := snap.Stats.FixesIn
	for _, b := range batches[mid:] {
		s.Slide(b)
	}
	if len(snap.Vessels) != before || snap.Stats.FixesIn != fixesIn {
		t.Fatal("snapshot mutated by subsequent slides")
	}

	// Restoring the stale snapshot must still yield exactly the mid-run
	// state: replay the tail and compare against a reference that never
	// crashed.
	ref := NewSharded(DefaultParams(), window, 2)
	defer ref.Close()
	for _, b := range batches[:mid] {
		ref.Slide(b)
	}
	restored := NewSharded(DefaultParams(), window, 3)
	defer restored.Close()
	if err := restored.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	for i, b := range batches[mid:] {
		want := ref.Slide(b)
		wantFresh := append([]CriticalPoint(nil), want.Fresh...)
		got := restored.Slide(b)
		comparePoints(t, mid+i, "fresh", wantFresh, got.Fresh)
	}
}

// TestRestoreRejectsDuplicateVessel guards the snapshot integrity check.
func TestRestoreRejectsDuplicateVessel(t *testing.T) {
	window := stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}
	s := NewSharded(DefaultParams(), window, 2)
	defer s.Close()
	snap := Snapshot{
		Vessels: []VesselSnapshot{{MMSI: 42}, {MMSI: 42}},
		Stats:   Stats{ByType: map[EventType]int{}},
	}
	if err := s.RestoreSnapshot(snap); err == nil {
		t.Fatal("duplicate vessel accepted")
	}
}
