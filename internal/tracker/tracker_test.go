package tracker

import (
	"testing"
	"time"

	"repro/internal/ais"
	"repro/internal/geo"
	"repro/internal/stream"
)

var t0 = time.Date(2009, 6, 1, 6, 0, 0, 0, time.UTC)

const mmsi = uint32(237000001)

// legFrom appends n fixes sailing from the last fix's position (or start
// when fixes is empty) on the given heading and speed, one fix every dt.
func legFrom(fixes []ais.Fix, start geo.Point, heading, speedKn float64, n int, dt time.Duration) []ais.Fix {
	pos := start
	t := t0
	if len(fixes) > 0 {
		pos = fixes[len(fixes)-1].Pos
		t = fixes[len(fixes)-1].Time
	}
	step := geo.KnotsToMetersPerSecond(speedKn) * dt.Seconds()
	for i := 0; i < n; i++ {
		t = t.Add(dt)
		pos = geo.Destination(pos, heading, step)
		fixes = append(fixes, ais.Fix{MMSI: mmsi, Pos: pos, Time: t})
	}
	return fixes
}

// dwellAt appends n stationary fixes at the last position.
func dwellAt(fixes []ais.Fix, n int, dt time.Duration) []ais.Fix {
	pos := fixes[len(fixes)-1].Pos
	t := fixes[len(fixes)-1].Time
	for i := 0; i < n; i++ {
		t = t.Add(dt)
		fixes = append(fixes, ais.Fix{MMSI: mmsi, Pos: pos, Time: t})
	}
	return fixes
}

// runAll feeds all fixes as slide batches and returns every fresh
// critical point plus the tracker for further inspection.
func runAll(t *testing.T, fixes []ais.Fix, params Params, window stream.WindowSpec) ([]CriticalPoint, *Tracker) {
	t.Helper()
	tr := New(params, window)
	batcher := stream.NewBatcher(stream.NewSliceSource(fixes), window.Slide)
	var out []CriticalPoint
	for {
		b, ok := batcher.Next()
		if !ok {
			break
		}
		res := tr.Slide(b)
		out = append(out, res.Fresh...)
	}
	return out, tr
}

func countType(points []CriticalPoint, et EventType) int {
	n := 0
	for _, cp := range points {
		if cp.Type == et {
			n++
		}
	}
	return n
}

func defaultWindow() stream.WindowSpec {
	return stream.WindowSpec{Range: time.Hour, Slide: 5 * time.Minute}
}

func TestStraightCruiseEmitsOnlyFirst(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 60, 30*time.Second)
	points, _ := runAll(t, fixes, DefaultParams(), defaultWindow())
	if got := countType(points, EventFirst); got != 1 {
		t.Errorf("first points = %d, want 1", got)
	}
	// A perfectly straight constant-speed course contributes nothing else.
	if len(points) != 1 {
		t.Errorf("critical points = %d (%v), want 1", len(points), points)
	}
}

func TestSharpTurnDetected(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 20, 30*time.Second)
	fixes = legFrom(fixes, origin, 135, 12, 20, 30*time.Second) // 45° turn
	points, _ := runAll(t, fixes, DefaultParams(), defaultWindow())
	if got := countType(points, EventTurn); got != 1 {
		t.Errorf("turns = %d, want 1", got)
	}
}

func TestSmoothTurnAccumulates(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 10, 30*time.Second)
	// Eight successive 4° heading changes: each below Δθ=15°, together 32°.
	h := 90.0
	for i := 0; i < 8; i++ {
		h += 4
		fixes = legFrom(fixes, origin, h, 12, 1, 30*time.Second)
	}
	points, _ := runAll(t, fixes, DefaultParams(), defaultWindow())
	if countType(points, EventTurn) != 0 {
		t.Errorf("sharp turns detected for 4° steps")
	}
	if got := countType(points, EventSmoothTurn); got < 1 {
		t.Errorf("smooth turns = %d, want >= 1", got)
	}
}

func TestLongTermStop(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 15, 30*time.Second)
	fixes = dwellAt(fixes, 20, 30*time.Second) // 10 minutes at rest
	fixes = legFrom(fixes, origin, 90, 12, 15, 30*time.Second)
	points, _ := runAll(t, fixes, DefaultParams(), defaultWindow())
	if got := countType(points, EventStopStart); got != 1 {
		t.Fatalf("stop starts = %d, want 1 (points: %v)", got, points)
	}
	if got := countType(points, EventStopEnd); got != 1 {
		t.Fatalf("stop ends = %d, want 1", got)
	}
	// The collapsed stop must carry a plausible duration (~10 min).
	for _, cp := range points {
		if cp.Type == EventStopEnd {
			if cp.Duration < 8*time.Minute || cp.Duration > 12*time.Minute {
				t.Errorf("stop duration = %v, want ~10m", cp.Duration)
			}
		}
	}
}

func TestStopCentroidNearAnchorage(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 10, 10, 30*time.Second)
	anchor := fixes[len(fixes)-1].Pos
	fixes = dwellAt(fixes, 15, 30*time.Second)
	fixes = legFrom(fixes, origin, 90, 10, 5, 30*time.Second)
	points, _ := runAll(t, fixes, DefaultParams(), defaultWindow())
	for _, cp := range points {
		if cp.Type == EventStopStart || cp.Type == EventStopEnd {
			if d := geo.Haversine(cp.Pos, anchor); d > 50 {
				t.Errorf("%v centroid %.0f m from anchorage", cp.Type, d)
			}
		}
	}
}

func TestSlowMotion(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 15, 30*time.Second)
	fixes = legFrom(fixes, origin, 90, 3, 15, 30*time.Second) // trawling speed
	fixes = legFrom(fixes, origin, 90, 12, 15, 30*time.Second)
	points, _ := runAll(t, fixes, DefaultParams(), defaultWindow())
	if got := countType(points, EventSlowStart); got != 1 {
		t.Fatalf("slow starts = %d, want 1", got)
	}
	if got := countType(points, EventSlowEnd); got != 1 {
		t.Fatalf("slow ends = %d, want 1", got)
	}
}

func TestSlowMotionIsNotAStop(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	// 3 knots spreads ~46 m per 30 s: after a few fixes the run leaves
	// the 200 m stop radius, so no stop may be reported.
	fixes := legFrom(nil, origin, 90, 12, 15, 30*time.Second)
	fixes = legFrom(fixes, origin, 90, 3, 30, 30*time.Second)
	points, _ := runAll(t, fixes, DefaultParams(), defaultWindow())
	if got := countType(points, EventStopStart); got != 0 {
		t.Errorf("stops during slow motion = %d, want 0", got)
	}
}

func TestGapAcrossBatches(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 10, 30*time.Second)
	lastBefore := fixes[len(fixes)-1]
	// 25 minutes of silence, then resume.
	resume := legFrom(fixes[:len(fixes):len(fixes)], lastBefore.Pos, 90, 12, 10, 30*time.Second)
	for i := range resume[len(fixes):] {
		resume[len(fixes)+i].Time = resume[len(fixes)+i].Time.Add(25 * time.Minute)
	}
	points, _ := runAll(t, resume, DefaultParams(), defaultWindow())
	starts := countType(points, EventGapStart)
	ends := countType(points, EventGapEnd)
	if starts != 1 || ends != 1 {
		t.Fatalf("gap starts/ends = %d/%d, want 1/1", starts, ends)
	}
	for _, cp := range points {
		if cp.Type == EventGapStart {
			if !cp.Time.Equal(lastBefore.Time) {
				t.Errorf("gap start stamped %v, want last report %v", cp.Time, lastBefore.Time)
			}
			if cp.Pos != lastBefore.Pos {
				t.Errorf("gap start at %v, want last position %v", cp.Pos, lastBefore.Pos)
			}
		}
	}
}

func TestGapDetectedAtSlideBoundaryWhileSilent(t *testing.T) {
	// Vessel reports, then goes silent forever: the slide-time check must
	// emit a gap start without any resuming fix.
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 5, 30*time.Second)
	tr := New(DefaultParams(), defaultWindow())
	res := tr.Slide(stream.Batch{Fixes: fixes, Query: t0.Add(5 * time.Minute)})
	if countType(res.Fresh, EventGapStart) != 0 {
		t.Fatal("premature gap")
	}
	// Empty slides pass; gap period is 10 minutes.
	res = tr.Slide(stream.Batch{Query: t0.Add(10 * time.Minute)})
	res2 := tr.Slide(stream.Batch{Query: t0.Add(15 * time.Minute)})
	total := countType(res.Fresh, EventGapStart) + countType(res2.Fresh, EventGapStart)
	if total != 1 {
		t.Errorf("gap starts across silent slides = %d, want 1", total)
	}
}

func TestSpeedChange(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 10, 15, 30*time.Second)
	fixes = legFrom(fixes, origin, 90, 20, 15, 30*time.Second) // +100%
	points, _ := runAll(t, fixes, DefaultParams(), defaultWindow())
	if got := countType(points, EventSpeedChange); got != 1 {
		t.Errorf("speed changes = %d, want 1", got)
	}
}

func TestOutlierRejected(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 20, 30*time.Second)
	// Displace one mid-course fix 2 km sideways: an impossible jump.
	mid := len(fixes) / 2
	fixes[mid].Pos = geo.Destination(fixes[mid].Pos, 0, 2000)
	points, tr := runAll(t, fixes, DefaultParams(), defaultWindow())
	if tr.Stats().Outliers == 0 {
		t.Error("no outlier counted")
	}
	// The outlier must not have produced any turn or speed-change point.
	if n := countType(points, EventTurn) + countType(points, EventSpeedChange); n != 0 {
		t.Errorf("outlier leaked %d critical points", n)
	}
}

func TestOutlierFilterAblation(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 20, 30*time.Second)
	mid := len(fixes) / 2
	fixes[mid].Pos = geo.Destination(fixes[mid].Pos, 0, 2000)
	params := DefaultParams()
	params.DisableOutlierFilter = true
	points, tr := runAll(t, fixes, params, defaultWindow())
	if tr.Stats().Outliers != 0 {
		t.Error("outliers counted despite disabled filter")
	}
	// Without the filter the bogus jump pollutes the synopsis.
	if n := countType(points, EventTurn) + countType(points, EventSpeedChange); n == 0 {
		t.Error("disabled filter produced no spurious events — ablation is vacuous")
	}
}

func TestOutlierRunResync(t *testing.T) {
	// A genuine course change must not be suppressed forever: after
	// OutlierRunLimit consecutive rejections the tracker resynchronizes.
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 8, 15, 30*time.Second)
	// Vessel suddenly speeds to 40 knots on a reversed course.
	fixes = legFrom(fixes, origin, 270, 40, 15, 30*time.Second)
	_, tr := runAll(t, fixes, DefaultParams(), defaultWindow())
	st := tr.vessels[mmsi]
	if st == nil {
		t.Fatal("vessel state evicted unexpectedly")
	}
	// After resync the tracked position must be on the new course (i.e.
	// recent fixes accepted again).
	if tr.Stats().Outliers >= 10 {
		t.Errorf("tracker kept rejecting after the course change: %d outliers", tr.Stats().Outliers)
	}
}

func TestDuplicateTimestampsDropped(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 10, 30*time.Second)
	dup := fixes[5]
	fixes = append(fixes[:6], append([]ais.Fix{dup}, fixes[6:]...)...)
	_, tr := runAll(t, fixes, DefaultParams(), defaultWindow())
	if tr.Stats().Duplicates != 1 {
		t.Errorf("duplicates = %d, want 1", tr.Stats().Duplicates)
	}
}

func TestEvictionProducesDelta(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	window := stream.WindowSpec{Range: 10 * time.Minute, Slide: 5 * time.Minute}
	fixes := legFrom(nil, origin, 90, 12, 10, 30*time.Second) // 5 minutes of cruise
	tr := New(DefaultParams(), window)
	res := tr.Slide(stream.Batch{Fixes: fixes, Query: t0.Add(5 * time.Minute)})
	if len(res.Fresh) == 0 {
		t.Fatal("no fresh points")
	}
	// Slide forward until everything expires.
	var delta []CriticalPoint
	for i := 2; i <= 6; i++ {
		r := tr.Slide(stream.Batch{Query: t0.Add(time.Duration(i*5) * time.Minute)})
		delta = append(delta, r.Delta...)
	}
	// All emitted points (including the gap start emitted when the vessel
	// went silent) must eventually expire into the delta stream.
	if len(delta) < len(res.Fresh) {
		t.Errorf("delta = %d points, want >= %d", len(delta), len(res.Fresh))
	}
	if tr.VesselCount() != 0 {
		t.Errorf("vessel state not evicted after silence > ω")
	}
	// Delta must be time-ordered.
	for i := 1; i < len(delta); i++ {
		if delta[i].Time.Before(delta[i-1].Time) {
			t.Fatal("delta stream not time-ordered")
		}
	}
}

func TestSynopsisAccessor(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 10, 30*time.Second)
	fixes = legFrom(fixes, origin, 150, 12, 10, 30*time.Second)
	tr := New(DefaultParams(), defaultWindow())
	tr.Slide(stream.Batch{Fixes: fixes, Query: t0.Add(10 * time.Minute)})
	syn := tr.Synopsis(mmsi)
	if len(syn) < 2 {
		t.Fatalf("synopsis = %d points, want >= 2 (first + turn)", len(syn))
	}
	if tr.Synopsis(999) != nil {
		t.Error("synopsis for unknown vessel should be nil")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid params")
		}
	}()
	New(Params{}, defaultWindow())
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	bad := []Params{
		{VMinKnots: 0},
		func() Params { p := DefaultParams(); p.VSlowKnots = 0.5; return p }(),
		func() Params { p := DefaultParams(); p.SpeedChangeFrac = 0; return p }(),
		func() Params { p := DefaultParams(); p.GapPeriod = 0; return p }(),
		func() Params { p := DefaultParams(); p.TurnThresholdDeg = 190; return p }(),
		func() Params { p := DefaultParams(); p.StopRadiusMeters = -1; return p }(),
		func() Params { p := DefaultParams(); p.M = 1; return p }(),
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func TestStatsCompressionRatio(t *testing.T) {
	s := Stats{FixesIn: 100, Critical: 6}
	if got := s.CompressionRatio(); got != 0.94 {
		t.Errorf("ratio = %v, want 0.94", got)
	}
	if (Stats{}).CompressionRatio() != 0 {
		t.Error("empty stats ratio should be 0")
	}
}

func TestTurnConfidenceGrowsWithSharpness(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	confOf := func(turnDeg float64) float64 {
		fixes := legFrom(nil, origin, 90, 12, 15, 30*time.Second)
		fixes = legFrom(fixes, origin, 90+turnDeg, 12, 15, 30*time.Second)
		points, _ := runAll(t, fixes, DefaultParams(), defaultWindow())
		for _, cp := range points {
			if cp.Type == EventTurn {
				return cp.Confidence
			}
		}
		t.Fatalf("no turn detected for %v°", turnDeg)
		return 0
	}
	gentle := confOf(18) // barely past Δθ=15
	sharp := confOf(80)
	if gentle < 0.5 || gentle > 0.7 {
		t.Errorf("barely-threshold turn confidence = %v, want ≈0.5–0.7", gentle)
	}
	if sharp != 1 {
		t.Errorf("sharp turn confidence = %v, want 1", sharp)
	}
	if sharp <= gentle {
		t.Errorf("confidence not monotone in sharpness: %v vs %v", gentle, sharp)
	}
}

func TestStopConfidenceReflectsTightness(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 10, 30*time.Second)
	fixes = dwellAt(fixes, 15, 30*time.Second) // perfectly tight stop
	fixes = legFrom(fixes, origin, 90, 12, 5, 30*time.Second)
	points, _ := runAll(t, fixes, DefaultParams(), defaultWindow())
	for _, cp := range points {
		if cp.Type == EventStopStart || cp.Type == EventStopEnd {
			if cp.Confidence < 0.9 {
				t.Errorf("%v confidence = %v for a zero-drift stop, want ≈1", cp.Type, cp.Confidence)
			}
		}
	}
}

func TestGapPointsAreCertain(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	fixes := legFrom(nil, origin, 90, 12, 5, 30*time.Second)
	last := fixes[len(fixes)-1]
	resumed := legFrom(fixes[:len(fixes):len(fixes)], last.Pos, 90, 12, 5, 30*time.Second)
	for i := range resumed[len(fixes):] {
		resumed[len(fixes)+i].Time = resumed[len(fixes)+i].Time.Add(20 * time.Minute)
	}
	points, _ := runAll(t, resumed, DefaultParams(), defaultWindow())
	for _, cp := range points {
		if cp.Type == EventGapStart || cp.Type == EventGapEnd {
			if cp.Confidence != 0 && cp.Confidence != 1 {
				t.Errorf("%v confidence = %v, gaps are certain", cp.Type, cp.Confidence)
			}
		}
	}
}

func TestOdometer(t *testing.T) {
	origin := geo.Point{Lon: 24, Lat: 37.5}
	// 30 minutes at 12 knots ≈ 11.1 km, then a 10-minute stop, then
	// 15 more minutes at 12 knots ≈ 5.6 km.
	fixes := legFrom(nil, origin, 90, 12, 60, 30*time.Second)
	fixes = dwellAt(fixes, 20, 30*time.Second)
	fixes = legFrom(fixes, origin, 90, 12, 30, 30*time.Second)
	_, tr := runAll(t, fixes, DefaultParams(), defaultWindow())

	total, sinceDep, ok := tr.Odometer(mmsi)
	if !ok {
		t.Fatal("no odometer for tracked vessel")
	}
	leg1 := geo.KnotsToMetersPerSecond(12) * 30 * 60
	leg2 := geo.KnotsToMetersPerSecond(12) * 15 * 60
	if total < (leg1+leg2)*0.95 || total > (leg1+leg2)*1.05 {
		t.Errorf("total odometer = %.0f m, want ≈%.0f", total, leg1+leg2)
	}
	// Distance since departure restarted at the stop's end.
	if sinceDep < leg2*0.9 || sinceDep > leg2*1.1 {
		t.Errorf("since-departure = %.0f m, want ≈%.0f", sinceDep, leg2)
	}
	if _, _, ok := tr.Odometer(424242); ok {
		t.Error("odometer for unknown vessel")
	}
}
