package tracker

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"slices"
	"time"

	"repro/internal/stream"
	"repro/internal/supervise"
)

// Self-healing for the sharded tier. With EnableSelfHeal on, a panic in
// a shard worker no longer kills the process: the shard is rebuilt from
// a per-shard journal — a base snapshot of its vessels plus the routed
// fixes of every slide since — and the slide is re-run synchronously,
// so a transient panic costs nothing but latency and the merged output
// stays bit-identical. A shard that panics again during the re-run, or
// that outlives the slide watchdog, is quarantined instead: its fixes
// are journaled but dropped from the live output (counted in
// FaultStats.DroppedFixes) until a supervisor calls RepairShard, which
// replays the journal into a fresh tracker and re-admits it.
//
// The journal is re-based every journalEvery healthy slides so replay
// cost stays bounded. While a shard is quarantined the journal keeps
// growing up to journalCap slides; beyond that the oldest slides are
// discarded and counted as replay gaps (FaultStats.GapSlides): repair
// then restores a state missing those slides' fixes — degraded but
// deterministic, the same accounting contract checkpoint replay uses.

// DefaultJournalSlides is the re-base cadence used when EnableSelfHeal
// is given a non-positive value.
const DefaultJournalSlides = 8

// shardSlide is one journaled slide of one shard: the query time and a
// copy of the fixes routed to it.
type shardSlide struct {
	q     time.Time
	fixes []idxFix
}

// shardHeal is the per-shard repair state.
type shardHeal struct {
	quarantined bool
	failed      bool // supervisor gave up; out of service until restart/restore
	info        supervise.Quarantine

	baseVessels []VesselSnapshot
	baseStats   Stats
	slides      []shardSlide
	gapped      int // journal slides discarded by the cap since the base
}

// EnableSelfHeal turns on panic isolation, journaling, and repair for
// the tier. journalEvery is the re-base cadence in slides (<=0 uses
// DefaultJournalSlides). It must be called before the first Slide and
// is idempotent.
func (s *Sharded) EnableSelfHeal(journalEvery int) {
	if s.heal != nil {
		return
	}
	if journalEvery <= 0 {
		journalEvery = DefaultJournalSlides
	}
	s.journalEvery = journalEvery
	s.journalCap = journalEvery * 8
	s.heal = make([]shardHeal, len(s.shards))
	s.skip = make([]bool, len(s.shards))
	// All shards run pooled so the caller is free to watchdog them, and
	// all shards index emissions so the merge path is uniform.
	for i := range s.shards {
		s.shards[i].indexing = true
		s.rebase(i)
	}
	if s.pool == nil {
		s.pool = newShardPool(1)
		runtime.SetFinalizer(s, (*Sharded).Close)
	} else {
		s.pool.addWorker()
	}
}

// SelfHealing reports whether EnableSelfHeal was called.
func (s *Sharded) SelfHealing() bool { return s.heal != nil }

// SetSlideTimeout arms the per-slide stall watchdog: a shard that has
// not finished its slide within d is quarantined and its pool worker
// replaced. Zero disables the watchdog. Requires EnableSelfHeal.
func (s *Sharded) SetSlideTimeout(d time.Duration) { s.timeout = d }

// SetFaultHook installs a chaos-injection hook called at the start of
// every shard slide with the shard index, the slide ordinal (1-based),
// and the attempt (0 for the live run, 1 for the in-slide re-run after
// a panic). The hook may panic — recovered and handled like any shard
// panic — or block, which the stall watchdog converts into a
// quarantine. Pass nil to remove. Requires EnableSelfHeal to have any
// effect.
func (s *Sharded) SetFaultHook(fn func(shard, slide, attempt int)) {
	if fn == nil {
		s.faultHook.Store(nil)
		return
	}
	s.faultHook.Store(&fn)
}

// FaultStats is the tier's fault-handling counter snapshot. All fields
// are served from atomics, so it is safe to call from any goroutine.
type FaultStats struct {
	Panics       int // shard panics recovered (including re-run panics)
	Stalls       int // shards quarantined by the slide watchdog
	Retries      int // in-slide rebuild-and-rerun recoveries (lossless)
	Repairs      int // quarantine -> replay -> re-admit cycles completed
	Quarantined  int // shards currently quarantined
	Failed       int // shards abandoned after repair gave up
	DroppedFixes int // fixes dropped while their shard was out of service
	GapSlides    int // journal slides discarded by the cap (lost to replay)
}

// FaultStats returns the current fault counters.
func (s *Sharded) FaultStats() FaultStats {
	return FaultStats{
		Panics:       int(s.panics.Load()),
		Stalls:       int(s.stalls.Load()),
		Retries:      int(s.retries.Load()),
		Repairs:      int(s.repairs.Load()),
		Quarantined:  int(s.quarCount.Load()),
		Failed:       int(s.failedCount.Load()),
		DroppedFixes: int(s.dropped.Load()),
		GapSlides:    int(s.gapSlides.Load()),
	}
}

// Quarantined returns the quarantine records of every out-of-service
// shard awaiting repair. It must not run concurrently with Slide.
func (s *Sharded) Quarantined() []supervise.Quarantine {
	var out []supervise.Quarantine
	for i := range s.heal {
		if s.heal[i].quarantined {
			out = append(out, s.heal[i].info)
		}
	}
	return out
}

// slideHealed is the Slide path with self-healing enabled: every shard
// runs pooled under an optional stall watchdog, panics are recovered
// and retried from the journal in-slide, and stragglers or doubly
// panicking shards are quarantined for asynchronous repair.
func (s *Sharded) slideHealed(b stream.Batch) SlideResult {
	n := len(s.shards)
	s.slideSeq++

	// The journal stores row-form fixes (they must outlive the batch
	// arena, which the caller recycles next slide), so a columnar batch
	// is materialized to rows once here. b is a value copy; the caller's
	// batch is untouched.
	if b.Cols != nil {
		s.rowScratch = b.Cols.AppendRows(s.rowScratch[:0])
		b.Fixes = s.rowScratch
		b.Cols = nil
	}

	for i := range s.byShard {
		s.byShard[i] = s.byShard[i][:0]
	}
	for i, f := range b.Fixes {
		sh := ShardOf(f.MMSI, n)
		s.byShard[sh] = append(s.byShard[sh], idxFix{fix: f, idx: int32(i)})
	}
	// Journal every shard — quarantined ones too, so repair replays the
	// fixes their live run is dropping.
	for i := 0; i < n; i++ {
		s.journalAppend(i, b.Query)
	}

	// Per-slide output slots and completion channel: a goroutine wedged
	// past the watchdog may publish long after this slide (or never),
	// so it must not share slots with future slides.
	outs := make([]shardOut, n)
	s.outs = outs
	done := make(chan int, n)
	hook := s.faultHook.Load()
	live := 0
	for i := 0; i < n; i++ {
		if s.outOfService(i) {
			s.skip[i] = true
			s.dropped.Add(int64(len(s.byShard[i])))
			continue
		}
		s.skip[i] = false
		live++
		s.pool.jobs <- shardJob{
			tr: s.shards[i], fixes: s.byShard[i], q: b.Query,
			out: &outs[i], done: done, i: i,
			hook: hook, slide: s.slideSeq, attempt: 0, recoverable: true,
		}
	}

	// Collect, with the optional stall watchdog. Shards that beat the
	// deadline but raced the timer are drained before stragglers are
	// declared wedged.
	var expire <-chan time.Time
	var timer *time.Timer
	if s.timeout > 0 {
		timer = time.NewTimer(s.timeout)
		expire = timer.C
	}
	completed := make([]bool, n)
	got := 0
collect:
	for got < live {
		select {
		case i := <-done:
			completed[i] = true
			got++
		case <-expire:
			for {
				select {
				case i := <-done:
					completed[i] = true
					got++
					if got == live {
						break collect
					}
				default:
					break collect
				}
			}
		}
	}
	if timer != nil {
		timer.Stop()
	}

	// Stragglers: quarantine and replace their pool workers, which are
	// stuck inside runShard on the now-abandoned tracker.
	for i := 0; i < n; i++ {
		if s.skip[i] || completed[i] {
			continue
		}
		s.stalls.Add(1)
		s.quarantineShard(i, supervise.Quarantine{
			Target: fmt.Sprintf("tracker/%d", i),
			Cause:  "stall",
			Since:  time.Now(),
		})
		s.pool.addWorker()
	}

	// Panicked shards: rebuild from the journal and re-run this slide
	// synchronously. The re-run's output is exactly what a panic-free
	// slide would have produced, so the merge below stays bit-identical.
	// A second panic during the re-run quarantines the shard instead.
	for i := 0; i < n; i++ {
		if s.skip[i] || !completed[i] || outs[i].panic == nil {
			continue
		}
		s.panics.Add(1)
		tr, out, qr := s.replayShard(i, hook, true)
		if qr == nil {
			s.shards[i] = tr
			outs[i] = out
			s.retries.Add(1)
		} else {
			s.panics.Add(1)
			s.quarantineShard(i, *qr)
		}
	}

	mergeStart := time.Now()
	s.merge(n, nil)
	if s.metrics != nil {
		for i := range outs {
			if s.skip[i] {
				continue
			}
			s.metrics.shardDur[i].ObserveDuration(outs[i].dur)
			s.metrics.shardFixes[i].Add(uint64(len(s.byShard[i])))
		}
		s.metrics.mergeDur.ObserveDuration(time.Since(mergeStart))
	}

	// Re-base healthy journals so replay cost stays bounded.
	for i := 0; i < n; i++ {
		if !s.outOfService(i) && len(s.heal[i].slides) >= s.journalEvery {
			s.rebase(i)
		}
	}
	return SlideResult{Query: b.Query, Fresh: s.fresh, Delta: s.delta}
}

// journalAppend records one shard's routed fixes for the current slide,
// discarding the oldest journal slide when the cap is hit (counted as a
// replay gap — only reachable while the shard is quarantined, since
// healthy journals re-base well below the cap).
func (s *Sharded) journalAppend(i int, q time.Time) {
	h := &s.heal[i]
	if h.failed {
		return
	}
	if len(h.slides) >= s.journalCap {
		h.slides = slices.Delete(h.slides, 0, 1)
		h.gapped++
		s.gapSlides.Add(1)
	}
	h.slides = append(h.slides, shardSlide{q: q, fixes: slices.Clone(s.byShard[i])})
}

// quarantineShard takes a shard out of service: its fixes for this
// slide are counted dropped, and its routing buffer is leaked to any
// goroutine still holding it (a fresh one is allocated on next use).
func (s *Sharded) quarantineShard(i int, q supervise.Quarantine) {
	h := &s.heal[i]
	h.quarantined = true
	h.info = q
	s.quarCount.Add(1)
	s.skip[i] = true
	s.dropped.Add(int64(len(s.byShard[i])))
	s.byShard[i] = nil
}

// rebase captures the shard's current state as the journal base and
// clears the journaled slides.
func (s *Sharded) rebase(i int) {
	h := &s.heal[i]
	tr := s.shards[i]
	h.baseVessels = h.baseVessels[:0]
	for mmsi, st := range tr.vessels {
		h.baseVessels = append(h.baseVessels, snapshotVessel(mmsi, st))
	}
	h.baseStats = tr.Stats()
	h.slides = h.slides[:0]
	h.gapped = 0
}

// replayShard rebuilds a shard from its journal base and replays every
// journaled slide into a fresh tracker. With rerunCurrent, the last
// journal entry is the in-flight slide: the chaos hook fires for it
// (attempt 1) and its output is returned for the merge. A panic during
// replay is recovered and returned as a quarantine record.
func (s *Sharded) replayShard(i int, hook *func(shard, slide, attempt int), rerunCurrent bool) (tr *Tracker, out shardOut, qr *supervise.Quarantine) {
	defer func() {
		if r := recover(); r != nil {
			tr, out = nil, shardOut{}
			qr = &supervise.Quarantine{
				Target: fmt.Sprintf("tracker/%d", i),
				Cause:  "panic",
				Value:  fmt.Sprint(r),
				Stack:  string(debug.Stack()),
				Since:  time.Now(),
			}
		}
	}()
	h := &s.heal[i]
	tr = New(s.shards[0].params, s.shards[0].window)
	tr.indexing = true
	tr.stats = cloneStats(h.baseStats)
	for _, vs := range h.baseVessels {
		tr.vessels[vs.MMSI] = restoreVessel(vs)
	}
	last := len(h.slides) - 1
	for k := range h.slides {
		sl := &h.slides[k]
		start := time.Now()
		if rerunCurrent && k == last && hook != nil {
			(*hook)(i, s.slideSeq, 1)
		}
		tr.beginSlide()
		for _, xf := range sl.fixes {
			tr.ingestIndexed(xf.fix, xf.idx)
		}
		gapStart, delta := tr.finishSlide(sl.q)
		if k == last {
			out = shardOut{gapStart: gapStart, delta: delta, dur: time.Since(start)}
		}
	}
	// Tier-wide atomics are wired only now, so the replay itself did not
	// double-count late or shed fixes.
	s.wireShared(tr)
	return tr, out, nil
}

// RepairShard rebuilds a quarantined shard from its journal and
// re-admits it. It must not run concurrently with Slide (the supervisor
// serializes through core's run lock). An error leaves the shard
// quarantined: either the target is not quarantined, or the replay
// panicked again (a persistent fault the supervisor will back off on).
func (s *Sharded) RepairShard(i int) error {
	if s.heal == nil {
		return fmt.Errorf("tracker: self-heal not enabled")
	}
	if i < 0 || i >= len(s.shards) {
		return fmt.Errorf("tracker: no shard %d", i)
	}
	h := &s.heal[i]
	if !h.quarantined {
		return fmt.Errorf("tracker: shard %d is not quarantined", i)
	}
	tr, _, qr := s.replayShard(i, nil, false)
	if qr != nil {
		return fmt.Errorf("tracker: shard %d replay panicked again: %s", i, qr.Value)
	}
	s.shards[i] = tr
	h.quarantined = false
	h.info = supervise.Quarantine{}
	s.quarCount.Add(-1)
	s.repairs.Add(1)
	s.rebase(i)
	return nil
}

// AbandonShard marks a quarantined shard as permanently failed: its
// journal is freed and its fixes keep being dropped (and counted) until
// a process restart or snapshot restore. Called by the supervisor when
// repairs exhaust the give-up threshold.
func (s *Sharded) AbandonShard(i int) {
	if s.heal == nil || i < 0 || i >= len(s.shards) {
		return
	}
	h := &s.heal[i]
	if !h.quarantined {
		return
	}
	h.quarantined = false
	h.failed = true
	s.quarCount.Add(-1)
	s.failedCount.Add(1)
	h.slides = nil
	h.baseVessels = nil
	h.gapped = 0
}

// resetHeal re-admits every shard ahead of a snapshot restore,
// replacing quarantined/failed trackers outright (a wedged goroutine
// may still be mutating them).
func (s *Sharded) resetHeal() {
	params, window := s.shards[0].params, s.shards[0].window
	for i := range s.heal {
		h := &s.heal[i]
		if h.quarantined || h.failed {
			if h.quarantined {
				s.quarCount.Add(-1)
			} else {
				s.failedCount.Add(-1)
			}
			tr := New(params, window)
			tr.indexing = true
			s.wireShared(tr)
			s.shards[i] = tr
			s.byShard[i] = nil
		}
		h.quarantined, h.failed = false, false
		h.info = supervise.Quarantine{}
		h.slides = nil
		h.gapped = 0
	}
}

// cloneStats deep-copies a Stats value (the ByType map is shared
// otherwise).
func cloneStats(in Stats) Stats {
	out := in
	out.ByType = make(map[EventType]int, len(in.ByType))
	for k, v := range in.ByType {
		out.ByType[k] = v
	}
	return out
}
